(* Tests for the pr_faults fault-injection subsystem: plan specs,
   crash/restart across the protocol families, partition heal
   exactness, chaos-report determinism, and the harness's non-vacuity
   (the deliberately broken variant must be flagged). *)

module J = Pr_util.Json
module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Generator = Pr_topology.Generator
module Engine = Pr_sim.Engine
module Metrics = Pr_sim.Metrics
module Network = Pr_sim.Network
module Churn = Pr_sim.Churn
module Runner = Pr_proto.Runner
module Forwarding = Pr_proto.Forwarding
module Registry = Pr_core.Registry
module Scenario = Pr_core.Scenario
module Plan = Pr_faults.Plan
module Nemesis = Pr_faults.Nemesis
module Chaos = Pr_faults.Chaos

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

(* --- Plan specs ----------------------------------------------------- *)

let plan_roundtrip () =
  List.iter
    (fun (name, plan) ->
      let spec = Plan.to_string plan in
      match Plan.of_string spec with
      | Error e -> Alcotest.failf "profile %s spec %S did not parse: %s" name spec e
      | Ok reparsed ->
        check_string
          (Printf.sprintf "profile %s round-trips" name)
          spec (Plan.to_string reparsed))
    Plan.profiles

let plan_parse_errors () =
  List.iter
    (fun spec ->
      match Plan.of_string spec with
      | Ok _ -> Alcotest.failf "spec %S should not parse" spec
      | Error _ -> ())
    [ "bogus:plan"; "drop:p=1.5"; "crash:down=8"; "drop:p=nope"; "storm:at=1,flaps=x" ]

let plan_empty () =
  check_bool "empty spec is the empty plan" true (Plan.of_string "" = Ok []);
  check_bool "no message faults" false (Plan.has_message_faults []);
  check_int "no incidents" 0 (List.length (Plan.incident_times []))

let plan_incidents () =
  let plan =
    [
      Plan.Crash { ad = Some 2; at_time = 5.0; down_for = Some 3.0 };
      Plan.Partition { at_time = 10.0; heal_after = Some 4.0 };
    ]
  in
  Alcotest.(check (list (float 1e-9)))
    "onsets and recoveries, sorted" [ 5.0; 8.0; 10.0; 14.0 ] (Plan.incident_times plan);
  Alcotest.(check (float 1e-9)) "last incident" 14.0 (Plan.last_incident_time plan)

(* --- Metrics loss accounting ---------------------------------------- *)

let metrics_losses () =
  let m = Metrics.create ~n:3 in
  Metrics.record_loss m 1;
  Metrics.record_loss m 1;
  Metrics.record_loss m 2;
  check_int "total losses" 3 (Metrics.msgs_lost m);
  check_int "per-node losses" 2 (Metrics.msgs_lost_of m 1);
  let m' =
    match Metrics.of_json (Metrics.to_json m) with
    | Ok m' -> m'
    | Error e -> Alcotest.failf "metrics did not round-trip: %s" e
  in
  check_int "losses survive the json round-trip" 3 (Metrics.msgs_lost m');
  let other = Metrics.create ~n:3 in
  Metrics.record_loss other 0;
  Metrics.merge m other;
  check_int "merge sums losses" 4 (Metrics.msgs_lost m)

(* --- Crash/restart across the protocol families --------------------- *)

(* One representative per design-point family, plus the baselines:
   after a transit-AD crash with total state loss and a restart, the
   protocol must reconverge and deliver again. *)
let crash_restart_case name =
  let test () =
    match Registry.find_opt name with
    | None -> Alcotest.failf "protocol %s not registered" name
    | Some (Registry.Packed (module P)) ->
      let scenario = Scenario.for_size ~target_ads:14 ~seed:7 () in
      let g = scenario.Scenario.graph in
      let module R = Runner.Make (P) in
      let r = R.setup g scenario.Scenario.config in
      ignore (R.converge r);
      let flows = Scenario.flows scenario ~rng:(Rng.create 99) ~count:20 () in
      let delivered fs =
        List.fold_left
          (fun acc f -> if Forwarding.delivered (R.send_flow r f) then acc + 1 else acc)
          0 fs
      in
      let before = delivered flows in
      let victim = List.hd (Graph.transit_ids g) in
      R.crash_ad r victim;
      let c = R.converge ~max_events:2_000_000 r in
      check_bool (name ^ " reconverges after crash") true c.Runner.converged;
      R.restart_ad r victim;
      let c = R.converge ~max_events:2_000_000 r in
      check_bool (name ^ " reconverges after restart") true c.Runner.converged;
      (* EGP's single-path reachability does not fully recover from
         fail/restore — the conformance suite exempts it from the same
         property, so only the reconvergence is required of it here. *)
      if name <> "egp" then
        check_int (name ^ " delivers as before once healed") before (delivered flows)
  in
  Alcotest.test_case name `Quick test

(* --- Partition heal exactness (qcheck) ------------------------------ *)

(* The heal must restore exactly the links the partition cut: links
   downed by an unrecovered crash or left down by interleaved churn
   (odd flip count) stay down. Checked by snapshotting the down-link
   set just before the partition fires and comparing it to the final
   state after the heal. *)
let partition_heals_exactly =
  QCheck.Test.make ~name:"partition heal restores exactly the cut links" ~count:15
    QCheck.small_int (fun seed ->
      let g = Generator.generate (Rng.create seed) Generator.default in
      let engine = Engine.create () in
      let metrics = Metrics.create ~n:(Graph.n g) in
      let net = Network.create engine g metrics in
      Network.set_message_handler net (fun ~at:_ ~from:_ () -> ());
      Network.set_link_handler net (fun ~at:_ ~link:_ ~up:_ -> ());
      (* Interference: churn with an odd flip count leaves its last
         failure down; a never-restarting crash leaves links down too. *)
      Churn.schedule net (Rng.derive seed "churn") ~events:3 ~spacing:2.0 ();
      let plan =
        [
          Plan.Crash { ad = None; at_time = 9.0; down_for = None };
          Plan.Partition { at_time = 20.0; heal_after = Some 10.0 };
        ]
      in
      let nemesis = Nemesis.install net ~rng:(Rng.derive seed "faults") plan in
      let down_links () =
        List.filter
          (fun lid -> not (Network.link_is_up net lid))
          (List.init (Graph.num_links g) Fun.id)
      in
      let before_partition = ref [] in
      Engine.schedule_at engine ~time:19.9 (fun () -> before_partition := down_links ());
      (match Engine.run engine with
      | Engine.Drained -> ()
      | Engine.Reached_limit -> QCheck.Test.fail_report "event queue did not drain");
      let cut = Nemesis.partition_cut nemesis in
      List.iter
        (fun lid ->
          if List.mem lid !before_partition then
            QCheck.Test.fail_reportf "link %d was already down when the partition fired"
              lid)
        cut;
      (* Final damage = pre-partition damage: every cut link healed,
         nothing else resurrected. *)
      down_links () = !before_partition)

(* --- Chaos determinism ---------------------------------------------- *)

let chaos_deterministic () =
  let scenario = Scenario.for_size ~target_ads:14 ~seed:42 () in
  let packed = Option.get (Registry.find_opt "ecma") in
  let doc () = J.to_string (Chaos.report_json (Chaos.run ~probes:20 packed scenario)) in
  check_string "identical (seed, plan) => byte-identical report" (doc ()) (doc ())

let chaos_empty_plan_is_clean () =
  let scenario = Scenario.for_size ~target_ads:14 ~seed:42 () in
  let packed = Option.get (Registry.find_opt "ecma") in
  let report = Chaos.run ~plan:[] ~probes:20 packed scenario in
  check_bool "converged" true report.Chaos.converged;
  check_int "no faults fired" 0 (List.length report.Chaos.fault_log);
  check_int "nothing lost" 0 report.Chaos.msgs_lost;
  check_int "no violations" 0 (List.length report.Chaos.violations)

(* --- Non-vacuity ----------------------------------------------------- *)

(* The harness is only trustworthy if it actually flags a broken
   protocol: the deliberately broken variant must produce violations
   under the default plan, while the real design points produce none. *)
let harness_flags_broken_variant () =
  let scenario = Scenario.for_size ~target_ads:14 ~seed:42 () in
  let broken =
    match Chaos.find_protocol "broken-ls" with
    | Some p -> p
    | None -> Alcotest.fail "broken-ls not resolvable"
  in
  check_bool "broken-ls is hidden from the registry" true
    (Registry.find_opt "broken-ls" = None);
  let report = Chaos.run ~probes:40 broken scenario in
  check_bool "harness flags the broken variant" true (report.Chaos.violations <> [])

let harness_passes_design_points () =
  let scenario = Scenario.for_size ~target_ads:14 ~seed:42 () in
  List.iter
    (fun name ->
      let packed = Option.get (Registry.find_opt name) in
      let report = Chaos.run ~probes:40 packed scenario in
      check_bool (name ^ " converges through the default plan") true
        report.Chaos.converged;
      check_int (name ^ " has zero violations") 0 (List.length report.Chaos.violations))
    [ "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ]

(* --- Byzantine containment ------------------------------------------- *)

(* The §5 design points under the Byzantine profile with the guard on:
   the attack must actually fire (forged updates on the wire), the
   guard must bite (rejections and quarantines), and the honest
   internet must come through clean — zero violations of any kind. *)
let guard_contains_byzantine () =
  let scenario = Scenario.for_size ~target_ads:14 ~seed:42 () in
  let plan = Option.get (Plan.profile "byzantine") in
  List.iter
    (fun name ->
      let packed = Option.get (Registry.find_opt name) in
      let report = Chaos.run ~plan ~probes:40 packed scenario in
      check_bool (name ^ " converges under attack") true report.Chaos.converged;
      check_bool (name ^ " offense fired") true (report.Chaos.msgs_forged > 0);
      check_bool (name ^ " guard rejected updates") true
        (report.Chaos.updates_rejected > 0);
      check_bool (name ^ " guard quarantined the attacker") true
        (report.Chaos.quarantines > 0);
      check_int
        (name ^ " zero violations under guard")
        0
        (List.length report.Chaos.violations))
    [ "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ]

(* Defense non-vacuity: with the guard off, the same attack must stick
   — the containment audit finds adversarial state in honest ADs. *)
let unguarded_byzantine_breached () =
  let scenario = Scenario.for_size ~target_ads:14 ~seed:42 () in
  let plan = Option.get (Plan.profile "byzantine") in
  let packed = Option.get (Registry.find_opt "ecma") in
  let report =
    Chaos.run ~plan ~guard:Pr_guard.Guard.disabled ~probes:40 packed scenario
  in
  check_bool "unguarded run is breached" true
    (Chaos.containment_violations report >= 1);
  check_int "guard counted nothing while off" 0 report.Chaos.updates_rejected

let byzantine_report_deterministic () =
  let scenario = Scenario.for_size ~target_ads:14 ~seed:42 () in
  let plan = Option.get (Plan.profile "byzantine") in
  let packed = Option.get (Registry.find_opt "idrp") in
  let doc () =
    J.to_string (Chaos.report_json (Chaos.run ~plan ~probes:20 packed scenario))
  in
  check_string "identical (seed, plan, guard) => byte-identical report" (doc ())
    (doc ())

(* --- Campaign integration ------------------------------------------- *)

let faulted_run profile max_events =
  let open Pr_campaign in
  {
    Grid.id =
      Grid.id_of ~protocol:"ecma" ~size:14 ~restrictiveness:0.0
        ~granularity:Pr_policy.Gen.Source_specific ~churn:false ~faults:profile
        ~replicate:0;
    protocol = "ecma";
    size = 14;
    restrictiveness = 0.0;
    granularity = Pr_policy.Gen.Source_specific;
    churn = false;
    faults = profile;
    replicate = 0;
    seed = 42;
    flows = 20;
    max_events;
  }

let exec_budget_exhausted () =
  let open Pr_campaign in
  (* A budget far too small to drain: the campaign must record a
     result (outcome = budget_exhausted, partial metrics), not a
     worker failure that resume would retry forever. *)
  match Exec.execute (faulted_run "default" 50) with
  | Error e -> Alcotest.failf "expected a partial result, got failure: %s" e
  | Ok t ->
    check_string "outcome" "budget_exhausted" t.Exec.outcome;
    check_bool "not converged" false t.Exec.converged;
    let record = J.to_string (Exec.to_json t) in
    check_bool "record carries the outcome" true
      (let sub = {|"outcome": "budget_exhausted"|} in
       let len = String.length sub in
       let rec scan i =
         i + len <= String.length record
         && (String.sub record i len = sub || scan (i + 1))
       in
       scan 0)

let exec_unknown_profile () =
  let open Pr_campaign in
  match Exec.execute (faulted_run "bogus" 1_000_000) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown fault profile must be an Error"

let exec_faulted_completes () =
  let open Pr_campaign in
  match Exec.execute (faulted_run "crash" 10_000_000) with
  | Error e -> Alcotest.failf "crash-profile run failed: %s" e
  | Ok t ->
    check_string "outcome" "completed" t.Exec.outcome;
    check_int "no loop violations" 0 t.Exec.loop_violations;
    check_int "no blackhole violations" 0 t.Exec.blackhole_violations;
    check_bool "record carries the chaos extras" true
      (List.mem_assoc "reconvergence_time" t.Exec.chaos_fields)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "profiles round-trip through specs" `Quick plan_roundtrip;
          Alcotest.test_case "bad specs rejected" `Quick plan_parse_errors;
          Alcotest.test_case "empty plan" `Quick plan_empty;
          Alcotest.test_case "incident times" `Quick plan_incidents;
        ] );
      ("metrics", [ Alcotest.test_case "loss accounting" `Quick metrics_losses ]);
      ( "crash-restart",
        List.map crash_restart_case
          [ "dv-plain"; "link-state"; "egp"; "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ] );
      ("partition", qsuite [ partition_heals_exactly ]);
      ( "chaos",
        [
          Alcotest.test_case "deterministic report" `Quick chaos_deterministic;
          Alcotest.test_case "empty plan is clean" `Quick chaos_empty_plan_is_clean;
          Alcotest.test_case "broken variant flagged" `Quick harness_flags_broken_variant;
          Alcotest.test_case "design points pass" `Quick harness_passes_design_points;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "guard contains the attacker" `Quick
            guard_contains_byzantine;
          Alcotest.test_case "unguarded run is breached" `Quick
            unguarded_byzantine_breached;
          Alcotest.test_case "adversarial report deterministic" `Quick
            byzantine_report_deterministic;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "budget exhaustion is a result" `Quick exec_budget_exhausted;
          Alcotest.test_case "unknown profile is an error" `Quick exec_unknown_profile;
          Alcotest.test_case "crash profile completes" `Quick exec_faulted_completes;
        ] );
    ]

(* Unit tests for the pr_campaign experiment-orchestration subsystem:
   JSON codec, grid expansion, forked worker pool (including crash
   isolation and per-run timeouts), the JSONL sink's resume semantics,
   aggregation, and the end-to-end driver. *)

module J = Pr_util.Json
module Grid = Pr_campaign.Grid
module Exec = Pr_campaign.Exec
module Pool = Pr_campaign.Pool
module Sink = Pr_campaign.Sink
module Aggregate = Pr_campaign.Aggregate
module Driver = Pr_campaign.Driver

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

let temp_jsonl () =
  let path = Filename.temp_file "campaign_test" ".jsonl" in
  Sys.remove path;
  path

(* --- Json ----------------------------------------------------------- *)

let json_roundtrip () =
  let doc =
    J.Obj
      [
        ("id", J.String "a/b \"quoted\"\nline");
        ("count", J.Int (-42));
        ("ratio", J.Float 1.5);
        ("whole", J.Float 3.0);
        ("on", J.Bool true);
        ("nothing", J.Null);
        ("items", J.List [ J.Int 1; J.String "x"; J.List []; J.Obj [] ]);
      ]
  in
  match J.parse (J.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "round-trips" true (parsed = doc)
  | Error e -> Alcotest.fail e

let json_pretty_parses () =
  let doc = J.Obj [ ("a", J.List [ J.Int 1; J.Int 2 ]); ("b", J.Obj [ ("c", J.Null) ]) ] in
  match J.parse (J.to_string_pretty doc) with
  | Ok parsed -> check_bool "pretty form parses back" true (parsed = doc)
  | Error e -> Alcotest.fail e

let json_rejects_garbage () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\" 1}"; "12 34"; "\"unterminated"; "nul" ] in
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    bad

let json_numbers () =
  (match J.parse "17" with
  | Ok (J.Int 17) -> ()
  | _ -> Alcotest.fail "int");
  (match J.parse "-2.5e2" with
  | Ok (J.Float f) -> Alcotest.(check (float 1e-9)) "float" (-250.0) f
  | _ -> Alcotest.fail "float");
  match J.parse (J.to_string (J.Float 2.0)) with
  | Ok v -> Alcotest.(check (float 1e-9)) "whole float survives" 2.0 (Result.get_ok (J.to_float v))
  | Error e -> Alcotest.fail e

let json_members () =
  let doc = J.Obj [ ("n", J.Int 3); ("s", J.String "x") ] in
  check_int "int member" 3 (Result.get_ok (J.int_member "n" doc));
  check_string "string member" "x" (Result.get_ok (J.string_member "s" doc));
  check_bool "missing is Error" true (Result.is_error (J.int_member "zzz" doc));
  check_bool "wrong type is Error" true (Result.is_error (J.int_member "s" doc))

(* --- Grid ----------------------------------------------------------- *)

let toy_spec =
  {
    Grid.protocols = [ "ecma"; "orwg" ];
    sizes = [ 14 ];
    restrictiveness = [ 0.0; 0.5 ];
    granularities = [ Pr_policy.Gen.Source_specific ];
    churn = [ false ];
    fault_profiles = [ "none" ];
    replicates = 1;
    base_seed = 42;
    flows = 5;
    max_events = 1_000_000;
  }

let grid_expansion_count () =
  check_int "toy grid" 4 (List.length (Grid.expand toy_spec));
  check_int "default grid is a >=24-run campaign" 32
    (List.length (Grid.expand Grid.default))

let grid_deterministic () =
  let a = Grid.expand toy_spec and b = Grid.expand toy_spec in
  check_bool "expansion is a pure function of the spec" true (a = b);
  let ids = List.map (fun (r : Grid.run) -> r.Grid.id) a in
  check_bool "ids distinct" true (List.length (List.sort_uniq compare ids) = List.length ids);
  check_string "stable id scheme" "ecma/n14/r0.00/gsource-specific/static/fnone/rep0"
    (List.hd ids)

let grid_default_covers_designs () =
  let runs = Grid.expand Grid.default in
  let protos = List.sort_uniq compare (List.map (fun (r : Grid.run) -> r.Grid.protocol) runs) in
  Alcotest.(check (list string)) "all four section-5 design points"
    [ "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ]
    protos;
  List.iter
    (fun (r : Grid.run) ->
      check_bool "every default protocol is registered" true
        (Option.is_some (Pr_core.Registry.find_opt r.Grid.protocol)))
    runs

let grid_replicates_vary_seed () =
  let spec = { toy_spec with replicates = 3; protocols = [ "ecma" ]; restrictiveness = [ 0.0 ] } in
  let seeds = List.map (fun (r : Grid.run) -> r.Grid.seed) (Grid.expand spec) in
  Alcotest.(check (list int)) "seeds derive from replicate" [ 42; 43; 44 ] seeds

(* --- Exec ----------------------------------------------------------- *)

let sample_run ?(protocol = "ecma") ?(churn = false) ?(faults = "none") () =
  {
    Grid.id =
      Grid.id_of ~protocol ~size:14 ~restrictiveness:0.0
        ~granularity:Pr_policy.Gen.Source_specific ~churn ~faults ~replicate:0;
    protocol;
    size = 14;
    restrictiveness = 0.0;
    granularity = Pr_policy.Gen.Source_specific;
    churn;
    faults;
    replicate = 0;
    seed = 42;
    flows = 5;
    max_events = 1_000_000;
  }

let exec_measures () =
  match Exec.execute (sample_run ()) with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check_bool "converged" true t.Exec.converged;
    check_string "stop reason" "drained" t.Exec.stop_reason;
    check_bool "messages counted" true (t.Exec.messages > 0);
    check_bool "state counted" true (t.Exec.table_total > 0);
    check_bool "workload ran" true (t.Exec.delivered > 0);
    (* Determinism: a second execution measures identical totals. *)
    let t' = Result.get_ok (Exec.execute (sample_run ())) in
    check_int "deterministic messages" t.Exec.messages t'.Exec.messages;
    check_int "deterministic computations" t.Exec.computations t'.Exec.computations;
    check_int "deterministic state" t.Exec.table_total t'.Exec.table_total

let exec_churn_dimension () =
  let static = Result.get_ok (Exec.execute (sample_run ())) in
  let churned = Result.get_ok (Exec.execute (sample_run ~churn:true ())) in
  check_bool "churn run converges" true churned.Exec.converged;
  check_bool "churn costs extra control traffic" true
    (churned.Exec.messages > static.Exec.messages)

let exec_unknown_protocol () =
  let record = Exec.run_record (sample_run ~protocol:"no-such-protocol" ()) in
  check_string "status failed" "failed" (Result.get_ok (J.string_member "status" record));
  check_bool "readable error" true
    (Result.is_ok (J.string_member "error" record))

(* --- Pool ----------------------------------------------------------- *)

let fake_record (run : Grid.run) status =
  J.Obj (Grid.params_json run @ [ ("status", J.String status) ])

let pool_statuses () =
  let runs =
    List.map
      (fun protocol -> { (sample_run ()) with Grid.protocol; id = protocol })
      [ "quick-1"; "quick-2"; "crasher"; "hanger"; "raiser"; "quick-3" ]
  in
  let exec (run : Grid.run) =
    match run.Grid.id with
    | "crasher" -> Unix._exit 66
    | "hanger" ->
      Unix.sleepf 3600.0;
      fake_record run "ok"
    | "raiser" -> failwith "boom"
    | _ -> fake_record run "ok"
  in
  let outcomes = ref [] in
  let ok, not_ok =
    Pool.run_all ~jobs:3 ~timeout_s:1.0 ~quiet:true ~exec
      ~on_outcome:(fun o -> outcomes := o :: !outcomes)
      runs
  in
  check_int "ok runs" 3 ok;
  check_int "not-ok runs" 3 not_ok;
  check_int "every run reported" 6 (List.length !outcomes);
  let status_of id =
    let o = List.find (fun (o : Pool.outcome) -> o.Pool.run.Grid.id = id) !outcomes in
    Pool.status_to_string o.Pool.status
  in
  check_string "crash isolated" "crashed" (status_of "crasher");
  check_string "hang killed by timeout" "timed-out" (status_of "hanger");
  check_string "exception folded to failure" "failed" (status_of "raiser");
  check_string "others unaffected" "ok" (status_of "quick-1");
  (* Every outcome, however the worker died, carries a full JSONL
     record with the run id. *)
  List.iter
    (fun (o : Pool.outcome) ->
      check_string "record id" o.Pool.run.Grid.id
        (Result.get_ok (J.string_member "id" o.Pool.record)))
    !outcomes

let pool_parallelism () =
  (* Four workers sleeping 0.3s each on 4 jobs must beat 4 x 0.3s
     sequential by a wide margin. *)
  let runs =
    List.init 4 (fun i -> { (sample_run ()) with Grid.id = Printf.sprintf "sleep-%d" i })
  in
  let exec run =
    Unix.sleepf 0.3;
    fake_record run "ok"
  in
  let t0 = Unix.gettimeofday () in
  let ok, _ =
    Pool.run_all ~jobs:4 ~timeout_s:10.0 ~quiet:true ~exec ~on_outcome:ignore runs
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check_int "all ok" 4 ok;
  check_bool
    (Printf.sprintf "ran in parallel (%.2fs)" elapsed)
    true (elapsed < 0.9)

(* --- Sink ----------------------------------------------------------- *)

let sink_last_record_wins () =
  let path = temp_jsonl () in
  let oc = open_out path in
  Sink.append oc (J.Obj [ ("id", J.String "a"); ("status", J.String "crashed") ]);
  Sink.append oc (J.Obj [ ("id", J.String "b"); ("status", J.String "ok") ]);
  output_string oc "this line is not JSON\n";
  Sink.append oc (J.Obj [ ("status", J.String "ok") ]) (* no id *);
  Sink.append oc (J.Obj [ ("id", J.String "a"); ("status", J.String "ok") ]);
  close_out oc;
  let sink = Sink.read ~path in
  Sys.remove path;
  check_int "two ids" 2 (List.length sink.Sink.records);
  check_int "malformed lines counted" 2 sink.Sink.malformed;
  let completed = Sink.completed_ids sink in
  check_bool "a completed (latest wins)" true (Hashtbl.mem completed "a");
  check_bool "b completed" true (Hashtbl.mem completed "b");
  (* First-appearance order. *)
  check_string "order preserved" "a" (fst (List.hd sink.Sink.records))

let sink_missing_file () =
  let sink = Sink.read ~path:"/nonexistent/campaign.jsonl" in
  check_int "empty" 0 (List.length sink.Sink.records);
  check_int "no malformed" 0 sink.Sink.malformed

let sink_incomplete_not_skipped () =
  let path = temp_jsonl () in
  let oc = open_out path in
  Sink.append oc (J.Obj [ ("id", J.String "a"); ("status", J.String "timed-out") ]);
  Sink.append oc (J.Obj [ ("id", J.String "b"); ("status", J.String "failed") ]);
  close_out oc;
  let completed = Sink.completed_ids (Sink.read ~path) in
  Sys.remove path;
  check_int "nothing completed" 0 (Hashtbl.length completed)

(* --- Aggregate ------------------------------------------------------- *)

let aggregate_groups_by_protocol () =
  let record protocol status extra =
    J.Obj
      ([
         ("id", J.String (protocol ^ "/" ^ status ^ string_of_int (List.length extra)));
         ("protocol", J.String protocol);
         ("status", J.String status);
       ]
      @ extra)
  in
  let sink =
    {
      Sink.records =
        [
          ("1", record "ecma" "ok" [ ("messages", J.Int 10); ("flows", J.Int 5); ("delivered", J.Int 4); ("table_max", J.Int 7) ]);
          ("2", record "ecma" "ok" [ ("messages", J.Int 20); ("flows", J.Int 5); ("delivered", J.Int 5); ("table_max", J.Int 3) ]);
          ("3", record "orwg" "crashed" []);
          ("4", record "orwg" "timed-out" []);
        ];
      malformed = 0;
    }
  in
  match Aggregate.rows sink with
  | [ ecma; orwg ] ->
    check_string "first group" "ecma" ecma.Aggregate.protocol;
    check_int "summed messages" 30 ecma.Aggregate.messages;
    check_int "max of table_max" 7 ecma.Aggregate.table_max;
    check_int "delivered" 9 ecma.Aggregate.delivered;
    check_bool "design point resolved" true (ecma.Aggregate.design_point <> "?");
    check_int "orwg crashed" 1 orwg.Aggregate.crashed;
    check_int "orwg timed out" 1 orwg.Aggregate.timed_out;
    check_int "orwg nothing ok" 0 orwg.Aggregate.ok
  | rows -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length rows))

(* --- Driver (end to end) --------------------------------------------- *)

let driver_end_to_end_and_resume () =
  let path = temp_jsonl () in
  let crash_id = "ecma/n14/r0.50/gsource-specific/static/fnone/rep0" in
  (* First invocation: one injected crash. *)
  let r1 =
    Driver.sweep ~jobs:2 ~timeout_s:30.0 ~quiet:true
      ~chaos:{ Exec.crash_id = Some crash_id; hang_id = None }
      ~out:path toy_spec
  in
  check_int "grid size" 4 r1.Driver.total;
  check_int "nothing skipped on first run" 0 r1.Driver.skipped;
  check_int "three completed" 3 r1.Driver.ok;
  check_int "one crashed" 1 r1.Driver.not_ok;
  (* Second invocation, no chaos: resumes, re-running only the crash. *)
  let r2 = Driver.sweep ~jobs:2 ~timeout_s:30.0 ~quiet:true ~out:path toy_spec in
  check_int "completed runs skipped" 3 r2.Driver.skipped;
  check_int "only the crashed run re-ran" 1 r2.Driver.executed;
  check_int "and completed" 1 r2.Driver.ok;
  (* Third invocation: everything is complete; nothing executes. *)
  let r3 = Driver.sweep ~jobs:2 ~timeout_s:30.0 ~quiet:true ~out:path toy_spec in
  check_int "fully resumed" 4 r3.Driver.skipped;
  check_int "nothing to do" 0 r3.Driver.executed;
  (* The final file holds 5 attempts, latest-per-id all ok. *)
  let sink = Sink.read ~path in
  Sys.remove path;
  check_int "four runs on record" 4 (List.length sink.Sink.records);
  check_int "all completed" 4 (Hashtbl.length (Sink.completed_ids sink));
  match Aggregate.rows sink with
  | rows ->
    check_int "both protocols aggregated" 2 (List.length rows);
    List.iter
      (fun row ->
        check_int
          (row.Aggregate.protocol ^ " all ok after resume")
          row.Aggregate.runs row.Aggregate.ok)
      rows

let driver_summary_schema () =
  let path = temp_jsonl () in
  let summary_path = Filename.temp_file "campaign_test" ".json" in
  let spec = { toy_spec with protocols = [ "ecma" ]; restrictiveness = [ 0.0 ] } in
  let report = Driver.sweep ~jobs:1 ~quiet:true ~summary_path ~out:path spec in
  let on_disk = Result.get_ok (J.parse (In_channel.with_open_text summary_path In_channel.input_all)) in
  Sys.remove path;
  Sys.remove summary_path;
  check_bool "summary written equals report summary" true (on_disk = report.Driver.summary);
  check_string "benchmark tag" "campaign"
    (Result.get_ok (J.string_member "benchmark" on_disk));
  let runs = Option.get (J.member "runs" on_disk) in
  check_int "totals" 1 (Result.get_ok (J.int_member "total" runs));
  match J.member "per_design_point" on_disk with
  | Some (J.List [ row ]) ->
    check_string "protocol" "ecma" (Result.get_ok (J.string_member "protocol" row));
    List.iter
      (fun field ->
        check_bool (field ^ " present") true (Result.is_ok (J.int_member field row)))
      [ "messages"; "bytes"; "computations"; "transit_computations"; "table_total"; "table_max" ]
  | _ -> Alcotest.fail "per_design_point missing"

let () =
  Alcotest.run "pr_campaign"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick json_roundtrip;
          Alcotest.test_case "pretty parses" `Quick json_pretty_parses;
          Alcotest.test_case "rejects garbage" `Quick json_rejects_garbage;
          Alcotest.test_case "numbers" `Quick json_numbers;
          Alcotest.test_case "members" `Quick json_members;
        ] );
      ( "grid",
        [
          Alcotest.test_case "expansion count" `Quick grid_expansion_count;
          Alcotest.test_case "deterministic" `Quick grid_deterministic;
          Alcotest.test_case "default covers section-5 designs" `Quick
            grid_default_covers_designs;
          Alcotest.test_case "replicates vary seed" `Quick grid_replicates_vary_seed;
        ] );
      ( "exec",
        [
          Alcotest.test_case "measures a run" `Quick exec_measures;
          Alcotest.test_case "churn dimension" `Quick exec_churn_dimension;
          Alcotest.test_case "unknown protocol" `Quick exec_unknown_protocol;
        ] );
      ( "pool",
        [
          Alcotest.test_case "statuses" `Quick pool_statuses;
          Alcotest.test_case "parallelism" `Quick pool_parallelism;
        ] );
      ( "sink",
        [
          Alcotest.test_case "last record wins" `Quick sink_last_record_wins;
          Alcotest.test_case "missing file" `Quick sink_missing_file;
          Alcotest.test_case "incomplete not skipped" `Quick sink_incomplete_not_skipped;
        ] );
      ( "aggregate",
        [ Alcotest.test_case "groups by protocol" `Quick aggregate_groups_by_protocol ] );
      ( "driver",
        [
          Alcotest.test_case "end to end + resume" `Quick driver_end_to_end_and_resume;
          Alcotest.test_case "summary schema" `Quick driver_summary_schema;
        ] );
    ]

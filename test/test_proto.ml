(* Tests for the pr_proto framework: design points, cost model, LSDB,
   flooding, constrained route computation, forwarding. *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Figure1 = Pr_topology.Figure1
module Generator = Pr_topology.Generator
module Path = Pr_topology.Path
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Gen = Pr_policy.Gen
module Validate = Pr_policy.Validate
module Transit_policy = Pr_policy.Transit_policy
module Engine = Pr_sim.Engine
module Metrics = Pr_sim.Metrics
module Network = Pr_sim.Network
module Design_point = Pr_proto.Design_point
module Cost_model = Pr_proto.Cost_model
module Packet = Pr_proto.Packet
module Lsdb = Pr_proto.Lsdb
module Ls_flood = Pr_proto.Ls_flood
module Policy_route = Pr_proto.Policy_route
module Forwarding = Pr_proto.Forwarding

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* --- Design points -------------------------------------------------- *)

let design_points_distinct () =
  check_int "eight points" 8 (List.length Design_point.all);
  check_int "all distinct" 8 (List.length (List.sort_uniq compare Design_point.all))

let design_point_strings () =
  let p =
    Design_point.make Design_point.Link_state Design_point.Source_routing
      Design_point.Policy_terms
  in
  Alcotest.(check string) "to_string"
    "link state / source routing / explicit policy terms" (Design_point.to_string p)

(* --- Cost model ------------------------------------------------------ *)

let cost_model_shapes () =
  check_bool "source route grows with length" true
    (Cost_model.source_route_bytes 10 > Cost_model.source_route_bytes 3);
  check_bool "handle cheaper than any source route" true
    (Cost_model.handle_bytes < Cost_model.source_route_bytes 2);
  check_bool "path vector entry grows with path" true
    (Cost_model.path_vector_entry_bytes ~path_len:8 ~pt_bytes:0
    > Cost_model.path_vector_entry_bytes ~path_len:2 ~pt_bytes:0);
  check_bool "lsa grows with pts" true
    (Cost_model.lsa_bytes ~link_count:3 ~pt_bytes:40 > Cost_model.lsa_bytes ~link_count:3 ~pt_bytes:0);
  check_bool "setup packet bigger than base header" true
    (Cost_model.setup_packet_bytes ~route_len:4 ~pt_count:2 > Cost_model.base_header_bytes)

(* --- Lsdb ------------------------------------------------------------ *)

let adj nbr cost = { Lsdb.nbr; cost; delay = 1.0 }

let lsa origin seq adjacencies = Lsdb.make_lsa ~origin ~seq ~adjacencies ~terms:[]

let lsdb_sequencing () =
  let db = Lsdb.create ~n:4 in
  check_bool "first insert" true (Lsdb.insert db (lsa 1 1 [ adj 2 1 ]));
  check_bool "duplicate rejected" false (Lsdb.insert db (lsa 1 1 [ adj 2 1 ]));
  check_bool "stale rejected" false (Lsdb.insert db (lsa 1 0 []));
  check_bool "newer accepted" true (Lsdb.insert db (lsa 1 2 [ adj 3 2 ]));
  check_int "seq stored" 2 (Lsdb.seq_of db 1);
  check_int "entries" 1 (Lsdb.entry_count db);
  Alcotest.(check (option int)) "adjacency updated" (Some 2) (Lsdb.adjacency_cost db 1 3);
  Alcotest.(check (option int)) "old adjacency gone" None (Lsdb.adjacency_cost db 1 2)

let lsdb_bidirectional () =
  let db = Lsdb.create ~n:4 in
  ignore (Lsdb.insert db (lsa 1 1 [ adj 2 3 ]));
  Alcotest.(check (option int)) "one-way not bidirectional" None (Lsdb.bidirectional db 1 2);
  ignore (Lsdb.insert db (lsa 2 1 [ adj 1 5 ]));
  Alcotest.(check (option int)) "max of directions" (Some 5) (Lsdb.bidirectional db 1 2)

let lsdb_known_and_fold () =
  let db = Lsdb.create ~n:5 in
  ignore (Lsdb.insert db (lsa 0 1 []));
  ignore (Lsdb.insert db (lsa 3 1 []));
  Alcotest.(check (list int)) "known" [ 0; 3 ] (Lsdb.known_ads db);
  check_int "fold" 2 (Lsdb.fold db ~init:0 ~f:(fun acc _ -> acc + 1))

let lsdb_bytes_pinned () =
  (* The cached LSA size must stay pinned to the cost model: a 12-byte
     header, 4 bytes per adjacency plus 2 for its delay metric, and
     each PT at its 8 + 2·ids advertisement size. *)
  check_int "bare LSA" 12 (Lsdb.lsa_bytes (lsa 1 1 []));
  check_int "two adjacencies" (12 + (2 * (4 + 2))) (Lsdb.lsa_bytes (lsa 1 1 [ adj 2 1; adj 3 1 ]));
  let terms =
    [
      Pr_policy.Policy_term.make ~owner:1
        ~sources:(Pr_policy.Policy_term.Only [| 2; 3; 4 |]) ();
      Pr_policy.Policy_term.make ~owner:1 ();
    ]
  in
  let with_terms = Lsdb.make_lsa ~origin:1 ~seq:1 ~adjacencies:[ adj 2 1 ] ~terms in
  check_int "adjacency + two PTs" (12 + 4 + 2 + (8 + (2 * 3)) + 8) (Lsdb.lsa_bytes with_terms);
  (* And the compiled form is cached in the LSA itself: repeated
     lookups return the same compilation. *)
  let db = Lsdb.create ~n:5 in
  ignore (Lsdb.insert db with_terms);
  check_bool "compiled once" true (Lsdb.compiled_of db 1 == Lsdb.compiled_of db 1);
  check_int "empty compilation for unknown ADs" 0
    (Pr_policy.Compiled.term_count (Lsdb.compiled_of db 4))

(* --- Ls_flood -------------------------------------------------------- *)

let flood_setup () =
  let g = Figure1.graph () in
  let e = Engine.create () in
  let m = Metrics.create ~n:(Graph.n g) in
  let net = Network.create e g m in
  let flood = Ls_flood.create net ~terms_for:(fun _ -> []) () in
  Network.set_message_handler net (fun ~at ~from msg -> Ls_flood.handle_message flood ~at ~from msg);
  Network.set_link_handler net (fun ~at ~link:_ ~up -> Ls_flood.handle_link flood ~at ~up);
  (g, e, net, flood)

let flood_converges_consistent () =
  let g, e, _, flood = flood_setup () in
  Ls_flood.start flood;
  Alcotest.(check bool) "drained" true (Engine.run e = Engine.Drained);
  (* Every node has every LSA and all databases agree. *)
  let n = Graph.n g in
  for ad = 0 to n - 1 do
    check_int (Printf.sprintf "db size at %d" ad) n (Ls_flood.db_entries flood ad)
  done;
  for origin = 0 to n - 1 do
    let seq0 = Lsdb.seq_of (Ls_flood.db flood 0) origin in
    for ad = 1 to n - 1 do
      check_int "same seq everywhere" seq0 (Lsdb.seq_of (Ls_flood.db flood ad) origin)
    done
  done

let flood_reacts_to_failure () =
  let g, e, net, flood = flood_setup () in
  Ls_flood.start flood;
  ignore (Engine.run e);
  let lid = Option.get (Graph.find_link g 0 1) in
  Network.set_link_state net lid ~up:false;
  ignore (Engine.run e);
  (* Everyone learns that 0 and 1 are no longer adjacent. *)
  for ad = 0 to Graph.n g - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "adjacency gone in db of %d" ad)
      None
      (Lsdb.bidirectional (Ls_flood.db flood ad) 0 1)
  done

let flood_change_callback () =
  let _, e, _, flood = flood_setup () in
  let changes = ref 0 in
  Ls_flood.set_on_change flood (fun _ ~origin:_ -> incr changes);
  Ls_flood.start flood;
  ignore (Engine.run e);
  check_bool "callbacks fired" true (!changes > 0)

(* --- Policy_route ---------------------------------------------------- *)

let converged_policy_db config =
  let g = Figure1.graph () in
  let e = Engine.create () in
  let m = Metrics.create ~n:(Graph.n g) in
  let net = Network.create e g m in
  let flood =
    Ls_flood.create net
      ~terms_for:(fun ad -> (Config.transit config ad).Transit_policy.terms)
      ()
  in
  Network.set_message_handler net (fun ~at ~from msg -> Ls_flood.handle_message flood ~at ~from msg);
  Ls_flood.start flood;
  ignore (Engine.run e);
  (g, flood)

let policy_route_matches_oracle () =
  let g0 = Figure1.graph () in
  let config = Config.defaults g0 in
  let g, flood = converged_policy_db config in
  let n = Graph.n g in
  let db = Ls_flood.db flood 7 in
  let flow = Flow.make ~src:7 ~dst:12 () in
  let path, work = Policy_route.shortest (Policy_route.engine db ~n flow) () in
  check_bool "found" true (path <> None);
  check_bool "work recorded" true (work > 0);
  let p = Option.get path in
  check_bool "legal per oracle" true (Validate.transit_legal g config flow p);
  (* Cost-optimal: equal to the oracle's best. *)
  let oracle_best = Option.get (Validate.best_legal g config flow ~max_hops:12) in
  Alcotest.(check (option int)) "same cost as oracle" (Path.cost g oracle_best)
    (Path.cost g p)

let policy_route_respects_avoid () =
  let g0 = Figure1.graph () in
  let config = Config.defaults g0 in
  let _, flood = converged_policy_db config in
  let n = 14 in
  let db = Ls_flood.db flood 8 in
  (* C2a(8) -> C3a(10): the route via the regional lateral R2--R3
     avoids BB1; a route through BB1 also exists. *)
  let flow = Flow.make ~src:8 ~dst:10 () in
  let path, _ = Policy_route.shortest (Policy_route.engine db ~n flow) ~avoid:[ 0 ] () in
  match path with
  | None -> Alcotest.fail "a route avoiding BB1 exists (via the R2-R3 lateral)"
  | Some p -> check_bool "avoids BB1" true (not (List.mem 0 (Path.transit_ads p)))

let policy_route_respects_policy =
  QCheck.Test.make ~name:"policy route legal per the same terms" ~count:25 QCheck.small_int
    (fun seed ->
      let g0 = Figure1.graph () in
      let rng = Rng.create seed in
      let config = Gen.generate rng g0 { Gen.default with restrictiveness = 0.5 } in
      let g, flood = converged_policy_db config in
      let hosts = Graph.host_ids g in
      let src = Rng.choose rng hosts and dst = Rng.choose rng hosts in
      src = dst
      ||
      let flow = Flow.make ~src ~dst () in
      let db = Ls_flood.db flood src in
      match Policy_route.shortest (Policy_route.engine db ~n:(Graph.n g) flow) () with
      | None, _ -> true
      | Some p, _ -> Validate.transit_legal g config flow p)

let policy_route_enumerate_legal () =
  let g0 = Figure1.graph () in
  let config = Config.defaults g0 in
  let g, flood = converged_policy_db config in
  let db = Ls_flood.db flood 7 in
  let flow = Flow.make ~src:7 ~dst:8 () in
  let paths = Policy_route.enumerate (Policy_route.engine db ~n:(Graph.n g) flow) ~max_hops:7 () in
  check_bool "nonempty" true (paths <> []);
  check_bool "all legal" true
    (List.for_all (fun p -> Validate.transit_legal g config flow p) paths)

let qos_metric_shapes () =
  let m q = Pr_proto.Qos_metric.metric q ~cost:4 ~delay:2.5 in
  check_int "default follows cost" 4 (m Pr_policy.Qos.Default);
  check_int "throughput follows cost" 4 (m Pr_policy.Qos.High_throughput);
  check_int "low delay follows delay" 25 (m Pr_policy.Qos.Low_delay);
  check_int "reliability counts hops" 1 (m Pr_policy.Qos.High_reliability);
  check_int "metrics never zero" 1
    (Pr_proto.Qos_metric.metric Pr_policy.Qos.Low_delay ~cost:1 ~delay:0.01)

(* Two parallel transits: X is cheap but slow, Y expensive but fast.
   Default traffic must ride X, Low_delay traffic Y. *)
let qos_path_delay () =
  let g = Figure1.graph () in
  (* All figure1 delays default to 1.0: delay = hop count. *)
  Alcotest.(check (option (float 1e-9))) "delay sums" (Some 4.0)
    (Pr_proto.Qos_metric.path_delay g [ 7; 2; 0; 1; 4 ]);
  Alcotest.(check (option (float 1e-9))) "broken path" None
    (Pr_proto.Qos_metric.path_delay g [ 7; 8 ])

let qos_routes_differ () =
  let module Ad = Pr_topology.Ad in
  let module Link = Pr_topology.Link in
  let ads =
    [|
      Ad.make ~id:0 ~name:"A" ~klass:Ad.Hybrid ~level:Ad.Metro;
      Ad.make ~id:1 ~name:"B" ~klass:Ad.Hybrid ~level:Ad.Metro;
      Ad.make ~id:2 ~name:"X" ~klass:Ad.Transit ~level:Ad.Regional;
      Ad.make ~id:3 ~name:"Y" ~klass:Ad.Transit ~level:Ad.Regional;
    |]
  in
  let links =
    [|
      Link.make ~id:0 ~a:2 ~b:0 ~cost:1 ~delay:3.0 Link.Hierarchical;
      Link.make ~id:1 ~a:2 ~b:1 ~cost:1 ~delay:3.0 Link.Hierarchical;
      Link.make ~id:2 ~a:3 ~b:0 ~cost:3 ~delay:0.5 Link.Hierarchical;
      Link.make ~id:3 ~a:3 ~b:1 ~cost:3 ~delay:0.5 Link.Hierarchical;
    |]
  in
  let g = Graph.create ads links in
  let config = Config.defaults g in
  let module R = Pr_proto.Runner.Make (Pr_lshbh.Lshbh) in
  let r = R.setup g config in
  ignore (R.converge r);
  let path_for qos =
    match R.send_flow r (Flow.make ~src:0 ~dst:1 ~qos ()) with
    | Pr_proto.Forwarding.Delivered { path; _ } -> path
    | o -> Alcotest.failf "expected delivery, got %a" Pr_proto.Forwarding.pp_outcome o
  in
  Alcotest.(check (list int)) "default rides the cheap transit" [ 0; 2; 1 ]
    (path_for Pr_policy.Qos.Default);
  Alcotest.(check (list int)) "low delay rides the fast transit" [ 0; 3; 1 ]
    (path_for Pr_policy.Qos.Low_delay);
  (* ECMA's per-QOS FIBs make the same split. *)
  let module Re = Pr_proto.Runner.Make (Pr_ecma.Ecma) in
  let re = Re.setup g config in
  ignore (Re.converge re);
  let epath qos =
    match Re.send_flow re (Flow.make ~src:0 ~dst:1 ~qos ()) with
    | Pr_proto.Forwarding.Delivered { path; _ } -> path
    | o -> Alcotest.failf "ecma: expected delivery, got %a" Pr_proto.Forwarding.pp_outcome o
  in
  Alcotest.(check (list int)) "ecma default via X" [ 0; 2; 1 ] (epath Pr_policy.Qos.Default);
  Alcotest.(check (list int)) "ecma low delay via Y" [ 0; 3; 1 ]
    (epath Pr_policy.Qos.Low_delay)

(* --- Forwarding ------------------------------------------------------ *)

let forwarding_delivers () =
  let outcome =
    Forwarding.send ~n:5
      ~prepare:(fun _ -> Packet.no_prep)
      ~originate:(fun _ -> ())
      ~forward:(fun ~at ~from:_ packet ->
        if at = packet.Packet.flow.Flow.dst then Packet.Deliver else Packet.Forward (at + 1))
      ~adjacent:(fun _ _ -> true)
      (Flow.make ~src:0 ~dst:3 ())
  in
  match outcome with
  | Forwarding.Delivered { path; _ } ->
    Alcotest.(check (list int)) "hop by hop" [ 0; 1; 2; 3 ] path
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o

let forwarding_detects_loop () =
  let outcome =
    Forwarding.send ~n:4
      ~prepare:(fun _ -> Packet.no_prep)
      ~originate:(fun _ -> ())
      ~forward:(fun ~at ~from:_ _ -> Packet.Forward ((at + 1) mod 2))
      ~adjacent:(fun _ _ -> true)
      (Flow.make ~src:0 ~dst:3 ())
  in
  match outcome with
  | Forwarding.Looped _ -> ()
  | o -> Alcotest.failf "expected loop, got %a" Forwarding.pp_outcome o

let forwarding_detects_dead_link () =
  let outcome =
    Forwarding.send ~n:4
      ~prepare:(fun _ -> Packet.no_prep)
      ~originate:(fun _ -> ())
      ~forward:(fun ~at:_ ~from:_ _ -> Packet.Forward 2)
      ~adjacent:(fun _ _ -> false)
      (Flow.make ~src:0 ~dst:3 ())
  in
  match outcome with
  | Forwarding.Dropped { at; _ } -> check_int "dropped at source" 0 at
  | o -> Alcotest.failf "expected drop, got %a" Forwarding.pp_outcome o

let forwarding_prep_failure () =
  let outcome =
    Forwarding.send ~n:4
      ~prepare:(fun _ -> { Packet.no_prep with failure = Some "nope" })
      ~originate:(fun _ -> Alcotest.fail "originate must not run")
      ~forward:(fun ~at:_ ~from:_ _ -> Packet.Deliver)
      ~adjacent:(fun _ _ -> true)
      (Flow.make ~src:0 ~dst:3 ())
  in
  match outcome with
  | Forwarding.Prep_failed { reason; _ } -> Alcotest.(check string) "reason" "nope" reason
  | o -> Alcotest.failf "expected prep failure, got %a" Forwarding.pp_outcome o

let forwarding_wrong_delivery () =
  let outcome =
    Forwarding.send ~n:4
      ~prepare:(fun _ -> Packet.no_prep)
      ~originate:(fun _ -> ())
      ~forward:(fun ~at:_ ~from:_ _ -> Packet.Deliver)
      ~adjacent:(fun _ _ -> true)
      (Flow.make ~src:0 ~dst:3 ())
  in
  match outcome with
  | Forwarding.Dropped { reason; _ } ->
    Alcotest.(check string) "reason" "delivered at wrong AD" reason
  | o -> Alcotest.failf "expected drop, got %a" Forwarding.pp_outcome o

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_proto"
    [
      ( "design-point",
        [
          Alcotest.test_case "distinct" `Quick design_points_distinct;
          Alcotest.test_case "strings" `Quick design_point_strings;
        ] );
      ("cost-model", [ Alcotest.test_case "shapes" `Quick cost_model_shapes ]);
      ( "lsdb",
        [
          Alcotest.test_case "sequencing" `Quick lsdb_sequencing;
          Alcotest.test_case "bidirectional" `Quick lsdb_bidirectional;
          Alcotest.test_case "known/fold" `Quick lsdb_known_and_fold;
          Alcotest.test_case "bytes pinned" `Quick lsdb_bytes_pinned;
        ] );
      ( "ls-flood",
        [
          Alcotest.test_case "converges consistent" `Quick flood_converges_consistent;
          Alcotest.test_case "reacts to failure" `Quick flood_reacts_to_failure;
          Alcotest.test_case "change callback" `Quick flood_change_callback;
        ] );
      ( "policy-route",
        [
          Alcotest.test_case "matches oracle" `Quick policy_route_matches_oracle;
          Alcotest.test_case "respects avoid" `Quick policy_route_respects_avoid;
          Alcotest.test_case "enumerate legal" `Quick policy_route_enumerate_legal;
        ]
        @ qsuite [ policy_route_respects_policy ] );
      ( "qos-routing",
        [
          Alcotest.test_case "metric shapes" `Quick qos_metric_shapes;
          Alcotest.test_case "path delay" `Quick qos_path_delay;
          Alcotest.test_case "per-QOS paths differ" `Quick qos_routes_differ;
        ] );
      ( "forwarding",
        [
          Alcotest.test_case "delivers" `Quick forwarding_delivers;
          Alcotest.test_case "detects loop" `Quick forwarding_detects_loop;
          Alcotest.test_case "detects dead link" `Quick forwarding_detects_dead_link;
          Alcotest.test_case "prep failure" `Quick forwarding_prep_failure;
          Alcotest.test_case "wrong delivery" `Quick forwarding_wrong_delivery;
        ] );
    ]

(* Unit and property tests for pr_policy. *)

module Rng = Pr_util.Rng
module Bitset = Pr_util.Bitset
module Ad = Pr_topology.Ad
module Graph = Pr_topology.Graph
module Figure1 = Pr_topology.Figure1
module Qos = Pr_policy.Qos
module Uci = Pr_policy.Uci
module Flow = Pr_policy.Flow
module Policy_term = Pr_policy.Policy_term
module Transit_policy = Pr_policy.Transit_policy
module Source_policy = Pr_policy.Source_policy
module Config = Pr_policy.Config
module Gen = Pr_policy.Gen
module Validate = Pr_policy.Validate
module Compiled = Pr_policy.Compiled
module Policy_store = Pr_policy.Policy_store

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* --- Qos / Uci ----------------------------------------------------- *)

let qos_roundtrip () =
  List.iter
    (fun q -> check_bool "roundtrip" true (Qos.equal q (Qos.of_index (Qos.index q))))
    Qos.all;
  check_int "count" (List.length Qos.all) Qos.count;
  Alcotest.check_raises "bad index" (Invalid_argument "Qos.of_index") (fun () ->
      ignore (Qos.of_index 99))

let uci_roundtrip () =
  List.iter
    (fun u -> check_bool "roundtrip" true (Uci.equal u (Uci.of_index (Uci.index u))))
    Uci.all;
  check_int "count" (List.length Uci.all) Uci.count

(* --- Flow ---------------------------------------------------------- *)

let flow_basics () =
  let f = Flow.make ~src:1 ~dst:2 () in
  check_int "src" 1 f.Flow.src;
  check_int "dst" 2 f.Flow.dst;
  let r = Flow.reverse f in
  check_int "reversed src" 2 r.Flow.src;
  Alcotest.check_raises "bad hour" (Invalid_argument "Flow.make: hour out of range")
    (fun () -> ignore (Flow.make ~src:0 ~dst:1 ~hour:24 ()))

let flow_class_keys () =
  let keys =
    List.concat_map
      (fun q -> List.map (fun u -> Flow.class_key (Flow.make ~src:0 ~dst:1 ~qos:q ~uci:u ())) Uci.all)
      Qos.all
  in
  check_int "distinct class keys" Flow.class_count (List.length (List.sort_uniq compare keys));
  check_bool "keys in range" true (List.for_all (fun k -> k >= 0 && k < Flow.class_count) keys)

let flow_class_with_source =
  QCheck.Test.make ~name:"class_key_with_source is injective per (class, src)" ~count:200
    QCheck.(quad (int_range 0 3) (int_range 0 2) (int_range 0 19) (int_range 0 19))
    (fun (qi, ui, s1, s2) ->
      let f1 = Flow.make ~src:s1 ~dst:0 ~qos:(Qos.of_index qi) ~uci:(Uci.of_index ui) () in
      let f2 = Flow.make ~src:s2 ~dst:0 ~qos:(Qos.of_index qi) ~uci:(Uci.of_index ui) () in
      let k1 = Flow.class_key_with_source ~n:20 f1
      and k2 = Flow.class_key_with_source ~n:20 f2 in
      (s1 = s2) = (k1 = k2))

(* --- Policy terms -------------------------------------------------- *)

let ctx ?(src = 0) ?(dst = 9) ?(qos = Qos.Default) ?(uci = Uci.Research) ?(hour = 12)
    ?(auth = false) ?prev ?next () =
  {
    Policy_term.flow = Flow.make ~src ~dst ~qos ~uci ~hour ~authenticated:auth ();
    prev;
    next;
  }

let pt_open () =
  let t = Policy_term.open_term 5 in
  check_bool "admits anything" true (Policy_term.admits t (ctx ~prev:1 ~next:2 ()));
  check_bool "admits none endpoints" true (Policy_term.admits t (ctx ()))

let pt_source_pred () =
  let t = Policy_term.make ~owner:5 ~sources:(Policy_term.Only [| 1; 2 |]) () in
  check_bool "admits listed source" true (Policy_term.admits t (ctx ~src:1 ()));
  check_bool "rejects other source" false (Policy_term.admits t (ctx ~src:3 ()));
  let e = Policy_term.make ~owner:5 ~sources:(Policy_term.Except [| 1 |]) () in
  check_bool "except rejects listed" false (Policy_term.admits e (ctx ~src:1 ()));
  check_bool "except admits others" true (Policy_term.admits e (ctx ~src:3 ()))

let pt_hop_preds () =
  let t =
    Policy_term.make ~owner:5 ~prev_hops:(Policy_term.Only [| 7 |])
      ~next_hops:(Policy_term.Except [| 8 |]) ()
  in
  check_bool "good hops" true (Policy_term.admits t (ctx ~prev:7 ~next:9 ()));
  check_bool "bad prev" false (Policy_term.admits t (ctx ~prev:6 ~next:9 ()));
  check_bool "bad next" false (Policy_term.admits t (ctx ~prev:7 ~next:8 ()));
  check_bool "missing prev passes" true (Policy_term.admits t (ctx ~next:9 ()))

let pt_qos_uci () =
  let t = Policy_term.make ~owner:5 ~qos:[ Qos.Low_delay ] ~ucis:[ Uci.Commercial ] () in
  check_bool "matching class" true
    (Policy_term.admits t (ctx ~qos:Qos.Low_delay ~uci:Uci.Commercial ()));
  check_bool "wrong qos" false (Policy_term.admits t (ctx ~qos:Qos.Default ~uci:Uci.Commercial ()));
  check_bool "wrong uci" false (Policy_term.admits t (ctx ~qos:Qos.Low_delay ()));
  Alcotest.check_raises "empty qos" (Invalid_argument "Policy_term.make: empty QOS list")
    (fun () -> ignore (Policy_term.make ~owner:1 ~qos:[] ()))

let pt_hours () =
  let t = Policy_term.make ~owner:5 ~hours:(9, 17) () in
  check_bool "inside window" true (Policy_term.admits t (ctx ~hour:12 ()));
  check_bool "before window" false (Policy_term.admits t (ctx ~hour:8 ()));
  check_bool "at end (half open)" false (Policy_term.admits t (ctx ~hour:17 ()));
  let w = Policy_term.make ~owner:5 ~hours:(22, 6) () in
  check_bool "wrapping window late" true (Policy_term.admits w (ctx ~hour:23 ()));
  check_bool "wrapping window early" true (Policy_term.admits w (ctx ~hour:3 ()));
  check_bool "wrapping window midday" false (Policy_term.admits w (ctx ~hour:12 ()))

let pt_auth () =
  let t = Policy_term.make ~owner:5 ~auth_required:true () in
  check_bool "unauthenticated rejected" false (Policy_term.admits t (ctx ()));
  check_bool "authenticated accepted" true (Policy_term.admits t (ctx ~auth:true ()))

let pt_bytes () =
  let open_bytes = Policy_term.advertisement_bytes (Policy_term.open_term 1) in
  let listed =
    Policy_term.advertisement_bytes
      (Policy_term.make ~owner:1 ~sources:(Policy_term.Only [| 1; 2; 3 |]) ())
  in
  check_bool "listing sources costs bytes" true (listed = open_bytes + 6)

(* --- Transit policy ------------------------------------------------ *)

let transit_policy_semantics () =
  let p = Transit_policy.no_transit 3 in
  check_bool "stub never allows" false
    (Transit_policy.allows p (ctx ~prev:1 ~next:2 ()));
  let o = Transit_policy.open_transit 3 in
  check_bool "open allows" true (Transit_policy.allows o (ctx ~prev:1 ~next:2 ()));
  check_bool "admitting term found" true
    (Transit_policy.admitting_term o (ctx ()) <> None);
  Alcotest.check_raises "owner mismatch"
    (Invalid_argument "Transit_policy.make: term owner mismatch") (fun () ->
      ignore (Transit_policy.make 3 [ Policy_term.open_term 4 ]))

let transit_policy_any_term () =
  (* A flow passes if ANY term admits it. *)
  let t1 = Policy_term.make ~owner:3 ~qos:[ Qos.Low_delay ] () in
  let t2 = Policy_term.make ~owner:3 ~ucis:[ Uci.Government ] () in
  let p = Transit_policy.make 3 [ t1; t2 ] in
  check_bool "first term" true (Transit_policy.allows p (ctx ~qos:Qos.Low_delay ()));
  check_bool "second term" true (Transit_policy.allows p (ctx ~uci:Uci.Government ()));
  check_bool "neither" false (Transit_policy.allows p (ctx ()))

(* --- Source policy ------------------------------------------------- *)

let source_policy_permits () =
  let p = Source_policy.make ~owner:0 ~avoid:[ 5 ] ~max_hops:3 () in
  check_bool "clean path" true (Source_policy.permits p [ 0; 1; 2 ]);
  check_bool "avoided transit" false (Source_policy.permits p [ 0; 5; 2 ]);
  check_bool "avoid only applies to interior" true (Source_policy.permits p [ 0; 1; 5 ]);
  check_bool "hop budget" false (Source_policy.permits p [ 0; 1; 2; 3; 4 ])

let source_policy_best () =
  let g = Figure1.graph () in
  let p = Source_policy.make ~owner:7 ~prefer:[ 0 ] () in
  let paths = [ [ 7; 2; 0; 3; 8 ]; [ 7; 2; 0; 1; 4; 10 ] ] in
  match Source_policy.best p g paths with
  | None -> Alcotest.fail "expected a best path"
  | Some best -> check_bool "picks a permitted path" true (List.mem best paths)

let source_policy_score () =
  let g = Figure1.graph () in
  let unrestricted = Source_policy.unrestricted 7 in
  let s = Source_policy.score unrestricted g [ 7; 2; 0 ] in
  check_bool "score finite for valid" true (s < infinity);
  let avoid = Source_policy.make ~owner:7 ~avoid:[ 2 ] () in
  check_bool "score infinite for refused" true
    (Source_policy.score avoid g [ 7; 2; 0 ] = infinity)

(* --- Config -------------------------------------------------------- *)

let config_defaults () =
  let g = Figure1.graph () in
  let c = Config.defaults g in
  check_int "n" 14 (Config.n c);
  (* Stubs have no terms; transit ADs have one open term. *)
  check_int "stub terms" 0 (Transit_policy.term_count (Config.transit c 7));
  check_int "backbone terms" 1 (Transit_policy.term_count (Config.transit c 0));
  check_bool "no source policies" true (not (Config.has_source_policy c 7));
  check_bool "source defaults to unrestricted" true
    ((Config.source c 7).Source_policy.avoid = [])

let config_validation () =
  Alcotest.check_raises "owner mismatch" (Invalid_argument "Config.make: transit owner mismatch")
    (fun () -> ignore (Config.make ~transit:[| Transit_policy.no_transit 5 |] ()))

(* --- Gen ----------------------------------------------------------- *)

let gen_stubs_never_transit =
  QCheck.Test.make ~name:"generated stubs have no policy terms" ~count:40
    QCheck.(pair small_int (float_bound_inclusive 1.0))
    (fun (seed, r) ->
      let g = Figure1.graph () in
      let c =
        Gen.generate (Rng.create seed) g { Gen.default with restrictiveness = r }
      in
      List.for_all
        (fun ad -> Transit_policy.term_count (Config.transit c ad) = 0)
        (Graph.stub_ids g))

let gen_zero_restrictiveness_is_open () =
  let g = Figure1.graph () in
  let c =
    Gen.generate (Rng.create 4) g
      { Gen.restrictiveness = 0.0; granularity = Gen.Coarse; source_policy_prob = 0.0 }
  in
  List.iter
    (fun ad ->
      let flow_ctx = ctx ~src:7 ~dst:8 ~prev:1 ~next:2 () in
      check_bool "transit AD open" true (Transit_policy.allows (Config.transit c ad) flow_ctx))
    (List.filter
       (fun ad -> (Graph.ad g ad).Ad.klass = Ad.Transit)
       (Graph.transit_ids g))

let gen_fine_means_more_terms =
  QCheck.Test.make ~name:"fine granularity produces at least as many terms as coarse"
    ~count:20 QCheck.small_int (fun seed ->
      let g = Figure1.graph () in
      let coarse =
        Gen.generate (Rng.create seed) g
          { Gen.restrictiveness = 1.0; granularity = Gen.Coarse; source_policy_prob = 0.0 }
      in
      let fine =
        Gen.generate (Rng.create seed) g
          { Gen.restrictiveness = 1.0; granularity = Gen.Fine; source_policy_prob = 0.0 }
      in
      Config.total_terms fine >= Config.total_terms coarse)

let gen_deterministic () =
  let g = Figure1.graph () in
  let c1 = Gen.generate (Rng.create 11) g Gen.default in
  let c2 = Gen.generate (Rng.create 11) g Gen.default in
  check_int "same total terms" (Config.total_terms c1) (Config.total_terms c2);
  check_int "same bytes" (Config.total_advertisement_bytes c1)
    (Config.total_advertisement_bytes c2)

(* --- Validate ------------------------------------------------------ *)

let oracle_open_config () =
  let g = Figure1.graph () in
  let c = Config.defaults g in
  let flow = Flow.make ~src:7 ~dst:8 () in
  (* 7 -> R1(2) -> BB1(0) -> R2(3) -> 8 is legal under open transit. *)
  check_bool "legal path" true (Validate.legal g c flow [ 7; 2; 0; 3; 8 ]);
  (* A path through a stub is refused. *)
  (match Validate.check g c (Flow.make ~src:2 ~dst:1 ()) [ 2; 6; 1 ] with
  | Validate.Transit_refused { ad; _ } -> check_int "refused at stub" 6 ad
  | v -> Alcotest.failf "expected transit refusal, got %a" Validate.pp_verdict v);
  (* Broken path. *)
  (match Validate.check g c flow [ 7; 0; 8 ] with
  | Validate.Broken _ -> ()
  | v -> Alcotest.failf "expected broken, got %a" Validate.pp_verdict v);
  (match Validate.check g c flow [ 8; 3; 0; 2; 7 ] with
  | Validate.Broken _ -> ()
  | v -> Alcotest.failf "expected wrong-endpoint broken, got %a" Validate.pp_verdict v)

let oracle_source_refusal () =
  let g = Figure1.graph () in
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        if Ad.is_transit_capable a then Transit_policy.open_transit a.Ad.id
        else Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  let source = Array.make 14 None in
  source.(7) <- Some (Source_policy.make ~owner:7 ~avoid:[ 0 ] ());
  let c = Config.make ~transit ~source () in
  let flow = Flow.make ~src:7 ~dst:8 () in
  check_bool "source refused" true
    (Validate.check g c flow [ 7; 2; 0; 3; 8 ] = Validate.Source_refused);
  check_bool "transit-legal nonetheless" true (Validate.transit_legal g c flow [ 7; 2; 0; 3; 8 ])

let oracle_enumeration_matches_unconstrained () =
  let g = Figure1.graph () in
  let c = Config.defaults g in
  let flow = Flow.make ~src:7 ~dst:8 () in
  let legal = Validate.legal_paths g c flow ~max_hops:6 () in
  check_bool "all returned paths are legal" true
    (List.for_all (fun p -> Validate.transit_legal g c flow p) legal);
  (* Compare against brute-force enumeration + filter. *)
  let all =
    Pr_topology.Path.enumerate_simple g ~src:7 ~dst:8 ~max_hops:6 ()
    |> List.filter (fun p -> Validate.transit_legal g c flow p)
  in
  check_int "same count as brute force" (List.length all) (List.length legal)

let oracle_route_exists () =
  let g = Figure1.graph () in
  let c = Config.defaults g in
  check_bool "route exists" true
    (Validate.route_exists g c (Flow.make ~src:7 ~dst:12 ()) ~max_hops:8);
  (* With all transit closed, only direct neighbors are reachable. *)
  let closed =
    Config.make
      ~transit:(Array.init 14 (fun i -> Transit_policy.no_transit i))
      ()
  in
  check_bool "no transit, remote unreachable" false
    (Validate.route_exists g closed (Flow.make ~src:7 ~dst:12 ()) ~max_hops:8);
  check_bool "direct neighbor ok" true
    (Validate.route_exists g closed (Flow.make ~src:7 ~dst:2 ()) ~max_hops:8)

let oracle_best_legal () =
  let g = Figure1.graph () in
  let c = Config.defaults g in
  let flow = Flow.make ~src:9 ~dst:10 () in
  match Validate.best_legal g c flow ~max_hops:8 with
  | None -> Alcotest.fail "expected a best path"
  | Some best ->
    (* The campus lateral link 9--10 is the 1-hop best route. *)
    Alcotest.(check (list int)) "direct lateral" [ 9; 10 ] best

let oracle_qcheck_consistency =
  QCheck.Test.make ~name:"every enumerated legal path passes check" ~count:30
    QCheck.small_int (fun seed ->
      let g = Figure1.graph () in
      let rng = Rng.create seed in
      let c = Gen.generate rng g { Gen.default with restrictiveness = 0.5 } in
      let hosts = Graph.host_ids g in
      let src = Rng.choose rng hosts in
      let dst = List.nth hosts ((List.length hosts - 1) mod List.length hosts) in
      src = dst
      ||
      let flow = Flow.make ~src ~dst () in
      let paths = Validate.legal_paths g c flow ~max_hops:7 () in
      List.for_all (fun p -> Validate.transit_legal g c flow p) paths)

(* Random policy-term generator for algebraic properties. *)
let gen_pred =
  QCheck.Gen.(
    frequency
      [
        (2, return Policy_term.Any);
        (1, map (fun l -> Policy_term.Only (Array.of_list (List.sort_uniq compare l)))
             (list_size (int_range 1 5) (int_range 0 13)));
        (1, map (fun l -> Policy_term.Except (Array.of_list (List.sort_uniq compare l)))
             (list_size (int_range 1 5) (int_range 0 13)));
      ])

let gen_ctx =
  QCheck.Gen.(
    let id = int_range 0 13 in
    map
      (fun (src, dst, (qi, ui, hour, auth), prev, next) ->
        {
          Policy_term.flow =
            Flow.make ~src ~dst ~qos:(Qos.of_index qi) ~uci:(Uci.of_index ui) ~hour
              ~authenticated:auth ();
          prev = (if prev < 0 then None else Some prev);
          next = (if next < 0 then None else Some next);
        })
      (tup5 id id
         (tup4 (int_range 0 3) (int_range 0 2) (int_range 0 23) bool)
         (int_range (-1) 13) (int_range (-1) 13)))

let pt_open_admits_everything =
  QCheck.Test.make ~name:"open term admits every crossing" ~count:300
    (QCheck.make gen_ctx)
    (fun ctx -> Policy_term.admits (Policy_term.open_term 5) ctx)

let pt_only_except_complement =
  QCheck.Test.make ~name:"Only and Except are complementary on sources" ~count:300
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 0 6) (int_range 0 13)) gen_ctx))
    (fun (ids, ctx) ->
      let ids = List.sort_uniq compare ids in
      let only = Policy_term.make ~owner:5 ~sources:(Policy_term.Only (Array.of_list ids)) () in
      let except = Policy_term.make ~owner:5 ~sources:(Policy_term.Except (Array.of_list ids)) () in
      Policy_term.admits only ctx <> Policy_term.admits except ctx)

let pt_restriction_monotone =
  QCheck.Test.make ~name:"adding a constraint never admits more" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_pred gen_ctx))
    (fun (pred, ctx) ->
      let base = Policy_term.open_term 5 in
      let restricted = { base with Policy_term.sources = pred } in
      (not (Policy_term.admits restricted ctx)) || Policy_term.admits base ctx)

let hour_window_complement =
  QCheck.Test.make ~name:"an hour window and its complement cover the day" ~count:300
    (QCheck.make QCheck.Gen.(tup3 (int_range 0 23) (int_range 0 23) (int_range 0 23)))
    (fun (h1, h2, hour) ->
      h1 = h2
      || Policy_term.hour_in_window (Some (h1, h2)) hour
         <> Policy_term.hour_in_window (Some (h2, h1)) hour)

let transit_union_monotone =
  QCheck.Test.make ~name:"adding a term to a policy never refuses more" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_pred gen_ctx))
    (fun (pred, ctx) ->
      let t1 = Policy_term.make ~owner:5 ~sources:pred () in
      let t2 = Policy_term.make ~owner:5 ~destinations:pred () in
      let small = Transit_policy.make 5 [ t1 ] in
      let big = Transit_policy.make 5 [ t1; t2 ] in
      (not (Transit_policy.allows small ctx)) || Transit_policy.allows big ctx)

let oracle_dijkstra_matches_enumeration =
  (* shortest_legal (state Dijkstra) must find a route exactly when the
     exhaustive enumeration does, and of equal optimal cost. *)
  QCheck.Test.make ~name:"shortest_legal agrees with exhaustive enumeration" ~count:40
    QCheck.(pair small_int (pair (int_range 0 13) (int_range 0 13)))
    (fun (seed, (src, dst)) ->
      src = dst
      ||
      let g = Figure1.graph () in
      let rng = Rng.create seed in
      let c = Gen.generate rng g { Gen.default with restrictiveness = 0.6 } in
      let flow = Flow.make ~src ~dst () in
      let dijkstra = Validate.shortest_legal g c flow () in
      let enumerated = Validate.legal_paths g c flow ~max_hops:13 () in
      let best_enumerated =
        List.filter_map (fun p -> Pr_topology.Path.cost g p) enumerated
        |> List.fold_left Stdlib.min max_int
      in
      match dijkstra with
      | None -> enumerated = []
      | Some p ->
        Validate.transit_legal g c flow p
        && Pr_topology.Path.cost g p = Some best_enumerated)

(* --- Compiled engine ------------------------------------------------ *)

(* The compiled engine's whole contract is observational equivalence
   with the interpreted term walk, so these properties generate term
   lists that hit every compilation edge: empty Only/Except arrays,
   out-of-universe ids (dropped from the bitsets), unsorted duplicate
   id lists (sorted by [make], duplicates kept for byte accounting),
   wrap-around hour windows, and auth-required terms. *)

let universe = 14

let gen_pred_full =
  QCheck.Gen.(
    frequency
      [
        (3, return Policy_term.Any);
        (1, return (Policy_term.Only [||]));
        (1, return (Policy_term.Except [||]));
        ( 3,
          map
            (fun l -> Policy_term.Only (Array.of_list l))
            (list_size (int_range 1 6) (int_range 0 20)) );
        ( 3,
          map
            (fun l -> Policy_term.Except (Array.of_list l))
            (list_size (int_range 1 6) (int_range 0 20)) );
      ])

let gen_subset all =
  QCheck.Gen.(
    map
      (fun mask ->
        match List.filteri (fun i _ -> (mask lsr i) land 1 = 1) all with
        | [] -> all
        | l -> l)
      (int_range 0 ((1 lsl List.length all) - 1)))

let gen_hours =
  QCheck.Gen.(
    frequency
      [
        (2, return None);
        ( 3,
          map2
            (fun a b -> if a = b then None else Some (a, b))
            (int_range 0 23) (int_range 0 23) );
      ])

let gen_term =
  QCheck.Gen.(
    map
      (fun ((src, dst, prev, next), qos, ucis, (hours, auth)) ->
        Policy_term.make ~owner:5 ~sources:src ~destinations:dst ~prev_hops:prev
          ~next_hops:next ~qos ~ucis ?hours ~auth_required:auth ())
      (tup4
         (tup4 gen_pred_full gen_pred_full gen_pred_full gen_pred_full)
         (gen_subset Qos.all) (gen_subset Uci.all)
         (tup2 gen_hours bool)))

let gen_terms = QCheck.Gen.(list_size (int_range 0 5) gen_term)

let compiled_allows_matches_interpreted =
  QCheck.Test.make ~name:"Compiled.allows agrees with Transit_policy.allows" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_terms gen_ctx))
    (fun (terms, ctx) ->
      let policy = Transit_policy.make 5 terms in
      let compiled = Compiled.compile ~n:universe terms in
      Compiled.allows compiled ctx = Transit_policy.allows policy ctx)

let compiled_admitting_term_matches =
  QCheck.Test.make ~name:"Compiled.admitting_term picks the same term" ~count:300
    (QCheck.make QCheck.Gen.(pair gen_terms gen_ctx))
    (fun (terms, ctx) ->
      let policy = Transit_policy.make 5 terms in
      let compiled = Compiled.compile ~n:universe terms in
      Compiled.admitting_term compiled ctx = Transit_policy.admitting_term policy ctx)

let spec_matches_full_probe =
  QCheck.Test.make ~name:"flow-specialized probe agrees with the full compiled probe"
    ~count:500
    (QCheck.make QCheck.Gen.(pair gen_terms gen_ctx))
    (fun (terms, ctx) ->
      let compiled = Compiled.compile ~n:universe terms in
      let spec = Compiled.specialize compiled ctx.Policy_term.flow in
      Compiled.spec_allows spec ~prev:ctx.Policy_term.prev ~next:ctx.Policy_term.next
      = Compiled.allows compiled ctx)

let admitted_sources_matches_scan =
  QCheck.Test.make
    ~name:"admitted_sources_into equals the per-source interpreted scan" ~count:200
    (QCheck.make
       QCheck.Gen.(
         tup5 gen_terms (int_range 0 13)
           (tup2 (int_range 0 (Qos.count - 1)) (int_range 0 (Uci.count - 1)))
           (int_range (-1) 13) (int_range (-1) 13)))
    (fun (terms, dst, (qi, ui), prev, next) ->
      let qos = Qos.of_index qi and uci = Uci.of_index ui in
      let prev = if prev < 0 then None else Some prev in
      let next = if next < 0 then None else Some next in
      let compiled = Compiled.compile ~n:universe terms in
      let acc = Bitset.create universe in
      Compiled.admitted_sources_into compiled acc ~dst ~qos ~uci ~hour:12 ~auth:false
        ~prev ~next;
      let policy = Transit_policy.make 5 terms in
      List.for_all
        (fun src ->
          let flow = Flow.make ~src ~dst ~qos ~uci () in
          Bitset.mem acc src
          = Transit_policy.allows policy { Policy_term.flow; prev; next })
        (List.init universe Fun.id))

let pt_hours_degenerate () =
  Alcotest.check_raises "empty window rejected"
    (Invalid_argument "Policy_term.make: empty hour window") (fun () ->
      ignore (Policy_term.make ~owner:5 ~hours:(7, 7) ()));
  for h = 0 to 23 do
    check_bool "degenerate window admits no hour" false
      (Policy_term.hour_in_window (Some (3, 3)) h)
  done;
  (* Wrap-around window: inside on both sides of midnight, outside
     in the middle of the day. *)
  check_bool "wrap before midnight" true (Policy_term.hour_in_window (Some (22, 6)) 23);
  check_bool "wrap after midnight" true (Policy_term.hour_in_window (Some (22, 6)) 5);
  check_bool "wrap end exclusive" false (Policy_term.hour_in_window (Some (22, 6)) 6);
  check_bool "wrap midday outside" false (Policy_term.hour_in_window (Some (22, 6)) 12)

let transit_bytes_cached () =
  let t1 = Policy_term.make ~owner:3 ~sources:(Policy_term.Only [| 4; 1; 2 |]) () in
  let t2 = Policy_term.make ~owner:3 ~destinations:(Policy_term.Except [| 9 |]) () in
  (* Pinned PT sizes: 8-byte fixed part + 2 bytes per listed id. *)
  check_int "3-id predicate" (8 + (2 * 3)) (Policy_term.advertisement_bytes t1);
  check_int "1-id predicate" (8 + (2 * 1)) (Policy_term.advertisement_bytes t2);
  let p = Transit_policy.make 3 [ t1; t2 ] in
  check_int "cached policy bytes are the term sum"
    (Policy_term.advertisement_bytes t1 + Policy_term.advertisement_bytes t2)
    (Transit_policy.advertisement_bytes p);
  check_int "no_transit advertises nothing" 0
    (Transit_policy.advertisement_bytes (Transit_policy.no_transit 1))

let store_memo_and_version () =
  let g = Figure1.graph () in
  let c = Config.defaults g in
  check_bool "of_config memoized" true
    (Policy_store.of_config c == Policy_store.of_config c);
  let store = Policy_store.create c in
  check_bool "create is private" true (store != Policy_store.of_config c);
  check_int "n" 14 (Policy_store.n store);
  check_int "fresh version" 0 (Policy_store.version store);
  (* Backbone 0 is open transit under the class-implied defaults. *)
  let crossing = ctx ~src:7 ~dst:8 ~prev:2 ~next:3 () in
  check_bool "open transit admits" true (Policy_store.allows store 0 crossing);
  check_bool "admitting term cited" true
    (Policy_store.admitting_term store 0 crossing <> None);
  Policy_store.set_transit store 0 (Transit_policy.no_transit 0);
  check_int "version bumped" 1 (Policy_store.version store);
  check_bool "recompiled after mutation" false (Policy_store.allows store 0 crossing);
  check_bool "shared store unaffected" true
    (Policy_store.allows (Policy_store.of_config c) 0 crossing)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_policy"
    [
      ( "qos-uci",
        [
          Alcotest.test_case "qos roundtrip" `Quick qos_roundtrip;
          Alcotest.test_case "uci roundtrip" `Quick uci_roundtrip;
        ] );
      ( "flow",
        [
          Alcotest.test_case "basics" `Quick flow_basics;
          Alcotest.test_case "class keys" `Quick flow_class_keys;
        ]
        @ qsuite [ flow_class_with_source ] );
      ( "policy-term",
        [
          Alcotest.test_case "open term" `Quick pt_open;
          Alcotest.test_case "source predicate" `Quick pt_source_pred;
          Alcotest.test_case "hop predicates" `Quick pt_hop_preds;
          Alcotest.test_case "qos/uci" `Quick pt_qos_uci;
          Alcotest.test_case "hour windows" `Quick pt_hours;
          Alcotest.test_case "degenerate hour windows" `Quick pt_hours_degenerate;
          Alcotest.test_case "authentication" `Quick pt_auth;
          Alcotest.test_case "byte accounting" `Quick pt_bytes;
        ] );
      ( "transit-policy",
        [
          Alcotest.test_case "semantics" `Quick transit_policy_semantics;
          Alcotest.test_case "any-term disjunction" `Quick transit_policy_any_term;
          Alcotest.test_case "advertisement bytes cached" `Quick transit_bytes_cached;
        ] );
      ( "compiled",
        [ Alcotest.test_case "store memo and versioning" `Quick store_memo_and_version ]
        @ qsuite
            [
              compiled_allows_matches_interpreted;
              compiled_admitting_term_matches;
              spec_matches_full_probe;
              admitted_sources_matches_scan;
            ] );
      ( "source-policy",
        [
          Alcotest.test_case "permits" `Quick source_policy_permits;
          Alcotest.test_case "best" `Quick source_policy_best;
          Alcotest.test_case "score" `Quick source_policy_score;
        ] );
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick config_defaults;
          Alcotest.test_case "validation" `Quick config_validation;
        ] );
      ( "gen",
        [
          Alcotest.test_case "zero restrictiveness open" `Quick gen_zero_restrictiveness_is_open;
          Alcotest.test_case "deterministic" `Quick gen_deterministic;
        ]
        @ qsuite [ gen_stubs_never_transit; gen_fine_means_more_terms ] );
      ( "validate",
        [
          Alcotest.test_case "open config verdicts" `Quick oracle_open_config;
          Alcotest.test_case "source refusal" `Quick oracle_source_refusal;
          Alcotest.test_case "enumeration matches brute force" `Quick
            oracle_enumeration_matches_unconstrained;
          Alcotest.test_case "route exists" `Quick oracle_route_exists;
          Alcotest.test_case "best legal" `Quick oracle_best_legal;
        ]
        @ qsuite
            [
              oracle_qcheck_consistency;
              oracle_dijkstra_matches_enumeration;
              pt_open_admits_everything;
              pt_only_except_complement;
              pt_restriction_monotone;
              hour_window_complement;
              transit_union_monotone;
            ] );
    ]

(* Tests for the IDRP/BGP-2 design point: AD-path loop suppression,
   policy attributes, and the per-source replication trade-off. *)

module Rng = Pr_util.Rng
module Bitset = Pr_util.Bitset
module Graph = Pr_topology.Graph
module Ad = Pr_topology.Ad
module Path = Pr_topology.Path
module Generator = Pr_topology.Generator
module Figure1 = Pr_topology.Figure1
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Gen = Pr_policy.Gen
module Validate = Pr_policy.Validate
module Transit_policy = Pr_policy.Transit_policy
module Policy_term = Pr_policy.Policy_term
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Idrp = Pr_idrp.Idrp
module R = Runner.Make (Idrp.Standard)
module Rps = Runner.Make (Idrp.Per_source)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let converge_on config g =
  let r = R.setup g config in
  let c = R.converge ~max_events:5_000_000 r in
  check_bool "converged" true c.Runner.converged;
  r

let idrp_delivers_open_config () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  let missing = ref 0 in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then
            if not (Forwarding.delivered (R.send_flow r (Flow.make ~src ~dst ()))) then
              incr missing)
        (Graph.host_ids g))
    (Graph.host_ids g);
  check_int "all host pairs delivered" 0 !missing

let idrp_selected_routes_loop_free () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            let flow = Flow.make ~src ~dst () in
            match Idrp.Standard.selected_route (R.protocol r) ~at:src ~dst ~flow with
            | None -> ()
            | Some route ->
              check_bool "AD path loop free" true (Path.is_loop_free route.Idrp.path);
              check_bool "path starts at holder" true (List.hd route.Idrp.path = src);
              check_bool "path ends at dest" true (Path.destination route.Idrp.path = dst)
          end)
        (Graph.host_ids g))
    (Graph.host_ids g)

let idrp_no_transit_violations =
  QCheck.Test.make ~name:"idrp never delivers transit-illegal paths" ~count:15
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let g = Figure1.graph () in
      let config = Gen.generate rng g { Gen.default with restrictiveness = 0.5 } in
      let r = R.setup g config in
      ignore (R.converge ~max_events:5_000_000 r);
      let ok = ref true in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              if src <> dst then begin
                let flow = Flow.make ~src ~dst () in
                match R.send_flow r flow with
                | Forwarding.Delivered { path; _ } ->
                  if not (Validate.transit_legal g config flow path) then ok := false
                | _ -> ()
              end)
            (Graph.host_ids g))
        (Graph.host_ids g);
      !ok)

let refusing_config g ~refuser ~refused_source =
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        if a.Ad.id = refuser then
          Transit_policy.make refuser
            [ Policy_term.make ~owner:refuser ~sources:(Policy_term.Except [| refused_source |]) () ]
        else if Ad.is_transit_capable a then Transit_policy.open_transit a.Ad.id
        else Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  Config.make ~transit ()

let idrp_enforces_source_exclusion () =
  (* BB1 refuses source 7. IDRP's allowed-sources attribute must keep
     7's packets off BB1: either rerouted or dropped, never through 0. *)
  let g = Figure1.graph () in
  let config = refusing_config g ~refuser:0 ~refused_source:7 in
  let r = converge_on config g in
  (match R.send_flow r (Flow.make ~src:7 ~dst:8 ()) with
  | Forwarding.Delivered { path; _ } ->
    check_bool "path avoids the refusing AD" true (not (List.mem 0 (Path.transit_ads path)))
  | Forwarding.Dropped _ -> ()
  | o -> Alcotest.failf "unexpected outcome %a" Forwarding.pp_outcome o);
  (* An unaffected source still crosses BB1 freely. *)
  check_bool "other sources unaffected" true
    (Forwarding.delivered (R.send_flow r (Flow.make ~src:9 ~dst:7 ())))

let idrp_availability_loss_with_coarse_classes () =
  (* 7 -> 8: the only route crosses BB1(0), which refuses source 7 but
     admits everyone else. The (QOS, UCI) class route is shared by all
     sources, so either the route excludes 7 (7 loses) — the paper's
     single-route-per-class weakness. Per-source classes recover it
     when a legal route exists for the class. *)
  let g = Figure1.graph () in
  let config = refusing_config g ~refuser:0 ~refused_source:7 in
  let flow = Flow.make ~src:7 ~dst:8 () in
  (* Oracle: no legal route for 7 (every 7->8 route crosses 0). *)
  check_bool "oracle: nothing legal for 7" false
    (Validate.route_exists g config flow ~max_hops:10);
  let r = converge_on config g in
  check_bool "standard drops it" false (Forwarding.delivered (R.send_flow r flow))

let idrp_per_source_recovers_availability () =
  (* R2(3) refuses source 7 — but 7 -> 10 also has a route via BB2 and
     R3 that avoids R2... both variants should deliver; the point is
     the per-source variant does so with per-source state. *)
  let g = Figure1.graph () in
  let config = refusing_config g ~refuser:3 ~refused_source:7 in
  let flow = Flow.make ~src:7 ~dst:10 () in
  check_bool "oracle: legal route exists" true (Validate.route_exists g config flow ~max_hops:10);
  let rps = Rps.setup g config in
  ignore (Rps.converge ~max_events:10_000_000 rps);
  check_bool "per-source delivers" true (Forwarding.delivered (Rps.send_flow rps flow))

let idrp_per_source_state_blowup () =
  let g = Figure1.graph () in
  let config = Config.defaults g in
  let r = converge_on config g in
  let rps = Rps.setup g config in
  ignore (Rps.converge ~max_events:10_000_000 rps);
  let std = R.table_entries r and ps = Rps.table_entries rps in
  check_bool (Printf.sprintf "per-source tables much larger (%d vs %d)" ps std) true
    (ps > 5 * std)

let idrp_withdrawal_reroutes () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  let lid = Option.get (Graph.find_link g 0 1) in
  R.fail_link r lid;
  let c = R.converge ~max_events:5_000_000 r in
  check_bool "reconverged" true c.Runner.converged;
  check_bool "delivers around the failure" true
    (Forwarding.delivered (R.send_flow r (Flow.make ~src:7 ~dst:12 ())))

module Rsc = Runner.Make (Idrp.Scoped)

let idrp_scoped_hides_information () =
  (* BB1 refuses source 7: under distribution scoping, stub 7 never
     even learns routes that cross BB1, while other stubs do. *)
  let g = Figure1.graph () in
  let config = refusing_config g ~refuser:0 ~refused_source:7 in
  let rsc = Rsc.setup g config in
  ignore (Rsc.converge ~max_events:5_000_000 rsc);
  let flow = Flow.make ~src:7 ~dst:8 () in
  (* 7 holds no route toward 8 at all (information hiding)... *)
  check_bool "route withheld from 7" true
    (Idrp.Scoped.selected_route (Rsc.protocol rsc) ~at:7 ~dst:8 ~flow = None);
  (* ...whereas under the standard variant 7 holds a route it may not
     use. *)
  let r = converge_on config g in
  check_bool "standard variant still distributes" true
    (Idrp.Standard.selected_route (R.protocol r) ~at:7 ~dst:8 ~flow <> None);
  (* Enforcement outcome is identical: the flow does not cross BB1. *)
  (match Rsc.send_flow rsc flow with
  | Forwarding.Delivered { path; _ } ->
    check_bool "avoids refuser" true (not (List.mem 0 (Path.transit_ads path)))
  | Forwarding.Dropped _ | Forwarding.Prep_failed _ -> ()
  | o -> Alcotest.failf "unexpected %a" Forwarding.pp_outcome o);
  (* An admitted stub keeps its routes and delivery. *)
  check_bool "admitted stub unaffected" true
    (Forwarding.delivered (Rsc.send_flow rsc (Flow.make ~src:9 ~dst:8 ())))

let idrp_scoped_smaller_stub_tables () =
  let g = Figure1.graph () in
  let rng = Rng.create 21 in
  let config = Gen.generate rng g { Gen.default with restrictiveness = 0.8 } in
  let r = converge_on config g in
  let rsc = Rsc.setup g config in
  ignore (Rsc.converge ~max_events:5_000_000 rsc);
  let stub_tables (type a m)
      (module P : Pr_proto.Protocol_intf.PROTOCOL with type t = a and type message = m)
      proto =
    List.fold_left (fun acc ad -> acc + P.table_entries proto ad) 0 (Graph.stub_ids g)
  in
  let std = stub_tables (module Idrp.Standard) (R.protocol r) in
  let scoped = stub_tables (module Idrp.Scoped) (Rsc.protocol rsc) in
  check_bool
    (Printf.sprintf "scoped stubs hold fewer routes (%d <= %d)" scoped std)
    true (scoped <= std)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_idrp"
    [
      ( "idrp",
        [
          Alcotest.test_case "delivers open config" `Quick idrp_delivers_open_config;
          Alcotest.test_case "loop-free selected routes" `Quick idrp_selected_routes_loop_free;
          Alcotest.test_case "enforces source exclusion" `Quick idrp_enforces_source_exclusion;
          Alcotest.test_case "availability loss (no legal route)" `Quick
            idrp_availability_loss_with_coarse_classes;
          Alcotest.test_case "per-source recovers availability" `Quick
            idrp_per_source_recovers_availability;
          Alcotest.test_case "per-source state blow-up" `Quick idrp_per_source_state_blowup;
          Alcotest.test_case "withdrawal reroutes" `Quick idrp_withdrawal_reroutes;
          Alcotest.test_case "distribution scope hides information" `Quick
            idrp_scoped_hides_information;
          Alcotest.test_case "distribution scope shrinks stub tables" `Quick
            idrp_scoped_smaller_stub_tables;
        ]
        @ qsuite [ idrp_no_transit_violations ] );
    ]

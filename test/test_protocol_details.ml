(* Fine-grained unit tests of protocol mechanics that the scenario-level
   suites only exercise indirectly: message-handling edge cases,
   advertisement gating, bit progression on packets, loop rejection. *)

module Rng = Pr_util.Rng
module Ad = Pr_topology.Ad
module Link = Pr_topology.Link
module Graph = Pr_topology.Graph
module Figure1 = Pr_topology.Figure1
module Generator = Pr_topology.Generator
module Flow = Pr_policy.Flow
module Qos = Pr_policy.Qos
module Config = Pr_policy.Config
module Policy_term = Pr_policy.Policy_term
module Transit_policy = Pr_policy.Transit_policy
module Engine = Pr_sim.Engine
module Metrics = Pr_sim.Metrics
module Network = Pr_sim.Network
module Packet = Pr_proto.Packet
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Lsdb = Pr_proto.Lsdb

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* --- DV internals ----------------------------------------------------- *)

module Rdv = Runner.Make (Pr_dv.Dv.Plain)

let dv_vector_from_non_neighbor_ignored () =
  let g = Figure1.graph () in
  let r = Rdv.setup g (Config.defaults g) in
  ignore (Rdv.converge r);
  (* Inject a bogus vector "from" AD 12, which is not a neighbor of 7:
     link_cost lookup fails and the message must be ignored. *)
  Pr_dv.Dv.Plain.handle_message (Rdv.protocol r) ~at:7 ~from:12 [ (0, 1) ];
  (match Pr_dv.Dv.route_of (Rdv.protocol r) ~at:7 ~dst:0 with
  | Some (metric, nh) ->
    check_int "metric unchanged" 2 metric;
    check_int "next hop unchanged" 2 nh
  | None -> Alcotest.fail "route to BB1 must exist");
  ignore (Rdv.converge r)

let dv_metric_clamped_at_infinity () =
  let g = Generator.line ~n:2 in
  let r = Rdv.setup g (Config.defaults g) in
  ignore (Rdv.converge r);
  (* A neighbor advertising an absurd metric for itself must be clamped
     to the infinity sentinel, never overflow: distributed Bellman-Ford
     believes the claim and withdraws the route, cleanly. *)
  Pr_dv.Dv.Plain.handle_message (Rdv.protocol r) ~at:0 ~from:1 [ (1, max_int / 2) ];
  ignore (Rdv.converge r);
  (match Pr_dv.Dv.route_of (Rdv.protocol r) ~at:0 ~dst:1 with
  | None -> () (* clamped to infinity and withdrawn: correct *)
  | Some (metric, _) ->
    check_bool "no overflow" true (metric >= 0 && metric < Pr_dv.Dv.infinity_metric));
  (* A fresh honest vector restores the route. *)
  Pr_dv.Dv.Plain.handle_message (Rdv.protocol r) ~at:0 ~from:1 [ (1, 0) ];
  ignore (Rdv.converge r);
  match Pr_dv.Dv.route_of (Rdv.protocol r) ~at:0 ~dst:1 with
  | Some (1, 1) -> ()
  | Some (m, nh) -> Alcotest.failf "unexpected route (%d, %d)" m nh
  | None -> Alcotest.fail "route not restored"

let dv_self_route_is_zero () =
  let g = Figure1.graph () in
  let r = Rdv.setup g (Config.defaults g) in
  ignore (Rdv.converge r);
  match Pr_dv.Dv.route_of (Rdv.protocol r) ~at:5 ~dst:5 with
  | Some (0, 5) -> ()
  | Some (m, nh) -> Alcotest.failf "self route is (%d, %d)" m nh
  | None -> Alcotest.fail "self route missing"

(* --- ECMA internals --------------------------------------------------- *)

module Recma = Runner.Make (Pr_ecma.Ecma)

let ecma_packet_gone_down_progression () =
  let g = Figure1.graph () in
  let r = Recma.setup g (Config.defaults g) in
  ignore (Recma.converge r);
  (* Walk 7 -> 12 manually, tracking the gone_down bit: it must be
     false while climbing (7->2->0), then set once descending. *)
  let proto = Recma.protocol r in
  let packet = Packet.create (Flow.make ~src:7 ~dst:12 ()) in
  let rec walk at from acc =
    match Pr_ecma.Ecma.forward proto ~at ~from packet with
    | Packet.Deliver -> List.rev ((at, packet.Packet.gone_down) :: acc)
    | Packet.Forward next -> walk next (Some at) ((at, packet.Packet.gone_down) :: acc)
    | Packet.Drop reason -> Alcotest.failf "unexpected drop: %s" reason
  in
  let trace = walk 7 None [] in
  (* The bit is monotone: once true, never false again. *)
  let rec monotone seen = function
    | [] -> true
    | (_, bit) :: rest -> if seen && not bit then false else monotone (seen || bit) rest
  in
  check_bool "gone_down monotone" true (monotone false (List.map (fun x -> x) trace));
  check_bool "packet ended gone down" true packet.Packet.gone_down

let ecma_destination_filter_gates_advertisement () =
  (* A transit AD whose PTs only admit destination 8 must not offer
     routes toward 12 — but always advertises itself. *)
  let g = Figure1.graph () in
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        if a.Ad.id = 0 then
          Transit_policy.make 0
            [ Policy_term.make ~owner:0 ~destinations:(Policy_term.Only [| 8 |]) () ]
        else if Ad.is_transit_capable a then Transit_policy.open_transit a.Ad.id
        else Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  let config = Config.make ~transit () in
  let r = Recma.setup g config in
  ignore (Recma.converge r);
  (* 7 -> 8 crosses BB1 and is admitted; 7 -> 12 would need BB1 but the
     destination filter withholds those routes. *)
  check_bool "admitted destination flows" true
    (Forwarding.delivered (Recma.send_flow r (Flow.make ~src:7 ~dst:8 ())));
  check_bool "filtered destination blocked" false
    (Forwarding.delivered (Recma.send_flow r (Flow.make ~src:7 ~dst:12 ())));
  (* BB1 itself stays reachable (self-advertisement is never gated). *)
  check_bool "the AD itself reachable" true
    (Forwarding.delivered (Recma.send_flow r (Flow.make ~src:7 ~dst:0 ())))

(* --- IDRP internals --------------------------------------------------- *)

module Ridrp = Runner.Make (Pr_idrp.Idrp.Standard)

let idrp_rejects_own_path () =
  let g = Figure1.graph () in
  let r = Ridrp.setup g (Config.defaults g) in
  ignore (Ridrp.converge r);
  let proto = Ridrp.protocol r in
  let flow = Flow.make ~src:2 ~dst:13 () in
  let before = Pr_idrp.Idrp.Standard.selected_route proto ~at:2 ~dst:13 ~flow in
  (* Craft an update whose AD path already contains the receiver (2):
     a better metric must NOT be adopted. *)
  let full = Pr_util.Bitset.create 14 in
  for i = 0 to 13 do
    Pr_util.Bitset.add full i
  done;
  let poisoned =
    {
      Pr_idrp.Idrp.route =
        { dest = 13; class_idx = Flow.class_key flow; path = [ 0; 2; 13 ]; allowed = full };
      withdraw = false;
    }
  in
  ignore before;
  Pr_idrp.Idrp.Standard.handle_message proto ~at:2 ~from:0 [ poisoned ];
  ignore (Ridrp.converge r);
  (* The loop-containing route is never adopted (it also implicitly
     withdraws the sender's previous offer, like a real path vector):
     whatever is selected now, it is loop-free and not the poison. *)
  (match Pr_idrp.Idrp.Standard.selected_route proto ~at:2 ~dst:13 ~flow with
  | None -> ()
  | Some a ->
    check_bool "selected route is loop-free" true
      (Pr_topology.Path.is_loop_free a.Pr_idrp.Idrp.path);
    check_bool "poison not adopted" true (a.Pr_idrp.Idrp.path <> 2 :: [ 0; 2; 13 ]));
  (* The forged update also displaced neighbor 0's genuine offer (an
     update replaces the sender's previous route, as in any path
     vector). A session bounce makes 0 re-advertise, and delivery
     recovers. *)
  let lid = Option.get (Graph.find_link g 0 2) in
  Ridrp.fail_link r lid;
  ignore (Ridrp.converge r);
  Ridrp.restore_link r lid;
  ignore (Ridrp.converge r);
  check_bool "recovers after session bounce" true
    (Forwarding.delivered (Ridrp.send_flow r flow))

let idrp_withdraw_removes_route () =
  let g = Generator.line ~n:3 in
  let r = Ridrp.setup g (Config.defaults g) in
  ignore (Ridrp.converge r);
  let proto = Ridrp.protocol r in
  let flow = Flow.make ~src:0 ~dst:2 () in
  check_bool "route present" true
    (Pr_idrp.Idrp.Standard.selected_route proto ~at:0 ~dst:2 ~flow <> None);
  (* Neighbor 1 withdraws its route to 2. *)
  let withdraw =
    {
      Pr_idrp.Idrp.route =
        {
          dest = 2;
          class_idx = Flow.class_key flow;
          path = [];
          allowed = Pr_util.Bitset.create 3;
        };
      withdraw = true;
    }
  in
  Pr_idrp.Idrp.Standard.handle_message proto ~at:0 ~from:1 [ withdraw ];
  check_bool "route gone after withdraw" true
    (Pr_idrp.Idrp.Standard.selected_route proto ~at:0 ~dst:2 ~flow = None)

(* --- LSDB / flooding internals ----------------------------------------- *)

let lsdb_stale_does_not_regress () =
  let db = Lsdb.create ~n:3 in
  let adj nbr cost = { Lsdb.nbr; cost; delay = 1.0 } in
  ignore (Lsdb.insert db (Lsdb.make_lsa ~origin:1 ~seq:5 ~adjacencies:[ adj 2 1 ] ~terms:[]));
  check_bool "stale rejected" false
    (Lsdb.insert db (Lsdb.make_lsa ~origin:1 ~seq:4 ~adjacencies:[ adj 0 9 ] ~terms:[]));
  Alcotest.(check (option int)) "new adjacency not installed" None
    (Lsdb.adjacency_cost db 1 0);
  Alcotest.(check (option int)) "old adjacency kept" (Some 1) (Lsdb.adjacency_cost db 1 2)

let flooding_is_quadratic_not_infinite () =
  (* On a cycle, each LSA must traverse each link at most a bounded
     number of times (no flooding storm): total messages for one full
     start is O(links * ADs). *)
  let g = Generator.ring ~n:8 in
  let module R = Runner.Make (Pr_ls.Ls) in
  let r = R.setup g (Config.defaults g) in
  let c = R.converge r in
  check_bool "converged" true c.Runner.converged;
  (* 8 LSAs over 8 links, duplicates suppressed at first sight: the
     count stays well under links * ADs * 2. *)
  check_bool
    (Printf.sprintf "bounded flooding (%d msgs)" c.Runner.messages)
    true
    (c.Runner.messages <= 2 * 8 * 8)

(* --- ORWG internals ---------------------------------------------------- *)

module Rorwg = Runner.Make (Pr_orwg.Orwg.Orwg)

let orwg_handles_are_unique_per_setup () =
  let g = Figure1.graph () in
  let r = Rorwg.setup g (Config.defaults g) in
  ignore (Rorwg.converge r);
  let capture flow =
    ignore (Rorwg.send_flow r flow);
    let packet = Packet.create flow in
    Pr_orwg.Orwg.Orwg.originate (Rorwg.protocol r) packet;
    Option.get packet.Packet.handle
  in
  let h1 = capture (Flow.make ~src:7 ~dst:8 ()) in
  let h2 = capture (Flow.make ~src:7 ~dst:9 ()) in
  let h3 = capture (Flow.make ~src:9 ~dst:7 ()) in
  check_bool "distinct handles" true (h1 <> h2 && h2 <> h3 && h1 <> h3)

let orwg_originate_requires_prepared_route () =
  let g = Figure1.graph () in
  let r = Rorwg.setup g (Config.defaults g) in
  ignore (Rorwg.converge r);
  (* Originating without a prepared route leaves the base header: the
     forwarding engine then drops at the source, never loops. *)
  let packet = Packet.create (Flow.make ~src:7 ~dst:8 ()) in
  Pr_orwg.Orwg.Orwg.originate (Rorwg.protocol r) packet;
  check_bool "no handle without setup" true (packet.Packet.handle = None);
  match Pr_orwg.Orwg.Orwg.forward (Rorwg.protocol r) ~at:7 ~from:None packet with
  | Packet.Drop _ -> ()
  | d -> Alcotest.failf "expected drop, got %a" Packet.pp_decision d

let () =
  Alcotest.run "protocol-details"
    [
      ( "dv",
        [
          Alcotest.test_case "non-neighbor vector ignored" `Quick
            dv_vector_from_non_neighbor_ignored;
          Alcotest.test_case "metric clamped" `Quick dv_metric_clamped_at_infinity;
          Alcotest.test_case "self route zero" `Quick dv_self_route_is_zero;
        ] );
      ( "ecma",
        [
          Alcotest.test_case "gone_down progression" `Quick ecma_packet_gone_down_progression;
          Alcotest.test_case "destination filter gating" `Quick
            ecma_destination_filter_gates_advertisement;
        ] );
      ( "idrp",
        [
          Alcotest.test_case "rejects own path" `Quick idrp_rejects_own_path;
          Alcotest.test_case "withdraw removes" `Quick idrp_withdraw_removes_route;
        ] );
      ( "lsdb",
        [
          Alcotest.test_case "stale does not regress" `Quick lsdb_stale_does_not_regress;
          Alcotest.test_case "bounded flooding" `Quick flooding_is_quadratic_not_infinite;
        ] );
      ( "orwg",
        [
          Alcotest.test_case "unique handles" `Quick orwg_handles_are_unique_per_setup;
          Alcotest.test_case "originate needs setup" `Quick
            orwg_originate_requires_prepared_route;
        ] );
    ]

(* Integration tests for pr_core: the design space, the registry, the
   scenario builders and the experiment driver — plus cross-protocol
   invariants that hold over whole scenarios. *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Flow = Pr_policy.Flow
module Gen = Pr_policy.Gen
module Design_point = Pr_proto.Design_point
module Design_space = Pr_core.Design_space
module Registry = Pr_core.Registry
module Scenario = Pr_core.Scenario
module Experiment = Pr_core.Experiment

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* --- Design space ---------------------------------------------------- *)

let design_space_complete () =
  check_int "eight cells" 8 (List.length Design_space.cells);
  (* Every design point appears exactly once. *)
  List.iter
    (fun point ->
      let cell = Design_space.find point in
      check_bool "cell matches" true (Design_point.equal cell.Design_space.point point))
    Design_point.all;
  (* Four implemented, four impractical — as in the paper. *)
  let implemented =
    List.filter
      (fun c ->
        match c.Design_space.status with
        | Design_space.Implemented _ -> true
        | Design_space.Impractical _ -> false)
      Design_space.cells
  in
  check_int "four implemented points" 4 (List.length implemented)

let design_space_consistent_with_registry () =
  (* Every policy design's declared point is an implemented cell (the
     policy-free baselines occupy cells only as strawmen). *)
  List.iter
    (fun packed ->
      let cell = Design_space.find (Registry.design_point packed) in
      match cell.Design_space.status with
      | Design_space.Implemented _ -> ()
      | Design_space.Impractical _ ->
        Alcotest.failf "%s declares an impractical design point" (Registry.name packed))
    Registry.policy_designs

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let design_space_renders () =
  let s = Design_space.render () in
  check_bool "mentions orwg" true (contains_substring s "orwg")

(* --- Registry --------------------------------------------------------- *)

let registry_names_unique () =
  let names = Registry.names Registry.all in
  check_int "unique names" (List.length names) (List.length (List.sort_uniq compare names));
  check_int "four policy designs" 4 (List.length Registry.policy_designs);
  check_int "four baselines" 4 (List.length Registry.baselines)

let registry_find () =
  check_bool "find orwg" true (Registry.name (Registry.find "orwg") = "orwg");
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Registry.find "nonesuch"))

(* --- Scenario --------------------------------------------------------- *)

let scenario_deterministic () =
  let s1 = Scenario.hierarchical ~seed:5 () in
  let s2 = Scenario.hierarchical ~seed:5 () in
  check_int "same size" (Graph.n s1.Scenario.graph) (Graph.n s2.Scenario.graph);
  check_int "same policy terms"
    (Pr_policy.Config.total_terms s1.Scenario.config)
    (Pr_policy.Config.total_terms s2.Scenario.config);
  let rng1 = Rng.create 9 and rng2 = Rng.create 9 in
  let f1 = Scenario.flows s1 ~rng:rng1 ~count:20 () in
  let f2 = Scenario.flows s2 ~rng:rng2 ~count:20 () in
  check_bool "same workload" true (List.for_all2 Flow.equal f1 f2)

let scenario_flows_are_host_to_host () =
  let s = Scenario.hierarchical ~seed:3 () in
  let rng = Rng.create 1 in
  let hosts = Graph.host_ids s.Scenario.graph in
  List.iter
    (fun (f : Flow.t) ->
      check_bool "src is a host" true (List.mem f.Flow.src hosts);
      check_bool "dst is a host" true (List.mem f.Flow.dst hosts);
      check_bool "src <> dst" true (f.Flow.src <> f.Flow.dst))
    (Scenario.flows s ~rng ~count:50 ())

let scenario_open_policies () =
  let s = Scenario.figure1 ~seed:2 () in
  let o = Scenario.open_policies s in
  check_bool "fewer or equal terms" true
    (Pr_policy.Config.total_terms o.Scenario.config
    <= Pr_policy.Config.total_terms s.Scenario.config + 14);
  check_bool "no source policies" true
    (List.for_all
       (fun ad -> not (Pr_policy.Config.has_source_policy o.Scenario.config ad))
       (List.init 14 (fun i -> i)))

let scenario_all_host_pairs () =
  let s = Scenario.figure1 ~seed:2 () in
  let hosts = List.length (Graph.host_ids s.Scenario.graph) in
  check_int "ordered pairs" (hosts * (hosts - 1)) (List.length (Scenario.all_host_pairs s))

(* --- Codec --------------------------------------------------------------- *)

let codec_roundtrip_figure1 () =
  let s = Scenario.figure1 ~seed:42 () in
  match Pr_core.Codec.load (Pr_core.Codec.save s) with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok s' ->
    Alcotest.(check string) "label" s.Scenario.label s'.Scenario.label;
    check_int "seed" s.Scenario.seed s'.Scenario.seed;
    check_int "same n" (Graph.n s.Scenario.graph) (Graph.n s'.Scenario.graph);
    check_int "same links"
      (Graph.num_links s.Scenario.graph)
      (Graph.num_links s'.Scenario.graph);
    check_int "same policy terms"
      (Pr_policy.Config.total_terms s.Scenario.config)
      (Pr_policy.Config.total_terms s'.Scenario.config);
    check_int "same advertisement bytes"
      (Pr_policy.Config.total_advertisement_bytes s.Scenario.config)
      (Pr_policy.Config.total_advertisement_bytes s'.Scenario.config)

let codec_roundtrip_behaviour =
  QCheck.Test.make ~name:"reloaded scenarios behave identically" ~count:8 QCheck.small_int
    (fun seed ->
      let s =
        Scenario.figure1
          ~policy:{ Gen.default with restrictiveness = 0.5; source_policy_prob = 0.5 }
          ~seed ()
      in
      match Pr_core.Codec.load (Pr_core.Codec.save s) with
      | Error _ -> false
      | Ok s' ->
        let flows =
          let rng = Rng.create (seed + 1) in
          Scenario.flows s ~rng ~count:15 ()
        in
        let r = Experiment.evaluate (Registry.find "orwg") s ~flows () in
        let r' = Experiment.evaluate (Registry.find "orwg") s' ~flows () in
        r.Experiment.delivered = r'.Experiment.delivered
        && r.Experiment.messages = r'.Experiment.messages
        && r.Experiment.bytes = r'.Experiment.bytes
        && r.Experiment.transit_violations = r'.Experiment.transit_violations)

let codec_term_fields_roundtrip () =
  (* A term exercising every field must survive the trip with identical
     admission behaviour. *)
  let term =
    Pr_policy.Policy_term.make ~owner:3
      ~sources:(Pr_policy.Policy_term.Only [| 1; 2; 7 |])
      ~destinations:(Pr_policy.Policy_term.Except [| 4 |])
      ~prev_hops:(Pr_policy.Policy_term.Only [| 0 |])
      ~next_hops:(Pr_policy.Policy_term.Except [| 5; 6 |])
      ~qos:[ Pr_policy.Qos.Low_delay; Pr_policy.Qos.Default ]
      ~ucis:[ Pr_policy.Uci.Commercial ]
      ~hours:(22, 6) ~auth_required:true ()
  in
  let g = Pr_topology.Figure1.graph () in
  let transit =
    Array.init 14 (fun ad ->
        if ad = 3 then Pr_policy.Transit_policy.make 3 [ term ]
        else Pr_policy.Transit_policy.no_transit ad)
  in
  let scenario =
    {
      Scenario.label = "codec-term";
      graph = g;
      config = Pr_policy.Config.make ~transit ();
      seed = 0;
    }
  in
  match Pr_core.Codec.load (Pr_core.Codec.save scenario) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok s' ->
    let term' =
      match (Pr_policy.Config.transit s'.Scenario.config 3).Pr_policy.Transit_policy.terms with
      | [ t ] -> t
      | _ -> Alcotest.fail "expected exactly one term"
    in
    (* Probe admission agreement across a grid of contexts. *)
    List.iter
      (fun src ->
        List.iter
          (fun (hour, auth, prev, next) ->
            let ctx =
              {
                Pr_policy.Policy_term.flow =
                  Flow.make ~src ~dst:2 ~qos:Pr_policy.Qos.Low_delay
                    ~uci:Pr_policy.Uci.Commercial ~hour ~authenticated:auth ();
                prev;
                next;
              }
            in
            check_bool "same admission" 
              (Pr_policy.Policy_term.admits term ctx)
              (Pr_policy.Policy_term.admits term' ctx))
          [ (23, true, Some 0, Some 7); (12, true, Some 0, Some 7);
            (23, false, Some 0, Some 7); (23, true, Some 1, Some 7);
            (23, true, Some 0, Some 5); (23, true, None, None) ])
      [ 1; 3; 7 ]

let codec_rejects_garbage () =
  check_bool "not a scenario" true (Result.is_error (Pr_core.Codec.load "(scenario)"));
  check_bool "not sexp" true (Result.is_error (Pr_core.Codec.load "((("));
  check_bool "missing file" true
    (Result.is_error (Pr_core.Codec.load_file ~path:"/nonexistent/file.scn"))

let codec_file_roundtrip () =
  let s = Scenario.figure1 ~seed:9 () in
  let path = Filename.temp_file "scenario" ".scn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pr_core.Codec.save_file s ~path;
      match Pr_core.Codec.load_file ~path with
      | Ok s' -> check_int "roundtrip via file" (Graph.n s.Scenario.graph) (Graph.n s'.Scenario.graph)
      | Error e -> Alcotest.failf "load_file: %s" e)

(* --- Impact ------------------------------------------------------------ *)

let impact_noop_change () =
  (* Re-proposing an AD's existing policy must report no change. *)
  let scenario = Scenario.figure1 ~seed:42 () in
  let current = Pr_policy.Config.transit scenario.Scenario.config 0 in
  let r = Pr_core.Impact.assess scenario ~proposed:current () in
  check_int "nothing lost" 0 (List.length r.Pr_core.Impact.lost);
  check_int "nothing gained" 0 (List.length r.Pr_core.Impact.gained);
  check_int "nothing degraded" 0 (List.length r.Pr_core.Impact.degraded);
  check_int "load unchanged" r.Pr_core.Impact.transit_load_before
    r.Pr_core.Impact.transit_load_after

let impact_closing_backbone () =
  let scenario =
    Scenario.open_policies (Scenario.figure1 ~seed:42 ())
  in
  let proposed = Pr_policy.Transit_policy.no_transit 0 in
  let r = Pr_core.Impact.assess scenario ~proposed () in
  (* Campus 7 hangs off R1 which reaches the rest only via BB1: its 6
     destinations and 6 sources are cut (minus any bypass detours). *)
  check_bool "pairs lost" true (List.length r.Pr_core.Impact.lost > 0);
  check_int "sheds all transit" 0 r.Pr_core.Impact.transit_load_after;
  check_bool "carried transit before" true (r.Pr_core.Impact.transit_load_before > 0);
  (* Every lost pair really is unreachable after. *)
  List.iter
    (fun (c : Pr_core.Impact.pair_change) ->
      check_bool "after is none" true (c.Pr_core.Impact.after = None);
      check_bool "before was some" true (c.Pr_core.Impact.before <> None))
    r.Pr_core.Impact.lost

let impact_opening_gains () =
  (* Start from a config where BB1 refuses everything, then open it. *)
  let base = Scenario.open_policies (Scenario.figure1 ~seed:42 ()) in
  let g = base.Scenario.graph in
  let transit =
    Array.init (Graph.n g) (fun ad ->
        if ad = 0 then Pr_policy.Transit_policy.no_transit 0
        else Pr_policy.Config.transit base.Scenario.config ad)
  in
  let closed =
    { base with Scenario.config = Pr_policy.Config.make ~transit () }
  in
  let r =
    Pr_core.Impact.assess closed ~proposed:(Pr_policy.Transit_policy.open_transit 0) ()
  in
  check_bool "pairs gained" true (List.length r.Pr_core.Impact.gained > 0);
  check_int "nothing lost by opening" 0 (List.length r.Pr_core.Impact.lost)

let impact_class_specific () =
  let scenario = Scenario.open_policies (Scenario.figure1 ~seed:42 ()) in
  let research_only =
    Pr_policy.Transit_policy.make 0
      [ Pr_policy.Policy_term.make ~owner:0 ~ucis:[ Pr_policy.Uci.Research ] () ]
  in
  let res =
    Pr_core.Impact.assess scenario ~proposed:research_only ~uci:Pr_policy.Uci.Research ()
  in
  let com =
    Pr_core.Impact.assess scenario ~proposed:research_only ~uci:Pr_policy.Uci.Commercial ()
  in
  check_int "research unaffected" 0 (List.length res.Pr_core.Impact.lost);
  check_bool "commercial loses" true (List.length com.Pr_core.Impact.lost > 0)

let impact_summary_renders () =
  let scenario = Scenario.figure1 ~seed:42 () in
  let r =
    Pr_core.Impact.assess scenario ~proposed:(Pr_policy.Transit_policy.no_transit 0) ()
  in
  let s = Pr_core.Impact.summary r in
  check_bool "mentions the AD" true (contains_substring s "AD 0")

(* --- Experiment -------------------------------------------------------- *)

let experiment_smoke_all_protocols () =
  let scenario = Scenario.figure1 ~seed:42 () in
  let rng = Rng.create 7 in
  let flows = Scenario.flows scenario ~rng ~count:20 () in
  List.iter
    (fun packed ->
      let r = Experiment.evaluate packed scenario ~flows () in
      check_bool (r.Experiment.protocol ^ " converged") true r.Experiment.converged;
      check_int
        (r.Experiment.protocol ^ " outcomes partition")
        r.Experiment.flows
        (r.Experiment.delivered + r.Experiment.dropped + r.Experiment.looped
       + r.Experiment.prep_failed))
    Registry.all

let experiment_deterministic () =
  let scenario = Scenario.figure1 ~seed:42 () in
  let flows =
    let rng = Rng.create 7 in
    Scenario.flows scenario ~rng ~count:15 ()
  in
  let run () = Experiment.evaluate (Registry.find "ecma") scenario ~flows () in
  let a = run () and b = run () in
  check_int "same messages" a.Experiment.messages b.Experiment.messages;
  check_int "same delivered" a.Experiment.delivered b.Experiment.delivered;
  check_int "same computations" a.Experiment.computations b.Experiment.computations

let experiment_policy_designs_zero_violations () =
  (* The PT-carrying designs never violate transit policy; the
     baselines (which ignore policy) generally do. *)
  let scenario =
    Scenario.figure1 ~seed:11 ~policy:{ Gen.default with restrictiveness = 0.6 } ()
  in
  let rng = Rng.create 3 in
  let flows = Scenario.flows scenario ~rng ~count:40 () in
  List.iter
    (fun name ->
      let r = Experiment.evaluate (Registry.find name) scenario ~flows () in
      check_int (name ^ " has zero transit violations") 0 r.Experiment.transit_violations)
    [ "idrp"; "ls-hbh-pt"; "orwg" ]

let experiment_orwg_zero_source_violations () =
  let scenario =
    Scenario.figure1 ~seed:13
      ~policy:{ Gen.default with restrictiveness = 0.5; source_policy_prob = 0.8 }
      ()
  in
  let rng = Rng.create 5 in
  let flows = Scenario.flows scenario ~rng ~count:40 () in
  let r = Experiment.evaluate (Registry.find "orwg") scenario ~flows () in
  check_int "orwg honors source policies" 0 r.Experiment.source_violations

let experiment_convergence_probe () =
  let scenario = Scenario.figure1 ~seed:42 () in
  let g = scenario.Scenario.graph in
  let link = Option.get (Graph.find_link g 0 1) in
  let probe = Experiment.convergence_after_failure (Registry.find "link-state") scenario ~link in
  check_bool "initial messages counted" true (probe.Experiment.initial_messages > 0);
  check_bool "failure reaction counted" true (probe.Experiment.after_failure_messages > 0);
  check_bool "reconverged" true probe.Experiment.after_failure_converged

let experiment_availability_helper () =
  let scenario = Scenario.figure1 ~seed:42 () in
  let rng = Rng.create 7 in
  let flows = Scenario.flows scenario ~rng ~count:20 () in
  let delivered =
    Experiment.availability (Registry.find "link-state") scenario ~flows ~delivered:true
  in
  let undelivered =
    Experiment.availability (Registry.find "link-state") scenario ~flows ~delivered:false
  in
  check_int "partition of workload" (List.length flows)
    (List.length delivered + List.length undelivered)

let () =
  Alcotest.run "pr_core"
    [
      ( "design-space",
        [
          Alcotest.test_case "complete" `Quick design_space_complete;
          Alcotest.test_case "consistent with registry" `Quick
            design_space_consistent_with_registry;
          Alcotest.test_case "renders" `Quick design_space_renders;
        ] );
      ( "registry",
        [
          Alcotest.test_case "unique names" `Quick registry_names_unique;
          Alcotest.test_case "find" `Quick registry_find;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "deterministic" `Quick scenario_deterministic;
          Alcotest.test_case "host-to-host flows" `Quick scenario_flows_are_host_to_host;
          Alcotest.test_case "open policies" `Quick scenario_open_policies;
          Alcotest.test_case "all host pairs" `Quick scenario_all_host_pairs;
        ] );
      ( "codec",
        [
          Alcotest.test_case "figure1 roundtrip" `Quick codec_roundtrip_figure1;
          Alcotest.test_case "term fields roundtrip" `Quick codec_term_fields_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick codec_rejects_garbage;
          Alcotest.test_case "file roundtrip" `Quick codec_file_roundtrip;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ codec_roundtrip_behaviour ] );
      ( "impact",
        [
          Alcotest.test_case "no-op change" `Quick impact_noop_change;
          Alcotest.test_case "closing a backbone" `Quick impact_closing_backbone;
          Alcotest.test_case "opening gains" `Quick impact_opening_gains;
          Alcotest.test_case "class specific" `Quick impact_class_specific;
          Alcotest.test_case "summary renders" `Quick impact_summary_renders;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "smoke all protocols" `Slow experiment_smoke_all_protocols;
          Alcotest.test_case "deterministic" `Quick experiment_deterministic;
          Alcotest.test_case "policy designs: no transit violations" `Quick
            experiment_policy_designs_zero_violations;
          Alcotest.test_case "orwg: no source violations" `Quick
            experiment_orwg_zero_source_violations;
          Alcotest.test_case "convergence probe" `Quick experiment_convergence_probe;
          Alcotest.test_case "availability helper" `Quick experiment_availability_helper;
        ] );
    ]

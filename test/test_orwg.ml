(* Tests for the ORWG design point: setup/handle mechanics, source
   control, policy-gateway validation, cache behaviour. *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Ad = Pr_topology.Ad
module Path = Pr_topology.Path
module Figure1 = Pr_topology.Figure1
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Gen = Pr_policy.Gen
module Validate = Pr_policy.Validate
module Source_policy = Pr_policy.Source_policy
module Transit_policy = Pr_policy.Transit_policy
module Policy_term = Pr_policy.Policy_term
module Cost_model = Pr_proto.Cost_model
module Packet = Pr_proto.Packet
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Orwg = Pr_orwg.Orwg
module R = Runner.Make (Orwg.Orwg)
module Rnh = Runner.Make (Orwg.No_handles)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let converge_on config g =
  let r = R.setup g config in
  let c = R.converge r in
  check_bool "converged" true c.Runner.converged;
  r

let orwg_setup_then_handles () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  let flow = Flow.make ~src:7 ~dst:8 () in
  (* First packet: fresh setup. *)
  (match R.send_flow r flow with
  | Forwarding.Delivered { prep; header_bytes; path } ->
    check_bool "setup walked the route" true (prep.Packet.setup_hops > 0);
    check_bool "setup carried bytes" true (prep.Packet.setup_bytes > 0);
    check_bool "no cache hit on first use" false prep.Packet.cache_hit;
    check_int "data header = base + handle"
      (Cost_model.base_header_bytes + Cost_model.handle_bytes)
      header_bytes;
    check_int "delivered to dest" 8 (Path.destination path)
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o);
  (* Second packet: cached policy route, zero setup. *)
  match R.send_flow r flow with
  | Forwarding.Delivered { prep; _ } ->
    check_bool "cache hit" true prep.Packet.cache_hit;
    check_int "no setup hops" 0 prep.Packet.setup_hops
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o

let orwg_policy_route_shared_across_hosts () =
  (* "a single policy route can support multiple pairs of hosts": same
     (dst, class) reuses the handle even for another flow instance. *)
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  ignore (R.send_flow r (Flow.make ~src:7 ~dst:8 ()));
  let entries_before = Orwg.Orwg.pg_entries (R.protocol r) 2 in
  (match R.send_flow r (Flow.make ~src:7 ~dst:8 ~hour:3 ()) with
  | Forwarding.Delivered { prep; _ } -> check_bool "hit across hours" true prep.Packet.cache_hit
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o);
  check_int "no extra gateway state" entries_before (Orwg.Orwg.pg_entries (R.protocol r) 2)

let orwg_no_handles_header_overhead () =
  let g = Figure1.graph () in
  let config = Config.defaults g in
  let rnh = Rnh.setup g config in
  ignore (Rnh.converge rnh);
  let flow = Flow.make ~src:7 ~dst:12 () in
  ignore (Rnh.send_flow rnh flow);
  match Rnh.send_flow rnh flow with
  | Forwarding.Delivered { header_bytes; path; _ } ->
    check_int "header carries the full source route"
      (Cost_model.base_header_bytes + Cost_model.source_route_bytes (List.length path))
      header_bytes;
    check_bool "strictly more than the handle header" true
      (header_bytes > Cost_model.base_header_bytes + Cost_model.handle_bytes)
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o

let orwg_source_policy_honored () =
  let g = Figure1.graph () in
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        if Ad.is_transit_capable a then Transit_policy.open_transit a.Ad.id
        else Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  let source = Array.make 14 None in
  (* 8 avoids BB1; 8 -> 10 has the lateral R2-R3 alternative. *)
  source.(8) <- Some (Source_policy.make ~owner:8 ~avoid:[ 0 ] ());
  let config = Config.make ~transit ~source () in
  let r = converge_on config g in
  (match R.send_flow r (Flow.make ~src:8 ~dst:10 ()) with
  | Forwarding.Delivered { path; _ } ->
    check_bool "avoids BB1" true (not (List.mem 0 (Path.transit_ads path)))
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o);
  (* 7 avoids BB1 but has no alternative to reach 8: the source
     refuses rather than violates. *)
  let source2 = Array.make 14 None in
  source2.(7) <- Some (Source_policy.make ~owner:7 ~avoid:[ 0 ] ());
  let config2 = Config.make ~transit ~source:source2 () in
  let r2 = converge_on config2 g in
  match R.send_flow r2 (Flow.make ~src:7 ~dst:8 ()) with
  | Forwarding.Prep_failed _ -> ()
  | o -> Alcotest.failf "expected setup failure, got %a" Forwarding.pp_outcome o

let orwg_gateway_validates_setup () =
  (* A transit AD whose local policy refuses the flow rejects the
     setup packet even though the (stale or hostile) route server
     proposed the route. *)
  let g = Figure1.graph () in
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        if a.Ad.id = 0 then
          Transit_policy.make 0
            [ Policy_term.make ~owner:0 ~sources:(Policy_term.Except [| 7 |]) () ]
        else if Ad.is_transit_capable a then Transit_policy.open_transit a.Ad.id
        else Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  let config = Config.make ~transit () in
  let r = converge_on config g in
  (* 7 -> 8 has no route avoiding BB1, and BB1's gateway refuses 7. *)
  match R.send_flow r (Flow.make ~src:7 ~dst:8 ()) with
  | Forwarding.Prep_failed _ | Forwarding.Dropped _ -> ()
  | o -> Alcotest.failf "expected refusal, got %a" Forwarding.pp_outcome o

let orwg_no_transit_violations =
  QCheck.Test.make ~name:"orwg never delivers transit- or source-illegal paths" ~count:15
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let g = Figure1.graph () in
      let config = Gen.generate rng g { Gen.default with restrictiveness = 0.5 } in
      let r = R.setup g config in
      ignore (R.converge r);
      let ok = ref true in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              if src <> dst then begin
                let flow = Flow.make ~src ~dst () in
                match R.send_flow r flow with
                | Forwarding.Delivered { path; _ } ->
                  if not (Validate.transit_legal g config flow path) then ok := false;
                  if not (Source_policy.permits (Config.source config src) path) then
                    ok := false
                | _ -> ()
              end)
            (Graph.host_ids g))
        (Graph.host_ids g);
      !ok)

let orwg_precompute_prevents_setup_latency () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  let flows = [ Flow.make ~src:7 ~dst:12 (); Flow.make ~src:9 ~dst:11 () ] in
  let installed = Orwg.Orwg.precompute_flows (R.protocol r) flows in
  check_int "both precomputed" 2 installed;
  List.iter
    (fun flow ->
      match R.send_flow r flow with
      | Forwarding.Delivered { prep; _ } ->
        check_bool "cache hit after precompute" true prep.Packet.cache_hit
      | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o)
    flows;
  (* Idempotent. *)
  check_int "re-precompute is a no-op" 0 (Orwg.Orwg.precompute_flows (R.protocol r) flows)

let orwg_stale_route_invalidated_by_flooding () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  let flow = Flow.make ~src:7 ~dst:12 () in
  ignore (R.send_flow r flow);
  check_bool "route cached" true
    (Orwg.Orwg.cached_route (R.protocol r) ~src:7 ~dst:12 flow <> None);
  (* Fail a link on the cached route (backbone-backbone). *)
  let lid = Option.get (Graph.find_link g 0 1) in
  R.fail_link r lid;
  ignore (R.converge r);
  (* The route server revalidated against the new database. *)
  (match Orwg.Orwg.cached_route (R.protocol r) ~src:7 ~dst:12 flow with
  | None -> ()
  | Some path ->
    (* Cached route may survive if it did not use the failed link. *)
    let rec uses = function
      | a :: b :: rest -> ((a = 0 && b = 1) || (a = 1 && b = 0)) || uses (b :: rest)
      | _ -> false
    in
    check_bool "surviving cache entry avoids the dead link" false (uses path));
  (* And traffic still flows, over a fresh setup. *)
  check_bool "re-setup succeeds" true (Forwarding.delivered (R.send_flow r flow))

let orwg_pg_validation_counts () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  let flow = Flow.make ~src:7 ~dst:8 () in
  ignore (R.send_flow r flow);
  let v0 = Orwg.Orwg.validations (R.protocol r) 0 in
  ignore (R.send_flow r flow);
  check_bool "per-packet validation at the gateway" true
    (Orwg.Orwg.validations (R.protocol r) 0 > v0)

module Bounded2 = Orwg.Bounded_pg (struct
  let capacity = 2
end)

let orwg_bounded_pg_eviction () =
  let g = Figure1.graph () in
  let module Rb = Runner.Make (Bounded2) in
  let r = Rb.setup g (Config.defaults g) in
  ignore (Rb.converge r);
  (* Three flows through R1(2): its 2-entry gateway must evict. *)
  let f1 = Flow.make ~src:7 ~dst:8 () in
  let f2 = Flow.make ~src:7 ~dst:9 () in
  let f3 = Flow.make ~src:7 ~dst:12 () in
  check_bool "f1 delivered" true (Forwarding.delivered (Rb.send_flow r f1));
  check_bool "f2 delivered" true (Forwarding.delivered (Rb.send_flow r f2));
  check_bool "f3 delivered" true (Forwarding.delivered (Rb.send_flow r f3));
  check_bool "gateway at capacity" true (Bounded2.pg_entries (Rb.protocol r) 2 <= 2);
  check_bool "evictions happened" true (Bounded2.evictions (Rb.protocol r) 2 > 0);
  (* f1's handle was least recently used: its next packet drops at the
     gateway, the source is notified, and the packet after that re-sets
     up and delivers. *)
  (match Rb.send_flow r f1 with
  | Forwarding.Dropped { reason; _ } ->
    check_bool "dropped on evicted handle" true
      (String.length reason > 0 && String.sub reason 0 2 = "no")
  | Forwarding.Delivered { prep; _ } ->
    (* Acceptable alternative: the cache entry was already invalidated
       and this send re-set-up directly. *)
    check_bool "re-setup" false prep.Packet.cache_hit
  | o -> Alcotest.failf "unexpected %a" Forwarding.pp_outcome o);
  (match Rb.send_flow r f1 with
  | Forwarding.Delivered { prep; _ } ->
    check_bool "recovered via fresh setup" false prep.Packet.cache_hit
  | o -> Alcotest.failf "expected recovery, got %a" Forwarding.pp_outcome o)

let orwg_unbounded_never_evicts () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  List.iter
    (fun dst ->
      if dst <> 7 then ignore (R.send_flow r (Flow.make ~src:7 ~dst ())))
    (Graph.host_ids g);
  List.iter
    (fun ad -> check_int "no evictions" 0 (Orwg.Orwg.evictions (R.protocol r) ad))
    (List.init 14 (fun i -> i))

let orwg_policy_change_stale_retry () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  (* BB2 (1) newly refuses source 7. Gateways enforce immediately; the
     rest of the internet is stale until the LSA flood completes. *)
  Orwg.Orwg.set_policy (R.protocol r)
    (Transit_policy.make 1
       [ Policy_term.make ~owner:1 ~sources:(Policy_term.Except [| 7 |]) () ]);
  (* Do NOT converge: 7's route server still believes BB2 is open. Its
     preferred route for 7->10 crosses BB2; the setup is refused and the
     retry synthesizes around it via the R2-R3 lateral. *)
  (match R.send_flow r (Flow.make ~src:7 ~dst:10 ()) with
  | Forwarding.Delivered { path; _ } ->
    check_bool "avoids the refusing AD" true
      (not (List.mem 1 (Pr_topology.Path.transit_ads path)))
  | o -> Alcotest.failf "expected retried delivery, got %a" Forwarding.pp_outcome o);
  (* After the flood, synthesis avoids BB2 directly. *)
  ignore (R.converge r);
  match R.send_flow r (Flow.make ~src:7 ~dst:11 ()) with
  | Forwarding.Delivered { path; _ } ->
    check_bool "fresh synthesis avoids BB2" true
      (not (List.mem 1 (Pr_topology.Path.transit_ads path)))
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o

let orwg_policy_change_visible () =
  let g = Figure1.graph () in
  let r = converge_on (Config.defaults g) g in
  let p = Transit_policy.make 0 [ Policy_term.make ~owner:0 ~qos:[ Pr_policy.Qos.Low_delay ] () ] in
  Orwg.Orwg.set_policy (R.protocol r) p;
  check_int "override visible" 1
    (Transit_policy.term_count (Orwg.Orwg.current_policy (R.protocol r) 0))

module Delegated = Orwg.Delegated

let orwg_delegation_equivalent_delivery () =
  let g = Figure1.graph () in
  let config = Config.defaults g in
  let module Rd = Runner.Make (Delegated) in
  let r = converge_on config g in
  let rd = Rd.setup g config in
  let cd = Rd.converge rd in
  check_bool "delegated converges" true cd.Runner.converged;
  (* Same delivery outcome for every host pair. *)
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            let flow = Flow.make ~src ~dst () in
            check_bool
              (Printf.sprintf "same delivery for %d->%d" src dst)
              (Forwarding.delivered (R.send_flow r flow))
              (Forwarding.delivered (Rd.send_flow rd flow))
          end)
        (Graph.host_ids g))
    (Graph.host_ids g)

let orwg_delegation_saves_flooding () =
  let g = Figure1.graph () in
  let config = Config.defaults g in
  let module Rd = Runner.Make (Delegated) in
  let r = R.setup g config in
  let c_full = R.converge r in
  let rd = Rd.setup g config in
  let c_del = Rd.converge rd in
  check_bool
    (Printf.sprintf "fewer flood messages (%d < %d)" c_del.Runner.messages
       c_full.Runner.messages)
    true
    (c_del.Runner.messages < c_full.Runner.messages);
  (* Stub databases are (nearly) empty; its own LSA may be stored. *)
  List.iter
    (fun ad ->
      check_bool "stub db nearly empty" true (Delegated.db_entries (Rd.protocol rd) ad <= 1))
    (Graph.stub_ids g);
  (* Transit databases are complete. *)
  List.iter
    (fun ad ->
      check_int "transit db complete" (Graph.n g) (Delegated.db_entries (Rd.protocol rd) ad))
    (Graph.transit_ids g)

let orwg_delegation_route_server_mapping () =
  let g = Figure1.graph () in
  let module Rd = Runner.Make (Delegated) in
  let rd = Rd.setup g (Config.defaults g) in
  ignore (Rd.converge rd);
  (* Stub 7 delegates to its provider R1 (2); transit ADs serve
     themselves. *)
  check_int "stub delegates to provider" 2 (Delegated.route_server_of (Rd.protocol rd) 7);
  check_int "transit self-serves" 0 (Delegated.route_server_of (Rd.protocol rd) 0);
  (* Non-delegating variant: everyone self-serves. *)
  let r = converge_on (Config.defaults g) g in
  check_int "full-flooding self-serves" 7 (Orwg.Orwg.route_server_of (R.protocol r) 7)

let orwg_delegation_adapts_to_failure () =
  let g = Figure1.graph () in
  let module Rd = Runner.Make (Delegated) in
  let rd = Rd.setup g (Config.defaults g) in
  ignore (Rd.converge rd);
  let flow = Flow.make ~src:7 ~dst:12 () in
  check_bool "delivered before" true (Forwarding.delivered (Rd.send_flow rd flow));
  let lid = Option.get (Graph.find_link g 0 1) in
  Rd.fail_link rd lid;
  ignore (Rd.converge rd);
  (* The stale cached route is detected against the provider's database
     and re-synthesized. *)
  match Rd.send_flow rd flow with
  | Forwarding.Delivered { path; _ } ->
    let rec uses = function
      | a :: b :: rest -> ((a = 0 && b = 1) || (a = 1 && b = 0)) || uses (b :: rest)
      | _ -> false
    in
    check_bool "rerouted around the failure" false (uses path)
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_orwg"
    [
      ( "orwg",
        [
          Alcotest.test_case "setup then handles" `Quick orwg_setup_then_handles;
          Alcotest.test_case "route shared across flows" `Quick
            orwg_policy_route_shared_across_hosts;
          Alcotest.test_case "no-handles header overhead" `Quick orwg_no_handles_header_overhead;
          Alcotest.test_case "source policy honored" `Quick orwg_source_policy_honored;
          Alcotest.test_case "gateway validates setup" `Quick orwg_gateway_validates_setup;
          Alcotest.test_case "precompute" `Quick orwg_precompute_prevents_setup_latency;
          Alcotest.test_case "stale route invalidated" `Quick
            orwg_stale_route_invalidated_by_flooding;
          Alcotest.test_case "per-packet PG validation" `Quick orwg_pg_validation_counts;
          Alcotest.test_case "bounded PG cache eviction" `Quick orwg_bounded_pg_eviction;
          Alcotest.test_case "unbounded never evicts" `Quick orwg_unbounded_never_evicts;
          Alcotest.test_case "policy change: stale setup retried" `Quick
            orwg_policy_change_stale_retry;
          Alcotest.test_case "policy change visible" `Quick orwg_policy_change_visible;
          Alcotest.test_case "delegation: same delivery" `Quick
            orwg_delegation_equivalent_delivery;
          Alcotest.test_case "delegation: flooding savings" `Quick
            orwg_delegation_saves_flooding;
          Alcotest.test_case "delegation: route server mapping" `Quick
            orwg_delegation_route_server_mapping;
          Alcotest.test_case "delegation: adapts to failure" `Quick
            orwg_delegation_adapts_to_failure;
        ]
        @ qsuite [ orwg_no_transit_violations ] );
    ]

(* Tests for the pr_telemetry layer: log2-bucket histogram quantiles
   against a sorted-array oracle, merge algebra (commutative,
   associative, equivalent to recording into one histogram), JSON
   round-trips for histograms and registry snapshots, snapshot
   diff/merge semantics, the flight-recorder ring contract, the
   bench-regression gate's tolerance bands, allocation accounting, and
   the daemon acceptance criterion: estimated p50/p99 within one log2
   bucket of the exact sorted-list percentiles of the same session. *)

module J = Pr_util.Json
module Stats = Pr_util.Stats
module Hist = Pr_telemetry.Hist
module Reg = Pr_telemetry.Registry
module Flight = Pr_telemetry.Flight
module Gate = Pr_telemetry.Gate
module Alloc = Pr_telemetry.Alloc
module Daemon = Pr_serve.Daemon

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let of_list xs =
  let h = Hist.create () in
  List.iter (Hist.record h) xs;
  h

(* --- histogram buckets ---------------------------------------------- *)

let test_bucket_edges () =
  check_int "0 -> bucket 0" 0 (Hist.bucket_index 0.0);
  check_int "negative -> bucket 0" 0 (Hist.bucket_index (-7.0));
  check_int "nan -> bucket 0" 0 (Hist.bucket_index Float.nan);
  check_int "0.3 -> bucket 0" 0 (Hist.bucket_index 0.3);
  check_int "1 -> bucket 0" 0 (Hist.bucket_index 1.0);
  check_int "2 -> bucket 1" 1 (Hist.bucket_index 2.0);
  check_int "3 -> bucket 1" 1 (Hist.bucket_index 3.0);
  check_int "1024 -> bucket 10" 10 (Hist.bucket_index 1024.0);
  check_int "huge -> last bucket" (Hist.num_buckets - 1)
    (Hist.bucket_index 1e30);
  check_int "inf -> last bucket" (Hist.num_buckets - 1)
    (Hist.bucket_index Float.infinity);
  (* Every bucket's own lower bound must land in that bucket. *)
  for i = 0 to Hist.num_buckets - 1 do
    let lo, hi = Hist.bucket_bounds i in
    check_int "lower bound in own bucket" i (Hist.bucket_index lo);
    if i < Hist.num_buckets - 1 then
      check_int "upper bound in next bucket" (i + 1) (Hist.bucket_index hi)
  done

let test_exact_accounting () =
  let xs = [ 3.0; 100.0; 0.5; 7e6; 3.5 ] in
  let h = of_list xs in
  check_int "count" 5 (Hist.count h);
  Alcotest.(check (float 1e-9)) "sum" (List.fold_left ( +. ) 0.0 xs) (Hist.sum h);
  Alcotest.(check (float 1e-9)) "min" 0.5 (Hist.min_value h);
  Alcotest.(check (float 1e-9)) "max" 7e6 (Hist.max_value h)

(* --- quantiles vs the sorted-array oracle --------------------------- *)

(* The estimate must land within one log2 bucket of the exact order
   statistic at rank floor(p/100 * (count-1)) — the guarantee the
   .mli declares. *)
let sample = QCheck.(list_of_size Gen.(int_range 1 300) (float_bound_inclusive 1e12))

let quantile_within_one_bucket =
  QCheck.Test.make ~name:"quantile within one bucket of order statistic"
    ~count:200
    QCheck.(pair sample (int_bound 100))
    (fun (xs, p) ->
      let p = float_of_int p in
      let h = of_list xs in
      let sorted = List.sort compare xs in
      let rank = p /. 100.0 *. float_of_int (List.length xs - 1) in
      let exact = List.nth sorted (int_of_float rank) in
      abs (Hist.bucket_index (Hist.quantile h p) - Hist.bucket_index exact) <= 1)

let quantile_clamped_and_monotone =
  QCheck.Test.make ~name:"quantile stays in [min,max] and is monotone"
    ~count:200 sample (fun xs ->
      let h = of_list xs in
      let qs = List.map (fun p -> Hist.quantile h (float_of_int p)) [ 0; 25; 50; 75; 90; 99; 100 ] in
      List.for_all (fun q -> q >= Hist.min_value h && q <= Hist.max_value h) qs
      && fst
           (List.fold_left
              (fun (mono, prev) q -> (mono && q >= prev, q))
              (true, -1.0) qs))

let test_quantile_empty () =
  let h = Hist.create () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Hist.quantile h 50.0);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Hist.mean h)

(* --- merge algebra --------------------------------------------------- *)

let merged a b =
  let m = Hist.copy a in
  Hist.merge ~into:m b;
  m

let merge_commutes =
  QCheck.Test.make ~name:"merge commutes" ~count:200
    QCheck.(pair sample sample)
    (fun (xs, ys) ->
      let a = of_list xs and b = of_list ys in
      Hist.equal (merged a b) (merged b a))

let merge_associates =
  QCheck.Test.make ~name:"merge associates" ~count:200
    QCheck.(triple sample sample sample)
    (fun (xs, ys, zs) ->
      let a = of_list xs and b = of_list ys and c = of_list zs in
      Hist.equal (merged (merged a b) c) (merged a (merged b c)))

let merge_equals_single =
  QCheck.Test.make ~name:"merge of shards = one histogram" ~count:200
    QCheck.(pair sample sample)
    (fun (xs, ys) ->
      let a = of_list xs and b = of_list ys in
      Hist.equal (merged a b) (of_list (xs @ ys)))

let hist_json_roundtrip =
  QCheck.Test.make ~name:"histogram JSON round-trip" ~count:200 sample
    (fun xs ->
      let h = of_list xs in
      match Hist.of_json (Hist.to_json h) with
      | Ok h' -> Hist.equal h h'
      | Error _ -> false)

let test_diff () =
  let before = of_list [ 2.0; 100.0 ] in
  let after = of_list [ 2.0; 100.0; 5000.0; 3.0 ] in
  let d = Hist.diff ~after ~before in
  check_int "diff count" 2 (Hist.count d);
  Alcotest.(check (float 1e-6)) "diff sum" 5003.0 (Hist.sum d);
  check_bool "diff buckets are the delta" true
    (Hist.buckets d
    = [ (Hist.bucket_index 3.0, 1); (Hist.bucket_index 5000.0, 1) ])

(* --- registry -------------------------------------------------------- *)

let test_registry_handles () =
  let r = Reg.create () in
  let c = Reg.counter r "a.count" in
  Reg.inc c;
  Reg.add c 4;
  check_int "counter" 5 (Reg.count c);
  (* Idempotent registration: same handle back. *)
  Reg.inc (Reg.counter r "a.count");
  check_int "same handle" 6 (Reg.count c);
  let g = Reg.gauge r "b.gauge" in
  Reg.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Reg.get g);
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Registry: \"a.count\" already registered as a counter, wanted a gauge")
    (fun () -> ignore (Reg.gauge r "a.count"))

let snapshot_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n, v) (n', v') ->
         n = n'
         &&
         match (v, v') with
         | Reg.Counter x, Reg.Counter y -> x = y
         | Reg.Gauge x, Reg.Gauge y -> x = y
         | Reg.Histogram x, Reg.Histogram y -> Hist.equal x y
         | _ -> false)
       a b

let populated () =
  let r = Reg.create () in
  Reg.add (Reg.counter r "c.events") 7;
  Reg.set (Reg.gauge r "g.depth") 3.0;
  Hist.record (Reg.histogram r "h.lat") 250.0;
  Hist.record (Reg.histogram r "h.lat") 9000.0;
  r

let test_snapshot_roundtrip () =
  let snap = Reg.snapshot (populated ()) in
  check_int "three metrics" 3 (List.length snap);
  check_bool "sorted by name" true
    (List.map fst snap = List.sort compare (List.map fst snap));
  match Reg.snapshot_of_json (Reg.snapshot_to_json snap) with
  | Error e -> Alcotest.fail e
  | Ok snap' -> check_bool "round-trip equal" true (snapshot_equal snap snap')

let test_snapshot_diff_merge () =
  let r = populated () in
  let before = Reg.snapshot r in
  Reg.add (Reg.counter r "c.events") 5;
  Reg.set (Reg.gauge r "g.depth") 9.0;
  Hist.record (Reg.histogram r "h.lat") 42.0;
  let after = Reg.snapshot r in
  let d = Reg.diff ~after ~before in
  check_bool "counter delta" true
    (List.assoc "c.events" d = Reg.Counter 5);
  check_bool "gauge takes after" true (List.assoc "g.depth" d = Reg.Gauge 9.0);
  (match List.assoc "h.lat" d with
  | Reg.Histogram h -> check_int "hist delta count" 1 (Hist.count h)
  | _ -> Alcotest.fail "h.lat not a histogram");
  (* Merging the diff back onto [before] recovers [after] — up to
     histogram min/max, which [Hist.diff] only knows at bucket
     resolution. *)
  let recovered = Reg.merge before d in
  check_bool "before + diff = after" true
    (List.for_all2
       (fun (n, v) (n', v') ->
         n = n'
         &&
         match (v, v') with
         | Reg.Histogram x, Reg.Histogram y ->
           Hist.buckets x = Hist.buckets y && Hist.count x = Hist.count y
         | _ -> v = v')
       recovered after)

let test_prometheus () =
  let text = Reg.to_prometheus (Reg.snapshot (populated ())) in
  List.iter
    (fun needle ->
      let ok =
        let n = String.length needle and m = String.length text in
        let rec scan i = i + n <= m && (String.sub text i n = needle || scan (i + 1)) in
        scan 0
      in
      check_bool ("exposition mentions " ^ needle) true ok)
    [ "c_events 7"; "g_depth 3"; "h_lat_count 2"; "le=\"+Inf\"" ]

(* --- flight recorder ------------------------------------------------- *)

let test_flight_ring () =
  let f = Flight.create ~capacity:4 () in
  for i = 1 to 6 do
    Flight.note f ~ts:(float_of_int i) (Printf.sprintf "e%d" i)
  done;
  check_int "total counts everything" 6 (Flight.total f);
  check_int "length capped" 4 (Flight.length f);
  check_bool "oldest overwritten, order kept" true
    (List.map (fun (e : Flight.event) -> e.name) (Flight.events f)
    = [ "e3"; "e4"; "e5"; "e6" ]);
  Flight.set_enabled f false;
  Flight.note f ~ts:9.0 "ignored";
  check_int "disabled is a no-op" 6 (Flight.total f)

let test_flight_dump () =
  let f = Flight.create ~capacity:8 () in
  Flight.note f ~ts:1.0 ~detail:"AD 3" "node.down";
  Flight.note f ~kind:Flight.Counter ~ts:2.0 ~value:17.0 "queue";
  let path = Filename.temp_file "flight" ".json" in
  Flight.dump f ~reason:"test dump" ~path
    ~metrics:(Reg.snapshot (populated ()));
  let ic = open_in path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match J.parse doc with
  | Error e -> Alcotest.fail e
  | Ok j ->
    Alcotest.(check string) "document" "post-mortem"
      (Result.get_ok (J.string_member "document" j));
    Alcotest.(check string) "reason" "test dump"
      (Result.get_ok (J.string_member "reason" j));
    check_int "events" 2
      (List.length (Result.get_ok (J.to_list (Option.get (J.member "events" j)))));
    check_bool "metrics embedded" true (J.member "metrics" j <> None)

(* --- regression gate ------------------------------------------------- *)

let row fields = J.Obj (List.map (fun (k, v) -> (k, J.Float v)) fields)

let test_gate_bands () =
  let spec =
    [
      { Gate.field = "queries"; band = Gate.Exact };
      { Gate.field = "qps"; band = Gate.Rel 0.5 };
      { Gate.field = "noise"; band = Gate.Ignore };
    ]
  in
  let baseline = row [ ("queries", 100.0); ("qps", 50.0); ("noise", 1.0) ] in
  let ok_row = row [ ("queries", 100.0); ("qps", 70.0); ("noise", 99.0) ] in
  check_int "all within" 0
    (List.length (Gate.failures (Gate.compare_row ~spec ~baseline ~current:ok_row)));
  let drifted = row [ ("queries", 101.0); ("qps", 200.0); ("noise", 0.0) ] in
  let bad = Gate.failures (Gate.compare_row ~spec ~baseline ~current:drifted) in
  check_bool "exact and rel both fail, ignore passes" true
    (List.map (fun (o : Gate.outcome) -> o.field) bad = [ "queries"; "qps" ]);
  (* Schema evolution: absent in baseline skips; absent in current fails. *)
  let old_baseline = row [ ("queries", 100.0) ] in
  check_int "absent-in-baseline skipped" 0
    (List.length
       (Gate.failures (Gate.compare_row ~spec ~baseline:old_baseline ~current:ok_row)));
  let truncated = row [ ("queries", 100.0); ("noise", 1.0) ] in
  check_bool "absent-in-current fails" true
    (List.exists
       (fun (o : Gate.outcome) -> o.field = "qps")
       (Gate.failures (Gate.compare_row ~spec ~baseline ~current:truncated)))

(* --- allocation accounting ------------------------------------------ *)

let test_alloc_words () =
  let sink = ref [] in
  let w = Alloc.words (fun () -> sink := List.init 1000 Fun.id) in
  check_bool "allocating thunk measured > 1000 words" true (w > 1000.0);
  ignore (Sys.opaque_identity !sink);
  let per = Alloc.words_per ~ops:10 (fun () -> sink := List.init 1000 Fun.id) in
  check_bool "per-op divides" true (per < w);
  let r = Reg.create () in
  Alloc.sample ~registry:r ();
  check_bool "gc gauges published" true
    (List.mem_assoc "gc.minor_words" (Reg.snapshot r))

(* --- daemon acceptance: estimates vs exact sorted-list values -------- *)

let test_daemon_one_bucket () =
  let cfg =
    {
      Daemon.default_config with
      Daemon.seed = 5;
      target_ads = 30;
      duration = 8.0;
      record_exact = true;
    }
  in
  let report = Daemon.run cfg in
  check_bool "session answered queries" true (report.Daemon.answered > 0);
  let exact = report.Daemon.exact_latencies in
  check_int "one exact latency per histogram record"
    (Hist.count report.Daemon.latency)
    (List.length exact);
  List.iter
    (fun p ->
      let est = Hist.quantile report.Daemon.latency p in
      let truth = Stats.percentile exact p in
      check_bool
        (Printf.sprintf "p%.0f estimate within one log2 bucket" p)
        true
        (abs (Hist.bucket_index est - Hist.bucket_index truth) <= 1))
    [ 50.0; 90.0; 99.0 ];
  (* The report's headline figures are exactly the histogram estimates. *)
  Alcotest.(check (float 0.0)) "p50 is the histogram estimate"
    (Hist.quantile report.Daemon.latency 50.0)
    report.Daemon.p50_ns;
  (* Off by default: the serving loop keeps no per-query list. *)
  let plain = Daemon.run { cfg with Daemon.record_exact = false } in
  check_int "no exact latencies unless asked" 0
    (List.length plain.Daemon.exact_latencies);
  check_int "identical session either way" report.Daemon.queries
    plain.Daemon.queries

let qcheck = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "telemetry"
    [
      ( "hist",
        [
          Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
          Alcotest.test_case "exact accounting" `Quick test_exact_accounting;
          Alcotest.test_case "empty quantile" `Quick test_quantile_empty;
          Alcotest.test_case "diff" `Quick test_diff;
        ]
        @ qcheck
            [
              quantile_within_one_bucket;
              quantile_clamped_and_monotone;
              merge_commutes;
              merge_associates;
              merge_equals_single;
              hist_json_roundtrip;
            ] );
      ( "registry",
        [
          Alcotest.test_case "handles" `Quick test_registry_handles;
          Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "diff and merge" `Quick test_snapshot_diff_merge;
          Alcotest.test_case "prometheus" `Quick test_prometheus;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring" `Quick test_flight_ring;
          Alcotest.test_case "dump" `Quick test_flight_dump;
        ] );
      ( "gate",
        [ Alcotest.test_case "tolerance bands" `Quick test_gate_bands ] );
      ( "alloc",
        [ Alcotest.test_case "words" `Quick test_alloc_words ] );
      ( "daemon",
        [
          Alcotest.test_case "one-bucket acceptance" `Quick
            test_daemon_one_bucket;
        ] );
    ]

(* Unit and property tests for pr_topology. *)

module Rng = Pr_util.Rng
module Ad = Pr_topology.Ad
module Link = Pr_topology.Link
module Graph = Pr_topology.Graph
module Path = Pr_topology.Path
module Generator = Pr_topology.Generator
module Figure1 = Pr_topology.Figure1
module Partial_order = Pr_topology.Partial_order
module Spf = Pr_topology.Spf
module Spf_delta = Pr_topology.Spf_delta
module Hierarchy = Pr_topology.Hierarchy

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* --- Ad / Link ----------------------------------------------------- *)

let ad_basics () =
  let a = Ad.make ~id:3 ~name:"R1" ~klass:Ad.Transit ~level:Ad.Regional in
  check_bool "transit capable" true (Ad.is_transit_capable a);
  let s = Ad.make ~id:4 ~name:"C1" ~klass:Ad.Stub ~level:Ad.Campus in
  check_bool "stub not transit" false (Ad.is_transit_capable s);
  let m = Ad.make ~id:5 ~name:"C2" ~klass:Ad.Multihomed ~level:Ad.Campus in
  check_bool "multihomed not transit" false (Ad.is_transit_capable m);
  let h = Ad.make ~id:6 ~name:"M1" ~klass:Ad.Hybrid ~level:Ad.Metro in
  check_bool "hybrid transit capable" true (Ad.is_transit_capable h);
  check_int "backbone rank" 0 (Ad.level_rank Ad.Backbone);
  check_int "campus rank" 3 (Ad.level_rank Ad.Campus)

let link_basics () =
  let l = Link.make ~id:0 ~a:1 ~b:2 Link.Lateral in
  check_int "other end of 1" 2 (Link.other_end l 1);
  check_int "other end of 2" 1 (Link.other_end l 2);
  check_bool "connects" true (Link.connects l 2 1);
  check_bool "does not connect" false (Link.connects l 1 3);
  Alcotest.check_raises "not an endpoint" (Invalid_argument "Link.other_end: not an endpoint")
    (fun () -> ignore (Link.other_end l 7));
  Alcotest.check_raises "self loop" (Invalid_argument "Link.make: self loop") (fun () ->
      ignore (Link.make ~id:0 ~a:1 ~b:1 Link.Lateral));
  Alcotest.check_raises "bad cost" (Invalid_argument "Link.make: cost < 1") (fun () ->
      ignore (Link.make ~id:0 ~a:1 ~b:2 ~cost:0 Link.Lateral))

(* --- Graph --------------------------------------------------------- *)

let triangle () =
  let ads =
    Array.init 3 (fun id ->
        Ad.make ~id ~name:(Printf.sprintf "N%d" id) ~klass:Ad.Hybrid ~level:Ad.Metro)
  in
  let links =
    [|
      Link.make ~id:0 ~a:0 ~b:1 Link.Lateral;
      Link.make ~id:1 ~a:1 ~b:2 ~cost:2 Link.Lateral;
      Link.make ~id:2 ~a:0 ~b:2 ~cost:5 Link.Lateral;
    |]
  in
  Graph.create ads links

let graph_basics () =
  let g = triangle () in
  check_int "n" 3 (Graph.n g);
  check_int "links" 3 (Graph.num_links g);
  check_int "degree" 2 (Graph.degree g 0);
  Alcotest.(check (list int)) "neighbors" [ 1; 2 ] (Graph.neighbor_ids g 0);
  Alcotest.(check (option int)) "find link" (Some 1) (Graph.find_link g 1 2);
  Alcotest.(check (option int)) "no link to self" None (Graph.find_link g 1 1);
  check_bool "connected" true (Graph.is_connected g);
  check_bool "cyclic" true (Graph.has_cycle g)

let graph_validation () =
  let ads = [| Ad.make ~id:1 ~name:"X" ~klass:Ad.Stub ~level:Ad.Campus |] in
  Alcotest.check_raises "id mismatch"
    (Invalid_argument "Graph.create: AD id must equal its index") (fun () ->
      ignore (Graph.create ads [||]))

let graph_bfs () =
  let g = Generator.line ~n:5 in
  let dist = Graph.bfs_hops g 0 in
  Alcotest.(check (array int)) "line distances" [| 0; 1; 2; 3; 4 |] dist;
  Alcotest.(check (option (list int)))
    "shortest path"
    (Some [ 0; 1; 2; 3; 4 ])
    (Graph.shortest_path_hops g 0 4)

let graph_acyclic_line () =
  let g = Generator.line ~n:4 in
  check_bool "line has no cycle" false (Graph.has_cycle g);
  check_bool "connected" true (Graph.is_connected g)

let graph_counts () =
  let g = Figure1.graph () in
  let klass_count k = List.assoc k (Graph.count_by_klass g) in
  check_int "stubs" 6 (klass_count Ad.Stub);
  check_int "multihomed" 2 (klass_count Ad.Multihomed);
  check_int "transit" 6 (klass_count Ad.Transit);
  let kind_count k = List.assoc k (Graph.count_links_by_kind g) in
  check_int "hierarchical" 13 (kind_count Link.Hierarchical);
  check_int "lateral" 3 (kind_count Link.Lateral);
  check_int "bypass" 1 (kind_count Link.Bypass);
  check_int "hosts = stubs + multihomed" 8 (List.length (Graph.host_ids g));
  check_int "transit ids" 6 (List.length (Graph.transit_ids g))

(* --- CSR adjacency vs naive reference ------------------------------ *)

(* Random connected multigraph: a spanning path for connectivity plus
   random extra links, which freely duplicate AD pairs (parallel links
   with distinct costs — exactly what the CSR unique-neighbor index has
   to get right). *)
let random_multigraph seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 14 in
  let ads =
    Array.init n (fun id ->
        Ad.make ~id ~name:(Printf.sprintf "N%d" id) ~klass:Ad.Hybrid ~level:Ad.Metro)
  in
  let extra = Rng.int rng (2 * n) in
  let links =
    Array.init (n - 1 + extra) (fun id ->
        if id < n - 1 then Link.make ~id ~a:id ~b:(id + 1) ~cost:(1 + Rng.int rng 9) Link.Lateral
        else begin
          let a = Rng.int rng n in
          let rec other () =
            let b = Rng.int rng n in
            if b = a then other () else b
          in
          Link.make ~id ~a ~b:(other ()) ~cost:(1 + Rng.int rng 9) Link.Lateral
        end)
  in
  Graph.create ads links

(* Reference adjacency straight off the link array: incident (nbr, lid)
   slots of [u], sorted the way the CSR rows are. *)
let ref_slots g u =
  Graph.fold_links g ~init:[] ~f:(fun acc l ->
      if l.Link.a = u then (l.Link.b, l.Link.id) :: acc
      else if l.Link.b = u then (l.Link.a, l.Link.id) :: acc
      else acc)
  |> List.sort compare

(* Cheapest link between the pair, lowest id among cost ties (links are
   scanned in id order, so strict [<] keeps the first). *)
let ref_find_link g x y =
  Graph.fold_links g ~init:None ~f:(fun acc l ->
      if Link.connects l x y then
        match acc with
        | Some (best : Link.t) when l.Link.cost >= best.Link.cost -> acc
        | _ -> Some l
      else acc)
  |> fun o -> Option.map (fun (l : Link.t) -> l.Link.id) o

let ref_bfs g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let frontier = ref [ src ] in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun u ->
        List.iter
          (fun (v, _) ->
            if dist.(v) < 0 then begin
              dist.(v) <- dist.(u) + 1;
              next := v :: !next
            end)
          (ref_slots g u))
      !frontier;
    frontier := List.sort_uniq compare !next
  done;
  dist

let all_ids g = List.init (Graph.n g) (fun i -> i)

let csr_neighbors_prop =
  QCheck.Test.make ~name:"CSR rows match the naive adjacency" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_multigraph seed in
      List.for_all
        (fun u ->
          let slots = ref_slots g u in
          Graph.neighbors g u = slots
          && Graph.neighbor_ids g u = List.sort_uniq compare (List.map fst slots)
          && Graph.degree g u = List.length slots
          && Graph.fold_neighbors g u ~init:[] ~f:(fun acc v lid -> (v, lid) :: acc)
             = List.rev slots)
        (all_ids g))

let csr_find_link_prop =
  QCheck.Test.make ~name:"find_link returns the cheapest parallel link" ~count:100
    QCheck.small_int (fun seed ->
      let g = random_multigraph seed in
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              let expected = ref_find_link g x y in
              Graph.find_link g x y = expected
              && Graph.link_cost g x y
                 = (match expected with
                   | None -> -1
                   | Some lid -> (Graph.link g lid).Link.cost))
            (all_ids g))
        (all_ids g))

let csr_links_between_prop =
  QCheck.Test.make ~name:"iter_links_between yields the pair's links in id order" ~count:100
    QCheck.small_int (fun seed ->
      let g = random_multigraph seed in
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              let got = ref [] in
              Graph.iter_links_between g x y ~f:(fun lid -> got := lid :: !got);
              let expected =
                Graph.fold_links g ~init:[] ~f:(fun acc l ->
                    if Link.connects l x y then l.Link.id :: acc else acc)
                |> List.sort compare
              in
              List.rev !got = expected)
            (all_ids g))
        (all_ids g))

let csr_bfs_prop =
  QCheck.Test.make ~name:"bfs_hops and is_connected match the reference" ~count:100
    QCheck.small_int (fun seed ->
      let g = random_multigraph seed in
      Graph.is_connected g
      && List.for_all (fun src -> Graph.bfs_hops g src = ref_bfs g src) (all_ids g))

(* Bellman-Ford over the raw link array as the oracle for the CSR
   Dijkstra kernel. *)
let spf_tree_prop =
  QCheck.Test.make ~name:"Spf.tree distances match Bellman-Ford" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_multigraph seed in
      let n = Graph.n g in
      let bellman src =
        let dist = Array.make n max_int in
        dist.(src) <- 0;
        for _ = 1 to n do
          Graph.fold_links g ~init:() ~f:(fun () l ->
              let relax a b =
                if dist.(a) < max_int && dist.(a) + l.Link.cost < dist.(b) then
                  dist.(b) <- dist.(a) + l.Link.cost
              in
              relax l.Link.a l.Link.b;
              relax l.Link.b l.Link.a)
        done;
        Array.map (fun d -> if d = max_int then -1 else d) dist
      in
      List.for_all
        (fun src ->
          let t = Pr_topology.Spf.tree g ~src in
          t.Pr_topology.Spf.dist = bellman src
          && List.for_all
               (fun dst ->
                 match Pr_topology.Spf.path t dst with
                 | None -> t.Pr_topology.Spf.dist.(dst) < 0
                 | Some p ->
                   Path.source p = src
                   && Path.destination p = dst
                   && Path.cost g p = Some t.Pr_topology.Spf.dist.(dst))
               (all_ids g))
        (all_ids g))

(* --- Path ---------------------------------------------------------- *)

let path_basics () =
  let p = [ 0; 1; 2 ] in
  check_int "source" 0 (Path.source p);
  check_int "destination" 2 (Path.destination p);
  check_int "hops" 2 (Path.hops p);
  check_bool "loop free" true (Path.is_loop_free p);
  check_bool "loop detected" false (Path.is_loop_free [ 0; 1; 0 ]);
  Alcotest.(check (list int)) "transit" [ 1 ] (Path.transit_ads p);
  Alcotest.(check (list int)) "no transit on 2-path" [] (Path.transit_ads [ 0; 1 ]);
  Alcotest.(check string) "to_string" "0->1->2" (Path.to_string p)

let path_cost () =
  let g = triangle () in
  Alcotest.(check (option int)) "cost 0-1-2" (Some 3) (Path.cost g [ 0; 1; 2 ]);
  Alcotest.(check (option int)) "cost direct" (Some 5) (Path.cost g [ 0; 2 ]);
  check_bool "valid" true (Path.is_valid g [ 0; 1; 2 ]);
  check_bool "invalid loop" false (Path.is_valid g [ 0; 1; 0 ]);
  check_bool "invalid empty" false (Path.is_valid g [])

let path_enumerate () =
  let g = triangle () in
  let paths = Path.enumerate_simple g ~src:0 ~dst:2 ~max_hops:3 () in
  Alcotest.(check int) "two simple paths" 2 (List.length paths);
  check_bool "all valid" true (List.for_all (Path.is_valid g) paths);
  let bounded = Path.enumerate_simple g ~src:0 ~dst:2 ~max_hops:1 () in
  Alcotest.(check (list (list int))) "hop bound" [ [ 0; 2 ] ] bounded;
  let pruned =
    Path.enumerate_simple g ~src:0 ~dst:2 ~max_hops:3 ~node_ok:(fun v -> v <> 1) ()
  in
  Alcotest.(check (list (list int))) "interior filter" [ [ 0; 2 ] ] pruned;
  let edge_pruned =
    Path.enumerate_simple g ~src:0 ~dst:2 ~max_hops:3
      ~edge_ok:(fun u v -> not (u = 0 && v = 2))
      ()
  in
  Alcotest.(check (list (list int))) "edge filter" [ [ 0; 1; 2 ] ] edge_pruned

let path_enumerate_limit () =
  let g = Generator.random_mesh (Rng.create 3) ~n:10 ~extra_links:10 in
  let paths = Path.enumerate_simple g ~src:0 ~dst:9 ~max_hops:9 ~limit:5 () in
  check_bool "limit respected" true (List.length paths <= 5)

(* --- Generator ----------------------------------------------------- *)

let generator_structure =
  QCheck.Test.make ~name:"generated internets are connected and well-classed" ~count:30
    QCheck.small_int (fun seed ->
      let g = Generator.generate (Rng.create seed) Generator.default in
      Graph.is_connected g
      && Array.for_all
           (fun (a : Ad.t) ->
             match (a.Ad.level, a.Ad.klass) with
             | Ad.Backbone, Ad.Transit | Ad.Regional, Ad.Transit -> true
             | Ad.Metro, (Ad.Transit | Ad.Hybrid) -> true
             | Ad.Campus, (Ad.Stub | Ad.Multihomed) -> true
             | _ -> false)
           (Graph.ads g)
      && Graph.fold_links g ~init:true ~f:(fun acc l -> acc && l.Link.a <> l.Link.b))

let generator_multihomed_consistent =
  QCheck.Test.make ~name:"campus with >1 link is multihomed, with 1 is stub" ~count:30
    QCheck.small_int (fun seed ->
      let g = Generator.generate (Rng.create seed) Generator.default in
      Array.for_all
        (fun (a : Ad.t) ->
          match a.Ad.level with
          | Ad.Campus ->
            let d = Graph.degree g a.Ad.id in
            if d > 1 then a.Ad.klass = Ad.Multihomed else a.Ad.klass = Ad.Stub
          | _ -> true)
        (Graph.ads g))

let generator_no_duplicate_links =
  QCheck.Test.make ~name:"no duplicate links between an AD pair" ~count:30 QCheck.small_int
    (fun seed ->
      let g = Generator.generate (Rng.create seed) Generator.default in
      let pairs =
        Graph.fold_links g ~init:[] ~f:(fun acc l ->
            (Stdlib.min l.Link.a l.Link.b, Stdlib.max l.Link.a l.Link.b) :: acc)
      in
      List.length pairs = List.length (List.sort_uniq compare pairs))

let generator_deterministic () =
  let g1 = Generator.generate (Rng.create 99) Generator.default in
  let g2 = Generator.generate (Rng.create 99) Generator.default in
  check_int "same n" (Graph.n g1) (Graph.n g2);
  check_int "same links" (Graph.num_links g1) (Graph.num_links g2);
  Graph.fold_links g1 ~init:() ~f:(fun () l ->
      let l2 = Graph.link g2 l.Link.id in
      check_bool "same link endpoints" true (l.Link.a = l2.Link.a && l.Link.b = l2.Link.b))

let generator_scaled () =
  List.iter
    (fun target ->
      let p = Generator.scaled ~target_ads:target in
      let g = Generator.generate (Rng.create 7) p in
      let n = Graph.n g in
      check_bool
        (Printf.sprintf "size %d within 2x of target %d" n target)
        true
        (n >= target / 2 && n <= target * 2))
    [ 25; 50; 100; 200 ]

let generator_mesh () =
  let g = Generator.random_mesh (Rng.create 5) ~n:20 ~extra_links:10 in
  check_int "n" 20 (Graph.n g);
  check_bool "connected" true (Graph.is_connected g);
  check_bool "has cycles" true (Graph.has_cycle g);
  check_int "links" 29 (Graph.num_links g);
  let tree = Generator.random_mesh (Rng.create 5) ~n:20 ~extra_links:0 in
  check_bool "tree acyclic" false (Graph.has_cycle tree);
  check_int "tree links" 19 (Graph.num_links tree)

let generator_ring () =
  let g = Generator.ring ~n:6 in
  check_int "links" 6 (Graph.num_links g);
  check_bool "cycle" true (Graph.has_cycle g);
  check_bool "all degree 2" true
    (List.for_all (fun i -> Graph.degree g i = 2) (List.init 6 (fun i -> i)))

(* --- Figure 1 ------------------------------------------------------ *)

let figure1_shape () =
  let g = Figure1.graph () in
  check_int "14 ADs" 14 (Graph.n g);
  check_int "17 links" 17 (Graph.num_links g);
  check_bool "connected" true (Graph.is_connected g);
  check_bool "cyclic (lateral+bypass)" true (Graph.has_cycle g);
  check_int "multihomed degree" 2 (Graph.degree g Figure1.multihomed_campus);
  check_int "bypass campus degree" 2 (Graph.degree g Figure1.bypass_campus);
  check_bool "backbones adjacent" true
    (Graph.find_link g Figure1.backbone_1 Figure1.backbone_2 <> None);
  check_int "four regionals" 4 (List.length Figure1.regionals);
  check_int "eight campuses" 8 (List.length Figure1.campuses)

(* --- Partial order ------------------------------------------------- *)

let po_of_levels () =
  let g = Figure1.graph () in
  let po = Partial_order.of_levels g in
  check_int "backbone rank" 0 (Partial_order.rank po Figure1.backbone_1);
  check_bool "campus below backbone" true
    (Partial_order.rank po Figure1.bypass_campus > Partial_order.rank po Figure1.backbone_1);
  check_bool "direction up" true
    (Partial_order.direction po ~from_ad:Figure1.bypass_campus ~to_ad:Figure1.backbone_1
    = Partial_order.Up);
  check_bool "direction level" true
    (Partial_order.direction po ~from_ad:Figure1.backbone_1 ~to_ad:Figure1.backbone_2
    = Partial_order.Level)

let po_valley_free () =
  let g = Figure1.graph () in
  let po = Partial_order.of_levels g in
  check_bool "up then down ok" true (Partial_order.is_valley_free po [ 7; 2; 0; 1; 4; 10 ]);
  check_bool "valley rejected" false (Partial_order.is_valley_free po [ 2; 7; 2 ]);
  check_bool "violation reported" true
    (Partial_order.valley_free_violation po [ 2; 7; 2 ] <> None);
  check_bool "single node fine" true (Partial_order.is_valley_free po [ 3 ])

let po_embeddable () =
  let cs = [ { Partial_order.above = 0; below = 1 }; { above = 1; below = 2 } ] in
  (match Partial_order.embeddable ~n:3 cs with
  | None -> Alcotest.fail "chain should embed"
  | Some ranks ->
    check_bool "order respected" true (ranks.(0) < ranks.(1) && ranks.(1) < ranks.(2)));
  let cyclic =
    [
      { Partial_order.above = 0; below = 1 };
      { above = 1; below = 2 };
      { above = 2; below = 0 };
    ]
  in
  check_bool "cycle rejected" true (Partial_order.embeddable ~n:3 cyclic = None)

let po_embeddable_prop =
  QCheck.Test.make ~name:"embeddable witness satisfies all constraints" ~count:200
    QCheck.(list (pair (int_range 0 9) (int_range 0 9)))
    (fun pairs ->
      let cs =
        List.filter_map
          (fun (a, b) -> if a = b then None else Some { Partial_order.above = a; below = b })
          pairs
      in
      match Partial_order.embeddable ~n:10 cs with
      | None -> true
      | Some ranks ->
        List.for_all
          (fun { Partial_order.above; below } -> ranks.(above) < ranks.(below))
          cs)

(* --- Dot ------------------------------------------------------------ *)

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let dot_well_formed () =
  let g = Figure1.graph () in
  let dot = Pr_topology.Dot.to_dot g in
  check_bool "opens graph" true (contains_substring dot "graph internet {");
  check_bool "closes graph" true (dot.[String.length dot - 2] = '}');
  (* One node statement per AD, one edge per link. *)
  for i = 0 to Graph.n g - 1 do
    check_bool
      (Printf.sprintf "node %d present" i)
      true
      (contains_substring dot (Printf.sprintf "n%d [" i))
  done;
  Graph.fold_links g ~init:() ~f:(fun () l ->
      check_bool "edge present" true
        (contains_substring dot (Printf.sprintf "n%d -- n%d" l.Link.a l.Link.b)));
  check_bool "lateral dashed" true (contains_substring dot "style=dashed");
  check_bool "bypass bold" true (contains_substring dot "style=bold")

let dot_highlight () =
  let g = Figure1.graph () in
  let dot = Pr_topology.Dot.to_dot ~highlight:[ 7; 2; 0 ] g in
  check_bool "highlighted edge" true (contains_substring dot "color=red");
  let plain = Pr_topology.Dot.to_dot g in
  check_bool "no highlight by default" false (contains_substring plain "color=red")

(* --- Spf_delta ------------------------------------------------------ *)

(* Apply one random patch both to the retained tree and to the mirror
   up/cost arrays the from-scratch oracle reads. [crashed] records the
   links each crashed AD took down, as the simulation runner does. *)
let delta_apply_op g d up cost crashed (kind, x, y) =
  let n = Graph.n g and m = Graph.num_links g in
  match kind mod 4 with
  | 0 ->
    let lid = x mod m in
    let to_up = not (Spf_delta.link_up d lid) in
    Spf_delta.set_link d lid ~up:to_up;
    up.(lid) <- to_up
  | 1 ->
    let lid = x mod m in
    let c = 1 + (y mod 9) in
    Spf_delta.set_cost d lid ~cost:c;
    cost.(lid) <- c
  | 2 ->
    let v = x mod n in
    if not (Hashtbl.mem crashed v) then begin
      let links = Spf_delta.node_down d v in
      List.iter (fun lid -> up.(lid) <- false) links;
      Hashtbl.add crashed v links
    end
  | _ -> (
    match Hashtbl.fold (fun v links _ -> Some (v, links)) crashed None with
    | None -> ()
    | Some (v, links) ->
      Spf_delta.node_up d ~links;
      List.iter (fun lid -> up.(lid) <- true) links;
      Hashtbl.remove crashed v)

let delta_graph seed =
  let rng = Rng.create seed in
  match seed mod 4 with
  | 0 -> Generator.generate rng Generator.default
  | 1 -> Generator.generate rng (Generator.scaled ~target_ads:150)
  | 2 -> Generator.random_mesh rng ~n:40 ~extra_links:25
  | _ -> Generator.ring ~n:24

(* The ISSUE's core property: after an arbitrary sequence of link
   up/down, weight-change and crash/restart deltas, the retained tree's
   distances equal a from-scratch SPF under the same link state — after
   every single repair, not just at the end — and the structural audit
   passes. Restoring everything must bring it back to [Spf.tree]. *)
let delta_vs_scratch_prop =
  QCheck.Test.make ~name:"Spf_delta repairs match from-scratch SPF" ~count:40
    QCheck.(pair small_nat (small_list (triple small_nat small_nat small_nat)))
    (fun (seed, ops) ->
      let g = delta_graph seed in
      let n = Graph.n g and m = Graph.num_links g in
      let src = seed * 7 mod n in
      let d = Spf_delta.create g ~src in
      let up = Array.make m true in
      let cost = Array.init m (fun lid -> (Graph.link g lid).Link.cost) in
      let crashed = Hashtbl.create 8 in
      let agrees () =
        let scratch = Spf.tree_state g ~up ~cost ~src in
        (Spf_delta.to_tree d).Spf.dist = scratch.Spf.dist
        && Spf_delta.self_check d = Ok ()
      in
      agrees ()
      && List.for_all
           (fun op ->
             delta_apply_op g d up cost crashed op;
             agrees ())
           ops
      &&
      (* restore everything and compare against the static-cost tree *)
      (Hashtbl.iter (fun _ links -> Spf_delta.node_up d ~links) crashed;
       for lid = 0 to m - 1 do
         Spf_delta.set_link d lid ~up:true;
         Spf_delta.set_cost d lid ~cost:(Graph.link g lid).Link.cost
       done;
       (Spf_delta.to_tree d).Spf.dist = (Spf.tree g ~src).Spf.dist
       && Spf_delta.self_check d = Ok ()))

let delta_basics () =
  let g = Figure1.graph () in
  let src = 0 in
  let d = Spf_delta.create g ~src in
  let t0 = Spf.tree g ~src in
  check_bool "fresh tree = Spf.tree" true ((Spf_delta.to_tree d).Spf.dist = t0.Spf.dist);
  check_int "no events yet" 0 (Spf_delta.events d);
  (* take down every link on the source's shortest-path tree edge to a
     chosen far node, one at a time, and verify against scratch *)
  let up = Array.make (Graph.num_links g) true in
  let cost = Array.init (Graph.num_links g) (fun lid -> (Graph.link g lid).Link.cost) in
  for lid = 0 to Stdlib.min 3 (Graph.num_links g - 1) do
    Spf_delta.set_link d lid ~up:false;
    up.(lid) <- false;
    let scratch = Spf.tree_state g ~up ~cost ~src in
    check_bool
      (Printf.sprintf "dist after link %d down" lid)
      true
      ((Spf_delta.to_tree d).Spf.dist = scratch.Spf.dist)
  done;
  check_int "events counted" 4 (Spf_delta.events d);
  check_bool "self check" true (Spf_delta.self_check d = Ok ());
  (* crash the source: everything else must become unreachable *)
  let links = Spf_delta.node_down d src in
  check_bool "source still at 0" true (Spf_delta.dist d src = 0);
  let others_unreachable = ref true in
  for v = 1 to Graph.n g - 1 do
    if Spf_delta.dist d v >= 0 then others_unreachable := false
  done;
  check_bool "others unreachable after src crash" true !others_unreachable;
  Spf_delta.node_up d ~links;
  List.iter (fun lid -> up.(lid) <- true) links;
  check_bool "restored matches scratch" true
    ((Spf_delta.to_tree d).Spf.dist = (Spf.tree_state g ~up ~cost ~src).Spf.dist);
  check_bool "repaired fewer nodes than full recompute" true
    (Spf_delta.nodes_repaired d <= Spf_delta.events d * Graph.n g)

let delta_cost_guard () =
  let g = Figure1.graph () in
  let d = Spf_delta.create g ~src:0 in
  Alcotest.check_raises "cost below 1 rejected"
    (Invalid_argument "Spf_delta.set_cost: cost must be >= 1") (fun () ->
      Spf_delta.set_cost d 0 ~cost:0)

(* --- Hierarchy ------------------------------------------------------ *)

let hierarchy_partition h n =
  let seen = Array.make n 0 in
  for c = 0 to Hierarchy.num_clusters h - 1 do
    Array.iter
      (fun ad ->
        seen.(ad) <- seen.(ad) + 1;
        if Hierarchy.cluster_of h ad <> c then seen.(ad) <- 99)
      (Hierarchy.members h c)
  done;
  Array.for_all (fun x -> x = 1) seen

let hierarchy_figure1 () =
  let g = Figure1.graph () in
  let h = Hierarchy.build g ~cluster_of:(Hierarchy.clusters_of_levels g) in
  let n = Graph.n g in
  check_bool "clusters partition the ADs" true (hierarchy_partition h n);
  check_bool "more than one cluster" true (Hierarchy.num_clusters h > 1);
  let exact = Array.init n (fun src -> Spf.tree g ~src) in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      match Hierarchy.route h ~src ~dst with
      | None -> Alcotest.failf "no hierarchical route %d -> %d" src dst
      | Some p ->
        check_bool "valid path" true (src = dst || Path.is_valid g p);
        check_int "starts at src" src (Path.source p);
        check_int "ends at dst" dst (Path.destination p);
        check_bool "loop free" true (Path.is_loop_free p);
        let c = Hierarchy.route_cost h p in
        check_bool "stretch >= 1" true (c >= exact.(src).Spf.dist.(dst))
    done
  done

let hierarchy_routes_prop =
  QCheck.Test.make ~name:"hierarchical routes deliver, loop-free, stretch >= 1" ~count:25
    QCheck.small_nat (fun seed ->
      let rng = Rng.create seed in
      let g = Generator.generate rng Generator.default in
      let n = Graph.n g in
      let h = Hierarchy.build g ~cluster_of:(Hierarchy.clusters_of_levels g) in
      hierarchy_partition h n
      && List.for_all
           (fun _ ->
             let src = Rng.int rng n and dst = Rng.int rng n in
             match Hierarchy.route h ~src ~dst with
             | None -> false
             | Some p ->
               (src = dst || Path.is_valid g p)
               && Path.source p = src && Path.destination p = dst
               && Path.is_loop_free p
               && Hierarchy.route_cost h p >= (Spf.tree g ~src).Spf.dist.(dst))
           (List.init 20 (fun i -> i)))

let hierarchy_compact () =
  let rng = Rng.create 17 in
  let g = Generator.generate rng (Generator.scaled ~target_ads:400) in
  let n = Graph.n g in
  let h = Hierarchy.build g ~cluster_of:(Hierarchy.clusters_of_levels g) in
  check_bool "cluster graph much smaller than internet" true
    (Graph.n (Hierarchy.cluster_graph h) < n / 2);
  let all_compact = ref true in
  for ad = 0 to n - 1 do
    if Hierarchy.table_entries h ad >= n then all_compact := false
  done;
  check_bool "every table smaller than flat O(n)" true !all_compact

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_topology"
    [
      ( "ad-link",
        [
          Alcotest.test_case "ad basics" `Quick ad_basics;
          Alcotest.test_case "link basics" `Quick link_basics;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick graph_basics;
          Alcotest.test_case "validation" `Quick graph_validation;
          Alcotest.test_case "bfs" `Quick graph_bfs;
          Alcotest.test_case "acyclic line" `Quick graph_acyclic_line;
          Alcotest.test_case "figure1 counts" `Quick graph_counts;
        ]
        @ qsuite
            [
              csr_neighbors_prop;
              csr_find_link_prop;
              csr_links_between_prop;
              csr_bfs_prop;
              spf_tree_prop;
            ] );
      ( "path",
        [
          Alcotest.test_case "basics" `Quick path_basics;
          Alcotest.test_case "cost" `Quick path_cost;
          Alcotest.test_case "enumerate" `Quick path_enumerate;
          Alcotest.test_case "enumerate limit" `Quick path_enumerate_limit;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick generator_deterministic;
          Alcotest.test_case "scaled sizes" `Quick generator_scaled;
          Alcotest.test_case "mesh and tree" `Quick generator_mesh;
          Alcotest.test_case "ring" `Quick generator_ring;
        ]
        @ qsuite
            [
              generator_structure;
              generator_multihomed_consistent;
              generator_no_duplicate_links;
            ] );
      ("figure1", [ Alcotest.test_case "shape" `Quick figure1_shape ]);
      ( "spf-delta",
        [
          Alcotest.test_case "basics" `Quick delta_basics;
          Alcotest.test_case "cost guard" `Quick delta_cost_guard;
        ]
        @ qsuite [ delta_vs_scratch_prop ] );
      ( "hierarchy",
        [
          Alcotest.test_case "figure1 routes" `Quick hierarchy_figure1;
          Alcotest.test_case "compact tables" `Quick hierarchy_compact;
        ]
        @ qsuite [ hierarchy_routes_prop ] );
      ( "dot",
        [
          Alcotest.test_case "well formed" `Quick dot_well_formed;
          Alcotest.test_case "highlight" `Quick dot_highlight;
        ] );
      ( "partial-order",
        [
          Alcotest.test_case "of levels" `Quick po_of_levels;
          Alcotest.test_case "valley free" `Quick po_valley_free;
          Alcotest.test_case "embeddable" `Quick po_embeddable;
        ]
        @ qsuite [ po_embeddable_prop ] );
    ]

(* Unit and property tests for the pr_util substrate. *)

module Rng = Pr_util.Rng
module Pqueue = Pr_util.Pqueue
module Bitset = Pr_util.Bitset
module Stats = Pr_util.Stats
module Texttable = Pr_util.Texttable

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng ----------------------------------------------------------- *)

let rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same sequence" (Rng.bits64 a) (Rng.bits64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let first_b = Rng.bits64 b in
  (* Drawing more from [a] must not change what [b] produces next. *)
  let a' = Rng.create 5 in
  let b' = Rng.split a' in
  ignore (Rng.bits64 a');
  ignore (Rng.bits64 a');
  Alcotest.(check int64) "split stream isolated" first_b (Rng.bits64 b')

let rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let rng_int_in_range_bounds =
  QCheck.Test.make ~name:"Rng.int_in_range inclusive bounds" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, width) ->
      let rng = Rng.create seed in
      let x = Rng.int_in_range rng ~min:lo ~max:(lo + width) in
      x >= lo && x <= lo + width)

let rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float in [0, bound)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let x = Rng.float rng 10.0 in
      x >= 0.0 && x < 10.0)

let rng_invalid () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "choose []" (Invalid_argument "Rng.choose: empty list") (fun () ->
      ignore (Rng.choose rng []))

let rng_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      let shuffled = Rng.shuffle_list rng xs in
      List.sort compare shuffled = List.sort compare xs)

let rng_sample_distinct =
  QCheck.Test.make ~name:"sample draws distinct positions" ~count:200
    QCheck.(pair small_int (int_range 0 30))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let xs = List.init n (fun i -> i) in
      let k = n / 2 in
      let s = Rng.sample rng k xs in
      List.length s = min k n && List.sort_uniq compare s = List.sort compare s)

let rng_chance_extremes () =
  let rng = Rng.create 11 in
  for _ = 1 to 50 do
    check_bool "p=0 never" false (Rng.chance rng 0.0);
    check_bool "p=1 always" true (Rng.chance rng 1.0)
  done

(* --- Pqueue -------------------------------------------------------- *)

let pqueue_basic () =
  let q = Pqueue.create () in
  check_bool "empty" true (Pqueue.is_empty q);
  Pqueue.add q ~priority:2.0 "b";
  Pqueue.add q ~priority:1.0 "a";
  Pqueue.add q ~priority:3.0 "c";
  check_int "length" 3 (Pqueue.length q);
  Alcotest.(check (option (float 0.0))) "min" (Some 1.0) (Pqueue.min_priority q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop c" (Some (3.0, "c")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop none" None (Pqueue.pop q)

let pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iteri (fun i name -> Pqueue.add q ~priority:(float_of_int (i mod 2)) name)
    [ "a0"; "b1"; "c0"; "d1"; "e0" ];
  let popped = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (_, v) ->
      popped := v :: !popped;
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "FIFO among equal priorities"
    [ "a0"; "c0"; "e0"; "b1"; "d1" ] (List.rev !popped)

let pqueue_sorted_output =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority" ~count:200
    QCheck.(list (float_bound_inclusive 100.0))
    (fun priorities ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.add q ~priority:p ()) priorities;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (p, ()) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare priorities)

let pqueue_clear () =
  let q = Pqueue.create () in
  Pqueue.add q ~priority:1.0 1;
  Pqueue.clear q;
  check_bool "cleared" true (Pqueue.is_empty q);
  Pqueue.add q ~priority:5.0 2;
  Alcotest.(check (option (pair (float 0.0) int))) "usable after clear" (Some (5.0, 2))
    (Pqueue.pop q)

let pqueue_fold () =
  let q = Pqueue.create () in
  List.iter (fun i -> Pqueue.add q ~priority:(float_of_int i) i) [ 3; 1; 2 ];
  let total = Pqueue.fold q ~init:0 ~f:(fun acc _ v -> acc + v) in
  check_int "fold sums all" 6 total

(* --- Pqueue.Keyed --------------------------------------------------- *)

let keyed_basic () =
  let q = Pqueue.Keyed.create ~capacity:8 in
  check_bool "empty" true (Pqueue.Keyed.is_empty q);
  check_bool "insert 3" true (Pqueue.Keyed.insert_or_decrease q 3 ~priority:30);
  check_bool "insert 1" true (Pqueue.Keyed.insert_or_decrease q 1 ~priority:10);
  check_bool "insert 5" true (Pqueue.Keyed.insert_or_decrease q 5 ~priority:20);
  check_int "length" 3 (Pqueue.Keyed.length q);
  check_bool "mem 3" true (Pqueue.Keyed.mem q 3);
  check_bool "not mem 0" false (Pqueue.Keyed.mem q 0);
  Alcotest.(check (option int)) "priority of 3" (Some 30) (Pqueue.Keyed.priority q 3);
  check_bool "worse priority ignored" false (Pqueue.Keyed.insert_or_decrease q 3 ~priority:40);
  Alcotest.(check (option int)) "still 30" (Some 30) (Pqueue.Keyed.priority q 3);
  check_bool "decrease 3" true (Pqueue.Keyed.insert_or_decrease q 3 ~priority:5);
  Alcotest.(check (option (pair int int))) "pop 3 first after decrease" (Some (5, 3))
    (Pqueue.Keyed.pop q);
  check_bool "popped not mem" false (Pqueue.Keyed.mem q 3);
  Alcotest.(check (option (pair int int))) "pop 1" (Some (10, 1)) (Pqueue.Keyed.pop q);
  Alcotest.(check (option (pair int int))) "pop 5" (Some (20, 5)) (Pqueue.Keyed.pop q);
  Alcotest.(check (option (pair int int))) "pop none" None (Pqueue.Keyed.pop q)

let keyed_key_ties () =
  let q = Pqueue.Keyed.create ~capacity:8 in
  List.iter
    (fun k -> ignore (Pqueue.Keyed.insert_or_decrease q k ~priority:7))
    [ 6; 2; 4; 0 ];
  let popped = ref [] in
  let rec drain () =
    match Pqueue.Keyed.pop q with
    | None -> ()
    | Some (_, k) ->
      popped := k :: !popped;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "equal priorities pop by key" [ 0; 2; 4; 6 ] (List.rev !popped)

(* The decrease-key analog of the vacated-slot path: popping moves the
   last heap entry into the root, so the pos bookkeeping must stay
   exact through pop/reinsert cycles that reuse freed keys. *)
let keyed_vacated_reuse () =
  let q = Pqueue.Keyed.create ~capacity:4 in
  for k = 0 to 3 do
    ignore (Pqueue.Keyed.insert_or_decrease q k ~priority:(10 + k))
  done;
  Alcotest.(check (option (pair int int))) "pop 0" (Some (10, 0)) (Pqueue.Keyed.pop q);
  (* key 0 reinserted after its slot was vacated and backfilled *)
  check_bool "reinsert popped key" true (Pqueue.Keyed.insert_or_decrease q 0 ~priority:25);
  check_bool "decrease reinserted" true (Pqueue.Keyed.insert_or_decrease q 0 ~priority:9);
  Alcotest.(check (option (pair int int))) "reinserted pops first" (Some (9, 0))
    (Pqueue.Keyed.pop q);
  Pqueue.Keyed.clear q;
  check_bool "cleared" true (Pqueue.Keyed.is_empty q);
  check_bool "cleared keys absent" false (Pqueue.Keyed.mem q 2);
  check_bool "usable after clear" true (Pqueue.Keyed.insert_or_decrease q 2 ~priority:1);
  Alcotest.(check (option (pair int int))) "pop after clear" (Some (1, 2)) (Pqueue.Keyed.pop q)

(* Model check: a sequence of insert_or_decrease operations against a
   reference map, then drain — pops must come out exactly in
   (priority, key) order of the final model state. *)
let keyed_vs_model =
  QCheck.Test.make ~name:"keyed heap drains in (priority, key) order of the model"
    ~count:300
    QCheck.(list (pair (int_range 0 31) (int_range 0 50)))
    (fun ops ->
      let q = Pqueue.Keyed.create ~capacity:32 in
      let model = Hashtbl.create 32 in
      List.iter
        (fun (k, p) ->
          let changed = Pqueue.Keyed.insert_or_decrease q k ~priority:p in
          (match Hashtbl.find_opt model k with
          | None ->
            if not changed then raise Exit;
            Hashtbl.replace model k p
          | Some old ->
            if changed <> (p < old) then raise Exit;
            if p < old then Hashtbl.replace model k p))
        ops;
      let expect =
        Hashtbl.fold (fun k p acc -> (p, k) :: acc) model [] |> List.sort compare
      in
      let rec drain acc =
        match Pqueue.Keyed.pop q with None -> List.rev acc | Some pk -> drain (pk :: acc)
      in
      drain [] = expect)

(* --- Bitset -------------------------------------------------------- *)

let bitset_basic () =
  let b = Bitset.create 100 in
  check_bool "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 99;
  check_bool "mem 0" true (Bitset.mem b 0);
  check_bool "mem 63" true (Bitset.mem b 63);
  check_bool "mem 99" true (Bitset.mem b 99);
  check_bool "not mem 50" false (Bitset.mem b 50);
  check_int "cardinal" 3 (Bitset.cardinal b);
  Bitset.remove b 63;
  check_bool "removed" false (Bitset.mem b 63);
  check_int "cardinal after remove" 2 (Bitset.cardinal b);
  Alcotest.(check (list int)) "elements" [ 0; 99 ] (Bitset.elements b)

let bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add b 8)

let bitset_vs_reference =
  let open QCheck in
  Test.make ~name:"bitset agrees with list-set reference" ~count:300
    (pair (list (int_range 0 63)) (list (int_range 0 63)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 64 xs and b = Bitset.of_list 64 ys in
      let sa = List.sort_uniq compare xs and sb = List.sort_uniq compare ys in
      let u = Bitset.copy a in
      Bitset.union_into u b;
      let i = Bitset.copy a in
      Bitset.inter_into i b;
      Bitset.elements u = List.sort_uniq compare (sa @ sb)
      && Bitset.elements i = List.filter (fun x -> List.mem x sb) sa
      && Bitset.disjoint a b = (Bitset.elements i = [])
      && Bitset.subset i a)

let bitset_equal_copy =
  QCheck.Test.make ~name:"copy is equal; mutation breaks equality" ~count:200
    QCheck.(list (int_range 0 31))
    (fun xs ->
      let a = Bitset.of_list 32 xs in
      let b = Bitset.copy a in
      let eq_before = Bitset.equal a b in
      Bitset.add b 0;
      Bitset.remove b 0;
      let eq_mid = Bitset.equal a b || List.mem 0 xs in
      eq_before && eq_mid)

let bitset_clear () =
  let b = Bitset.of_list 16 [ 1; 2; 3 ] in
  Bitset.clear b;
  check_bool "cleared" true (Bitset.is_empty b)

(* --- Stats --------------------------------------------------------- *)

let stats_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Stats.mean [])

let stats_stddev () =
  check_float "stddev of constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "sample stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25 interpolates" 2.0 (Stats.percentile xs 25.0)

let stats_summary () =
  let s = Stats.summary [ 4.0; 1.0; 3.0; 2.0 ] in
  check_int "count" 4 s.Stats.count;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 4.0 s.Stats.max;
  check_float "median" 2.5 s.Stats.median

let stats_summary_empty () =
  let s = Stats.summary [] in
  check_int "count" 0 s.Stats.count;
  check_float "mean" 0.0 s.Stats.mean

let stats_percentile_sorted =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let p q = Stats.percentile xs q in
      p 10.0 <= p 50.0 && p 50.0 <= p 90.0)

let stats_histogram () =
  let h = Stats.histogram ~bucket_width:1.0 [ 0.5; 1.5; 1.7; 3.2 ] in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "buckets" [ (0.0, 1); (1.0, 2); (2.0, 0); (3.0, 1) ] h.Stats.buckets

let stats_ratio () =
  check_float "ratio" 2.0 (Stats.ratio 4.0 2.0);
  check_float "ratio by zero" 0.0 (Stats.ratio 4.0 0.0)

(* --- Texttable ----------------------------------------------------- *)

let texttable_render () =
  let t = Texttable.create ~columns:[ ("name", Texttable.Left); ("n", Texttable.Right) ] in
  Texttable.add_row t [ "alpha"; "1" ];
  Texttable.add_row t [ "b"; "22" ];
  let out = Texttable.render t in
  check_bool "contains header" true (String.length out > 0);
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
    check_int "rule same width" (String.length header) (String.length rule)
  | _ -> Alcotest.fail "expected at least two lines");
  check_bool "right aligned digits line up" true
    (List.exists (fun l -> String.length l > 0 && l.[String.length l - 1] = '1') lines)

let texttable_bad_row () =
  let t = Texttable.create ~columns:[ ("a", Texttable.Left) ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Texttable.add_row: wrong number of cells") (fun () ->
      Texttable.add_row t [ "x"; "y" ])

let texttable_cells () =
  Alcotest.(check string) "int" "42" (Texttable.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Texttable.cell_float 3.1415);
  Alcotest.(check string) "pct" "50.0%" (Texttable.cell_pct 0.5)

(* --- Sexp ----------------------------------------------------------- *)

module Sexp = Pr_util.Sexp

let sexp_print_parse () =
  let cases =
    [
      Sexp.Atom "hello";
      Sexp.List [];
      Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b c"; Sexp.List [ Sexp.int 42 ] ];
      Sexp.Atom "with \"quotes\" and \\slashes";
      Sexp.Atom "";
    ]
  in
  List.iter
    (fun case ->
      match Sexp.of_string (Sexp.to_string case) with
      | Ok parsed -> check_bool "roundtrip" true (parsed = case)
      | Error e -> Alcotest.failf "parse error on %s: %s" (Sexp.to_string case) e)
    cases

let sexp_parse_errors () =
  List.iter
    (fun bad ->
      match Sexp.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" bad)
    [ "("; "(a))"; "\"unterminated"; ""; "a b" ]

let sexp_helpers () =
  let s = Sexp.List [ Sexp.field "x" [ Sexp.int 3 ]; Sexp.field "y" [] ] in
  (match Sexp.assoc "x" s with
  | Ok [ v ] -> Alcotest.(check (result int string)) "to_int" (Ok 3) (Sexp.to_int v)
  | _ -> Alcotest.fail "assoc x");
  check_bool "assoc_opt present" true (Sexp.assoc_opt "y" s = Some []);
  check_bool "assoc_opt absent" true (Sexp.assoc_opt "z" s = None);
  check_bool "assoc absent errors" true (Result.is_error (Sexp.assoc "z" s));
  check_bool "to_int of list errors" true (Result.is_error (Sexp.to_int s))

let sexp_roundtrip_prop =
  let rec gen_sexp depth =
    let open QCheck.Gen in
    if depth = 0 then map (fun s -> Sexp.Atom s) (string_size (int_range 0 8))
    else
      frequency
        [
          (2, map (fun s -> Sexp.Atom s) (string_size (int_range 0 8)));
          ( 1,
            map (fun l -> Sexp.List l) (list_size (int_range 0 4) (gen_sexp (depth - 1)))
          );
        ]
  in
  QCheck.Test.make ~name:"sexp print/parse roundtrip" ~count:300
    (QCheck.make (gen_sexp 3))
    (fun s ->
      match Sexp.of_string (Sexp.to_string s) with
      | Ok parsed -> parsed = s
      | Error _ -> false)

let sexp_pretty_parses =
  QCheck.Test.make ~name:"pretty output parses to the same value" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 20) (pair small_string small_int))
    (fun pairs ->
      let s =
        Sexp.List
          (List.map (fun (k, v) -> Sexp.List [ Sexp.Atom k; Sexp.int v ]) pairs)
      in
      match Sexp.of_string (Sexp.to_string_pretty s) with
      | Ok parsed -> parsed = s
      | Error _ -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick rng_split_independent;
          Alcotest.test_case "copy" `Quick rng_copy;
          Alcotest.test_case "invalid args" `Quick rng_invalid;
          Alcotest.test_case "chance extremes" `Quick rng_chance_extremes;
        ]
        @ qsuite
            [
              rng_int_bounds;
              rng_int_in_range_bounds;
              rng_float_bounds;
              rng_shuffle_permutation;
              rng_sample_distinct;
            ] );
      ( "pqueue",
        [
          Alcotest.test_case "basic order" `Quick pqueue_basic;
          Alcotest.test_case "FIFO ties" `Quick pqueue_fifo_ties;
          Alcotest.test_case "clear" `Quick pqueue_clear;
          Alcotest.test_case "fold" `Quick pqueue_fold;
        ]
        @ qsuite [ pqueue_sorted_output ] );
      ( "pqueue-keyed",
        [
          Alcotest.test_case "basic + decrease-key" `Quick keyed_basic;
          Alcotest.test_case "key ties" `Quick keyed_key_ties;
          Alcotest.test_case "vacated slot reuse + clear" `Quick keyed_vacated_reuse;
        ]
        @ qsuite [ keyed_vs_model ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick bitset_basic;
          Alcotest.test_case "bounds" `Quick bitset_bounds;
          Alcotest.test_case "clear" `Quick bitset_clear;
        ]
        @ qsuite [ bitset_vs_reference; bitset_equal_copy ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick stats_mean;
          Alcotest.test_case "stddev" `Quick stats_stddev;
          Alcotest.test_case "percentile" `Quick stats_percentile;
          Alcotest.test_case "summary" `Quick stats_summary;
          Alcotest.test_case "summary empty" `Quick stats_summary_empty;
          Alcotest.test_case "histogram" `Quick stats_histogram;
          Alcotest.test_case "ratio" `Quick stats_ratio;
        ]
        @ qsuite [ stats_percentile_sorted ] );
      ( "sexp",
        [
          Alcotest.test_case "print/parse" `Quick sexp_print_parse;
          Alcotest.test_case "parse errors" `Quick sexp_parse_errors;
          Alcotest.test_case "helpers" `Quick sexp_helpers;
        ]
        @ qsuite [ sexp_roundtrip_prop; sexp_pretty_parses ] );
      ( "texttable",
        [
          Alcotest.test_case "render" `Quick texttable_render;
          Alcotest.test_case "bad row" `Quick texttable_bad_row;
          Alcotest.test_case "cell formatting" `Quick texttable_cells;
        ] );
    ]

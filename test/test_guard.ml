(* Tests for the update guard (lib/guard): the damping-penalty decay
   algebra, quarantine/readmission liveness under arbitrary finite
   attack interleavings (the qcheck properties the guard's comments
   promise), and the screening state machine. *)

module Rng = Pr_util.Rng
module Engine = Pr_sim.Engine
module Guard = Pr_guard.Guard

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* --- Decay algebra (qcheck) ------------------------------------------ *)

let decay_monotone =
  QCheck.Test.make ~name:"damping penalty decays monotonically in dt" ~count:300
    QCheck.(
      triple (float_bound_inclusive 50.0) (float_bound_inclusive 20.0)
        (pair (float_bound_inclusive 30.0) (float_bound_inclusive 30.0)))
    (fun (p, hl, (dt_a, dt_b)) ->
      let half_life = 0.1 +. hl in
      let dt1 = Float.min dt_a dt_b and dt2 = Float.max dt_a dt_b in
      let d1 = Guard.decay ~half_life p ~dt:dt1 in
      let d2 = Guard.decay ~half_life p ~dt:dt2 in
      d2 <= d1 +. 1e-12 && d1 <= p +. 1e-12 && d2 >= 0.0)

let decay_composes =
  QCheck.Test.make
    ~name:"decaying in two steps equals decaying over the sum" ~count:300
    QCheck.(
      triple (float_bound_inclusive 50.0) (float_bound_inclusive 20.0)
        (pair (float_bound_inclusive 30.0) (float_bound_inclusive 30.0)))
    (fun (p, hl, (dt_a, dt_b)) ->
      let half_life = 0.1 +. hl in
      let dt1 = 0.01 +. dt_a and dt2 = 0.01 +. dt_b in
      let two_step =
        Guard.decay ~half_life (Guard.decay ~half_life p ~dt:dt1) ~dt:dt2
      in
      let one_step = Guard.decay ~half_life p ~dt:(dt1 +. dt2) in
      Float.abs (two_step -. one_step)
      <= 1e-6 *. Float.max 1.0 (Float.abs one_step))

let decay_halves_at_half_life () =
  Alcotest.(check (float 1e-9))
    "one half-life halves the penalty" 2.0
    (Guard.decay ~half_life:5.0 4.0 ~dt:5.0)

(* --- Liveness: every finite attack ends in readmission (qcheck) ------ *)

(* Arbitrary seed-derived interleavings of link flaps and invalid
   updates over random directed pairs: once the attack stops, the
   engine must drain (no perpetual rescheduling) with every quarantine
   lifted and the on_readmit hook fired exactly once per quarantine. *)
let attack_always_readmitted =
  QCheck.Test.make ~name:"every quarantined neighbor is eventually readmitted"
    ~count:60 QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 1) in
      let engine = Engine.create () in
      let n = 6 in
      let readmits = ref 0 in
      let guard =
        Guard.create ~engine ~n
          ~on_readmit:(fun ~at:_ ~nbr:_ -> incr readmits)
          ()
      in
      let t = ref 0.0 in
      for _ = 1 to 30 do
        t := !t +. Rng.float rng 1.5;
        let at = Rng.int rng n in
        let nbr = (at + 1 + Rng.int rng (n - 1)) mod n in
        let time = !t in
        if Rng.bool rng then
          Engine.schedule_at engine ~time (fun () ->
              Guard.observe_link guard ~at ~nbr ~up:false)
        else
          Engine.schedule_at engine ~time (fun () ->
              ignore (Guard.screen guard ~at ~from:nbr (Error "forged update")))
      done;
      (* Non-vacuity: at least one certain quarantine per case
         (strikes = 1 under the default config). *)
      Engine.schedule_at engine ~time:(!t +. 1.0) (fun () ->
          ignore (Guard.screen guard ~at:0 ~from:1 (Error "forged update")));
      (match Engine.run engine with
      | Engine.Drained -> ()
      | Engine.Reached_limit -> QCheck.Test.fail_report "engine did not drain");
      if Guard.quarantines_total guard = 0 then
        QCheck.Test.fail_report "attack produced no quarantine (vacuous case)";
      Guard.active_quarantines guard = 0
      && Guard.readmissions guard = Guard.quarantines_total guard
      && !readmits = Guard.readmissions guard)

(* --- Screening state machine ----------------------------------------- *)

let one_strike_quarantines () =
  let engine = Engine.create () in
  let guard = Guard.create ~engine ~n:4 ~on_readmit:(fun ~at:_ ~nbr:_ -> ()) () in
  check_bool "valid update believed" true (Guard.screen guard ~at:0 ~from:1 (Ok ()));
  check_bool "invalid update rejected" false
    (Guard.screen guard ~at:0 ~from:1 (Error "bad metric"));
  check_bool "sender quarantined on the first strike" true
    (Guard.quarantined guard ~at:0 ~nbr:1);
  check_bool "valid updates dropped while quarantined" false
    (Guard.screen guard ~at:0 ~from:1 (Ok ()));
  check_int "one rejection" 1 (Guard.updates_rejected guard);
  check_int "one drop" 1 (Guard.quarantine_drops guard);
  check_int "one quarantine" 1 (Guard.quarantines_total guard);
  check_bool "other direction unaffected" true
    (Guard.screen guard ~at:1 ~from:0 (Ok ()))

let strikes_accumulate () =
  let engine = Engine.create () in
  let config = { Guard.default_config with Guard.strikes = 3 } in
  let guard =
    Guard.create ~config ~engine ~n:4 ~on_readmit:(fun ~at:_ ~nbr:_ -> ()) ()
  in
  ignore (Guard.screen guard ~at:0 ~from:1 (Error "one"));
  ignore (Guard.screen guard ~at:0 ~from:1 (Error "two"));
  check_bool "two strikes below the threshold" false
    (Guard.quarantined guard ~at:0 ~nbr:1);
  ignore (Guard.screen guard ~at:0 ~from:1 (Error "three"));
  check_bool "third strike quarantines" true (Guard.quarantined guard ~at:0 ~nbr:1)

let disabled_guard_is_transparent () =
  let engine = Engine.create () in
  let guard =
    Guard.create ~config:Guard.disabled ~engine ~n:4
      ~on_readmit:(fun ~at:_ ~nbr:_ -> ())
      ()
  in
  check_bool "invalid update passes when disabled" true
    (Guard.screen guard ~at:0 ~from:1 (Error "bad"));
  Guard.observe_link guard ~at:0 ~nbr:1 ~up:false;
  check_int "nothing counted" 0 (Guard.updates_rejected guard);
  check_int "no quarantines" 0 (Guard.quarantines_total guard)

let flap_damping_suppresses () =
  let engine = Engine.create () in
  let guard = Guard.create ~engine ~n:4 ~on_readmit:(fun ~at:_ ~nbr:_ -> ()) () in
  Guard.observe_link guard ~at:2 ~nbr:3 ~up:false;
  check_bool "one flap is tolerated" false (Guard.quarantined guard ~at:2 ~nbr:3);
  for _ = 1 to 4 do
    Guard.observe_link guard ~at:2 ~nbr:3 ~up:false
  done;
  check_bool "rapid chatter crosses the suppress threshold" true
    (Guard.quarantined guard ~at:2 ~nbr:3);
  check_bool "penalty is observable" true (Guard.penalty guard ~at:2 ~nbr:3 >= 5.0)

let config_strings () =
  Alcotest.(check string)
    "disabled renders as off" "off"
    (Guard.config_to_string Guard.disabled);
  let s = Guard.config_to_string Guard.default_config in
  check_bool "enabled config renders its knobs" true
    (String.length s > 3 && String.sub s 0 3 = "on(")

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "guard"
    [
      ( "decay",
        qsuite [ decay_monotone; decay_composes ]
        @ [ Alcotest.test_case "half-life halves" `Quick decay_halves_at_half_life ] );
      ("liveness", qsuite [ attack_always_readmitted ]);
      ( "screen",
        [
          Alcotest.test_case "one strike quarantines" `Quick one_strike_quarantines;
          Alcotest.test_case "strikes accumulate" `Quick strikes_accumulate;
          Alcotest.test_case "disabled guard is transparent" `Quick
            disabled_guard_is_transparent;
          Alcotest.test_case "flap damping suppresses chatter" `Quick
            flap_damping_suppresses;
          Alcotest.test_case "config strings" `Quick config_strings;
        ] );
    ]

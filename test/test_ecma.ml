(* Tests for the ECMA design point: the up/down rule, loop and
   count-to-infinity suppression, per-QOS FIBs, and the limits of
   policy-in-topology. *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Ad = Pr_topology.Ad
module Link = Pr_topology.Link
module Generator = Pr_topology.Generator
module Figure1 = Pr_topology.Figure1
module Flow = Pr_policy.Flow
module Qos = Pr_policy.Qos
module Config = Pr_policy.Config
module Gen = Pr_policy.Gen
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner
module Ecma = Pr_ecma.Ecma
module R = Runner.Make (Ecma)

let _check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let setup ?(config = fun g -> Config.defaults g) g =
  let r = R.setup g (config g) in
  let c = R.converge r in
  check_bool "converged" true c.Runner.converged;
  r

let ecma_delivers_figure1 () =
  let g = Figure1.graph () in
  let r = setup g in
  let missing = ref [] in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            let flow = Flow.make ~src ~dst () in
            if not (Forwarding.delivered (R.send_flow r flow)) then
              missing := (src, dst) :: !missing
          end)
        (Graph.host_ids g))
    (Graph.host_ids g);
  Alcotest.(check (list (pair int int))) "all host pairs delivered" [] !missing

let ecma_paths_are_valley_free () =
  let g = Figure1.graph () in
  let r = setup g in
  let proto = R.protocol r in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            match R.send_flow r (Flow.make ~src ~dst ()) with
            | Forwarding.Delivered { path; _ } ->
              (* No up-step after a down-step, under ECMA's own strict
                 ordering. *)
              let rec scan gone_down = function
                | [] | [ _ ] -> true
                | a :: (b :: _ as rest) ->
                  if Ecma.is_down_step proto ~from_ad:a ~to_ad:b then scan true rest
                  else if gone_down then false
                  else scan false rest
              in
              check_bool (Printf.sprintf "valley-free %d->%d" src dst) true (scan false path)
            | _ -> ()
          end)
        (Graph.host_ids g))
    (Graph.host_ids g)

let ecma_never_transits_stubs () =
  (* The ordering automatically protects stubs: a path through a campus
     would descend into it and climb out — forbidden. *)
  let g = Figure1.graph () in
  let r = setup g in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then
            match R.send_flow r (Flow.make ~src ~dst ()) with
            | Forwarding.Delivered { path; _ } ->
              List.iter
                (fun ad ->
                  check_bool
                    (Printf.sprintf "no stub transit on %s"
                       (Pr_topology.Path.to_string path))
                    true
                    (Ad.is_transit_capable (Graph.ad g ad)))
                (Pr_topology.Path.transit_ads path)
            | _ -> ())
        (Graph.host_ids g))
    (Graph.host_ids g)

(* The count-to-infinity topology from the DV tests: ECMA's ordering
   must suppress the bounce. *)
let count_to_infinity_graph () =
  let ads =
    Array.init 4 (fun id ->
        Ad.make ~id ~name:(Printf.sprintf "N%d" id)
          ~klass:(if id = 3 then Ad.Stub else Ad.Hybrid)
          ~level:(if id = 3 then Ad.Campus else Ad.Metro))
  in
  let links =
    [|
      Link.make ~id:0 ~a:0 ~b:1 Link.Lateral;
      Link.make ~id:1 ~a:1 ~b:2 Link.Lateral;
      Link.make ~id:2 ~a:0 ~b:2 Link.Lateral;
      Link.make ~id:3 ~a:2 ~b:3 Link.Hierarchical;
    |]
  in
  Graph.create ads links

let ecma_suppresses_count_to_infinity () =
  let g = count_to_infinity_graph () in
  let run_ecma () =
    let r = R.setup g (Config.defaults g) in
    ignore (R.converge r);
    R.fail_link r 3;
    let c = R.converge ~max_events:500_000 r in
    (c.Runner.converged, c.Runner.messages)
  in
  let run_dv () =
    let module Rdv = Runner.Make (Pr_dv.Dv.Plain) in
    let r = Rdv.setup g (Config.defaults g) in
    ignore (Rdv.converge r);
    Rdv.fail_link r 3;
    let c = Rdv.converge ~max_events:500_000 r in
    (c.Runner.converged, c.Runner.messages)
  in
  let ecma_ok, ecma_msgs = run_ecma () in
  let dv_ok, dv_msgs = run_dv () in
  check_bool "ecma reconverges" true ecma_ok;
  check_bool "dv terminates" true dv_ok;
  check_bool
    (Printf.sprintf "ordering suppresses the bounce (%d ecma vs %d dv msgs)" ecma_msgs
       dv_msgs)
    true
    (ecma_msgs * 4 < dv_msgs)

let ecma_qos_tables () =
  (* An AD whose policy admits only Low_delay should carry no transit
     at other QOS classes. *)
  let g = Figure1.graph () in
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        if a.Ad.id = 0 then
          Pr_policy.Transit_policy.make 0
            [ Pr_policy.Policy_term.make ~owner:0 ~qos:[ Qos.Low_delay ] () ]
        else if Ad.is_transit_capable a then Pr_policy.Transit_policy.open_transit a.Ad.id
        else Pr_policy.Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  let config = Config.make ~transit () in
  let r = setup ~config:(fun _ -> config) g in
  (* 7 -> 8 must cross BB1 (0): only Low_delay flows can. *)
  let deliver q = Forwarding.delivered (R.send_flow r (Flow.make ~src:7 ~dst:8 ~qos:q ())) in
  check_bool "low delay delivered" true (deliver Qos.Low_delay);
  check_bool "default refused" false (deliver Qos.Default);
  check_bool "supports_qos projection" true (Ecma.supports_qos config 0 Qos.Low_delay);
  check_bool "supports_qos projection negative" false (Ecma.supports_qos config 0 Qos.Default)

let ecma_cannot_express_source_policy () =
  (* A transit AD refusing a specific source cannot be encoded in the
     ordering: ECMA delivers the flow anyway — a policy violation. *)
  let g = Figure1.graph () in
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        if a.Ad.id = 0 then
          Pr_policy.Transit_policy.make 0
            [
              Pr_policy.Policy_term.make ~owner:0
                ~sources:(Pr_policy.Policy_term.Except [| 7 |]) ();
            ]
        else if Ad.is_transit_capable a then Pr_policy.Transit_policy.open_transit a.Ad.id
        else Pr_policy.Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  let config = Config.make ~transit () in
  let r = setup ~config:(fun _ -> config) g in
  let flow = Flow.make ~src:7 ~dst:8 () in
  match R.send_flow r flow with
  | Forwarding.Delivered { path; _ } ->
    (* Delivered through 0 although 0's policy forbids source 7. *)
    check_bool "path crosses the refusing AD" true (List.mem 0 path);
    check_bool "oracle flags the violation" false
      (Pr_policy.Validate.transit_legal g config flow path)
  | o -> Alcotest.failf "expected (violating) delivery, got %a" Forwarding.pp_outcome o

let ecma_table_blowup () =
  let g = Figure1.graph () in
  let r = setup g in
  let module Rdv = Runner.Make (Pr_dv.Dv.Plain) in
  let rdv = Rdv.setup g (Config.defaults g) in
  ignore (Rdv.converge rdv);
  check_bool "per-QOS tables dominate plain DV" true
    (R.table_entries r > 2 * Rdv.table_entries rdv)

let ecma_reconverges =
  QCheck.Test.make ~name:"ecma reconverges after a random failure" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let g = Generator.generate rng Generator.default in
      let r = R.setup g (Config.defaults g) in
      ignore (R.converge r);
      let lid = Rng.int rng (Graph.num_links g) in
      R.fail_link r lid;
      let c = R.converge ~max_events:2_000_000 r in
      c.Runner.converged)

(* --- Logical cluster replication (5.1.1 footnote) ------------------- *)

(* Diamond with a stub: transit X (cheap) and Y (expensive) between
   hosts A and B; C is X's customer.

        X (regional)          X's intent: carry C's traffic only —
       /|\                    no A<->B transit. Inexpressible in a
      A C B                   single ordering; expressible by
       \ /                    replicating X into X{A,C} and X{B,C}.
        Y (regional, costly)                                         *)
let diamond () =
  let ads =
    [|
      Ad.make ~id:0 ~name:"A" ~klass:Ad.Hybrid ~level:Ad.Metro;
      Ad.make ~id:1 ~name:"B" ~klass:Ad.Hybrid ~level:Ad.Metro;
      Ad.make ~id:2 ~name:"X" ~klass:Ad.Transit ~level:Ad.Regional;
      Ad.make ~id:3 ~name:"Y" ~klass:Ad.Transit ~level:Ad.Regional;
      Ad.make ~id:4 ~name:"C" ~klass:Ad.Stub ~level:Ad.Campus;
    |]
  in
  let links =
    [|
      Link.make ~id:0 ~a:2 ~b:0 ~cost:1 Link.Hierarchical;
      Link.make ~id:1 ~a:2 ~b:1 ~cost:1 Link.Hierarchical;
      Link.make ~id:2 ~a:3 ~b:0 ~cost:3 Link.Hierarchical;
      Link.make ~id:3 ~a:3 ~b:1 ~cost:3 Link.Hierarchical;
      Link.make ~id:4 ~a:2 ~b:4 ~cost:1 Link.Hierarchical;
    |]
  in
  Graph.create ads links

(* X's intent as explicit policy terms, used as the oracle's yardstick. *)
let intent_config g =
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        if a.Ad.id = 2 then
          Pr_policy.Transit_policy.make 2
            [
              Pr_policy.Policy_term.make ~owner:2
                ~sources:(Pr_policy.Policy_term.Only [| 4 |]) ();
              Pr_policy.Policy_term.make ~owner:2
                ~destinations:(Pr_policy.Policy_term.Only [| 4 |]) ();
            ]
        else if Ad.is_transit_capable a then Pr_policy.Transit_policy.open_transit a.Ad.id
        else Pr_policy.Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  Config.make ~transit ()

let replication_structure () =
  let g = diamond () in
  let mapping =
    Pr_ecma.Replication.expand g [ { Pr_ecma.Replication.ad = 2; groups = [ [ 0; 4 ]; [ 1; 4 ] ] } ]
  in
  let e = mapping.Pr_ecma.Replication.expanded in
  Alcotest.(check int) "one extra logical node" 6 (Graph.n e);
  Alcotest.(check string) "derived name" "X/1" (Graph.ad e 5).Ad.name;
  Alcotest.(check int) "links rebuilt" 6 (Graph.num_links e);
  Alcotest.(check (list int)) "logical ids of X" [ 2; 5 ] (mapping.Pr_ecma.Replication.logical_of 2);
  Alcotest.(check int) "physical of clone" 2 (mapping.Pr_ecma.Replication.physical_of 5);
  (* X1 faces A and C; X2 faces B and C; the clusters are unconnected. *)
  Alcotest.(check (list int)) "X1 neighbors" [ 0; 4 ] (Graph.neighbor_ids e 2);
  Alcotest.(check (list int)) "X2 neighbors" [ 1; 4 ] (Graph.neighbor_ids e 5);
  Alcotest.(check (list int)) "collapse path" [ 0; 2; 4 ]
    (Pr_ecma.Replication.collapse_path mapping [ 0; 2; 4 ])

let replication_validation () =
  let g = diamond () in
  Alcotest.check_raises "empty group" (Invalid_argument "Replication.expand: empty group")
    (fun () ->
      ignore (Pr_ecma.Replication.expand g [ { Pr_ecma.Replication.ad = 2; groups = [ [] ] } ]));
  Alcotest.check_raises "uncovered neighbor"
    (Invalid_argument "Replication.expand: neighbor covered by no group") (fun () ->
      ignore
        (Pr_ecma.Replication.expand g [ { Pr_ecma.Replication.ad = 2; groups = [ [ 0 ] ] } ]));
  Alcotest.check_raises "non-neighbor"
    (Invalid_argument "Replication.expand: group member is not a neighbor") (fun () ->
      ignore
        (Pr_ecma.Replication.expand g
           [ { Pr_ecma.Replication.ad = 2; groups = [ [ 0; 1; 3; 4 ] ] } ]))

let replication_expresses_prev_next_policy () =
  let g = diamond () in
  let intent = intent_config g in
  (* Unexpanded: ECMA routes A->B through X — it cannot express the
     intent, and the oracle flags the violation. *)
  let r = setup ~config:(fun g -> Config.defaults g) g in
  (match R.send_flow r (Flow.make ~src:0 ~dst:1 ()) with
  | Forwarding.Delivered { path; _ } ->
    check_bool "goes through X" true (List.mem 2 path);
    check_bool "violates the intent" false
      (Pr_policy.Validate.transit_legal g intent (Flow.make ~src:0 ~dst:1 ()) path)
  | o -> Alcotest.failf "expected delivery, got %a" Forwarding.pp_outcome o);
  (* Expanded: the intent holds structurally — A->B shifts to Y, and
     C keeps both its providers' clusters. *)
  let mapping =
    Pr_ecma.Replication.expand g [ { Pr_ecma.Replication.ad = 2; groups = [ [ 0; 4 ]; [ 1; 4 ] ] } ]
  in
  let e = mapping.Pr_ecma.Replication.expanded in
  let re = setup ~config:(fun g -> Config.defaults g) e in
  (match R.send_flow re (Flow.make ~src:0 ~dst:1 ()) with
  | Forwarding.Delivered { path; _ } ->
    let collapsed = Pr_ecma.Replication.collapse_path mapping path in
    check_bool "avoids X entirely" true (not (List.mem 2 collapsed));
    check_bool "legal under the intent" true
      (Pr_policy.Validate.transit_legal g intent (Flow.make ~src:0 ~dst:1 ()) collapsed)
  | o -> Alcotest.failf "expected delivery via Y, got %a" Forwarding.pp_outcome o);
  List.iter
    (fun (src, dst) ->
      check_bool
        (Printf.sprintf "customer traffic %d->%d still flows" src dst)
        true
        (Forwarding.delivered (R.send_flow re (Flow.make ~src ~dst ()))))
    [ (0, 4); (4, 0); (1, 4); (4, 1) ]

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_ecma"
    [
      ( "ecma",
        [
          Alcotest.test_case "delivers figure1 host pairs" `Quick ecma_delivers_figure1;
          Alcotest.test_case "valley-free forwarding" `Quick ecma_paths_are_valley_free;
          Alcotest.test_case "stubs protected by ordering" `Quick ecma_never_transits_stubs;
          Alcotest.test_case "suppresses count-to-infinity" `Quick
            ecma_suppresses_count_to_infinity;
          Alcotest.test_case "per-QOS tables" `Quick ecma_qos_tables;
          Alcotest.test_case "source policy inexpressible" `Quick
            ecma_cannot_express_source_policy;
          Alcotest.test_case "table blow-up vs DV" `Quick ecma_table_blowup;
          Alcotest.test_case "replication: structure" `Quick replication_structure;
          Alcotest.test_case "replication: validation" `Quick replication_validation;
          Alcotest.test_case "replication: expresses prev/next policy" `Quick
            replication_expresses_prev_next_policy;
        ]
        @ qsuite [ ecma_reconverges ] );
    ]

(* Tests for the pr_obs observability layer: the Trace recorder's
   disabled-is-a-no-op and bounded-buffer contracts, Chrome trace-event
   export invariants (parses back, monotonic timestamps, balanced
   spans), the zero-interference guarantee (byte-identical Metrics with
   tracing on vs off), Timeline sampling, Load_profile percentiles, and
   the sweep --trace integration. *)

module J = Pr_util.Json
module Trace = Pr_obs.Trace
module Timeline = Pr_obs.Timeline
module Load_profile = Pr_obs.Load_profile
module Metrics = Pr_sim.Metrics
module Scenario = Pr_core.Scenario
module Registry = Pr_core.Registry

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let validate_ok trace =
  let doc =
    match J.parse (J.to_string (Trace.to_json trace)) with
    | Ok doc -> doc
    | Error e -> Alcotest.fail ("export does not parse back: " ^ e)
  in
  match Trace.validate_json doc with
  | Ok () -> doc
  | Error e -> Alcotest.fail e

(* --- recorder ------------------------------------------------------- *)

(* Arbitrary record operations, for driving a recorder generically. *)
let apply_op t i = function
  | 0 -> Trace.span_begin t ~ts:(float_of_int i) ~tid:(i mod 3) "s"
  | 1 -> Trace.span_end t ~ts:(float_of_int i) ~tid:(i mod 3) "s"
  | 2 -> Trace.instant t ~ts:(float_of_int i) ~tid:0 "i"
  | 3 -> Trace.counter t ~ts:(float_of_int i) ~tid:0 ~value:(float_of_int i) "c"
  | _ -> Trace.complete t ~ts:(float_of_int i) ~dur:1.0 ~tid:0 "x"

let disabled_records_nothing =
  QCheck.Test.make ~name:"disabled recorder stores and drops nothing" ~count:50
    QCheck.(list (int_bound 4))
    (fun ops ->
      List.iteri (fun i op -> apply_op Trace.disabled i op) ops;
      Trace.length Trace.disabled = 0
      && Trace.dropped Trace.disabled = 0
      && not (Trace.enabled Trace.disabled))

let export_always_valid =
  (* Whatever op sequence is recorded — including unmatched begins and
     stray ends — the export must parse, stay monotone and balance. *)
  QCheck.Test.make ~name:"export of any op sequence validates" ~count:50
    QCheck.(list (int_bound 4))
    (fun ops ->
      let t = Trace.create ~capacity:256 () in
      List.iteri (fun i op -> apply_op t i op) ops;
      match Trace.validate_json (Trace.to_json t) with
      | Ok () -> true
      | Error _ -> false)

let recorder_basics () =
  let t = Trace.create ~capacity:16 () in
  check_bool "enabled" true (Trace.enabled t);
  Trace.span_begin t ~ts:0.0 ~tid:1 "work";
  Trace.instant t ~ts:1.0 ~tid:1 "tick";
  Trace.counter t ~ts:2.0 ~tid:1 ~value:7.0 "depth";
  Trace.complete t ~ts:3.0 ~dur:2.0 ~tid:2 "compute";
  Trace.span_end t ~ts:4.0 ~tid:1 "work";
  check_int "five events" 5 (Trace.length t);
  let doc = validate_ok t in
  (match J.member "traceEvents" doc with
  | Some (J.List evs) -> check_int "five exported" 5 (List.length evs)
  | _ -> Alcotest.fail "missing traceEvents");
  Trace.clear t;
  check_int "clear empties" 0 (Trace.length t)

let full_buffer_drops_newest () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.instant t ~ts:(float_of_int i) ~tid:0 "e"
  done;
  check_int "capacity stored" 4 (Trace.length t);
  check_int "rest counted as dropped" 6 (Trace.dropped t);
  let doc = validate_ok t in
  match J.member "otherData" doc with
  | Some meta -> check_int "dropped surfaced in export" 6 (Result.get_ok (J.int_member "dropped_events" meta))
  | None -> Alcotest.fail "missing otherData"

let unclosed_span_autoclosed () =
  let t = Trace.create ~capacity:16 () in
  Trace.span_begin t ~ts:1.0 ~tid:3 "outer";
  Trace.span_begin t ~ts:2.0 ~tid:3 "inner";
  Trace.instant t ~ts:5.0 ~tid:3 "last";
  (* No ends recorded: export must close both at ts=5.0 (validated by
     validate_ok, which rejects unclosed spans). *)
  let doc = validate_ok t in
  match J.member "traceEvents" doc with
  | Some (J.List evs) -> check_int "2 synthetic ends appended" 5 (List.length evs)
  | _ -> Alcotest.fail "missing traceEvents"

let validator_rejects_bad_documents () =
  let reject name doc =
    match Trace.validate_json doc with
    | Ok () -> Alcotest.fail (name ^ " accepted")
    | Error _ -> ()
  in
  let ev fields = J.Obj fields in
  let base ~ph ~ts =
    [
      ("name", J.String "e");
      ("ph", J.String ph);
      ("ts", J.Float ts);
      ("pid", J.Int 1);
      ("tid", J.Int 0);
    ]
  in
  reject "no traceEvents" (J.Obj []);
  reject "unknown phase" (J.Obj [ ("traceEvents", J.List [ ev (base ~ph:"Z" ~ts:0.0) ]) ]);
  reject "time travel"
    (J.Obj [ ("traceEvents", J.List [ ev (base ~ph:"i" ~ts:5.0); ev (base ~ph:"i" ~ts:1.0) ]) ]);
  reject "unbalanced begin"
    (J.Obj [ ("traceEvents", J.List [ ev (base ~ph:"B" ~ts:0.0) ]) ]);
  reject "stray end" (J.Obj [ ("traceEvents", J.List [ ev (base ~ph:"E" ~ts:0.0) ]) ])

(* --- zero interference ---------------------------------------------- *)

(* Run one protocol twice — recorder disabled vs enabled — and require
   byte-identical Metrics JSON: instrumentation must never perturb the
   simulation. *)
let run_with_trace name trace =
  match Registry.find_opt name with
  | None -> Alcotest.fail ("unknown protocol " ^ name)
  | Some (Registry.Packed (module P)) ->
    let scenario = Scenario.figure1 ~seed:7 () in
    let module R = Pr_proto.Runner.Make (P) in
    let r = R.setup ~trace scenario.Scenario.graph scenario.Scenario.config in
    ignore (R.converge r);
    let rng = Pr_util.Rng.create 9 in
    let flows = Scenario.flows scenario ~rng ~count:20 () in
    List.iter (fun f -> ignore (R.send_flow r f)) flows;
    (J.to_string (Metrics.to_json (R.metrics r)), R.trace r)

let tracing_is_inert name () =
  let plain, _ = run_with_trace name Trace.disabled in
  let trace = Trace.create () in
  let traced, tr = run_with_trace name trace in
  Alcotest.(check string) "metrics byte-identical with tracing on" plain traced;
  check_bool "and the traced run recorded something" true (Trace.length tr > 0);
  ignore (validate_ok tr)

(* --- timeline ------------------------------------------------------- *)

let timeline_samples_and_summarizes () =
  let value = ref 0.0 in
  let trace = Trace.create () in
  let tl =
    Timeline.create ~window:2.0 ~series:[ "x" ] ~probe:(fun () -> [| !value |]) trace
  in
  Timeline.observe tl ~now:0.5;
  (* within first window: no sample *)
  value := 3.0;
  Timeline.observe tl ~now:2.5;
  Timeline.observe tl ~now:2.6;
  (* same window: no second sample *)
  value := 5.0;
  Timeline.observe tl ~now:7.0;
  Timeline.finish tl ~now:9.0;
  check_int "initial + 2 window samples + finish" 4 (List.length (Timeline.samples tl));
  (match Timeline.first_nonzero tl "x" with
  | Some ts -> Alcotest.(check (float 1e-9)) "first activity at first crossing" 2.5 ts
  | None -> Alcotest.fail "no first_nonzero");
  Alcotest.(check (float 1e-9)) "last change" 7.0 (Timeline.quiescence tl);
  (match Timeline.final tl "x" with
  | Some v -> Alcotest.(check (float 1e-9)) "final value" 5.0 v
  | None -> Alcotest.fail "no final");
  check_bool "unknown series is None" true (Timeline.first_nonzero tl "zzz" = None);
  (* Counter events recorded on the trace must form a valid document. *)
  ignore (validate_ok trace)

let timeline_drives_from_engine_observer () =
  let engine = Pr_sim.Engine.create () in
  let ticks = ref 0 in
  let tl =
    Timeline.create ~window:1.0 ~series:[ "ticks" ]
      ~probe:(fun () -> [| float_of_int !ticks |])
      Trace.disabled
  in
  Pr_sim.Engine.set_observer engine
    (Some (fun ~time ~pending:_ -> Timeline.observe tl ~now:time));
  let rec tick i =
    if i < 10 then
      Pr_sim.Engine.schedule engine ~delay:1.0 (fun () ->
          incr ticks;
          tick (i + 1))
  in
  tick 0;
  (* An observer samples without scheduling events, so the queue drains
     exactly as it would untraced. *)
  check_bool "drains" true (Pr_sim.Engine.run engine = Pr_sim.Engine.Drained);
  Timeline.finish tl ~now:(Pr_sim.Engine.now engine);
  check_bool "saw activity" true (Timeline.first_nonzero tl "ticks" <> None)

(* --- load profile --------------------------------------------------- *)

let load_profile_percentiles () =
  let values = Array.init 10 (fun i -> float_of_int (i + 1)) in
  match Load_profile.of_series [ ("msgs", values) ] with
  | [ row ] ->
    Alcotest.(check (float 1e-9)) "total" 55.0 row.Load_profile.total;
    Alcotest.(check (float 1e-9)) "mean" 5.5 row.Load_profile.mean;
    Alcotest.(check (float 1e-9)) "max" 10.0 row.Load_profile.max;
    check_int "argmax" 9 row.Load_profile.argmax;
    Alcotest.(check (float 1e-9)) "p50" 5.5 row.Load_profile.p50;
    check_bool "p90 between order stats" true
      (row.Load_profile.p90 > 9.0 && row.Load_profile.p90 < 10.0);
    (match J.parse (J.to_string (Load_profile.to_json [ row ])) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e)
  | rows -> Alcotest.fail (Printf.sprintf "%d rows for 1 series" (List.length rows))

(* --- sweep --trace integration -------------------------------------- *)

let sweep_trace_files () =
  let dir = Filename.temp_file "obs_traces" "" in
  Sys.remove dir;
  let out = Filename.temp_file "obs_campaign" ".jsonl" in
  Sys.remove out;
  let spec =
    {
      Pr_campaign.Grid.protocols = [ "ecma"; "ls-hbh-pt" ];
      sizes = [ 14 ];
      restrictiveness = [ 0.0 ];
      granularities = [ Pr_policy.Gen.Source_specific ];
      churn = [ false ];
      fault_profiles = [ "none" ];
      replicates = 1;
      base_seed = 42;
      flows = 5;
      max_events = 1_000_000;
    }
  in
  let report = Pr_campaign.Driver.sweep ~jobs:2 ~quiet:true ~trace_dir:dir ~out spec in
  check_int "both runs ok" 2 report.Pr_campaign.Driver.ok;
  let validate_file path =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match J.parse s with
    | Error e -> Alcotest.fail (path ^ ": " ^ e)
    | Ok doc -> (
      match Trace.validate_json doc with
      | Ok () -> ()
      | Error e -> Alcotest.fail (path ^ ": " ^ e))
  in
  let runs = Pr_campaign.Grid.expand spec in
  check_int "one trace per run + pool.json" (List.length runs + 1)
    (Array.length (Sys.readdir dir));
  List.iter
    (fun run ->
      validate_file (Filename.concat dir (Pr_campaign.Exec.trace_filename run)))
    runs;
  validate_file (Filename.concat dir "pool.json");
  (* Every record must point at its trace and carry the skew fields. *)
  let sink = Pr_campaign.Sink.read ~path:out in
  List.iter
    (fun (_id, record) ->
      check_bool "trace_file recorded" true (Result.is_ok (J.string_member "trace_file" record));
      check_bool "time_to_first_route recorded" true
        (Result.is_ok (J.float_member "time_to_first_route" record));
      check_bool "msg_max recorded" true (Result.is_ok (J.int_member "msg_max" record));
      check_bool "tbl_p90 recorded" true (Result.is_ok (J.float_member "tbl_p90" record)))
    sink.Pr_campaign.Sink.records;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  Sys.remove out

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "pr_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "recorder basics + export" `Quick recorder_basics;
          Alcotest.test_case "full buffer drops newest" `Quick full_buffer_drops_newest;
          Alcotest.test_case "unclosed spans auto-closed" `Quick unclosed_span_autoclosed;
          Alcotest.test_case "validator rejects bad documents" `Quick
            validator_rejects_bad_documents;
        ]
        @ qsuite [ disabled_records_nothing; export_always_valid ] );
      ( "interference",
        List.map
          (fun name ->
            Alcotest.test_case (name ^ " unperturbed by tracing") `Slow
              (tracing_is_inert name))
          [ "dv-plain"; "ecma"; "ls-hbh-pt"; "orwg" ] );
      ( "timeline",
        [
          Alcotest.test_case "windowed sampling + summary" `Quick
            timeline_samples_and_summarizes;
          Alcotest.test_case "engine observer does not affect drain" `Quick
            timeline_drives_from_engine_observer;
        ] );
      ("load profile", [ Alcotest.test_case "percentiles" `Quick load_profile_percentiles ]);
      ("sweep", [ Alcotest.test_case "--trace emits valid files" `Slow sweep_trace_files ]);
    ]

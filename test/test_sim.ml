(* Unit tests for the pr_sim discrete-event substrate. *)

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Link = Pr_topology.Link
module Figure1 = Pr_topology.Figure1
module Generator = Pr_topology.Generator
module Engine = Pr_sim.Engine
module Metrics = Pr_sim.Metrics
module Network = Pr_sim.Network

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_float = Alcotest.(check (float 1e-9))

(* --- Engine -------------------------------------------------------- *)

let engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  check_int "pending" 3 (Engine.pending e);
  Alcotest.(check bool) "drained" true (Engine.run e = Engine.Drained);
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 3.0 (Engine.now e)

let engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun name -> Engine.schedule e ~delay:1.0 (fun () -> log := name :: !log))
    [ "x"; "y"; "z" ];
  ignore (Engine.run e);
  Alcotest.(check (list string)) "insertion order at equal time" [ "x"; "y"; "z" ]
    (List.rev !log)

let engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1.0 (fun () ->
      incr fired;
      Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.run e);
  check_int "nested event fired" 2 !fired;
  check_float "time accumulated" 2.0 (Engine.now e)

let engine_event_budget () =
  let e = Engine.create () in
  (* A self-perpetuating event chain must hit the budget, not hang. *)
  let rec renew () = Engine.schedule e ~delay:1.0 renew in
  renew ();
  Alcotest.(check bool) "budget stops runaway" true
    (Engine.run ~max_events:100 e = Engine.Reached_limit);
  check_int "executed counted" 100 (Engine.events_executed e)

let engine_bad_schedule () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Engine.schedule e ~delay:(-1.0) (fun () -> ()))

(* --- Metrics ------------------------------------------------------- *)

let metrics_counters () =
  let m = Metrics.create ~n:3 in
  Metrics.record_send m 0 ~bytes:100;
  Metrics.record_send m 0 ~bytes:50;
  Metrics.record_send m 2 ~bytes:10;
  Metrics.record_computation m 1 ~work:5 ();
  Metrics.set_table_entries m 2 7;
  check_int "messages" 3 (Metrics.messages m);
  check_int "bytes" 160 (Metrics.bytes m);
  check_int "computations" 5 (Metrics.computations m);
  check_int "per-node messages" 2 (Metrics.messages_of m 0);
  check_int "per-node bytes" 10 (Metrics.bytes_of m 2);
  check_int "tables" 7 (Metrics.table_entries m);
  check_int "max table" 7 (Metrics.max_table_entries m);
  Metrics.add_table_entries m 2 3;
  check_int "add gauge" 10 (Metrics.table_entries_of m 2)

let metrics_diff () =
  let m = Metrics.create ~n:2 in
  Metrics.record_send m 0 ~bytes:10;
  let before = Metrics.snapshot m in
  Metrics.record_send m 0 ~bytes:10;
  Metrics.record_send m 1 ~bytes:5;
  let d = Metrics.diff ~after:m ~before in
  check_int "delta messages" 2 (Metrics.messages d);
  check_int "delta bytes" 15 (Metrics.bytes d)

let metrics_reset () =
  let m = Metrics.create ~n:2 in
  Metrics.record_send m 0 ~bytes:10;
  Metrics.reset m;
  check_int "reset" 0 (Metrics.messages m)

let metrics_merge () =
  let a = Metrics.create ~n:3 and b = Metrics.create ~n:3 in
  Metrics.record_send a 0 ~bytes:100;
  Metrics.record_computation a 1 ~work:4 ();
  Metrics.add_table_entries a 2 5;
  Metrics.record_send b 0 ~bytes:50;
  Metrics.record_send b 2 ~bytes:10;
  Metrics.add_table_entries b 2 3;
  Metrics.merge a b;
  check_int "merged messages" 3 (Metrics.messages a);
  check_int "merged bytes" 160 (Metrics.bytes a);
  check_int "merged computations" 4 (Metrics.computations a);
  check_int "merged per-node bytes" 150 (Metrics.bytes_of a 0);
  check_int "merged gauge" 8 (Metrics.table_entries_of a 2);
  (* [from] is read, not written. *)
  check_int "source untouched" 2 (Metrics.messages b)

let metrics_merge_size_mismatch () =
  let a = Metrics.create ~n:2 and b = Metrics.create ~n:3 in
  Alcotest.check_raises "n mismatch" (Invalid_argument "Metrics.merge: size mismatch")
    (fun () -> Metrics.merge a b)

(* Recording operations whose effect is additive per AD — the ones
   workers perform — so that splitting a recording across workers and
   merging must equal recording sequentially. *)
let metrics_op =
  QCheck.(
    map
      (fun (which, ad, v) ->
        let ad = ad mod 4 and v = 1 + (v mod 50) in
        match which mod 3 with
        | 0 -> `Send (ad, v)
        | 1 -> `Compute (ad, v)
        | _ -> `Table (ad, v))
      (triple small_int small_int small_int))

let apply_op m = function
  | `Send (ad, bytes) -> Metrics.record_send m ad ~bytes
  | `Compute (ad, work) -> Metrics.record_computation m ad ~work ()
  | `Table (ad, k) -> Metrics.add_table_entries m ad k

let metrics_equal a b =
  let per_node f = List.init 4 (fun ad -> f a ad = f b ad) in
  Metrics.messages a = Metrics.messages b
  && Metrics.bytes a = Metrics.bytes b
  && Metrics.computations a = Metrics.computations b
  && Metrics.table_entries a = Metrics.table_entries b
  && Metrics.max_table_entries a = Metrics.max_table_entries b
  && List.for_all Fun.id (per_node Metrics.messages_of)
  && List.for_all Fun.id (per_node Metrics.bytes_of)
  && List.for_all Fun.id (per_node Metrics.computations_of)
  && List.for_all Fun.id (per_node Metrics.table_entries_of)

let metrics_merge_matches_sequential =
  QCheck.Test.make ~name:"merged worker metrics equal sequential recording" ~count:100
    QCheck.(pair (list metrics_op) (list metrics_op))
    (fun (ops1, ops2) ->
      let sequential = Metrics.create ~n:4 in
      List.iter (apply_op sequential) (ops1 @ ops2);
      let w1 = Metrics.create ~n:4 and w2 = Metrics.create ~n:4 in
      List.iter (apply_op w1) ops1;
      List.iter (apply_op w2) ops2;
      Metrics.merge w1 w2;
      metrics_equal sequential w1)

let metrics_json_roundtrip =
  QCheck.Test.make ~name:"metrics survive a JSON round-trip" ~count:100
    QCheck.(list metrics_op)
    (fun ops ->
      let m = Metrics.create ~n:4 in
      List.iter (apply_op m) ops;
      match Pr_util.Json.parse (Pr_util.Json.to_string (Metrics.to_json m)) with
      | Error _ -> false
      | Ok doc -> (
        match Metrics.of_json doc with
        | Error _ -> false
        | Ok m' -> metrics_equal m m'))

let metrics_of_json_rejects_garbage () =
  List.iter
    (fun doc ->
      check_bool "rejected" true (Result.is_error (Metrics.of_json doc)))
    Pr_util.Json.
      [
        Null;
        Obj [];
        Obj [ ("n", Int 2); ("messages", List [ Int 1 ]) ] (* wrong length *);
        Obj [ ("n", Int 2); ("messages", String "x") ];
      ]

(* --- Network ------------------------------------------------------- *)

let make_net () =
  let g = Figure1.graph () in
  let e = Engine.create () in
  let m = Metrics.create ~n:(Graph.n g) in
  (Network.create e g m, e, m, g)

let network_delivery () =
  let net, e, m, _ = make_net () in
  let received = ref [] in
  Network.set_message_handler net (fun ~at ~from msg -> received := (at, from, msg) :: !received);
  Network.send net ~src:0 ~dst:1 ~bytes:42 "hello";
  check_int "charged on send" 1 (Metrics.messages m);
  check_int "nothing delivered yet" 0 (List.length !received);
  ignore (Engine.run e);
  Alcotest.(check (list (triple int int string))) "delivered" [ (1, 0, "hello") ] !received

let network_no_link_drop () =
  let net, e, m, _ = make_net () in
  let received = ref 0 in
  Network.set_message_handler net (fun ~at:_ ~from:_ _ -> incr received);
  (* 7 and 8 are not adjacent. *)
  Network.send net ~src:7 ~dst:8 ~bytes:10 "x";
  ignore (Engine.run e);
  check_int "not delivered" 0 !received;
  check_int "not charged either" 0 (Metrics.messages m)

let network_down_link () =
  let net, e, m, g = make_net () in
  let received = ref 0 in
  let link_events = ref [] in
  Network.set_message_handler net (fun ~at:_ ~from:_ _ -> incr received);
  Network.set_link_handler net (fun ~at ~link ~up -> link_events := (at, link, up) :: !link_events);
  let lid = Option.get (Graph.find_link g 0 1) in
  Network.set_link_state net lid ~up:false;
  check_int "both endpoints notified" 2 (List.length !link_events);
  check_bool "reported down" true (List.for_all (fun (_, _, up) -> not up) !link_events);
  check_bool "link reported down" false (Network.link_is_up net lid);
  check_bool "not adjacent anymore" false (Network.adjacent_and_up net 0 1);
  Network.send net ~src:0 ~dst:1 ~bytes:10 "x";
  ignore (Engine.run e);
  check_int "dropped" 0 !received;
  check_int "no send charged" 0 (Metrics.messages m);
  (* Restore and retry. *)
  Network.set_link_state net lid ~up:true;
  Network.send net ~src:0 ~dst:1 ~bytes:10 "x";
  ignore (Engine.run e);
  check_int "delivered after restore" 1 !received

let network_in_flight_loss () =
  let net, e, _, g = make_net () in
  let received = ref 0 in
  Network.set_message_handler net (fun ~at:_ ~from:_ _ -> incr received);
  let lid = Option.get (Graph.find_link g 0 1) in
  Network.send net ~src:0 ~dst:1 ~bytes:10 "x";
  (* The message is in flight; the link fails before delivery. *)
  Network.set_link_state net lid ~up:false;
  ignore (Engine.run e);
  check_int "in-flight message lost" 0 !received

let network_broadcast () =
  let net, e, _, g = make_net () in
  let received = ref [] in
  Network.set_message_handler net (fun ~at ~from:_ _ -> received := at :: !received);
  let sent = Network.broadcast net ~src:0 ~bytes:10 "x" in
  check_int "sent to degree-many" (Graph.degree g 0) sent;
  ignore (Engine.run e);
  check_int "all delivered" sent (List.length !received)

let network_up_neighbors () =
  let net, _, _, g = make_net () in
  Alcotest.(check (list int)) "all up initially" (Graph.neighbor_ids g 0)
    (Network.up_neighbors net 0);
  let lid = Option.get (Graph.find_link g 0 1) in
  Network.set_link_state net lid ~up:false;
  check_bool "1 no longer a neighbor" true (not (List.mem 1 (Network.up_neighbors net 0)))

let network_fail_random () =
  let net, _, _, g = make_net () in
  let rng = Rng.create 3 in
  match Network.fail_random_link net rng () with
  | None -> Alcotest.fail "expected a link to fail"
  | Some lid ->
    check_bool "failed" false (Network.link_is_up net lid);
    let count = ref 0 in
    Graph.fold_links g ~init:() ~f:(fun () l ->
        if not (Network.link_is_up net l.Link.id) then incr count);
    check_int "exactly one failed" 1 !count

let network_fail_random_kind () =
  let net, _, _, g = make_net () in
  let rng = Rng.create 3 in
  match Network.fail_random_link net rng ~kind:Link.Bypass () with
  | None -> Alcotest.fail "expected the bypass link"
  | Some lid ->
    check_bool "bypass kind" true ((Graph.link g lid).Link.kind = Link.Bypass)

(* --- Virtual gateways (paper footnote 8) ----------------------------- *)

(* "A virtual gateway may be comprised of multiple PGs in the interest
   of reliability and performance": modelled as parallel links between
   one AD pair. The network rides over individual PG failures without
   the connection disappearing. *)
let parallel_graph () =
  let module Ad = Pr_topology.Ad in
  let ads =
    Array.init 2 (fun id ->
        Ad.make ~id ~name:(Printf.sprintf "N%d" id) ~klass:Ad.Hybrid ~level:Ad.Metro)
  in
  let links =
    [|
      Link.make ~id:0 ~a:0 ~b:1 ~cost:1 Link.Lateral;
      Link.make ~id:1 ~a:0 ~b:1 ~cost:2 Link.Lateral;
    |]
  in
  Graph.create ads links

let virtual_gateway_failover () =
  let g = parallel_graph () in
  let e = Engine.create () in
  let m = Metrics.create ~n:2 in
  let net = Network.create e g m in
  let received = ref 0 in
  Network.set_message_handler net (fun ~at:_ ~from:_ _ -> incr received);
  (* Both PGs up: traffic rides the cheap one. *)
  Network.send net ~src:0 ~dst:1 ~bytes:10 "x";
  ignore (Engine.run e);
  check_int "delivered over cheap PG" 1 !received;
  (* The cheap PG fails: the connection survives over the other. *)
  Network.set_link_state net 0 ~up:false;
  check_bool "still adjacent" true (Network.adjacent_and_up net 0 1);
  Network.send net ~src:0 ~dst:1 ~bytes:10 "x";
  ignore (Engine.run e);
  check_int "failover delivery" 2 !received;
  (* Both down: the virtual gateway is gone. *)
  Network.set_link_state net 1 ~up:false;
  check_bool "gone when all PGs fail" false (Network.adjacent_and_up net 0 1)

let virtual_gateway_protocol_transparent () =
  (* A routing protocol keeps its adjacency (and routes) across the
     failure of one of two parallel PGs. *)
  let g = parallel_graph () in
  let module R = Pr_proto.Runner.Make (Pr_ls.Ls) in
  let r = R.setup g (Pr_policy.Config.defaults g) in
  ignore (R.converge r);
  R.fail_link r 0;
  let c = R.converge r in
  check_bool "reconverged" true c.Pr_proto.Runner.converged;
  check_bool "adjacency survives one PG failure" true
    (Pr_proto.Forwarding.delivered
       (R.send_flow r (Pr_policy.Flow.make ~src:0 ~dst:1 ())))

(* --- Churn ---------------------------------------------------------- *)

let churn_restores_links () =
  let net, e, _, g = make_net () in
  let rng = Rng.create 5 in
  Pr_sim.Churn.schedule net rng ~events:6 ~spacing:2.0 ();
  check_int "events queued" 6 (Engine.pending e);
  ignore (Engine.run e);
  (* Even number of events: every churn-failed link was restored. *)
  let down = ref 0 in
  Graph.fold_links g ~init:() ~f:(fun () l ->
      if not (Network.link_is_up net l.Link.id) then incr down);
  check_int "all links restored" 0 !down

let churn_leaves_last_failure () =
  let net, e, _, g = make_net () in
  let rng = Rng.create 5 in
  Pr_sim.Churn.schedule net rng ~events:5 ~spacing:1.0 ();
  ignore (Engine.run e);
  let down = ref 0 in
  Graph.fold_links g ~init:() ~f:(fun () l ->
      if not (Network.link_is_up net l.Link.id) then incr down);
  check_int "odd event count leaves one link down" 1 !down

let churn_interleaves_with_protocol () =
  (* Schedule churn before converging a real protocol: the reactions
     interleave with the flips and the system still quiesces. *)
  let g = Pr_topology.Figure1.graph () in
  let module R = Pr_proto.Runner.Make (Pr_ls.Ls) in
  let r = R.setup g (Pr_policy.Config.defaults g) in
  let rng = Rng.create 11 in
  Pr_sim.Churn.schedule (R.network r) rng ~events:8 ~spacing:3.0 ();
  let c = R.converge ~max_events:5_000_000 r in
  check_bool "converged through churn" true c.Pr_proto.Runner.converged;
  (* All links are back; routing must be fully functional. *)
  let flow = Pr_policy.Flow.make ~src:7 ~dst:12 () in
  check_bool "delivers after churn" true
    (Pr_proto.Forwarding.delivered (R.send_flow r flow))

let churn_no_up_links () =
  (* Every link already down: the failure events find nothing to fail
     and the restore events nothing churn-failed to restore — the
     schedule must drain without raising or resurrecting links it did
     not fail. *)
  let net, e, _, g = make_net () in
  Graph.fold_links g ~init:() ~f:(fun () l ->
      Network.set_link_state net l.Link.id ~up:false);
  Pr_sim.Churn.schedule net (Rng.create 3) ~events:6 ~spacing:1.0 ();
  check_bool "drained" true (Engine.run e = Engine.Drained);
  let up = ref 0 in
  Graph.fold_links g ~init:() ~f:(fun () l ->
      if Network.link_is_up net l.Link.id then incr up);
  check_int "no link resurrected" 0 !up

let churn_kind_matches_nothing () =
  (* The parallel graph has only Lateral links: churn restricted to
     Hierarchical links must be a no-op that still drains. *)
  let g = parallel_graph () in
  let e = Engine.create () in
  let net = Network.create e g (Metrics.create ~n:2) in
  Pr_sim.Churn.schedule net (Rng.create 7) ~events:5 ~spacing:1.0
    ~kind:Pr_topology.Link.Hierarchical ();
  check_bool "drained" true (Engine.run e = Engine.Drained);
  check_bool "both links untouched" true
    (Network.link_is_up net 0 && Network.link_is_up net 1)

let churn_bad_spacing () =
  let net, _, _, _ = make_net () in
  Alcotest.check_raises "spacing" (Invalid_argument "Churn.schedule: spacing <= 0")
    (fun () -> Pr_sim.Churn.schedule net (Rng.create 1) ~events:2 ~spacing:0.0 ())

(* --- Sharded engine -------------------------------------------------- *)

module Shard = Pr_sim.Shard

let shard_plan_partitions () =
  let g = Generator.generate (Rng.create 7) (Generator.scaled ~target_ads:60) in
  let s = Shard.plan g ~shards:4 in
  check_int "count" 4 (Shard.count s);
  let pop = Array.make 4 0 in
  for ad = 0 to Graph.n g - 1 do
    let o = Shard.owner s ad in
    check_bool "owner in range" true (o >= 0 && o < 4);
    pop.(o) <- pop.(o) + 1
  done;
  Array.iteri (fun i c -> check_bool (Printf.sprintf "shard %d populated" i) true (c > 0)) pop;
  check_bool "cross-shard delta positive" true (Shard.delta s > 0.0)

let shard_plan_deterministic () =
  let g = Generator.generate (Rng.create 7) (Generator.scaled ~target_ads:60) in
  let a = Shard.plan g ~shards:4 and b = Shard.plan g ~shards:4 in
  for ad = 0 to Graph.n g - 1 do
    check_int "same owner" (Shard.owner a ad) (Shard.owner b ad)
  done;
  check_float "same delta" (Shard.delta a) (Shard.delta b)

let shard_plan_single () =
  let g = Figure1.graph () in
  let s = Shard.plan g ~shards:1 in
  check_int "one shard" 1 (Shard.count s);
  for ad = 0 to Graph.n g - 1 do
    check_int "everything on shard 0" 0 (Shard.owner s ad)
  done;
  (* No cross-shard links: the window width is unbounded. *)
  check_bool "delta infinite" true (Shard.delta s = infinity)

(* One converge under churn, sequential or sharded, summarized by
   everything the equivalence contract covers: the convergence record,
   the full metrics document (per-AD sends, bytes, computations, table
   entries), and the delivery outcome of one flow per AD. *)
let converge_summary ~seed ~size ~shards =
  let g = Generator.generate (Rng.create seed) (Generator.scaled ~target_ads:size) in
  let module R = Pr_proto.Runner.Make (Pr_ls.Ls) in
  let r = R.setup ~shards g (Pr_policy.Config.defaults g) in
  Pr_sim.Churn.schedule (R.network r)
    (Rng.derive seed "churn")
    ~events:6 ~spacing:4.0 ();
  let c = R.converge r in
  let metrics = Pr_util.Json.to_string (Metrics.to_json (R.metrics r)) in
  let n = Graph.n g in
  let routes =
    List.init n (fun src ->
        let dst = (src + (n / 2)) mod n in
        Pr_proto.Forwarding.delivered
          (R.send_flow r (Pr_policy.Flow.make ~src ~dst ())))
  in
  (c, metrics, routes)

let sharded_equals_sequential =
  QCheck.Test.make
    ~name:"sharded converge equals sequential (any topology, churn, 2-8 shards)"
    ~count:8
    QCheck.(triple small_int small_int small_int)
    (fun (seed, size, shards) ->
      let seed = 1 + (seed mod 1000)
      and size = 8 + (size mod 33)
      and shards = 2 + (shards mod 7) in
      let cs, ms, rs = converge_summary ~seed ~size ~shards:1 in
      let cp, mp, rp = converge_summary ~seed ~size ~shards in
      cs = cp && String.equal ms mp && rs = rp)

let () =
  Alcotest.run "pr_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick engine_time_order;
          Alcotest.test_case "FIFO ties" `Quick engine_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick engine_nested_scheduling;
          Alcotest.test_case "event budget" `Quick engine_event_budget;
          Alcotest.test_case "bad schedule" `Quick engine_bad_schedule;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick metrics_counters;
          Alcotest.test_case "diff" `Quick metrics_diff;
          Alcotest.test_case "reset" `Quick metrics_reset;
          Alcotest.test_case "merge" `Quick metrics_merge;
          Alcotest.test_case "merge size mismatch" `Quick metrics_merge_size_mismatch;
          Alcotest.test_case "of_json rejects garbage" `Quick metrics_of_json_rejects_garbage;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ metrics_merge_matches_sequential; metrics_json_roundtrip ] );
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick network_delivery;
          Alcotest.test_case "no link drop" `Quick network_no_link_drop;
          Alcotest.test_case "down link" `Quick network_down_link;
          Alcotest.test_case "in-flight loss" `Quick network_in_flight_loss;
          Alcotest.test_case "broadcast" `Quick network_broadcast;
          Alcotest.test_case "up neighbors" `Quick network_up_neighbors;
          Alcotest.test_case "fail random link" `Quick network_fail_random;
          Alcotest.test_case "fail random by kind" `Quick network_fail_random_kind;
        ] );
      ( "virtual-gateway",
        [
          Alcotest.test_case "failover" `Quick virtual_gateway_failover;
          Alcotest.test_case "protocol transparent" `Quick virtual_gateway_protocol_transparent;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "plan partitions" `Quick shard_plan_partitions;
          Alcotest.test_case "plan deterministic" `Quick shard_plan_deterministic;
          Alcotest.test_case "single shard trivial" `Quick shard_plan_single;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ sharded_equals_sequential ] );
      ( "churn",
        [
          Alcotest.test_case "restores links" `Quick churn_restores_links;
          Alcotest.test_case "odd count leaves one down" `Quick churn_leaves_last_failure;
          Alcotest.test_case "interleaves with protocol" `Quick churn_interleaves_with_protocol;
          Alcotest.test_case "no up links" `Quick churn_no_up_links;
          Alcotest.test_case "kind matches nothing" `Quick churn_kind_matches_nothing;
          Alcotest.test_case "bad spacing" `Quick churn_bad_spacing;
        ] );
    ]

(* Tests for the serving layer: the policy decision diagram (diagram
   admit must agree with the compiled bitsets and the interpreted
   Policy Terms on every crossing, and the hash-cons store must never
   hold two structurally equal live nodes), the generic LRU behind the
   handle table and route caches, the never-mix snapshot guarantee
   under set_transit churn, workload determinism, and one short
   daemon session end to end. *)

module Rng = Pr_util.Rng
module Lru = Pr_util.Lru
module Graph = Pr_topology.Graph
module Path = Pr_topology.Path
module Figure1 = Pr_topology.Figure1
module Flow = Pr_policy.Flow
module Qos = Pr_policy.Qos
module Uci = Pr_policy.Uci
module Policy_term = Pr_policy.Policy_term
module Transit_policy = Pr_policy.Transit_policy
module Config = Pr_policy.Config
module Gen = Pr_policy.Gen
module Compiled = Pr_policy.Compiled
module Policy_store = Pr_policy.Policy_store
module Scenario = Pr_core.Scenario
module Pdd = Pr_serve.Pdd
module Serve = Pr_serve.Serve
module Workload = Pr_serve.Workload
module Daemon = Pr_serve.Daemon
module Metrics = Pr_sim.Metrics

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* --- generators (the compilation edge cases of test_policy) -------- *)

let universe = 14

let gen_pred_full =
  QCheck.Gen.(
    frequency
      [
        (3, return Policy_term.Any);
        (1, return (Policy_term.Only [||]));
        (1, return (Policy_term.Except [||]));
        ( 3,
          map
            (fun l -> Policy_term.Only (Array.of_list l))
            (list_size (int_range 1 6) (int_range 0 20)) );
        ( 3,
          map
            (fun l -> Policy_term.Except (Array.of_list l))
            (list_size (int_range 1 6) (int_range 0 20)) );
      ])

let gen_subset all =
  QCheck.Gen.(
    map
      (fun mask ->
        match List.filteri (fun i _ -> (mask lsr i) land 1 = 1) all with
        | [] -> all
        | l -> l)
      (int_range 0 ((1 lsl List.length all) - 1)))

let gen_hours =
  QCheck.Gen.(
    frequency
      [
        (2, return None);
        ( 3,
          map2
            (fun a b -> if a = b then None else Some (a, b))
            (int_range 0 23) (int_range 0 23) );
      ])

let gen_term_for owner =
  QCheck.Gen.(
    map
      (fun ((src, dst, prev, next), qos, ucis, (hours, auth)) ->
        Policy_term.make ~owner ~sources:src ~destinations:dst ~prev_hops:prev
          ~next_hops:next ~qos ~ucis ?hours ~auth_required:auth ())
      (tup4
         (tup4 gen_pred_full gen_pred_full gen_pred_full gen_pred_full)
         (gen_subset Qos.all) (gen_subset Uci.all)
         (tup2 gen_hours bool)))

let gen_term = gen_term_for 5

let gen_terms = QCheck.Gen.(list_size (int_range 0 5) gen_term)

let gen_ctx =
  QCheck.Gen.(
    let id = int_range 0 13 in
    map
      (fun (src, dst, (qi, ui, hour, auth), prev, next) ->
        {
          Policy_term.flow =
            Flow.make ~src ~dst ~qos:(Qos.of_index qi) ~uci:(Uci.of_index ui) ~hour
              ~authenticated:auth ();
          prev = (if prev < 0 then None else Some prev);
          next = (if next < 0 then None else Some next);
        })
      (tup5 id id
         (tup4 (int_range 0 3) (int_range 0 2) (int_range 0 23) bool)
         (int_range (-1) 13) (int_range (-1) 13)))

(* --- decision diagram: observational equivalence ------------------- *)

let diagram_matches_compiled_and_interpreted =
  QCheck.Test.make
    ~name:"diagram admit = Compiled.allows = Transit_policy.allows" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_terms gen_ctx))
    (fun (terms, ctx) ->
      let compiled = Compiled.compile ~n:universe terms in
      let root = Pdd.compile (Pdd.store_create ()) compiled in
      let d =
        Pdd.admit_node root ctx.Policy_term.flow ~prev:ctx.Policy_term.prev
          ~next:ctx.Policy_term.next
      in
      let policy = Transit_policy.make 5 terms in
      d = Compiled.allows compiled ctx && d = Transit_policy.allows policy ctx)

let flow_entry_matches_full_walk =
  QCheck.Test.make ~name:"flow_entry + entry_admit = the full walk" ~count:500
    (QCheck.make QCheck.Gen.(pair gen_terms gen_ctx))
    (fun (terms, ctx) ->
      let compiled = Compiled.compile ~n:universe terms in
      let root = Pdd.compile (Pdd.store_create ()) compiled in
      let entry = Pdd.flow_entry root ctx.Policy_term.flow in
      Pdd.entry_admit entry ~prev:ctx.Policy_term.prev ~next:ctx.Policy_term.next
      = Pdd.admit_node root ctx.Policy_term.flow ~prev:ctx.Policy_term.prev
          ~next:ctx.Policy_term.next)

(* Shared store, many policies, churn — and the hash-cons invariant
   (no two structurally equal live nodes) must survive it all. *)
let hash_cons_invariant_under_churn =
  QCheck.Test.make ~name:"hash-cons invariant survives set_transit churn" ~count:30
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 6)
              (int_range 0 13 >>= fun ad ->
               map
                 (fun terms -> (ad, terms))
                 (list_size (int_range 0 5) (gen_term_for ad))))
           gen_ctx))
    (fun (flips, ctx) ->
      let g = Figure1.graph () in
      let store = Policy_store.create (Config.defaults g) in
      let db = Pdd.db_create store in
      (match Pdd.check db with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "initial check: %s" e);
      List.iter
        (fun (ad, terms) ->
          Policy_store.set_transit store ad (Transit_policy.make ad terms);
          ignore (Pdd.refresh db);
          (match Pdd.check db with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "after flip: %s" e);
          let snap = Pdd.snapshot db in
          let d =
            Pdd.admit snap ~ad ctx.Policy_term.flow ~prev:ctx.Policy_term.prev
              ~next:ctx.Policy_term.next
          in
          if d <> Policy_store.allows store ad ctx then
            QCheck.Test.fail_reportf "diagram disagrees with store after flip")
        flips;
      true)

(* --- Lru ----------------------------------------------------------- *)

(* Model: MRU-first association list, bounded at the capacity. *)
let lru_matches_model =
  let gen_ops =
    QCheck.Gen.(
      list_size (int_range 0 120)
        (frequency
           [
             (4, map2 (fun k v -> `Put (k, v)) (int_range 0 9) small_int);
             (3, map (fun k -> `Find k) (int_range 0 9));
             (1, map (fun k -> `Remove k) (int_range 0 9));
           ]))
  in
  QCheck.Test.make ~name:"Lru agrees with a bounded MRU-list model" ~count:300
    (QCheck.make gen_ops) (fun ops ->
      let cap = 4 in
      let t = Lru.create ~capacity:(Some cap) () in
      let model = ref [] in
      let evicted = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Put (k, v) ->
            let existed = List.mem_assoc k !model in
            model := (k, v) :: List.remove_assoc k !model;
            if (not existed) && List.length !model > cap then begin
              match List.rev !model with
              | (victim, _) :: _ ->
                model := List.remove_assoc victim !model;
                incr evicted
              | [] -> ()
            end;
            ignore (Lru.put t k v)
          | `Find k -> (
            let got = Lru.find t k in
            match List.assoc_opt k !model with
            | Some v ->
              model := (k, v) :: List.remove_assoc k !model;
              if got <> Some v then ok := false
            | None -> if got <> None then ok := false)
          | `Remove k ->
            model := List.remove_assoc k !model;
            Lru.remove t k)
        ops;
      !ok
      && Lru.self_check t = Ok ()
      && Lru.length t = List.length !model
      && Lru.evictions t = !evicted
      && Lru.fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc) = List.rev !model)

let lru_eviction_order () =
  let t = Lru.create ~capacity:(Some 2) () in
  check_bool "no eviction below capacity" true (Lru.put t 1 "a" = None);
  check_bool "no eviction at capacity" true (Lru.put t 2 "b" = None);
  check_bool "lru key evicted" true (Lru.put t 3 "c" = Some 1);
  (* Touch 2, then overflow: 3 (now least recent) goes. *)
  check_bool "find touches" true (Lru.find t 2 = Some "b");
  check_bool "touched key survives" true (Lru.put t 4 "d" = Some 3);
  check_int "two evictions" 2 (Lru.evictions t);
  (* Updating a resident key never evicts. *)
  check_bool "update in place" true (Lru.put t 2 "b2" = None);
  check_bool "updated value visible" true (Lru.peek t 2 = Some "b2");
  Lru.clear t;
  check_int "clear keeps the eviction count" 2 (Lru.evictions t);
  check_int "clear empties" 0 (Lru.length t);
  check_bool "self-check" true (Lru.self_check t = Ok ())

let lru_unbounded_and_bad_capacity () =
  let t = Lru.create () in
  for i = 0 to 999 do
    ignore (Lru.put t i i)
  done;
  check_int "unbounded never evicts" 0 (Lru.evictions t);
  check_int "all resident" 1000 (Lru.length t);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Lru.create: capacity < 1") (fun () ->
      ignore (Lru.create ~capacity:(Some 0) ()))

(* --- snapshots never mix versions (satellite: stale-snapshot fix) --- *)

let restrictive =
  { Gen.default with Gen.restrictiveness = 0.8; granularity = Gen.Fine }

let answer_path = function
  | Serve.Route { path; _ } -> Some path
  | Serve.No_route _ -> None

(* Answers under one fixed database version, via a fresh private store. *)
let answers_at config graph ~flip flows =
  let store = Policy_store.create config in
  (match flip with
  | Some (ad, p) -> Policy_store.set_transit store ad p
  | None -> ());
  let serve = Serve.create graph store in
  ignore (Serve.refresh serve ~now:0.0);
  List.map (fun f -> answer_path (Serve.query serve ~now:0.0 f)) flows

let snapshot_race_regression () =
  let scenario = Scenario.for_size ~policy:restrictive ~target_ads:30 ~seed:9 () in
  let g = scenario.Scenario.graph in
  let config = scenario.Scenario.config in
  let flows = Scenario.flows scenario ~rng:(Rng.create 17) ~count:24 () in
  let victim = List.hd (Graph.transit_ids g) in
  let flip = (victim, Transit_policy.no_transit victim) in
  let old_answers = answers_at config g ~flip:None flows in
  let new_answers = answers_at config g ~flip:(Some flip) flows in
  check_bool "the flip changes at least one answer" true (old_answers <> new_answers);
  (* Race a query batch against the flip: set_transit lands mid-batch
     and the serve refreshes a few queries later. Every answer must
     equal the old version's or the new version's — never a mix of the
     two databases inside one answer, and the version tag must say
     which. *)
  let store = Policy_store.create config in
  let serve = Serve.create g store in
  ignore (Serve.refresh serve ~now:0.0);
  let v0 = Pdd.snapshot_version (Serve.snapshot serve) in
  List.iteri
    (fun i f ->
      if i = 8 then Policy_store.set_transit store victim (snd flip);
      if i = 16 then ignore (Serve.refresh serve ~now:0.0);
      let a = Serve.query serve ~now:0.0 f in
      let version =
        match a with Serve.Route { version; _ } -> version | Serve.No_route { version } -> version
      in
      let expected =
        if version = v0 then List.nth old_answers i else List.nth new_answers i
      in
      if answer_path a <> expected then
        Alcotest.failf "query %d: answer matches neither version cleanly" i;
      (* Before the refresh the serve must keep answering from the old
         snapshot; after it, from the new one. *)
      check_int "version pinned per query" (if i < 16 then v0 else v0 + 1) version)
    flows;
  (* A caller-pinned snapshot is immune to the refresh entirely. *)
  let store2 = Policy_store.create config in
  let serve2 = Serve.create g store2 in
  ignore (Serve.refresh serve2 ~now:0.0);
  let snap = Serve.snapshot serve2 in
  List.iteri
    (fun i f ->
      if i = 8 then begin
        Policy_store.set_transit store2 victim (snd flip);
        ignore (Serve.refresh serve2 ~now:0.0)
      end;
      let a = Serve.query ~snap serve2 ~now:0.0 f in
      if answer_path a <> List.nth old_answers i then
        Alcotest.failf "pinned query %d: not the old version's answer" i)
    flows

(* --- handle table -------------------------------------------------- *)

let handle_accounting () =
  let scenario = Scenario.for_size ~policy:restrictive ~target_ads:30 ~seed:9 () in
  let store = Policy_store.create scenario.Scenario.config in
  let serve =
    Serve.create ~handle_capacity:(Some 4) scenario.Scenario.graph store
  in
  ignore (Serve.refresh serve ~now:0.0);
  let flows = Scenario.flows scenario ~rng:(Rng.create 23) ~count:40 () in
  let handles =
    List.filter_map
      (fun f ->
        match Serve.query serve ~now:0.0 f with
        | Serve.Route { handle; _ } -> Some handle
        | Serve.No_route _ -> None)
      flows
  in
  check_bool "issued more than capacity" true (List.length handles > 4);
  let s = Serve.stats serve in
  check_int "issued = live + evicted" s.Serve.handles_issued
    (s.Serve.handles_live + s.Serve.handle_evictions);
  check_bool "evictions happened" true (s.Serve.handle_evictions > 0);
  (* Only the most recent handles answer; evicted ones miss. *)
  (match List.rev handles with
  | newest :: _ ->
    check_bool "newest handle lives" true (Serve.data serve ~now:0.0 ~handle:newest <> None)
  | [] -> Alcotest.fail "no handles issued");
  check_bool "oldest handle evicted" true
    (Serve.data serve ~now:0.0 ~handle:(List.hd handles) = None);
  check_bool "self-check clean" true (Serve.self_check serve = Ok ())

(* --- workload determinism ------------------------------------------ *)

let workload_deterministic () =
  let scenario = Scenario.for_size ~policy:restrictive ~target_ads:30 ~seed:9 () in
  let stream seed =
    let w = Workload.create ~rng:(Rng.create seed) scenario.Scenario.graph in
    List.init 200 (fun i -> Workload.next w ~now:(float_of_int i *. 0.3))
  in
  check_bool "same seed, same operations" true (stream 5 = stream 5);
  check_bool "different seed, different operations" true (stream 5 <> stream 6);
  let ops = stream 5 in
  check_bool "stream mixes queries and data" true
    (List.exists (function Workload.Query _ -> true | _ -> false) ops
    && List.exists (function Workload.Data _ -> true | _ -> false) ops)

(* --- daemon end to end --------------------------------------------- *)

let daemon_session_healthy () =
  let cfg = { Daemon.default_config with Daemon.target_ads = 20; duration = 8.0; seed = 3 } in
  let r = Daemon.run cfg in
  check_bool "session healthy" true (Daemon.healthy r);
  check_int "no admission disagreements" 0 r.Daemon.agreement_failures;
  check_bool "agreement checks actually ran" true (r.Daemon.agreement_checks > 0);
  check_bool "policy flips actually happened" true (r.Daemon.flips > 0);
  check_bool "faults actually fired" true (r.Daemon.faults > 0);
  check_bool "incremental rebuilds stayed incremental" true
    (r.Daemon.stats.Serve.rebuilt_ads
    < r.Daemon.ads * (r.Daemon.stats.Serve.rebuilds + 1))

(* --- ORWG route cache bounded by the same LRU ---------------------- *)

module Tiny_rc = Pr_orwg.Orwg.Make (struct
  let name = "orwg-tiny-rc"

  let use_handles = true

  let pg_capacity = None

  let pr_capacity = Some 1

  let setup_retries = 2

  let delegate_stub_route_servers = false

  let prune_synthesis = false
end)

module Rt = Pr_proto.Runner.Make (Tiny_rc)
module Ro = Pr_proto.Runner.Make (Pr_orwg.Orwg.Orwg)

let orwg_route_cache_bounded () =
  let g = Figure1.graph () in
  let r = Rt.setup g (Config.defaults g) in
  ignore (Rt.converge r);
  let f1 = Flow.make ~src:7 ~dst:8 () in
  let f2 = Flow.make ~src:7 ~dst:9 () in
  check_bool "f1 delivered" true (Pr_proto.Forwarding.delivered (Rt.send_flow r f1));
  check_bool "f2 delivered" true (Pr_proto.Forwarding.delivered (Rt.send_flow r f2));
  check_bool "route cache at capacity" true
    (Tiny_rc.route_cache_entries (Rt.protocol r) 7 <= 1);
  check_bool "route evictions counted" true (Tiny_rc.route_evictions (Rt.protocol r) 7 > 0);
  (* Evictions surface in the run metrics too. *)
  check_bool "metrics see the evictions" true
    (Metrics.evictions_of (Rt.metrics r) 7 > 0);
  (* The evicted flow still delivers — through a fresh synthesis. *)
  check_bool "f1 recovers" true (Pr_proto.Forwarding.delivered (Rt.send_flow r f1))

let orwg_route_cache_default_roomy () =
  let g = Figure1.graph () in
  let r = Ro.setup g (Config.defaults g) in
  ignore (Ro.converge r);
  List.iter
    (fun dst ->
      if dst <> 7 then ignore (Ro.send_flow r (Flow.make ~src:7 ~dst ())))
    (Graph.host_ids g);
  List.iter
    (fun ad ->
      check_int "no route evictions at the default bound" 0
        (Pr_orwg.Orwg.Orwg.route_evictions (Ro.protocol r) ad))
    (List.init (Graph.n g) Fun.id)

(* --- metrics eviction counters ------------------------------------- *)

let metrics_evictions_roundtrip () =
  let m = Metrics.create ~n:3 in
  Metrics.record_eviction m 1 ();
  Metrics.record_eviction m 1 ~count:4 ();
  Metrics.record_eviction m 2 ();
  check_int "total" 6 (Metrics.evictions m);
  check_int "per-ad" 5 (Metrics.evictions_of m 1);
  (match Metrics.of_json (Metrics.to_json m) with
  | Ok m' ->
    check_int "json roundtrip total" 6 (Metrics.evictions m');
    check_int "json roundtrip per-ad" 5 (Metrics.evictions_of m' 1)
  | Error e -> Alcotest.failf "of_json: %s" e);
  let d = Metrics.diff ~after:m ~before:(Metrics.create ~n:3) in
  check_int "diff keeps evictions" 6 (Metrics.evictions d);
  let acc = Metrics.create ~n:3 in
  Metrics.merge acc m;
  Metrics.merge acc m;
  check_int "merge accumulates" 12 (Metrics.evictions acc)

let () =
  Alcotest.run "pr_serve"
    [
      ( "pdd",
        qsuite
          [
            diagram_matches_compiled_and_interpreted;
            flow_entry_matches_full_walk;
            hash_cons_invariant_under_churn;
          ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick lru_eviction_order;
          Alcotest.test_case "unbounded + bad capacity" `Quick
            lru_unbounded_and_bad_capacity;
        ]
        @ qsuite [ lru_matches_model ] );
      ( "serve",
        [
          Alcotest.test_case "snapshot race regression" `Quick snapshot_race_regression;
          Alcotest.test_case "handle accounting" `Quick handle_accounting;
          Alcotest.test_case "workload determinism" `Quick workload_deterministic;
          Alcotest.test_case "daemon session healthy" `Quick daemon_session_healthy;
        ] );
      ( "orwg-cache",
        [
          Alcotest.test_case "bounded route cache evicts" `Quick orwg_route_cache_bounded;
          Alcotest.test_case "default bound never evicts here" `Quick
            orwg_route_cache_default_roomy;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "eviction counters roundtrip" `Quick
            metrics_evictions_roundtrip;
        ] );
    ]

module Graph = Pr_topology.Graph
module Network = Pr_sim.Network
module Metrics = Pr_sim.Metrics
module Flow = Pr_policy.Flow
module Packet = Pr_proto.Packet
module Cost_model = Pr_proto.Cost_model
module Design_point = Pr_proto.Design_point

let probe_update = Pr_proto.Probe.make "egp.update"

type message = (Pr_topology.Ad.id * bool) list

type node = {
  advertisers : bool array array;  (* advertisers.(dst).(nbr) *)
  chosen : int array;  (* sticky next hop per dst; -1 = none *)
  sent : (Pr_topology.Ad.id, bool array) Hashtbl.t;
      (* what we last announced to each neighbor *)
}

type t = { graph : Graph.t; net : message Network.t; nodes : node array }

let name = "egp"

let design_point =
  Design_point.make Design_point.Distance_vector Design_point.Hop_by_hop
    Design_point.In_topology

let create graph _config net =
  let n = Graph.n graph in
  let make_node ad =
    let chosen = Array.make n (-1) in
    chosen.(ad) <- ad;
    { advertisers = Array.init n (fun _ -> Array.make n false); chosen; sent = Hashtbl.create 8 }
  in
  { graph; net; nodes = Array.init n make_node }

(* EGP distances are not comparable across neighbors, so route choice
   cannot pick "the shortest". We model the practical behaviour: the
   first advertiser heard is kept until it withdraws ("sticky"); on
   withdrawal the lowest-id remaining advertiser is adopted. Binary
   reachability means a post-failure re-choice can silently adopt an
   advertiser whose own path runs through us — a stable forwarding
   loop no metric will ever reveal. *)
let rechoose t ad dst =
  let node = t.nodes.(ad) in
  if dst <> ad then begin
    let current = node.chosen.(dst) in
    if current >= 0 && node.advertisers.(dst).(current) then ()
    else begin
      let best = ref (-1) in
      Array.iteri
        (fun nbr yes -> if yes && !best < 0 then best := nbr)
        node.advertisers.(dst);
      node.chosen.(dst) <- !best
    end
  end

let choice t ad dst =
  if ad = dst then Some ad
  else begin
    let c = t.nodes.(ad).chosen.(dst) in
    if c >= 0 then Some c else None
  end

let reaches t ad dst = choice t ad dst <> None

let message_bytes entries =
  Cost_model.update_fixed_bytes + (Cost_model.dv_entry_bytes * List.length entries)

(* Send each neighbor the diff between what we now advertise to it and
   what we last told it. Faithful to EGP's NR messages, a gateway
   advertises everything it reaches — with NO split horizon; nothing in
   the protocol stops the advertisement going back to the neighbor the
   route runs through. On the engineered tree this is harmless; on a
   cyclic topology it is what makes stable loops possible (§3). *)
let advertise t ad =
  let n = Graph.n t.graph in
  List.iter
    (fun nbr ->
      let previous =
        match Hashtbl.find_opt t.nodes.(ad).sent nbr with
        | Some a -> a
        | None ->
          let a = Array.make n false in
          Hashtbl.replace t.nodes.(ad).sent nbr a;
          a
      in
      let entries = ref [] in
      for dst = n - 1 downto 0 do
        let now = choice t ad dst <> None in
        if now <> previous.(dst) then begin
          previous.(dst) <- now;
          entries := (dst, now) :: !entries
        end
      done;
      if !entries <> [] then
        Network.send t.net ~src:ad ~dst:nbr ~bytes:(message_bytes !entries) !entries)
    (Network.up_neighbors t.net ad)

let start t =
  for ad = 0 to Graph.n t.graph - 1 do
    advertise t ad
  done

let handle_message t ~at ~from entries =
  Metrics.record_computation (Network.metrics t.net) at ();
  Pr_proto.Probe.computation probe_update t.net ~at ();
  List.iter
    (fun (dst, reachable) ->
      t.nodes.(at).advertisers.(dst).(from) <- reachable;
      rechoose t at dst)
    entries;
  advertise t at

let handle_link t ~at ~link ~up =
  let l = Graph.link t.graph link in
  let nbr = Pr_topology.Link.other_end l at in
  if not up then begin
    Array.iteri
      (fun dst adv ->
        adv.(nbr) <- false;
        rechoose t at dst)
      t.nodes.(at).advertisers;
    Hashtbl.remove t.nodes.(at).sent nbr
  end;
  advertise t at

let reset_node t ~at =
  let node = t.nodes.(at) in
  Array.iter (fun adv -> Array.fill adv 0 (Array.length adv) false) node.advertisers;
  Array.fill node.chosen 0 (Array.length node.chosen) (-1);
  node.chosen.(at) <- at;
  (* Forgetting [sent] resets the NR diff baseline: the next advertise
     re-announces everything the restarted gateway reaches. *)
  Hashtbl.reset node.sent;
  advertise t at

(* {2 Adversarial surface}

   EGP is the paper's cautionary tale: an NR message is a bare list of
   (destination, reachable) claims. Beyond index range there is nothing
   to validate — a flipped bit or an "I reach everything" forgery is
   byte-for-byte indistinguishable from an honest core gateway, and no
   installed state betrays it afterwards ([audit_state] is [None] by
   construction, not laziness). *)

let check_update t ~at:_ ~from:_ entries =
  let n = Graph.n t.graph in
  let rec go = function
    | [] -> Ok ()
    | (dst, _) :: rest ->
      if dst < 0 || dst >= n then
        Error (Printf.sprintf "destination %d out of range" dst)
      else go rest
  in
  go entries

(* Flip one reachability bit: perfectly well-formed. *)
let corrupt_update _t ~rng entries =
  match entries with
  | [] -> None
  | l ->
    let k = Pr_util.Rng.int rng (List.length l) in
    Some (List.mapi (fun i (d, r) -> if i = k then (d, not r) else (d, r)) l)

(* The EGP route leak: claim reachability to every destination. *)
let forge_update t ~origin:_ =
  let n = Graph.n t.graph in
  let entries = List.init n (fun d -> (d, true)) in
  Some (entries, message_bytes entries)

let audit_state _t ~at:_ = None

(* Drop the NR diff baseline toward [at] and re-advertise: [at] gets a
   full restatement; other neighbors see empty diffs and nothing. *)
let resync t ~at ~nbr =
  Hashtbl.remove t.nodes.(nbr).sent at;
  advertise t nbr

let prepare_flow _t _flow = Packet.no_prep

let originate _t _packet = ()

let forward t ~at ~from:_ packet =
  let dst = packet.Packet.flow.Flow.dst in
  if at = dst then Packet.Deliver
  else
    match choice t at dst with
    | None -> Packet.Drop "no route"
    | Some nbr -> Packet.Forward nbr

let table_entries t ad =
  let n = Graph.n t.graph in
  let count = ref 0 in
  for dst = 0 to n - 1 do
    if reaches t ad dst then incr count
  done;
  !count

let next_hop_of t ~at ~dst = if at = dst then None else choice t at dst

(** The AD-level internet: a static undirected multigraph of ADs and
    inter-AD links.

    Dynamic link status (up/down during a simulation) is the business of
    {!Pr_sim}; this structure describes the configured topology.

    Internally the adjacency is CSR (compressed sparse row): flat int
    arrays built once in {!create}, giving O(1) degree, O(log degree)
    {!find_link}/{!link_cost} with the cheapest parallel link
    precomputed, and allocation-free neighbor iteration via
    {!iter_neighbors}/{!iter_neighbor_ids}. The list-returning accessors
    remain for convenience and tests; hot paths should use the
    iterators. *)

type t

val create : Ad.t array -> Link.t array -> t
(** Build a graph. AD ids must equal their array index; link endpoints
    must be valid AD ids.
    @raise Invalid_argument on malformed input. *)

val n : t -> int
(** Number of ADs. *)

val num_links : t -> int

val ad : t -> Ad.id -> Ad.t

val ads : t -> Ad.t array

val link : t -> Link.id -> Link.t

val links : t -> Link.t array

val neighbors : t -> Ad.id -> (Ad.id * Link.id) list
(** Adjacent (neighbor, connecting link) pairs, in increasing neighbor
    order. A pair of ADs connected by parallel links appears once per
    link. *)

val neighbor_ids : t -> Ad.id -> Ad.id list
(** Deduplicated neighbor list. *)

val iter_neighbors : t -> Ad.id -> f:(Ad.id -> Link.id -> unit) -> unit
(** Allocation-free iteration over the AD's (neighbor, link) pairs, in
    increasing (neighbor, link) order — the same pairs {!neighbors}
    returns. *)

val iter_neighbor_ids : t -> Ad.id -> f:(Ad.id -> unit) -> unit
(** Allocation-free iteration over the AD's unique neighbors, in
    increasing order — the same ids {!neighbor_ids} returns. *)

val fold_neighbors : t -> Ad.id -> init:'a -> f:('a -> Ad.id -> Link.id -> 'a) -> 'a
(** Fold over the AD's (neighbor, link) pairs without building a list. *)

val iter_links_between : t -> Ad.id -> Ad.id -> f:(Link.id -> unit) -> unit
(** Iterate every parallel link joining the two ADs, in increasing link
    id order; does nothing when they are not adjacent. *)

val degree : t -> Ad.id -> int

val find_link : t -> Ad.id -> Ad.id -> Link.id option
(** Some link joining the two ADs (the cheapest if parallel), if any.
    O(log degree): binary search plus a precomputed cheapest-link read. *)

val link_cost : t -> Ad.id -> Ad.id -> int
(** Cost of the cheapest link joining the two ADs, or [-1] when they are
    not adjacent. The allocation-free form of {!find_link} for inner
    loops. *)

val is_connected : t -> bool

val has_cycle : t -> bool
(** True when the undirected graph contains a cycle (EGP's forbidden
    configuration, paper §3). *)

val bfs_hops : t -> Ad.id -> int array
(** Hop distances from a source; [-1] marks unreachable ADs. *)

val shortest_path_hops : t -> Ad.id -> Ad.id -> int list option
(** A minimum-hop AD path from source to destination, inclusive. *)

val fold_links : t -> init:'a -> f:('a -> Link.t -> 'a) -> 'a

val count_by_klass : t -> (Ad.klass * int) list

val count_by_level : t -> (Ad.level * int) list

val count_links_by_kind : t -> (Link.kind * int) list

val stub_ids : t -> Ad.id list
(** ADs that may originate/sink traffic but never carry transit
    ([Stub], [Multihomed], and [Hybrid] ADs all host end systems; this
    returns stubs and multihomed stubs only). *)

val host_ids : t -> Ad.id list
(** ADs that host end systems: everything except pure transit ADs. *)

val transit_ids : t -> Ad.id list

val hierarchy_descendants : t -> Ad.id -> Ad.id list
(** The AD's customer cone: itself plus every AD reachable by
    repeatedly following hierarchical links toward strictly lower
    hierarchy levels (backbone → regional → metro → campus). Sorted.
    Used by policy generation: a provider always serves its own
    customers. *)

val pp_summary : Format.formatter -> t -> unit

(* Single-source shortest-path trees over the CSR adjacency: the core
   route-synthesis kernel the scaling benchmark measures. Dijkstra with
   the FIFO-tie-break heap; relaxation streams straight over the packed
   adjacency rows, so the per-edge work is array reads plus at most one
   heap insertion. *)

module Pqueue = Pr_util.Pqueue

type tree = {
  src : Ad.id;
  dist : int array;  (* cost of the shortest route; -1 = unreachable *)
  parent : int array;  (* predecessor on the tree; -1 at the source *)
  first_hop : int array;  (* first AD after the source; -1 at the source *)
}

let tree g ~src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let first_hop = Array.make n (-1) in
  let settled = Array.make n false in
  let best = Array.make n max_int in
  let q = Pqueue.create () in
  best.(src) <- 0;
  Pqueue.add q ~priority:0.0 src;
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (_, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        dist.(u) <- best.(u);
        Graph.iter_neighbors g u ~f:(fun v lid ->
            if not settled.(v) then begin
              let d = best.(u) + (Graph.link g lid).Link.cost in
              if d < best.(v) then begin
                best.(v) <- d;
                parent.(v) <- u;
                first_hop.(v) <- (if u = src then v else first_hop.(u));
                Pqueue.add q ~priority:(float_of_int d) v
              end
            end)
      end;
      drain ()
  in
  drain ();
  { src; dist; parent; first_hop }

let tree_state g ~up ~cost ~src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let first_hop = Array.make n (-1) in
  let cand_parent = Array.make n (-1) in
  let q = Pqueue.Keyed.create ~capacity:n in
  ignore (Pqueue.Keyed.insert_or_decrease q src ~priority:0);
  let rec drain () =
    match Pqueue.Keyed.pop q with
    | None -> ()
    | Some (d, u) ->
      dist.(u) <- d;
      parent.(u) <- cand_parent.(u);
      if u <> src then
        first_hop.(u) <- (if parent.(u) = src then u else first_hop.(parent.(u)));
      Graph.iter_neighbors g u ~f:(fun v lid ->
          if up.(lid) && dist.(v) < 0 then begin
            let c = d + cost.(lid) in
            if Pqueue.Keyed.insert_or_decrease q v ~priority:c then cand_parent.(v) <- u
          end);
      drain ()
  in
  drain ();
  { src; dist; parent; first_hop }

let reachable t =
  Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) (-1) t.dist

let path t dst =
  if t.dist.(dst) < 0 then None
  else begin
    let rec build acc v = if v = t.src then v :: acc else build (v :: acc) t.parent.(v) in
    Some (build [] dst)
  end

(* Hierarchical route synthesis: the compact-routing mode that gets a
   10^5-AD internet inside the runtest budget.

   The paper's two-level structure (§2.1) is turned into an explicit
   clustering: every backbone is its own cluster, every regional AD
   anchors a cluster holding its hierarchical descendants, and anything
   left over (degenerate topologies with no hierarchy) becomes a
   singleton. Routes are then synthesized as cluster-level shortest
   paths stitched together with intra-cluster shortest paths through
   the border ADs — per-AD state drops from O(n) to
   O(#clusters + cluster size) at the price of measured stretch,
   exactly the trade compact interdomain routing proposals make. All
   SPF trees (cluster-level and intra-cluster) are computed lazily and
   memoized, so synthesizing a handful of routes touches a handful of
   ~sqrt(n)-sized trees rather than anything O(n). *)

let dummy_tree = { Spf.src = -1; dist = [||]; parent = [||]; first_hop = [||] }

type t = {
  g : Graph.t;
  cluster_of : int array;
  num_clusters : int;
  members : Ad.id array array;  (* cluster -> member ADs, increasing id *)
  local_index : int array;  (* ad -> its index within members.(cluster) *)
  cluster_graph : Graph.t;
  phys_of_clink : int array;  (* cluster-graph link id -> physical link id *)
  subgraphs : Graph.t array;  (* induced intra-cluster subgraphs *)
  cluster_trees : Spf.tree array;  (* lazily filled; dummy_tree = absent *)
  intra_trees : (int * int, Spf.tree) Hashtbl.t;  (* (cluster, local root) *)
}

let clusters_of_levels g =
  let n = Graph.n g in
  let cl = Array.make n (-1) in
  let next = ref 0 in
  for id = 0 to n - 1 do
    if (Graph.ad g id).Ad.level = Ad.Backbone then begin
      cl.(id) <- !next;
      incr next
    end
  done;
  (* Each regional anchors the cluster of its hierarchical cone;
     multihomed descendants go to whichever cluster reaches them first
     (increasing anchor id, then BFS order — deterministic). *)
  let queue = Queue.create () in
  for id = 0 to n - 1 do
    if cl.(id) < 0 && (Graph.ad g id).Ad.level = Ad.Regional then begin
      let c = !next in
      incr next;
      cl.(id) <- c;
      Queue.clear queue;
      Queue.add id queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let ru = Ad.level_rank (Graph.ad g u).Ad.level in
        Graph.iter_neighbors g u ~f:(fun v lid ->
            if
              cl.(v) < 0
              && (Graph.link g lid).Link.kind = Link.Hierarchical
              && Ad.level_rank (Graph.ad g v).Ad.level > ru
            then begin
              cl.(v) <- c;
              Queue.add v queue
            end)
      done
    end
  done;
  for id = 0 to n - 1 do
    if cl.(id) < 0 then begin
      cl.(id) <- !next;
      incr next
    end
  done;
  cl

let build g ~cluster_of =
  let n = Graph.n g in
  if Array.length cluster_of <> n then
    invalid_arg "Hierarchy.build: cluster_of has wrong length";
  let k = Array.fold_left (fun acc c -> Stdlib.max acc c) (-1) cluster_of + 1 in
  Array.iter
    (fun c -> if c < 0 || c >= k then invalid_arg "Hierarchy.build: cluster ids not dense")
    cluster_of;
  let sizes = Array.make k 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) cluster_of;
  let members = Array.init k (fun c -> Array.make sizes.(c) 0) in
  let local_index = Array.make n 0 in
  let fill = Array.make k 0 in
  for id = 0 to n - 1 do
    let c = cluster_of.(id) in
    members.(c).(fill.(c)) <- id;
    local_index.(id) <- fill.(c);
    fill.(c) <- fill.(c) + 1
  done;
  (* Cluster-level graph: one super-link per adjacent cluster pair,
     realised by the cheapest inter-cluster physical link joining them
     (lowest link id among ties). Parallel physical borders are
     dropped: every consumer — cluster-level Dijkstra, border
     stitching, the smoke's protocol convergence — only ever uses the
     cheapest parallel link, so the multigraph would change nothing
     but the flooding bill. *)
  let cluster_ads =
    Array.init k (fun id ->
        Ad.make ~id ~name:(Printf.sprintf "K%d" id) ~klass:Ad.Transit ~level:Ad.Backbone)
  in
  (* A border is transit-grade when both endpoint ADs may carry
     transit traffic; a stub/multihomed border AD would have to relay
     other people's packets into the next cluster, which its class
     forbids (paper §2.1). Stub-grade borders are kept only for
     cluster pairs with no transit-grade border at all, so cluster
     connectivity matches the multigraph's while the flooding bill for
     cluster-level convergence stays proportional to the transit core. *)
  let transit_border l =
    Ad.is_transit_capable (Graph.ad g l.Link.a) && Ad.is_transit_capable (Graph.ad g l.Link.b)
  in
  let best_transit = Hashtbl.create 256 in
  let best_any = Hashtbl.create 256 in
  for lid = Graph.num_links g - 1 downto 0 do
    let l = Graph.link g lid in
    let ca = cluster_of.(l.Link.a) and cb = cluster_of.(l.Link.b) in
    if ca <> cb then begin
      let key = (Stdlib.min ca cb * k) + Stdlib.max ca cb in
      (* scanning ids downward, so on equal cost the current (lower)
         id wins — replace unless strictly worse *)
      let keep tbl =
        match Hashtbl.find_opt tbl key with
        | None -> true
        | Some prev -> l.Link.cost <= (Graph.link g prev).Link.cost
      in
      if keep best_any then Hashtbl.replace best_any key lid;
      if transit_border l && keep best_transit then Hashtbl.replace best_transit key lid
    end
  done;
  let transit_degree = Array.make k 0 in
  Hashtbl.iter
    (fun key _ ->
      transit_degree.(key / k) <- transit_degree.(key / k) + 1;
      transit_degree.(key mod k) <- transit_degree.(key mod k) + 1)
    best_transit;
  let inter =
    Hashtbl.fold
      (fun key lid acc ->
        match Hashtbl.find_opt best_transit key with
        | Some tlid -> tlid :: acc
        | None ->
          (* stub-grade border: kept only as a rescue, when one side
             has no transit-grade attachment to the cluster level *)
          if transit_degree.(key / k) = 0 || transit_degree.(key mod k) = 0 then lid :: acc
          else acc)
      best_any []
  in
  let phys_of_clink = Array.of_list (List.sort_uniq compare inter) in
  let cluster_links =
    Array.mapi
      (fun i plid ->
        let l = Graph.link g plid in
        Link.make ~id:i ~a:cluster_of.(l.Link.a) ~b:cluster_of.(l.Link.b) ~cost:l.Link.cost
          ~delay:l.Link.delay l.Link.kind)
      phys_of_clink
  in
  let cluster_graph = Graph.create cluster_ads cluster_links in
  (* Induced subgraphs: bucket the intra-cluster links in one pass. *)
  let intra = Array.make k [] in
  for lid = Graph.num_links g - 1 downto 0 do
    let l = Graph.link g lid in
    let c = cluster_of.(l.Link.a) in
    if c = cluster_of.(l.Link.b) then intra.(c) <- l :: intra.(c)
  done;
  let subgraphs =
    Array.init k (fun c ->
        let ads =
          Array.map
            (fun gid ->
              let a = Graph.ad g gid in
              Ad.make ~id:local_index.(gid) ~name:a.Ad.name ~klass:a.Ad.klass
                ~level:a.Ad.level)
            members.(c)
        in
        let links =
          Array.of_list intra.(c)
          |> Array.mapi (fun i (l : Link.t) ->
                 Link.make ~id:i ~a:local_index.(l.Link.a) ~b:local_index.(l.Link.b)
                   ~cost:l.Link.cost ~delay:l.Link.delay l.Link.kind)
        in
        Graph.create ads links)
  in
  {
    g;
    cluster_of;
    num_clusters = k;
    members;
    local_index;
    cluster_graph;
    phys_of_clink;
    subgraphs;
    cluster_trees = Array.make k dummy_tree;
    intra_trees = Hashtbl.create 64;
  }

let num_clusters t = t.num_clusters
let cluster_of t ad = t.cluster_of.(ad)
let cluster_graph t = t.cluster_graph
let members t c = t.members.(c)

let cluster_tree t c =
  let tr = t.cluster_trees.(c) in
  if tr.Spf.src >= 0 then tr
  else begin
    let tr = Spf.tree t.cluster_graph ~src:c in
    t.cluster_trees.(c) <- tr;
    tr
  end

let intra_tree t c local_root =
  match Hashtbl.find_opt t.intra_trees (c, local_root) with
  | Some tr -> tr
  | None ->
    let tr = Spf.tree t.subgraphs.(c) ~src:local_root in
    Hashtbl.add t.intra_trees (c, local_root) tr;
    tr

(* Intra-cluster segment between two member ADs, in global ids. *)
let segment t c from_ad to_ad =
  let tr = intra_tree t c t.local_index.(from_ad) in
  match Spf.path tr t.local_index.(to_ad) with
  | None -> None
  | Some p -> Some (List.map (fun l -> t.members.(c).(l)) p)

exception Unreachable

let route t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let cs = t.cluster_of.(src) and cd = t.cluster_of.(dst) in
    try
      if cs = cd then
        match segment t cs src dst with Some p -> Some p | None -> raise Unreachable
      else begin
        let ct = cluster_tree t cs in
        match Spf.path ct cd with
        | None -> raise Unreachable
        | Some cpath ->
          let acc = ref [] in
          let push v = match !acc with h :: _ when h = v -> () | _ -> acc := v :: !acc in
          let cur = ref src in
          let rec stitch = function
            | c1 :: (c2 :: _ as rest) ->
              let clid =
                match Graph.find_link t.cluster_graph c1 c2 with
                | Some l -> l
                | None -> raise Unreachable
              in
              let l = Graph.link t.g t.phys_of_clink.(clid) in
              let exit_ad, entry_ad =
                if t.cluster_of.(l.Link.a) = c1 then (l.Link.a, l.Link.b)
                else (l.Link.b, l.Link.a)
              in
              (match segment t c1 !cur exit_ad with
              | None -> raise Unreachable
              | Some p -> List.iter push p);
              push entry_ad;
              cur := entry_ad;
              stitch rest
            | _ -> ()
          in
          stitch cpath;
          (match segment t cd !cur dst with
          | None -> raise Unreachable
          | Some p -> List.iter push p);
          Some (List.rev !acc)
      end
    with Unreachable -> None
  end

let route_cost t path =
  let rec go acc = function
    | u :: (v :: _ as rest) ->
      let c = Graph.link_cost t.g u v in
      if c < 0 then -1 else go (acc + c) rest
    | _ -> acc
  in
  go 0 path

let table_entries t ad = t.num_clusters + Array.length t.members.(t.cluster_of.(ad))

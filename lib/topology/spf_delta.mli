(** Incremental single-source shortest-path trees: Ramalingam–Reps
    style tree repair over the CSR adjacency.

    A retained tree carries its own dynamic link state (up flag and
    current cost per link id, initialised from the graph's static
    costs) and repairs itself in O(affected region) per patch instead
    of O(network): only the old subtrees hanging under patched tree
    edges, plus whatever region a cost improvement actually reaches,
    are re-settled. This is the kernel behind the [delta] benchmark and
    the scale smoke; protocol modules use delta-scoped {e invalidation}
    (see [Ls_flood.take_delta]) rather than this kernel directly, so
    that every AD's forwarding state keeps coming from one SPF code
    path.

    Costs must stay >= 1 (patching a cost below 1 raises
    [Invalid_argument]): strictly positive edges keep settle order
    strictly increasing along parent chains, which is what allows
    first hops to be recomputed from the parent at settle time. *)

type t

val create : Graph.t -> src:Ad.id -> t
(** A retained tree rooted at [src], with every link up at its static
    cost. Equivalent to [Spf.tree] at this state. *)

val src : t -> Ad.id

val dist : t -> Ad.id -> int
(** Current shortest distance; -1 = unreachable. *)

val parent : t -> Ad.id -> Ad.id
(** Tree predecessor; -1 at the source and at unreachable nodes. *)

val first_hop : t -> Ad.id -> Ad.id
(** First AD after the source; -1 at the source and unreachable nodes. *)

val link_up : t -> Link.id -> bool

val link_cost : t -> Link.id -> int

val set_link : t -> Link.id -> up:bool -> unit
(** Patch one link up or down and repair. No-op if already in that
    state. *)

val set_cost : t -> Link.id -> cost:int -> unit
(** Patch one link's cost (>= 1) and repair. No-op if unchanged. *)

val node_down : t -> Ad.id -> Link.id list
(** Crash an AD: force all its currently-up incident links down in one
    batched repair. Returns the links taken down, in adjacency order —
    feed them back to {!node_up} on restart (the same bookkeeping the
    simulation runner keeps in [crash_links]). Crashing the source
    leaves [dist src = 0] and everything else unreachable. *)

val node_up : t -> links:Link.id list -> unit
(** Restore links recorded by {!node_down} in one batched repair.
    Links already up are skipped. *)

val to_tree : t -> Spf.tree
(** A detached snapshot (arrays copied). *)

val events : t -> int
(** Number of repairs applied so far. *)

val nodes_repaired : t -> int
(** Total nodes re-settled across all repairs — the "affected region"
    the benchmark compares against n * events for full recomputes. *)

val self_check : t -> (unit, string) result
(** Full structural audit: parent chains sum to recorded distances,
    first hops agree with parents, child lists are consistent, and no
    up link can still relax — which together prove every recorded
    distance is exactly the shortest one under the current link state.
    O(n + links); for tests. *)

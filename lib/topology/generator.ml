module Rng = Pr_util.Rng

type params = {
  backbones : int;
  regionals_per_backbone : int;
  metros_per_regional : int;
  campuses_per_metro : int;
  backbone_mesh : bool;
  lateral_prob : float;
  bypass_prob : float;
  multihoming_prob : float;
  hybrid_fraction : float;
  max_cost : int;
  max_delay : float;
}

let default =
  {
    backbones = 2;
    regionals_per_backbone = 3;
    metros_per_regional = 2;
    campuses_per_metro = 3;
    backbone_mesh = true;
    lateral_prob = 0.3;
    bypass_prob = 0.1;
    multihoming_prob = 0.15;
    hybrid_fraction = 0.5;
    max_cost = 3;
    max_delay = 1.0;
  }

let scaled ~target_ads =
  (* Keep the default fan-outs for regionals and metros and solve for
     the backbone count and campus fan-out so that
     b * (1 + r * (1 + m * (1 + c))) ~ target_ads. *)
  let r = default.regionals_per_backbone and m = default.metros_per_regional in
  let b = Stdlib.max 2 (int_of_float (sqrt (float_of_int target_ads) /. 4.0)) in
  let per_backbone = float_of_int target_ads /. float_of_int b in
  let c =
    int_of_float
      (Float.round
         ((((per_backbone -. 1.0) /. float_of_int r) -. 1.0) /. float_of_int m -. 1.0))
  in
  { default with backbones = b; campuses_per_metro = Stdlib.max 1 c }

(* Mutable builder used by all generators. Streams at 10^5 ADs:
   flat preallocated-from-a-hint arrays (doubled when the hint was
   short) instead of intermediate lists, and an O(1) hashed
   endpoint-pair set instead of scanning the accumulated link list on
   every insertion — link dedup was the quadratic term that dominated
   scenario construction at scale. *)
type builder = {
  mutable names : string array;
  mutable levels : Ad.level array;
  mutable next_ad : int;
  mutable link_a : int array;
  mutable link_b : int array;
  mutable link_kind : Link.kind array;
  mutable link_cost : int array;
  mutable link_delay : float array;
  mutable next_link : int;
  seen : (int, unit) Hashtbl.t;  (* packed endpoint pairs *)
}

let new_builder ?(expect_ads = 16) ?(expect_links = 16) () =
  let na = Stdlib.max expect_ads 1 and nl = Stdlib.max expect_links 1 in
  {
    names = Array.make na "";
    levels = Array.make na Ad.Campus;
    next_ad = 0;
    link_a = Array.make nl 0;
    link_b = Array.make nl 0;
    link_kind = Array.make nl Link.Hierarchical;
    link_cost = Array.make nl 0;
    link_delay = Array.make nl 0.0;
    next_link = 0;
    seen = Hashtbl.create (2 * nl);
  }

let grow a fill = Array.append a (Array.make (Array.length a) fill)

let add_ad b name level =
  let id = b.next_ad in
  if id >= Array.length b.names then begin
    b.names <- grow b.names "";
    b.levels <- grow b.levels Ad.Campus
  end;
  b.names.(id) <- name;
  b.levels.(id) <- level;
  b.next_ad <- id + 1;
  id

(* Unordered endpoint pair packed into one int: ids stay well under
   2^30, so [lo * 2^30 + hi] is injective. *)
let pair_key x y =
  let lo = Stdlib.min x y and hi = Stdlib.max x y in
  (lo lsl 30) lor hi

let link_exists b x y = Hashtbl.mem b.seen (pair_key x y)

let add_link ?(delay = 1.0) b a b' kind cost =
  if a <> b' && not (link_exists b a b') then begin
    let id = b.next_link in
    if id >= Array.length b.link_a then begin
      b.link_a <- grow b.link_a 0;
      b.link_b <- grow b.link_b 0;
      b.link_kind <- grow b.link_kind Link.Hierarchical;
      b.link_cost <- grow b.link_cost 0;
      b.link_delay <- grow b.link_delay 0.0
    end;
    b.link_a.(id) <- a;
    b.link_b.(id) <- b';
    b.link_kind.(id) <- kind;
    b.link_cost.(id) <- cost;
    b.link_delay.(id) <- delay;
    b.next_link <- id + 1;
    Hashtbl.add b.seen (pair_key a b') ()
  end

let rand_cost rng max_cost = if max_cost <= 1 then 1 else Rng.int_in_range rng ~min:1 ~max:max_cost

let rand_delay rng max_delay =
  if max_delay <= 1.0 then 1.0 else 0.5 +. Rng.float rng (max_delay -. 0.5)

(* Finalize: compute klass from level + connectivity, build the graph. *)
let finalize ?(hybrid : Ad.id -> bool = fun _ -> false) b =
  let n = b.next_ad in
  let degree = Array.make n 0 in
  for id = 0 to b.next_link - 1 do
    degree.(b.link_a.(id)) <- degree.(b.link_a.(id)) + 1;
    degree.(b.link_b.(id)) <- degree.(b.link_b.(id)) + 1
  done;
  let ads =
    Array.init n (fun id ->
        let level = b.levels.(id) in
        let klass =
          match (level : Ad.level) with
          | Ad.Backbone | Ad.Regional -> Ad.Transit
          | Ad.Metro -> if hybrid id then Ad.Hybrid else Ad.Transit
          | Ad.Campus -> if degree.(id) > 1 then Ad.Multihomed else Ad.Stub
        in
        Ad.make ~id ~name:b.names.(id) ~klass ~level)
  in
  let links =
    Array.init b.next_link (fun id ->
        Link.make ~id ~a:b.link_a.(id) ~b:b.link_b.(id) ~cost:b.link_cost.(id)
          ~delay:b.link_delay.(id) b.link_kind.(id))
  in
  Graph.create ads links

let generate rng p =
  if p.backbones < 1 then invalid_arg "Generator.generate: need at least one backbone";
  let expect_ads =
    p.backbones
    * (1
      + p.regionals_per_backbone
        * (1 + (p.metros_per_regional * (1 + p.campuses_per_metro))))
  in
  (* hierarchy tree + backbone mesh + worst-case laterals/bypass/multihoming *)
  let expect_links = (2 * expect_ads) + (p.backbones * p.backbones / 2) + 8 in
  let b = new_builder ~expect_ads ~expect_links () in
  let add_link bld x y kind cost =
    add_link ~delay:(rand_delay rng p.max_delay) bld x y kind cost
  in
  let hybrids = Hashtbl.create 16 in
  let backbones =
    List.init p.backbones (fun i -> add_ad b (Printf.sprintf "BB%d" i) Ad.Backbone)
  in
  let regionals = ref [] in
  let metros = ref [] in
  let campuses = ref [] in
  List.iteri
    (fun bi bb ->
      for ri = 0 to p.regionals_per_backbone - 1 do
        let reg = add_ad b (Printf.sprintf "R%d.%d" bi ri) Ad.Regional in
        regionals := reg :: !regionals;
        add_link b bb reg Link.Hierarchical (rand_cost rng p.max_cost);
        for mi = 0 to p.metros_per_regional - 1 do
          let met = add_ad b (Printf.sprintf "M%d.%d.%d" bi ri mi) Ad.Metro in
          metros := met :: !metros;
          if Rng.chance rng p.hybrid_fraction then Hashtbl.replace hybrids met ();
          add_link b reg met Link.Hierarchical (rand_cost rng p.max_cost);
          for ci = 0 to p.campuses_per_metro - 1 do
            let cam = add_ad b (Printf.sprintf "C%d.%d.%d.%d" bi ri mi ci) Ad.Campus in
            campuses := cam :: !campuses;
            add_link b met cam Link.Hierarchical (rand_cost rng p.max_cost)
          done
        done
      done)
    backbones;
  (* Interconnect the backbones. *)
  (match backbones with
  | [] | [ _ ] -> ()
  | _ :: _ :: _ ->
    if p.backbone_mesh then
      List.iteri
        (fun i x ->
          List.iteri
            (fun j y -> if j > i then add_link b x y Link.Lateral (rand_cost rng p.max_cost))
            backbones)
        backbones
    else begin
      let arr = Array.of_list backbones in
      for i = 0 to Array.length arr - 1 do
        add_link b arr.(i) arr.((i + 1) mod Array.length arr) Link.Lateral
          (rand_cost rng p.max_cost)
      done
    end);
  (* Lateral links at each level. *)
  let add_laterals ids =
    let arr = Array.of_list ids in
    if Array.length arr > 1 then
      Array.iter
        (fun x ->
          if Rng.chance rng p.lateral_prob then begin
            let y = Rng.choose_array rng arr in
            if y <> x then add_link b x y Link.Lateral (rand_cost rng p.max_cost)
          end)
        arr
  in
  add_laterals !regionals;
  add_laterals !metros;
  add_laterals !campuses;
  (* Bypass links campus -> backbone, and multihoming campus -> second metro. *)
  let backbone_arr = Array.of_list backbones in
  let metro_arr = Array.of_list !metros in
  List.iter
    (fun cam ->
      if Rng.chance rng p.bypass_prob then
        add_link b cam (Rng.choose_array rng backbone_arr) Link.Bypass
          (rand_cost rng p.max_cost);
      if Array.length metro_arr > 1 && Rng.chance rng p.multihoming_prob then begin
        let met = Rng.choose_array rng metro_arr in
        add_link b cam met Link.Hierarchical (rand_cost rng p.max_cost)
      end)
    !campuses;
  finalize ~hybrid:(Hashtbl.mem hybrids) b

let random_mesh rng ~n ~extra_links =
  if n < 1 then invalid_arg "Generator.random_mesh: n < 1";
  let b = new_builder ~expect_ads:n ~expect_links:(n + extra_links) () in
  let ids = List.init n (fun i -> add_ad b (Printf.sprintf "N%d" i) Ad.Metro) in
  let arr = Array.of_list ids in
  (* Random recursive tree keeps the graph connected. *)
  for i = 1 to n - 1 do
    let parent = Rng.int rng i in
    add_link b arr.(parent) arr.(i) Link.Hierarchical 1
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra_links && !attempts < 50 * (extra_links + 1) do
    incr attempts;
    let x = Rng.int rng n and y = Rng.int rng n in
    if x <> y && not (link_exists b arr.(x) arr.(y)) then begin
      add_link b arr.(x) arr.(y) Link.Lateral 1;
      incr added
    end
  done;
  finalize ~hybrid:(fun _ -> true) b

let ring ~n =
  if n < 3 then invalid_arg "Generator.ring: n < 3";
  let b = new_builder ~expect_ads:n ~expect_links:n () in
  let ids = List.init n (fun i -> add_ad b (Printf.sprintf "N%d" i) Ad.Metro) in
  let arr = Array.of_list ids in
  for i = 0 to n - 1 do
    add_link b arr.(i) arr.((i + 1) mod n) Link.Lateral 1
  done;
  finalize ~hybrid:(fun _ -> true) b

let line ~n =
  if n < 1 then invalid_arg "Generator.line: n < 1";
  let b = new_builder ~expect_ads:n ~expect_links:n () in
  let ids = List.init n (fun i -> add_ad b (Printf.sprintf "N%d" i) Ad.Metro) in
  let arr = Array.of_list ids in
  for i = 0 to n - 2 do
    add_link b arr.(i) arr.(i + 1) Link.Hierarchical 1
  done;
  finalize ~hybrid:(fun _ -> true) b

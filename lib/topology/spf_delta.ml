(* Incremental shortest-path-tree maintenance (Ramalingam–Reps style
   tree repair) over the CSR adjacency.

   A retained tree keeps, besides the dist/parent/first_hop arrays of
   {!Spf.tree}, its own dynamic link state (up + cost per link id) and
   an explicit child structure (first_child/next_sib/prev_sib). A patch
   — link up/down, cost change, node crash/restart — is repaired in
   O(affected region):

   1. Collect the affected set A: for every patched link that is some
      node's tree edge, the whole old subtree under it (walked through
      the child lists, so the cost is |A|, not O(n)).
   2. Seed a decrease-key heap with the best re-attachment offer for
      each node of A from its non-affected neighbors, plus direct
      relaxations through patched links that now offer a strictly
      better distance to nodes outside A (cost decreases and link-ups
      can improve nodes whose old tree is intact).
   3. Run Dijkstra from those seeds. Nodes outside A enter the heap
      only on strict improvement, so the frontier never grows past the
      region whose distances actually change. Settling rewires the
      child lists and recomputes first hops in place; nodes of A that
      never settle have become unreachable.

   The static cheapest-parallel-link index of {!Graph} is bypassed
   throughout — it bakes in static costs, and a patch can flip which
   parallel link is cheapest — so relaxation streams the full
   adjacency rows. Costs must stay >= 1: that keeps settle order
   strictly increasing along parent chains, which is what lets
   first_hop be computed from the parent at settle time. *)

module Keyed = Pr_util.Pqueue.Keyed

type t = {
  g : Graph.t;
  src : Ad.id;
  up : bool array;  (* per link id *)
  cost : int array;  (* per link id; >= 1 *)
  dist : int array;  (* -1 = unreachable *)
  parent : int array;
  parent_link : int array;  (* link id realising the parent edge; -1 at src *)
  first_hop : int array;
  first_child : int array;  (* head of each node's child list; -1 = none *)
  next_sib : int array;
  prev_sib : int array;
  (* repair scratch, generation-stamped so repairs never rescan the
     whole graph to reset state *)
  q : Keyed.t;
  affected : int array;
  settled_gen : int array;
  mutable gen : int;
  cand_parent : int array;
  cand_link : int array;
  stack : int array;
  touched : int array;
  mutable touched_len : int;
  mutable events : int;
  mutable nodes_repaired : int;
}

let src t = t.src
let dist t v = t.dist.(v)
let parent t v = t.parent.(v)
let first_hop t v = t.first_hop.(v)
let link_up t lid = t.up.(lid)
let link_cost t lid = t.cost.(lid)
let events t = t.events
let nodes_repaired t = t.nodes_repaired

(* --- child list maintenance ---------------------------------------- *)

(* Remove [v] from its current parent's child list. Must run before
   [t.parent.(v)] is overwritten. *)
let unlink t v =
  let p = t.parent.(v) in
  if p >= 0 then begin
    let prev = t.prev_sib.(v) and next = t.next_sib.(v) in
    if prev >= 0 then t.next_sib.(prev) <- next else t.first_child.(p) <- next;
    if next >= 0 then t.prev_sib.(next) <- prev;
    t.prev_sib.(v) <- -1;
    t.next_sib.(v) <- -1
  end

let link_child t ~parent:p v =
  let head = t.first_child.(p) in
  t.next_sib.(v) <- head;
  if head >= 0 then t.prev_sib.(head) <- v;
  t.prev_sib.(v) <- -1;
  t.first_child.(p) <- v

(* --- construction --------------------------------------------------- *)

let create g ~src =
  let n = Graph.n g in
  let nl = Graph.num_links g in
  let t =
    {
      g;
      src;
      up = Array.make (Stdlib.max nl 1) true;
      cost = Array.init (Stdlib.max nl 1) (fun lid ->
          if lid < nl then (Graph.link g lid).Link.cost else 1);
      dist = Array.make n (-1);
      parent = Array.make n (-1);
      parent_link = Array.make n (-1);
      first_hop = Array.make n (-1);
      first_child = Array.make n (-1);
      next_sib = Array.make n (-1);
      prev_sib = Array.make n (-1);
      q = Keyed.create ~capacity:n;
      affected = Array.make n 0;
      settled_gen = Array.make n 0;
      gen = 0;
      cand_parent = Array.make n (-1);
      cand_link = Array.make n (-1);
      stack = Array.make n 0;
      touched = Array.make n 0;
      touched_len = 0;
      events = 0;
      nodes_repaired = 0;
    }
  in
  (* Initial full Dijkstra, wiring the child lists as nodes settle. *)
  ignore (Keyed.insert_or_decrease t.q src ~priority:0);
  let rec drain () =
    match Keyed.pop t.q with
    | None -> ()
    | Some (d, u) ->
      t.dist.(u) <- d;
      if u <> src then begin
        let p = t.cand_parent.(u) in
        t.parent.(u) <- p;
        t.parent_link.(u) <- t.cand_link.(u);
        link_child t ~parent:p u;
        t.first_hop.(u) <- (if p = src then u else t.first_hop.(p))
      end;
      Graph.iter_neighbors g u ~f:(fun v lid ->
          if t.dist.(v) < 0 then begin
            let c = d + t.cost.(lid) in
            if Keyed.insert_or_decrease t.q v ~priority:c then begin
              t.cand_parent.(v) <- u;
              t.cand_link.(v) <- lid
            end
          end);
      drain ()
  in
  drain ();
  t

(* --- repair ---------------------------------------------------------- *)

(* Mark the whole old subtree under [root] as affected and record it in
   [touched]. Marks happen at push time so shared descendants of nested
   patched edges are walked once. *)
let collect_subtree t root =
  if t.affected.(root) <> t.gen then begin
    t.affected.(root) <- t.gen;
    let sp = ref 1 in
    t.stack.(0) <- root;
    while !sp > 0 do
      decr sp;
      let v = t.stack.(!sp) in
      t.touched.(t.touched_len) <- v;
      t.touched_len <- t.touched_len + 1;
      let c = ref t.first_child.(v) in
      while !c >= 0 do
        if t.affected.(!c) <> t.gen then begin
          t.affected.(!c) <- t.gen;
          t.stack.(!sp) <- !c;
          incr sp
        end;
        c := t.next_sib.(!c)
      done
    done
  end

let offer t y ~cand ~cand_parent ~cand_link =
  if Keyed.insert_or_decrease t.q y ~priority:cand then begin
    t.cand_parent.(y) <- cand_parent;
    t.cand_link.(y) <- cand_link
  end

(* One direction of a patched link: a valid, unaffected [u] may now
   reach [v] more cheaply than v's retained distance. *)
let relax_changed t u v lid =
  if t.affected.(u) <> t.gen && t.settled_gen.(u) <> t.gen && t.dist.(u) >= 0 then begin
    let cand = t.dist.(u) + t.cost.(lid) in
    let improves =
      if t.affected.(v) = t.gen || t.dist.(v) < 0 then true else cand < t.dist.(v)
    in
    if improves then offer t v ~cand ~cand_parent:u ~cand_link:lid
  end

let apply t changed =
  t.gen <- t.gen + 1;
  t.touched_len <- 0;
  t.events <- t.events + 1;
  (* Phase 1: invalidated subtrees. A patched link matters structurally
     only if it is someone's tree edge (cost decrease included: the
     whole subtree's distances shift). *)
  List.iter
    (fun lid ->
      let l = Graph.link t.g lid in
      let child =
        if t.parent_link.(l.Link.a) = lid then l.Link.a
        else if t.parent_link.(l.Link.b) = lid then l.Link.b
        else -1
      in
      if child >= 0 then collect_subtree t child)
    changed;
  (* Phase 2a: best re-attachment offer for each affected node from the
     intact part of the tree. *)
  for i = 0 to t.touched_len - 1 do
    let x = t.touched.(i) in
    Graph.iter_neighbors t.g x ~f:(fun y lid ->
        if t.up.(lid) && t.affected.(y) <> t.gen && t.dist.(y) >= 0 then
          offer t x ~cand:(t.dist.(y) + t.cost.(lid)) ~cand_parent:y ~cand_link:lid)
  done;
  (* Phase 2b: patched links that now improve nodes outside the
     affected set (cost decreases, link up, restored node). *)
  List.iter
    (fun lid ->
      if t.up.(lid) then begin
        let l = Graph.link t.g lid in
        relax_changed t l.Link.a l.Link.b lid;
        relax_changed t l.Link.b l.Link.a lid
      end)
    changed;
  (* Phase 3: Dijkstra restricted to the changing region. *)
  let rec drain () =
    match Keyed.pop t.q with
    | None -> ()
    | Some (d, x) ->
      t.settled_gen.(x) <- t.gen;
      if t.parent.(x) >= 0 then unlink t x;
      t.dist.(x) <- d;
      let p = t.cand_parent.(x) in
      t.parent.(x) <- p;
      t.parent_link.(x) <- t.cand_link.(x);
      link_child t ~parent:p x;
      t.first_hop.(x) <- (if p = t.src then x else t.first_hop.(p));
      t.nodes_repaired <- t.nodes_repaired + 1;
      Graph.iter_neighbors t.g x ~f:(fun y lid ->
          if t.up.(lid) && t.settled_gen.(y) <> t.gen then begin
            let c = d + t.cost.(lid) in
            let improves =
              if t.affected.(y) = t.gen || t.dist.(y) < 0 then true else c < t.dist.(y)
            in
            if improves then offer t y ~cand:c ~cand_parent:x ~cand_link:lid
          end);
      drain ()
  in
  drain ();
  (* Phase 4: affected nodes that never settled are now unreachable. *)
  for i = 0 to t.touched_len - 1 do
    let x = t.touched.(i) in
    if t.settled_gen.(x) <> t.gen then begin
      if t.parent.(x) >= 0 then unlink t x;
      t.parent.(x) <- -1;
      t.parent_link.(x) <- -1;
      t.dist.(x) <- -1;
      t.first_hop.(x) <- -1
    end
  done

(* --- patch entry points --------------------------------------------- *)

let set_link t lid ~up =
  if t.up.(lid) <> up then begin
    t.up.(lid) <- up;
    apply t [ lid ]
  end

let set_cost t lid ~cost =
  if cost < 1 then invalid_arg "Spf_delta.set_cost: cost must be >= 1";
  if t.cost.(lid) <> cost then begin
    t.cost.(lid) <- cost;
    apply t [ lid ]
  end

let node_down t ad =
  let taken = ref [] in
  Graph.iter_neighbors t.g ad ~f:(fun _ lid ->
      if t.up.(lid) then begin
        t.up.(lid) <- false;
        taken := lid :: !taken
      end);
  let taken = List.rev !taken in
  if taken <> [] then apply t taken;
  taken

let node_up t ~links =
  let raised = List.filter (fun lid -> not t.up.(lid)) links in
  List.iter (fun lid -> t.up.(lid) <- true) raised;
  if raised <> [] then apply t raised

(* --- views & checking ------------------------------------------------ *)

let to_tree t =
  {
    Spf.src = t.src;
    dist = Array.copy t.dist;
    parent = Array.copy t.parent;
    first_hop = Array.copy t.first_hop;
  }

let self_check t =
  let n = Graph.n t.g in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    if t.dist.(t.src) <> 0 then raise (Bad "source distance not 0");
    if t.parent.(t.src) >= 0 then raise (Bad "source has a parent");
    for v = 0 to n - 1 do
      if v <> t.src then
        if t.dist.(v) < 0 then begin
          if t.parent.(v) >= 0 then raise (Bad (Printf.sprintf "unreachable %d has parent" v));
          if t.first_hop.(v) >= 0 then
            raise (Bad (Printf.sprintf "unreachable %d has first hop" v));
          if t.first_child.(v) >= 0 then
            raise (Bad (Printf.sprintf "unreachable %d has children" v))
        end
        else begin
          let p = t.parent.(v) and lid = t.parent_link.(v) in
          if p < 0 || lid < 0 then raise (Bad (Printf.sprintf "reachable %d lacks parent" v));
          if not t.up.(lid) then raise (Bad (Printf.sprintf "%d's tree edge is down" v));
          let l = Graph.link t.g lid in
          if not ((l.Link.a = v && l.Link.b = p) || (l.Link.a = p && l.Link.b = v)) then
            raise (Bad (Printf.sprintf "%d's tree edge does not join it to its parent" v));
          if t.dist.(v) <> t.dist.(p) + t.cost.(lid) then
            raise (Bad (Printf.sprintf "%d's distance is not parent + edge" v));
          let expect = if p = t.src then v else t.first_hop.(p) in
          if t.first_hop.(v) <> expect then
            raise (Bad (Printf.sprintf "%d's first hop disagrees with its parent's" v));
          (* exactly one membership in the parent's child list *)
          let count = ref 0 in
          let c = ref t.first_child.(p) in
          while !c >= 0 do
            if !c = v then incr count;
            c := t.next_sib.(!c)
          done;
          if !count <> 1 then
            raise (Bad (Printf.sprintf "%d appears %d times in its parent's child list" v !count))
        end
    done;
    (* No relaxable edge remains: together with the parent-sum check
       above this proves every recorded distance is exactly the
       shortest one under the current up/cost state. *)
    for lid = 0 to Graph.num_links t.g - 1 do
      if t.up.(lid) then begin
        let l = Graph.link t.g lid in
        let check u v =
          if t.dist.(u) >= 0 then
            if t.dist.(v) < 0 || t.dist.(v) > t.dist.(u) + t.cost.(lid) then
              raise (Bad (Printf.sprintf "link %d still relaxes %d -> %d" lid u v))
        in
        check l.Link.a l.Link.b;
        check l.Link.b l.Link.a
      end
    done;
    Ok ()
  with Bad msg -> fail "%s" msg

type t = Ad.id list

let source = function
  | [] -> invalid_arg "Path.source: empty path"
  | x :: _ -> x

let rec destination = function
  | [] -> invalid_arg "Path.destination: empty path"
  | [ x ] -> x
  | _ :: rest -> destination rest

let hops p = Stdlib.max 0 (List.length p - 1)

let is_loop_free p =
  let sorted = List.sort compare p in
  let rec no_dup = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
  in
  no_dup sorted

let cost g p =
  let rec sum acc = function
    | [] | [ _ ] -> Some acc
    | a :: (b :: _ as rest) -> (
      match Graph.find_link g a b with
      | None -> None
      | Some lid -> sum (acc + (Graph.link g lid).Link.cost) rest)
  in
  sum 0 p

let is_valid g p =
  match p with
  | [] -> false
  | _ -> is_loop_free p && cost g p <> None

let transit_ads = function
  | [] | [ _ ] -> []
  | _ :: rest -> (
    match List.rev rest with
    | [] -> []
    | _ :: interior_rev -> List.rev interior_rev)

let pp ppf p =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
    Format.pp_print_int ppf p

let to_string p = String.concat "->" (List.map string_of_int p)

let equal a b = a = b

let enumerate_simple g ~src ~dst ~max_hops ?(edge_ok = fun _ _ -> true)
    ?(node_ok = fun _ -> true) ?(limit = 10_000) () =
  let results = ref [] in
  let count = ref 0 in
  let on_path = Array.make (Graph.n g) false in
  (* DFS over neighbors in increasing id order for determinism. *)
  let rec go u prefix_rev depth =
    if !count < limit then
      if u = dst then begin
        incr count;
        results := List.rev (dst :: prefix_rev) :: !results
      end
      else if depth < max_hops then
        Graph.iter_neighbor_ids g u ~f:(fun v ->
            if (not on_path.(v)) && edge_ok u v && (v = dst || node_ok v) then begin
              on_path.(v) <- true;
              go v (u :: prefix_rev) (depth + 1);
              on_path.(v) <- false
            end)
  in
  if src = dst then [ [ src ] ]
  else begin
    on_path.(src) <- true;
    go src [] 0;
    List.rev !results
  end

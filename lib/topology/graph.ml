(* The hot-path representation is CSR (compressed sparse row): the
   adjacency of every AD is a contiguous slice of two flat int arrays,
   sorted by (neighbor, link id). A second, parallel CSR over *unique*
   neighbors carries, per (AD, neighbor) pair, the slice of parallel
   links joining them and the precomputed cheapest one, so that
   [find_link]/[link_cost] are a binary search plus an array read and
   neighbor iteration never allocates. Built once in [create]; the
   graph is immutable afterwards (dynamic link status lives in
   [Pr_sim.Network]). *)

type t = {
  ads : Ad.t array;
  links : Link.t array;
  (* Full adjacency: row [i] spans slots [off.(i) .. off.(i+1) - 1] of
     [adj_nbr]/[adj_link], one slot per incident link (parallel links
     appear once each), sorted by (neighbor, link id). *)
  off : int array;
  adj_nbr : int array;
  adj_link : int array;
  (* Unique-neighbor index: row [i] spans [uoff.(i) .. uoff.(i+1) - 1]
     of [uniq_nbr], sorted. Slot [k]'s parallel-link group spans
     [uniq_first.(k) .. uniq_first.(k + 1) - 1] of the full adjacency
     ([uniq_first] has one trailing sentinel), and [uniq_best.(k)] is
     the cheapest link of the group (lowest id among ties). *)
  uoff : int array;
  uniq_nbr : int array;
  uniq_first : int array;
  uniq_best : int array;
}

let create ads links =
  let n = Array.length ads in
  Array.iteri
    (fun i (a : Ad.t) ->
      if a.Ad.id <> i then invalid_arg "Graph.create: AD id must equal its index")
    ads;
  Array.iteri
    (fun i (l : Link.t) ->
      if l.Link.id <> i then invalid_arg "Graph.create: link id must equal its index";
      if l.Link.a < 0 || l.Link.a >= n || l.Link.b < 0 || l.Link.b >= n then
        invalid_arg "Graph.create: link endpoint out of range")
    links;
  let num_links = Array.length links in
  let slots = 2 * num_links in
  let off = Array.make (n + 1) 0 in
  Array.iter
    (fun (l : Link.t) ->
      off.(l.Link.a) <- off.(l.Link.a) + 1;
      off.(l.Link.b) <- off.(l.Link.b) + 1)
    links;
  let total = ref 0 in
  for i = 0 to n do
    let d = off.(i) in
    off.(i) <- !total;
    if i < n then total := !total + d
  done;
  let adj_nbr = Array.make slots 0 in
  let adj_link = Array.make slots 0 in
  (* Place each endpoint, encoding (neighbor, link) as one int so the
     per-row sort is a monomorphic int sort. Link ids stay below
     [num_links], so the encoding never collides. *)
  let enc = Array.make slots 0 in
  let cursor = Array.copy off in
  let place x nbr lid =
    enc.(cursor.(x)) <- (nbr * (num_links + 1)) + lid;
    cursor.(x) <- cursor.(x) + 1
  in
  Array.iter
    (fun (l : Link.t) ->
      place l.Link.a l.Link.b l.Link.id;
      place l.Link.b l.Link.a l.Link.id)
    links;
  let uniq_count = ref 0 in
  for i = 0 to n - 1 do
    let s = off.(i) and e = off.(i + 1) in
    if e - s > 1 then begin
      let row = Array.sub enc s (e - s) in
      Array.sort Int.compare row;
      Array.blit row 0 enc s (e - s)
    end;
    let prev = ref (-1) in
    for k = s to e - 1 do
      let nbr = enc.(k) / (num_links + 1) in
      adj_nbr.(k) <- nbr;
      adj_link.(k) <- enc.(k) mod (num_links + 1);
      if nbr <> !prev then begin
        incr uniq_count;
        prev := nbr
      end
    done
  done;
  let uoff = Array.make (n + 1) 0 in
  let uniq_nbr = Array.make !uniq_count 0 in
  let uniq_first = Array.make (!uniq_count + 1) slots in
  let uniq_best = Array.make !uniq_count 0 in
  let u = ref 0 in
  for i = 0 to n - 1 do
    uoff.(i) <- !u;
    let prev = ref (-1) in
    for k = off.(i) to off.(i + 1) - 1 do
      let nbr = adj_nbr.(k) and lid = adj_link.(k) in
      if nbr <> !prev then begin
        uniq_nbr.(!u) <- nbr;
        uniq_first.(!u) <- k;
        uniq_best.(!u) <- lid;
        incr u;
        prev := nbr
      end
      else if links.(lid).Link.cost < links.(uniq_best.(!u - 1)).Link.cost then
        uniq_best.(!u - 1) <- lid
    done
  done;
  uoff.(n) <- !u;
  { ads; links; off; adj_nbr; adj_link; uoff; uniq_nbr; uniq_first; uniq_best }

let n t = Array.length t.ads

let num_links t = Array.length t.links

let ad t i = t.ads.(i)

let ads t = t.ads

let link t i = t.links.(i)

let links t = t.links

let iter_neighbors t i ~f =
  for k = t.off.(i) to t.off.(i + 1) - 1 do
    f t.adj_nbr.(k) t.adj_link.(k)
  done

let iter_neighbor_ids t i ~f =
  for k = t.uoff.(i) to t.uoff.(i + 1) - 1 do
    f t.uniq_nbr.(k)
  done

let fold_neighbors t i ~init ~f =
  let acc = ref init in
  for k = t.off.(i) to t.off.(i + 1) - 1 do
    acc := f !acc t.adj_nbr.(k) t.adj_link.(k)
  done;
  !acc

let neighbors t i =
  let acc = ref [] in
  for k = t.off.(i + 1) - 1 downto t.off.(i) do
    acc := (t.adj_nbr.(k), t.adj_link.(k)) :: !acc
  done;
  !acc

let neighbor_ids t i =
  let acc = ref [] in
  for k = t.uoff.(i + 1) - 1 downto t.uoff.(i) do
    acc := t.uniq_nbr.(k) :: !acc
  done;
  !acc

let degree t i = t.off.(i + 1) - t.off.(i)

(* Index into the unique-neighbor row of [x] holding [y], or -1. *)
let uniq_slot t x y =
  let lo = ref t.uoff.(x) and hi = ref (t.uoff.(x + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.uniq_nbr.(mid) in
    if v = y then found := mid else if v < y then lo := mid + 1 else hi := mid - 1
  done;
  !found

let find_link t x y =
  let k = uniq_slot t x y in
  if k < 0 then None else Some t.uniq_best.(k)

let link_cost t x y =
  let k = uniq_slot t x y in
  if k < 0 then -1 else t.links.(t.uniq_best.(k)).Link.cost

let iter_links_between t x y ~f =
  let k = uniq_slot t x y in
  if k >= 0 then
    for s = t.uniq_first.(k) to t.uniq_first.(k + 1) - 1 do
      f t.adj_link.(s)
    done

let bfs_hops t src =
  let n = n t in
  let dist = Array.make n (-1) in
  let queue = Array.make (Stdlib.max n 1) 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(src) <- 0;
  queue.(!tail) <- src;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    for k = t.off.(u) to t.off.(u + 1) - 1 do
      let v = t.adj_nbr.(k) in
      if dist.(v) < 0 then begin
        dist.(v) <- dist.(u) + 1;
        queue.(!tail) <- v;
        incr tail
      end
    done
  done;
  dist

let is_connected t =
  if n t = 0 then true
  else begin
    let dist = bfs_hops t 0 in
    Array.for_all (fun d -> d >= 0) dist
  end

let has_cycle t =
  (* Undirected cycle detection via DFS with parent-link tracking:
     seeing a visited vertex through a link other than the one we
     arrived by means a cycle (parallel links count). *)
  let visited = Array.make (n t) false in
  let found = ref false in
  let rec dfs u via_link =
    visited.(u) <- true;
    iter_neighbors t u ~f:(fun v lid ->
        if lid <> via_link then
          if visited.(v) then found := true else dfs v lid)
  in
  for i = 0 to n t - 1 do
    if not visited.(i) then dfs i (-1)
  done;
  !found

let shortest_path_hops t src dst =
  let n = n t in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let queue = Array.make (Stdlib.max n 1) 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(src) <- 0;
  queue.(!tail) <- src;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    for k = t.off.(u) to t.off.(u + 1) - 1 do
      let v = t.adj_nbr.(k) in
      if dist.(v) < 0 then begin
        dist.(v) <- dist.(u) + 1;
        parent.(v) <- u;
        queue.(!tail) <- v;
        incr tail
      end
    done
  done;
  if dist.(dst) < 0 then None
  else begin
    let rec build acc v = if v = src then src :: acc else build (v :: acc) parent.(v) in
    Some (build [] dst)
  end

let fold_links t ~init ~f = Array.fold_left f init t.links

let count_by pred_list extract =
  List.map
    (fun key -> (key, List.length (List.filter (fun x -> extract x = key) pred_list)))

let count_by_klass t =
  let all = Array.to_list t.ads in
  count_by all (fun (a : Ad.t) -> a.Ad.klass) [ Ad.Stub; Ad.Multihomed; Ad.Transit; Ad.Hybrid ]

let count_by_level t =
  let all = Array.to_list t.ads in
  count_by all (fun (a : Ad.t) -> a.Ad.level) [ Ad.Backbone; Ad.Regional; Ad.Metro; Ad.Campus ]

let count_links_by_kind t =
  let all = Array.to_list t.links in
  count_by all (fun (l : Link.t) -> l.Link.kind) [ Link.Hierarchical; Link.Lateral; Link.Bypass ]

let ids_where t pred =
  Array.to_list t.ads |> List.filter pred |> List.map (fun (a : Ad.t) -> a.Ad.id)

let stub_ids t =
  ids_where t (fun a ->
      match a.Ad.klass with
      | Ad.Stub | Ad.Multihomed -> true
      | Ad.Transit | Ad.Hybrid -> false)

let host_ids t =
  ids_where t (fun a ->
      match a.Ad.klass with
      | Ad.Stub | Ad.Multihomed | Ad.Hybrid -> true
      | Ad.Transit -> false)

let transit_ids t =
  ids_where t (fun a ->
      match a.Ad.klass with
      | Ad.Transit | Ad.Hybrid -> true
      | Ad.Stub | Ad.Multihomed -> false)

let hierarchy_descendants t root =
  let seen = Array.make (n t) false in
  let rec go u =
    if not seen.(u) then begin
      seen.(u) <- true;
      iter_neighbors t u ~f:(fun v lid ->
          let l = t.links.(lid) in
          if
            l.Link.kind = Link.Hierarchical
            && Ad.level_rank t.ads.(v).Ad.level > Ad.level_rank t.ads.(u).Ad.level
          then go v)
    end
  in
  go root;
  let acc = ref [] in
  for i = n t - 1 downto 0 do
    if seen.(i) then acc := i :: !acc
  done;
  !acc

let pp_summary ppf t =
  Format.fprintf ppf "%d ADs, %d links;" (n t) (num_links t);
  List.iter
    (fun (k, c) -> if c > 0 then Format.fprintf ppf " %d %s" c (Ad.klass_to_string k))
    (count_by_klass t);
  Format.fprintf ppf ";";
  List.iter
    (fun (k, c) -> if c > 0 then Format.fprintf ppf " %d %s" c (Link.kind_to_string k))
    (count_links_by_kind t)

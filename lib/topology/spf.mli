(** Route synthesis kernel: single-source shortest-path trees computed
    directly over the CSR adjacency.

    This is the allocation-light Dijkstra the scaling benchmark drives
    at 10^2..10^4 ADs; protocol modules keep their own SPFs (they run
    over distributed databases, not the ground-truth graph). *)

type tree = {
  src : Ad.id;
  dist : int array;  (** cost of the shortest route; -1 = unreachable *)
  parent : int array;  (** predecessor on the tree; -1 at the source *)
  first_hop : int array;  (** first AD after the source; -1 at the source *)
}

val tree : Graph.t -> src:Ad.id -> tree
(** The shortest-path tree rooted at [src], over static link costs
    (cheapest parallel link wins, as everywhere else). *)

val reachable : tree -> int
(** Destinations with a route, excluding the source itself. *)

val path : tree -> Ad.id -> Path.t option
(** The tree route from the source to [dst]. *)

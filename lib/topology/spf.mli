(** Route synthesis kernel: single-source shortest-path trees computed
    directly over the CSR adjacency.

    This is the allocation-light Dijkstra the scaling benchmark drives
    at 10^2..10^4 ADs; protocol modules keep their own SPFs (they run
    over distributed databases, not the ground-truth graph). *)

type tree = {
  src : Ad.id;
  dist : int array;  (** cost of the shortest route; -1 = unreachable *)
  parent : int array;  (** predecessor on the tree; -1 at the source *)
  first_hop : int array;  (** first AD after the source; -1 at the source *)
}

val tree : Graph.t -> src:Ad.id -> tree
(** The shortest-path tree rooted at [src], over static link costs
    (cheapest parallel link wins, as everywhere else). *)

val tree_state : Graph.t -> up:bool array -> cost:int array -> src:Ad.id -> tree
(** From-scratch shortest-path tree under explicit dynamic link state:
    [up.(lid)] gates each link, [cost.(lid)] overrides its static cost.
    Iterates the full parallel-link adjacency (the precomputed
    cheapest-parallel-link index assumes static costs, so it cannot be
    used here). This is the reference the incremental kernel in
    {!Spf_delta} is checked against, and the full-recompute arm of the
    delta benchmark. Distances are uniquely determined; among
    equal-cost predecessors the recorded parent is the first to reach
    the best distance, so only [dist] is comparable across kernels. *)

val reachable : tree -> int
(** Destinations with a route, excluding the source itself. *)

val path : tree -> Ad.id -> Path.t option
(** The tree route from the source to [dst]. *)

(** Hierarchical (compact) route synthesis over an explicit clustering
    of the AD internet.

    Backbones are singleton clusters, each regional AD anchors the
    cluster of its hierarchical cone (multihomed descendants go to the
    first cluster that reaches them), and anything untouched by the
    hierarchy becomes a singleton. A route is a cluster-level shortest
    path stitched with intra-cluster shortest paths through border ADs:
    per-AD routing state shrinks from O(n) to
    O(#clusters + own cluster size) — about 2*sqrt(n) on the paper's
    topology class — in exchange for bounded, measured stretch. Since
    clusters partition the ADs and every stitched sub-path is simple,
    synthesized routes are loop-free by construction.

    All SPF trees involved are lazy and memoized: synthesizing one
    route computes at most one cluster-level tree plus one intra-cluster
    tree per cluster traversed. *)

type t

val clusters_of_levels : Graph.t -> int array
(** The level-derived clustering described above: a dense cluster id
    per AD. Deterministic for a given graph. *)

val build : Graph.t -> cluster_of:int array -> t
(** Precompute cluster memberships, the cluster-level graph and the
    induced intra-cluster subgraphs. The cluster level keeps one
    super-link per adjacent cluster pair — the cheapest inter-cluster
    physical link whose two border ADs are both transit-capable. A
    stub/multihomed border would have to relay foreign traffic into
    the next cluster, which its class forbids (paper §2.1), so
    stub-grade borders survive only as a rescue for clusters with no
    transit-grade attachment at all. [cluster_of] must assign every AD
    a dense id in [0, k).
    @raise Invalid_argument otherwise. *)

val num_clusters : t -> int

val cluster_of : t -> Ad.id -> int

val cluster_graph : t -> Graph.t
(** The cluster-level graph (cluster ids are its AD ids). This is
    what the 10^5-AD smoke actually converges a link-state protocol
    over: ~sqrt(n) nodes stand in for the full internet, as in the
    paper's two-level synthesis argument. *)

val members : t -> int -> Ad.id array
(** Member ADs of a cluster, in increasing id order. Not a copy — do
    not mutate. *)

val route : t -> src:Ad.id -> dst:Ad.id -> Path.t option
(** The stitched hierarchical route, as global AD ids. [None] only when
    the destination's cluster is unreachable at the cluster level. *)

val route_cost : t -> Path.t -> int
(** Cost of a synthesized route under the same metric as {!Spf}
    (cheapest parallel link per hop); -1 if adjacent route members are
    not actually adjacent in the graph. Divide by [Spf.tree] distance
    to get the stretch. *)

val table_entries : t -> Ad.id -> int
(** Routing-table size for one AD in hierarchical mode: one entry per
    cluster plus one per member of its own cluster. *)

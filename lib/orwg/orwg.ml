module Graph = Pr_topology.Graph
module Path = Pr_topology.Path
module Network = Pr_sim.Network
module Metrics = Pr_sim.Metrics
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Policy_term = Pr_policy.Policy_term
module Transit_policy = Pr_policy.Transit_policy
module Source_policy = Pr_policy.Source_policy
module Policy_store = Pr_policy.Policy_store
module Lru = Pr_util.Lru
module Packet = Pr_proto.Packet
module Cost_model = Pr_proto.Cost_model
module Lsdb = Pr_proto.Lsdb
module Ls_flood = Pr_proto.Ls_flood
module Policy_route = Pr_proto.Policy_route
module Design_point = Pr_proto.Design_point

let probe_synth = Pr_proto.Probe.make "orwg.synth"
let probe_validate = Pr_proto.Probe.make "orwg.validate"

type message = Lsdb.lsa

module type VARIANT = sig
  val name : string

  val use_handles : bool

  val pg_capacity : int option
  (** Bound on setup-state entries per policy gateway; [None] =
      unbounded. When a bounded gateway evicts the least recently used
      handle, later packets on that handle are dropped at the gateway,
      which notifies the source to re-set-up (the state-management
      limitation of paper §6). *)

  val pr_capacity : int option
  (** Bound on policy routes cached per route server; [None] =
      unbounded. Same LRU policy as the gateway handle tables: under
      sustained churn an unbounded route cache grows without limit, so
      the deployable variants bound it and count evictions in
      {!Pr_sim.Metrics}. *)

  val setup_retries : int
  (** How many times the route server re-synthesizes around an AD that
      refused a setup (stale databases make refusals possible). *)

  val delegate_stub_route_servers : bool
  (** Database distribution strategy (paper section 6): when true, LSAs
      flood only among transit-capable ADs; stub sources delegate route
      synthesis to their provider's route server (two extra control
      messages per synthesis). *)

  val prune_synthesis : bool
  (** Synthesis heuristic (paper section 6): search valley-free routes
      first, falling back to the exhaustive search only when the
      hierarchy-shaped candidate space has no legal route. *)
end

module type S = sig
  include Pr_proto.Protocol_intf.PROTOCOL with type message = message

  val max_route_hops : int

  val cached_route :
    t -> src:Pr_topology.Ad.id -> dst:Pr_topology.Ad.id -> Flow.t -> Path.t option

  val precompute_flows : t -> Flow.t list -> int

  val pg_entries : t -> Pr_topology.Ad.id -> int

  val route_cache_entries : t -> Pr_topology.Ad.id -> int

  val validations : t -> Pr_topology.Ad.id -> int

  val evictions : t -> Pr_topology.Ad.id -> int

  val route_evictions : t -> Pr_topology.Ad.id -> int

  val set_policy : t -> Transit_policy.t -> unit

  val current_policy : t -> Pr_topology.Ad.id -> Transit_policy.t

  val route_server_of : t -> Pr_topology.Ad.id -> Pr_topology.Ad.id

  val db_entries : t -> Pr_topology.Ad.id -> int
end

module Make (V : VARIANT) = struct
  type nonrec message = message

  let max_route_hops = 12

  type pg_entry = {
    prev : Pr_topology.Ad.id option;  (* AD the packet must arrive from *)
    next : Pr_topology.Ad.id option;  (* AD to hand the packet to; None = deliver *)
  }

  type pr_entry = { path : Path.t; handle : int }

  (* Both per-node caches are LRU ({!Pr_util.Lru}): the policy
     gateway's handle table was always evict-least-recently-used when
     bounded, and the route server's cache now shares the same policy
     instead of growing without limit under sustained churn. Eviction
     counts live in the Lru structures (lifetime counters surviving
     [reset_node]) and are mirrored into {!Pr_sim.Metrics}. *)
  type node = {
    (* Route server: (dst, class) -> installed policy route. *)
    pr_cache : (int * int, pr_entry) Lru.t;
    (* Policy gateway: handle -> cached setup state. *)
    pg_cache : (int, pg_entry) Lru.t;
    mutable validations : int;
  }

  type t = {
    graph : Graph.t;
    config : Config.t;
    net : message Network.t;
    flood : Ls_flood.t;
    nodes : node array;
    (* Live local policies (paper section 2.3: policies change,
       slowly). A private version-keyed store over the configuration:
       [set_policy] mutates it, the rest of the internet learns the
       replacement from the re-originated LSA. Private — a shared
       {!Policy_store.of_config} store must never see mutations. *)
    store : Policy_store.t;
    (* The route server each AD uses: itself, or its provider under
       stub delegation. *)
    route_server : Pr_topology.Ad.id array;
    (* Hierarchy ranks for the valley-first synthesis heuristic. *)
    ranks : int array;
    mutable next_handle : int;
  }

  let name = V.name

  let design_point =
    Design_point.make Design_point.Link_state Design_point.Source_routing
      Design_point.Policy_terms

  (* Does the route server's database still support this path? Used to
     invalidate cached policy routes when LSAs arrive. *)
  let path_supported db ~n flow path =
    let e = Policy_route.engine db ~n flow in
    let rec ok prev = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) ->
        Lsdb.bidirectional db a b <> None
        && (prev = None || Policy_route.admits e a ~prev ~next:(Some b))
        && ok (Some a) rest
    in
    match path with
    | [] -> false
    | first :: _ -> first = flow.Flow.src && ok None path

  let create graph config net =
    let n = Graph.n graph in
    let store = Policy_store.create config in
    let terms_for ad = (Policy_store.transit store ad).Transit_policy.terms in
    let transit_capable ad = Pr_topology.Ad.is_transit_capable (Graph.ad graph ad) in
    let flood =
      if V.delegate_stub_route_servers then
        Ls_flood.create net ~terms_for ~flood_to:transit_capable ()
      else Ls_flood.create net ~terms_for ()
    in
    let route_server =
      Array.init n (fun ad ->
          if (not V.delegate_stub_route_servers) || transit_capable ad then ad
          else
            (* First transit-capable neighbor: the provider. Stubs in
               generated and Figure-1 topologies always have one. *)
            match
              List.find_opt transit_capable (Graph.neighbor_ids graph ad)
            with
            | Some provider -> provider
            | None -> ad)
    in
    let t =
      {
        graph;
        config;
        net;
        flood;
        store;
        route_server;
        ranks =
          Array.map
            (fun (a : Pr_topology.Ad.t) -> Pr_topology.Ad.level_rank a.Pr_topology.Ad.level)
            (Graph.ads graph);
        nodes =
          Array.init n (fun _ ->
              {
                pr_cache = Lru.create ~capacity:V.pr_capacity ();
                pg_cache = Lru.create ~capacity:V.pg_capacity ();
                validations = 0;
              });
        next_handle = 1;
      }
    in
    Ls_flood.set_on_change flood (fun ad ~origin ->
        (* Route servers adapt: drop cached routes the new database no
           longer supports. PG setup state is NOT flushed — stale
           gateway state is a real cost of the architecture (§6).
           The revalidation is delta-scoped: a change to one origin's
           LSA can only invalidate routes that origin sits on —
           adjacency support and transit admission are both decided by
           the LSAs of the path's own members — so only those entries
           are rechecked ([None] = database reset, recheck all). *)
        let node = t.nodes.(ad) in
        let touches entry =
          match origin with None -> true | Some o -> List.mem o entry.path
        in
        let stale =
          Lru.fold node.pr_cache ~init:[]
            ~f:(fun acc ((dst, class_idx) as key) entry ->
              if not (touches entry) then acc
              else begin
                let qos = Pr_policy.Qos.of_index (class_idx / Pr_policy.Uci.count) in
                let uci = Pr_policy.Uci.of_index (class_idx mod Pr_policy.Uci.count) in
                let flow = Flow.make ~src:ad ~dst ~qos ~uci () in
                if path_supported (Ls_flood.db t.flood ad) ~n flow entry.path then acc
                else key :: acc
              end)
        in
        List.iter (Lru.remove node.pr_cache) stale);
    t

  (* The AD's live transit policy: whatever the private store holds
     (the configured policy until [set_policy] replaces it). *)
  let local_policy t ad = Policy_store.transit t.store ad

  (* Compiled check against the live local policy — the allocation-free
     fast path for setup validation and per-packet gateway checks. *)
  let local_allows t ad ctx = Policy_store.allows t.store ad ctx

  let set_policy t (policy : Transit_policy.t) =
    let ad = policy.Transit_policy.owner in
    Policy_store.set_transit t.store ad policy;
    (* Re-originate so the new terms flood; until the flood completes,
       remote route servers are stale and their setups may be refused
       (and retried around the refusal). *)
    Ls_flood.handle_link t.flood ~at:ad ~up:true

  let start t = Ls_flood.start t.flood

  let handle_message t ~at ~from lsa = Ls_flood.handle_message t.flood ~at ~from lsa

  let handle_link t ~at ~link:_ ~up = Ls_flood.handle_link t.flood ~at ~up

  let reset_node t ~at =
    let node = t.nodes.(at) in
    (* Route server and policy gateway state are both lost: cached
       policy routes and handle setup state vanish. Sources forwarding
       on a vanished handle are notified and re-set-up — the
       data-driven repair of §5.4. Counters survive (they are
       lifetime gauges, not routing state). *)
    Lru.clear node.pr_cache;
    Lru.clear node.pg_cache;
    Ls_flood.reset_node t.flood at

  (* Route synthesis at the source's route server. The source applies
     its own selection criteria privately (§5.4: "it can keep these
     policies private from other ADS"). *)
  let query_bytes = Cost_model.update_fixed_bytes + 8

  let response_bytes path =
    Cost_model.update_fixed_bytes + (Cost_model.ad_id_bytes * List.length path)

  let synthesize ?(extra_avoid = []) t (flow : Flow.t) =
    let src = flow.Flow.src in
    let server = t.route_server.(src) in
    let n = Graph.n t.graph in
    let db = Ls_flood.db t.flood server in
    let engine = Policy_route.engine db ~n flow in
    let policy = Config.source t.config src in
    let avoid = extra_avoid @ policy.Source_policy.avoid in
    let charge_delegation path =
      if server <> src then begin
        (* The stub queries its provider's route server and receives
           the synthesized route back. *)
        Metrics.record_send (Network.metrics t.net) src ~bytes:query_bytes;
        Metrics.record_send (Network.metrics t.net) server
          ~bytes:(response_bytes (Option.value ~default:[] path))
      end
    in
    let shortest () =
      let path, work =
        if V.prune_synthesis then
          Policy_route.shortest_pruned engine ~ranks:t.ranks ~avoid ()
        else Policy_route.shortest engine ~avoid ()
      in
      Metrics.record_computation (Network.metrics t.net) server ~work ();
      Pr_proto.Probe.computation probe_synth t.net ~at:server ~work ();
      charge_delegation path;
      path
    in
    if policy.Source_policy.prefer = [] && policy.Source_policy.max_hops = None then
      shortest ()
    else begin
      (* Preferences require a candidate set to choose from. *)
      let candidates =
        Policy_route.enumerate engine ~max_hops:max_route_hops ~limit:500 ()
        |> List.filter (fun p ->
               List.for_all
                 (fun ad -> not (List.mem ad (Path.transit_ads p)))
                 extra_avoid)
      in
      Metrics.record_computation (Network.metrics t.net) server
        ~work:(Stdlib.max 1 (List.length candidates))
        ();
      Pr_proto.Probe.computation probe_synth t.net ~at:server
        ~work:(Stdlib.max 1 (List.length candidates))
        ();
      match Source_policy.best policy t.graph candidates with
      | Some path ->
        charge_delegation (Some path);
        Some path
      | None -> shortest ()
    end

  (* Install setup state at a gateway; a bounded full cache evicts its
     least recently used handle, counted in Metrics. *)
  let pg_install t ad handle entry =
    match Lru.put t.nodes.(ad).pg_cache handle entry with
    | Some _victim -> Metrics.record_eviction (Network.metrics t.net) ad ()
    | None -> ()

  (* The setup packet walks the route; each policy gateway validates
     against its LOCAL policy terms and caches the state under the
     handle. Returns the refusing AD on failure. *)
  let setup t (flow : Flow.t) path =
    let handle = t.next_handle in
    t.next_handle <- handle + 1;
    let rec validate prev = function
      | [] -> Ok ()
      | ad :: rest ->
        let next =
          match rest with
          | [] -> None
          | next_ad :: _ -> Some next_ad
        in
        let is_endpoint = ad = flow.Flow.src || ad = flow.Flow.dst in
        let admitted =
          is_endpoint || local_allows t ad { Policy_term.flow; prev; next }
        in
        if not admitted then Error ad
        else begin
          Metrics.record_computation (Network.metrics t.net) ad ();
          Pr_proto.Probe.computation probe_validate t.net ~at:ad ();
          if next <> None || ad = flow.Flow.dst then
            pg_install t ad handle { prev; next };
          validate (Some ad) rest
        end
    in
    match validate None path with
    | Ok () -> Ok handle
    | Error ad ->
      (* Roll back state installed before the refusal. *)
      List.iter (fun a -> Lru.remove t.nodes.(a).pg_cache handle) path;
      Error ad

  let setup_costs path =
    let route_len = List.length path in
    let bytes = Cost_model.setup_packet_bytes ~route_len ~pt_count:(Stdlib.max 0 (route_len - 2)) in
    (Path.hops path, bytes)

  let install t (flow : Flow.t) =
    (* A gateway may refuse a setup the source's (possibly stale)
       database considered legal; the route server then re-synthesizes
       around the refusing AD, a bounded number of times. *)
    let rec attempt refusers tries =
      match synthesize ~extra_avoid:refusers t flow with
      | None -> Error "no policy route"
      | Some path -> (
        match setup t flow path with
        | Ok handle ->
          let key = (flow.Flow.dst, Flow.class_key flow) in
          (match Lru.put t.nodes.(flow.Flow.src).pr_cache key { path; handle } with
          | Some _victim ->
            Metrics.record_eviction (Network.metrics t.net) flow.Flow.src ()
          | None -> ());
          Ok path
        | Error ad ->
          if tries > 0 then attempt (ad :: refusers) (tries - 1)
          else Error (Printf.sprintf "setup refused at AD %d" ad))
    in
    attempt [] V.setup_retries

  (* Adversarial surface: delegated to the shared flood. Ownership is
     the invariant checked on terms — [set_policy] mutates transit
     policies live, so content cannot be compared against the static
     configuration. *)

  let check_update t ~at ~from:_ lsa = Ls_flood.check_lsa t.flood ~at lsa

  let corrupt_update t ~rng lsa = Ls_flood.corrupt_lsa t.flood ~rng lsa

  let forge_update t ~origin = Ls_flood.forge_lsa t.flood origin

  let audit_state t ~at = Ls_flood.audit_db t.flood ~at

  let resync t ~at ~nbr = Ls_flood.resync t.flood ~at ~nbr

  let prepare_flow t (flow : Flow.t) =
    if flow.Flow.src = flow.Flow.dst then Packet.no_prep
    else begin
      let key = (flow.Flow.dst, Flow.class_key flow) in
      let cached =
        match Lru.find t.nodes.(flow.Flow.src).pr_cache key with
        | Some entry
          when V.delegate_stub_route_servers
               && not
                    (path_supported
                       (Ls_flood.db t.flood t.route_server.(flow.Flow.src))
                       ~n:(Graph.n t.graph) flow entry.path) ->
          (* A delegated stub's own (empty) database never triggers the
             on_change revalidation, so it checks against its server's
             database on use. *)
          Lru.remove t.nodes.(flow.Flow.src).pr_cache key;
          None
        | c -> c
      in
      match cached with
      | Some _ -> { Packet.no_prep with cache_hit = true }
      | None -> (
        match install t flow with
        | Error reason -> { Packet.no_prep with failure = Some reason }
        | Ok path ->
          let hops, bytes = setup_costs path in
          { Packet.setup_hops = hops; setup_bytes = bytes; cache_hit = false; failure = None })
    end

  let precompute_flows t flows =
    List.fold_left
      (fun acc flow ->
        if flow.Flow.src = flow.Flow.dst then acc
        else begin
          let key = (flow.Flow.dst, Flow.class_key flow) in
          if Lru.mem t.nodes.(flow.Flow.src).pr_cache key then acc
          else
            match install t flow with
            | Ok _ -> acc + 1
            | Error _ -> acc
        end)
      0 flows

  let originate t packet =
    let flow = packet.Packet.flow in
    if flow.Flow.src <> flow.Flow.dst then begin
      let key = (flow.Flow.dst, Flow.class_key flow) in
      match Lru.find t.nodes.(flow.Flow.src).pr_cache key with
      | None -> ()
      | Some entry ->
        if V.use_handles then begin
          packet.Packet.handle <- Some entry.handle;
          packet.Packet.header_bytes <-
            Cost_model.base_header_bytes + Cost_model.handle_bytes
        end
        else begin
          packet.Packet.source_route <- Some entry.path;
          packet.Packet.header_bytes <-
            Cost_model.base_header_bytes
            + Cost_model.source_route_bytes (List.length entry.path)
        end
    end

  let rec successor_on path at =
    match path with
    | [] | [ _ ] -> None
    | x :: (y :: _ as rest) -> if x = at then Some y else successor_on rest at

  let forward t ~at ~from packet =
    let flow = packet.Packet.flow in
    if at = flow.Flow.dst then Packet.Deliver
    else if V.use_handles then begin
      match packet.Packet.handle with
      | None -> Packet.Drop "no policy-route handle"
      | Some handle -> (
        match Lru.find t.nodes.(at).pg_cache handle with
        | None ->
          (* Evicted (or never installed): drop, and notify the source
             so its next packet re-sets-up — modelling the gateway's
             error report back to the route server. *)
          let key = (flow.Flow.dst, Flow.class_key flow) in
          (match Lru.peek t.nodes.(flow.Flow.src).pr_cache key with
          | Some entry when entry.handle = handle ->
            Lru.remove t.nodes.(flow.Flow.src).pr_cache key
          | _ -> ());
          Packet.Drop "no setup state for handle (evicted)"
        | Some entry ->
          let node = t.nodes.(at) in
          node.validations <- node.validations + 1;
          if entry.prev <> from then Packet.Drop "PG validation failed (wrong previous AD)"
          else (
            match entry.next with
            | Some next -> Packet.Forward next
            | None -> Packet.Drop "setup state ends before destination"))
    end
    else begin
      match packet.Packet.source_route with
      | None -> Packet.Drop "no source route"
      | Some path -> (
        match successor_on path at with
        | None -> Packet.Drop "not on the source route"
        | Some next ->
          t.nodes.(at).validations <- t.nodes.(at).validations + 1;
          let is_endpoint = at = flow.Flow.src in
          let admitted =
            is_endpoint
            || local_allows t at { Policy_term.flow; prev = from; next = Some next }
          in
          if admitted then Packet.Forward next
          else Packet.Drop "policy refused at gateway")
    end

  let table_entries t ad =
    Ls_flood.db_entries t.flood ad
    + Lru.length t.nodes.(ad).pr_cache
    + Lru.length t.nodes.(ad).pg_cache

  let cached_route t ~src ~dst flow =
    match Lru.peek t.nodes.(src).pr_cache (dst, Flow.class_key flow) with
    | None -> None
    | Some entry -> Some entry.path

  let pg_entries t ad = Lru.length t.nodes.(ad).pg_cache

  let route_cache_entries t ad = Lru.length t.nodes.(ad).pr_cache

  let validations t ad = t.nodes.(ad).validations

  let evictions t ad = Lru.evictions t.nodes.(ad).pg_cache

  let route_evictions t ad = Lru.evictions t.nodes.(ad).pr_cache

  let current_policy t ad = local_policy t ad

  let route_server_of t ad = t.route_server.(ad)

  let db_entries t ad = Ls_flood.db_entries t.flood ad
end

module Orwg = Make (struct
  let name = "orwg"

  let use_handles = true

  let pg_capacity = None

  let pr_capacity = Some 512

  let setup_retries = 2

  let delegate_stub_route_servers = false

  let prune_synthesis = false
end)

module No_handles = Make (struct
  let name = "orwg-no-handles"

  let use_handles = false

  let pg_capacity = None

  let pr_capacity = Some 512

  let setup_retries = 2

  let delegate_stub_route_servers = false

  let prune_synthesis = false
end)

module Delegated = Make (struct
  let name = "orwg-delegated"

  let use_handles = true

  let pg_capacity = None

  let pr_capacity = Some 512

  let setup_retries = 2

  let delegate_stub_route_servers = true

  let prune_synthesis = false
end)

module Pruned = Make (struct
  let name = "orwg-pruned"

  let use_handles = true

  let pg_capacity = None

  let pr_capacity = Some 512

  let setup_retries = 2

  let delegate_stub_route_servers = false

  let prune_synthesis = true
end)

module Bounded_pg (C : sig
  val capacity : int
end) =
Make (struct
  let name = Printf.sprintf "orwg-pg%d" C.capacity

  let use_handles = true

  let pg_capacity = Some C.capacity

  let pr_capacity = Some 512

  let setup_retries = 2

  let delegate_stub_route_servers = false

  let prune_synthesis = false
end)

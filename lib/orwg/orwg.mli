(** The ORWG / Clark policy-routing architecture (paper §5.4.1) — the
    design the paper recommends: link state, source routing, explicit
    Policy Terms.

    Mechanics implemented here, following §5.4.1:

    - {b Flooding}: ADs flood LSAs carrying their adjacencies and
      Policy Terms; each AD's {e Route Server} holds the full policy
      topology.
    - {b Route synthesis}: the source's route server computes a policy
      route — honoring the source's own (private!) selection criteria —
      either on demand at first use or by precomputation
      ({!precompute_flows}, experiment E7).
    - {b Setup}: the first packet toward a (destination, policy class)
      carries the full source route plus the Policy Term each transit
      AD is expected to honor; each AD's {e policy gateway} validates
      the route against its local terms and caches the setup state
      under a fresh {e handle}.
    - {b Handles}: subsequent data packets carry only the 4-byte
      handle; PGs validate per packet that the packet arrives from the
      AD recorded at setup ("is it coming from the AD specified in the
      cached PT setup information").

    The [No_handles] variant carries the full source route in every
    packet — the header-overhead comparison of experiment E6. *)

type message = Pr_proto.Lsdb.lsa

module type VARIANT = sig
  val name : string

  val use_handles : bool

  val pg_capacity : int option
  (** Bound on setup-state entries per policy gateway; [None] =
      unbounded. A bounded gateway evicts its least recently used handle
      on overflow; packets arriving on an evicted handle are dropped and
      the gateway's error report makes the source re-set-up — the state
      management limitation of paper section 6, measured in experiment
      E11. *)

  val pr_capacity : int option
  (** Bound on policy routes cached per route server; [None] =
      unbounded. Bounded caches use the same LRU eviction policy as the
      gateway handle tables, and evictions are mirrored into
      {!Pr_sim.Metrics} eviction counts. *)

  val setup_retries : int
  (** How many times the route server re-synthesizes around an AD that
      refused a setup (stale databases make refusals possible). *)

  val delegate_stub_route_servers : bool
  (** Database distribution strategy (paper section 6, open issue 2):
      when true, LSAs flood only among transit-capable ADs — stubs hold
      no databases — and a stub source delegates route synthesis to its
      provider's route server, paying a query/response message pair per
      synthesis. Compared against full flooding in experiment E13. *)

  val prune_synthesis : bool
  (** Synthesis heuristic (paper section 6, open issue 1): search
      valley-free routes first ({!Pr_proto.Policy_route.shortest_pruned}),
      falling back to the exhaustive search when the hierarchy-shaped
      candidate space has no legal route. Compared in experiment E7. *)
end

module type S = sig
  include Pr_proto.Protocol_intf.PROTOCOL with type message = message

  val max_route_hops : int
  (** Hop bound used by the route server's candidate enumeration. *)

  val cached_route :
    t -> src:Pr_topology.Ad.id -> dst:Pr_topology.Ad.id -> Pr_policy.Flow.t -> Pr_topology.Path.t option
  (** The policy route currently cached by the source's route server
      for this flow's class, if any. *)

  val precompute_flows : t -> Pr_policy.Flow.t list -> int
  (** Synthesize and set up routes for the given flows ahead of
      traffic (the precomputation strategy of §6/E7). Returns how many
      routes were successfully installed. *)

  val pg_entries : t -> Pr_topology.Ad.id -> int
  (** Policy-gateway setup-state entries held at the AD (the state
      management concern of §6). *)

  val route_cache_entries : t -> Pr_topology.Ad.id -> int
  (** Policy routes cached by the AD's route server. *)

  val validations : t -> Pr_topology.Ad.id -> int
  (** Per-packet PG validations performed at the AD. *)

  val evictions : t -> Pr_topology.Ad.id -> int
  (** Setup-state entries evicted at the AD (bounded gateways only). *)

  val route_evictions : t -> Pr_topology.Ad.id -> int
  (** Policy routes evicted from the AD's route-server cache (bounded
      route caches only). *)

  val set_policy : t -> Pr_policy.Transit_policy.t -> unit
  (** Replace an AD's transit policy at runtime (paper section 2.3:
      policies change, slowly). The AD's gateways enforce the new terms
      immediately and a fresh LSA floods them; until that flood
      completes, remote route servers hold stale terms, their setups
      can be refused, and the refusal-retry logic re-synthesizes around
      the refusing AD. *)

  val current_policy : t -> Pr_topology.Ad.id -> Pr_policy.Transit_policy.t
  (** The AD's live transit policy (override or configured). *)

  val route_server_of : t -> Pr_topology.Ad.id -> Pr_topology.Ad.id
  (** The AD whose route server computes for this AD: itself, or its
      provider under stub delegation. *)

  val db_entries : t -> Pr_topology.Ad.id -> int
  (** Link-state database entries held at the AD (0-ish at stubs under
      delegation). *)
end

module Make (V : VARIANT) : S

module Orwg : S
(** Handles on data packets (the full architecture). *)

module No_handles : S
(** Every data packet carries the complete source route. *)

module Delegated : S
(** Scoped flooding + stub route-server delegation (the database
    distribution strategy of experiment E13). *)

module Pruned : S
(** Valley-first route synthesis (the pruning heuristic of
    experiment E7). *)

module Bounded_pg (C : sig
  val capacity : int
end) : S
(** Handles, with at most [capacity] setup-state entries per policy
    gateway (LRU eviction) — the ablation of experiment E11. *)

module Graph = Pr_topology.Graph
module Link = Pr_topology.Link
module Ad = Pr_topology.Ad
module Network = Pr_sim.Network
module Metrics = Pr_sim.Metrics
module Flow = Pr_policy.Flow
module Qos = Pr_policy.Qos
module Policy_term = Pr_policy.Policy_term
module Transit_policy = Pr_policy.Transit_policy
module Config = Pr_policy.Config
module Packet = Pr_proto.Packet
module Cost_model = Pr_proto.Cost_model
module Design_point = Pr_proto.Design_point

let probe_update = Pr_proto.Probe.make "ecma.update"

(* Unreachability sentinel. Unlike plain DV, ECMA never counts toward
   it (the down_only/mixed dependency graph is acyclic), so it only
   needs to exceed any legitimate per-QOS path metric — the Low_delay
   metric accumulates ~10 per hop. *)
let infinity_metric = 100_000

type update_entry = {
  qos : Qos.t;
  dest : Pr_topology.Ad.id;
  metric : int;
  gone_down : bool;
}

type message = update_entry list

(* Distributed Bellman-Ford with the ECMA up/down rule. Each node keeps
   the last vector heard from each neighbor; a neighbor's contribution
   lands in exactly one of two tables determined by the (strict) link
   direction:

   - [down_only]: routes learned from neighbors BELOW us — the packet
     path descends all the way. Only these may be advertised upward.
   - [mixed]: routes learned from neighbors ABOVE us — the packet path
     climbs first.

   Because only down_only is advertised up, down_only at a node depends
   only on down_only strictly below it, and mixed only on tables
   strictly above: the dependency graph is acyclic, so there is no
   count-to-infinity — the property §5.1.1 claims for the partial
   ordering. *)
type node = {
  heard : (Pr_topology.Ad.id, int array) Hashtbl.t;  (* [qos * n + dest] *)
  down_only : int array array;  (* [qos][dest] metric *)
  down_hop : int array array;
  mixed : int array array;
  mixed_hop : int array array;
}

type t = {
  graph : Graph.t;
  config : Config.t;
  net : message Network.t;
  nodes : node array;
  rank : int array;  (* strict global ordering; smaller = higher *)
}

let name = "ecma"

let design_point =
  Design_point.make Design_point.Distance_vector Design_point.Hop_by_hop
    Design_point.In_topology

(* Both advertisement gates run per (qos, dest, neighbor) during
   convergence: probe the shared compiled store (one QOS-union mask
   check / one bitset probe per term) instead of re-interpreting the
   term lists. *)
let supports_qos config ad q =
  let store = Pr_policy.Policy_store.of_config config in
  Pr_policy.Compiled.supports_qos (Pr_policy.Policy_store.compiled store ad) q

let dest_allowed config ad dest q =
  let store = Pr_policy.Policy_store.of_config config in
  Pr_policy.Compiled.dest_allowed (Pr_policy.Policy_store.compiled store ad) dest q

let create graph config net =
  let n = Graph.n graph in
  let make_tables () = Array.init Qos.count (fun _ -> Array.make n infinity_metric) in
  let make_hops () = Array.init Qos.count (fun _ -> Array.make n (-1)) in
  let nodes =
    Array.init n (fun ad ->
        let node =
          {
            heard = Hashtbl.create 8;
            down_only = make_tables ();
            down_hop = make_hops ();
            mixed = make_tables ();
            mixed_hop = make_hops ();
          }
        in
        Array.iter (fun row -> row.(ad) <- 0) node.down_only;
        Array.iter (fun row -> row.(ad) <- ad) node.down_hop;
        node)
  in
  let rank =
    Array.map (fun (a : Ad.t) -> (Ad.level_rank a.Ad.level * n) + a.Ad.id) (Graph.ads graph)
  in
  { graph; config; net; nodes; rank }

let is_down_step t ~from_ad ~to_ad = t.rank.(to_ad) > t.rank.(from_ad)

let message_bytes entries =
  Cost_model.update_fixed_bytes + ((Cost_model.dv_entry_bytes + 2) * List.length entries)

(* Per-QOS metric of the (cheapest) link between neighbors — ECMA's
   per-QOS FIBs route on per-QOS metrics, exactly as §5.1.1's multiple
   Forwarding Information Bases describe. *)
let link_metric t q x y =
  match Graph.find_link t.graph x y with
  | None -> None
  | Some lid ->
    let l = Graph.link t.graph lid in
    Some (Pr_proto.Qos_metric.metric q ~cost:l.Link.cost ~delay:l.Link.delay)

(* Recompute the table the neighbor class feeds for (qos, dest); true
   when the entry changed. [lower] selects the down_only table (fed by
   neighbors below us). *)
let recompute t ad ~lower qi dest =
  if dest = ad then false
  else begin
    let n = Graph.n t.graph in
    let node = t.nodes.(ad) in
    let best = ref infinity_metric and via = ref (-1) in
    Network.iter_up_neighbors t.net ad ~f:(fun nbr ->
        if is_down_step t ~from_ad:ad ~to_ad:nbr = lower then
          match
            (Hashtbl.find_opt node.heard nbr, link_metric t (Qos.of_index qi) ad nbr)
          with
          | Some heard, Some cost ->
            let candidate = Stdlib.min (heard.((qi * n) + dest) + cost) infinity_metric in
            if candidate < !best then begin
              best := candidate;
              via := nbr
            end
          | _ -> ());
    let table, hops = if lower then (node.down_only, node.down_hop) else (node.mixed, node.mixed_hop) in
    let changed = table.(qi).(dest) <> !best in
    table.(qi).(dest) <- !best;
    hops.(qi).(dest) <- (if !best >= infinity_metric then -1 else !via);
    changed
  end

(* What [ad] advertises to [nbr] for (qos, dest), or None when gated by
   the policy projection. *)
let advertised_entry t ad nbr q dest =
  let qi = Qos.index q in
  let node = t.nodes.(ad) in
  let gate_ok =
    dest = ad || (supports_qos t.config ad q && dest_allowed t.config ad dest q)
  in
  if not gate_ok then None
  else if is_down_step t ~from_ad:ad ~to_ad:nbr then begin
    (* Downward advertisement: best of both routes. *)
    let d = node.down_only.(qi).(dest) and m = node.mixed.(qi).(dest) in
    Some { qos = q; dest; metric = Stdlib.min d m; gone_down = m < d }
  end
  else
    (* Upward advertisement: the up/down rule permits only all-down
       routes. *)
    Some { qos = q; dest; metric = node.down_only.(qi).(dest); gone_down = false }

let advertise t ad pairs =
  if pairs <> [] then
    Network.iter_up_neighbors t.net ad ~f:(fun nbr ->
        let entries =
          List.filter_map (fun (q, dest) -> advertised_entry t ad nbr q dest) pairs
        in
        if entries <> [] then
          Network.send t.net ~src:ad ~dst:nbr ~bytes:(message_bytes entries) entries)

let all_pairs t =
  List.concat_map (fun q -> List.init (Graph.n t.graph) (fun dest -> (q, dest))) Qos.all

let start t =
  for ad = 0 to Graph.n t.graph - 1 do
    advertise t ad (all_pairs t)
  done

let heard_table t ad nbr =
  let node = t.nodes.(ad) in
  match Hashtbl.find_opt node.heard nbr with
  | Some table -> table
  | None ->
    let table = Array.make (Qos.count * Graph.n t.graph) infinity_metric in
    Hashtbl.replace node.heard nbr table;
    table

let handle_message t ~at ~from entries =
  Metrics.record_computation (Network.metrics t.net) at ();
  Pr_proto.Probe.computation probe_update t.net ~at ();
  let n = Graph.n t.graph in
  let heard = heard_table t at from in
  (* [from] below us feeds down_only; above us feeds mixed. *)
  let lower = is_down_step t ~from_ad:at ~to_ad:from in
  let changed = ref [] in
  List.iter
    (fun e ->
      if e.dest <> at then begin
        let qi = Qos.index e.qos in
        heard.((qi * n) + e.dest) <- Stdlib.min e.metric infinity_metric;
        if recompute t at ~lower qi e.dest then changed := (e.qos, e.dest) :: !changed
      end)
    entries;
  advertise t at (List.sort_uniq compare !changed)

let handle_link t ~at ~link ~up =
  let l = Graph.link t.graph link in
  let nbr = Link.other_end l at in
  if up then advertise t at (all_pairs t)
  else begin
    Hashtbl.remove t.nodes.(at).heard nbr;
    let lower = is_down_step t ~from_ad:at ~to_ad:nbr in
    let changed =
      List.filter
        (fun (q, dest) -> recompute t at ~lower (Qos.index q) dest)
        (all_pairs t)
    in
    advertise t at changed
  end

let reset_node t ~at =
  let node = t.nodes.(at) in
  Hashtbl.reset node.heard;
  let clear_metrics rows = Array.iter (fun row -> Array.fill row 0 (Array.length row) infinity_metric) rows in
  let clear_hops rows = Array.iter (fun row -> Array.fill row 0 (Array.length row) (-1)) rows in
  clear_metrics node.down_only;
  clear_hops node.down_hop;
  clear_metrics node.mixed;
  clear_hops node.mixed_hop;
  Array.iter (fun row -> row.(at) <- 0) node.down_only;
  Array.iter (fun row -> row.(at) <- at) node.down_hop;
  advertise t at (all_pairs t)

(* {2 Adversarial surface}

   ECMA's updates carry (qos, dest) claims gated by the sender's own
   configured Policy Terms ([advertised_entry]), so — unlike DV/EGP —
   a receiver can check policy consistency: an entry for a (qos, dest)
   the sender's terms do not admit can only come from a liar. This is
   the checkable-content half of the paper's mutual-suspicion argument,
   realized in the weakest of the four §5 designs. *)

(* Would an honest [from] ever advertise this entry? Exactly the
   [advertised_entry] gate, evaluated with the {e sender's} terms. *)
let entry_allowed t ~from e =
  e.dest = from || (supports_qos t.config from e.qos && dest_allowed t.config from e.dest e.qos)

let check_update t ~at:_ ~from entries =
  let n = Graph.n t.graph in
  let rec go = function
    | [] -> Ok ()
    | e :: rest ->
      if e.dest < 0 || e.dest >= n then
        Error (Printf.sprintf "destination %d out of range" e.dest)
      else if e.metric < 0 || e.metric > infinity_metric then
        Error
          (Printf.sprintf "metric %d for destination %d outside [0,%d]"
             e.metric e.dest infinity_metric)
      else if not (entry_allowed t ~from e) then
        Error
          (Printf.sprintf
             "ad %d advertised (%s, %d) its own policy terms forbid" from
             (Qos.to_string e.qos) e.dest)
      else go rest
  in
  go entries

let corrupt_update _t ~rng entries =
  match entries with
  | [] -> None
  | l ->
    let k = Pr_util.Rng.int rng (List.length l) in
    Some (List.mapi (fun i e -> if i = k then { e with metric = -7 - e.metric } else e) l)

(* The ECMA route leak: advertise excellent routes to (qos, dest)
   pairs the origin's own terms forbid. When the origin's policy is
   fully open (nothing to leak), fall back to a malformed negative
   metric so the forgery is still deterministically rejectable. *)
let forge_update t ~origin =
  let n = Graph.n t.graph in
  let leaked = ref [] and count = ref 0 in
  List.iter
    (fun q ->
      for dest = n - 1 downto 0 do
        if !count < 8 && dest <> origin
           && not (supports_qos t.config origin q && dest_allowed t.config origin dest q)
        then begin
          incr count;
          leaked := { qos = q; dest; metric = 1; gone_down = false } :: !leaked
        end
      done)
    Qos.all;
  let entries =
    if !leaked <> [] then !leaked
    else
      [ { qos = List.hd Qos.all; dest = (origin + 1) mod n; metric = -1; gone_down = false } ]
  in
  Some (entries, message_bytes entries)

let audit_state t ~at =
  let n = Graph.n t.graph in
  let node = t.nodes.(at) in
  let bad = ref None in
  Graph.iter_neighbor_ids t.graph at ~f:(fun nbr ->
      if !bad = None then
        match Hashtbl.find_opt node.heard nbr with
        | None -> ()
        | Some heard ->
          List.iter
            (fun q ->
              let qi = Qos.index q in
              for dest = 0 to n - 1 do
                if !bad = None then begin
                  let v = heard.((qi * n) + dest) in
                  if v < 0 then
                    bad :=
                      Some
                        (Printf.sprintf "poisoned metric %d at (%s, %d) heard from ad %d"
                           v (Qos.to_string q) dest nbr)
                  else if
                    v < infinity_metric
                    && not (entry_allowed t ~from:nbr { qos = q; dest; metric = v; gone_down = false })
                  then
                    bad :=
                      Some
                        (Printf.sprintf
                           "route to (%s, %d) heard from ad %d violates its policy terms"
                           (Qos.to_string q) dest nbr)
                end
              done)
            Qos.all);
  !bad

(* [nbr]'s gated full-table advertisement, directed at [at] alone. *)
let resync t ~at ~nbr =
  let entries =
    List.filter_map (fun (q, dest) -> advertised_entry t nbr at q dest) (all_pairs t)
  in
  if entries <> [] then
    Network.send t.net ~src:nbr ~dst:at ~bytes:(message_bytes entries) entries

let prepare_flow _t _flow = Packet.no_prep

let originate _t _packet = ()

let lookup t at dst q ~gone_down =
  let qi = Qos.index q in
  let node = t.nodes.(at) in
  let d = node.down_only.(qi).(dst) in
  if gone_down then
    if d < infinity_metric then Some (d, node.down_hop.(qi).(dst)) else None
  else begin
    let m = node.mixed.(qi).(dst) in
    if d <= m then if d < infinity_metric then Some (d, node.down_hop.(qi).(dst)) else None
    else if m < infinity_metric then Some (m, node.mixed_hop.(qi).(dst))
    else None
  end

let forward t ~at ~from:_ packet =
  let flow = packet.Packet.flow in
  let dst = flow.Flow.dst in
  if at = dst then Packet.Deliver
  else
    match lookup t at dst flow.Flow.qos ~gone_down:packet.Packet.gone_down with
    | None -> Packet.Drop "no route (up/down rule)"
    | Some (_, nh) ->
      if is_down_step t ~from_ad:at ~to_ad:nh then packet.Packet.gone_down <- true;
      Packet.Forward nh

let table_entries t ad =
  let count tables =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc m -> if m < infinity_metric then acc + 1 else acc) acc row)
      0 tables
  in
  count t.nodes.(ad).down_only + count t.nodes.(ad).mixed

let route_of t ~at ~dst ~qos ~gone_down = lookup t at dst qos ~gone_down

(** Classic link-state routing (flooding + Dijkstra).

    The second traditional baseline of paper §4.3: every AD floods its
    adjacencies, holds a complete topology database, and computes one
    shortest-path spanning tree used for all traffic regardless of
    source or policy. Fast convergence, no count-to-infinity — and no
    policy expressiveness. *)

type message = Pr_proto.Lsdb.lsa

include Pr_proto.Protocol_intf.PROTOCOL with type message := message

val next_hop_of :
  t -> at:Pr_topology.Ad.id -> dst:Pr_topology.Ad.id -> Pr_topology.Ad.id option
(** The AD's current next hop toward a destination (forcing the
    spanning-tree computation if the database changed). *)

val spf_runs : t -> int
(** Total shortest-path-first computations performed across all ADs —
    the baseline computation figure that experiment E5 compares
    against the policy designs. *)

val spf_skips : t -> int
(** Recomputations avoided by delta-scoped invalidation: the database
    version moved but every changed origin was provably outside the
    region the AD's cached tree spans (see [Ls_flood.take_delta]), so
    the cached next hops were reused unchanged. *)

module Graph = Pr_topology.Graph
module Network = Pr_sim.Network
module Metrics = Pr_sim.Metrics
module Flow = Pr_policy.Flow
module Packet = Pr_proto.Packet
module Lsdb = Pr_proto.Lsdb
module Ls_flood = Pr_proto.Ls_flood
module Design_point = Pr_proto.Design_point
module Pqueue = Pr_util.Pqueue

let probe_spf = Pr_proto.Probe.make "ls.spf"

type message = Lsdb.lsa

type node = {
  mutable next_hops : Pr_topology.Ad.id array;  (* -1 = unreachable *)
  (* Database version the tree was computed at; -1 = never. The tree is
     a per-source SPF cache: fresh while the version still matches. *)
  mutable computed_version : int;
}

type t = {
  graph : Graph.t;
  net : message Network.t;
  flood : Ls_flood.t;
  nodes : node array;
  mutable spf_count : int;
  mutable spf_skips : int;
}

let name = "link-state"

let design_point =
  Design_point.make Design_point.Link_state Design_point.Hop_by_hop
    Design_point.In_topology

let create graph _config net =
  let n = Graph.n graph in
  let flood = Ls_flood.create net ~terms_for:(fun _ -> []) () in
  {
    graph;
    net;
    flood;
    nodes = Array.init n (fun _ -> { next_hops = Array.make n (-1); computed_version = -1 });
    spf_count = 0;
    spf_skips = 0;
  }

let start t = Ls_flood.start t.flood

let handle_message t ~at ~from lsa = Ls_flood.handle_message t.flood ~at ~from lsa

let handle_link t ~at ~link:_ ~up = Ls_flood.handle_link t.flood ~at ~up

let reset_node t ~at =
  let node = t.nodes.(at) in
  Array.fill node.next_hops 0 (Array.length node.next_hops) (-1);
  node.computed_version <- -1;
  Ls_flood.reset_node t.flood at

(* Plain Dijkstra over the AD's database, recording the first hop of
   each shortest path. *)
let run_spf t ad ~version =
  let n = Graph.n t.graph in
  let db = Ls_flood.db t.flood ad in
  let dist = Array.make n infinity in
  let first_hop = Array.make n (-1) in
  let settled = Array.make n false in
  let q = Pqueue.create () in
  dist.(ad) <- 0.0;
  Pqueue.add q ~priority:0.0 ad;
  let work = ref 0 in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        incr work;
        (match Lsdb.get db u with
        | None -> ()
        | Some lsa ->
          List.iter
            (fun (a : Lsdb.adjacency) ->
              let v = a.Lsdb.nbr in
              match Lsdb.bidirectional db u v with
              | None -> ()
              | Some cost ->
                let d' = d +. float_of_int cost in
                if d' < dist.(v) then begin
                  dist.(v) <- d';
                  first_hop.(v) <- (if u = ad then v else first_hop.(u));
                  Pqueue.add q ~priority:d' v
                end)
            lsa.Lsdb.adjacencies)
      end;
      drain ()
  in
  drain ();
  t.spf_count <- t.spf_count + 1;
  Metrics.record_computation (Network.metrics t.net) ad ~work:!work ();
  Pr_proto.Probe.computation probe_spf t.net ~at:ad ~work:!work ();
  t.nodes.(ad).next_hops <- first_hop;
  t.nodes.(ad).computed_version <- version

(* Scoped invalidation: the version moved, but if every changed origin
   is provably outside the region this AD's tree spans — not reachable
   in the cached tree and not newly attached to it — the cached next
   hops are still exact and the recompute is skipped. The reachability
   proxy is the cached tree itself: [next_hops.(o) >= 0] iff [o] was
   reachable when the tree was computed. Trees are always rebuilt by
   the one full-SPF code path, never repaired in place: per-AD
   incremental repairs could break equal-cost ties differently at
   different ADs, and hop-by-hop forwarding over disagreeing trees can
   loop. *)
let delta_out_of_scope t ad = function
  | Ls_flood.Unchanged -> true
  | Ls_flood.Full -> false
  | Ls_flood.Origins os ->
    let node = t.nodes.(ad) in
    node.computed_version >= 0
    &&
    let db = Ls_flood.db t.flood ad in
    let in_tree v = v = ad || (v >= 0 && v < Array.length node.next_hops && node.next_hops.(v) >= 0) in
    not
      (List.exists
         (fun o ->
           in_tree o
           ||
           match Lsdb.get db o with
           | None -> false
           | Some lsa ->
             List.exists
               (fun (a : Lsdb.adjacency) ->
                 in_tree a.Lsdb.nbr && Lsdb.bidirectional db o a.Lsdb.nbr <> None)
               lsa.Lsdb.adjacencies)
         os)

let ensure_fresh t ad =
  let version = Ls_flood.db_version t.flood ad in
  if t.nodes.(ad).computed_version <> version then begin
    let delta = Ls_flood.take_delta t.flood ad in
    if delta_out_of_scope t ad delta then begin
      t.spf_skips <- t.spf_skips + 1;
      t.nodes.(ad).computed_version <- version
    end
    else run_spf t ad ~version
  end

(* Adversarial surface: the shared flood realizes all of it (see
   {!Ls_flood}'s adversarial section). *)

let check_update t ~at ~from:_ lsa = Ls_flood.check_lsa t.flood ~at lsa

let corrupt_update t ~rng lsa = Ls_flood.corrupt_lsa t.flood ~rng lsa

let forge_update t ~origin = Ls_flood.forge_lsa t.flood origin

let audit_state t ~at = Ls_flood.audit_db t.flood ~at

let resync t ~at ~nbr = Ls_flood.resync t.flood ~at ~nbr

let prepare_flow _t _flow = Packet.no_prep

let originate _t _packet = ()

let forward t ~at ~from:_ packet =
  let dst = packet.Packet.flow.Flow.dst in
  if at = dst then Packet.Deliver
  else begin
    ensure_fresh t at;
    let nh = t.nodes.(at).next_hops.(dst) in
    if nh < 0 then Packet.Drop "no route" else Packet.Forward nh
  end

let table_entries t ad =
  Ls_flood.db_entries t.flood ad
  + Array.fold_left (fun acc nh -> if nh >= 0 then acc + 1 else acc) 0 t.nodes.(ad).next_hops

let next_hop_of t ~at ~dst =
  ensure_fresh t at;
  let nh = t.nodes.(at).next_hops.(dst) in
  if nh < 0 then None else Some nh

let spf_runs t = t.spf_count

let spf_skips t = t.spf_skips

module J = Pr_util.Json
module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Metrics = Pr_sim.Metrics
module Runner = Pr_proto.Runner
module Registry = Pr_core.Registry
module Scenario = Pr_core.Scenario

type chaos = { crash_id : string option; hang_id : string option }

let no_chaos = { crash_id = None; hang_id = None }

type t = {
  run : Grid.run;
  converged : bool;
  stop_reason : string;
  sim_time : float;
  messages : int;
  bytes : int;
  computations : int;
  transit_computations : int;
  table_total : int;
  table_max : int;
  delivered : int;
  wall_s : float;
}

(* Churn parameters: enough flips to interleave with convergence, an
   even count so the topology ends where it started and every run's
   workload is measured on the full internet. *)
let churn_events = 6

let churn_spacing = 4.0

let apply_chaos chaos (run : Grid.run) =
  (match chaos.crash_id with
  | Some id when id = run.id -> Unix._exit 66
  | _ -> ());
  match chaos.hang_id with
  | Some id when id = run.id ->
    let rec forever () =
      Unix.sleepf 3600.0;
      forever ()
    in
    forever ()
  | _ -> ()

let execute ?(chaos = no_chaos) (run : Grid.run) =
  apply_chaos chaos run;
  match Registry.find_opt run.protocol with
  | None ->
    Error
      (Printf.sprintf "unknown protocol %S (known: %s)" run.protocol
         (String.concat ", " (Registry.names Registry.all)))
  | Some (Registry.Packed (module P)) ->
    let started = Unix.gettimeofday () in
    let policy =
      {
        Pr_policy.Gen.default with
        restrictiveness = run.restrictiveness;
        granularity = run.granularity;
      }
    in
    let scenario = Scenario.for_size ~policy ~target_ads:run.size ~seed:run.seed () in
    let g = scenario.Scenario.graph in
    let module R = Runner.Make (P) in
    let r = R.setup g scenario.Scenario.config in
    if run.churn then
      Pr_sim.Churn.schedule (R.network r) (Rng.create (run.seed + 1)) ~events:churn_events
        ~spacing:churn_spacing ();
    let c = R.converge ~max_events:run.max_events r in
    let rng = Rng.create (run.seed + 2) in
    let flows = Scenario.flows scenario ~rng ~count:run.flows () in
    let delivered =
      List.fold_left
        (fun acc f -> if Pr_proto.Forwarding.delivered (R.send_flow r f) then acc + 1 else acc)
        0 flows
    in
    let m = R.metrics r in
    let transit_computations =
      List.fold_left
        (fun acc ad -> acc + Metrics.computations_of m ad)
        0 (Graph.transit_ids g)
    in
    Ok
      {
        run;
        converged = c.Runner.converged;
        stop_reason = (if c.Runner.converged then "drained" else "event-budget");
        sim_time = c.Runner.sim_time;
        messages = Metrics.messages m;
        bytes = Metrics.bytes m;
        computations = Metrics.computations m;
        transit_computations;
        table_total = R.table_entries r;
        table_max = R.max_table_entries r;
        delivered;
        wall_s = Unix.gettimeofday () -. started;
      }

let to_json t =
  J.Obj
    (Grid.params_json t.run
    @ [
        ("status", J.String "ok");
        ("converged", J.Bool t.converged);
        ("stop_reason", J.String t.stop_reason);
        ("sim_time", J.Float t.sim_time);
        ("messages", J.Int t.messages);
        ("bytes", J.Int t.bytes);
        ("computations", J.Int t.computations);
        ("transit_computations", J.Int t.transit_computations);
        ("table_total", J.Int t.table_total);
        ("table_max", J.Int t.table_max);
        ("delivered", J.Int t.delivered);
        ("wall_s", J.Float t.wall_s);
      ])

let run_record ?chaos run =
  match execute ?chaos run with
  | Ok t -> to_json t
  | Error msg ->
    J.Obj
      (Grid.params_json run
      @ [ ("status", J.String "failed"); ("error", J.String msg) ])

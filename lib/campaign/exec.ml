module J = Pr_util.Json
module Rng = Pr_util.Rng
module Stats = Pr_util.Stats
module Graph = Pr_topology.Graph
module Metrics = Pr_sim.Metrics
module Engine = Pr_sim.Engine
module Runner = Pr_proto.Runner
module Registry = Pr_core.Registry
module Scenario = Pr_core.Scenario
module Trace = Pr_obs.Trace
module Timeline = Pr_obs.Timeline
module Telemetry = Pr_telemetry.Registry

type chaos = { crash_id : string option; hang_id : string option }

let no_chaos = { crash_id = None; hang_id = None }

type t = {
  run : Grid.run;
  shards : int;
  converged : bool;
  stop_reason : string;
  outcome : string;
  sim_time : float;
  messages : int;
  bytes : int;
  computations : int;
  transit_computations : int;
  msgs_lost : int;
  table_total : int;
  table_max : int;
  msg_max : int;
  msg_mean : float;
  msg_p90 : float;
  tbl_p90 : float;
  delivered : int;
  loop_violations : int;
  blackhole_violations : int;
  containment_violations : int;
  updates_rejected : int;
  quarantines : int;
  chaos_fields : (string * J.t) list;
  wall_s : float;
  trace_file : string option;
  trace_dropped : int;
  time_to_first_route : float option;
}

(* Churn parameters: enough flips to interleave with convergence, an
   even count so the topology ends where it started and every run's
   workload is measured on the full internet. *)
let churn_events = 6

let churn_spacing = 4.0

let apply_chaos chaos (run : Grid.run) =
  (match chaos.crash_id with
  | Some id when id = run.id -> Unix._exit 66
  | _ -> ());
  match chaos.hang_id with
  | Some id when id = run.id ->
    let rec forever () =
      Unix.sleepf 3600.0;
      forever ()
    in
    forever ()
  | _ -> ()

let trace_filename (run : Grid.run) =
  String.map (fun c -> if c = '/' then '_' else c) run.id ^ ".json"

let scenario_of (run : Grid.run) =
  let policy =
    {
      Pr_policy.Gen.default with
      restrictiveness = run.restrictiveness;
      granularity = run.granularity;
    }
  in
  Scenario.for_size ~policy ~target_ads:run.size ~seed:run.seed ()

(* A fault-profile run goes through the resilience harness: the plan
   plays out during convergence, the workload doubles as the probe set,
   and invariant violations land in the JSONL record. An exhausted
   event budget is a *result* here ([outcome = "budget_exhausted"] with
   partial metrics), not a worker failure to retry. *)
let execute_faulted ~shards packed (run : Grid.run) plan =
  let started = Unix.gettimeofday () in
  let scenario = scenario_of run in
  ignore (Pr_policy.Policy_store.of_config scenario.Scenario.config);
  let flows =
    Scenario.flows scenario ~rng:(Rng.create (run.seed + 2)) ~count:run.flows ()
  in
  let report =
    Pr_faults.Chaos.run ~plan ~flows
      ?churn:(if run.churn then Some (churn_events, churn_spacing) else None)
      ~max_events:run.max_events ~shards packed scenario
  in
  let module C = Pr_faults.Chaos in
  Ok
    {
      run;
      shards;
      converged = report.C.converged;
      stop_reason = report.C.stop_reason;
      outcome = (if report.C.converged then "completed" else "budget_exhausted");
      sim_time = report.C.sim_time;
      messages = report.C.messages;
      bytes = report.C.bytes;
      computations = report.C.computations;
      transit_computations = report.C.transit_computations;
      msgs_lost = report.C.msgs_lost;
      table_total = report.C.table_total;
      table_max = report.C.table_max;
      msg_max = report.C.msg_max;
      msg_mean = report.C.msg_mean;
      msg_p90 = report.C.msg_p90;
      tbl_p90 = report.C.tbl_p90;
      delivered = report.C.delivered;
      loop_violations = C.loop_violations report;
      blackhole_violations = C.blackhole_violations report;
      containment_violations = C.containment_violations report;
      updates_rejected = report.C.updates_rejected;
      quarantines = report.C.quarantines;
      chaos_fields =
        [
          ("reconvergence_time", J.Float report.C.reconvergence_time);
          ("transient_loops", J.Int report.C.transient_loops);
          ("baseline_delivered", J.Int report.C.baseline_delivered);
          ("faults_fired", J.Int (List.length report.C.fault_log));
        ];
      wall_s = Unix.gettimeofday () -. started;
      trace_file = None;
      trace_dropped = 0;
      time_to_first_route = None;
    }

let execute ?(chaos = no_chaos) ?trace_dir ?(shards = 1) (run : Grid.run) =
  apply_chaos chaos run;
  match Registry.find_opt run.protocol with
  | None ->
    Error
      (Printf.sprintf "unknown protocol %S (known: %s)" run.protocol
         (String.concat ", " (Registry.names Registry.all)))
  | Some (Registry.Packed (module P) as packed) -> (
    match
      if run.faults = "none" then Some []
      else Pr_faults.Plan.profile run.faults
    with
    | None ->
      Error
        (Printf.sprintf "unknown fault profile %S (known: %s)" run.faults
           (String.concat ", " Pr_faults.Plan.profile_names))
    | Some plan when run.faults <> "none" -> execute_faulted ~shards packed run plan
    | Some _ ->
    let started = Unix.gettimeofday () in
    let scenario = scenario_of run in
    (* Pre-warm the shared compiled-policy store for this run's
       configuration: the protocol instance and every post-convergence
       flow probe then share one compilation per AD. *)
    ignore (Pr_policy.Policy_store.of_config scenario.Scenario.config);
    let g = scenario.Scenario.graph in
    let module R = Runner.Make (P) in
    let trace =
      match trace_dir with
      | Some _ -> Trace.create ()
      | None -> Trace.disabled
    in
    let r = R.setup ~trace ~shards g scenario.Scenario.config in
    let m = R.metrics r in
    let table_total () =
      let acc = ref 0 in
      for ad = 0 to Graph.n g - 1 do
        acc := !acc + P.table_entries (R.protocol r) ad
      done;
      !acc
    in
    let timeline =
      if trace_dir = None then None
      else
        Some
          (Timeline.create
             ~series:[ "messages"; "computations"; "table-entries" ]
             ~probe:(fun () ->
               [|
                 float_of_int (Metrics.messages m);
                 float_of_int (Metrics.computations m);
                 float_of_int (table_total ());
               |])
             trace)
    in
    let engine = Pr_sim.Network.engine (R.network r) in
    Option.iter
      (fun tl ->
        Engine.set_observer engine (Some (fun ~time ~pending:_ -> Timeline.observe tl ~now:time)))
      timeline;
    if run.churn then
      Pr_sim.Churn.schedule (R.network r)
        (Rng.derive run.seed "churn")
        ~events:churn_events ~spacing:churn_spacing ();
    let c = R.converge ~max_events:run.max_events r in
    let rng = Rng.create (run.seed + 2) in
    let flows = Scenario.flows scenario ~rng ~count:run.flows () in
    let delivered =
      List.fold_left
        (fun acc f -> if Pr_proto.Forwarding.delivered (R.send_flow r f) then acc + 1 else acc)
        0 flows
    in
    let transit_computations =
      List.fold_left
        (fun acc ad -> acc + Metrics.computations_of m ad)
        0 (Graph.transit_ids g)
    in
    (* Per-AD skew: the §5.2.1/§5.3 arguments are about the
       worst-loaded AD, not the totals. *)
    let n = Graph.n g in
    let per_ad_msgs = List.init n (fun ad -> float_of_int (Metrics.messages_of m ad)) in
    let per_ad_tbls = List.init n (fun ad -> float_of_int (P.table_entries (R.protocol r) ad)) in
    let msg_max =
      List.fold_left (fun acc ad -> Stdlib.max acc (Metrics.messages_of m ad)) 0
        (List.init n Fun.id)
    in
    let trace_file =
      Option.map
        (fun dir ->
          let file = trace_filename run in
          Option.iter (fun tl -> Timeline.finish tl ~now:(Engine.now engine)) timeline;
          Trace.write ~path:(Filename.concat dir file) trace;
          file)
        trace_dir
    in
    Ok
      {
        run;
        shards;
        converged = c.Runner.converged;
        stop_reason = (if c.Runner.converged then "drained" else "event-budget");
        outcome = (if c.Runner.converged then "completed" else "budget_exhausted");
        sim_time = c.Runner.sim_time;
        messages = Metrics.messages m;
        bytes = Metrics.bytes m;
        computations = Metrics.computations m;
        transit_computations;
        msgs_lost = Metrics.msgs_lost m;
        table_total = R.table_entries r;
        table_max = R.max_table_entries r;
        msg_max;
        msg_mean = Stats.mean per_ad_msgs;
        msg_p90 = Stats.percentile per_ad_msgs 90.0;
        tbl_p90 = Stats.percentile per_ad_tbls 90.0;
        delivered;
        loop_violations = 0;
        blackhole_violations = 0;
        containment_violations = 0;
        updates_rejected = 0;
        quarantines = 0;
        chaos_fields = [];
        wall_s = Unix.gettimeofday () -. started;
        trace_file;
        trace_dropped = Trace.dropped trace;
        time_to_first_route =
          Option.bind timeline (fun tl -> Timeline.first_nonzero tl "table-entries");
      })

let to_json t =
  J.Obj
    (Grid.params_json t.run
    (* Sequential records keep their historical shape; the field only
       appears when the run actually sharded its engine. *)
    @ (if t.shards > 1 then [ ("shards", J.Int t.shards) ] else [])
    @ [
        ("status", J.String "ok");
        ("converged", J.Bool t.converged);
        ("stop_reason", J.String t.stop_reason);
        ("outcome", J.String t.outcome);
        ("sim_time", J.Float t.sim_time);
        ("messages", J.Int t.messages);
        ("bytes", J.Int t.bytes);
        ("computations", J.Int t.computations);
        ("transit_computations", J.Int t.transit_computations);
        ("msgs_lost", J.Int t.msgs_lost);
        ("table_total", J.Int t.table_total);
        ("table_max", J.Int t.table_max);
        ("msg_max", J.Int t.msg_max);
        ("msg_mean", J.Float t.msg_mean);
        ("msg_p90", J.Float t.msg_p90);
        ("tbl_p90", J.Float t.tbl_p90);
        ("delivered", J.Int t.delivered);
        ("loop_violations", J.Int t.loop_violations);
        ("blackhole_violations", J.Int t.blackhole_violations);
        ("containment_violations", J.Int t.containment_violations);
        ("updates_rejected", J.Int t.updates_rejected);
        ("quarantines", J.Int t.quarantines);
        ("wall_s", J.Float t.wall_s);
      ]
    @ t.chaos_fields
    @ (match t.trace_file with
      | Some f ->
        (* Surface truncation: a full recorder silently drops newest
           events, and a nonzero count here tells the reader the trace
           under trace_file is a prefix of the run. *)
        [ ("trace_file", J.String f); ("trace_dropped", J.Int t.trace_dropped) ]
      | None -> [])
    @
    match t.time_to_first_route with
    | Some ts -> [ ("time_to_first_route", J.Float ts) ]
    | None -> [])

let run_record ?chaos ?trace_dir ?shards run =
  (* Workers are forked per run, so the process-global registry delta
     around the run is exactly this run's telemetry; the JSONL record
     carries the snapshot diff for Aggregate to merge across shards. *)
  let before = Telemetry.snapshot Telemetry.default in
  match execute ?chaos ?trace_dir ?shards run with
  | Ok t ->
    Pr_telemetry.Alloc.sample ();
    let telemetry =
      Telemetry.diff ~after:(Telemetry.snapshot Telemetry.default) ~before
    in
    (match to_json t with
    | J.Obj fields ->
      J.Obj (fields @ [ ("telemetry", Telemetry.snapshot_to_json telemetry) ])
    | other -> other)
  | Error msg ->
    J.Obj
      (Grid.params_json run
      @ [ ("status", J.String "failed"); ("error", J.String msg) ])

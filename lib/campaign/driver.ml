module Trace = Pr_obs.Trace

type report = {
  total : int;
  skipped : int;
  executed : int;
  ok : int;
  not_ok : int;
  rows : Aggregate.row list;
  summary : Pr_util.Json.t;
}

let ensure_dir dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let sweep ?jobs ?timeout_s ?(quiet = false) ?chaos ?summary_path ?trace_dir ?shards ~out spec =
  let runs = Grid.expand spec in
  let total = List.length runs in
  let completed = Sink.completed_ids (Sink.read ~path:out) in
  let todo = List.filter (fun (r : Grid.run) -> not (Hashtbl.mem completed r.id)) runs in
  let skipped = total - List.length todo in
  if (not quiet) && skipped > 0 then
    Printf.eprintf "resuming: %d/%d runs already completed in %s\n%!" skipped total out;
  Option.iter ensure_dir trace_dir;
  (* The pool's wall-clock trace lives beside the per-run simulated-time
     traces but in its own file: the two timebases must not share a
     document if timestamps are to stay monotone. *)
  let pool_trace =
    match trace_dir with
    | Some _ -> Trace.create ()
    | None -> Trace.disabled
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 out in
  let ok, not_ok =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Pool.run_all ?jobs ?timeout_s ~quiet ~trace:pool_trace ?shards
          ~exec:(Exec.run_record ?chaos ?trace_dir ?shards)
          ~on_outcome:(fun outcome -> Sink.append oc outcome.Pool.record)
          todo)
  in
  Option.iter
    (fun dir -> Trace.write ~path:(Filename.concat dir "pool.json") pool_trace)
    trace_dir;
  let sink = Sink.read ~path:out in
  let rows = Aggregate.rows sink in
  let summary = Aggregate.summary_json ~skipped sink in
  Option.iter (fun path -> Aggregate.write_summary ~path summary) summary_path;
  { total; skipped; executed = List.length todo; ok; not_ok; rows; summary }

(** Declarative sweep grids.

    A campaign is the cross product of protocol (a §5 design point or
    a baseline) × topology size × policy restrictiveness × policy
    granularity × churn on/off × seed replicate. A [spec] names the
    axes; {!expand} unrolls it into a deterministic run list, each run
    carrying a stable human-readable id, so a campaign can be
    re-expanded byte-identically on another day (or another machine)
    and resumed against an existing results file. *)

type run = {
  id : string;  (** stable across expansions of the same spec *)
  protocol : string;  (** a {!Pr_core.Registry} name *)
  size : int;  (** target AD count; [<= 14] means the Figure 1 internet *)
  restrictiveness : float;
  granularity : Pr_policy.Gen.granularity;
  churn : bool;  (** interleave scheduled link churn with convergence *)
  faults : string;  (** a [Pr_faults.Plan] profile name; ["none"] disables *)
  replicate : int;  (** 0-based replicate index *)
  seed : int;  (** derived: [base_seed + replicate] *)
  flows : int;  (** workload size per run *)
  max_events : int;  (** simulation event budget per converge call *)
}

type spec = {
  protocols : string list;
  sizes : int list;
  restrictiveness : float list;
  granularities : Pr_policy.Gen.granularity list;
  churn : bool list;
  fault_profiles : string list;
  replicates : int;
  base_seed : int;
  flows : int;
  max_events : int;
}

val default : spec
(** The four §5 design points (ecma, idrp, ls-hbh-pt, orwg) × sizes
    {14, 56} × restrictiveness {0.0, 0.5} × source-specific ×
    {static, churn} × 1 replicate = 32 runs. *)

val expand : spec -> run list
(** Cross product in axis order (protocol outermost, replicate
    innermost); the order and every id are functions of the spec
    alone. *)

val id_of :
  protocol:string ->
  size:int ->
  restrictiveness:float ->
  granularity:Pr_policy.Gen.granularity ->
  churn:bool ->
  faults:string ->
  replicate:int ->
  string
(** E.g. ["orwg/n56/r0.50/gsource-specific/churn/fnone/rep0"]. *)

val params_json : run -> (string * Pr_util.Json.t) list
(** The run's parameters as JSON object fields ([id] first) — the
    common prefix of every JSONL record about the run, whether it
    completed, crashed or timed out. *)

(** Reduction of a campaign's JSONL into comparison exhibits.

    Folds the latest record per run into one row per protocol, tagged
    with the protocol's Table 1 design point, totalling the paper's
    three cost axes — information (messages, bytes), computation
    (total and at transit ADs), and state (table entries) — plus
    delivery and run-health counts. Renders as a
    {!Pr_util.Texttable} for the terminal and as the machine-readable
    [BENCH_campaign.json] summary. *)

type row = {
  design_point : string;
  protocol : string;
  runs : int;  (** attempts aggregated (latest per id) *)
  ok : int;
  failed : int;
  crashed : int;
  timed_out : int;
  unconverged : int;
  budget_exhausted : int;  (** ok runs whose event budget ran out *)
  messages : int;
  bytes : int;
  computations : int;
  transit_computations : int;
  msgs_lost : int;
  table_total : int;
  table_max : int;
  msg_max : int;
      (** messages sent by the worst-loaded AD of any ok run *)
  msg_mean : float;  (** mean per-AD message load, averaged over ok runs *)
  msg_p90 : float;  (** worst per-run p90 of per-AD message load *)
  tbl_p90 : float;  (** worst per-run p90 of per-AD table entries *)
  delivered : int;
  flows : int;
  loop_violations : int;
  blackhole_violations : int;
  containment_violations : int;
      (** honest ADs left holding state their own validation rejects *)
  updates_rejected : int;  (** guard validation rejections, summed *)
  quarantines : int;  (** guard quarantines entered, summed *)
  trace_dropped : int;
      (** trace events lost to recorder truncation, summed over ok
          runs (0 when the campaign did not trace) *)
  wall_s : float;  (** summed worker wall clock over ok runs *)
}

val rows : Sink.t -> row list
(** Grouped by protocol in first-appearance order. Numeric fields sum
    over the ok runs only; [table_max], [msg_max] and the p90 skew
    columns take the max over runs. *)

val table : row list -> Pr_util.Texttable.t

val merged_telemetry : Sink.t -> Pr_telemetry.Registry.snapshot
(** The per-run ["telemetry"] snapshots merged across every record
    that carries one: counters and histograms add, gauges keep the
    max. *)

val summary_json : ?skipped:int -> Sink.t -> Pr_util.Json.t
(** The [BENCH_campaign.json] document: run-health totals (including
    how many runs a resume [skipped] and how many lines were
    malformed) and the per-design-point rows. *)

val write_summary : path:string -> Pr_util.Json.t -> unit

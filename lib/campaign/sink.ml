module J = Pr_util.Json

type t = { records : (string * J.t) list; malformed : int }

let read ~path =
  if not (Sys.file_exists path) then { records = []; malformed = 0 }
  else begin
    let ic = open_in path in
    let by_id = Hashtbl.create 64 in
    let order = ref [] in
    let malformed = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" then
           match J.parse line with
           | Ok record -> (
             match J.string_member "id" record with
             | Ok id ->
               if not (Hashtbl.mem by_id id) then order := id :: !order;
               Hashtbl.replace by_id id record
             | Error _ -> incr malformed)
           | Error _ -> incr malformed
       done
     with End_of_file -> ());
    close_in ic;
    {
      records = List.rev_map (fun id -> (id, Hashtbl.find by_id id)) !order;
      malformed = !malformed;
    }
  end

let completed_ids t =
  let done_ = Hashtbl.create 64 in
  List.iter
    (fun (id, record) ->
      if J.string_member "status" record = Ok "ok" then Hashtbl.replace done_ id ())
    t.records;
  done_

let append oc record =
  output_string oc (J.to_string record);
  output_char oc '\n';
  flush oc

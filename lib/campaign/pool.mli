(** A [Unix.fork]-based worker pool for campaign runs.

    Each run executes in its own forked process — the isolation model
    the distributed-BGP-simulation literature recommends for sweep
    campaigns: a crash (or a runaway scenario hitting the wall-clock
    timeout) costs one run, not the campaign. The worker streams one
    JSON record over a pipe to the parent; the parent reaps workers as
    they finish, synthesizes records for the ones that died, and
    reports ordered progress ([k/total]) to stderr. *)

val log_src : Logs.src
(** Debug log source ("pr.campaign"): set its level to [Debug] (and
    install a reporter) to trace forks, reaps, kills and timeouts. *)

type status = Done | Failed | Crashed of int | Timed_out

val status_to_string : status -> string
(** ["ok"], ["failed"], ["crashed"], ["timed-out"] — the [status]
    field vocabulary of JSONL records. *)

type outcome = {
  run : Grid.run;
  status : status;
  record : Pr_util.Json.t;
      (** the worker's record, or a parent-synthesized one
          ([status = "crashed"/"timed-out"] plus the run parameters)
          when the worker died without reporting *)
  wall_s : float;
}

val run_all :
  ?jobs:int ->
  ?timeout_s:float ->
  ?quiet:bool ->
  ?trace:Pr_obs.Trace.t ->
  ?shards:int ->
  exec:(Grid.run -> Pr_util.Json.t) ->
  on_outcome:(outcome -> unit) ->
  Grid.run list ->
  int * int
(** [run_all ~exec ~on_outcome runs] keeps up to [jobs] (default 4)
    workers in flight; when [shards > 1] (each worker running a
    sharded simulation on that many domains) the worker count is
    additionally capped at
    [Domain.recommended_domain_count () / shards] so the campaign
    never runs more domains than cores; [exec] runs in the forked child and its record
    must carry a [status] field ({!Exec.run_record} does). A worker
    exceeding [timeout_s] (default 120) of wall clock is killed.
    [on_outcome] fires in the parent, in completion order. An [exec]
    that raises inside the child is reported as [Failed] with the
    exception text in the record. Returns [(ok, not_ok)] counts.
    With [quiet] no progress is written to stderr. When [trace]
    (default {!Pr_obs.Trace.disabled}) is enabled, each worker's
    lifetime is a span named by its run id on its pid's track,
    timestamped in wall-clock microseconds since pool start, with
    instants for timeouts, crashes and failures. *)

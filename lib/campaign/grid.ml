module Gen = Pr_policy.Gen

type run = {
  id : string;
  protocol : string;
  size : int;
  restrictiveness : float;
  granularity : Gen.granularity;
  churn : bool;
  faults : string;
  replicate : int;
  seed : int;
  flows : int;
  max_events : int;
}

type spec = {
  protocols : string list;
  sizes : int list;
  restrictiveness : float list;
  granularities : Gen.granularity list;
  churn : bool list;
  fault_profiles : string list;
  replicates : int;
  base_seed : int;
  flows : int;
  max_events : int;
}

let default =
  {
    protocols = [ "ecma"; "idrp"; "ls-hbh-pt"; "orwg" ];
    sizes = [ 14; 56 ];
    restrictiveness = [ 0.0; 0.5 ];
    granularities = [ Gen.Source_specific ];
    churn = [ false; true ];
    fault_profiles = [ "none" ];
    replicates = 1;
    base_seed = 42;
    flows = 60;
    max_events = 10_000_000;
  }

let id_of ~protocol ~size ~restrictiveness ~granularity ~churn ~faults ~replicate =
  Printf.sprintf "%s/n%d/r%.2f/g%s/%s/f%s/rep%d" protocol size restrictiveness
    (Gen.granularity_to_string granularity)
    (if churn then "churn" else "static")
    faults replicate

let expand spec =
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun size ->
          List.concat_map
            (fun restrictiveness ->
              List.concat_map
                (fun granularity ->
                  List.concat_map
                    (fun churn ->
                      List.concat_map
                        (fun faults ->
                          List.init spec.replicates (fun replicate ->
                              {
                                id =
                                  id_of ~protocol ~size ~restrictiveness ~granularity
                                    ~churn ~faults ~replicate;
                                protocol;
                                size;
                                restrictiveness;
                                granularity;
                                churn;
                                faults;
                                replicate;
                                seed = spec.base_seed + replicate;
                                flows = spec.flows;
                                max_events = spec.max_events;
                              }))
                        spec.fault_profiles)
                    spec.churn)
                spec.granularities)
            spec.restrictiveness)
        spec.sizes)
    spec.protocols

let params_json run =
  let module J = Pr_util.Json in
  [
    ("id", J.String run.id);
    ("protocol", J.String run.protocol);
    ("size", J.Int run.size);
    ("restrictiveness", J.Float run.restrictiveness);
    ("granularity", J.String (Gen.granularity_to_string run.granularity));
    ("churn", J.Bool run.churn);
    ("faults", J.String run.faults);
    ("replicate", J.Int run.replicate);
    ("seed", J.Int run.seed);
    ("flows", J.Int run.flows);
  ]

(** The campaign driver: expand, resume, execute, aggregate.

    One call runs a whole campaign: expands the {!Grid.spec}, reads
    the JSONL checkpoint and skips runs already completed, pushes the
    remainder through the {!Pool} (each in a forked worker), appends
    every outcome to the JSONL as it lands, and finally folds the file
    into {!Aggregate} rows and (optionally) the [BENCH_campaign.json]
    summary. *)

type report = {
  total : int;  (** runs in the expanded grid *)
  skipped : int;  (** completed in a previous invocation, not re-run *)
  executed : int;
  ok : int;
  not_ok : int;  (** failed + crashed + timed out this invocation *)
  rows : Aggregate.row list;  (** over the whole results file *)
  summary : Pr_util.Json.t;
}

val sweep :
  ?jobs:int ->
  ?timeout_s:float ->
  ?quiet:bool ->
  ?chaos:Exec.chaos ->
  ?summary_path:string ->
  ?trace_dir:string ->
  ?shards:int ->
  out:string ->
  Grid.spec ->
  report
(** [sweep ~out spec] appends to (never truncates) the JSONL at
    [out]; a second invocation with the same spec therefore resumes,
    re-running only runs whose latest attempt is not [ok]. With
    [trace_dir] (created if missing), each executed run writes a
    Chrome trace of its simulation into the directory (see
    {!Exec.trace_filename}) and the pool writes its wall-clock worker
    timeline to [pool.json] there. [shards] runs every simulation on
    that many engine shards and caps the worker count so
    jobs × shards stays within {!Domain.recommended_domain_count}. *)

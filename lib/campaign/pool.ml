module J = Pr_util.Json
module Trace = Pr_obs.Trace

let log_src = Logs.Src.create "pr.campaign" ~doc:"Campaign worker pool"

module Log = (val Logs.src_log log_src : Logs.LOG)

type status = Done | Failed | Crashed of int | Timed_out

let status_to_string = function
  | Done -> "ok"
  | Failed -> "failed"
  | Crashed _ -> "crashed"
  | Timed_out -> "timed-out"

type outcome = { run : Grid.run; status : status; record : J.t; wall_s : float }

type worker = { run : Grid.run; pid : int; fd : Unix.file_descr; started : float }

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ();
  Buffer.contents buf

(* The record a worker failed to produce: the run's parameters plus
   how it died, so the JSONL stays one-record-per-attempt even for
   crashes. *)
let synthesized (run : Grid.run) status extra =
  J.Obj
    (Grid.params_json run
    @ (("status", J.String (status_to_string status)) :: extra))

let spawn ~exec (run : Grid.run) =
  let rfd, wfd = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    (* Worker: compute one record, write it, and leave through _exit so
       no parent state (at_exit handlers, buffered channels) replays. *)
    Unix.close rfd;
    let record =
      try exec run
      with e -> synthesized run Failed [ ("error", J.String (Printexc.to_string e)) ]
    in
    let line = Bytes.of_string (J.to_string record ^ "\n") in
    let rec write_all off =
      if off < Bytes.length line then
        match Unix.write wfd line off (Bytes.length line - off) with
        | n -> write_all (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
    in
    (try write_all 0 with _ -> ());
    Unix._exit 0
  | pid ->
    Unix.close wfd;
    Log.debug (fun m -> m "forked pid %d for %s" pid run.Grid.id);
    { run; pid; fd = rfd; started = Unix.gettimeofday () }

(* A reaped worker's outcome: its streamed record when it exited
   cleanly with a parsable report, a synthesized one otherwise. *)
let outcome_of_exit w proc_status wall_s =
  let payload = read_all w.fd in
  Unix.close w.fd;
  match proc_status with
  | Unix.WEXITED 0 -> (
    match J.parse (String.trim payload) with
    | Ok record ->
      let status =
        match J.string_member "status" record with
        | Ok "ok" -> Done
        | Ok _ | Error _ -> Failed
      in
      { run = w.run; status; record; wall_s }
    | Error e ->
      {
        run = w.run;
        status = Failed;
        record = synthesized w.run Failed [ ("error", J.String ("unparsable report: " ^ e)) ];
        wall_s;
      })
  | Unix.WEXITED code ->
    {
      run = w.run;
      status = Crashed code;
      record = synthesized w.run (Crashed code) [ ("exit_code", J.Int code) ];
      wall_s;
    }
  | Unix.WSIGNALED signal | Unix.WSTOPPED signal ->
    {
      run = w.run;
      status = Crashed 0;
      record = synthesized w.run (Crashed 0) [ ("signal", J.Int signal) ];
      wall_s;
    }

let run_all ?(jobs = 4) ?(timeout_s = 120.0) ?(quiet = false) ?(trace = Trace.disabled)
    ?(shards = 1) ~exec ~on_outcome runs =
  let jobs = Stdlib.max 1 jobs in
  (* Sharded workers each spawn [shards] domains; cap the fork
     parallelism so jobs × shards never oversubscribes the machine
     (sequential sweeps keep the caller's [jobs] untouched). *)
  let jobs =
    if shards <= 1 then jobs
    else Stdlib.min jobs (Stdlib.max 1 (Domain.recommended_domain_count () / shards))
  in
  (* Pool spans are on the wall clock (microseconds since pool start),
     one track per worker pid — a different timebase from the
     simulated-time run traces, which is why they live in their own
     trace file. The parent records everything single-threaded, so the
     buffer stays in chronological order. *)
  let t0 = Unix.gettimeofday () in
  let wall_us () = (Unix.gettimeofday () -. t0) *. 1e6 in
  let total = List.length runs in
  let pending = Queue.create () in
  List.iter (fun r -> Queue.add r pending) runs;
  let active = ref [] in
  let completed = ref 0 in
  let ok = ref 0 in
  let not_ok = ref 0 in
  let finish outcome =
    incr completed;
    (match outcome.status with Done -> incr ok | _ -> incr not_ok);
    if not quiet then
      Printf.eprintf "[%d/%d] %-9s %s (%.2fs)\n%!" !completed total
        (status_to_string outcome.status)
        outcome.run.Grid.id outcome.wall_s;
    on_outcome outcome
  in
  while (not (Queue.is_empty pending)) || !active <> [] do
    while List.length !active < jobs && not (Queue.is_empty pending) do
      let w = spawn ~exec (Queue.pop pending) in
      if Trace.enabled trace then
        Trace.span_begin trace ~ts:(wall_us ()) ~tid:w.pid w.run.Grid.id;
      active := w :: !active
    done;
    let now = Unix.gettimeofday () in
    let reaped = ref false in
    active :=
      List.filter
        (fun w ->
          match Unix.waitpid [ Unix.WNOHANG ] w.pid with
          | 0, _ ->
            if now -. w.started > timeout_s then begin
              Log.debug (fun m -> m "killing pid %d (%s): past deadline" w.pid w.run.Grid.id);
              Unix.kill w.pid Sys.sigkill;
              ignore (Unix.waitpid [] w.pid);
              let payload = read_all w.fd in
              ignore payload;
              Unix.close w.fd;
              if Trace.enabled trace then begin
                let ts = wall_us () in
                Trace.instant trace ~ts ~tid:w.pid "worker.timeout";
                Trace.span_end trace ~ts ~tid:w.pid w.run.Grid.id
              end;
              reaped := true;
              finish
                {
                  run = w.run;
                  status = Timed_out;
                  record =
                    synthesized w.run Timed_out [ ("timeout_s", J.Float timeout_s) ];
                  wall_s = now -. w.started;
                };
              false
            end
            else true
          | _, proc_status ->
            Log.debug (fun m -> m "reaped pid %d (%s)" w.pid w.run.Grid.id);
            let outcome = outcome_of_exit w proc_status (now -. w.started) in
            if Trace.enabled trace then begin
              let ts = wall_us () in
              (match outcome.status with
              | Done -> ()
              | Crashed _ -> Trace.instant trace ~ts ~tid:w.pid "worker.crash"
              | Failed -> Trace.instant trace ~ts ~tid:w.pid "worker.failed"
              | Timed_out -> ());
              Trace.span_end trace ~ts ~tid:w.pid w.run.Grid.id
            end;
            reaped := true;
            finish outcome;
            false)
        !active;
    if (not !reaped) && !active <> [] then Unix.sleepf 0.01
  done;
  (!ok, !not_ok)

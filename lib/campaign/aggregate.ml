module J = Pr_util.Json
module Texttable = Pr_util.Texttable
module Telemetry = Pr_telemetry.Registry

type row = {
  design_point : string;
  protocol : string;
  runs : int;
  ok : int;
  failed : int;
  crashed : int;
  timed_out : int;
  unconverged : int;
  budget_exhausted : int;
  messages : int;
  bytes : int;
  computations : int;
  transit_computations : int;
  msgs_lost : int;
  table_total : int;
  table_max : int;
  msg_max : int;
  msg_mean : float;
  msg_p90 : float;
  tbl_p90 : float;
  delivered : int;
  flows : int;
  loop_violations : int;
  blackhole_violations : int;
  containment_violations : int;
  updates_rejected : int;
  quarantines : int;
  trace_dropped : int;
  wall_s : float;
}

let design_point_of protocol =
  match Pr_core.Registry.find_opt protocol with
  | Some packed -> Pr_proto.Design_point.to_string (Pr_core.Registry.design_point packed)
  | None -> "?"

let empty_row protocol =
  {
    design_point = design_point_of protocol;
    protocol;
    runs = 0;
    ok = 0;
    failed = 0;
    crashed = 0;
    timed_out = 0;
    unconverged = 0;
    budget_exhausted = 0;
    messages = 0;
    bytes = 0;
    computations = 0;
    transit_computations = 0;
    msgs_lost = 0;
    table_total = 0;
    table_max = 0;
    msg_max = 0;
    msg_mean = 0.0;
    msg_p90 = 0.0;
    tbl_p90 = 0.0;
    delivered = 0;
    flows = 0;
    loop_violations = 0;
    blackhole_violations = 0;
    containment_violations = 0;
    updates_rejected = 0;
    quarantines = 0;
    trace_dropped = 0;
    wall_s = 0.0;
  }

let add_record row record =
  let int name = Result.value (J.int_member name record) ~default:0 in
  let row = { row with runs = row.runs + 1 } in
  match J.string_member "status" record with
  | Ok "ok" ->
    {
      row with
      ok = row.ok + 1;
      unconverged =
        (row.unconverged + if J.member "converged" record = Some (J.Bool false) then 1 else 0);
      budget_exhausted =
        (row.budget_exhausted
        + if J.member "outcome" record = Some (J.String "budget_exhausted") then 1 else 0);
      messages = row.messages + int "messages";
      bytes = row.bytes + int "bytes";
      computations = row.computations + int "computations";
      transit_computations = row.transit_computations + int "transit_computations";
      msgs_lost = row.msgs_lost + int "msgs_lost";
      table_total = row.table_total + int "table_total";
      table_max = Stdlib.max row.table_max (int "table_max");
      (* Per-AD skew: worst AD over all the design point's runs for the
         max/percentile figures; [msg_mean] accumulates the per-run
         means here and is normalized to their average in {!rows}. *)
      msg_max = Stdlib.max row.msg_max (int "msg_max");
      msg_mean = row.msg_mean +. Result.value (J.float_member "msg_mean" record) ~default:0.0;
      msg_p90 =
        Stdlib.max row.msg_p90 (Result.value (J.float_member "msg_p90" record) ~default:0.0);
      tbl_p90 =
        Stdlib.max row.tbl_p90 (Result.value (J.float_member "tbl_p90" record) ~default:0.0);
      delivered = row.delivered + int "delivered";
      flows = row.flows + int "flows";
      loop_violations = row.loop_violations + int "loop_violations";
      blackhole_violations = row.blackhole_violations + int "blackhole_violations";
      containment_violations = row.containment_violations + int "containment_violations";
      updates_rejected = row.updates_rejected + int "updates_rejected";
      quarantines = row.quarantines + int "quarantines";
      trace_dropped = row.trace_dropped + int "trace_dropped";
      wall_s = row.wall_s +. Result.value (J.float_member "wall_s" record) ~default:0.0;
    }
  | Ok "crashed" -> { row with crashed = row.crashed + 1 }
  | Ok "timed-out" -> { row with timed_out = row.timed_out + 1 }
  | Ok _ | Error _ -> { row with failed = row.failed + 1 }

let rows (sink : Sink.t) =
  let order = ref [] in
  let by_protocol = Hashtbl.create 16 in
  List.iter
    (fun (_id, record) ->
      let protocol = Result.value (J.string_member "protocol" record) ~default:"?" in
      let row =
        match Hashtbl.find_opt by_protocol protocol with
        | Some row -> row
        | None ->
          order := protocol :: !order;
          empty_row protocol
      in
      Hashtbl.replace by_protocol protocol (add_record row record))
    sink.Sink.records;
  List.rev_map
    (fun protocol ->
      let r = Hashtbl.find by_protocol protocol in
      if r.ok = 0 then r else { r with msg_mean = r.msg_mean /. float_of_int r.ok })
    !order

let columns =
  [
    ("design point", Texttable.Left);
    ("protocol", Texttable.Left);
    ("runs", Texttable.Right);
    ("ok", Texttable.Right);
    ("bad", Texttable.Right);
    ("messages", Texttable.Right);
    ("kbytes", Texttable.Right);
    ("comp", Texttable.Right);
    ("transit comp", Texttable.Right);
    ("tbl total", Texttable.Right);
    ("tbl max", Texttable.Right);
    ("msg max", Texttable.Right);
    ("msg mean", Texttable.Right);
    ("msg p90", Texttable.Right);
    ("tbl p90", Texttable.Right);
    ("delivered", Texttable.Right);
    ("lost", Texttable.Right);
    ("viols", Texttable.Right);
    ("rejected", Texttable.Right);
    ("quar", Texttable.Right);
    ("wall s", Texttable.Right);
  ]

let table rows_list =
  let t = Texttable.create ~columns in
  List.iter
    (fun r ->
      Texttable.add_row t
        [
          r.design_point;
          r.protocol;
          Texttable.cell_int r.runs;
          Texttable.cell_int r.ok;
          Texttable.cell_int (r.failed + r.crashed + r.timed_out);
          Texttable.cell_int r.messages;
          Texttable.cell_float ~decimals:1 (float_of_int r.bytes /. 1024.);
          Texttable.cell_int r.computations;
          Texttable.cell_int r.transit_computations;
          Texttable.cell_int r.table_total;
          Texttable.cell_int r.table_max;
          Texttable.cell_int r.msg_max;
          Texttable.cell_float ~decimals:1 r.msg_mean;
          Texttable.cell_float ~decimals:1 r.msg_p90;
          Texttable.cell_float ~decimals:1 r.tbl_p90;
          Printf.sprintf "%d/%d" r.delivered r.flows;
          Texttable.cell_int r.msgs_lost;
          Texttable.cell_int
            (r.loop_violations + r.blackhole_violations + r.containment_violations);
          Texttable.cell_int r.updates_rejected;
          Texttable.cell_int r.quarantines;
          Texttable.cell_float ~decimals:2 r.wall_s;
        ])
    rows_list;
  t

let row_json r =
  J.Obj
    [
      ("design_point", J.String r.design_point);
      ("protocol", J.String r.protocol);
      ("runs", J.Int r.runs);
      ("ok", J.Int r.ok);
      ("failed", J.Int r.failed);
      ("crashed", J.Int r.crashed);
      ("timed_out", J.Int r.timed_out);
      ("unconverged", J.Int r.unconverged);
      ("budget_exhausted", J.Int r.budget_exhausted);
      ("messages", J.Int r.messages);
      ("bytes", J.Int r.bytes);
      ("computations", J.Int r.computations);
      ("transit_computations", J.Int r.transit_computations);
      ("msgs_lost", J.Int r.msgs_lost);
      ("table_total", J.Int r.table_total);
      ("table_max", J.Int r.table_max);
      ("msg_max", J.Int r.msg_max);
      ("msg_mean", J.Float r.msg_mean);
      ("msg_p90", J.Float r.msg_p90);
      ("tbl_p90", J.Float r.tbl_p90);
      ("delivered", J.Int r.delivered);
      ("flows", J.Int r.flows);
      ("loop_violations", J.Int r.loop_violations);
      ("blackhole_violations", J.Int r.blackhole_violations);
      ("containment_violations", J.Int r.containment_violations);
      ("updates_rejected", J.Int r.updates_rejected);
      ("quarantines", J.Int r.quarantines);
      ("trace_dropped", J.Int r.trace_dropped);
      ("wall_s", J.Float r.wall_s);
    ]

(* Merge the per-run registry snapshots the (forked) workers recorded:
   counters and histograms add, gauges keep the max — the telemetry one
   process running every shard sequentially would have accumulated.
   Records without a parseable snapshot (older JSONL, failed runs) are
   skipped. *)
let merged_telemetry (sink : Sink.t) =
  List.fold_left
    (fun acc (_id, record) ->
      match J.member "telemetry" record with
      | None -> acc
      | Some t -> (
        match Telemetry.snapshot_of_json t with
        | Error _ -> acc
        | Ok snap -> Telemetry.merge acc snap))
    [] sink.Sink.records

let summary_json ?(skipped = 0) sink =
  let rows_list = rows sink in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows_list in
  let telemetry = merged_telemetry sink in
  J.Obj
    [
      ("benchmark", J.String "campaign");
      ( "runs",
        J.Obj
          [
            ("total", J.Int (sum (fun r -> r.runs)));
            ("ok", J.Int (sum (fun r -> r.ok)));
            ("failed", J.Int (sum (fun r -> r.failed)));
            ("crashed", J.Int (sum (fun r -> r.crashed)));
            ("timed_out", J.Int (sum (fun r -> r.timed_out)));
            ("skipped_on_resume", J.Int skipped);
            ("malformed_lines", J.Int sink.Sink.malformed);
          ] );
      ("per_design_point", J.List (List.map row_json rows_list));
      ("telemetry", Telemetry.snapshot_to_json telemetry);
    ]

let write_summary ~path json =
  let oc = open_out path in
  output_string oc (J.to_string_pretty json);
  output_char oc '\n';
  close_out oc

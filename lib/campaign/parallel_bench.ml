module J = Pr_util.Json
module Registry = Pr_core.Registry
module Scenario = Pr_core.Scenario
module Gate = Pr_telemetry.Gate

type row = {
  target_ads : int;
  shards : int;
  max_events : int;
  converged : bool;
  events : int;
  messages : int;
  wall_s : float;
  events_per_sec : float;
}

let measure (Registry.Packed (module P) : Registry.packed) ~seed ~target_ads
    ~shards ~max_events =
  let scenario = Scenario.for_size ~target_ads ~seed () in
  ignore (Pr_policy.Policy_store.of_config scenario.Scenario.config);
  let module R = Pr_proto.Runner.Make (P) in
  let r = R.setup ~shards scenario.Scenario.graph scenario.Scenario.config in
  (* Time the converge alone: setup (graph generation, policy
     compilation, domain spawning is inside run, not setup) is the
     same work at every shard count and would only dilute the ratio. *)
  let t0 = Unix.gettimeofday () in
  let c = R.converge ~max_events r in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    target_ads;
    shards;
    max_events;
    converged = c.Pr_proto.Runner.converged;
    events = c.Pr_proto.Runner.events;
    messages = c.Pr_proto.Runner.messages;
    wall_s;
    events_per_sec =
      (if wall_s > 0.0 then float_of_int c.Pr_proto.Runner.events /. wall_s
       else 0.0);
  }

let row_json ?speedup ?gate row =
  J.Obj
    ([
       ("target_ads", J.Int row.target_ads);
       ("shards", J.Int row.shards);
       ("max_events", J.Int row.max_events);
       ("converged", J.Bool row.converged);
       ("events", J.Int row.events);
       ("messages", J.Int row.messages);
       ("wall_s", J.Float row.wall_s);
       ("events_per_sec", J.Float row.events_per_sec);
     ]
    @ (match speedup with Some s -> [ ("speedup", J.Float s) ] | None -> [])
    @ match gate with Some g -> [ ("gate", J.Bool g) ] | None -> [])

let doc_json ~protocol ~seed ~cores rows =
  J.Obj
    [
      ("benchmark", J.String "parallel_engine");
      ("schema_version", J.Int 1);
      ("protocol", J.String protocol);
      ("seed", J.Int seed);
      ("cores", J.Int cores);
      ("results", J.List rows);
    ]

(* The bench-diff gate for parallel_engine rows: event and message
   counts are deterministic per (seed, shard-count) and compare
   exactly; throughput is banded; raw wall clock and the derived
   speedup column are recorded but never gated (they are functions of
   the host's core count). *)
let gate_spec ~timing_tolerance =
  [
    { Gate.field = "events"; band = Gate.Exact };
    { Gate.field = "messages"; band = Gate.Exact };
    { Gate.field = "events_per_sec"; band = Gate.Rel timing_tolerance };
    { Gate.field = "wall_s"; band = Gate.Ignore };
    { Gate.field = "speedup"; band = Gate.Ignore };
  ]

(** Timed sharded-converge measurements — the rows behind
    [BENCH_parallel.json] and the re-run side of
    [prx bench diff --baseline BENCH_parallel.json].

    One row is one [(protocol, size, shard-count)] converge with the
    wall clock around it. Event and message counts are deterministic
    per (seed, shard-count) — the same at every shard count for the
    engine's equivalence contract — while wall-clock figures depend on
    the host, so the gate compares the former exactly and only bands
    the latter. *)

type row = {
  target_ads : int;
  shards : int;
  max_events : int;
  converged : bool;  (** false when the event budget stopped the run *)
  events : int;
  messages : int;
  wall_s : float;  (** converge wall clock, setup excluded *)
  events_per_sec : float;
}

val measure :
  Pr_core.Registry.packed ->
  seed:int ->
  target_ads:int ->
  shards:int ->
  max_events:int ->
  row
(** Build the scenario, set the runner up on [shards] engine shards,
    and time one bounded converge. *)

val row_json : ?speedup:float -> ?gate:bool -> row -> Pr_util.Json.t
(** [speedup] is the caller-computed ratio against the shards=1 row of
    the same size; [gate] marks rows cheap enough for
    [prx bench diff] to re-run. *)

val doc_json :
  protocol:string -> seed:int -> cores:int -> Pr_util.Json.t list -> Pr_util.Json.t
(** The full benchmark document ([benchmark = "parallel_engine"]).
    [cores] records the measuring host's core count — speedup columns
    are only meaningful with cores ≥ the largest shard count. *)

val gate_spec : timing_tolerance:float -> Pr_telemetry.Gate.check list
(** Exact on [events]/[messages], [Rel timing_tolerance] on
    [events_per_sec], wall clock and speedup ignored. *)

(** The JSONL results file: append-only checkpoint of a campaign.

    One JSON object per line, one line per run *attempt*. A campaign
    appends as outcomes arrive, so a killed campaign leaves a valid
    file; re-invoking the campaign reads it back, skips every run
    whose latest attempt succeeded, and re-runs the rest (failed,
    crashed, timed-out, or never attempted). Later lines supersede
    earlier ones for the same id. *)

type t = {
  records : (string * Pr_util.Json.t) list;
      (** latest record per run id, in first-appearance order *)
  malformed : int;  (** lines that did not parse or lacked an [id] *)
}

val read : path:string -> t
(** A missing file is an empty, zero-malformed [t]. *)

val completed_ids : t -> (string, unit) Hashtbl.t
(** Ids whose latest record has [status = "ok"] — the runs a resumed
    campaign skips. *)

val append : out_channel -> Pr_util.Json.t -> unit
(** One compact line, flushed, so the file is a valid checkpoint after
    every record even if the campaign is killed. *)

(** Execution of one grid run inside a worker process.

    Builds the scenario the run's parameters describe, converges the
    protocol (with scheduled link churn interleaved when the run asks
    for it), pushes the workload through the forwarding plane, and
    reduces the {!Pr_sim.Metrics} to the totals the paper compares:
    messages, bytes, route computations (split out at transit ADs),
    and routing-table state. *)

type chaos = {
  crash_id : string option;
      (** a worker whose run id matches dies with exit code 66 —
          exercises the pool's crash isolation *)
  hang_id : string option;
      (** a worker whose run id matches sleeps forever — exercises the
          per-run timeout *)
}

val no_chaos : chaos

type t = {
  run : Grid.run;
  converged : bool;
  stop_reason : string;  (** ["drained"] or ["event-budget"] *)
  sim_time : float;
  messages : int;
  bytes : int;
  computations : int;
  transit_computations : int;
  table_total : int;
  table_max : int;
  delivered : int;
  wall_s : float;
}

val execute : ?chaos:chaos -> Grid.run -> (t, string) result
(** [Error] reports an unknown protocol name; every simulation-level
    problem is folded into the result's fields instead. *)

val to_json : t -> Pr_util.Json.t
(** The run's JSONL record: {!Grid.params_json} fields, then
    [status = "ok"] and the measured totals. *)

val run_record : ?chaos:chaos -> Grid.run -> Pr_util.Json.t
(** [execute] then [to_json]; an [Error] becomes a record with
    [status = "failed"] and an [error] field. The function handed to
    {!Pool.run_all} as its [exec]. *)

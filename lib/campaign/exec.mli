(** Execution of one grid run inside a worker process.

    Builds the scenario the run's parameters describe, converges the
    protocol (with scheduled link churn interleaved when the run asks
    for it), pushes the workload through the forwarding plane, and
    reduces the {!Pr_sim.Metrics} to the totals the paper compares:
    messages, bytes, route computations (split out at transit ADs),
    and routing-table state. *)

type chaos = {
  crash_id : string option;
      (** a worker whose run id matches dies with exit code 66 —
          exercises the pool's crash isolation *)
  hang_id : string option;
      (** a worker whose run id matches sleeps forever — exercises the
          per-run timeout *)
}

val no_chaos : chaos

type t = {
  run : Grid.run;
  shards : int;  (** engine shard count the run executed with *)
  converged : bool;
  stop_reason : string;  (** ["drained"] or ["event-budget"] *)
  outcome : string;
      (** ["completed"], or ["budget_exhausted"] when the event budget
          ran out — a result with partial metrics, not a worker
          failure (so resume does not re-run it) *)
  sim_time : float;
  messages : int;
  bytes : int;
  computations : int;
  transit_computations : int;
  msgs_lost : int;  (** messages lost in flight (faults, crashes) *)
  table_total : int;
  table_max : int;
  msg_max : int;  (** messages sent by the worst-loaded AD *)
  msg_mean : float;  (** mean messages per AD *)
  msg_p90 : float;  (** 90th percentile of per-AD messages *)
  tbl_p90 : float;  (** 90th percentile of per-AD table entries *)
  delivered : int;
  loop_violations : int;
      (** post-reconvergence forwarding loops found by the resilience
          harness (0 when the run's fault profile is ["none"]) *)
  blackhole_violations : int;
      (** probes the residual-topology baseline delivers but the
          faulted run does not (0 when the profile is ["none"]) *)
  containment_violations : int;
      (** honest ADs left holding state their own validation rejects
          (Byzantine profiles; 0 when the profile is ["none"]) *)
  updates_rejected : int;
      (** updates the {!Pr_guard.Guard} validation screen rejected *)
  quarantines : int;  (** neighbor quarantines the guard entered *)
  chaos_fields : (string * Pr_util.Json.t) list;
      (** extra record fields a fault-profile run carries
          (reconvergence time, transient loops, ...) *)
  wall_s : float;
  trace_file : string option;
      (** basename of the Chrome trace written under [trace_dir] *)
  trace_dropped : int;
      (** events the recorder discarded because its buffer filled (0
          when not tracing); the written trace is a prefix of the run
          when nonzero *)
  time_to_first_route : float option;
      (** simulated time the first routing-table entry appeared
          (only measured when tracing, via {!Pr_obs.Timeline}) *)
}

val trace_filename : Grid.run -> string
(** The run's trace basename: its id with ['/'] flattened to ['_'],
    plus [".json"]. *)

val execute :
  ?chaos:chaos -> ?trace_dir:string -> ?shards:int -> Grid.run -> (t, string) result
(** [Error] reports an unknown protocol name or fault profile; every
    simulation-level problem is folded into the result's fields
    instead. When [trace_dir] is given (the directory must exist), the
    run executes with an enabled recorder and writes a Chrome trace
    named {!trace_filename} into it. Runs whose [faults] profile is
    not ["none"] go through {!Pr_faults.Chaos} — the workload doubles
    as the invariant probe set and violation counts land in the
    record; tracing is not supported on that path. [shards] (default
    1) runs the simulation on the sharded engine; records then carry a
    [shards] field. *)

val to_json : t -> Pr_util.Json.t
(** The run's JSONL record: {!Grid.params_json} fields, then
    [status = "ok"] and the measured totals. *)

val run_record :
  ?chaos:chaos -> ?trace_dir:string -> ?shards:int -> Grid.run -> Pr_util.Json.t
(** [execute] then [to_json]; an [Error] becomes a record with
    [status = "failed"] and an [error] field. Successful records also
    carry a ["telemetry"] snapshot — the {!Pr_telemetry.Registry}
    delta this run produced in its (forked) worker — which
    {!Aggregate} merges across shards. The function handed to
    {!Pool.run_all} as its [exec]. *)

(** GC-based allocation accounting and runtime sampling.

    [words f] is the exact-allocation measurement previously
    hand-rolled in bench/main.ml: minor words plus major words
    allocated directly in the major heap (major minus promoted, so
    promoted minors are not double-counted) across a call to [f].
    [sample] publishes the current GC picture as gauges in a
    registry. *)

val words : (unit -> unit) -> float
(** Words allocated by one call of [f]. *)

val words_per : ops:int -> (unit -> unit) -> float
(** [words f /. float ops]: per-operation allocation for a thunk that
    performs [ops] operations. *)

val sample : ?registry:Registry.t -> unit -> unit
(** Set the [gc.*] gauges (minor/major/promoted words, collection and
    compaction counts, heap words) in [registry] (default
    {!Registry.default}) from [Gc.quick_stat]. *)

(** Tolerance-band comparison of benchmark rows — the regression gate
    behind [prx bench diff].

    A spec declares, per numeric field, how a freshly re-run row may
    differ from the committed baseline row: [Exact] for deterministic
    counters (same seed ⇒ same value), [Rel tol] for timing-derived
    figures (machines differ; a generous symmetric band still catches
    order-of-magnitude regressions), [Ignore] for fields recorded but
    not gated. Fields absent from the baseline are skipped — old
    baselines predate schema additions — while fields the spec names
    that are absent from the current row fail. *)

type band = Exact | Rel of float  (** relative tolerance, e.g. [Rel 0.5] = ±50% *)
           | Ignore

type check = { field : string; band : band }

type outcome = {
  field : string;
  baseline : float option;
  current : float option;
  band : band;
  ok : bool;
  note : string;
}

val compare_row :
  spec:check list -> baseline:Pr_util.Json.t -> current:Pr_util.Json.t ->
  outcome list

val failures : outcome list -> outcome list

val serve_spec : timing_tolerance:float -> check list
(** The gate for "route_server_serving" rows: deterministic load and
    diagram counters [Exact]; qps/latency/build figures
    [Rel timing_tolerance]. *)

val pp_outcome : Format.formatter -> outcome -> unit

let words f =
  let s0 = Gc.quick_stat () in
  let m0 = Gc.minor_words () in
  f ();
  let m1 = Gc.minor_words () in
  let s1 = Gc.quick_stat () in
  m1 -. m0
  +. (s1.Gc.major_words -. s1.Gc.promoted_words)
  -. (s0.Gc.major_words -. s0.Gc.promoted_words)

let words_per ~ops f = words f /. float_of_int (max 1 ops)

let sample ?(registry = Registry.default) () =
  let s = Gc.quick_stat () in
  let set name v = Registry.set (Registry.gauge registry name) v in
  set "gc.minor_words" (Gc.minor_words ());
  set "gc.major_words" s.Gc.major_words;
  set "gc.promoted_words" s.Gc.promoted_words;
  set "gc.minor_collections" (float_of_int s.Gc.minor_collections);
  set "gc.major_collections" (float_of_int s.Gc.major_collections);
  set "gc.compactions" (float_of_int s.Gc.compactions);
  set "gc.heap_words" (float_of_int s.Gc.heap_words);
  set "gc.top_heap_words" (float_of_int s.Gc.top_heap_words)

module J = Pr_util.Json

type counter = { mutable c_val : int }
type gauge = { mutable g_val : float }

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_hist of Hist.t

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }
let default = create ()

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_hist _ -> "histogram"

let clash name want got =
  invalid_arg
    (Printf.sprintf "Registry: %S already registered as a %s, wanted a %s"
       name (kind_name got) want)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_counter c) -> c
  | Some other -> clash name "counter" other
  | None ->
      let c = { c_val = 0 } in
      Hashtbl.add t.tbl name (I_counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_gauge g) -> g
  | Some other -> clash name "gauge" other
  | None ->
      let g = { g_val = 0.0 } in
      Hashtbl.add t.tbl name (I_gauge g);
      g

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_hist h) -> h
  | Some other -> clash name "histogram" other
  | None ->
      let h = Hist.create () in
      Hashtbl.add t.tbl name (I_hist h);
      h

let inc c = c.c_val <- c.c_val + 1
let add c n = c.c_val <- c.c_val + n
let count c = c.c_val
let set g v = g.g_val <- v
let get g = g.g_val

let clear t =
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | I_counter c -> c.c_val <- 0
      | I_gauge g -> g.g_val <- 0.0
      | I_hist h -> Hist.clear h)
    t.tbl

type value = Counter of int | Gauge of float | Histogram of Hist.t

type snapshot = (string * value) list

let snapshot t =
  Hashtbl.fold
    (fun name inst acc ->
      let v =
        match inst with
        | I_counter c -> Counter c.c_val
        | I_gauge g -> Gauge g.g_val
        | I_hist h -> Histogram (Hist.copy h)
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Fold a snapshot into a live registry: counters add, gauges keep the
   max, histograms merge. Instruments are created on demand. This is
   the deterministic merge the sharded engine uses to fold per-shard
   registries back into the default one at the end of a run — lane
   registries are absorbed in shard order, and counter addition /
   histogram merge are order-independent, so the merged totals are a
   pure function of the per-shard values. *)
let absorb t snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter c -> add (counter t name) c
      | Gauge v ->
          let g = gauge t name in
          if v > g.g_val then g.g_val <- v
      | Histogram h -> Hist.merge ~into:(histogram t name) h)
    snap

let diff ~after ~before =
  List.map
    (fun (name, v) ->
      match (v, List.assoc_opt name before) with
      | Counter a, Some (Counter b) -> (name, Counter (a - b))
      | Histogram a, Some (Histogram b) ->
          (name, Histogram (Hist.diff ~after:a ~before:b))
      | Gauge a, _ -> (name, Gauge a)
      | v, _ -> (name, v))
    after

let merge a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace tbl name v) a;
  List.iter
    (fun (name, v) ->
      match (Hashtbl.find_opt tbl name, v) with
      | None, _ -> Hashtbl.replace tbl name v
      | Some (Counter x), Counter y -> Hashtbl.replace tbl name (Counter (x + y))
      | Some (Gauge x), Gauge y ->
          Hashtbl.replace tbl name (Gauge (Float.max x y))
      | Some (Histogram x), Histogram y ->
          let m = Hist.copy x in
          Hist.merge ~into:m y;
          Hashtbl.replace tbl name (Histogram m)
      | Some other, _ ->
          invalid_arg
            (Printf.sprintf "Registry.merge: kind clash on %S (%s)" name
               (match other with
               | Counter _ -> "counter"
               | Gauge _ -> "gauge"
               | Histogram _ -> "histogram")))
    b;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)

let snapshot_to_json snap =
  let metric (name, v) =
    match v with
    | Counter c ->
        J.Obj
          [
            ("name", J.String name);
            ("type", J.String "counter");
            ("value", J.Int c);
          ]
    | Gauge g ->
        J.Obj
          [
            ("name", J.String name);
            ("type", J.String "gauge");
            ("value", J.Float g);
          ]
    | Histogram h ->
        J.Obj
          [
            ("name", J.String name);
            ("type", J.String "histogram");
            ("value", Hist.to_json h);
          ]
  in
  J.Obj
    [
      ("document", J.String "telemetry-snapshot");
      ("metrics", J.List (List.map metric snap));
    ]

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let* () =
    match J.member "document" j with
    | Some (J.String "telemetry-snapshot") -> Ok ()
    | _ -> Error "snapshot: missing \"telemetry-snapshot\" identity"
  in
  let* metrics =
    match J.member "metrics" j with
    | Some (J.List l) -> Ok l
    | _ -> Error "snapshot: missing \"metrics\" list"
  in
  let* entries =
    List.fold_left
      (fun acc m ->
        let* acc = acc in
        let* name =
          match J.member "name" m with
          | Some (J.String s) -> Ok s
          | _ -> Error "snapshot: metric missing \"name\""
        in
        let* v =
          match (J.member "type" m, J.member "value" m) with
          | Some (J.String "counter"), Some (J.Int c) -> Ok (Counter c)
          | Some (J.String "gauge"), Some (J.Float g) -> Ok (Gauge g)
          | Some (J.String "gauge"), Some (J.Int g) ->
              Ok (Gauge (float_of_int g))
          | Some (J.String "histogram"), Some h ->
              let* h = Hist.of_json h in
              Ok (Histogram h)
          | _ ->
              Error
                (Printf.sprintf "snapshot: metric %S: bad type/value" name)
        in
        Ok ((name, v) :: acc))
      (Ok []) metrics
  in
  Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) entries)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* Render a float the way Prometheus expects: integral values without
   an exponent, everything else via %g. *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      match v with
      | Counter c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" n c)
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string buf (Printf.sprintf "%s %s\n" n (prom_float g))
      | Histogram h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
          let cum = ref 0 in
          List.iter
            (fun (i, c) ->
              cum := !cum + c;
              let _, hi = Hist.bucket_bounds i in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n
                   (prom_float hi) !cum))
            (Hist.buckets h);
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Hist.count h));
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" n (prom_float (Hist.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" n (Hist.count h)))
    snap;
  Buffer.contents buf

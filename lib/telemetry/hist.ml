(* Log2-bucket histograms: the fixed-cost accounting substrate behind
   the registry. All the arithmetic stays in native ints and floats —
   [record] performs no allocation and no hashing, so drivers and the
   serving loop can charge it per event/query. *)

module J = Pr_util.Json

let num_buckets = 64

type t = {
  buckets : int array; (* length num_buckets *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float; (* infinity when empty *)
  mutable max_v : float; (* neg_infinity when empty *)
}

let create () =
  {
    buckets = Array.make num_buckets 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let clear t =
  Array.fill t.buckets 0 num_buckets 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let copy t =
  {
    buckets = Array.copy t.buckets;
    count = t.count;
    sum = t.sum;
    min_v = t.min_v;
    max_v = t.max_v;
  }

(* 2^62 and 2^63 as floats: values at or above 2^62 cannot be pushed
   through [int_of_float] on 63-bit ints, so clamp them to the top two
   buckets directly. The comparison is written so NaN falls into the
   [else] branch of [not (v >= 1.0)] and lands in bucket 0. *)
let two_62 = 4.611686018427387904e18
let two_63 = 9.223372036854775808e18

let bucket_index_int n =
  (* floor(log2 n) for n >= 1 via shifts; allocation-free. *)
  let i = ref 0 in
  let m = ref n in
  while !m > 1 do
    m := !m lsr 1;
    incr i
  done;
  !i

let bucket_index v =
  if not (v >= 1.0) then 0
  else if v >= two_63 then num_buckets - 1
  else if v >= two_62 then num_buckets - 2
  else bucket_index_int (int_of_float v)

let record t v =
  let i = bucket_index v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let record_int t n =
  let i = if n < 1 then 0 else bucket_index_int n in
  let v = float_of_int n in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = if t.count = 0 then 0.0 else t.max_v

let bucket_bounds i =
  let lo = if i = 0 then 0.0 else ldexp 1.0 i in
  let hi = ldexp 1.0 (i + 1) in
  (lo, hi)

let buckets t =
  let acc = ref [] in
  for i = num_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (i, t.buckets.(i)) :: !acc
  done;
  !acc

(* Same rank convention as Stats.percentile: the p-th percentile of n
   samples sits at fractional rank p/100 * (n-1) of the sorted array.
   We locate the bucket holding that rank, interpolate linearly across
   it, and clamp to the exact extremes — the result is always within
   one log2 bucket of the true order statistic. *)
let quantile t p =
  if t.count = 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank = p /. 100.0 *. float_of_int (t.count - 1) in
    let i = ref 0 in
    let below = ref 0 in
    (* smallest bucket i with cumulative count (inclusive) > rank *)
    while
      !i < num_buckets - 1
      && float_of_int (!below + t.buckets.(!i)) <= rank
    do
      below := !below + t.buckets.(!i);
      incr i
    done;
    let c = t.buckets.(!i) in
    let lo, hi = bucket_bounds !i in
    let est =
      if c = 0 then lo
      else
        let frac = (rank -. float_of_int !below) /. float_of_int c in
        lo +. (frac *. (hi -. lo))
    in
    let est = if est < t.min_v then t.min_v else est in
    if est > t.max_v then t.max_v else est
  end

let merge ~into src =
  for i = 0 to num_buckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v

let diff ~after ~before =
  let t = create () in
  for i = 0 to num_buckets - 1 do
    let d = after.buckets.(i) - before.buckets.(i) in
    t.buckets.(i) <- (if d > 0 then d else 0);
    t.count <- t.count + t.buckets.(i)
  done;
  let ds = after.sum -. before.sum in
  t.sum <- (if ds > 0.0 then ds else 0.0);
  if t.count > 0 then begin
    (* Extremes of the delta are only known to bucket resolution. *)
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          let lo, hi = bucket_bounds i in
          if lo < t.min_v then t.min_v <- lo;
          if hi > t.max_v then t.max_v <- hi
        end)
      t.buckets
  end;
  t

let float_close a b =
  let m = Float.max (Float.abs a) (Float.abs b) in
  Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 m

let equal a b =
  a.count = b.count
  && a.buckets = b.buckets
  && float_close a.sum b.sum
  && (a.count = 0 || (a.min_v = b.min_v && a.max_v = b.max_v))

let to_json t =
  let bs =
    List.map (fun (i, c) -> J.List [ J.Int i; J.Int c ]) (buckets t)
  in
  J.Obj
    [
      ("count", J.Int t.count);
      ("sum", J.Float t.sum);
      ("min", J.Float (min_value t));
      ("max", J.Float (max_value t));
      ("buckets", J.List bs);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let num name =
    match J.member name j with
    | Some (J.Int v) -> Ok (float_of_int v)
    | Some (J.Float v) -> Ok v
    | _ -> Error (Printf.sprintf "hist: missing numeric %S" name)
  in
  let* count = num "count" in
  let* sum = num "sum" in
  let* mn = num "min" in
  let* mx = num "max" in
  let* bs =
    match J.member "buckets" j with
    | Some (J.List l) -> Ok l
    | _ -> Error "hist: missing \"buckets\" list"
  in
  let t = create () in
  let* () =
    List.fold_left
      (fun acc entry ->
        let* () = acc in
        match entry with
        | J.List [ J.Int i; J.Int c ] when i >= 0 && i < num_buckets && c >= 0
          ->
            t.buckets.(i) <- t.buckets.(i) + c;
            Ok ()
        | _ -> Error "hist: malformed bucket entry")
      (Ok ()) bs
  in
  let n = Array.fold_left ( + ) 0 t.buckets in
  if n <> int_of_float count then Error "hist: count/bucket mismatch"
  else begin
    t.count <- n;
    t.sum <- sum;
    if n > 0 then begin
      t.min_v <- mn;
      t.max_v <- mx
    end;
    Ok t
  end

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "(empty)"
  else begin
    Format.fprintf ppf "count=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f"
      t.count (mean t) (quantile t 50.0) (quantile t 99.0) (max_value t);
    List.iter
      (fun (i, c) ->
        let lo, hi = bucket_bounds i in
        Format.fprintf ppf "@ [%g,%g):%d" lo hi c)
      (buckets t)
  end

module J = Pr_util.Json

type band = Exact | Rel of float | Ignore

type check = { field : string; band : band }

type outcome = {
  field : string;
  baseline : float option;
  current : float option;
  band : band;
  ok : bool;
  note : string;
}

let number j name =
  match J.member name j with
  | Some (J.Int v) -> Some (float_of_int v)
  | Some (J.Float v) -> Some v
  | _ -> None

let within_exact a b =
  Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* Symmetric band with one unit of absolute slack so zero-valued
   timing fields do not trip on noise. *)
let within_rel tol a b =
  let slack = 1.0 in
  b <= (a *. (1.0 +. tol)) +. slack && a <= (b *. (1.0 +. tol)) +. slack

let compare_row ~spec ~baseline ~current =
  List.map
    (fun (ck : check) ->
      let field = ck.field and band = ck.band in
      let b = number baseline field and c = number current field in
      match (b, c, band) with
      | None, _, _ ->
          { field; baseline = b; current = c; band; ok = true;
            note = "absent in baseline (skipped)" }
      | Some _, _, Ignore ->
          { field; baseline = b; current = c; band; ok = true; note = "ignored" }
      | Some _, None, _ ->
          { field; baseline = b; current = c; band; ok = false;
            note = "missing in current run" }
      | Some bv, Some cv, Exact ->
          let ok = within_exact bv cv in
          { field; baseline = b; current = c; band; ok;
            note = (if ok then "exact" else "deterministic value changed") }
      | Some bv, Some cv, Rel tol ->
          let ok = within_rel tol bv cv in
          let note =
            if ok then Printf.sprintf "within ±%.0f%%" (tol *. 100.0)
            else Printf.sprintf "outside ±%.0f%% band" (tol *. 100.0)
          in
          { field; baseline = b; current = c; band; ok; note })
    spec

let failures outcomes = List.filter (fun o -> not o.ok) outcomes

let serve_spec ~timing_tolerance =
  let exact f = { field = f; band = Exact } in
  let rel f = { field = f; band = Rel timing_tolerance } in
  [
    (* Deterministic under (seed, plan, config): scenario shape and
       counted work. *)
    exact "ads";
    exact "links";
    exact "queries";
    exact "answered";
    exact "route_hits";
    exact "route_misses";
    exact "no_routes";
    exact "handle_hits";
    exact "handle_misses";
    exact "handles_issued";
    exact "handles_evicted";
    exact "rebuilds";
    exact "rebuilt_ads";
    exact "diagram_nodes";
    exact "diagram_preds";
    exact "agreement_checks";
    exact "agreement_failures";
    (* Graceful-degradation counters: simulated-time products of the
       (seed, plan) pair, so exact too. *)
    exact "stale_batches";
    exact "queries_shed";
    exact "max_stale_age";
    exact "link_quarantines";
    exact "link_readmissions";
    (* Wall-clock-derived: gate within the declared band. *)
    rel "qps";
    rel "p50_ns";
    rel "p99_ns";
    rel "admit_ns";
    rel "spec_admit_ns";
    rel "build_ns";
    rel "refresh_ns";
  ]

let pp_outcome ppf o =
  let num = function None -> "-" | Some v -> Printf.sprintf "%g" v in
  let band =
    match o.band with
    | Exact -> "exact"
    | Rel tol -> Printf.sprintf "±%.0f%%" (tol *. 100.0)
    | Ignore -> "ignore"
  in
  Format.fprintf ppf "%-22s %-6s baseline=%-14s current=%-14s %s %s" o.field
    band (num o.baseline) (num o.current)
    (if o.ok then "ok" else "FAIL")
    o.note

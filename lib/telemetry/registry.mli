(** Named metrics resolved once to O(1) handles.

    A registry maps dotted metric names ("serve.route_hits") to
    instruments. Registration hashes the name exactly once and returns
    a mutable handle — a counter or gauge is a one-field record, a
    histogram is a {!Hist.t} — so hot paths touch plain memory and
    never see a string. Registering an existing name returns the same
    handle (idempotent); registering it as a different kind raises
    [Invalid_argument].

    Snapshots are immutable, name-sorted copies supporting [diff]
    (what happened between two points), [merge] (combine shards from
    forked campaign workers), JSON round-trip, and Prometheus-style
    text exposition. *)

type t

type counter
type gauge

val create : unit -> t

val default : t
(** The process-global registry all stack instrumentation records
    into. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> Hist.t

val inc : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit
val get : gauge -> float

val clear : t -> unit
(** Zero every instrument (handles stay valid). *)

(** {1 Snapshots} *)

type value = Counter of int | Gauge of float | Histogram of Hist.t

type snapshot = (string * value) list
(** Sorted by name; histograms are copies. *)

val snapshot : t -> snapshot

val absorb : t -> snapshot -> unit
(** Fold a snapshot into a live registry: counters add, gauges keep
    the max of current and incoming, histograms merge. Instruments are
    created on demand. The sharded engine uses this to fold per-shard
    registries into {!default} at the end of a run; the result is
    order-independent for counters and histograms. *)

val diff : after:snapshot -> before:snapshot -> snapshot
(** Counters and histograms subtract; gauges take the [after] value.
    Names only in [after] pass through unchanged. *)

val merge : snapshot -> snapshot -> snapshot
(** Counters and histograms add; gauges keep the max. Raises
    [Invalid_argument] on a kind clash. *)

val snapshot_to_json : snapshot -> Pr_util.Json.t
(** [{"document": "telemetry-snapshot", "metrics": [...]}]. *)

val snapshot_of_json : Pr_util.Json.t -> (snapshot, string) result

val to_prometheus : snapshot -> string
(** Prometheus text exposition: names sanitized to [[a-zA-Z0-9_]],
    histograms as cumulative [_bucket{le="..."}] series plus [_sum]
    and [_count]. *)

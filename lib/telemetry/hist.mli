(** Fixed-size log2-bucket histograms.

    A histogram is 64 integer buckets — bucket [i] counts recorded
    values in [[2^i, 2^{i+1})], with bucket 0 also absorbing everything
    below 1 and bucket 63 everything at or above [2^63] — plus exact
    [count], [sum], [min] and [max]. {!record} is allocation-free (a
    handful of loads and stores, no boxing, no hashing), so it can sit
    on query and simulation hot paths; {!merge} is exact (bucket-wise
    addition), so per-shard histograms recorded in forked campaign
    workers combine into the same histogram one process would have
    recorded — the mergeable-accounting substrate the paper's
    continuous message/computation evaluation (§5.2–5.3) needs at
    scale.

    Quantiles are estimated by linear interpolation inside the bucket
    holding the requested rank and clamped to the exact [min]/[max]:
    the estimate always lands within one log2 bucket of the exact
    order statistic. *)

type t

val num_buckets : int
(** 64. *)

val create : unit -> t

val clear : t -> unit

val copy : t -> t

val record : t -> float -> unit
(** Record one value. Negative, NaN and sub-1 values land in bucket 0;
    allocation-free. *)

val record_int : t -> int -> unit

val count : t -> int

val sum : t -> float

val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
(** Exact minimum recorded value; 0 when empty. *)

val max_value : t -> float
(** Exact maximum recorded value; 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in [0,100]: the estimated [p]-th
    percentile under the same rank convention as
    {!Pr_util.Stats.percentile} (rank [p/100 * (count-1)]). 0 when
    empty. *)

val bucket_index : float -> int
(** The bucket a value lands in (exposed for tests and displays). *)

val bucket_bounds : int -> float * float
(** [(lo, hi)] with the bucket covering [[lo, hi)]. *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(index, count)], ascending. *)

val merge : into:t -> t -> unit
(** Exact: bucket-wise addition, count/sum added, min/max combined.
    Commutative and associative, and equivalent to recording every
    value into one histogram (sums up to float rounding). *)

val diff : after:t -> before:t -> t
(** Bucket-wise subtraction for snapshot deltas. [count] and [sum]
    subtract exactly; [min]/[max] are re-derived from the surviving
    buckets' bounds (bucket-resolution approximations). *)

val equal : t -> t -> bool
(** Buckets, count, min and max exactly; sums within relative 1e-9
    (merge order changes float addition order). *)

val to_json : t -> Pr_util.Json.t

val of_json : Pr_util.Json.t -> (t, string) result

val pp : Format.formatter -> t -> unit

module J = Pr_util.Json

type kind = Instant | Counter

type t = {
  capacity : int;
  kinds : kind array;
  ts : float array;
  tids : int array;
  names : string array;
  values : float array;
  details : string array;
  mutable head : int; (* total events ever noted; next slot = head mod capacity *)
  mutable on : bool;
}

let create ?(capacity = 512) () =
  let capacity = max 1 capacity in
  {
    capacity;
    kinds = Array.make capacity Instant;
    ts = Array.make capacity 0.0;
    tids = Array.make capacity 0;
    names = Array.make capacity "";
    values = Array.make capacity 0.0;
    details = Array.make capacity "";
    head = 0;
    on = true;
  }

let global = create ~capacity:1024 ()

let enabled t = t.on
let set_enabled t on = t.on <- on

(* Notes can arrive concurrently from the sharded engine's worker
   domains (guard rejections, nemesis faults), so slot allocation and
   the writes it guards are serialized. Uncontended lock cost is
   negligible next to the string formatting every caller already does,
   and the recorder is off the per-event hot path. *)
let note_mutex = Mutex.create ()

let note ?(kind = Instant) ?(tid = 0) ?(value = 0.0) ?(detail = "") t ~ts name
    =
  if t.on then begin
    Mutex.lock note_mutex;
    let i = t.head mod t.capacity in
    t.kinds.(i) <- kind;
    t.ts.(i) <- ts;
    t.tids.(i) <- tid;
    t.names.(i) <- name;
    t.values.(i) <- value;
    t.details.(i) <- detail;
    t.head <- t.head + 1;
    Mutex.unlock note_mutex
  end

let total t = t.head
let length t = min t.head t.capacity

let clear t = t.head <- 0

type event = {
  kind : kind;
  ts : float;
  tid : int;
  name : string;
  value : float;
  detail : string;
}

let events t =
  let n = length t in
  let first = t.head - n in
  List.init n (fun k ->
      let i = (first + k) mod t.capacity in
      {
        kind = t.kinds.(i);
        ts = t.ts.(i);
        tid = t.tids.(i);
        name = t.names.(i);
        value = t.values.(i);
        detail = t.details.(i);
      })

(* Same field layout as Pr_obs.Trace's Chrome trace events so the two
   read alike in tooling: name/ph/ts/pid/tid plus an args object. *)
let event_json e =
  let ph = match e.kind with Instant -> "i" | Counter -> "C" in
  let args =
    (if e.detail = "" then [] else [ ("detail", J.String e.detail) ])
    @ match e.kind with
      | Counter -> [ ("value", J.Float e.value) ]
      | Instant -> if e.value = 0.0 then [] else [ ("value", J.Float e.value) ]
  in
  J.Obj
    ([
       ("name", J.String e.name);
       ("ph", J.String ph);
       ("ts", J.Float e.ts);
       ("pid", J.Int 1);
       ("tid", J.Int e.tid);
     ]
    @ if args = [] then [] else [ ("args", J.Obj args) ])

let to_json ?(reason = "") ?metrics t =
  J.Obj
    ([
       ("document", J.String "post-mortem");
       ("reason", J.String reason);
       ("recorded", J.Int (total t));
       ("capacity", J.Int t.capacity);
       ("events", J.List (List.map event_json (events t)));
     ]
    @
    match metrics with
    | None -> []
    | Some snap -> [ ("metrics", Registry.snapshot_to_json snap) ])

let dump ?metrics ~reason ~path t =
  let oc = open_out path in
  output_string oc (J.to_string (to_json ~reason ?metrics t));
  output_char oc '\n';
  close_out oc

(** Always-on flight recorder: a bounded ring of recent structured
    events for post-mortem dumps.

    Unlike {!Pr_obs.Trace} — which is opt-in, sized for whole-run
    export, and drops the *newest* events when full so recorded spans
    stay balanced — the flight recorder is always on, small, and
    overwrites the *oldest* events, so a dump always shows the moments
    leading up to a failure. Events reuse the trace-event shape
    (kind/name/ts/tid/value/detail) and a disabled recorder costs one
    branch per note.

    {!dump} writes a [{"document": "post-mortem"}] JSON file with the
    surviving events in chronological order, the reason, and an
    optional registry snapshot. Chaos invariant violations, nemesis
    faults, serve self-check failures and engine budget exhaustion all
    note into {!global}. *)

type t

type kind = Instant | Counter

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 512 events. *)

val global : t
(** The process-global always-on recorder stack instrumentation notes
    into. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val note :
  ?kind:kind ->
  ?tid:int ->
  ?value:float ->
  ?detail:string ->
  t ->
  ts:float ->
  string ->
  unit
(** Record one event; overwrites the oldest when full. [ts] is in the
    caller's timebase (simulated seconds everywhere in-repo). *)

val total : t -> int
(** Events ever noted (including overwritten ones). *)

val length : t -> int
(** Events currently held (≤ capacity). *)

val clear : t -> unit

type event = {
  kind : kind;
  ts : float;
  tid : int;
  name : string;
  value : float;
  detail : string;
}

val events : t -> event list
(** Chronological (oldest surviving first). *)

val to_json : ?reason:string -> ?metrics:Registry.snapshot -> t -> Pr_util.Json.t
(** The post-mortem document. *)

val dump :
  ?metrics:Registry.snapshot -> reason:string -> path:string -> t -> unit
(** Write the post-mortem document to [path], newline-terminated. *)

module Graph = Pr_topology.Graph
module Link = Pr_topology.Link
module Bitset = Pr_util.Bitset
module Network = Pr_sim.Network
module Metrics = Pr_sim.Metrics
module Flow = Pr_policy.Flow
module Qos = Pr_policy.Qos
module Uci = Pr_policy.Uci
module Policy_term = Pr_policy.Policy_term
module Transit_policy = Pr_policy.Transit_policy
module Config = Pr_policy.Config
module Packet = Pr_proto.Packet
module Cost_model = Pr_proto.Cost_model
module Design_point = Pr_proto.Design_point

let probe_update = Pr_proto.Probe.make "idrp.update"

type route = {
  dest : Pr_topology.Ad.id;
  class_idx : int;
  path : Pr_topology.Ad.id list;
  allowed : Bitset.t;
}

type update = { route : route; withdraw : bool }

type message = update list

module type VARIANT = sig
  val name : string

  val per_source : bool

  val distribution_scope : bool
end

module Make (V : VARIANT) = struct
  type nonrec message = message

  type node = {
    (* (class, dest) -> routes received per neighbor *)
    rib_in : (int * int, (Pr_topology.Ad.id * route) list) Hashtbl.t;
    (* (class, dest) -> (next hop, the neighbor's advertised route) *)
    selected : (int * int, Pr_topology.Ad.id * route) Hashtbl.t;
    (* memoized allowed-source masks: (class, dest, prev, next) *)
    mask_cache : (int * int * int * int, Bitset.t) Hashtbl.t;
  }

  type t = {
    graph : Graph.t;
    config : Config.t;
    net : message Network.t;
    nodes : node array;
    n : int;
    store : Pr_policy.Policy_store.t;  (* shared compiled policies *)
  }

  let name = V.name

  let design_point =
    Design_point.make Design_point.Distance_vector Design_point.Hop_by_hop
      Design_point.Policy_terms

  let class_count t = if V.per_source then Flow.class_count * t.n else Flow.class_count

  let class_of_flow t (flow : Flow.t) =
    if V.per_source then (Flow.class_key flow * t.n) + flow.Flow.src
    else Flow.class_key flow

  (* Decompose a class index into (qos, uci, fixed source or None). *)
  let decompose t c =
    if V.per_source then begin
      let qk = c / t.n and src = c mod t.n in
      (Qos.of_index (qk / Uci.count), Uci.of_index (qk mod Uci.count), Some src)
    end
    else (Qos.of_index (c / Uci.count), Uci.of_index (c mod Uci.count), None)

  let create graph config net =
    let n = Graph.n graph in
    let make_node _ =
      {
        rib_in = Hashtbl.create 64;
        selected = Hashtbl.create 64;
        mask_cache = Hashtbl.create 64;
      }
    in
    {
      graph;
      config;
      net;
      nodes = Array.init n make_node;
      n;
      store = Pr_policy.Policy_store.of_config config;
    }

  (* Which sources does [at]'s policy admit for transit toward [dest]
     in class [c], arriving from [prev] and departing to [next]. *)
  let mask t at c dest ~prev ~next =
    let node = t.nodes.(at) in
    let key = (c, dest, prev, next) in
    match Hashtbl.find_opt node.mask_cache key with
    | Some b -> b
    | None ->
      let qos, uci, fixed_src = decompose t c in
      let compiled = Pr_policy.Policy_store.compiled t.store at in
      let b = Bitset.create t.n in
      (* The probe flow mirrors Flow.make's defaults (hour 12, not
         authenticated): masks describe steady-state transit policy,
         not a specific packet. *)
      (match fixed_src with
      | Some src ->
        let flow = Flow.make ~src ~dst:dest ~qos ~uci () in
        if
          Pr_policy.Compiled.allows compiled
            { Policy_term.flow; prev = Some prev; next = Some next }
        then Bitset.add b src
      | None ->
        (* One bitset union per passing term instead of n interpreted
           probes — the compiled engine's IDRP fast path. *)
        Pr_policy.Compiled.admitted_sources_into compiled b ~dst:dest ~qos ~uci
          ~hour:12 ~auth:false ~prev:(Some prev) ~next:(Some next));
      Hashtbl.replace node.mask_cache key b;
      b

  let full_set t =
    let b = Bitset.create t.n in
    for i = 0 to t.n - 1 do
      Bitset.add b i
    done;
    b

  let attribute_bytes t allowed =
    let card = Bitset.cardinal allowed in
    4 + (Cost_model.ad_id_bytes * Stdlib.min card (t.n - card))

  let update_bytes t u =
    if u.withdraw then Cost_model.dv_entry_bytes + 2
    else
      Cost_model.path_vector_entry_bytes
        ~path_len:(List.length u.route.path)
        ~pt_bytes:(attribute_bytes t u.route.allowed)

  let message_bytes t updates =
    Cost_model.update_fixed_bytes
    + List.fold_left (fun acc u -> acc + update_bytes t u) 0 updates

  (* Distribution scope (§5.2.1): "updates can specify what other ADs
     are allowed to receive the information described in the update".
     A host-only neighbor whose sources the route does not admit is
     given nothing to hold: policy enforced by information hiding
     rather than by forwarding-time checks. Transit-capable neighbors
     always receive routes — they may carry admitted third-party
     sources. *)
  let scope_excludes t nbr allowed =
    V.distribution_scope
    && (not (Pr_topology.Ad.is_transit_capable (Graph.ad t.graph nbr)))
    && not (Bitset.mem allowed nbr)

  (* The update [at] currently sends [nbr] for (c, dest). *)
  let export_update t at nbr (c, dest) =
    let withdraw () =
      {
        route = { dest; class_idx = c; path = []; allowed = Bitset.create t.n };
        withdraw = true;
      }
    in
    match Hashtbl.find_opt t.nodes.(at).selected (c, dest) with
    | None -> withdraw ()
    | Some (next_hop, r) ->
      if dest = at then begin
        let allowed = full_set t in
        if scope_excludes t nbr allowed then withdraw ()
        else { route = { dest; class_idx = c; path = [ at ]; allowed }; withdraw = false }
      end
      else begin
        let path' = at :: r.path in
        if List.mem nbr path' then withdraw ()
        else begin
          let allowed' = Bitset.copy r.allowed in
          Bitset.inter_into allowed' (mask t at c dest ~prev:nbr ~next:next_hop);
          if Bitset.is_empty allowed' || scope_excludes t nbr allowed' then withdraw ()
          else
            { route = { dest; class_idx = c; path = path'; allowed = allowed' }; withdraw = false }
        end
      end

  let export t at pairs =
    if pairs <> [] then
      List.iter
        (fun nbr ->
          let updates = List.map (export_update t at nbr) pairs in
          Network.send t.net ~src:at ~dst:nbr ~bytes:(message_bytes t updates) updates)
        (Network.up_neighbors t.net at)

  (* Re-run selection for (c, dest) at [at]; true when the choice
     changed. Selection: shortest AD path, then lowest neighbor id —
     among usable (non-empty allowed) candidates. *)
  let reselect t at (c, dest) =
    let node = t.nodes.(at) in
    if dest = at then false
    else begin
      let candidates =
        match Hashtbl.find_opt node.rib_in (c, dest) with
        | None -> []
        | Some l -> l
      in
      let score (nbr, r) = (List.length r.path, nbr) in
      let best =
        List.fold_left
          (fun acc (nbr, r) ->
            if Bitset.is_empty r.allowed then acc
            else
              match acc with
              | None -> Some (nbr, r)
              | Some cur -> if score (nbr, r) < score cur then Some (nbr, r) else acc)
          None candidates
      in
      let current = Hashtbl.find_opt node.selected (c, dest) in
      let same =
        match (current, best) with
        | None, None -> true
        | Some (n1, r1), Some (n2, r2) ->
          n1 = n2 && r1.path = r2.path && Bitset.equal r1.allowed r2.allowed
        | _ -> false
      in
      if same then false
      else begin
        (match best with
        | None -> Hashtbl.remove node.selected (c, dest)
        | Some choice -> Hashtbl.replace node.selected (c, dest) choice);
        true
      end
    end

  let own_pairs t at = List.init (class_count t) (fun c -> (c, at))

  let start t =
    for at = 0 to t.n - 1 do
      let node = t.nodes.(at) in
      List.iter
        (fun (c, dest) ->
          Hashtbl.replace node.selected (c, dest)
            (at, { dest; class_idx = c; path = [ at ]; allowed = full_set t }))
        (own_pairs t at);
      export t at (own_pairs t at)
    done

  let handle_message t ~at ~from updates =
    Metrics.record_computation (Network.metrics t.net) at ~work:(List.length updates) ();
    Pr_proto.Probe.computation probe_update t.net ~at ~work:(List.length updates) ();
    let node = t.nodes.(at) in
    let touched = ref [] in
    List.iter
      (fun u ->
        let key = (u.route.class_idx, u.route.dest) in
        let existing =
          match Hashtbl.find_opt node.rib_in key with
          | None -> []
          | Some l -> List.remove_assoc from l
        in
        let entry =
          if u.withdraw then existing
          else if List.mem at u.route.path then existing (* loop: reject *)
          else (from, u.route) :: existing
        in
        Hashtbl.replace node.rib_in key entry;
        touched := key :: !touched)
      updates;
    let changed = List.filter (reselect t at) (List.sort_uniq compare !touched) in
    export t at changed

  let all_known_pairs t at =
    let node = t.nodes.(at) in
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) node.selected [] in
    List.sort_uniq compare keys

  let handle_link t ~at ~link ~up =
    let l = Graph.link t.graph link in
    let nbr = Link.other_end l at in
    if up then export t at (all_known_pairs t at)
    else begin
      let node = t.nodes.(at) in
      let touched = ref [] in
      Hashtbl.iter
        (fun key entries ->
          if List.mem_assoc nbr entries then touched := key :: !touched)
        node.rib_in;
      List.iter
        (fun key ->
          let entries = Hashtbl.find node.rib_in key in
          Hashtbl.replace node.rib_in key (List.remove_assoc nbr entries))
        !touched;
      let changed = List.filter (reselect t at) (List.sort_uniq compare !touched) in
      export t at changed
    end

  let reset_node t ~at =
    let node = t.nodes.(at) in
    Hashtbl.reset node.rib_in;
    Hashtbl.reset node.selected;
    (* mask_cache is a pure function of the static policy
       configuration, so state loss need not invalidate it. *)
    List.iter
      (fun (c, dest) ->
        Hashtbl.replace node.selected (c, dest)
          (at, { dest; class_idx = c; path = [ at ]; allowed = full_set t }))
      (own_pairs t at);
    export t at (own_pairs t at)

  (* {2 Adversarial surface}

     Path attributes make IDRP the most checkable of the four designs:
     a receiver can insist the path starts at the sender, terminates at
     the claimed destination, is simple, avoids the receiver, and that
     the allowed-source set is no wider than what the sender's own
     advertised Policy Terms admit for that (prev, next) transit — the
     product rule [export_update] applies when honest. *)

  (* Why an honest [from]'s update to [at] must pass, case by case:
     origin routes are [\[from\]] with a full allowed set; longer paths
     are built by prepending the sender to a stored simple path that
     never contains the holder, and intersecting allowed with the
     sender's own mask for prev = receiver, next = second path hop. *)
  let route_error t ~at ~from (r : route) =
    if r.dest < 0 || r.dest >= t.n then Some (Printf.sprintf "destination %d out of range" r.dest)
    else if r.class_idx < 0 || r.class_idx >= class_count t then
      Some (Printf.sprintf "class %d out of range" r.class_idx)
    else if List.exists (fun ad -> ad < 0 || ad >= t.n) r.path then Some "path ad out of range"
    else
      match r.path with
      | [] -> Some "empty path on a non-withdrawn route"
      | head :: rest ->
        if head <> from then
          Some (Printf.sprintf "path head %d is not the sender %d" head from)
        else if List.length (List.sort_uniq compare r.path) <> List.length r.path then
          Some "path is not simple"
        else if List.mem at r.path then
          Some (Printf.sprintf "path already contains the receiver %d" at)
        else begin
          let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> assert false in
          if last r.path <> r.dest then
            Some
              (Printf.sprintf "path terminates at %d, not the claimed destination %d"
                 (last r.path) r.dest)
          else if Bitset.is_empty r.allowed then Some "empty allowed-source set"
          else
            match rest with
            | [] -> None (* origin's own route: full allowed set is legitimate *)
            | next :: _ ->
              if
                Bitset.subset r.allowed
                  (mask t from r.class_idx r.dest ~prev:at ~next)
              then None
              else
                Some
                  (Printf.sprintf
                     "allowed sources exceed what ad %d's own policy terms admit" from)
        end

  let check_update t ~at ~from updates =
    let rec go = function
      | [] -> Ok ()
      | u :: rest ->
        if u.withdraw then
          if u.route.dest < 0 || u.route.dest >= t.n then
            Error (Printf.sprintf "withdraw for destination %d out of range" u.route.dest)
          else go rest
        else begin
          match route_error t ~at ~from u.route with
          | Some e -> Error e
          | None -> go rest
        end
    in
    go updates

  (* Widen one route's allowed set to everyone and stutter the path's
     last hop: a transit leak stapled to a non-simple path, so the
     tamper stays detectable even under fully open policies (and
     index-safe — every id already existed). *)
  let corrupt_update t ~rng updates =
    let routes = List.filteri (fun _ u -> not u.withdraw) updates in
    if routes = [] then None
    else begin
      let k = Pr_util.Rng.int rng (List.length routes) in
      let picked = List.nth routes k in
      Some
        (List.map
           (fun u ->
             if u == picked then begin
               let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> u.route.dest in
               let path = u.route.path @ [ last u.route.path ] in
               { u with route = { u.route with path; allowed = full_set t } }
             end
             else u)
           updates)
    end

  (* The hijack: claim to BE one hop from a destination the origin
     merely neighbors (path [origin] must terminate at [dest]), with an
     all-sources allowed set. Shortest possible path, so guard-less
     receivers prefer it. The target is the origin's second up
     neighbor — the chatter action flaps the first's link, which would
     flush the forged RIB entry there before the post-convergence
     audit. *)
  let forge_update t ~origin =
    let nbrs = ref [] in
    Graph.iter_neighbor_ids t.graph origin ~f:(fun nbr -> nbrs := nbr :: !nbrs);
    let dest =
      match List.rev !nbrs with
      | _ :: second :: _ -> second
      | [ only ] -> only
      | [] -> (origin + 1) mod t.n
    in
    let u =
      {
        route = { dest; class_idx = 0; path = [ origin ]; allowed = full_set t };
        withdraw = false;
      }
    in
    Some ([ u ], message_bytes t [ u ])

  let audit_state t ~at =
    let node = t.nodes.(at) in
    let bad = ref None in
    Hashtbl.iter
      (fun _key entries ->
        if !bad = None then
          List.iter
            (fun (nbr, r) ->
              if !bad = None then
                match route_error t ~at ~from:nbr r with
                | Some e ->
                  bad :=
                    Some (Printf.sprintf "rib-in route from ad %d for %d: %s" nbr r.dest e)
                | None -> ())
            entries)
      node.rib_in;
    !bad

  (* [nbr] re-exports every pair it has a selection for, to [at]
     alone — the directed form of the link-up full exchange. *)
  let resync t ~at ~nbr =
    let pairs = all_known_pairs t nbr in
    if pairs <> [] && List.mem at (Network.up_neighbors t.net nbr) then begin
      let updates = List.map (export_update t nbr at) pairs in
      Network.send t.net ~src:nbr ~dst:at ~bytes:(message_bytes t updates) updates
    end

  let prepare_flow _t _flow = Packet.no_prep

  let originate _t _packet = ()

  let forward t ~at ~from:_ packet =
    let flow = packet.Packet.flow in
    if at = flow.Flow.dst then Packet.Deliver
    else begin
      let c = class_of_flow t flow in
      match Hashtbl.find_opt t.nodes.(at).selected (c, flow.Flow.dst) with
      | None -> Packet.Drop "no route for policy class"
      | Some (next_hop, r) ->
        if not (Bitset.mem r.allowed flow.Flow.src) then
          Packet.Drop "selected route not permitted for this source"
        else Packet.Forward next_hop
    end

  let table_entries t ad = Hashtbl.length t.nodes.(ad).selected

  let selected_route t ~at ~dst ~flow =
    let c = class_of_flow t flow in
    match Hashtbl.find_opt t.nodes.(at).selected (c, dst) with
    | None -> None
    | Some (_, r) -> if at = dst then Some r else Some { r with path = at :: r.path }
end

module Standard = Make (struct
  let name = "idrp"

  let per_source = false

  let distribution_scope = false
end)

module Per_source = Make (struct
  let name = "idrp-per-source"

  let per_source = true

  let distribution_scope = false
end)

module Scoped = Make (struct
  let name = "idrp-scoped"

  let per_source = false

  let distribution_scope = true
end)

(** A deliberately broken protocol variant: the invariant harness's
    non-vacuity check.

    Wraps plain link-state ({!Pr_ls.Ls}); any AD that observes a link
    failure becomes permanently "confused" and thereafter drops packets
    for even destinations ("stale FIB") and bounces the rest back to
    the previous hop (a two-AD forwarding loop). Restarts do not clear
    it. A chaos run of any plan containing a topology fault must
    therefore report loop and blackhole violations against this
    protocol — if it reports none, the harness is checking nothing.

    Deliberately NOT in {!Pr_core.Registry.all} (it would fail every
    conformance exhibit); resolve it via {!Chaos.find_protocol}. *)

type message = Pr_ls.Ls.message

include Pr_proto.Protocol_intf.PROTOCOL with type message := message

val packed : Pr_core.Registry.packed

module J = Pr_util.Json
module Rng = Pr_util.Rng
module Stats = Pr_util.Stats
module Graph = Pr_topology.Graph
module Link = Pr_topology.Link
module Flow = Pr_policy.Flow
module Engine = Pr_sim.Engine
module Network = Pr_sim.Network
module Metrics = Pr_sim.Metrics
module Churn = Pr_sim.Churn
module Runner = Pr_proto.Runner
module Forwarding = Pr_proto.Forwarding
module Packet = Pr_proto.Packet
module Registry = Pr_core.Registry
module Scenario = Pr_core.Scenario
module Trace = Pr_obs.Trace
module Guard = Pr_guard.Guard

type violation = {
  time : float;
  kind : string;
  flow : (Pr_topology.Ad.id * Pr_topology.Ad.id) option;
  detail : string;
}

type report = {
  protocol : string;
  scenario : string;
  seed : int;
  plan : string;
  guard : string;
  attackers : Pr_topology.Ad.id list;
  converged : bool;
  stop_reason : string;
  sim_time : float;
  events : int;
  reconvergence_time : float;
  fault_log : (float * string) list;
  msgs_dropped : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  msgs_reordered : int;
  msgs_corrupted : int;
  msgs_replayed : int;
  msgs_forged : int;
  updates_rejected : int;
  quarantines : int;
  quarantine_drops : int;
  readmissions : int;
  checks : int;
  transient_loops : int;
  attack_probes : int;
  attack_delivered : int;
  probes : int;
  baseline_delivered : int;
  delivered : int;
  violations : violation list;
  messages : int;
  bytes : int;
  computations : int;
  transit_computations : int;
  msgs_lost : int;
  table_total : int;
  table_max : int;
  msg_max : int;
  msg_mean : float;
  msg_p90 : float;
  tbl_p90 : float;
}

let count_kind t kind =
  List.length (List.filter (fun v -> v.kind = kind) t.violations)

let loop_violations t = count_kind t "loop"

let blackhole_violations t = count_kind t "blackhole"

let containment_violations t = count_kind t "containment"

let availability_violations t = count_kind t "availability"

let find_protocol name =
  if name = Broken.name then Some Broken.packed else Registry.find_opt name

(* How many packets a flow gets before "undeliverable" is final.
   Retries matter: ORWG answers a broken cached route by dropping the
   packet and re-signaling setup, so the repaired route only carries
   the *next* packet (§5.4) — that is recovery, not a blackhole. *)
let probe_attempts = 3

(* Flows probed at each mid-run checkpoint (a subset: checkpoints run
   inside the event queue while the system is still disturbed, and
   only gather the transient-loop statistic, never violations). *)
let checkpoint_flows = 10

let run ?(plan = Plan.default) ?(guard = Guard.default_config) ?flows
    ?(probes = 40) ?churn ?max_events ?(trace = Trace.disabled) ?(shards = 1)
    (Registry.Packed (module P) : Registry.packed) (scenario : Scenario.t) =
  let module R = Runner.Make (P) in
  let guard_cfg = guard in
  let seed = scenario.Scenario.seed in
  let g = scenario.Scenario.graph in
  let flows =
    match flows with
    | Some fs -> fs
    | None -> Scenario.flows scenario ~rng:(Rng.derive seed "chaos-probes") ~count:probes ()
  in
  (* Pre-warm the shared compiled-policy store: the faulted run, the
     residual-topology baseline below, and every validation probe all
     key off this configuration, so the terms compile exactly once. *)
  ignore (Pr_policy.Policy_store.of_config scenario.Scenario.config);
  let r = R.setup ~trace ~shards g scenario.Scenario.config in
  let engine = Network.engine (R.network r) in
  (* The update guard interposes on every AD's receive path and link
     observations — uniformly, the attacker included (it is just
     another suspicious domain). Readmission replays the adjacency
     bring-up exchange so state dropped during a quarantine is
     recovered. Benign traffic is untouched: every honest update
     passes [check_update] by contract, and the benign storm spreads
     its flaps over random links, far below the suppress threshold. *)
  let guard =
    Guard.create ~config:guard_cfg ~engine ~n:(Graph.n g)
      ~on_readmit:(fun ~at ~nbr -> R.resync r ~at ~nbr)
      ()
  in
  if guard_cfg.Guard.enabled then begin
    R.set_receive_filter r
      (Some
         (fun ~at ~from msg ->
           Guard.screen guard ~at ~from (R.check_update r ~at ~from msg)));
    R.set_link_tap r
      (Some (fun ~at ~nbr ~up -> Guard.observe_link guard ~at ~nbr ~up))
  end;
  let nem =
    Nemesis.install (R.network r)
      ~rng:(Rng.derive seed "faults")
      ~crash:(fun ad -> R.crash_ad r ad)
      ~restart:(fun ad -> R.restart_ad r ad)
      ~corrupt:(fun rng msg -> R.corrupt_update r ~rng msg)
      ~forge:(fun ~origin -> R.forge_update r ~origin)
      plan
  in
  let attackers = Nemesis.attackers nem in
  let is_attacker ad = List.mem ad attackers in
  let honest_flow (f : Flow.t) = not (is_attacker f.Flow.src || is_attacker f.Flow.dst) in
  Option.iter
    (fun (events, spacing) ->
      Churn.schedule (R.network r) (Rng.derive seed "churn") ~events ~spacing ())
    churn;
  (* Continuous checking: probe forwarding just after every incident.
     Loops observed here are *transient* — expected of hop-by-hop
     designs while databases disagree (experiment E10) — so they are
     reported as a statistic. Only loops that survive reconvergence
     become violations, below. *)
  let sample = List.filteri (fun i _ -> i < checkpoint_flows) flows in
  let checks = ref 0 in
  let transient_loops = ref 0 in
  (* Availability under attack (a statistic, like transient loops):
     how many honest-pair probes deliver while the adversary is live.
     Only gathered for Byzantine plans, so benign runs replay
     byte-identically. *)
  let attack_probes = ref 0 in
  let attack_delivered = ref 0 in
  List.iter
    (fun tm ->
      Engine.schedule_at engine ~time:(tm +. 0.25) (fun () ->
          incr checks;
          List.iter
            (fun f ->
              let outcome = R.send_flow r f in
              (match outcome with
              | Forwarding.Looped _ -> incr transient_loops
              | _ -> ());
              if attackers <> [] && honest_flow f then begin
                incr attack_probes;
                if Forwarding.delivered outcome then incr attack_delivered
              end)
            sample))
    (Plan.incident_times plan);
  let conv = R.converge ?max_events r in
  (* Damage the plan never repaired (crash without restart, partition
     without heal): the baseline gets the same residual topology, so
     comparing delivery isolates protocol failures from plain
     unreachability. Healing plans leave no residue and the baseline
     reduces to a clean converged run. *)
  let net = R.network r in
  let residual_links =
    List.rev
      (Graph.fold_links g ~init:[] ~f:(fun acc l ->
           if Network.link_is_up net l.Link.id then acc else l.Link.id :: acc))
  in
  let down_nodes =
    List.filter (fun ad -> not (Network.node_is_up net ad)) (List.init (Graph.n g) Fun.id)
  in
  let b = R.setup g scenario.Scenario.config in
  ignore (R.converge ?max_events b);
  if residual_links <> [] || down_nodes <> [] then begin
    List.iter (fun ad -> R.crash_ad b ad) down_nodes;
    List.iter (fun lid -> R.fail_link b lid) residual_links;
    ignore (R.converge ?max_events b)
  end;
  let deliver rr f =
    let rec go k last =
      if k = 0 then last
      else
        let o = R.send_flow rr f in
        match o with Forwarding.Delivered _ -> o | _ -> go (k - 1) o
    in
    go probe_attempts (Forwarding.Prep_failed { reason = "unprobed"; prep = Packet.no_prep })
  in
  let violations = ref [] in
  let violate ~flow kind detail =
    violations := { time = conv.Runner.sim_time; kind; flow; detail } :: !violations;
    let tid = match flow with Some (src, _) -> src | None -> 0 in
    Pr_telemetry.Flight.note Pr_telemetry.Flight.global ~ts:conv.Runner.sim_time
      ~tid
      ~detail:(kind ^ ": " ^ detail)
      "invariant.violation";
    Pr_telemetry.Registry.(inc (counter default "chaos.violations"));
    if Trace.enabled trace then
      Trace.instant trace ~ts:conv.Runner.sim_time ~tid "invariant.violation"
  in
  (* Containment: after reconvergence, no honest up AD may hold
     routing state its own validation would have rejected — poisoned
     metrics, policy-violating entries, fabricated adjacencies. This is
     the ground-truth check that a Byzantine neighbor's lies did not
     stick; it also fires on non-Byzantine plans if corruption ever
     leaks into tables. Attackers (and crashed ADs) are exempt: only
     honest state is contained. *)
  if conv.Runner.converged then
    List.iter
      (fun ad ->
        if (not (is_attacker ad)) && Network.node_is_up net ad then
          match R.audit_state r ~at:ad with
          | Some reason ->
            violate ~flow:None "containment" (Printf.sprintf "ad %d: %s" ad reason)
          | None -> ())
      (List.init (Graph.n g) Fun.id);
  (* Under a Byzantine plan only honest-pair flows are judged: a flow
     sourced at or destined to the attacker proves nothing about the
     protocol (the adversary may simply refuse to behave). An honest
     pair the baseline delivers but the attacked run does not is an
     availability-under-attack violation. *)
  let probed = if attackers = [] then flows else List.filter honest_flow flows in
  let baseline_delivered = ref 0 in
  let delivered = ref 0 in
  if conv.Runner.converged then
    List.iter
      (fun (f : Flow.t) ->
        let b_out = deliver b f in
        let f_out = deliver r f in
        if Forwarding.delivered b_out then incr baseline_delivered;
        if Forwarding.delivered f_out then incr delivered;
        let pair = Some (f.Flow.src, f.Flow.dst) in
        match f_out with
        | Forwarding.Looped _ ->
          violate ~flow:pair "loop" "forwarding loop after reconvergence"
        | _ ->
          if Forwarding.delivered b_out && not (Forwarding.delivered f_out) then
            let detail =
              match f_out with
              | Forwarding.Dropped { at; reason; _ } ->
                Printf.sprintf "dropped at ad %d: %s" at reason
              | Forwarding.Prep_failed { reason; _ } -> "route setup failed: " ^ reason
              | _ -> "undelivered"
            in
            let kind = if attackers = [] then "blackhole" else "availability" in
            violate ~flow:pair kind
              (detail ^ " (baseline on the same residual topology delivers)"))
      probed
  else
    violate ~flow:None "no-reconvergence"
      (Printf.sprintf "event budget exhausted after %d events" conv.Runner.events);
  let m = R.metrics r in
  let n = Graph.n g in
  let per_ad_msgs = List.init n (fun ad -> float_of_int (Metrics.messages_of m ad)) in
  let per_ad_tbls = List.init n (fun ad -> float_of_int (P.table_entries (R.protocol r) ad)) in
  {
    protocol = P.name;
    scenario = scenario.Scenario.label;
    seed;
    plan = Plan.to_string plan;
    guard = Guard.config_to_string guard_cfg;
    attackers;
    converged = conv.Runner.converged;
    stop_reason = (if conv.Runner.converged then "drained" else "event-budget");
    sim_time = conv.Runner.sim_time;
    events = conv.Runner.events;
    reconvergence_time =
      Stdlib.max 0.0 (conv.Runner.sim_time -. Plan.last_incident_time plan);
    fault_log = Nemesis.fault_log nem;
    msgs_dropped = Nemesis.dropped nem;
    msgs_duplicated = Nemesis.duplicated nem;
    msgs_delayed = Nemesis.delayed nem;
    msgs_reordered = Nemesis.reordered nem;
    msgs_corrupted = Nemesis.corrupted nem;
    msgs_replayed = Nemesis.replayed nem;
    msgs_forged = Nemesis.forged nem;
    updates_rejected = Guard.updates_rejected guard;
    quarantines = Guard.quarantines_total guard;
    quarantine_drops = Guard.quarantine_drops guard;
    readmissions = Guard.readmissions guard;
    checks = !checks;
    transient_loops = !transient_loops;
    attack_probes = !attack_probes;
    attack_delivered = !attack_delivered;
    probes = List.length probed;
    baseline_delivered = !baseline_delivered;
    delivered = !delivered;
    violations = List.rev !violations;
    messages = Metrics.messages m;
    bytes = Metrics.bytes m;
    computations = Metrics.computations m;
    transit_computations =
      List.fold_left (fun acc ad -> acc + Metrics.computations_of m ad) 0 (Graph.transit_ids g);
    msgs_lost = Metrics.msgs_lost m;
    table_total = R.table_entries r;
    table_max = R.max_table_entries r;
    msg_max = List.fold_left (fun acc ad -> Stdlib.max acc (Metrics.messages_of m ad)) 0 (List.init n Fun.id);
    msg_mean = Stats.mean per_ad_msgs;
    msg_p90 = Stats.percentile per_ad_msgs 90.0;
    tbl_p90 = Stats.percentile per_ad_tbls 90.0;
  }

(* No wall-clock anywhere: identical (seed, plan) must render
   byte-identically. *)
let report_json t =
  J.Obj
    [
      ("protocol", J.String t.protocol);
      ("scenario", J.String t.scenario);
      ("seed", J.Int t.seed);
      ("plan", J.String t.plan);
      ("guard", J.String t.guard);
      ("attackers", J.List (List.map (fun ad -> J.Int ad) t.attackers));
      ("converged", J.Bool t.converged);
      ("stop_reason", J.String t.stop_reason);
      ("sim_time", J.Float t.sim_time);
      ("events", J.Int t.events);
      ("reconvergence_time", J.Float t.reconvergence_time);
      ( "fault_log",
        J.List
          (List.map
             (fun (ts, what) -> J.Obj [ ("t", J.Float ts); ("fault", J.String what) ])
             t.fault_log) );
      ("msgs_dropped", J.Int t.msgs_dropped);
      ("msgs_duplicated", J.Int t.msgs_duplicated);
      ("msgs_delayed", J.Int t.msgs_delayed);
      ("msgs_reordered", J.Int t.msgs_reordered);
      ("msgs_corrupted", J.Int t.msgs_corrupted);
      ("msgs_replayed", J.Int t.msgs_replayed);
      ("msgs_forged", J.Int t.msgs_forged);
      ("updates_rejected", J.Int t.updates_rejected);
      ("quarantines", J.Int t.quarantines);
      ("quarantine_drops", J.Int t.quarantine_drops);
      ("readmissions", J.Int t.readmissions);
      ("msgs_lost", J.Int t.msgs_lost);
      ("checks", J.Int t.checks);
      ("transient_loops", J.Int t.transient_loops);
      ("attack_probes", J.Int t.attack_probes);
      ("attack_delivered", J.Int t.attack_delivered);
      ("probes", J.Int t.probes);
      ("baseline_delivered", J.Int t.baseline_delivered);
      ("delivered", J.Int t.delivered);
      ("loop_violations", J.Int (loop_violations t));
      ("blackhole_violations", J.Int (blackhole_violations t));
      ("containment_violations", J.Int (containment_violations t));
      ("availability_violations", J.Int (availability_violations t));
      ( "violations",
        J.List
          (List.map
             (fun v ->
               J.Obj
                 ([ ("kind", J.String v.kind); ("t", J.Float v.time) ]
                 @ (match v.flow with
                   | Some (src, dst) -> [ ("src", J.Int src); ("dst", J.Int dst) ]
                   | None -> [])
                 @ [ ("detail", J.String v.detail) ]))
             t.violations) );
      ("messages", J.Int t.messages);
      ("bytes", J.Int t.bytes);
      ("computations", J.Int t.computations);
      ("transit_computations", J.Int t.transit_computations);
      ("table_total", J.Int t.table_total);
      ("table_max", J.Int t.table_max);
      ("msg_max", J.Int t.msg_max);
      ("msg_mean", J.Float t.msg_mean);
      ("msg_p90", J.Float t.msg_p90);
      ("tbl_p90", J.Float t.tbl_p90);
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>chaos %s on %s (seed %d)@," t.protocol t.scenario t.seed;
  Format.fprintf ppf "plan: %s@," (if t.plan = "" then "(none)" else t.plan);
  Format.fprintf ppf "guard: %s@," t.guard;
  if t.attackers <> [] then
    Format.fprintf ppf "byzantine ad(s): %s@,"
      (String.concat ", " (List.map string_of_int t.attackers));
  List.iter (fun (ts, what) -> Format.fprintf ppf "  t=%6.2f  %s@," ts what) t.fault_log;
  Format.fprintf ppf
    "message faults: %d dropped, %d duplicated, %d delayed, %d reordered; %d lost in flight@,"
    t.msgs_dropped t.msgs_duplicated t.msgs_delayed t.msgs_reordered t.msgs_lost;
  if t.attackers <> [] then
    Format.fprintf ppf
      "byzantine faults: %d corrupted, %d replayed, %d forged@,"
      t.msgs_corrupted t.msgs_replayed t.msgs_forged;
  if t.guard <> "off" then
    Format.fprintf ppf
      "guard: %d updates rejected, %d quarantines (%d drops, %d readmissions)@,"
      t.updates_rejected t.quarantines t.quarantine_drops t.readmissions;
  Format.fprintf ppf "%s at t=%.2f (%d events); reconvergence %.2f after last fault@,"
    (if t.converged then "converged" else "DID NOT CONVERGE")
    t.sim_time t.events t.reconvergence_time;
  Format.fprintf ppf "checkpoints: %d, transient loops observed: %d@," t.checks
    t.transient_loops;
  if t.attackers <> [] then
    Format.fprintf ppf "availability under attack: %d/%d honest probes delivered mid-incident@,"
      t.attack_delivered t.attack_probes;
  Format.fprintf ppf "probes: %d/%d delivered (baseline %d/%d)@," t.delivered t.probes
    t.baseline_delivered t.probes;
  (match t.violations with
  | [] ->
    if t.attackers = [] then
      Format.fprintf ppf "invariants: OK (no loop, no blackhole)"
    else
      Format.fprintf ppf
        "invariants: OK (no loop, no availability loss, no containment breach)"
  | vs ->
    Format.fprintf ppf "INVARIANT VIOLATIONS (%d):" (List.length vs);
    List.iter
      (fun v ->
        Format.fprintf ppf "@,  [%s]%s %s" v.kind
          (match v.flow with
          | Some (s, d) -> Printf.sprintf " flow %d->%d" s d
          | None -> "")
          v.detail)
      vs);
  Format.fprintf ppf "@]"

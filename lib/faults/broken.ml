module Graph = Pr_topology.Graph
module Flow = Pr_policy.Flow
module Packet = Pr_proto.Packet
module Ls = Pr_ls.Ls

(* The deliberately broken protocol the harness must catch (the
   non-vacuity check): plain link-state whose router, once it has seen
   any link failure, keeps forwarding out of a "stale FIB" — it
   blackholes half the destinations and bounces packets for the rest
   back where they came from, and a restart does not clear the
   condition. Under any plan that takes a link down, probes crossing a
   confused AD must produce blackhole and loop violations; a harness
   that reports none is vacuous. *)
module M = struct
  type message = Ls.message

  type t = { inner : Ls.t; confused : bool array }

  let name = "broken-ls"

  let design_point = Ls.design_point

  let create graph config net =
    { inner = Ls.create graph config net; confused = Array.make (Graph.n graph) false }

  let start t = Ls.start t.inner

  let handle_message t ~at ~from msg = Ls.handle_message t.inner ~at ~from msg

  let handle_link t ~at ~link ~up =
    Ls.handle_link t.inner ~at ~link ~up;
    if not up then t.confused.(at) <- true

  (* Total state loss does not cure the confusion: the bug lives in
     nonvolatile configuration, so even a post-heal restart stays
     broken and the final invariant sweep is guaranteed to see it. *)
  let reset_node t ~at = Ls.reset_node t.inner ~at

  (* The adversarial surface is the honest LS one: broken-ls validates
     and audits correctly — its defect is downstream, in the data
     plane. Forged LSAs it accepts (when unguarded) therefore show up
     in the containment audit, which is exactly the non-vacuity check
     the guard tests need. *)

  let check_update t ~at ~from msg = Ls.check_update t.inner ~at ~from msg

  let corrupt_update t ~rng msg = Ls.corrupt_update t.inner ~rng msg

  let forge_update t ~origin = Ls.forge_update t.inner ~origin

  let audit_state t ~at = Ls.audit_state t.inner ~at

  let resync t ~at ~nbr = Ls.resync t.inner ~at ~nbr

  let prepare_flow t flow = Ls.prepare_flow t.inner flow

  let originate t packet = Ls.originate t.inner packet

  let forward t ~at ~from packet =
    let flow = packet.Packet.flow in
    if t.confused.(at) && at <> flow.Flow.dst then
      if flow.Flow.dst mod 2 = 0 then Packet.Drop "broken-ls: stale FIB entry"
      else
        match from with
        | Some prev -> Packet.Forward prev
        | None -> Ls.forward t.inner ~at ~from packet
    else Ls.forward t.inner ~at ~from packet

  let table_entries t ad = Ls.table_entries t.inner ad
end

include M

let packed = Pr_core.Registry.Packed (module M)

module Engine = Pr_sim.Engine
module Network = Pr_sim.Network
module Trace = Pr_obs.Trace
module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Link = Pr_topology.Link

let log_src = Logs.Src.create "pr.faults" ~doc:"Fault injection"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Per-message state is kept per scheduling slot so the interposer and
   tamper hook — which execute on whichever domain performs the send —
   never share mutable state across lanes: slot 0 is the main domain
   (and the whole story for sequential runs), slots 1..N the worker
   lanes of a sharded engine. Probabilistic draws on a lane come from
   that lane's own split stream, so a sharded run is deterministic per
   (seed, plan, shard-count); scheduled incidents (crash, partition,
   storm) run as control events on the main domain and fire
   identically at every shard count. *)
type t = {
  slots : int;
  logs : (float * string) list array;  (* per-slot, reverse chronological *)
  dropped : int array;
  duplicated : int array;
  delayed : int array;
  reordered : int array;
  corrupted : int array;
  mutable partition_cut : Link.id list;
  mutable replayed : int;
  mutable forged : int;
  mutable attackers : Pr_topology.Ad.id list;
}

let isum = Array.fold_left ( + ) 0

(* Merge the per-slot logs into one chronological list. Within a slot
   entries are already ordered; across slots ties break on (slot,
   position), so the merged log is a deterministic function of the
   run. The single-slot fast path is the sequential engine's exact
   historical output. *)
let fault_log t =
  if t.slots = 1 then List.rev t.logs.(0)
  else begin
    let tagged = ref [] in
    Array.iteri
      (fun slot lst ->
        List.iteri
          (fun pos e -> tagged := (e, slot, pos) :: !tagged)
          (List.rev lst))
      t.logs;
    List.sort
      (fun ((t1, _), s1, p1) ((t2, _), s2, p2) ->
        compare (t1, s1, p1) (t2, s2, p2))
      !tagged
    |> List.map (fun (e, _, _) -> e)
  end

let dropped t = isum t.dropped

let duplicated t = isum t.duplicated

let delayed t = isum t.delayed

let reordered t = isum t.reordered

let partition_cut t = t.partition_cut

let corrupted t = isum t.corrupted

let replayed t = t.replayed

let forged t = t.forged

let attackers t = t.attackers

let in_window (w : Plan.window) now = now >= w.Plan.from_time && now <= w.Plan.until_time

let install (type msg) (net : msg Network.t) ~rng ?crash ?restart ?corrupt
    ?forge (plan : Plan.t) =
  let engine = Network.engine net in
  let graph = Network.graph net in
  let shards = Engine.shard_count engine in
  let nslots = if shards <= 1 then 1 else shards + 1 in
  (* Current scheduling slot: main/control context is -1 + 1 = 0. *)
  let slot () = Engine.current_shard engine + 1 in
  let t =
    {
      slots = nslots;
      logs = Array.make nslots [];
      dropped = Array.make nslots 0;
      duplicated = Array.make nslots 0;
      delayed = Array.make nslots 0;
      reordered = Array.make nslots 0;
      corrupted = Array.make nslots 0;
      partition_cut = [];
      replayed = 0;
      forged = 0;
      attackers = [];
    }
  in
  let note time what =
    let s = slot () in
    t.logs.(s) <- (time, what) :: t.logs.(s);
    Pr_telemetry.Flight.note Pr_telemetry.Flight.global ~ts:time ~detail:what
      "nemesis.fault";
    Log.info (fun m -> m "t=%.2f %s" time what)
  in
  (* The recorder is looked up per call: on a worker lane
     [Network.trace] resolves to that lane's private recorder. *)
  let instant ~tid name =
    let trace = Network.trace net in
    if Trace.enabled trace then Trace.instant trace ~ts:(Engine.now engine) ~tid name
  in
  (* Without protocol-aware callbacks (tests driving a bare network),
     fall back to the same links-then-node sequence Runner.crash_ad
     performs, minus the handler muting and state reset. *)
  let fallback_links : (int, Link.id list) Hashtbl.t = Hashtbl.create 4 in
  let crash =
    match crash with
    | Some f -> f
    | None ->
      fun ad ->
        if Network.node_is_up net ad then begin
          let mine = ref [] in
          Graph.iter_neighbors graph ad ~f:(fun _nbr lid ->
              if Network.link_is_up net lid then mine := lid :: !mine);
          let mine = List.sort_uniq compare !mine in
          List.iter (fun lid -> Network.set_link_state net lid ~up:false) mine;
          Hashtbl.replace fallback_links ad mine;
          Network.set_node_state net ad ~up:false
        end
  in
  let restart =
    match restart with
    | Some f -> f
    | None ->
      fun ad ->
        if not (Network.node_is_up net ad) then begin
          Network.set_node_state net ad ~up:true;
          let mine = Option.value (Hashtbl.find_opt fallback_links ad) ~default:[] in
          Hashtbl.remove fallback_links ad;
          List.iter (fun lid -> Network.set_link_state net lid ~up:true) mine
        end
  in
  (* One independent stream per concern, split in a fixed order, so the
     number of draws one action makes never shifts another's. Under
     sharding each slot additionally gets its own sub-stream (slot 0
     keeps the parent), so concurrent lanes never contend on one rng
     and draws depend only on (seed, plan, shard-count). *)
  let msg_rng = Rng.split rng in
  let sched_rng = Rng.split rng in
  let per_slot_rngs parent =
    let a = Array.make nslots parent in
    for i = 1 to nslots - 1 do
      a.(i) <- Rng.split parent
    done;
    a
  in
  let msg_rngs = per_slot_rngs msg_rng in
  (* Message-level faults become a delivery interposer. *)
  let drops = ref [] and dups = ref [] and delays = ref [] and reorders = ref [] in
  List.iter
    (function
      | Plan.Drop { prob; window } -> drops := (prob, window) :: !drops
      | Plan.Duplicate { prob; window } -> dups := (prob, window) :: !dups
      | Plan.Delay { prob; max_extra; window } ->
        delays := (prob, max_extra, window) :: !delays
      | Plan.Reorder { prob; max_extra; window } ->
        reorders := (prob, max_extra, window) :: !reorders
      | Plan.Crash _ | Plan.Partition _ | Plan.Flap_storm _ | Plan.Corrupt _
      | Plan.Replay _ | Plan.Forge _ | Plan.Flap_chatter _ -> ())
    plan;
  let drops = List.rev !drops
  and dups = List.rev !dups
  and delays = List.rev !delays
  and reorders = List.rev !reorders in
  if drops <> [] || dups <> [] || delays <> [] || reorders <> [] then begin
    let has_delay = delays <> [] in
    (* Latest scheduled arrival per directed neighbor pair: the FIFO
       clamp floor. Plain added latency must not overtake earlier
       messages on the same channel — only Reorder may do that. Keyed
       by the sender's owning shard: every send for [src] executes
       either on that lane or on the main domain while lanes are
       parked, so each table has one writer at a time. *)
    let last_arrival : (int * int, float) Hashtbl.t array =
      Array.init shards (fun _ -> Hashtbl.create 64)
    in
    Network.set_delivery_interposer net
      (Some
         (fun ~src ~dst ~link ->
           let now = Engine.now engine in
           let mrng = msg_rngs.(slot ()) in
           let s = slot () in
           if List.exists (fun (p, w) -> in_window w now && Rng.chance mrng p) drops
           then begin
             t.dropped.(s) <- t.dropped.(s) + 1;
             instant ~tid:dst "fault.drop";
             []
           end
           else begin
             let base_delay = (Graph.link graph link).Link.delay in
             let base = now +. base_delay in
             let extra_d =
               List.fold_left
                 (fun acc (p, mx, w) ->
                   if in_window w now && Rng.chance mrng p then acc +. Rng.float mrng mx
                   else acc)
                 0.0 delays
             in
             let extra_r =
               List.fold_left
                 (fun acc (p, mx, w) ->
                   if in_window w now && Rng.chance mrng p then acc +. Rng.float mrng mx
                   else acc)
                 0.0 reorders
             in
             if extra_d > 0.0 then begin
               t.delayed.(s) <- t.delayed.(s) + 1;
               instant ~tid:dst "fault.delay"
             end;
             if extra_r > 0.0 then begin
               t.reordered.(s) <- t.reordered.(s) + 1;
               instant ~tid:dst "fault.reorder"
             end;
             let la = last_arrival.(Engine.shard_owner engine src) in
             let key = (src, dst) in
             let arrival =
               if extra_r > 0.0 then base +. extra_d +. extra_r
               else if has_delay then begin
                 (* Clamp even undelayed messages: one may not overtake
                    an earlier delayed one on the same channel. *)
                 let floor_a =
                   match Hashtbl.find_opt la key with
                   | Some a -> a
                   | None -> 0.0
                 in
                 let a = Stdlib.max (base +. extra_d) floor_a in
                 Hashtbl.replace la key a;
                 a
               end
               else base
             in
             let copies = ref [ arrival -. base ] in
             List.iter
               (fun (p, w) ->
                 if in_window w now && Rng.chance mrng p then begin
                   t.duplicated.(s) <- t.duplicated.(s) + 1;
                   instant ~tid:dst "fault.dup";
                   let dup_arrival = arrival +. (0.25 *. base_delay) in
                   if has_delay && extra_r = 0.0 then
                     Hashtbl.replace la key dup_arrival;
                   copies := (dup_arrival -. base) :: !copies
                 end)
               dups;
             List.rev !copies
           end))
  end;
  (* Byzantine actions: one attacker AD per run (for actions with
     [ad = None]), chosen from its own stream split after the benign
     ones so legacy plans draw identically. The attacker's outgoing
     updates are tampered via the network's message-tamper hook; forged
     and replayed updates are injected through the normal send path. *)
  if Plan.has_byzantine plan then begin
    let byz_rng = Rng.split rng in
    let byz_rngs = per_slot_rngs byz_rng in
    let attacker_default =
      match Graph.transit_ids graph with
      | [] -> Rng.int byz_rng (Graph.n graph)
      | pool -> Rng.choose byz_rng pool
    in
    let resolve ad = Option.value ad ~default:attacker_default in
    let attackers_l =
      List.sort_uniq compare
        (List.filter_map
           (function
             | Plan.Corrupt { ad; _ } | Plan.Forge { ad; _ }
             | Plan.Flap_chatter { ad; _ } -> Some (resolve ad)
             | Plan.Replay _ -> Some attacker_default
             | _ -> None)
           plan)
    in
    t.attackers <- attackers_l;
    let corrupt_specs =
      List.filter_map
        (function
          | Plan.Corrupt { prob; ad; window } -> Some (prob, resolve ad, window)
          | _ -> None)
        plan
    in
    let want_capture =
      List.exists (function Plan.Replay _ -> true | _ -> false) plan
    in
    (* Ring of the attackers' recent sends, captured pre-corruption:
       replayed updates are well-formed but stale by re-injection time.
       One ring per owning shard (the capture runs on the sender's
       lane); replay drains them in lane order on the main domain. *)
    let capture_cap = 32 in
    let captured : (Pr_topology.Ad.id * int * msg) Queue.t array =
      Array.init shards (fun _ -> Queue.create ())
    in
    let captured_total () =
      Array.fold_left (fun acc q -> acc + Queue.length q) 0 captured
    in
    let captured_pop () =
      let rec go i =
        if Queue.is_empty captured.(i) then go (i + 1) else Queue.pop captured.(i)
      in
      go 0
    in
    (* Self-injected traffic (forge / replay re-sends) passes the tamper
       hook untouched and is never re-captured. Only the main domain
       flips this flag, and only while the lanes are parked. *)
    let injecting = ref false in
    if corrupt_specs <> [] || want_capture then
      Network.set_message_tamper net
        (Some
           (fun ~src ~dst ~bytes msg ->
             if !injecting then None
             else begin
               if want_capture && List.mem src attackers_l then begin
                 let q = captured.(Engine.shard_owner engine src) in
                 if Queue.length q >= capture_cap then ignore (Queue.pop q);
                 Queue.push (dst, bytes, msg) q
               end;
               let now = Engine.now engine in
               match corrupt with
               | None -> None
               | Some corrupt_fn ->
                 let brng = byz_rngs.(slot ()) in
                 let rec go = function
                   | [] -> None
                   | (prob, atk, w) :: rest ->
                     if src = atk && in_window w now && Rng.chance brng prob
                     then (
                       match corrupt_fn brng msg with
                       | Some m ->
                         let s = slot () in
                         t.corrupted.(s) <- t.corrupted.(s) + 1;
                         note now (Printf.sprintf "corrupt %d->%d" src dst);
                         instant ~tid:dst "fault.corrupt";
                         Some m
                       | None -> go rest)
                     else go rest
                 in
                 go corrupt_specs
             end));
    let send_injected ~src ~dst ~bytes msg =
      injecting := true;
      Network.send net ~src ~dst ~bytes msg;
      injecting := false
    in
    List.iter
      (function
        | Plan.Replay { at_time; count } ->
          Engine.schedule_at engine ~time:at_time (fun () ->
              let k = Stdlib.min count (captured_total ()) in
              let src = attacker_default in
              for _ = 1 to k do
                let dst, bytes, msg = captured_pop () in
                t.replayed <- t.replayed + 1;
                send_injected ~src ~dst ~bytes msg
              done;
              note at_time (Printf.sprintf "replay ad=%d count=%d" src k);
              instant ~tid:src "fault.replay")
        | Plan.Forge { at_time; ad } ->
          let origin = resolve ad in
          Engine.schedule_at engine ~time:at_time (fun () ->
              match forge with
              | None ->
                note at_time
                  (Printf.sprintf "forge ad=%d: no forger installed" origin)
              | Some forge_fn -> (
                match forge_fn ~origin with
                | None ->
                  note at_time
                    (Printf.sprintf "forge ad=%d: nothing to forge" origin)
                | Some (msg, bytes) ->
                  let nbrs = Network.up_neighbors net origin in
                  List.iter
                    (fun dst ->
                      t.forged <- t.forged + 1;
                      send_injected ~src:origin ~dst ~bytes msg)
                    nbrs;
                  note at_time
                    (Printf.sprintf "forge ad=%d to %d neighbors" origin
                       (List.length nbrs));
                  instant ~tid:origin "fault.forge"))
        | Plan.Flap_chatter { at_time; ad; flaps; spacing } ->
          let atk = resolve ad in
          (* One fixed adjacency — the attacker's lowest-id neighbor —
             flapped repeatedly so the per-pair damping penalty actually
             accumulates (a storm spreads flaps over random links). *)
          let victim_link = ref None in
          Graph.iter_neighbors graph atk ~f:(fun _nbr lid ->
              if !victim_link = None then victim_link := Some lid);
          (match !victim_link with
          | None -> ()
          | Some lid ->
            for i = 0 to flaps - 1 do
              let tf = at_time +. (float_of_int i *. spacing) in
              Engine.schedule_at engine ~time:tf (fun () ->
                  if Network.link_is_up net lid then begin
                    note tf (Printf.sprintf "chatter down link=%d" lid);
                    instant ~tid:atk "fault.chatter";
                    Network.set_link_state net lid ~up:false;
                    let hold = Plan.storm_hold ~spacing in
                    Engine.schedule engine ~delay:hold (fun () ->
                        note (tf +. hold)
                          (Printf.sprintf "chatter restore link=%d" lid);
                        Network.set_link_state net lid ~up:true)
                  end)
            done)
        | _ -> ())
      plan
  end;
  (* Topology/node incidents become scheduled events, Churn-style. The
     engine clock is 0 at install time, so absolute times are valid. *)
  List.iter
    (function
      | Plan.Drop _ | Plan.Duplicate _ | Plan.Delay _ | Plan.Reorder _
      | Plan.Corrupt _ | Plan.Replay _ | Plan.Forge _ | Plan.Flap_chatter _ ->
        ()
      | Plan.Crash { ad; at_time; down_for } ->
        let r = Rng.split sched_rng in
        let target =
          match ad with
          | Some a -> a
          | None -> (
            match Graph.transit_ids graph with
            | [] -> Rng.int r (Graph.n graph)
            | pool -> Rng.choose r pool)
        in
        Engine.schedule_at engine ~time:at_time (fun () ->
            note at_time (Printf.sprintf "crash ad=%d" target);
            instant ~tid:target "fault.crash";
            crash target);
        Option.iter
          (fun d ->
            let tr = at_time +. d in
            Engine.schedule_at engine ~time:tr (fun () ->
                note tr (Printf.sprintf "restart ad=%d" target);
                instant ~tid:target "fault.restart";
                restart target))
          down_for
      | Plan.Partition { at_time; heal_after } ->
        let r = Rng.split sched_rng in
        let n = Graph.n graph in
        (* Membership is fixed at install (BFS to ~n/2 from a random
           seed, so each side is connected in the static graph); the
           links actually cut are decided at fire time — only then is
           it known which crossing links are still up. *)
        let side = Array.make n false in
        let start = Rng.int r n in
        let target_size = Stdlib.max 1 (n / 2) in
        let q = Queue.create () in
        Queue.push start q;
        side.(start) <- true;
        let count = ref 1 in
        while !count < target_size && not (Queue.is_empty q) do
          let u = Queue.pop q in
          Graph.iter_neighbor_ids graph u ~f:(fun v ->
              if !count < target_size && not side.(v) then begin
                side.(v) <- true;
                incr count;
                Queue.push v q
              end)
        done;
        let cut = ref [] in
        Engine.schedule_at engine ~time:at_time (fun () ->
            Array.iter
              (fun (l : Link.t) ->
                if side.(l.Link.a) <> side.(l.Link.b) && Network.link_is_up net l.Link.id
                then begin
                  cut := l.Link.id :: !cut;
                  Network.set_link_state net l.Link.id ~up:false
                end)
              (Graph.links graph);
            cut := List.rev !cut;
            t.partition_cut <- !cut;
            note at_time
              (Printf.sprintf "partition %d|%d cut=%d links" !count (n - !count)
                 (List.length !cut));
            instant ~tid:0 "fault.partition");
        Option.iter
          (fun h ->
            let th = at_time +. h in
            Engine.schedule_at engine ~time:th (fun () ->
                (* Exactly the links the partition took down — never a
                   link churn, a storm or a crash failed. *)
                List.iter (fun lid -> Network.set_link_state net lid ~up:true) !cut;
                note th (Printf.sprintf "heal restore=%d links" (List.length !cut));
                instant ~tid:0 "fault.heal"))
          heal_after
      | Plan.Flap_storm { at_time; flaps; spacing } ->
        let r = Rng.split sched_rng in
        for i = 0 to flaps - 1 do
          let tf = at_time +. (float_of_int i *. spacing) in
          Engine.schedule_at engine ~time:tf (fun () ->
              match Network.fail_random_link net r () with
              | None -> note tf "flap: no up link to fail"
              | Some lid ->
                note tf (Printf.sprintf "flap down link=%d" lid);
                instant ~tid:0 "fault.flap";
                let hold = Plan.storm_hold ~spacing in
                Engine.schedule engine ~delay:hold (fun () ->
                    note (tf +. hold) (Printf.sprintf "flap restore link=%d" lid);
                    Network.set_link_state net lid ~up:true))
        done)
    plan;
  t

type window = { from_time : float; until_time : float }

type action =
  | Drop of { prob : float; window : window }
  | Duplicate of { prob : float; window : window }
  | Delay of { prob : float; max_extra : float; window : window }
  | Reorder of { prob : float; max_extra : float; window : window }
  | Crash of { ad : Pr_topology.Ad.id option; at_time : float; down_for : float option }
  | Partition of { at_time : float; heal_after : float option }
  | Flap_storm of { at_time : float; flaps : int; spacing : float }
  (* Byzantine actions: a compromised AD emits bad routing information
     rather than merely losing messages. [ad = None] picks a transit AD
     deterministically from the plan seed. *)
  | Corrupt of { prob : float; ad : Pr_topology.Ad.id option; window : window }
  | Replay of { at_time : float; count : int }
  | Forge of { at_time : float; ad : Pr_topology.Ad.id option }
  | Flap_chatter of {
      at_time : float;
      ad : Pr_topology.Ad.id option;
      flaps : int;
      spacing : float;
    }

type t = action list

let storm_hold ~spacing = 1.5 *. spacing

(* Scales: generated link delays are ~1 time unit and campaign churn is
   spaced 4.0 apart, so the default plan plays out over tens of units.
   The default deliberately excludes Drop and Reorder: with no
   retransmission layer in the model, losing or reordering a control
   message can leave a *correct* distance-vector protocol permanently
   inconsistent, which would make the invariant harness flag protocols
   for an artifact of the model rather than a design flaw. Delay is
   FIFO-clamped by the nemesis, and duplicates are idempotent, so both
   are safe for every protocol family. *)
let default =
  let w = { from_time = 0.0; until_time = 40.0 } in
  [
    Delay { prob = 0.25; max_extra = 2.0; window = w };
    Duplicate { prob = 0.1; window = w };
    Flap_storm { at_time = 6.0; flaps = 4; spacing = 1.5 };
    Crash { ad = None; at_time = 14.0; down_for = Some 8.0 };
    Partition { at_time = 30.0; heal_after = Some 10.0 };
  ]

let profiles =
  [
    ("none", []);
    ("default", default);
    ("crash", [ Crash { ad = None; at_time = 6.0; down_for = Some 8.0 } ]);
    ("partition", [ Partition { at_time = 6.0; heal_after = Some 10.0 } ]);
    ("storm", [ Flap_storm { at_time = 4.0; flaps = 6; spacing = 1.5 } ]);
    (* Stress profile, not an invariant gate: unrecovered message loss
       and FIFO-violating reordering can break protocols that the
       paper's model (reliable FIFO channels between up neighbors)
       never required to survive. *)
    ( "lossy",
      let w = { from_time = 0.0; until_time = 40.0 } in
      [
        Drop { prob = 0.1; window = w };
        Reorder { prob = 0.1; max_extra = 3.0; window = w };
        Delay { prob = 0.25; max_extra = 2.0; window = w };
        Duplicate { prob = 0.1; window = w };
      ] );
    (* Adversarial profiles: one deterministically-chosen transit AD
       turns Byzantine. [byzantine] is the full attack battery the
       acceptance invariants gate on; [leak] isolates the route-leak
       (forged announcement violating the origin's own Policy Terms);
       [chatter] isolates the pathological flapping neighbor that flap
       damping must suppress. *)
    ( "byzantine",
      (* Ordered so the first forge puts the attacker in quarantine at
         every guarded neighbor before the replay fires (replayed stale
         state is dropped at the boundary), and the second forge lands
         late enough that without a guard it persists to the final
         audit. *)
      [
        Corrupt
          {
            prob = 0.6;
            ad = None;
            window = { from_time = 2.0; until_time = 24.0 };
          };
        Forge { at_time = 4.0; ad = None };
        Replay { at_time = 10.0; count = 8 };
        Flap_chatter { at_time = 8.0; ad = None; flaps = 18; spacing = 0.25 };
        Forge { at_time = 16.0; ad = None };
      ] );
    ( "leak",
      [ Forge { at_time = 4.0; ad = None }; Forge { at_time = 9.0; ad = None } ]
    );
    ( "chatter",
      [ Flap_chatter { at_time = 4.0; ad = None; flaps = 20; spacing = 0.25 } ]
    );
  ]

let profile name = List.assoc_opt name profiles

let profile_names = List.map fst profiles

(* {2 Compact textual specs}

   [drop:p=0.1,from=0,until=40;crash:at=14,down=8,ad=3;...] — the form
   the CLI and campaign grids carry around. *)

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
  else Printf.sprintf "%g" f

let window_str w =
  (if w.from_time = 0.0 then [] else [ Printf.sprintf "from=%s" (float_str w.from_time) ])
  @
  if w.until_time = Float.infinity then []
  else [ Printf.sprintf "until=%s" (float_str w.until_time) ]

let action_to_string = function
  | Drop { prob; window } ->
    String.concat "," (("drop:p=" ^ float_str prob) :: window_str window)
  | Duplicate { prob; window } ->
    String.concat "," (("dup:p=" ^ float_str prob) :: window_str window)
  | Delay { prob; max_extra; window } ->
    String.concat ","
      ((Printf.sprintf "delay:p=%s,max=%s" (float_str prob) (float_str max_extra))
      :: window_str window)
  | Reorder { prob; max_extra; window } ->
    String.concat ","
      ((Printf.sprintf "reorder:p=%s,max=%s" (float_str prob) (float_str max_extra))
      :: window_str window)
  | Crash { ad; at_time; down_for } ->
    String.concat ","
      (("crash:at=" ^ float_str at_time)
      :: ((match down_for with Some d -> [ "down=" ^ float_str d ] | None -> [])
         @ match ad with Some a -> [ Printf.sprintf "ad=%d" a ] | None -> []))
  | Partition { at_time; heal_after } ->
    String.concat ","
      (("partition:at=" ^ float_str at_time)
      :: (match heal_after with Some h -> [ "heal=" ^ float_str h ] | None -> []))
  | Flap_storm { at_time; flaps; spacing } ->
    Printf.sprintf "storm:at=%s,flaps=%d,spacing=%s" (float_str at_time) flaps
      (float_str spacing)
  | Corrupt { prob; ad; window } ->
    String.concat ","
      (("corrupt:p=" ^ float_str prob)
      :: ((match ad with Some a -> [ Printf.sprintf "ad=%d" a ] | None -> [])
         @ window_str window))
  | Replay { at_time; count } ->
    Printf.sprintf "replay:at=%s,count=%d" (float_str at_time) count
  | Forge { at_time; ad } ->
    String.concat ","
      (("forge:at=" ^ float_str at_time)
      :: (match ad with Some a -> [ Printf.sprintf "ad=%d" a ] | None -> []))
  | Flap_chatter { at_time; ad; flaps; spacing } ->
    String.concat ","
      (Printf.sprintf "chatter:at=%s,flaps=%d,spacing=%s" (float_str at_time)
         flaps (float_str spacing)
      :: (match ad with Some a -> [ Printf.sprintf "ad=%d" a ] | None -> []))

let to_string t = String.concat ";" (List.map action_to_string t)

let ( let* ) = Result.bind

let parse_fields s =
  List.fold_left
    (fun acc field ->
      let* acc = acc in
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "malformed field %S (want key=value)" field)
      | Some i ->
        Ok
          ((String.sub field 0 i, String.sub field (i + 1) (String.length field - i - 1))
          :: acc))
    (Ok [])
    (String.split_on_char ',' s)

let get_float fields key =
  match List.assoc_opt key fields with
  | None -> Error (Printf.sprintf "missing %s=" key)
  | Some v -> (
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s=%S is not a number" key v))

let get_float_opt fields key =
  match List.assoc_opt key fields with
  | None -> Ok None
  | Some v -> (
    match float_of_string_opt v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "%s=%S is not a number" key v))

let get_prob fields =
  let* p = get_float fields "p" in
  if p < 0.0 || p > 1.0 then Error (Printf.sprintf "p=%s out of [0,1]" (float_str p))
  else Ok p

let get_window fields =
  let* from_time = get_float_opt fields "from" in
  let* until_time = get_float_opt fields "until" in
  let from_time = Option.value from_time ~default:0.0 in
  let until_time = Option.value until_time ~default:Float.infinity in
  if until_time < from_time then Error "until < from"
  else Ok { from_time; until_time }

let parse_action s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "malformed action %S (want kind:key=value,...)" s)
  | Some i -> (
    let kind = String.sub s 0 i in
    let* fields = parse_fields (String.sub s (i + 1) (String.length s - i - 1)) in
    match kind with
    | "drop" ->
      let* prob = get_prob fields in
      let* window = get_window fields in
      Ok (Drop { prob; window })
    | "dup" ->
      let* prob = get_prob fields in
      let* window = get_window fields in
      Ok (Duplicate { prob; window })
    | "delay" ->
      let* prob = get_prob fields in
      let* max_extra = get_float fields "max" in
      let* window = get_window fields in
      Ok (Delay { prob; max_extra; window })
    | "reorder" ->
      let* prob = get_prob fields in
      let* max_extra = get_float fields "max" in
      let* window = get_window fields in
      Ok (Reorder { prob; max_extra; window })
    | "crash" ->
      let* at_time = get_float fields "at" in
      let* down_for = get_float_opt fields "down" in
      let ad =
        Option.bind (List.assoc_opt "ad" fields) int_of_string_opt
      in
      Ok (Crash { ad; at_time; down_for })
    | "partition" ->
      let* at_time = get_float fields "at" in
      let* heal_after = get_float_opt fields "heal" in
      Ok (Partition { at_time; heal_after })
    | "storm" ->
      let* at_time = get_float fields "at" in
      let* flaps = get_float fields "flaps" in
      let* spacing = get_float fields "spacing" in
      Ok (Flap_storm { at_time; flaps = int_of_float flaps; spacing })
    | "corrupt" ->
      let* prob = get_prob fields in
      let* window = get_window fields in
      let ad = Option.bind (List.assoc_opt "ad" fields) int_of_string_opt in
      Ok (Corrupt { prob; ad; window })
    | "replay" ->
      let* at_time = get_float fields "at" in
      let* count = get_float fields "count" in
      Ok (Replay { at_time; count = int_of_float count })
    | "forge" ->
      let* at_time = get_float fields "at" in
      let ad = Option.bind (List.assoc_opt "ad" fields) int_of_string_opt in
      Ok (Forge { at_time; ad })
    | "chatter" ->
      let* at_time = get_float fields "at" in
      let* flaps = get_float fields "flaps" in
      let* spacing = get_float fields "spacing" in
      let ad = Option.bind (List.assoc_opt "ad" fields) int_of_string_opt in
      Ok (Flap_chatter { at_time; ad; flaps = int_of_float flaps; spacing })
    | other -> Error (Printf.sprintf "unknown fault kind %S" other))

let of_string s =
  if String.trim s = "" then Ok []
  else
    List.fold_left
      (fun acc part ->
        let* acc = acc in
        let* a = parse_action (String.trim part) in
        Ok (a :: acc))
      (Ok [])
      (String.split_on_char ';' s)
    |> Result.map List.rev

(* Times at which the plan changes the topology (fault onset *and*
   recovery): the harness probes forwarding just after each one. *)
let incident_times t =
  let times =
    List.concat_map
      (function
        | Drop _ | Duplicate _ | Delay _ | Reorder _ -> []
        | Crash { at_time; down_for; _ } ->
          at_time :: (match down_for with Some d -> [ at_time +. d ] | None -> [])
        | Partition { at_time; heal_after } ->
          at_time :: (match heal_after with Some h -> [ at_time +. h ] | None -> [])
        | Flap_storm { at_time; flaps; spacing }
        | Flap_chatter { at_time; flaps; spacing; _ } ->
          List.concat
            (List.init flaps (fun i ->
                 let tf = at_time +. (float_of_int i *. spacing) in
                 [ tf; tf +. storm_hold ~spacing ]))
        | Corrupt _ -> []
        | Replay { at_time; _ } | Forge { at_time; _ } -> [ at_time ])
      t
  in
  List.sort_uniq compare times

(* The moment the plan stops interfering: the last topology incident or
   the close of the last bounded message-fault window, whichever is
   later. Reconvergence time is measured from here. *)
let last_incident_time t =
  let wclose w = if Float.is_finite w.until_time then w.until_time else 0.0 in
  List.fold_left
    (fun acc a ->
      let t' =
        match a with
        | Drop { window; _ } | Duplicate { window; _ } -> wclose window
        | Delay { window; max_extra; _ } | Reorder { window; max_extra; _ } ->
          if Float.is_finite window.until_time then window.until_time +. max_extra else 0.0
        | Crash { at_time; down_for; _ } ->
          at_time +. Option.value down_for ~default:0.0
        | Partition { at_time; heal_after } ->
          at_time +. Option.value heal_after ~default:0.0
        | Flap_storm { at_time; flaps; spacing }
        | Flap_chatter { at_time; flaps; spacing; _ } ->
          if flaps = 0 then at_time
          else at_time +. (float_of_int (flaps - 1) *. spacing) +. storm_hold ~spacing
        | Corrupt { window; _ } -> wclose window
        | Replay { at_time; _ } | Forge { at_time; _ } -> at_time
      in
      Stdlib.max acc t')
    0.0 t

let has_message_faults t =
  List.exists
    (function Drop _ | Duplicate _ | Delay _ | Reorder _ -> true | _ -> false)
    t

let has_byzantine t =
  List.exists
    (function
      | Corrupt _ | Replay _ | Forge _ | Flap_chatter _ -> true | _ -> false)
    t

(* The grammar summary the CLI prints on a malformed plan string. *)
let grammar_help =
  String.concat "\n"
    [
      "plan grammar: ACTION(;ACTION)* where ACTION is one of";
      "  drop:p=P[,from=T][,until=T]        dup:p=P[,from=T][,until=T]";
      "  delay:p=P,max=T[,from=][,until=]   reorder:p=P,max=T[,from=][,until=]";
      "  crash:at=T[,down=T][,ad=N]         partition:at=T[,heal=T]";
      "  storm:at=T,flaps=N,spacing=T";
      "  corrupt:p=P[,ad=N][,from=T][,until=T]";
      "  replay:at=T,count=N                forge:at=T[,ad=N]";
      "  chatter:at=T,flaps=N,spacing=T[,ad=N]";
      "or profile:NAME / a bare profile name, one of: "
      ^ String.concat ", " profile_names;
    ]

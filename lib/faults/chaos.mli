(** The resilience harness: run a protocol under a fault {!Plan} and
    check the paper's robustness invariants (§2.2, §5).

    A chaos run schedules the whole plan up front ({!Nemesis.install}),
    converges through it, and then checks:

    - {b loop-freedom}: after reconvergence no probe flow may loop.
      Loops observed {e during} the disturbance are counted separately
      as [transient_loops] — hop-by-hop designs loop transiently while
      databases disagree (experiment E10), which is expected, not a
      violation.
    - {b availability / no blackholes}: every probe flow that a
      baseline run on the same {e residual} topology delivers must also
      be delivered after the fault run reconverges. The baseline run
      has exactly the damage the plan never repaired (unhealed
      partitions, unrestarted crashes) applied, so plain
      unreachability is never miscounted as a protocol failure. Each
      probe gets up to 3 packets: ORWG repairs broken cached routes by
      dropping a packet and re-signaling (§5.4), which is recovery,
      not blackholing.
    - {b reconvergence}: the event queue must drain within the budget
      ([no-reconvergence] violation otherwise), and the report carries
      [reconvergence_time] — quiescence time minus the plan's last
      incident.
    - {b containment} (Byzantine plans, and any run where corruption
      could leak): after reconvergence, no honest up AD may hold
      routing state its own [check_update] validation would have
      rejected — the adversary's lies must not have stuck. The
      attacker itself is exempt.
    - {b availability under attack}: with a Byzantine attacker in the
      plan, only honest-pair flows are judged, and a baseline-delivers
      gap is reported as an ["availability"] violation rather than a
      ["blackhole"] — the honest internet must keep running despite
      the adversary.

    Defense is the update guard ({!Pr_guard.Guard}), interposed on
    every AD's receive path and link observations via the runner's
    filter/tap hooks: per-neighbor validation (each driver's
    [check_update]), RFC-2439-style flap damping, and quarantine with
    doubling backoff; readmission replays the adjacency bring-up
    exchange ([resync]). Pass {!Pr_guard.Guard.disabled} to measure
    the undefended protocol.

    Violations are recorded as ["invariant.violation"] trace instants
    when tracing is on.

    Determinism: probe flows come from [Rng.derive seed
    "chaos-probes"], faults from [Rng.derive seed "faults"] (the
    Byzantine stream split after the benign ones, so legacy plans draw
    identically) — a chaos run of the same (seed, plan, guard config)
    is byte-identical ({!report_json} contains no wall-clock), and a
    plan of [[]] reproduces the unfaulted scenario exactly. *)

type violation = {
  time : float;
  kind : string;
      (** ["loop"], ["blackhole"], ["containment"], ["availability"]
          or ["no-reconvergence"] *)
  flow : (Pr_topology.Ad.id * Pr_topology.Ad.id) option;
  detail : string;
}

type report = {
  protocol : string;
  scenario : string;
  seed : int;
  plan : string;  (** {!Plan.to_string} of the plan that ran *)
  guard : string;  (** {!Pr_guard.Guard.config_to_string} of the guard config *)
  attackers : Pr_topology.Ad.id list;
      (** resolved Byzantine attacker ADs; empty on benign plans *)
  converged : bool;
  stop_reason : string;
  sim_time : float;
  events : int;
  reconvergence_time : float;
  fault_log : (float * string) list;
  msgs_dropped : int;
  msgs_duplicated : int;
  msgs_delayed : int;
  msgs_reordered : int;
  msgs_corrupted : int;  (** attacker updates tampered in flight *)
  msgs_replayed : int;  (** captured stale updates re-injected *)
  msgs_forged : int;  (** forged announcements sent (per receiver) *)
  updates_rejected : int;  (** guard: validation rejections *)
  quarantines : int;  (** guard: quarantines entered *)
  quarantine_drops : int;  (** guard: updates dropped while quarantined *)
  readmissions : int;  (** guard: quarantines lifted *)
  checks : int;  (** mid-run checkpoints executed *)
  transient_loops : int;  (** loops observed at checkpoints *)
  attack_probes : int;
      (** honest-pair checkpoint probes sent while under attack *)
  attack_delivered : int;  (** of which delivered — availability under attack *)
  probes : int;  (** judged flows (honest pairs only under Byzantine plans) *)
  baseline_delivered : int;
  delivered : int;
  violations : violation list;
  messages : int;
  bytes : int;
  computations : int;
  transit_computations : int;
  msgs_lost : int;
  table_total : int;
  table_max : int;
  msg_max : int;
  msg_mean : float;
  msg_p90 : float;
  tbl_p90 : float;
}

val run :
  ?plan:Plan.t ->
  ?guard:Pr_guard.Guard.config ->
  ?flows:Pr_policy.Flow.t list ->
  ?probes:int ->
  ?churn:int * float ->
  ?max_events:int ->
  ?trace:Pr_obs.Trace.t ->
  ?shards:int ->
  Pr_core.Registry.packed ->
  Pr_core.Scenario.t ->
  report
(** Run the gauntlet. [plan] defaults to {!Plan.default}; [guard]
    (default {!Pr_guard.Guard.default_config}) configures the update
    guard — pass {!Pr_guard.Guard.disabled} for an undefended run;
    [flows] overrides the derived probe workload ([probes], default
    40, flows drawn from the scenario); [churn] is [(events, spacing)]
    for additional link churn on its own rng stream; [max_events]
    bounds the converge (exhaustion yields a [no-reconvergence]
    violation and a partial report rather than an exception); [shards]
    (default 1) runs the faulted simulation on the sharded engine —
    scheduled-only plans report identically at every shard count, and
    the residual-topology baseline always runs sequentially. *)

val loop_violations : report -> int

val blackhole_violations : report -> int

val containment_violations : report -> int

val availability_violations : report -> int

val find_protocol : string -> Pr_core.Registry.packed option
(** {!Pr_core.Registry.find_opt} extended with the deliberately broken
    {!Broken} variant (["broken-ls"]), which is not in the registry. *)

val report_json : report -> Pr_util.Json.t
(** Deterministic rendering: identical (seed, plan) pairs produce
    byte-identical documents. *)

val pp : Format.formatter -> report -> unit

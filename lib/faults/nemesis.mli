(** Compiles a {!Plan} onto a live network: the component that actually
    breaks things.

    Message faults install a delivery interposer
    ({!Pr_sim.Network.set_delivery_interposer}); topology and node
    incidents are scheduled on the engine like {!Pr_sim.Churn} events,
    so a subsequent converge drains both the faults and every protocol
    reaction to them. Every incident is appended to a chronological
    fault log and, when tracing, recorded as a [fault.*] instant
    ([fault.crash], [fault.restart], [fault.partition], [fault.heal],
    [fault.flap], [fault.drop], [fault.dup], [fault.delay],
    [fault.reorder], and for Byzantine actions [fault.corrupt],
    [fault.replay], [fault.forge], [fault.chatter]). *)

type t

val log_src : Logs.src
(** ["pr.faults"]: set to [Info] to watch incidents fire. *)

val install :
  'msg Pr_sim.Network.t ->
  rng:Pr_util.Rng.t ->
  ?crash:(Pr_topology.Ad.id -> unit) ->
  ?restart:(Pr_topology.Ad.id -> unit) ->
  ?corrupt:(Pr_util.Rng.t -> 'msg -> 'msg option) ->
  ?forge:(origin:Pr_topology.Ad.id -> ('msg * int) option) ->
  Plan.t ->
  t
(** Compile the plan. Call with the engine clock still at 0 (before the
    first converge). [crash]/[restart] should be
    [Pr_proto.Runner.Make.crash_ad]/[restart_ad] so the protocol loses
    and rebuilds its state; without them a network-level fallback takes
    the node and its links down without telling any protocol. All
    randomness (flap targets, crash victim, per-message draws) comes
    from [rng] via fixed-order splits — same rng state + same plan =
    byte-identical schedule.

    For plans with Byzantine actions, [corrupt] tampers one of the
    attacker's in-flight updates (protocol-specific; [None] = this
    message is not corruptible) and [forge] builds a protocol-specific
    policy-violating announcement (message, wire bytes) originated by
    the attacker — both usually [Pr_proto.Runner.Make.corrupt_update] /
    [forge_update]. Without them, Corrupt/Forge actions log but do not
    mutate traffic. The Byzantine stream is split from [rng] {e after}
    the benign streams, so legacy plans draw identically. *)

val fault_log : t -> (float * string) list
(** Chronological (time, description) pairs of every incident fired so
    far. Deterministic: contains simulated times only. *)

val dropped : t -> int

val duplicated : t -> int

val delayed : t -> int

val reordered : t -> int

val partition_cut : t -> Pr_topology.Link.id list
(** The links the (last) partition actually took down — exactly the
    set its heal restores. Empty before the partition fires. *)

val corrupted : t -> int
(** Updates tampered in flight so far. *)

val replayed : t -> int
(** Captured stale updates re-injected so far. *)

val forged : t -> int
(** Forged announcements sent so far (one per receiving neighbor). *)

val attackers : t -> Pr_topology.Ad.id list
(** The resolved attacker ADs of the plan's Byzantine actions, sorted.
    Empty for plans without Byzantine actions. The invariant harness
    excludes these from honest-flow availability accounting and from
    the containment audit. *)

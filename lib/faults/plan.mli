(** Deterministic fault schedules.

    A plan is a list of fault actions compiled onto the simulation
    event queue before a run starts (see {!Nemesis.install}). Like
    {!Pr_sim.Churn}, every action schedules a bounded number of events,
    so a converge run still terminates: it drains the faults and every
    protocol reaction to them.

    Determinism contract: a plan contains no randomness of its own —
    all draws (which link flaps, which transit AD crashes, which
    messages are delayed) come from the {!Pr_util.Rng.t} handed to the
    nemesis, which chaos runs derive from the run seed under the
    ["faults"] label. Identical (seed, plan) pairs therefore produce
    byte-identical fault schedules, and enabling a plan never perturbs
    the topology/policy/workload streams of the underlying scenario. *)

(** Message faults apply while [from_time <= now <= until_time]. *)
type window = { from_time : float; until_time : float }

type action =
  | Drop of { prob : float; window : window }
      (** lose each message in flight with probability [prob] *)
  | Duplicate of { prob : float; window : window }
      (** deliver a second copy shortly after the first *)
  | Delay of { prob : float; max_extra : float; window : window }
      (** add uniform [\[0, max_extra)] latency, FIFO-clamped per
          directed neighbor pair so channel order is preserved *)
  | Reorder of { prob : float; max_extra : float; window : window }
      (** add latency {e without} the FIFO clamp — deliberate
          reordering *)
  | Crash of { ad : Pr_topology.Ad.id option; at_time : float; down_for : float option }
      (** gateway crash with total state loss at [at_time]; [ad = None]
          picks a random transit AD; restart [down_for] later
          ([None] = never) *)
  | Partition of { at_time : float; heal_after : float option }
      (** cut every up link between a random half of the ADs and the
          rest; heal restores exactly the cut links ([None] = never) *)
  | Flap_storm of { at_time : float; flaps : int; spacing : float }
      (** [flaps] random link failures [spacing] apart, each restored
          one and a half spacings after it went down *)
  | Corrupt of { prob : float; ad : Pr_topology.Ad.id option; window : window }
      (** the attacker AD tampers each update it sends with probability
          [prob] while the window is open (bit-flipped metrics,
          truncated payloads — protocol-specific); [ad = None] picks
          the deterministic attacker transit AD *)
  | Replay of { at_time : float; count : int }
      (** at [at_time] the attacker re-injects the [count] oldest
          updates it previously sent — stale-sequence state *)
  | Forge of { at_time : float; ad : Pr_topology.Ad.id option }
      (** the attacker announces routes its own Policy Terms forbid —
          a route leak / prefix hijack, protocol-specific payload *)
  | Flap_chatter of {
      at_time : float;
      ad : Pr_topology.Ad.id option;
      flaps : int;
      spacing : float;
    }
      (** a pathological neighbor: the attacker oscillates {e one fixed
          adjacency} [flaps] times [spacing] apart — far past the storm
          profile, concentrated so flap damping must engage *)

type t = action list

val default : t
(** The standard robustness gauntlet: FIFO-safe message faults
    (delay + duplicate) over [\[0,40\]], a four-flap storm from t=6, a
    transit-AD crash at t=14 restarting at t=22, and a partition at
    t=30 healing at t=40. Everything heals, so a correct protocol must
    reconverge with zero loop/blackhole violations. Drop and Reorder
    are excluded by design: the model has no retransmission layer, so
    they can break protocols the paper's assumptions (reliable FIFO
    channels) never required to survive — use the ["lossy"] profile to
    explore that regime. *)

val profiles : (string * t) list
(** Named profiles: ["none"], ["default"], ["crash"], ["partition"],
    ["storm"], ["lossy"], and the adversarial ["byzantine"], ["leak"],
    ["chatter"]. *)

val profile : string -> t option

val profile_names : string list

val storm_hold : spacing:float -> float
(** How long a storm flap stays down. *)

val to_string : t -> string
(** Compact spec, e.g.
    ["delay:p=0.25,max=2,until=40;crash:at=14,down=8"]. Round-trips
    through {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse a spec: [;]-separated actions, each [kind:key=value,...].
    Kinds/keys: [drop:p,from,until], [dup:p,from,until],
    [delay:p,max,from,until], [reorder:p,max,from,until],
    [crash:at,down,ad], [partition:at,heal],
    [storm:at,flaps,spacing], [corrupt:p,ad,from,until],
    [replay:at,count], [forge:at,ad], [chatter:at,flaps,spacing,ad].
    Omitted [from]/[until] mean an unbounded window; omitted
    [down]/[heal] mean no recovery; omitted [ad] means a random (or for
    Byzantine actions, the deterministic attacker) transit AD. *)

val incident_times : t -> float list
(** Sorted, deduplicated times at which the plan changes topology or
    node state (both onset and recovery). The invariant harness probes
    forwarding just after each. *)

val last_incident_time : t -> float
(** When the plan stops interfering: the last topology/node incident or
    bounded message-window close, whichever is later. 0 for plans that
    never stop (unbounded windows count as 0 — reconvergence is then
    undefined anyway). *)

val has_message_faults : t -> bool
(** Whether the plan needs a delivery interposer at all. *)

val has_byzantine : t -> bool
(** Whether the plan contains any Byzantine action (Corrupt / Replay /
    Forge / Flap_chatter) — i.e. whether an attacker AD exists. *)

val grammar_help : string
(** Multi-line summary of the accepted action grammar and profile
    names, for CLI error messages. *)

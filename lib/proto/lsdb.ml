type adjacency = { nbr : Pr_topology.Ad.id; cost : int; delay : float }

type lsa = {
  origin : Pr_topology.Ad.id;
  seq : int;
  adjacencies : adjacency list;
  terms : Pr_policy.Policy_term.t list;
  bytes : int;
  mutable compiled : Pr_policy.Compiled.t option;
}

let make_lsa ~origin ~seq ~adjacencies ~terms =
  let pt_bytes =
    List.fold_left
      (fun acc t -> acc + Pr_policy.Policy_term.advertisement_bytes t)
      0 terms
  in
  (* 2 extra bytes per adjacency for the delay metric. *)
  let bytes =
    Cost_model.lsa_bytes ~link_count:(List.length adjacencies) ~pt_bytes
    + (2 * List.length adjacencies)
  in
  { origin; seq; adjacencies; terms; bytes; compiled = None }

let lsa_bytes lsa = lsa.bytes

type t = { store : lsa option array; empty_terms : Pr_policy.Compiled.t }

let create ~n = { store = Array.make n None; empty_terms = Pr_policy.Compiled.compile ~n [] }

let seq_of t origin =
  match t.store.(origin) with
  | None -> -1
  | Some lsa -> lsa.seq

let insert t lsa =
  if lsa.seq > seq_of t lsa.origin then begin
    t.store.(lsa.origin) <- Some lsa;
    true
  end
  else false

let get t origin = t.store.(origin)

let known_ads t =
  let acc = ref [] in
  Array.iter
    (function
      | Some lsa -> acc := lsa.origin :: !acc
      | None -> ())
    t.store;
  List.rev !acc

let fold t ~init ~f =
  Array.fold_left
    (fun acc slot ->
      match slot with
      | Some lsa -> f acc lsa
      | None -> acc)
    init t.store

let find_adjacency t u v =
  match t.store.(u) with
  | None -> None
  | Some lsa -> List.find_opt (fun a -> a.nbr = v) lsa.adjacencies

let adjacency_cost t u v = Option.map (fun a -> a.cost) (find_adjacency t u v)

let bidirectional t u v =
  match (adjacency_cost t u v, adjacency_cost t v u) with
  | Some a, Some b -> Some (Stdlib.max a b)
  | _ -> None

let bidirectional_metric t qos u v =
  match (find_adjacency t u v, find_adjacency t v u) with
  | Some a, Some b ->
    Some
      (Qos_metric.metric qos
         ~cost:(Stdlib.max a.cost b.cost)
         ~delay:(Stdlib.max a.delay b.delay))
  | _ -> None

let terms_of t origin =
  match t.store.(origin) with
  | None -> []
  | Some lsa -> lsa.terms

let compiled_of t origin =
  match t.store.(origin) with
  | None -> t.empty_terms
  | Some lsa -> (
    match lsa.compiled with
    | Some c -> c
    | None ->
      let c = Pr_policy.Compiled.compile ~n:(Array.length t.store) lsa.terms in
      lsa.compiled <- Some c;
      c)

let entry_count t =
  Array.fold_left (fun acc slot -> if slot = None then acc else acc + 1) 0 t.store

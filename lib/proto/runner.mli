(** Wires a protocol to a simulated network and drives it.

    The runner owns the engine/network/metrics triple, installs the
    protocol's handlers, runs the control plane to quiescence, injects
    topology changes, and sends data packets through the protocol's
    forwarding plane. *)

type convergence = {
  converged : bool;  (** false when the event budget was exhausted *)
  sim_time : float;  (** simulated time when the system quiesced *)
  events : int;  (** events executed during this run *)
  messages : int;  (** control messages sent during this run *)
  bytes : int;  (** control bytes sent during this run *)
}

val pp_convergence : Format.formatter -> convergence -> unit

module Make (P : Protocol_intf.PROTOCOL) : sig
  type t

  val setup :
    ?trace:Pr_obs.Trace.t ->
    ?shards:int ->
    Pr_topology.Graph.t ->
    Pr_policy.Config.t ->
    t
  (** Build engine, network, metrics and protocol agents; handlers are
      installed but nothing has been sent yet. [trace] (default
      {!Pr_obs.Trace.disabled}) is threaded into the engine and
      network, and protocols pick it up via [Network.trace] for their
      route-computation spans. [shards] (default 1: the sequential
      engine) partitions the simulation across that many OCaml domains
      with {!Pr_sim.Shard.plan}; results are identical to the
      sequential engine for the same seed and scenario. *)

  val graph : t -> Pr_topology.Graph.t

  val config : t -> Pr_policy.Config.t

  val protocol : t -> P.t

  val metrics : t -> Pr_sim.Metrics.t

  val network : t -> P.message Pr_sim.Network.t

  val trace : t -> Pr_obs.Trace.t
  (** The recorder passed to {!setup}. *)

  val converge : ?max_events:int -> t -> convergence
  (** First call starts the protocol; later calls just drain whatever
      events are pending (e.g. after a link event). When tracing, each
      converge is wrapped in a ["converge"] span on track 0. *)

  val fail_link : t -> Pr_topology.Link.id -> unit
  (** Take a link down and notify the protocol at both ends (run
      {!converge} afterwards to let it react). *)

  val restore_link : t -> Pr_topology.Link.id -> unit

  val crash_ad : t -> Pr_topology.Ad.id -> unit
  (** The AD's gateway crashes: every currently-up incident link is
      taken down (neighbors are notified through their link handlers —
      the crashed router itself reacts to nothing) and the node stops
      sending and receiving. In-flight messages addressed to it are
      lost and counted in {!Pr_sim.Metrics.msgs_lost}. Only the links
      this crash transitioned down are remembered for {!restart_ad},
      so a restart never restores a link some other fault source
      failed. No-op if the AD is already down. *)

  val restart_ad : t -> Pr_topology.Ad.id -> unit
  (** Restart a crashed AD with total state loss: the node comes back
      up, the links the crash took down are restored (neighbors react
      normally; the restarting router stays silent), and the
      protocol's [reset_node] rebuilds its local state and
      re-announces. No-op if the AD is up. *)

  val send_flow : t -> Pr_policy.Flow.t -> Forwarding.outcome
  (** Send one packet of the flow through the protocol's forwarding
      plane (including any route setup the protocol performs). *)

  val table_entries : t -> int
  (** Sum of per-AD routing state. *)

  val max_table_entries : t -> int

  val set_receive_filter :
    t -> (at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id -> P.message -> bool) option -> unit
  (** Interpose on the receive path: an update for which the filter
      returns false is silently discarded before the protocol sees it.
      This is where the update guard ([Pr_guard]) screens neighbors.
      [None] removes the interposer. *)

  val set_link_tap :
    t -> (at:Pr_topology.Ad.id -> nbr:Pr_topology.Ad.id -> up:bool -> unit) option -> unit
  (** Observe link transitions exactly as the protocol's own link
      handler does (muted crashed routers see neither) — the guard's
      flap-damping feed. Runs before the protocol handler. *)

  (** {2 Adversarial-surface delegates}

      The protocol's [PROTOCOL] adversarial hooks, lifted to the
      runner so fault harnesses need not reach into the protocol
      value. *)

  val check_update :
    t -> at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id -> P.message -> (unit, string) result

  val corrupt_update : t -> rng:Pr_util.Rng.t -> P.message -> P.message option

  val forge_update : t -> origin:Pr_topology.Ad.id -> (P.message * int) option

  val audit_state : t -> at:Pr_topology.Ad.id -> string option

  val resync : t -> at:Pr_topology.Ad.id -> nbr:Pr_topology.Ad.id -> unit
end

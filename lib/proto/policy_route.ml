module Flow = Pr_policy.Flow
module Policy_term = Pr_policy.Policy_term
module Compiled = Pr_policy.Compiled
module Pqueue = Pr_util.Pqueue

(* Benchmark escape hatch: route synthesis through the pre-compilation
   interpreted path (List.exists over Policy_term lists straight off
   the database). Exists so the policy-admit microbenchmark can
   measure both paths in one binary; never set outside bench. *)
let force_interpreted = ref false

type engine = {
  db : Lsdb.t;
  n : int;
  flow : Flow.t;
  specs : Compiled.spec option array;
      (* per-AD per-flow specializations, built lazily: synthesis
         probes the same transit ADs many times for one flow *)
}

let engine db ~n flow = { db; n; flow; specs = Array.make n None }

let engine_flow e = e.flow

let spec_for e ad =
  match e.specs.(ad) with
  | Some s -> s
  | None ->
    let s = Compiled.specialize (Lsdb.compiled_of e.db ad) e.flow in
    e.specs.(ad) <- Some s;
    s

let interpreted_admits db ad flow ~prev ~next =
  let terms = Lsdb.terms_of db ad in
  let ctx = { Policy_term.flow; prev; next } in
  List.exists (fun term -> Policy_term.admits term ctx) terms

let admits e ad ~prev ~next =
  if !force_interpreted then interpreted_admits e.db ad e.flow ~prev ~next
  else Compiled.spec_allows (spec_for e ad) ~prev ~next

(* Neighbors of u according to the database, bidirectionally
   confirmed, weighted by the flow's QOS metric: the per-QOS route
   computation of paper section 3's IGP discussion, lifted to the
   inter-AD databases. *)
let db_neighbors e u =
  match Lsdb.get e.db u with
  | None -> []
  | Some lsa ->
    List.filter_map
      (fun (a : Lsdb.adjacency) ->
        let v = a.Lsdb.nbr in
        if v < 0 || v >= e.n then None
        else Option.map (fun m -> (v, m)) (Lsdb.bidirectional_metric e.db e.flow.Flow.qos u v))
      lsa.Lsdb.adjacencies

let shortest e ?(avoid = []) () =
  let n = e.n in
  let src = e.flow.Flow.src and dst = e.flow.Flow.dst in
  if src = dst then (Some [ src ], 0)
  else begin
    (* State (v, p): we are at v having arrived from p. Encoded as
       v * n + p for the queue; the initial state uses p = src
       (harmless: src is on the path anyway and never re-enterable as
       interior).

       Storage is NOT n^2: a reachable state's p is always one of v's
       bidirectionally-confirmed neighbors, so there are only
       sum-of-degrees states plus the start. A per-call adjacency
       snapshot (one [db_neighbors] per node instead of one per
       settled state) doubles as the CSR index that maps (v, p) to a
       compact slot by binary search. Queue payloads and priorities
       are unchanged, so pop order — and therefore the synthesized
       route — is identical to the dense-array formulation. *)
    let adj = Array.make n [||] in
    let offset = Array.make (n + 1) 0 in
    for u = 0 to n - 1 do
      adj.(u) <- Array.of_list (db_neighbors e u);
      offset.(u + 1) <- offset.(u) + Array.length adj.(u)
    done;
    let start_slot = offset.(n) in
    let slot v p =
      (* Position of p among v's neighbors. A linear exact-match scan:
         degrees are small and, unlike a rank search, it does not care
         how a hand-built LSA ordered its adjacencies. *)
      let a = adj.(v) in
      let i = ref 0 in
      while fst (Array.unsafe_get a !i) <> p do
        incr i
      done;
      offset.(v) + !i
    in
    let size = start_slot + 1 in
    let dist = Array.make size infinity in
    let parent = Array.make size (-1) in
    let settled = Array.make size false in
    let work = ref 0 in
    let q = Pqueue.create () in
    let encode v p = (v * n) + p in
    let avoid_arr = Array.make n false in
    List.iter (fun a -> if a >= 0 && a < n then avoid_arr.(a) <- true) avoid;
    dist.(start_slot) <- 0.0;
    Pqueue.add q ~priority:0.0 (encode src src);
    let best_final = ref None in
    let continue_ = ref true in
    while !continue_ do
      match Pqueue.pop q with
      | None -> continue_ := false
      | Some (d, state) ->
        let v = state / n and p = state mod n in
        let state_slot = if v = src then start_slot else slot v p in
        if not settled.(state_slot) then begin
          settled.(state_slot) <- true;
          incr work;
          if v = dst then begin
            best_final := Some state_slot;
            continue_ := false
          end
          else begin
            let prev = if v = src then None else Some p in
            Array.iter
              (fun (w, cost) ->
                let interior_ok = v = src || admits e v ~prev ~next:(Some w) in
                let avoid_ok = w = dst || not avoid_arr.(w) in
                if interior_ok && avoid_ok && w <> src then begin
                  let slot' = slot w v in
                  let d' = d +. float_of_int cost in
                  if d' < dist.(slot') then begin
                    dist.(slot') <- d';
                    parent.(slot') <- state_slot;
                    Pqueue.add q ~priority:d' (encode w v)
                  end
                end)
              adj.(v)
          end
        end
    done;
    let node_of s =
      (* The slot's node: the owner of the CSR row it falls in. *)
      if s = start_slot then src
      else begin
        let lo = ref 0 and hi = ref n in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if offset.(mid) <= s then lo := mid else hi := mid
        done;
        !lo
      end
    in
    match !best_final with
    | None -> (None, !work)
    | Some state ->
      (* Reconstruct by walking parents; guard against cycles in the
         state graph (there are none, but be defensive). *)
      let rec build acc state steps =
        if steps > size then None
        else begin
          let v = node_of state in
          if parent.(state) < 0 then Some (v :: acc)
          else build (v :: acc) parent.(state) (steps + 1)
        end
      in
      let path = build [] state 0 in
      (* A path can revisit an AD through different (v, p) states;
         such routes are rejected (sources require loop-free routes,
         paper §4.4). *)
      (match path with
      | Some p when Pr_topology.Path.is_loop_free p -> (Some p, !work)
      | _ -> (None, !work))
  end

(* Optimistic node-level Dijkstra: admission is checked per node,
   ignoring prev/next-hop predicates (a None hop satisfies any
   predicate, so this over-approximates legality). The state space is
   n nodes instead of n^2 (node, arrived-from) states. The caller
   validates the result and falls back to the exact search when some
   hop-constrained term rejects it. *)
let shortest_optimistic e ~avoid =
  let n = e.n in
  let src = e.flow.Flow.src and dst = e.flow.Flow.dst in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let work = ref 0 in
  let q = Pqueue.create () in
  let avoid_arr = Array.make n false in
  List.iter (fun a -> if a >= 0 && a < n then avoid_arr.(a) <- true) avoid;
  dist.(src) <- 0.0;
  Pqueue.add q ~priority:0.0 src;
  let continue_ = ref true in
  let found = ref false in
  while !continue_ do
    match Pqueue.pop q with
    | None -> continue_ := false
    | Some (d, v) ->
      if not settled.(v) then begin
        settled.(v) <- true;
        incr work;
        if v = dst then begin
          found := true;
          continue_ := false
        end
        else begin
          let v_ok = v = src || admits e v ~prev:None ~next:None in
          if v_ok then
            List.iter
              (fun (w, cost) ->
                let avoid_ok = w = dst || not avoid_arr.(w) in
                if avoid_ok && w <> src then begin
                  let d' = d +. float_of_int cost in
                  if d' < dist.(w) then begin
                    dist.(w) <- d';
                    parent.(w) <- v;
                    Pqueue.add q ~priority:d' w
                  end
                end)
              (db_neighbors e v)
        end
      end
  done;
  if not !found then (None, !work)
  else begin
    let rec build acc v = if v = src then src :: acc else build (v :: acc) parent.(v) in
    (Some (build [] dst), !work)
  end

(* Is the path exactly legal per the database, including prev/next-hop
   constrained terms? *)
let path_admitted e path =
  let rec scan = function
    | prev :: ad :: next :: rest ->
      admits e ad ~prev:(Some prev) ~next:(Some next) && scan (ad :: next :: rest)
    | _ -> true
  in
  scan path

let shortest_pruned e ~ranks ?(avoid = []) () =
  ignore ranks;
  match shortest_optimistic e ~avoid with
  | Some path, work when path_admitted e path ->
    (* The optimistic route survives exact validation: done, at node
       (not node-pair) search cost. *)
    (Some path, work)
  | _, work ->
    (* Either nothing was found or a hop-constrained term rejected the
       optimistic route: run the exact search. *)
    let path, full_work = shortest e ~avoid () in
    (path, work + full_work)

let enumerate e ~max_hops ?(limit = 2000) () =
  let src = e.flow.Flow.src and dst = e.flow.Flow.dst in
  let results = ref [] in
  let count = ref 0 in
  let on_path = Array.make e.n false in
  let rec go u prev prefix_rev depth =
    if !count < limit then
      if u = dst then begin
        incr count;
        results := List.rev (dst :: prefix_rev) :: !results
      end
      else if depth < max_hops then
        List.iter
          (fun (v, _) ->
            if (not on_path.(v)) && v <> src then begin
              let u_ok = u = src || admits e u ~prev ~next:(Some v) in
              if u_ok then begin
                on_path.(v) <- true;
                go v (Some u) (u :: prefix_rev) (depth + 1);
                on_path.(v) <- false
              end
            end)
          (db_neighbors e u)
  in
  if src = dst then [ [ src ] ]
  else begin
    on_path.(src) <- true;
    go src None [] 0;
    List.rev !results
  end

let spanning_work ~n = n * n

module Trace = Pr_obs.Trace
module Reg = Pr_telemetry.Registry
module Hist = Pr_telemetry.Hist

type t = { name : string; work : Hist.t }

let make name =
  { name; work = Reg.histogram Reg.default ("proto." ^ name ^ ".work") }

let computation p net ~at ?(work = 1) () =
  Hist.record_int p.work work;
  let tr = Pr_sim.Network.trace net in
  if Trace.enabled tr then
    Trace.complete tr
      ~ts:(Pr_sim.Engine.now (Pr_sim.Network.engine net))
      ~dur:(float_of_int work) ~tid:at p.name

module Trace = Pr_obs.Trace
module Reg = Pr_telemetry.Registry
module Hist = Pr_telemetry.Hist

(* [work] is the default-registry handle (the whole story for
   sequential runs). Under sharding a computation runs on the lane
   owning its AD, so the charge goes to that lane's registry instead;
   the handles are memoized per registry by physical equality. The
   cache list is immutable and its field update is a single word
   store, so a lost concurrent prepend merely causes an idempotent
   re-resolution later. *)
type t = {
  name : string;
  work : Hist.t;
  mutable cache : (Reg.t * Hist.t) list;
}

let make name =
  { name; work = Reg.histogram Reg.default ("proto." ^ name ^ ".work"); cache = [] }

let hist_for p reg =
  if reg == Reg.default then p.work
  else
    match List.assq_opt reg p.cache with
    | Some h -> h
    | None ->
      let h = Reg.histogram reg ("proto." ^ p.name ^ ".work") in
      p.cache <- (reg, h) :: p.cache;
      h

let computation p net ~at ?(work = 1) () =
  let engine = Pr_sim.Network.engine net in
  Hist.record_int (hist_for p (Pr_sim.Engine.current_registry engine)) work;
  let tr = Pr_sim.Network.trace net in
  if Trace.enabled tr then
    Trace.complete tr ~ts:(Pr_sim.Engine.now engine) ~dur:(float_of_int work)
      ~tid:at p.name

module Trace = Pr_obs.Trace

let computation net ~at ?(work = 1) name =
  let tr = Pr_sim.Network.trace net in
  if Trace.enabled tr then
    Trace.complete tr
      ~ts:(Pr_sim.Engine.now (Pr_sim.Network.engine net))
      ~dur:(float_of_int work) ~tid:at name

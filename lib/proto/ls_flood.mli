(** Sequence-numbered link-state flooding, shared by every link-state
    protocol (plain LS, LS hop-by-hop with PTs, ORWG).

    Each AD originates an LSA describing its up adjacencies (and,
    in the policy protocols, its Policy Terms) and re-originates with a
    higher sequence number whenever an incident link changes state.
    Received LSAs that are newer than the stored copy are installed
    and flooded onward to all neighbors except the sender. *)

type t

type delta =
  | Unchanged  (** nothing accepted since the last drain *)
  | Full  (** database reset — everything may have changed *)
  | Origins of Pr_topology.Ad.id list
      (** exactly these origins' LSAs changed, deduplicated, oldest
          first *)

val create :
  Lsdb.lsa Pr_sim.Network.t ->
  terms_for:(Pr_topology.Ad.id -> Pr_policy.Policy_term.t list) ->
  ?flood_to:(Pr_topology.Ad.id -> bool) ->
  unit ->
  t
(** [terms_for ad] is the policy payload attached to [ad]'s LSAs
    (constant [\[\]] for non-policy protocols).

    [flood_to] scopes the flood: LSAs are only forwarded to neighbors
    satisfying the predicate (default: everyone). Every AD still
    {e originates} — a stub's LSA reaches its providers and floods
    onward within the scope — but out-of-scope ADs never receive
    databases. This implements the database distribution strategies of
    the paper's section 6: most ADs are stubs, and excluding them from
    the flood removes most of the distribution overhead at the price
    that their route servers must delegate. *)

val start : t -> unit
(** Every AD originates its first LSA and floods it. *)

val handle_message : t -> at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id -> Lsdb.lsa -> unit

val handle_link : t -> at:Pr_topology.Ad.id -> up:bool -> unit
(** The AD re-originates and floods a fresh LSA reflecting its current
    adjacencies. *)

val reset_node : t -> Pr_topology.Ad.id -> unit
(** The AD restarted with state loss: its database is emptied (the
    origination sequence survives, lollipop-style), a fresh LSA is
    originated, and — modeling the adjacency bring-up database
    exchange of real link-state protocols — every up in-scope neighbor
    pushes its full database to the restarted AD. Call with the AD's
    links already restored. *)

val db : t -> Pr_topology.Ad.id -> Lsdb.t
(** The AD's current link-state database. *)

val db_version : t -> Pr_topology.Ad.id -> int
(** Monotonic per-AD database version, bumped on every accepted LSA.
    Synthesis results computed at version [v] remain valid exactly
    while [db_version] still returns [v] — protocols key their SPF and
    policy-route caches on it instead of eagerly flushing on change. *)

val set_on_change :
  t -> (Pr_topology.Ad.id -> origin:Pr_topology.Ad.id option -> unit) -> unit
(** Callback invoked at an AD whenever its database changes — used by
    protocols that must eagerly revalidate state ({!db_version} covers
    the common lazy-invalidation case). [origin] identifies whose LSA
    changed, [None] on a database reset, so eager consumers can scope
    their revalidation with {!delta_in_scope} just like lazy ones. *)

val take_delta : t -> Pr_topology.Ad.id -> delta
(** Drain the AD's accumulated dirty set: which origins' LSAs changed
    since this AD's consumer last drained. One drain point per AD —
    each protocol instance owns its flood, so its per-AD node state is
    that single consumer. Together with {!reachable_set} and
    {!delta_in_scope} this replaces "db_version moved, recompute" with
    "recompute only if the delta can touch my region". *)

val reachable_set : t -> Pr_topology.Ad.id -> Pr_util.Bitset.t
(** The region the AD's routes depend on: every AD reachable from it
    through bidirectionally-confirmed adjacencies of its own database
    (the same edge-validity rule the protocols' SPFs apply). *)

val delta_in_scope :
  t -> Pr_topology.Ad.id -> reach:Pr_util.Bitset.t -> Pr_topology.Ad.id list -> bool
(** Can changes to these origins' LSAs affect routes computed over
    [reach]? True iff some origin is inside the region or advertises a
    confirmed adjacency attaching it to the region. Any origin further
    away cannot alter routes among region members: every edge such
    routes use is advertised by two region members whose LSAs did not
    change. *)

val db_entries : t -> Pr_topology.Ad.id -> int

(** {2 Adversarial surface}

    Shared realization of the [PROTOCOL] adversarial hooks for the
    link-state families. Replay needs no validation here: stale
    sequence numbers are shed by {!Lsdb.insert}, so re-injected old
    LSAs never displace newer state — the guard's job is content no
    honest origin can emit. *)

val check_lsa : t -> at:Pr_topology.Ad.id -> Lsdb.lsa -> (unit, string) result
(** Accepts everything honest flooding can deliver (including
    duplicates and late copies); rejects out-of-range ids, negative
    costs, adjacencies over links the real topology does not contain,
    and Policy Terms owned by someone other than the origin. Term
    content is not checked against the static config — ORWG mutates
    transit policies live, so only ownership is invariant. *)

val audit_db : t -> at:Pr_topology.Ad.id -> string option
(** First LSA in the AD's database that {!check_lsa} would reject —
    the containment ground truth. *)

val corrupt_lsa : t -> rng:Pr_util.Rng.t -> Lsdb.lsa -> Lsdb.lsa option
(** Retarget one adjacency onto a non-existent link (index-safe,
    detectable, never confusable with an honest link-down). [None] for
    adjacency-free LSAs or complete graphs. *)

val forge_lsa : t -> Pr_topology.Ad.id -> (Lsdb.lsa * int) option
(** A far-future-sequence LSA carrying a fabricated adjacency — the
    classic shadowing attack. [None] in complete graphs. *)

val resync : t -> at:Pr_topology.Ad.id -> nbr:Pr_topology.Ad.id -> unit
(** [nbr] pushes its full database to [at] (the directed form of
    {!reset_node}'s bring-up exchange), recovering whatever [at]
    dropped while it had [nbr] quarantined. *)

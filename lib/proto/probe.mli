(** Computation probes for protocol drivers.

    A probe is made once per (driver, computation-kind) — [make
    "dv.update"] — and resolves its registry histogram handle at that
    point, so the per-event [computation] call never hashes a string.
    Each call charges the work figure to the
    [proto.<name>.work] histogram in {!Pr_telemetry.Registry.default}
    and, when the network's trace is enabled, records the same
    self-contained span as before: timestamped at the current
    simulated time, on the AD's track, with the work charge as its
    duration — so Perfetto renders per-AD computation load directly.
    Call it right next to [Metrics.record_computation] with the same
    [at] and [work]. *)

type t

val make : string -> t
(** Idempotent per name: two probes made with the same name share the
    same histogram. *)

val computation :
  t -> 'msg Pr_sim.Network.t -> at:Pr_topology.Ad.id -> ?work:int -> unit -> unit

(** Trace hooks for protocol drivers.

    [computation net ~at ~work name] records a self-contained span on
    the network's trace: timestamped at the current simulated time, on
    the AD's track, with the work charge as its duration — so Perfetto
    renders per-AD computation load directly. A single branch when the
    trace is disabled; call it right next to
    [Metrics.record_computation] with the same [at] and [work]. *)

val computation : 'msg Pr_sim.Network.t -> at:Pr_topology.Ad.id -> ?work:int -> string -> unit

(** Policy-constrained route computation over a link-state database.

    This is the "route synthesis" at the heart of the paper's
    recommended architecture (§5.4.1) and of the LS hop-by-hop design
    (§5.3): find AD paths such that every interior AD's advertised
    Policy Terms admit the flow, where a PT may constrain the previous
    and next hop as well as source, destination, QOS, UCI, hour and
    authentication.

    Because admission of an interior AD depends on both its
    predecessor and successor, shortest-path search runs over
    (node, arrived-from) states rather than nodes.

    All searches run through an {!engine}: a per-flow view of the
    database that resolves each AD's flow-only policy conditions once
    ({!Pr_policy.Compiled.specialize}) and leaves only prev/next
    bitset probes in the relaxation inner loop. *)

type engine
(** A flow-specialized admission engine over one database snapshot.
    Cheap to build (one small array); per-AD specializations are
    compiled lazily on first probe. Build a fresh engine per (flow,
    database-version) — callers already keyed on
    {!Ls_flood.db_version} for their route caches get this for free. *)

val engine : Lsdb.t -> n:int -> Pr_policy.Flow.t -> engine

val engine_flow : engine -> Pr_policy.Flow.t

val admits :
  engine ->
  Pr_topology.Ad.id ->
  prev:Pr_topology.Ad.id option ->
  next:Pr_topology.Ad.id option ->
  bool
(** Does some advertised PT of the AD admit this crossing, according
    to the database the engine wraps. *)

val path_admitted : engine -> Pr_topology.Path.t -> bool
(** Every interior crossing of the path is admitted — what ORWG checks
    before re-using a cached source route. *)

val force_interpreted : bool ref
(** When true, {!admits} (and so every search) re-interprets the raw
    [Policy_term.t] lists with [List.exists] instead of probing the
    compiled specialization — the pre-compilation code path, kept
    alive so the policy-admit microbenchmark can compare both in one
    binary. Defaults to false; do not set outside [bench]. *)

val shortest :
  engine ->
  ?avoid:Pr_topology.Ad.id list ->
  unit ->
  Pr_topology.Path.t option * int
(** Minimum-cost policy-legal path for the engine's flow (links must
    be advertised in both directions). [avoid] excludes interior ADs
    (the source's own criteria). Returns the path and the search work
    (states settled), the unit charged to {!Pr_sim.Metrics} as
    computation. *)

val shortest_pruned :
  engine ->
  ranks:int array ->
  ?avoid:Pr_topology.Ad.id list ->
  unit ->
  Pr_topology.Path.t option * int
(** Synthesis pruning heuristic (paper §6: "heuristics for pruning
    precomputations and for focusing on-demand computations"): an
    {e optimistic} node-level Dijkstra that checks admission per AD
    while ignoring prev/next-hop predicates — n states instead of the
    exact search's n² (node, arrived-from) states — then validates the
    result exactly and falls back to {!shortest} only when a
    hop-constrained term rejects it. Exact in outcome, cheap in the
    common case where few terms constrain hops. [ranks] is accepted
    for strategy experimentation and currently unused. Returns the
    route and the combined search work. *)

val enumerate :
  engine ->
  max_hops:int ->
  ?limit:int ->
  unit ->
  Pr_topology.Path.t list
(** All policy-legal simple paths within [max_hops] according to the
    database (default [limit] 2000) — the route server's candidate set
    when the source wants choice rather than just a shortest route. *)

val spanning_work : n:int -> int
(** Nominal work of one full (per-source) spanning computation, used
    to compare computation burdens across designs: [n * n] states in
    the worst case. *)

(** Link-state databases with sequence-numbered flooding.

    Shared by every link-state design point (plain LS, LS hop-by-hop
    with policy terms, and ORWG). An LSA describes one AD: its current
    adjacencies with costs and — in the policy-routing protocols — the
    Policy Terms attached to the resources it advertises (paper §4.2:
    "link or path updates contain administrative constraints … that
    apply to the resources they advertise"). *)

type adjacency = {
  nbr : Pr_topology.Ad.id;
  cost : int;  (** administrative cost of the cheapest up link *)
  delay : float;  (** its propagation delay (feeds the Low_delay metric) *)
}

type lsa = {
  origin : Pr_topology.Ad.id;
  seq : int;
  adjacencies : adjacency list;  (** up links only *)
  terms : Pr_policy.Policy_term.t list;  (** empty in non-policy protocols *)
  bytes : int;  (** cached {!lsa_bytes}, computed at construction *)
  mutable compiled : Pr_policy.Compiled.t option;
      (** lazily compiled [terms]; LSA values are physically shared
          across every AD's database copy by flooding, so one
          origination compiles at most once per internet *)
}

val make_lsa :
  origin:Pr_topology.Ad.id ->
  seq:int ->
  adjacencies:adjacency list ->
  terms:Pr_policy.Policy_term.t list ->
  lsa
(** The only way to build an LSA: computes the byte size once and
    leaves compilation lazy. *)

val lsa_bytes : lsa -> int
(** Advertisement size under {!Cost_model}. O(1): cached by
    {!make_lsa}. *)

type t
(** One AD's copy of the database. *)

val create : n:int -> t

val insert : t -> lsa -> bool
(** [insert db lsa] is true when the LSA is newer than the stored one
    (strictly larger sequence number) — the caller should then flood
    it onward. Stale or duplicate LSAs return false and are ignored. *)

val get : t -> Pr_topology.Ad.id -> lsa option

val seq_of : t -> Pr_topology.Ad.id -> int
(** Stored sequence number, or -1 when none. *)

val known_ads : t -> Pr_topology.Ad.id list
(** Origins with a stored LSA. *)

val fold : t -> init:'a -> f:('a -> lsa -> 'a) -> 'a

val adjacency_cost : t -> Pr_topology.Ad.id -> Pr_topology.Ad.id -> int option
(** Cost of the directed adjacency [u -> v] according to [u]'s stored
    LSA. Routing computations require the adjacency in both directions
    before using a link (standard two-way connectivity check). *)

val bidirectional : t -> Pr_topology.Ad.id -> Pr_topology.Ad.id -> int option
(** Max of the two directed costs when both LSAs agree the link is up. *)

val bidirectional_metric :
  t -> Pr_policy.Qos.t -> Pr_topology.Ad.id -> Pr_topology.Ad.id -> int option
(** The per-QOS metric ({!Qos_metric.metric}) of the adjacency, when
    both LSAs agree it is up — what QOS-aware route computations
    accumulate instead of the raw cost. *)

val terms_of : t -> Pr_topology.Ad.id -> Pr_policy.Policy_term.t list
(** Stored policy terms for the AD ([] when unknown). *)

val compiled_of : t -> Pr_topology.Ad.id -> Pr_policy.Compiled.t
(** Compiled form of [terms_of] (an empty compilation when unknown).
    Compiles on first use and caches in the LSA itself, so the cost is
    paid once per origination, not once per database copy. *)

val entry_count : t -> int
(** Number of stored LSAs — the database footprint gauge. *)

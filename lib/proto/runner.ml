module Engine = Pr_sim.Engine
module Network = Pr_sim.Network
module Metrics = Pr_sim.Metrics
module Graph = Pr_topology.Graph
module Trace = Pr_obs.Trace

type convergence = {
  converged : bool;
  sim_time : float;
  events : int;
  messages : int;
  bytes : int;
}

let pp_convergence ppf c =
  Format.fprintf ppf "%s t=%.1f events=%d msgs=%d bytes=%d"
    (if c.converged then "converged" else "DIVERGED")
    c.sim_time c.events c.messages c.bytes

module Make (P : Protocol_intf.PROTOCOL) = struct
  type t = {
    graph : Graph.t;
    config : Pr_policy.Config.t;
    engine : Engine.t;
    net : P.message Network.t;
    metrics : Metrics.t;
    proto : P.t;
    mutable started : bool;
    (* Metrics state at the end of the previous converge, so that
       control traffic triggered between converges (e.g. by fail_link
       handlers) is attributed to the next convergence delta. *)
    mutable marker : Metrics.t;
    mutable events_marker : int;
    (* AD whose link notifications are suppressed, or -1. While a
       crashed AD's links are being forced down (and back up on
       restart), the dead router must not react to them — only its
       neighbors observe the outage. *)
    mutable muted : int;
    (* Links that were up when the AD crashed, to restore on restart.
       Only links this crash transitioned down are recorded, so a
       restart never restores a link some other fault source failed. *)
    crash_links : (Pr_topology.Ad.id, Pr_topology.Link.id list) Hashtbl.t;
    (* Receive-path interposer (the update guard's hook): when it
       returns false the update never reaches the protocol. *)
    mutable filter : (at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id -> P.message -> bool) option;
    (* Observer of link transitions as the protocol sees them (the
       guard's flap-damping feed). Runs before the protocol handler. *)
    mutable link_tap : (at:Pr_topology.Ad.id -> nbr:Pr_topology.Ad.id -> up:bool -> unit) option;
  }

  let setup ?(trace = Trace.disabled) ?(shards = 1) graph config =
    let engine =
      if shards <= 1 then Engine.create ()
      else Engine.create ~shards:(Pr_sim.Shard.plan graph ~shards) ()
    in
    Engine.set_trace engine trace;
    let metrics = Metrics.create ~n:(Graph.n graph) in
    let net = Network.create ~trace engine graph metrics in
    (* Worker domains evaluate compiled policies on the receive path;
       compile everything up front so the lazy fill (and its counter)
       never runs off the main domain. *)
    if Engine.shard_count engine > 1 then
      Pr_policy.Policy_store.precompile
        (Pr_policy.Policy_store.of_config config);
    let proto = P.create graph config net in
    let t =
      {
        graph;
        config;
        engine;
        net;
        metrics;
        proto;
        started = false;
        marker = Metrics.snapshot metrics;
        events_marker = 0;
        muted = -1;
        crash_links = Hashtbl.create 4;
        filter = None;
        link_tap = None;
      }
    in
    Network.set_message_handler net (fun ~at ~from msg ->
        let admit =
          match t.filter with None -> true | Some f -> f ~at ~from msg
        in
        if admit then P.handle_message proto ~at ~from msg);
    Network.set_link_handler net (fun ~at ~link ~up ->
        if at <> t.muted then begin
          (match t.link_tap with
          | None -> ()
          | Some tap ->
            let l = Pr_topology.Graph.link graph link in
            tap ~at ~nbr:(Pr_topology.Link.other_end l at) ~up);
          P.handle_link proto ~at ~link ~up
        end);
    t

  let set_receive_filter t f = t.filter <- f

  let set_link_tap t f = t.link_tap <- f

  let graph t = t.graph

  let config t = t.config

  let protocol t = t.proto

  let metrics t = t.metrics

  let network t = t.net

  let trace t = Network.trace t.net

  let converge ?max_events t =
    let before = t.marker in
    let events_before = t.events_marker in
    let tr = Network.trace t.net in
    if Trace.enabled tr then
      Trace.span_begin tr ~ts:(Engine.now t.engine) ~tid:0 "converge";
    if not t.started then begin
      t.started <- true;
      P.start t.proto
    end;
    let stop = Engine.run ?max_events t.engine in
    if Trace.enabled tr then Trace.span_end tr ~ts:(Engine.now t.engine) ~tid:0 "converge";
    let delta = Metrics.diff ~after:t.metrics ~before in
    t.marker <- Metrics.snapshot t.metrics;
    t.events_marker <- Engine.events_executed t.engine;
    {
      converged = stop = Engine.Drained;
      sim_time = Engine.now t.engine;
      events = Engine.events_executed t.engine - events_before;
      messages = Metrics.messages delta;
      bytes = Metrics.bytes delta;
    }

  let fail_link t lid = Network.set_link_state t.net lid ~up:false

  let restore_link t lid = Network.set_link_state t.net lid ~up:true

  (* Batched link patch applied with the patched AD muted: the single
     code path crash and restart both flow through, the runner-side
     mirror of the [Spf_delta.node_down]/[node_up] patch pair. Only
     the neighbors observe the transitions (their link handlers drive
     re-origination and delta-scoped invalidation); the patched router
     itself reacts to nothing. *)
  let apply_link_patch t ad ~up links =
    t.muted <- ad;
    List.iter (fun lid -> Network.set_link_state t.net lid ~up) links;
    t.muted <- -1

  let crash_ad t ad =
    if Network.node_is_up t.net ad then begin
      (* Take the gateway's up links down first: neighbors observe the
         outage through their link handlers (failure detection), while
         the dying router itself — muted — reacts to nothing. *)
      let mine = ref [] in
      Graph.iter_neighbors t.graph ad ~f:(fun _nbr lid ->
          if Network.link_is_up t.net lid then mine := lid :: !mine);
      let mine = List.sort_uniq compare !mine in
      apply_link_patch t ad ~up:false mine;
      Hashtbl.replace t.crash_links ad mine;
      Network.set_node_state t.net ad ~up:false
    end

  let restart_ad t ad =
    if not (Network.node_is_up t.net ad) then begin
      Network.set_node_state t.net ad ~up:true;
      (* Bring the adjacencies back before the routing process knows
         anything: neighbors react normally, the restarting router —
         still muted — does not advertise its stale pre-crash state. *)
      let mine = Option.value (Hashtbl.find_opt t.crash_links ad) ~default:[] in
      Hashtbl.remove t.crash_links ad;
      apply_link_patch t ad ~up:true mine;
      (* Then reboot it with total state loss; its re-announcements go
         out over the restored links, and the neighbors' link-up
         advertisements are already in flight toward it. *)
      P.reset_node t.proto ~at:ad
    end

  let send_flow t flow =
    Forwarding.send ~n:(Graph.n t.graph)
      ~prepare:(fun f -> P.prepare_flow t.proto f)
      ~originate:(fun packet -> P.originate t.proto packet)
      ~forward:(fun ~at ~from packet -> P.forward t.proto ~at ~from packet)
      ~adjacent:(fun x y -> Network.adjacent_and_up t.net x y)
      flow

  let table_entries t =
    let n = Graph.n t.graph in
    let total = ref 0 in
    for ad = 0 to n - 1 do
      total := !total + P.table_entries t.proto ad
    done;
    !total

  let max_table_entries t =
    let n = Graph.n t.graph in
    let best = ref 0 in
    for ad = 0 to n - 1 do
      best := Stdlib.max !best (P.table_entries t.proto ad)
    done;
    !best

  (* Adversarial-surface delegates, so harnesses (chaos, guard) work
     against the runner without reaching into the protocol value. *)

  let check_update t ~at ~from msg = P.check_update t.proto ~at ~from msg

  let corrupt_update t ~rng msg = P.corrupt_update t.proto ~rng msg

  let forge_update t ~origin = P.forge_update t.proto ~origin

  let audit_state t ~at = P.audit_state t.proto ~at

  let resync t ~at ~nbr = P.resync t.proto ~at ~nbr
end

(** The common interface every inter-AD routing protocol implements.

    A protocol instance manages the routing agents of {e all} ADs in
    one simulated internet (this is a simulator: global state is held
    in one value, but agents only ever read their own node's slice and
    the messages delivered to them). The {!Runner} functor wires an
    instance to a {!Pr_sim.Network} and drives it. *)

module type PROTOCOL = sig
  type t
  (** Instance state: all per-AD agents for one simulation. *)

  type message
  (** Control messages exchanged between neighbor ADs. *)

  val name : string

  val design_point : Design_point.t
  (** Position in the paper's Table 1 design space. *)

  val create : Pr_topology.Graph.t -> Pr_policy.Config.t -> message Pr_sim.Network.t -> t
  (** Build agents for every AD. The protocol may keep the network for
      sending but must not send until {!start}. *)

  val start : t -> unit
  (** Emit initial advertisements (full tables, LSA origination). *)

  val handle_message : t -> at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id -> message -> unit
  (** A control message arrived at AD [at] from neighbor [from]. *)

  val handle_link : t -> at:Pr_topology.Ad.id -> link:Pr_topology.Link.id -> up:bool -> unit
  (** Link state change visible at endpoint [at]. *)

  val reset_node : t -> at:Pr_topology.Ad.id -> unit
  (** AD [at]'s router restarted with total state loss (paper §2.2:
      gateways crash and recover): forget every learned route and
      database entry, rebuild the AD's own local entries exactly as
      {!create} would, and re-announce over currently-up links. The
      rest of the internet keeps whatever it heard from the AD before
      the crash — recovery must go through the normal protocol
      exchange. Callers (see [Runner.Make.restart_ad]) invoke this
      after the AD's links are back up, mirroring a rebooted gateway
      whose adjacencies come up before its routing process has
      relearned anything. *)

  (** {2 Data plane} *)

  val prepare_flow : t -> Pr_policy.Flow.t -> Packet.prep
  (** Called once before the first packet of a flow: route synthesis
      and setup for ORWG, a no-op ({!Packet.no_prep}) elsewhere. *)

  val originate : t -> Packet.t -> unit
  (** Stamp origination-time header state onto a fresh packet (source
      route, handle, header size). Hop-by-hop protocols leave the base
      header. *)

  val forward :
    t -> at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id option -> Packet.t -> Packet.decision
  (** Forwarding decision of AD [at] for a packet arriving from
      neighbor [from] ([None] at the source). *)

  val table_entries : t -> Pr_topology.Ad.id -> int
  (** Current routing/forwarding state held by the AD (routing table
      entries, LSDB size, or cached policy routes) — the state gauge
      of experiments E4/E5. *)
end

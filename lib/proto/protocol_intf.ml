(** The common interface every inter-AD routing protocol implements.

    A protocol instance manages the routing agents of {e all} ADs in
    one simulated internet (this is a simulator: global state is held
    in one value, but agents only ever read their own node's slice and
    the messages delivered to them). The {!Runner} functor wires an
    instance to a {!Pr_sim.Network} and drives it. *)

module type PROTOCOL = sig
  type t
  (** Instance state: all per-AD agents for one simulation. *)

  type message
  (** Control messages exchanged between neighbor ADs. *)

  val name : string

  val design_point : Design_point.t
  (** Position in the paper's Table 1 design space. *)

  val create : Pr_topology.Graph.t -> Pr_policy.Config.t -> message Pr_sim.Network.t -> t
  (** Build agents for every AD. The protocol may keep the network for
      sending but must not send until {!start}. *)

  val start : t -> unit
  (** Emit initial advertisements (full tables, LSA origination). *)

  val handle_message : t -> at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id -> message -> unit
  (** A control message arrived at AD [at] from neighbor [from]. *)

  val handle_link : t -> at:Pr_topology.Ad.id -> link:Pr_topology.Link.id -> up:bool -> unit
  (** Link state change visible at endpoint [at]. *)

  val reset_node : t -> at:Pr_topology.Ad.id -> unit
  (** AD [at]'s router restarted with total state loss (paper §2.2:
      gateways crash and recover): forget every learned route and
      database entry, rebuild the AD's own local entries exactly as
      {!create} would, and re-announce over currently-up links. The
      rest of the internet keeps whatever it heard from the AD before
      the crash — recovery must go through the normal protocol
      exchange. Callers (see [Runner.Make.restart_ad]) invoke this
      after the AD's links are back up, mirroring a rebooted gateway
      whose adjacencies come up before its routing process has
      relearned anything. *)

  (** {2 Adversarial surface}

      The paper's mutual-suspicion premise (§2.1): a neighbor AD may
      emit malformed, stale, or policy-violating routing information.
      Each protocol names what an update from [from] must satisfy to be
      believed ({!check_update}), how an attacker would tamper with or
      fabricate its updates ({!corrupt_update}, {!forge_update}), what
      installed state would betray a successful attack
      ({!audit_state}), and how to recover a neighbor that missed
      updates while quarantined ({!resync}). The update guard
      ([Pr_guard]) interposes these at the receive path; the nemesis
      drives the offense side. *)

  val check_update :
    t -> at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id -> message -> (unit, string) result
  (** Validate an update as received at [at] from direct neighbor
      [from]: syntactic well-formedness (indices in range, metrics
      non-negative), sequence/freshness discipline where the protocol
      has one, and policy-consistency against what [from]'s own
      advertised Policy Terms allow it to announce. Must accept every
      update an honest implementation can emit (including benign
      flooding duplicates) — rejections quarantine the sender. *)

  val corrupt_update : t -> rng:Pr_util.Rng.t -> message -> message option
  (** Tamper with an in-flight update the attacker emitted — the
      protocol-specific realization of a bit-flip/truncation ([None] =
      this message offers nothing to corrupt). Corruption must stay
      {e index-safe}: receivers may reject it, but never crash on it. *)

  val forge_update : t -> origin:Pr_topology.Ad.id -> (message * int) option
  (** A fabricated announcement (message, wire bytes) from [origin]
      that violates [origin]'s own advertised Policy Terms — a route
      leak / hijack. [None] when the protocol family has nothing
      forgeable beyond what {!corrupt_update} covers. *)

  val audit_state : t -> at:Pr_topology.Ad.id -> string option
  (** Ground-truth containment audit: does AD [at]'s installed routing
      state contain anything that {!check_update} would have rejected
      (poisoned metrics, policy-violating entries, fabricated
      adjacencies)? [Some reason] describes the first offending entry.
      Protocols whose state cannot be audited (EGP's unverifiable
      reachability bits) always return [None] — the paper's argument
      for carrying checkable policy terms. *)

  val resync : t -> at:Pr_topology.Ad.id -> nbr:Pr_topology.Ad.id -> unit
  (** Neighbor [nbr] pushes its full current state to [at] — the
      adjacency-bring-up exchange replayed after [at] readmits [nbr]
      from quarantine, so updates dropped while quarantined are
      recovered. *)

  (** {2 Data plane} *)

  val prepare_flow : t -> Pr_policy.Flow.t -> Packet.prep
  (** Called once before the first packet of a flow: route synthesis
      and setup for ORWG, a no-op ({!Packet.no_prep}) elsewhere. *)

  val originate : t -> Packet.t -> unit
  (** Stamp origination-time header state onto a fresh packet (source
      route, handle, header size). Hop-by-hop protocols leave the base
      header. *)

  val forward :
    t -> at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id option -> Packet.t -> Packet.decision
  (** Forwarding decision of AD [at] for a packet arriving from
      neighbor [from] ([None] at the source). *)

  val table_entries : t -> Pr_topology.Ad.id -> int
  (** Current routing/forwarding state held by the AD (routing table
      entries, LSDB size, or cached policy routes) — the state gauge
      of experiments E4/E5. *)
end

module Graph = Pr_topology.Graph
module Network = Pr_sim.Network
module Bitset = Pr_util.Bitset

type delta = Unchanged | Full | Origins of Pr_topology.Ad.id list

type t = {
  net : Lsdb.lsa Network.t;
  n : int;
  dbs : Lsdb.t array;
  seqs : int array;
  (* Per-AD database version: bumped on every accepted LSA. Protocols
     key their synthesis caches on this — an unchanged version means
     the AD's view of the topology is unchanged, so cached SPF trees
     and policy routes are still valid. *)
  versions : int array;
  (* Per-AD dirty set since the AD's consumer last drained it: which
     origins' LSAs changed. The scoped-invalidation machinery — a
     consumer whose cached region provably does not meet the delta
     skips its recompute entirely. [dirty_full] swallows the origin
     list (database reset); [dirty_mem] is allocated lazily so
     protocols that never drain pay one list cell per change, not a
     bitset per AD. *)
  dirty : Pr_topology.Ad.id list array;  (* newest first *)
  dirty_mem : Bitset.t option array;
  dirty_full : bool array;
  terms_for : Pr_topology.Ad.id -> Pr_policy.Policy_term.t list;
  flood_to : Pr_topology.Ad.id -> bool;
  mutable on_change : Pr_topology.Ad.id -> origin:Pr_topology.Ad.id option -> unit;
}

let create net ~terms_for ?(flood_to = fun _ -> true) () =
  let n = Graph.n (Network.graph net) in
  {
    net;
    n;
    dbs = Array.init n (fun _ -> Lsdb.create ~n);
    seqs = Array.make n 0;
    versions = Array.make n 0;
    dirty = Array.make n [];
    dirty_mem = Array.make n None;
    dirty_full = Array.make n false;
    terms_for;
    flood_to;
    on_change = (fun _ ~origin:_ -> ());
  }

let set_on_change t f = t.on_change <- f

let db t ad = t.dbs.(ad)

let db_version t ad = t.versions.(ad)

let db_entries t ad = Lsdb.entry_count t.dbs.(ad)

(* Current up adjacencies of [ad]: the cheapest up link per neighbor,
   with its cost and delay. *)
let current_adjacencies t ad =
  let g = Network.graph t.net in
  let acc = ref [] in
  Graph.iter_neighbor_ids g ad ~f:(fun nbr ->
      match Network.up_link_between t.net ad nbr with
      | None -> ()
      | Some lid ->
        let l = Graph.link g lid in
        acc :=
          { Lsdb.nbr; cost = l.Pr_topology.Link.cost; delay = l.Pr_topology.Link.delay }
          :: !acc);
  List.rev !acc

let flood_from t ad ?except lsa =
  let bytes = Lsdb.lsa_bytes lsa in
  let except = match except with None -> -1 | Some e -> e in
  Network.iter_up_neighbors t.net ad ~f:(fun nbr ->
      if nbr <> except && t.flood_to nbr then Network.send t.net ~src:ad ~dst:nbr ~bytes lsa)

let mark_dirty t ad origin =
  match origin with
  | None ->
    t.dirty_full.(ad) <- true;
    t.dirty.(ad) <- [];
    (match t.dirty_mem.(ad) with Some m -> Bitset.clear m | None -> ())
  | Some o ->
    if not t.dirty_full.(ad) then begin
      let m =
        match t.dirty_mem.(ad) with
        | Some m -> m
        | None ->
          let m = Bitset.create t.n in
          t.dirty_mem.(ad) <- Some m;
          m
      in
      if not (Bitset.mem m o) then begin
        Bitset.add m o;
        t.dirty.(ad) <- o :: t.dirty.(ad)
      end
    end

let changed t ad ~origin =
  t.versions.(ad) <- t.versions.(ad) + 1;
  mark_dirty t ad origin;
  t.on_change ad ~origin

let take_delta t ad =
  if t.dirty_full.(ad) then begin
    t.dirty_full.(ad) <- false;
    t.dirty.(ad) <- [];
    (match t.dirty_mem.(ad) with Some m -> Bitset.clear m | None -> ());
    Full
  end
  else
    match t.dirty.(ad) with
    | [] -> Unchanged
    | os ->
      t.dirty.(ad) <- [];
      (match t.dirty_mem.(ad) with Some m -> Bitset.clear m | None -> ());
      Origins (List.rev os)

(* The region an AD's cached routes can depend on: everything reachable
   from it through bidirectionally-confirmed adjacencies of its own
   database. *)
let reachable_set t ad =
  let db = t.dbs.(ad) in
  let reach = Bitset.create t.n in
  Bitset.add reach ad;
  let queue = Queue.create () in
  Queue.add ad queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    match Lsdb.get db u with
    | None -> ()
    | Some lsa ->
      List.iter
        (fun (a : Lsdb.adjacency) ->
          let v = a.Lsdb.nbr in
          if v >= 0 && v < t.n && (not (Bitset.mem reach v))
             && Lsdb.bidirectional db u v <> None
          then begin
            Bitset.add reach v;
            Queue.add v queue
          end)
        lsa.Lsdb.adjacencies
  done;
  reach

(* Can a change to [o]'s LSA affect routes computed over [reach]?
   Only if [o] is inside the region, or its LSA advertises a
   bidirectionally-confirmed adjacency attaching it to the region (a
   new attachment grows the region; anything further away cannot alter
   any shortest or policy route among region members, because every
   edge such routes use is advertised by two region members whose LSAs
   did not change). *)
let delta_in_scope t ad ~reach origins =
  let db = t.dbs.(ad) in
  List.exists
    (fun o ->
      o = ad
      || Bitset.mem reach o
      ||
      match Lsdb.get db o with
      | None -> false
      | Some lsa ->
        List.exists
          (fun (a : Lsdb.adjacency) ->
            let v = a.Lsdb.nbr in
            v >= 0 && v < t.n && Bitset.mem reach v && Lsdb.bidirectional db o v <> None)
          lsa.Lsdb.adjacencies)
    origins

let originate t ad =
  t.seqs.(ad) <- t.seqs.(ad) + 1;
  let lsa =
    Lsdb.make_lsa ~origin:ad ~seq:t.seqs.(ad)
      ~adjacencies:(current_adjacencies t ad) ~terms:(t.terms_for ad)
  in
  if Lsdb.insert t.dbs.(ad) lsa then changed t ad ~origin:(Some ad);
  flood_from t ad lsa

let start t =
  let n = Graph.n (Network.graph t.net) in
  for ad = 0 to n - 1 do
    originate t ad
  done

let handle_message t ~at ~from lsa =
  if Lsdb.insert t.dbs.(at) lsa then begin
    changed t at ~origin:(Some lsa.Lsdb.origin);
    flood_from t at ~except:from lsa
  end

let handle_link t ~at ~up:_ = originate t at

(* {2 Adversarial surface shared by the link-state families}

   Validation accepts everything honest flooding can deliver —
   including duplicates and late copies racing a newer origination
   (stale sequence numbers are shed by {!Lsdb.insert}, which is also
   what contains replay: re-injected old LSAs never displace newer
   state). What it rejects is content no honest origin can emit: out of
   range ids, negative costs, adjacencies over links the real topology
   does not contain (the LS form of a route leak — claiming transit
   connectivity the AD does not have), and Policy Terms owned by
   someone other than the origin. Term {e content} is deliberately not
   checked against the static config: ORWG mutates transit policies
   live ([set_policy]), so only ownership is invariant. *)

let link_exists g u v =
  let found = ref false in
  Graph.iter_links_between g u v ~f:(fun _ -> found := true);
  !found

let check_lsa t ~at:_ (lsa : Lsdb.lsa) =
  let g = Network.graph t.net in
  let origin = lsa.Lsdb.origin in
  if origin < 0 || origin >= t.n then
    Error (Printf.sprintf "LSA origin %d out of range" origin)
  else begin
    let bad = ref None in
    List.iter
      (fun (a : Lsdb.adjacency) ->
        if !bad = None then
          if a.Lsdb.nbr < 0 || a.Lsdb.nbr >= t.n then
            bad :=
              Some (Printf.sprintf "adjacency neighbor %d out of range" a.Lsdb.nbr)
          else if a.Lsdb.cost < 0 then
            bad := Some (Printf.sprintf "negative adjacency cost %d" a.Lsdb.cost)
          else if not (link_exists g origin a.Lsdb.nbr) then
            bad :=
              Some
                (Printf.sprintf "ad %d advertises a fabricated adjacency to %d"
                   origin a.Lsdb.nbr))
      lsa.Lsdb.adjacencies;
    List.iter
      (fun (term : Pr_policy.Policy_term.t) ->
        if !bad = None && term.Pr_policy.Policy_term.owner <> origin then
          bad :=
            Some
              (Printf.sprintf "ad %d advertises a policy term owned by ad %d"
                 origin term.Pr_policy.Policy_term.owner))
      lsa.Lsdb.terms;
    match !bad with None -> Ok () | Some reason -> Error reason
  end

let audit_db t ~at =
  Lsdb.fold t.dbs.(at) ~init:None ~f:(fun acc lsa ->
      match acc with
      | Some _ -> acc
      | None -> (
        match check_lsa t ~at lsa with
        | Ok () -> None
        | Error reason -> Some reason))

(* Lowest-id AD the origin has no real link to — the fabricated
   neighbor corruption and forgery both claim. None in complete
   graphs. *)
let fabricated_neighbor t origin =
  let g = Network.graph t.net in
  let fake = ref (-1) in
  let i = ref 0 in
  while !fake < 0 && !i < t.n do
    if !i <> origin && not (link_exists g origin !i) then fake := !i;
    incr i
  done;
  if !fake < 0 then None else Some !fake

(* Retarget one adjacency onto a link that does not exist: detectable
   by {!check_lsa}, invisible to SPF without a guard (the bidirectional
   discipline never confirms it), and — unlike truncation — never
   confusable with an honest link-down. *)
let corrupt_lsa t ~rng (lsa : Lsdb.lsa) =
  match (lsa.Lsdb.adjacencies, fabricated_neighbor t lsa.Lsdb.origin) with
  | [], _ | _, None -> None
  | adjs, Some fake ->
    let k = Pr_util.Rng.int rng (List.length adjs) in
    let adjacencies =
      List.mapi
        (fun i (a : Lsdb.adjacency) ->
          if i = k then { a with Lsdb.nbr = fake } else a)
        adjs
    in
    Some { lsa with Lsdb.adjacencies; compiled = None }

(* The classic LS attack: a far-future sequence number (honest
   re-originations are shadowed until something intervenes) carrying a
   fabricated adjacency. Guarded receivers reject it outright;
   unguarded ones flood it internet-wide, where the final audit finds
   it. *)
let forge_lsa t origin =
  match fabricated_neighbor t origin with
  | None -> None
  | Some fake ->
    let adjacencies =
      current_adjacencies t origin @ [ { Lsdb.nbr = fake; cost = 1; delay = 1.0 } ]
    in
    let lsa =
      Lsdb.make_lsa ~origin ~seq:(t.seqs.(origin) + 1000) ~adjacencies
        ~terms:(t.terms_for origin)
    in
    Some (lsa, Lsdb.lsa_bytes lsa)

(* Quarantine readmission: [nbr] pushes its full database to [at] —
   the same bring-up exchange {!reset_node} performs, directed. LSAs
   [at] already has (or newer) are shed by the sequence check. *)
let resync t ~at ~nbr =
  if t.flood_to at && t.flood_to nbr then
    Lsdb.fold t.dbs.(nbr) ~init:() ~f:(fun () lsa ->
        Network.send t.net ~src:nbr ~dst:at ~bytes:(Lsdb.lsa_bytes lsa) lsa)

let reset_node t ad =
  (* State loss empties the AD's database; the origination sequence
     number survives (lollipop-style — restarting at 0 would make the
     rest of the internet reject the fresh LSAs as stale). *)
  let n = Graph.n (Network.graph t.net) in
  t.dbs.(ad) <- Lsdb.create ~n;
  changed t ad ~origin:None;
  originate t ad;
  (* Adjacency bring-up database exchange (the OSPF-style sync real
     link-state protocols perform): each up in-scope neighbor pushes
     its full database to the restarted AD, so its view reconverges
     even for origins it shares no adjacency with. Duplicates are shed
     by the sequence-number check; the pushes are charged to the
     neighbors like any other flood traffic. *)
  if t.flood_to ad then
    Network.iter_up_neighbors t.net ad ~f:(fun nbr ->
        if t.flood_to nbr then
          Lsdb.fold t.dbs.(nbr) ~init:() ~f:(fun () lsa ->
              Network.send t.net ~src:nbr ~dst:ad ~bytes:(Lsdb.lsa_bytes lsa) lsa))

module Graph = Pr_topology.Graph
module Network = Pr_sim.Network

type t = {
  net : Lsdb.lsa Network.t;
  dbs : Lsdb.t array;
  seqs : int array;
  (* Per-AD database version: bumped on every accepted LSA. Protocols
     key their synthesis caches on this — an unchanged version means
     the AD's view of the topology is unchanged, so cached SPF trees
     and policy routes are still valid. *)
  versions : int array;
  terms_for : Pr_topology.Ad.id -> Pr_policy.Policy_term.t list;
  flood_to : Pr_topology.Ad.id -> bool;
  mutable on_change : Pr_topology.Ad.id -> unit;
}

let create net ~terms_for ?(flood_to = fun _ -> true) () =
  let n = Graph.n (Network.graph net) in
  {
    net;
    dbs = Array.init n (fun _ -> Lsdb.create ~n);
    seqs = Array.make n 0;
    versions = Array.make n 0;
    terms_for;
    flood_to;
    on_change = (fun _ -> ());
  }

let set_on_change t f = t.on_change <- f

let db t ad = t.dbs.(ad)

let db_version t ad = t.versions.(ad)

let db_entries t ad = Lsdb.entry_count t.dbs.(ad)

(* Current up adjacencies of [ad]: the cheapest up link per neighbor,
   with its cost and delay. *)
let current_adjacencies t ad =
  let g = Network.graph t.net in
  let acc = ref [] in
  Graph.iter_neighbor_ids g ad ~f:(fun nbr ->
      match Network.up_link_between t.net ad nbr with
      | None -> ()
      | Some lid ->
        let l = Graph.link g lid in
        acc :=
          { Lsdb.nbr; cost = l.Pr_topology.Link.cost; delay = l.Pr_topology.Link.delay }
          :: !acc);
  List.rev !acc

let flood_from t ad ?except lsa =
  let bytes = Lsdb.lsa_bytes lsa in
  let except = match except with None -> -1 | Some e -> e in
  Network.iter_up_neighbors t.net ad ~f:(fun nbr ->
      if nbr <> except && t.flood_to nbr then Network.send t.net ~src:ad ~dst:nbr ~bytes lsa)

let changed t ad =
  t.versions.(ad) <- t.versions.(ad) + 1;
  t.on_change ad

let originate t ad =
  t.seqs.(ad) <- t.seqs.(ad) + 1;
  let lsa =
    Lsdb.make_lsa ~origin:ad ~seq:t.seqs.(ad)
      ~adjacencies:(current_adjacencies t ad) ~terms:(t.terms_for ad)
  in
  if Lsdb.insert t.dbs.(ad) lsa then changed t ad;
  flood_from t ad lsa

let start t =
  let n = Graph.n (Network.graph t.net) in
  for ad = 0 to n - 1 do
    originate t ad
  done

let handle_message t ~at ~from lsa =
  if Lsdb.insert t.dbs.(at) lsa then begin
    changed t at;
    flood_from t at ~except:from lsa
  end

let handle_link t ~at ~up:_ = originate t at

let reset_node t ad =
  (* State loss empties the AD's database; the origination sequence
     number survives (lollipop-style — restarting at 0 would make the
     rest of the internet reject the fresh LSAs as stale). *)
  let n = Graph.n (Network.graph t.net) in
  t.dbs.(ad) <- Lsdb.create ~n;
  changed t ad;
  originate t ad;
  (* Adjacency bring-up database exchange (the OSPF-style sync real
     link-state protocols perform): each up in-scope neighbor pushes
     its full database to the restarted AD, so its view reconverges
     even for origins it shares no adjacency with. Duplicates are shed
     by the sequence-number check; the pushes are charged to the
     neighbors like any other flood traffic. *)
  if t.flood_to ad then
    Network.iter_up_neighbors t.net ad ~f:(fun nbr ->
        if t.flood_to nbr then
          Lsdb.fold t.dbs.(nbr) ~init:() ~f:(fun () lsa ->
              Network.send t.net ~src:nbr ~dst:ad ~bytes:(Lsdb.lsa_bytes lsa) lsa))

(** Windowed sampling of monotone counters over simulated time.

    A timeline turns end-of-run totals into convergence dynamics: it
    probes a vector of counters (normally [Metrics] totals) at most
    once per simulated-time window, records each changed value as a
    Chrome counter event on the given trace, and remembers per series
    when activity first appeared and when it last changed — the
    time-to-first-route and time-to-quiescence figures. The probe is
    driven from the engine's per-event observer, never by scheduling
    events of its own, so an instrumented run drains exactly like an
    uninstrumented one. *)

type t

val create :
  ?window:float -> series:string list -> probe:(unit -> float array) -> Trace.t -> t
(** [create ~series ~probe trace] takes an immediate sample at time 0.
    [probe ()] must return the current value of each series, in order;
    [window] (default [1.0]) is the minimum simulated time between
    samples. Pass [Trace.disabled] to keep the timeline summary
    without counter events. *)

val observe : t -> now:float -> unit
(** Sample iff [now] crossed the next window boundary; otherwise a
    float compare. Call with the engine clock on every executed
    event. *)

val finish : t -> now:float -> unit
(** Unconditional final sample at [now]. *)

val samples : t -> (float * float array) list
(** All samples taken, oldest first, as (time, values-per-series). *)

val first_nonzero : t -> string -> float option
(** Time the named series was first observed nonzero. *)

val last_change : t -> string -> float option
(** Time the named series last changed value ([None]: unknown series). *)

val final : t -> string -> float option

val quiescence : t -> float
(** Last time any series changed — time-to-quiescence. *)

val table : t -> Pr_util.Texttable.t
(** Per-series first-activity / last-change / final summary table. *)

(** Structured event recorder with Chrome trace-event export.

    A recorder is a preallocated struct-of-arrays buffer; every record
    call behind a disabled recorder is a single branch on one bool, so
    instrumented hot paths stay allocation-free. When the buffer fills,
    new events are counted as dropped rather than stored — recorded
    spans therefore never lose their [span_begin] to overwrite. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh enabled recorder. [capacity] defaults to [1 lsl 18] events. *)

val disabled : t
(** The shared permanently-disabled recorder: every record call on it
    is a no-op. This is the default everywhere instrumentation hooks
    accept a [?trace] argument. *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** No effect on [disabled]. *)

val length : t -> int
(** Events currently stored. *)

val dropped : t -> int
(** Events discarded because the buffer was full. *)

val clear : t -> unit

(** All record functions take [~ts] in the caller's timebase —
    simulated time for in-run traces, wall-clock microseconds for the
    pool trace — and [~tid], rendered as the Perfetto track (the AD id
    for protocol work, worker pid for pool spans). *)

val span_begin : t -> ts:float -> tid:int -> string -> unit
val span_end : t -> ts:float -> tid:int -> string -> unit
val instant : t -> ts:float -> tid:int -> string -> unit
val counter : t -> ts:float -> tid:int -> value:float -> string -> unit

val complete : t -> ts:float -> dur:float -> tid:int -> string -> unit
(** A self-contained span ([ph:"X"]): one event carrying its own
    duration. Used for route computations, where [dur] is the work
    charge rather than elapsed time. *)

val capacity : t -> int
(** Buffer capacity; 0 for {!disabled}. *)

val merge_from : t -> t array -> unit
(** Drain the source recorders into [t], re-sorting the combined
    buffer by timestamp (stable: [t]'s events first on equal stamps,
    then sources in array order). The sharded engine uses this to fold
    per-shard recorders back into the primary at the end of a run;
    overflow past [t]'s capacity is counted as dropped. Sources are
    cleared. *)

val to_json : t -> Pr_util.Json.t
(** Chrome trace-event document ([{"traceEvents": [...]}]) loadable in
    Perfetto / chrome://tracing. Events appear in record order, so
    timestamps are monotone; spans still open at export are closed at
    the last recorded timestamp so begin/end pairs always balance. *)

val write : path:string -> t -> unit
(** [to_json] serialised to [path], newline-terminated. *)

val validate_json : Pr_util.Json.t -> (unit, string) result
(** Check a parsed trace document for the invariants [to_json]
    guarantees: a [traceEvents] list of well-formed events (known
    phase, name/ph/ts/pid/tid present, [dur >= 0] on completes, args
    on counters), non-decreasing timestamps, and per-track LIFO
    balanced span pairs. Shared by bin/trace_check and the tests. *)

module J = Pr_util.Json

type kind = Begin | End | Instant | Counter | Complete

type t = {
  mutable on : bool;
  capacity : int;
  kinds : kind array;
  ts : float array;
  dur : float array;
  tid : int array;
  names : string array;
  values : float array;
  mutable len : int;
  mutable dropped : int;
}

let create ?(capacity = 1 lsl 18) () =
  let capacity = Stdlib.max 1 capacity in
  {
    on = true;
    capacity;
    kinds = Array.make capacity Instant;
    ts = Array.make capacity 0.0;
    dur = Array.make capacity 0.0;
    tid = Array.make capacity 0;
    names = Array.make capacity "";
    values = Array.make capacity 0.0;
    len = 0;
    dropped = 0;
  }

let disabled =
  {
    on = false;
    capacity = 0;
    kinds = [||];
    ts = [||];
    dur = [||];
    tid = [||];
    names = [||];
    values = [||];
    len = 0;
    dropped = 0;
  }

let enabled t = t.on

let set_enabled t on = if t.capacity > 0 then t.on <- on

let length t = t.len

let dropped t = t.dropped

let clear t =
  t.len <- 0;
  t.dropped <- 0

(* The one hot-path entry point: a single branch on [on] when tracing
   is off, one bounds check and six array stores when it is on. Events
   past capacity are counted, not stored (dropping new events keeps
   every recorded End matched to a recorded Begin). *)
let record t kind ~ts ~dur ~tid ~value name =
  if t.on then begin
    if t.len >= t.capacity then t.dropped <- t.dropped + 1
    else begin
      let i = t.len in
      t.kinds.(i) <- kind;
      t.ts.(i) <- ts;
      t.dur.(i) <- dur;
      t.tid.(i) <- tid;
      t.names.(i) <- name;
      t.values.(i) <- value;
      t.len <- i + 1
    end
  end

let span_begin t ~ts ~tid name = record t Begin ~ts ~dur:0.0 ~tid ~value:0.0 name

let span_end t ~ts ~tid name = record t End ~ts ~dur:0.0 ~tid ~value:0.0 name

let instant t ~ts ~tid name = record t Instant ~ts ~dur:0.0 ~tid ~value:0.0 name

let counter t ~ts ~tid ~value name = record t Counter ~ts ~dur:0.0 ~tid ~value name

let complete t ~ts ~dur ~tid name = record t Complete ~ts ~dur ~tid ~value:0.0 name

let capacity t = t.capacity

(* Drain per-shard recorders into a primary one, re-establishing the
   global timestamp order the Chrome export (and validate_json's
   monotonicity check) relies on. Stable on equal stamps: the primary's
   own events first, then sources in array order — deterministic for a
   given set of buffers. Overflow past the primary's capacity drops the
   latest-stamped events, matching [record]'s drop-newest discipline. *)
let merge_from t srcs =
  let extra = Array.fold_left (fun a (s : t) -> a + s.len) 0 srcs in
  (if t.capacity > 0 && extra > 0 then begin
     let n = t.len + extra in
     let ks = Array.make n Instant
     and tss = Array.make n 0.0
     and ds = Array.make n 0.0
     and tis = Array.make n 0
     and ns = Array.make n ""
     and vs = Array.make n 0.0 in
     let pos = ref 0 in
     let copy_from (s : t) =
       for i = 0 to s.len - 1 do
         let p = !pos in
         ks.(p) <- s.kinds.(i);
         tss.(p) <- s.ts.(i);
         ds.(p) <- s.dur.(i);
         tis.(p) <- s.tid.(i);
         ns.(p) <- s.names.(i);
         vs.(p) <- s.values.(i);
         incr pos
       done
     in
     copy_from t;
     Array.iter copy_from srcs;
     let order = Array.init n (fun i -> i) in
     (* The index tiebreak makes the sort stable over the concat order. *)
     Array.sort
       (fun a b ->
         let c = Float.compare tss.(a) tss.(b) in
         if c <> 0 then c else compare a b)
       order;
     let keep = Stdlib.min n t.capacity in
     for i = 0 to keep - 1 do
       let j = order.(i) in
       t.kinds.(i) <- ks.(j);
       t.ts.(i) <- tss.(j);
       t.dur.(i) <- ds.(j);
       t.tid.(i) <- tis.(j);
       t.names.(i) <- ns.(j);
       t.values.(i) <- vs.(j)
     done;
     t.len <- keep;
     t.dropped <- t.dropped + (n - keep)
   end);
  Array.iter
    (fun (s : t) ->
      if t.capacity > 0 then t.dropped <- t.dropped + s.dropped;
      clear s)
    srcs

(* --- Chrome trace-event export ------------------------------------- *)

let event ~name ~ph ~ts ~tid extra =
  J.Obj
    ([
       ("name", J.String name);
       ("ph", J.String ph);
       ("ts", J.Float ts);
       ("pid", J.Int 1);
       ("tid", J.Int tid);
     ]
    @ extra)

(* Export in record order (timestamps are therefore monotonic by
   construction). Spans still open at the end — end events lost to a
   full buffer, or a run cut short — are closed at the last recorded
   timestamp so the document always carries balanced B/E pairs. *)
let to_json t =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let push tid name =
    Hashtbl.replace stacks tid (name :: Option.value (Hashtbl.find_opt stacks tid) ~default:[])
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  let last_ts = ref 0.0 in
  for i = 0 to t.len - 1 do
    let name = t.names.(i) and ts = t.ts.(i) and tid = t.tid.(i) in
    last_ts := ts;
    match t.kinds.(i) with
    | Begin ->
      push tid name;
      emit (event ~name ~ph:"B" ~ts ~tid [])
    | End -> (
      (* A stray End (no matching Begin on this tid) is recorder misuse;
         skip it rather than emit an unbalanced document. *)
      match Hashtbl.find_opt stacks tid with
      | Some (top :: rest) when top = name ->
        Hashtbl.replace stacks tid rest;
        emit (event ~name ~ph:"E" ~ts ~tid [])
      | _ -> ())
    | Instant -> emit (event ~name ~ph:"i" ~ts ~tid [ ("s", J.String "t") ])
    | Counter ->
      emit (event ~name ~ph:"C" ~ts ~tid [ ("args", J.Obj [ (name, J.Float t.values.(i)) ]) ])
    | Complete -> emit (event ~name ~ph:"X" ~ts ~tid [ ("dur", J.Float t.dur.(i)) ])
  done;
  Hashtbl.iter
    (fun tid stack ->
      List.iter (fun name -> emit (event ~name ~ph:"E" ~ts:!last_ts ~tid [])) stack)
    stacks;
  J.Obj
    [
      ("traceEvents", J.List (List.rev !events));
      ("displayTimeUnit", J.String "ms");
      ("otherData", J.Obj [ ("dropped_events", J.Int t.dropped) ]);
    ]

let write ~path t =
  let oc = open_out path in
  output_string oc (J.to_string (to_json t));
  output_char oc '\n';
  close_out oc

(* --- validation ----------------------------------------------------- *)

let ( let* ) = Result.bind

let validate_event i ev =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "event %d: %s" i m)) fmt in
  match ev with
  | J.Obj _ ->
    let* name =
      Result.map_error (fun e -> Printf.sprintf "event %d: %s" i e) (J.string_member "name" ev)
    in
    let* ph =
      Result.map_error (fun e -> Printf.sprintf "event %d: %s" i e) (J.string_member "ph" ev)
    in
    let* ts =
      Result.map_error (fun e -> Printf.sprintf "event %d: %s" i e) (J.float_member "ts" ev)
    in
    let* tid =
      Result.map_error (fun e -> Printf.sprintf "event %d: %s" i e) (J.int_member "tid" ev)
    in
    let* () =
      match J.int_member "pid" ev with
      | Ok _ -> Ok ()
      | Error e -> fail "%s" e
    in
    let* () =
      match ph with
      | "B" | "E" | "i" | "C" | "X" -> Ok ()
      | other -> fail "unknown phase %S" other
    in
    let* () =
      match ph with
      | "X" -> (
        match J.float_member "dur" ev with
        | Ok d when d >= 0.0 -> Ok ()
        | Ok d -> fail "negative dur %g" d
        | Error e -> fail "%s" e)
      | "C" -> (
        match J.member "args" ev with
        | Some (J.Obj _) -> Ok ()
        | _ -> fail "counter without args object")
      | _ -> Ok ()
    in
    Ok (name, ph, ts, tid)
  | other -> fail "not an object (%s)" (J.to_string other)

(* Checks the properties the runtest checker enforces: a traceEvents
   list whose events are well-formed, timestamps non-decreasing in
   document order, and span Begin/End balanced per tid with stack
   (LIFO) discipline. *)
let validate_json doc =
  let* events =
    match J.member "traceEvents" doc with
    | Some (J.List evs) -> Ok evs
    | Some other -> Error ("traceEvents is not a list: " ^ J.to_string other)
    | None -> Error "missing traceEvents"
  in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let* _count =
    List.fold_left
      (fun acc ev ->
        let* (i, prev_ts) = acc in
        let* (name, ph, ts, tid) = validate_event i ev in
        let* () =
          if ts < prev_ts then
            Error
              (Printf.sprintf "event %d: timestamp %g precedes %g (not monotonic)" i ts
                 prev_ts)
          else Ok ()
        in
        let* () =
          match ph with
          | "B" ->
            Hashtbl.replace stacks tid
              (name :: Option.value (Hashtbl.find_opt stacks tid) ~default:[]);
            Ok ()
          | "E" -> (
            match Hashtbl.find_opt stacks tid with
            | Some (top :: rest) when top = name ->
              Hashtbl.replace stacks tid rest;
              Ok ()
            | Some (top :: _) ->
              Error
                (Printf.sprintf "event %d: span end %S does not match open span %S (tid %d)"
                   i name top tid)
            | _ ->
              Error (Printf.sprintf "event %d: span end %S with no open span (tid %d)" i name tid))
          | _ -> Ok ()
        in
        Ok (i + 1, ts))
      (Ok (0, neg_infinity)) events
  in
  Hashtbl.fold
    (fun tid stack acc ->
      let* () = acc in
      match stack with
      | [] -> Ok ()
      | name :: _ -> Error (Printf.sprintf "unclosed span %S on tid %d" name tid))
    stacks (Ok ())

module T = Pr_util.Texttable

type t = {
  window : float;
  series : string array;
  probe : unit -> float array;
  trace : Trace.t;
  mutable next : float;
  mutable samples : (float * float array) list; (* newest first *)
  last : float array;
  first_nonzero : float option array;
  last_change : float array;
}

let sample t ~now =
  let v = t.probe () in
  let n = Array.length t.series in
  for i = 0 to n - 1 do
    let x = if i < Array.length v then v.(i) else 0.0 in
    if x <> t.last.(i) then begin
      t.last_change.(i) <- now;
      if t.first_nonzero.(i) = None && x <> 0.0 then t.first_nonzero.(i) <- Some now;
      if Trace.enabled t.trace then
        Trace.counter t.trace ~ts:now ~tid:0 ~value:x t.series.(i);
      t.last.(i) <- x
    end
  done;
  t.samples <- (now, Array.sub t.last 0 n) :: t.samples

let create ?(window = 1.0) ~series ~probe trace =
  let n = List.length series in
  let t =
    {
      window = Stdlib.max window epsilon_float;
      series = Array.of_list series;
      probe;
      trace;
      next = 0.0;
      samples = [];
      last = Array.make n 0.0;
      first_nonzero = Array.make n None;
      last_change = Array.make n 0.0;
    }
  in
  sample t ~now:0.0;
  t.next <- t.window;
  t

(* Called from the engine's per-event observer: cheap window-boundary
   test, at most one probe per crossed window. *)
let observe t ~now =
  if now >= t.next then begin
    sample t ~now;
    t.next <- (Float.of_int (int_of_float (now /. t.window)) +. 1.0) *. t.window
  end

let finish t ~now = sample t ~now

let samples t = List.rev t.samples

let index_of t name =
  let rec go i = if i >= Array.length t.series then None else if t.series.(i) = name then Some i else go (i + 1) in
  go 0

let first_nonzero t name = Option.bind (index_of t name) (fun i -> t.first_nonzero.(i))

let last_change t name = Option.map (fun i -> t.last_change.(i)) (index_of t name)

let final t name = Option.map (fun i -> t.last.(i)) (index_of t name)

(* Quiescence = the last simulated time any observed series moved. *)
let quiescence t = Array.fold_left Stdlib.max 0.0 t.last_change

let table t =
  let tbl =
    T.create
      ~columns:
        [
          ("series", T.Left);
          ("first-activity", T.Right);
          ("last-change", T.Right);
          ("final", T.Right);
        ]
  in
  Array.iteri
    (fun i name ->
      T.add_row tbl
        [
          name;
          (match t.first_nonzero.(i) with
          | Some ts -> T.cell_float ~decimals:2 ts
          | None -> "-");
          T.cell_float ~decimals:2 t.last_change.(i);
          T.cell_float ~decimals:0 t.last.(i);
        ])
    t.series;
  tbl

module J = Pr_util.Json
module S = Pr_util.Stats
module T = Pr_util.Texttable

type row = {
  name : string;
  total : float;
  mean : float;
  max : float;
  argmax : int;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = row list

let row_of name values =
  let n = Array.length values in
  let total = Array.fold_left ( +. ) 0.0 values in
  let max_v = ref 0.0 and argmax = ref 0 in
  Array.iteri
    (fun i v ->
      if v > !max_v then begin
        max_v := v;
        argmax := i
      end)
    values;
  let xs = Array.to_list values in
  {
    name;
    total;
    mean = (if n = 0 then 0.0 else total /. float_of_int n);
    max = !max_v;
    argmax = !argmax;
    p50 = S.percentile xs 50.0;
    p90 = S.percentile xs 90.0;
    p99 = S.percentile xs 99.0;
  }

let of_series series = List.map (fun (name, values) -> row_of name values) series

let table t =
  let tbl =
    T.create
      ~columns:
        [
          ("load", T.Left);
          ("total", T.Right);
          ("mean/AD", T.Right);
          ("max", T.Right);
          ("max@AD", T.Right);
          ("p50", T.Right);
          ("p90", T.Right);
          ("p99", T.Right);
        ]
  in
  List.iter
    (fun r ->
      T.add_row tbl
        [
          r.name;
          T.cell_float ~decimals:0 r.total;
          T.cell_float ~decimals:1 r.mean;
          T.cell_float ~decimals:0 r.max;
          T.cell_int r.argmax;
          T.cell_float ~decimals:1 r.p50;
          T.cell_float ~decimals:1 r.p90;
          T.cell_float ~decimals:1 r.p99;
        ])
    t;
  tbl

let to_json t =
  J.List
    (List.map
       (fun r ->
         J.Obj
           [
             ("name", J.String r.name);
             ("total", J.Float r.total);
             ("mean", J.Float r.mean);
             ("max", J.Float r.max);
             ("argmax", J.Int r.argmax);
             ("p50", J.Float r.p50);
             ("p90", J.Float r.p90);
             ("p99", J.Float r.p99);
           ])
       t)

(** Per-AD load distributions.

    The paper's §5 arguments turn on which ADs bear the cost of each
    design point, not on totals; a load profile summarises one named
    per-AD vector (messages, computations, table entries) into the
    distribution figures — worst-loaded AD, mean, percentiles. *)

type row = {
  name : string;
  total : float;
  mean : float;  (** per AD *)
  max : float;
  argmax : int;  (** the worst-loaded AD's id *)
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = row list

val of_series : (string * float array) list -> t
(** One row per (name, per-AD values) pair, e.g. from
    [Metrics.load_series]. *)

val table : t -> Pr_util.Texttable.t

val to_json : t -> Pr_util.Json.t

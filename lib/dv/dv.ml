module Graph = Pr_topology.Graph
module Link = Pr_topology.Link
module Network = Pr_sim.Network
module Metrics = Pr_sim.Metrics
module Flow = Pr_policy.Flow
module Packet = Pr_proto.Packet
module Cost_model = Pr_proto.Cost_model
module Design_point = Pr_proto.Design_point

let probe_update = Pr_proto.Probe.make "dv.update"

let infinity_metric = 64

type message = (Pr_topology.Ad.id * int) list

module type VARIANT = sig
  val name : string

  val split_horizon : bool
end

module Make (V : VARIANT) = struct
  (* Distributed Bellman-Ford: each node remembers the last vector
     received from every neighbor and recomputes its own entry as the
     minimum over neighbors of (heard metric + link cost). This is the
     classical scheme, complete with its classical pathology: after a
     withdrawal, a node can adopt a neighbor's stale route that in fact
     passes through itself, and metrics then climb step by step to
     infinity (count-to-infinity, paper §4.3). *)
  type node = {
    (* last vector heard, per neighbor *)
    heard : (Pr_topology.Ad.id, int array) Hashtbl.t;
    metric : int array;  (* own table: metric per destination *)
    next_hop : int array;  (* -1 when unreachable *)
  }

  type t = { graph : Graph.t; net : message Network.t; nodes : node array }

  type nonrec message = message

  let name = V.name

  let design_point =
    Design_point.make Design_point.Distance_vector Design_point.Hop_by_hop
      Design_point.In_topology

  let create graph _config net =
    let n = Graph.n graph in
    let make_node ad =
      let metric = Array.make n infinity_metric in
      let next_hop = Array.make n (-1) in
      metric.(ad) <- 0;
      next_hop.(ad) <- ad;
      { heard = Hashtbl.create 8; metric; next_hop }
    in
    { graph; net; nodes = Array.init n make_node }

  let vector_bytes entries =
    Cost_model.update_fixed_bytes + (Cost_model.dv_entry_bytes * List.length entries)

  (* Recompute this node's entry for [dst]; true when it changed. The
     inner loop is allocation-free: up neighbors stream from the CSR
     rows and the (static cheapest) link cost is an array read. *)
  let recompute t ad dst =
    if dst = ad then false
    else begin
      let node = t.nodes.(ad) in
      let best = ref infinity_metric and via = ref (-1) in
      Network.iter_up_neighbors t.net ad ~f:(fun nbr ->
          match Hashtbl.find_opt node.heard nbr with
          | None -> ()
          | Some table ->
            let cost = Graph.link_cost t.graph ad nbr in
            if cost >= 0 then begin
              let candidate = Stdlib.min (table.(dst) + cost) infinity_metric in
              if candidate < !best then begin
                best := candidate;
                via := nbr
              end
            end);
      let changed = node.metric.(dst) <> !best || node.next_hop.(dst) <> !via in
      node.metric.(dst) <- !best;
      node.next_hop.(dst) <- (if !best >= infinity_metric then -1 else !via);
      changed
    end

  (* Advertise the given destinations to every up neighbor, applying
     poisoned reverse under split horizon. *)
  let advertise t ad dests =
    if dests <> [] then begin
      let node = t.nodes.(ad) in
      Network.iter_up_neighbors t.net ad ~f:(fun nbr ->
          let entries =
            List.map
              (fun dst ->
                if V.split_horizon && node.next_hop.(dst) = nbr && dst <> ad then
                  (dst, infinity_metric)
                else (dst, Stdlib.min node.metric.(dst) infinity_metric))
              dests
          in
          Network.send t.net ~src:ad ~dst:nbr ~bytes:(vector_bytes entries) entries)
    end

  let all_dests t = List.init (Graph.n t.graph) (fun i -> i)

  let start t =
    for ad = 0 to Graph.n t.graph - 1 do
      advertise t ad (all_dests t)
    done

  let heard_table t ad nbr =
    let node = t.nodes.(ad) in
    match Hashtbl.find_opt node.heard nbr with
    | Some table -> table
    | None ->
      let table = Array.make (Graph.n t.graph) infinity_metric in
      Hashtbl.replace node.heard nbr table;
      table

  let handle_message t ~at ~from vector =
    Metrics.record_computation (Network.metrics t.net) at ();
    Pr_proto.Probe.computation probe_update t.net ~at ();
    let table = heard_table t at from in
    let changed = ref [] in
    List.iter
      (fun (dst, metric) ->
        table.(dst) <- Stdlib.min metric infinity_metric;
        if recompute t at dst then changed := dst :: !changed)
      vector;
    advertise t at (List.rev !changed)

  let handle_link t ~at ~link ~up =
    let l = Graph.link t.graph link in
    let nbr = Link.other_end l at in
    if up then
      (* Fresh adjacency: share the whole table; the neighbor's vector
         will arrive symmetrically. *)
      advertise t at (all_dests t)
    else begin
      Hashtbl.remove t.nodes.(at).heard nbr;
      let changed = List.filter (recompute t at) (all_dests t) in
      advertise t at changed
    end

  let reset_node t ~at =
    let node = t.nodes.(at) in
    let n = Graph.n t.graph in
    Hashtbl.reset node.heard;
    Array.fill node.metric 0 n infinity_metric;
    Array.fill node.next_hop 0 n (-1);
    node.metric.(at) <- 0;
    node.next_hop.(at) <- at;
    advertise t at (all_dests t)

  (* {2 Adversarial surface}

     DV updates carry no policy content, so validation is purely
     syntactic: in-range destinations, metrics within [0, infinity].
     Forgery (a zero-distance hijack) is well-formed and sails through
     — the distance-vector half of the paper's §3 argument that
     reachability/distance claims alone cannot be defended. *)

  let check_update t ~at:_ ~from:_ vector =
    let n = Graph.n t.graph in
    let rec go = function
      | [] -> Ok ()
      | (dst, metric) :: rest ->
        if dst < 0 || dst >= n then
          Error (Printf.sprintf "destination %d out of range" dst)
        else if metric < 0 || metric > infinity_metric then
          Error
            (Printf.sprintf "metric %d for destination %d outside [0,%d]"
               metric dst infinity_metric)
        else go rest
    in
    go vector

  (* Negate one metric: an impossible (detectable) value, and — unlike
     truncation or inflation, which the receive path clamps or cannot
     distinguish from honest state — index-safe poison. *)
  let corrupt_update _t ~rng vector =
    match vector with
    | [] -> None
    | entries ->
      let k = Pr_util.Rng.int rng (List.length entries) in
      Some
        (List.mapi
           (fun i (dst, m) -> if i = k then (dst, -7 - m) else (dst, m))
           entries)

  (* The hijack: distance 0 to everything. Syntactically flawless. *)
  let forge_update t ~origin:_ =
    let entries = List.map (fun dst -> (dst, 0)) (all_dests t) in
    Some (entries, vector_bytes entries)

  let audit_state t ~at =
    let node = t.nodes.(at) in
    let n = Graph.n t.graph in
    let bad = ref None in
    Graph.iter_neighbor_ids t.graph at ~f:(fun nbr ->
        if !bad = None then
          match Hashtbl.find_opt node.heard nbr with
          | None -> ()
          | Some table ->
            for dst = 0 to n - 1 do
              if !bad = None && (table.(dst) < 0 || table.(dst) > infinity_metric)
              then
                bad :=
                  Some
                    (Printf.sprintf
                       "poisoned metric %d for destination %d heard from ad %d"
                       table.(dst) dst nbr)
            done);
    !bad

  (* [nbr] re-sends its full vector to [at] alone — the link-up
     exchange, directed, with poisoned reverse relative to [at]. *)
  let resync t ~at ~nbr =
    let node = t.nodes.(nbr) in
    let entries =
      List.map
        (fun dst ->
          if V.split_horizon && node.next_hop.(dst) = at && dst <> nbr then
            (dst, infinity_metric)
          else (dst, Stdlib.min node.metric.(dst) infinity_metric))
        (all_dests t)
    in
    Network.send t.net ~src:nbr ~dst:at ~bytes:(vector_bytes entries) entries

  let prepare_flow _t _flow = Packet.no_prep

  let originate _t _packet = ()

  let forward t ~at ~from:_ packet =
    let dst = packet.Packet.flow.Flow.dst in
    if at = dst then Packet.Deliver
    else begin
      let node = t.nodes.(at) in
      if node.metric.(dst) >= infinity_metric || node.next_hop.(dst) < 0 then
        Packet.Drop "no route"
      else Packet.Forward node.next_hop.(dst)
    end

  let table_entries t ad =
    Array.fold_left
      (fun acc m -> if m < infinity_metric then acc + 1 else acc)
      0 t.nodes.(ad).metric

  (* Test/experiment introspection (not part of PROTOCOL). *)
  let route_of t ~at ~dst =
    let node = t.nodes.(at) in
    if node.metric.(dst) >= infinity_metric then None
    else Some (node.metric.(dst), node.next_hop.(dst))
end

module Plain = Make (struct
  let name = "dv-plain"

  let split_horizon = false
end)

module Split_horizon = Make (struct
  let name = "dv-split-horizon"

  let split_horizon = true
end)

let route_of = Plain.route_of

let route_of_sh = Split_horizon.route_of

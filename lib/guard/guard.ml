(* The update guard: the receive-path defense layer the paper's mutual
   suspicion between administrative domains calls for. Every protocol
   driver hands the guard a verdict about each arriving update (the
   protocol knows its own wire format and policy semantics; the guard
   knows nothing about messages) and the guard decides whether the
   update is believed:

   - invalid updates (malformed, stale-sequence, policy-inconsistent)
     are rejected and counted; [strikes] rejections quarantine the
     sender,
   - link flaps feed an RFC-2439-style damping penalty with exponential
     half-life decay; a neighbor whose penalty crosses [suppress] is
     quarantined until it decays below [reuse],
   - a quarantined neighbor's updates are dropped wholesale until a
     backoff (doubling per re-quarantine, capped) elapses; readmission
     fires [on_readmit], which the runner turns into an
     adjacency-bring-up resync so state missed during the quarantine is
     recovered.

   All timing comes from the simulation engine, all bookkeeping is
   incremental, and no randomness is drawn — the guard never perturbs
   the determinism discipline: a (seed, plan, guard-config) triple
   fully determines every run.

   Sharded runs: [screen] executes on the lane owning [at] (the
   receive path runs on the destination's shard), so all per-pair and
   per-AD state is indexed by [at] and therefore single-writer. Counts
   go to per-shard registry handles (merged deterministically at end of
   run); the active-quarantines gauge is only touched from the main
   domain, and [on_readmit] defers through the engine when fired from
   a worker so the resync's sends originate from the owning lane's
   scheduling context. *)

module Engine = Pr_sim.Engine
module Reg = Pr_telemetry.Registry
module Flight = Pr_telemetry.Flight

let log_src = Logs.Src.create "pr.guard" ~doc:"Update guard"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Registry handles resolved once at module init: the receive path
   never hashes a metric name. *)
let m_rejected = Reg.counter Reg.default "guard.updates_rejected"

let m_quarantines = Reg.counter Reg.default "guard.quarantines"

let m_drops = Reg.counter Reg.default "guard.quarantine_drops"

let m_readmissions = Reg.counter Reg.default "guard.readmissions"

let m_active = Reg.gauge Reg.default "guard.active_quarantines"

type config = {
  enabled : bool;
  strikes : int;  (* invalid updates from a neighbor before quarantine *)
  flap_penalty : float;  (* damping penalty added per observed flap *)
  half_life : float;  (* exponential decay half-life of the penalty *)
  suppress : float;  (* penalty threshold that quarantines a neighbor *)
  reuse : float;  (* penalty must decay below this before readmission *)
  backoff : float;  (* first quarantine duration *)
  backoff_max : float;  (* cap on the doubling backoff *)
}

(* Tuned so the benign profiles stay clear of suppression: the default
   plan's flap storm spreads its flaps over random links (~1 penalty
   per neighbor pair), while a chatter attacker flapping one adjacency
   every 0.25 time units accumulates penalty far past [suppress]. *)
let default_config =
  {
    enabled = true;
    strikes = 1;
    flap_penalty = 1.0;
    half_life = 5.0;
    suppress = 5.0;
    reuse = 1.0;
    backoff = 8.0;
    backoff_max = 64.0;
  }

let disabled = { default_config with enabled = false }

let float_str v =
  if Float.is_integer v && Float.abs v < 1e9 then
    string_of_int (int_of_float v)
  else Printf.sprintf "%g" v

let config_to_string c =
  if not c.enabled then "off"
  else
    Printf.sprintf
      "on(strikes=%d,flap-penalty=%s,half-life=%s,suppress=%s,reuse=%s,backoff=%s..%s)"
      c.strikes (float_str c.flap_penalty) (float_str c.half_life)
      (float_str c.suppress) (float_str c.reuse) (float_str c.backoff)
      (float_str c.backoff_max)

(* Exponential penalty decay: p · 2^(−dt/half_life). Monotone
   non-increasing in [dt] — the property test_guard checks. *)
let decay ~half_life p ~dt =
  if dt <= 0.0 || p <= 0.0 then p
  else p *. Float.exp2 (-.dt /. half_life)

type peer = {
  mutable penalty : float;
  mutable penalty_at : float;  (* time [penalty] was last materialized *)
  mutable strikes : int;
  mutable quarantined : bool;
  mutable next_backoff : float;
}

type t = {
  cfg : config;
  engine : Engine.t;
  (* Everything below is indexed by the observing AD [at], whose
     receive path runs on exactly one lane — single-writer by
     construction under sharding. *)
  peers : (int, peer) Hashtbl.t array;  (* peers.(at), keyed by nbr *)
  on_readmit : at:int -> nbr:int -> unit;
  rejected : int array;
  quarantines : int array;
  drops : int array;
  readmissions : int array;
  active : int array;
  (* Per-shard registry counter handles (empty when sequential):
     lane-side increments land in the lane's registry and merge into
     the default registry deterministically at end of run. *)
  lm_rejected : Reg.counter array;
  lm_quarantines : Reg.counter array;
  lm_drops : Reg.counter array;
  lm_readmissions : Reg.counter array;
}

let create ?(config = default_config) ~engine ~n ~on_readmit () =
  let shards = Engine.shard_count engine in
  let lane_ctr name =
    if shards <= 1 then [||]
    else
      Array.init shards (fun i ->
          Reg.counter (Engine.shard_registry engine i) name)
  in
  {
    cfg = config;
    engine;
    peers = Array.init n (fun _ -> Hashtbl.create 4);
    on_readmit;
    rejected = Array.make n 0;
    quarantines = Array.make n 0;
    drops = Array.make n 0;
    readmissions = Array.make n 0;
    active = Array.make n 0;
    lm_rejected = lane_ctr "guard.updates_rejected";
    lm_quarantines = lane_ctr "guard.quarantines";
    lm_drops = lane_ctr "guard.quarantine_drops";
    lm_readmissions = lane_ctr "guard.readmissions";
  }

let config t = t.cfg

(* Bump the registry counter for the current scheduling context: the
   module-init default handle on the main domain, the owning lane's
   handle on a worker. *)
let bump t main lanes =
  match Engine.current_shard t.engine with
  | s when s >= 0 -> Reg.inc lanes.(s)
  | _ -> Reg.inc main

let sum = Array.fold_left ( + ) 0

let peer t at nbr =
  let tbl = t.peers.(at) in
  match Hashtbl.find_opt tbl nbr with
  | Some p -> p
  | None ->
    let p =
      {
        penalty = 0.0;
        penalty_at = 0.0;
        strikes = 0;
        quarantined = false;
        next_backoff = t.cfg.backoff;
      }
    in
    Hashtbl.replace tbl nbr p;
    p

let current_penalty t p ~now =
  decay ~half_life:t.cfg.half_life p.penalty ~dt:(now -. p.penalty_at)

(* Public introspection for tests. *)
let penalty t ~at ~nbr =
  let p = peer t at nbr in
  current_penalty t p ~now:(Engine.now t.engine)

let quarantined t ~at ~nbr = (peer t at nbr).quarantined

(* The gauge is registry-global, so only the main domain publishes it;
   worker-side transitions surface once their counts merge and the
   next main-context transition (or end of run) republishes. *)
let note_active t =
  if Engine.current_shard t.engine < 0 then
    Reg.set m_active (float_of_int (sum t.active))

(* Hand the readmission to the runner. From a worker domain the resync
   must not run inline — it originates sends from [nbr]'s state — so
   it defers through the engine to [nbr]'s owning lane at the next
   window boundary. Sequential runs keep the direct call (bit-for-bit
   with the pre-sharding engine). *)
let fire_readmit t ~at ~nbr =
  if Engine.current_shard t.engine >= 0 then
    Engine.schedule_for t.engine ~ad:nbr ~delay:0.0 (fun () ->
        t.on_readmit ~at ~nbr)
  else t.on_readmit ~at ~nbr

(* Readmission: the backoff must have elapsed AND the damping penalty
   must have decayed below [reuse]. A still-hot penalty reschedules the
   check at the analytic decay time — continued misbehaviour pushes
   readmission out, but any finite attack ends in readmission (the
   qcheck property). *)
let rec try_readmit t p ~at ~nbr () =
  if p.quarantined then begin
    let now = Engine.now t.engine in
    let pen = current_penalty t p ~now in
    if pen >= t.cfg.reuse then begin
      let wait =
        Float.max 0.5
          ((t.cfg.half_life *. Float.log2 (pen /. t.cfg.reuse)) +. 0.25)
      in
      Engine.schedule t.engine ~delay:wait (try_readmit t p ~at ~nbr)
    end
    else begin
      p.quarantined <- false;
      p.strikes <- 0;
      t.active.(at) <- t.active.(at) - 1;
      note_active t;
      t.readmissions.(at) <- t.readmissions.(at) + 1;
      bump t m_readmissions t.lm_readmissions;
      Flight.note Flight.global ~ts:now
        ~detail:(Printf.sprintf "ad %d readmitted neighbor %d" at nbr)
        "guard.readmit";
      Log.debug (fun m -> m "t=%.2f ad %d readmits neighbor %d" now at nbr);
      fire_readmit t ~at ~nbr
    end
  end

let quarantine t p ~at ~nbr ~reason =
  if not p.quarantined then begin
    let now = Engine.now t.engine in
    p.quarantined <- true;
    p.strikes <- 0;
    t.quarantines.(at) <- t.quarantines.(at) + 1;
    bump t m_quarantines t.lm_quarantines;
    t.active.(at) <- t.active.(at) + 1;
    note_active t;
    Flight.note Flight.global ~ts:now
      ~detail:(Printf.sprintf "ad %d quarantined neighbor %d: %s" at nbr reason)
      "guard.quarantine";
    Log.info (fun m ->
        m "t=%.2f ad %d quarantines neighbor %d: %s" now at nbr reason);
    let backoff = p.next_backoff in
    p.next_backoff <- Float.min (p.next_backoff *. 2.0) t.cfg.backoff_max;
    Engine.schedule t.engine ~delay:backoff (try_readmit t p ~at ~nbr)
  end

(* Screen one arriving update: [verdict] is the protocol driver's
   validation result. Returns true when the update should be believed
   (delivered to the driver). *)
let screen t ~at ~from verdict =
  if not t.cfg.enabled then true
  else begin
    let p = peer t at from in
    if p.quarantined then begin
      t.drops.(at) <- t.drops.(at) + 1;
      bump t m_drops t.lm_drops;
      false
    end
    else
      match verdict with
      | Ok () -> true
      | Error reason ->
        t.rejected.(at) <- t.rejected.(at) + 1;
        bump t m_rejected t.lm_rejected;
        Flight.note Flight.global ~ts:(Engine.now t.engine)
          ~detail:
            (Printf.sprintf "ad %d rejected update from %d: %s" at from reason)
          "guard.reject";
        p.strikes <- p.strikes + 1;
        if p.strikes >= t.cfg.strikes then
          quarantine t p ~at ~nbr:from ~reason:("invalid update: " ^ reason);
        false
  end

(* Flap damping input: a link to [nbr] went down as seen from [at]. *)
let observe_link t ~at ~nbr ~up =
  if t.cfg.enabled && not up then begin
    let now = Engine.now t.engine in
    let p = peer t at nbr in
    p.penalty <- current_penalty t p ~now +. t.cfg.flap_penalty;
    p.penalty_at <- now;
    if (not p.quarantined) && p.penalty >= t.cfg.suppress then
      quarantine t p ~at ~nbr ~reason:"flap damping suppression"
  end

let updates_rejected t = sum t.rejected

let quarantines_total t = sum t.quarantines

let quarantine_drops t = sum t.drops

let readmissions t = sum t.readmissions

let active_quarantines t = sum t.active

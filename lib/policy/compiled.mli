(** Compiled policy terms: the allocation-free admit engine.

    The interpreted path ({!Transit_policy.allows}) re-walks
    [Policy_term.t] lists with [List.exists]/[List.mem] on every probe
    — an O(terms × ids) scan per edge relaxation that dominates
    restrictive-policy route synthesis. This module compiles a term
    list once per policy version into flat arrays of bit-level checks:

    - each {!Policy_term.ad_pred} becomes a packed {!Pr_util.Bitset}
      over AD ids plus a complement flag ([Any] = complement of empty,
      [Except ids] = complement of [ids]);
    - QOS and UCI lists become int bitmasks keyed by
      [Qos.index]/[Uci.index];
    - the hour window becomes a 24-bit mask ([None] = all hours, wrap
      windows set both end runs);
    - a whole term list becomes one [cterm array] probed with a
      while-loop — no closure, no allocation.

    Compiled admits are equivalent to interpreted admits by
    construction (the qcheck property in [test/test_policy.ml] pins
    this), so every consumer may switch freely between the two.

    {!specialize} goes one step further for route synthesis: all
    flow-only conditions (src, dst, qos, uci, hour, auth) are resolved
    once per flow, leaving only the prev/next bitset probes of the
    surviving terms in the Dijkstra inner loop. *)

type pred = { bits : Pr_util.Bitset.t; compl : bool }
(** [probe] semantics: [ad ∈ bits] XOR [compl]. Ids outside the
    universe [\[0, n)] are treated as not-in-[bits], which matches the
    interpreted semantics of [Only]/[Except] lists exactly. *)

type t

val compile : n:int -> Policy_term.t list -> t
(** [compile ~n terms] compiles [terms] for an internet of [n] ADs.
    Predicate ids outside [\[0, n)] are dropped from the bitsets (they
    can never match an in-universe AD). *)

val term_count : t -> int

type term_view = {
  v_src : pred;
  v_dst : pred;
  v_prev : pred;
  v_next : pred;
  v_qos_mask : int;  (** bit per [Qos.index] *)
  v_uci_mask : int;  (** bit per [Uci.index] *)
  v_hour_mask : int;  (** bit per hour of day, 24 bits *)
  v_auth_required : bool;
}
(** Read-only view of one compiled term — what downstream compilers
    (the serving layer's decision diagrams) consume instead of
    re-deriving masks from [Policy_term.t]. *)

val term_views : t -> term_view array
(** Views of every compiled term, in source order.  Fresh array, shared
    predicates. *)

val probe : pred -> Pr_topology.Ad.id -> bool

val allows : t -> Policy_term.transit_ctx -> bool
(** Equivalent to {!Transit_policy.allows} on the source terms;
    allocation-free. *)

val admitting_term : t -> Policy_term.transit_ctx -> Policy_term.t option
(** Equivalent to {!Transit_policy.admitting_term}: the first source
    term admitting the crossing (what ORWG cites in a route setup). *)

type spec
(** A compiled policy specialized to one flow: only the prev/next
    predicates of terms whose flow-only conditions passed. *)

val specialize : t -> Flow.t -> spec

val spec_term_count : spec -> int

val spec_allows :
  spec -> prev:Pr_topology.Ad.id option -> next:Pr_topology.Ad.id option -> bool
(** Equivalent to [allows t {flow; prev; next}] for the flow the spec
    was built from; two bitset probes per live term. *)

val supports_qos : t -> Qos.t -> bool
(** Does any term admit this QOS class at all? O(1) against the cached
    union mask. *)

val dest_allowed : t -> Pr_topology.Ad.id -> Qos.t -> bool
(** Does some term admit this destination for this QOS (ignoring every
    other condition)? The ECMA advertisement filter. *)

val admitted_sources_into :
  t ->
  Pr_util.Bitset.t ->
  dst:Pr_topology.Ad.id ->
  qos:Qos.t ->
  uci:Uci.t ->
  hour:int ->
  auth:bool ->
  prev:Pr_topology.Ad.id option ->
  next:Pr_topology.Ad.id option ->
  unit
(** Union into the accumulator every source AD [s] for which some term
    admits a flow [s → dst] with the given class/hour/auth between
    [prev] and [next] — the IDRP per-destination source mask, computed
    with one bitset union per passing term instead of an [n × terms]
    interpreted scan. The accumulator capacity must be the compile-time
    [n]. *)

type t = { owner : Pr_topology.Ad.id; terms : Policy_term.t list; bytes : int }

let sum_bytes terms =
  List.fold_left (fun acc term -> acc + Policy_term.advertisement_bytes term) 0 terms

let make owner terms =
  List.iter
    (fun (term : Policy_term.t) ->
      if term.Policy_term.owner <> owner then
        invalid_arg "Transit_policy.make: term owner mismatch")
    terms;
  { owner; terms; bytes = sum_bytes terms }

let no_transit owner = { owner; terms = []; bytes = 0 }

let open_transit owner = make owner [ Policy_term.open_term owner ]

let allows t ctx = List.exists (fun term -> Policy_term.admits term ctx) t.terms

let admitting_term t ctx = List.find_opt (fun term -> Policy_term.admits term ctx) t.terms

let term_count t = List.length t.terms

let advertisement_bytes t = t.bytes

let pp ppf t =
  Format.fprintf ppf "policy(ad %d, %d terms)" t.owner (List.length t.terms)

type ad_pred =
  | Any
  | Only of Pr_topology.Ad.id array
  | Except of Pr_topology.Ad.id array

(* Predicate id arrays are kept sorted (by [make] / [sort_pred]) so
   membership is a binary search, not a linear scan. Duplicates are
   tolerated — they only cost bytes, never correctness. *)
let ids_mem ids ad =
  let lo = ref 0 and hi = ref (Array.length ids) and found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v = Array.unsafe_get ids mid in
    if v = ad then found := true else if v < ad then lo := mid + 1 else hi := mid
  done;
  !found

let sort_pred = function
  | Any -> Any
  | Only ids ->
    let ids = Array.copy ids in
    Array.sort compare ids;
    Only ids
  | Except ids ->
    let ids = Array.copy ids in
    Array.sort compare ids;
    Except ids

let pred_admits pred ad =
  match pred with
  | Any -> true
  | Only ids -> ids_mem ids ad
  | Except ids -> not (ids_mem ids ad)

let pred_size = function
  | Any -> 0
  | Only ids | Except ids -> Array.length ids

type t = {
  owner : Pr_topology.Ad.id;
  sources : ad_pred;
  destinations : ad_pred;
  prev_hops : ad_pred;
  next_hops : ad_pred;
  qos : Qos.t list;
  ucis : Uci.t list;
  hours : (int * int) option;
  auth_required : bool;
}

let open_term owner =
  {
    owner;
    sources = Any;
    destinations = Any;
    prev_hops = Any;
    next_hops = Any;
    qos = Qos.all;
    ucis = Uci.all;
    hours = None;
    auth_required = false;
  }

let make ~owner ?(sources = Any) ?(destinations = Any) ?(prev_hops = Any)
    ?(next_hops = Any) ?(qos = Qos.all) ?(ucis = Uci.all) ?hours
    ?(auth_required = false) () =
  if qos = [] then invalid_arg "Policy_term.make: empty QOS list";
  if ucis = [] then invalid_arg "Policy_term.make: empty UCI list";
  (match hours with
  | Some (h1, h2) when h1 < 0 || h1 >= 24 || h2 < 0 || h2 >= 24 ->
    invalid_arg "Policy_term.make: hour out of range"
  | Some (h1, h2) when h1 = h2 -> invalid_arg "Policy_term.make: empty hour window"
  | _ -> ());
  {
    owner;
    sources = sort_pred sources;
    destinations = sort_pred destinations;
    prev_hops = sort_pred prev_hops;
    next_hops = sort_pred next_hops;
    qos;
    ucis;
    hours;
    auth_required;
  }

type transit_ctx = {
  flow : Flow.t;
  prev : Pr_topology.Ad.id option;
  next : Pr_topology.Ad.id option;
}

let hour_in_window window hour =
  match window with
  | None -> true
  | Some (h1, h2) -> if h1 <= h2 then h1 <= hour && hour < h2 else hour >= h1 || hour < h2

let opt_admits pred = function
  | None -> true
  | Some ad -> pred_admits pred ad

let admits t ctx =
  let f = ctx.flow in
  pred_admits t.sources f.Flow.src
  && pred_admits t.destinations f.Flow.dst
  && opt_admits t.prev_hops ctx.prev
  && opt_admits t.next_hops ctx.next
  && List.exists (Qos.equal f.Flow.qos) t.qos
  && List.exists (Uci.equal f.Flow.uci) t.ucis
  && hour_in_window t.hours f.Flow.hour
  && ((not t.auth_required) || f.Flow.authenticated)

let advertisement_bytes t =
  (* 8-byte fixed part (owner, flags, QOS/UCI bitmaps, hours) plus
     2 bytes per AD id carried in the four predicates. *)
  8
  + (2 * (pred_size t.sources + pred_size t.destinations + pred_size t.prev_hops
         + pred_size t.next_hops))

let pp_ids ppf ids =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
    Format.pp_print_int ppf (Array.to_list ids)

let pp_pred ppf = function
  | Any -> Format.pp_print_string ppf "any"
  | Only ids -> Format.fprintf ppf "only{%a}" pp_ids ids
  | Except ids -> Format.fprintf ppf "except{%a}" pp_ids ids

let pp ppf t =
  Format.fprintf ppf "PT[ad %d: src=%a dst=%a prev=%a next=%a qos=%d uci=%d%s%s]" t.owner
    pp_pred t.sources pp_pred t.destinations pp_pred t.prev_hops pp_pred t.next_hops
    (List.length t.qos) (List.length t.ucis)
    (match t.hours with
    | None -> ""
    | Some (a, b) -> Printf.sprintf " hours=%d-%d" a b)
    (if t.auth_required then " auth" else "")

module Bitset = Pr_util.Bitset

(* A compiled AD predicate: membership bits over the AD universe plus a
   complement flag. [Any] is the complement of the empty set, [Except]
   the complement of its listed ids — one representation, one probe. *)
type pred = { bits : Bitset.t; compl : bool }

type cterm = {
  src : pred;
  dst : pred;
  prev : pred;
  next : pred;
  qos_mask : int;  (* bit per Qos.index *)
  uci_mask : int;  (* bit per Uci.index *)
  hour_mask : int;  (* bit per hour of day, 24 bits *)
  auth_required : bool;
}

type t = {
  n : int;
  cterms : cterm array;
  terms : Policy_term.t array;  (* source terms, same order as cterms *)
  qos_union : int;  (* union of all qos_masks: which QOS the AD carries at all *)
}

let compile_pred n = function
  | Policy_term.Any -> { bits = Bitset.create n; compl = true }
  | Policy_term.Only ids ->
    let bits = Bitset.create n in
    Array.iter (fun id -> if id >= 0 && id < n then Bitset.add bits id) ids;
    { bits; compl = false }
  | Policy_term.Except ids ->
    let bits = Bitset.create n in
    Array.iter (fun id -> if id >= 0 && id < n then Bitset.add bits id) ids;
    { bits; compl = true }

let qos_mask qos = List.fold_left (fun m q -> m lor (1 lsl Qos.index q)) 0 qos

let uci_mask ucis = List.fold_left (fun m u -> m lor (1 lsl Uci.index u)) 0 ucis

let full_day = (1 lsl 24) - 1

let hour_mask = function
  | None -> full_day
  | Some (h1, h2) ->
    if h1 < h2 then ((1 lsl (h2 - h1)) - 1) lsl h1
    else if h1 = h2 then 0 (* empty window; unreachable via Policy_term.make *)
    else (((1 lsl (24 - h1)) - 1) lsl h1) lor ((1 lsl h2) - 1)

let compile_term n (t : Policy_term.t) =
  {
    src = compile_pred n t.Policy_term.sources;
    dst = compile_pred n t.Policy_term.destinations;
    prev = compile_pred n t.Policy_term.prev_hops;
    next = compile_pred n t.Policy_term.next_hops;
    qos_mask = qos_mask t.Policy_term.qos;
    uci_mask = uci_mask t.Policy_term.ucis;
    hour_mask = hour_mask t.Policy_term.hours;
    auth_required = t.Policy_term.auth_required;
  }

let compile ~n terms =
  let terms = Array.of_list terms in
  let cterms = Array.map (compile_term n) terms in
  let qos_union = Array.fold_left (fun m ct -> m lor ct.qos_mask) 0 cterms in
  { n; cterms; terms; qos_union }

let term_count t = Array.length t.cterms

type term_view = {
  v_src : pred;
  v_dst : pred;
  v_prev : pred;
  v_next : pred;
  v_qos_mask : int;
  v_uci_mask : int;
  v_hour_mask : int;
  v_auth_required : bool;
}

let term_views t =
  Array.map
    (fun ct ->
      {
        v_src = ct.src;
        v_dst = ct.dst;
        v_prev = ct.prev;
        v_next = ct.next;
        v_qos_mask = ct.qos_mask;
        v_uci_mask = ct.uci_mask;
        v_hour_mask = ct.hour_mask;
        v_auth_required = ct.auth_required;
      })
    t.cterms

(* Ids outside [0, n) carry no bit: they are outside every [Only] and
   outside every [Except] list, exactly as the interpreted List.mem. *)
let probe p ad = (ad >= 0 && ad < Bitset.capacity p.bits && Bitset.mem p.bits ad) <> p.compl

let opt_probe p = function
  | None -> true
  | Some ad -> probe p ad

let cterm_admits ct (ctx : Policy_term.transit_ctx) =
  let f = ctx.Policy_term.flow in
  ct.qos_mask land (1 lsl Qos.index f.Flow.qos) <> 0
  && ct.uci_mask land (1 lsl Uci.index f.Flow.uci) <> 0
  && ct.hour_mask land (1 lsl f.Flow.hour) <> 0
  && ((not ct.auth_required) || f.Flow.authenticated)
  && probe ct.src f.Flow.src
  && probe ct.dst f.Flow.dst
  && opt_probe ct.prev ctx.Policy_term.prev
  && opt_probe ct.next ctx.Policy_term.next

let allows t ctx =
  let k = Array.length t.cterms in
  let i = ref 0 in
  while !i < k && not (cterm_admits (Array.unsafe_get t.cterms !i) ctx) do
    incr i
  done;
  !i < k

let admitting_term t ctx =
  let k = Array.length t.cterms in
  let rec go i =
    if i >= k then None
    else if cterm_admits t.cterms.(i) ctx then Some t.terms.(i)
    else go (i + 1)
  in
  go 0

(* Per-flow specialization: resolve every flow-only condition (src,
   dst, qos, uci, hour, auth) once, keeping just the prev/next preds of
   the surviving terms. The inner-loop check is then two bitset probes
   per term with zero allocation. *)
type spec = { s_prev : pred array; s_next : pred array }

let specialize t (f : Flow.t) =
  let qbit = 1 lsl Qos.index f.Flow.qos
  and ubit = 1 lsl Uci.index f.Flow.uci
  and hbit = 1 lsl f.Flow.hour in
  let live =
    Array.to_list t.cterms
    |> List.filter (fun ct ->
           ct.qos_mask land qbit <> 0
           && ct.uci_mask land ubit <> 0
           && ct.hour_mask land hbit <> 0
           && ((not ct.auth_required) || f.Flow.authenticated)
           && probe ct.src f.Flow.src
           && probe ct.dst f.Flow.dst)
  in
  {
    s_prev = Array.of_list (List.map (fun ct -> ct.prev) live);
    s_next = Array.of_list (List.map (fun ct -> ct.next) live);
  }

let spec_term_count s = Array.length s.s_prev

let spec_allows s ~prev ~next =
  let k = Array.length s.s_prev in
  let i = ref 0 in
  while
    !i < k
    && not
         (opt_probe (Array.unsafe_get s.s_prev !i) prev
         && opt_probe (Array.unsafe_get s.s_next !i) next)
  do
    incr i
  done;
  !i < k

let supports_qos t q = t.qos_union land (1 lsl Qos.index q) <> 0

let dest_allowed t dst q =
  let qbit = 1 lsl Qos.index q in
  let k = Array.length t.cterms in
  let i = ref 0 in
  while
    !i < k
    && not
         (let ct = Array.unsafe_get t.cterms !i in
          ct.qos_mask land qbit <> 0 && probe ct.dst dst)
  do
    incr i
  done;
  !i < k

let admitted_sources_into t acc ~dst ~qos ~uci ~hour ~auth ~prev ~next =
  let qbit = 1 lsl Qos.index qos
  and ubit = 1 lsl Uci.index uci
  and hbit = 1 lsl hour in
  Array.iter
    (fun ct ->
      if
        ct.qos_mask land qbit <> 0
        && ct.uci_mask land ubit <> 0
        && ct.hour_mask land hbit <> 0
        && ((not ct.auth_required) || auth)
        && probe ct.dst dst
        && opt_probe ct.prev prev
        && opt_probe ct.next next
      then
        if ct.src.compl then Bitset.union_compl_into acc ct.src.bits
        else Bitset.union_into acc ct.src.bits)
    t.cterms

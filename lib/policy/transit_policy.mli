(** A transit AD's complete policy: the set of Policy Terms it
    advertises.

    Semantics (paper §5.4.1): a flow may cross the AD between two given
    neighbors iff at least one of the AD's PTs admits the crossing. An
    AD with no PTs never carries transit traffic — that is precisely a
    stub (or multihomed stub) AD. *)

type t = {
  owner : Pr_topology.Ad.id;
  terms : Policy_term.t list;
  bytes : int;  (** cached {!advertisement_bytes}, computed at construction *)
}

val make : Pr_topology.Ad.id -> Policy_term.t list -> t
(** @raise Invalid_argument if some term's owner differs. *)

val no_transit : Pr_topology.Ad.id -> t
(** The stub policy: no PTs, no transit for anyone (paper §2.1). *)

val open_transit : Pr_topology.Ad.id -> t
(** The least restrictive policy: one open PT. *)

val allows : t -> Policy_term.transit_ctx -> bool

val admitting_term : t -> Policy_term.transit_ctx -> Policy_term.t option
(** The first PT that admits the crossing — what a source cites in an
    ORWG route setup packet. *)

val term_count : t -> int

val advertisement_bytes : t -> int
(** Total bytes to advertise every PT of this AD. O(1): the sum is
    computed once when the policy is built, not re-folded per
    advertisement. *)

val pp : Format.formatter -> t -> unit

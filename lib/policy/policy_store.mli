(** Version-keyed store of compiled transit policies.

    One store per {!Config.t}: each AD's term list is compiled
    ({!Compiled.compile}) lazily on first probe and cached until the
    policy mutates. [version] bumps on every mutation so downstream
    route caches (the version-keyed synthesis caches of [lib/lshbh] /
    [lib/orwg], PR 1) can key their entries on
    [(db_version, policy_version)] and drop stale routes without
    diffing terms. *)

type t

val create : Config.t -> t
(** A private store over a snapshot of the configuration's transit
    policies. Use this when the holder mutates policies (ORWG route
    withdrawal installs override policies): mutations stay local to
    this store and never leak into the shared {!of_config} store. *)

val of_config : Config.t -> t
(** The shared store for this configuration (physical-equality memo of
    the most recent configuration). All read-only consumers — route
    validation, forwarding checks, chaos baseline and faulted runs of
    the same scenario — get the same store, so each AD's policy
    compiles exactly once per process per configuration. *)

val n : t -> int

val version : t -> int
(** Bumped on every {!set_transit}. A fresh store is version 0. *)

val transit : t -> Pr_topology.Ad.id -> Transit_policy.t

val compiled : t -> Pr_topology.Ad.id -> Compiled.t
(** The AD's compiled policy at the current version (compiled on first
    call, cached after). *)

val precompile : t -> unit
(** Compile every AD's terms eagerly. The sharded engine's setup path
    calls this so no lazy compilation (or its counter) ever runs on a
    worker domain. *)

val set_transit : t -> Pr_topology.Ad.id -> Transit_policy.t -> unit
(** Replace an AD's transit policy, invalidate its compilation and
    bump the store version. *)

val allows : t -> Pr_topology.Ad.id -> Policy_term.transit_ctx -> bool
(** [allows t ad ctx] = [Compiled.allows (compiled t ad) ctx]. *)

val admitting_term :
  t -> Pr_topology.Ad.id -> Policy_term.transit_ctx -> Policy_term.t option

module Graph = Pr_topology.Graph
module Path = Pr_topology.Path

type verdict =
  | Legal
  | Transit_refused of {
      ad : Pr_topology.Ad.id;
      prev : Pr_topology.Ad.id option;
      next : Pr_topology.Ad.id option;
    }
  | Source_refused
  | Broken of string

(* Check every interior crossing of the path against its AD's PTs,
   through the shared compiled-policy store. *)
let transit_verdict config flow path =
  let store = Policy_store.of_config config in
  let rec scan = function
    | prev :: ad :: next :: rest ->
      let ctx = { Policy_term.flow; prev = Some prev; next = Some next } in
      if Policy_store.allows store ad ctx then scan (ad :: next :: rest)
      else Transit_refused { ad; prev = Some prev; next = Some next }
    | _ -> Legal
  in
  scan path

(* Per-flow specialized engines, one per AD, built lazily: route
   search probes the same few transit ADs thousands of times for one
   flow, so resolve the flow-only conditions once per AD. *)
let spec_table config flow =
  let store = Policy_store.of_config config in
  let specs = Array.make (Policy_store.n store) None in
  fun ad ->
    match specs.(ad) with
    | Some s -> s
    | None ->
      let s = Compiled.specialize (Policy_store.compiled store ad) flow in
      specs.(ad) <- Some s;
      s

let check g config flow path =
  if not (Path.is_valid g path) then Broken "not a simple path in the graph"
  else if Path.source path <> flow.Flow.src then Broken "path does not start at the source"
  else if Path.destination path <> flow.Flow.dst then
    Broken "path does not end at the destination"
  else
    match transit_verdict config flow path with
    | Legal ->
      if Source_policy.permits (Config.source config flow.Flow.src) path then Legal
      else Source_refused
    | v -> v

let transit_legal g config flow path =
  Path.is_valid g path
  && Path.source path = flow.Flow.src
  && Path.destination path = flow.Flow.dst
  && transit_verdict config flow path = Legal

let legal g config flow path = check g config flow path = Legal

let legal_paths g config flow ~max_hops ?(limit = 10_000) () =
  let src = flow.Flow.src and dst = flow.Flow.dst in
  let spec_for = spec_table config flow in
  let results = ref [] in
  let count = ref 0 in
  let on_path = Array.make (Graph.n g) false in
  (* DFS where extending ...prev,u with v requires u (if interior) to
     admit the crossing prev -> u -> v. *)
  let rec go u prev prefix_rev depth =
    if !count < limit then
      if u = dst then begin
        incr count;
        results := List.rev (dst :: prefix_rev) :: !results
      end
      else if depth < max_hops then
        Graph.iter_neighbor_ids g u ~f:(fun v ->
            if not on_path.(v) then begin
              let u_ok =
                u = src || Compiled.spec_allows (spec_for u) ~prev ~next:(Some v)
              in
              if u_ok then begin
                on_path.(v) <- true;
                go v (Some u) (u :: prefix_rev) (depth + 1);
                on_path.(v) <- false
              end
            end)
  in
  if src = dst then [ [ src ] ]
  else begin
    on_path.(src) <- true;
    go src None [] 0;
    List.rev !results
  end

(* Dijkstra over (node, arrived-from) states. Interior admission
   depends on the previous and next hop, so node-states are (v, p):
   at v having arrived from p. The reconstructed state-path can in
   principle revisit an AD; then we fall back to bounded DFS. *)
let shortest_legal_dijkstra g config flow ~avoid =
  let n = Graph.n g in
  let src = flow.Flow.src and dst = flow.Flow.dst in
  if src = dst then Some [ src ]
  else begin
    let module Pqueue = Pr_util.Pqueue in
    let spec_for = spec_table config flow in
    let size = n * n in
    let dist = Array.make size infinity in
    let parent = Array.make size (-1) in
    let settled = Array.make size false in
    let avoid_arr = Array.make n false in
    List.iter (fun a -> if a >= 0 && a < n then avoid_arr.(a) <- true) avoid;
    let q = Pqueue.create () in
    let encode v p = (v * n) + p in
    let start = encode src src in
    dist.(start) <- 0.0;
    Pqueue.add q ~priority:0.0 start;
    let final = ref None in
    let continue_ = ref true in
    while !continue_ do
      match Pqueue.pop q with
      | None -> continue_ := false
      | Some (d, state) ->
        if not settled.(state) then begin
          settled.(state) <- true;
          let v = state / n and p = state mod n in
          if v = dst then begin
            final := Some state;
            continue_ := false
          end
          else begin
            let prev = if v = src then None else Some p in
            Graph.iter_neighbors g v ~f:(fun w lid ->
                if w <> src then begin
                  let interior_ok =
                    v = src || Compiled.spec_allows (spec_for v) ~prev ~next:(Some w)
                  in
                  let avoid_ok = w = dst || not avoid_arr.(w) in
                  if interior_ok && avoid_ok then begin
                    let cost = (Graph.link g lid).Pr_topology.Link.cost in
                    let state' = encode w v in
                    let d' = d +. float_of_int cost in
                    if d' < dist.(state') then begin
                      dist.(state') <- d';
                      parent.(state') <- state;
                      Pqueue.add q ~priority:d' state'
                    end
                  end
                end)
          end
        end
    done;
    match !final with
    | None -> None
    | Some state ->
      let rec build acc state steps =
        if steps > size then None
        else begin
          let v = state / n in
          if parent.(state) < 0 then Some (v :: acc)
          else build (v :: acc) parent.(state) (steps + 1)
        end
      in
      (match build [] state 0 with
      | Some p when Path.is_loop_free p -> Some p
      | _ -> None)
  end

let shortest_legal g config flow ?(apply_source_policy = false) () =
  let policy = Config.source config flow.Flow.src in
  let avoid = if apply_source_policy then policy.Source_policy.avoid else [] in
  match shortest_legal_dijkstra g config flow ~avoid with
  | Some p when (not apply_source_policy) || Source_policy.permits policy p -> Some p
  | _ ->
    (* Fallback: bounded enumeration (rare — only when the cheapest
       state-path self-intersects or violates a non-avoid criterion). *)
    let paths = legal_paths g config flow ~max_hops:12 ~limit:2000 () in
    if apply_source_policy then Source_policy.best policy g paths
    else begin
      let scored =
        List.filter_map (fun p -> Option.map (fun c -> (c, p)) (Path.cost g p)) paths
      in
      match List.sort compare scored with
      | [] -> None
      | (_, p) :: _ -> Some p
    end

let route_exists g config flow ~max_hops =
  match shortest_legal_dijkstra g config flow ~avoid:[] with
  | Some p when Pr_topology.Path.hops p <= max_hops -> true
  | Some _ | None -> legal_paths g config flow ~max_hops ~limit:1 () <> []

let best_legal g config flow ~max_hops =
  match shortest_legal g config flow ~apply_source_policy:true () with
  | Some p when Pr_topology.Path.hops p <= max_hops -> Some p
  | _ ->
    let paths = legal_paths g config flow ~max_hops ~limit:2000 () in
    Source_policy.best (Config.source config flow.Flow.src) g paths

let pp_verdict ppf = function
  | Legal -> Format.pp_print_string ppf "legal"
  | Transit_refused { ad; prev; next } ->
    Format.fprintf ppf "transit refused at AD %d (prev=%s next=%s)" ad
      (match prev with
      | None -> "-"
      | Some p -> string_of_int p)
      (match next with
      | None -> "-"
      | Some n -> string_of_int n)
  | Source_refused -> Format.pp_print_string ppf "source policy refused"
  | Broken msg -> Format.fprintf ppf "broken path: %s" msg

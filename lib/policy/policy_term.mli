(** Policy Terms (paper §4.2, §5.4.1, after Clark's RFC 1102).

    A Policy Term (PT) is the unit in which a transit AD advertises the
    conditions under which traffic may cross it. PTs can constrain the
    source, destination, previous and next AD of the path, the QOS and
    user class of the traffic, the time of day, and whether
    authentication is required. An AD's transit policy is a set of PTs
    ({!Transit_policy}); a flow may cross the AD if at least one PT
    admits it. *)

type ad_pred =
  | Any
  | Only of Pr_topology.Ad.id array
      (** sorted ascending; admits only listed ADs *)
  | Except of Pr_topology.Ad.id array
      (** sorted ascending; admits all but listed ADs *)

val pred_admits : ad_pred -> Pr_topology.Ad.id -> bool
(** Binary search over the sorted id array — O(log n) per probe. The
    array must be sorted; predicates built by {!make} always are. *)

val pred_size : ad_pred -> int
(** Number of AD ids carried, for advertisement byte accounting. *)

val sort_pred : ad_pred -> ad_pred
(** Sorted copy of the predicate (identity for [Any]). Callers that
    build terms by record update instead of {!make} must sort their
    payloads — unsorted arrays break {!pred_admits}. *)

type t = {
  owner : Pr_topology.Ad.id;  (** the advertising transit AD *)
  sources : ad_pred;
  destinations : ad_pred;
  prev_hops : ad_pred;  (** constraint on the AD the packet arrives from *)
  next_hops : ad_pred;  (** constraint on the AD the packet departs to *)
  qos : Qos.t list;  (** admitted service classes (non-empty) *)
  ucis : Uci.t list;  (** admitted user classes (non-empty) *)
  hours : (int * int) option;
      (** admitted half-open hour window [(h1, h2)] with [h1 <> h2];
          wraps past midnight when [h1 > h2]; [None] = always *)
  auth_required : bool;
}

val open_term : Pr_topology.Ad.id -> t
(** The least restrictive PT: everyone may cross, any QOS/UCI, always. *)

val make :
  owner:Pr_topology.Ad.id ->
  ?sources:ad_pred ->
  ?destinations:ad_pred ->
  ?prev_hops:ad_pred ->
  ?next_hops:ad_pred ->
  ?qos:Qos.t list ->
  ?ucis:Uci.t list ->
  ?hours:int * int ->
  ?auth_required:bool ->
  unit ->
  t
(** Unspecified fields default to the open term's. [qos]/[ucis] must be
    non-empty. Predicate id arrays are sorted here so every later
    membership test can binary-search. A degenerate hour window
    [Some (h, h)] would admit nothing at any hour — a PT that can never
    fire — so it is rejected ([Invalid_argument]); callers wanting
    "always" pass [None], callers wanting "never" advertise no PT. *)

type transit_ctx = {
  flow : Flow.t;
  prev : Pr_topology.Ad.id option;  (** [None] when the owner is first after the source *)
  next : Pr_topology.Ad.id option;  (** [None] when the owner delivers to the destination *)
}
(** What a policy gateway sees when a packet crosses its AD. [prev] and
    [next] are the neighboring ADs on the path ([None] only at path
    endpoints, which never need transit permission). *)

val admits : t -> transit_ctx -> bool
(** Does this PT admit the crossing? A [None] prev/next satisfies any
    predicate (there is no hop to constrain). *)

val hour_in_window : (int * int) option -> int -> bool
(** [None] admits every hour; [Some (h1, h2)] admits the half-open
    window [\[h1, h2)], wrapping past midnight when [h1 > h2]. The
    degenerate [Some (h, h)] is the empty window (admits no hour);
    {!make} refuses to build such a term. *)

val advertisement_bytes : t -> int
(** Size of this PT in a link-state advertisement under the byte model
    of {!Pr_proto.Cost_model} (fixed header plus 2 bytes per carried
    AD id). *)

val pp : Format.formatter -> t -> unit

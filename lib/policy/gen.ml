module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Ad = Pr_topology.Ad

type granularity = Coarse | Destination | Source_specific | Fine

type params = {
  restrictiveness : float;
  granularity : granularity;
  source_policy_prob : float;
}

let default =
  { restrictiveness = 0.3; granularity = Source_specific; source_policy_prob = 0.3 }

let granularity_to_string = function
  | Coarse -> "coarse"
  | Destination -> "destination"
  | Source_specific -> "source-specific"
  | Fine -> "fine"

let all_granularities = [ Coarse; Destination; Source_specific; Fine ]

(* Random non-empty sublist keeping roughly [keep] of the elements. *)
let sublist rng keep xs =
  let chosen = List.filter (fun _ -> Rng.chance rng keep) xs in
  match chosen with
  | [] -> [ Rng.choose rng xs ]
  | _ -> chosen

let coarse_terms rng r owner =
  if Rng.chance rng 0.5 then
    (* Drop some QOS classes. *)
    [ Policy_term.make ~owner ~qos:(sublist rng (1.0 -. r) Qos.all) () ]
  else begin
    (* Off-hours only window whose width shrinks with restrictiveness.
       Clamp to 23 hours: a width of 24 would wrap to the degenerate
       (start, start) window, which Policy_term.make rejects. *)
    let width = Stdlib.min 23 (Stdlib.max 4 (24 - int_of_float (r *. 20.0))) in
    let start = Rng.int rng 24 in
    [ Policy_term.make ~owner ~hours:(start, (start + width) mod 24) () ]
  end

let destination_terms rng r owner hosts =
  let keep = Stdlib.max 0.1 (1.0 -. r) in
  let dests = sublist rng keep hosts in
  [ Policy_term.make ~owner ~destinations:(Policy_term.Only (Array.of_list dests)) () ]

let source_specific_terms rng r owner hosts =
  let excluded =
    List.filter (fun ad -> ad <> owner && Rng.chance rng (r *. 0.5)) hosts
  in
  match excluded with
  | [] -> [ Policy_term.open_term owner ]
  | _ ->
    [ Policy_term.make ~owner ~sources:(Policy_term.Except (Array.of_list excluded)) () ]

let fine_terms rng r owner hosts =
  (* One PT per UCI, each admitting a different random slice of
     sources and service classes: the state-multiplying shape. *)
  List.map
    (fun uci ->
      let keep = Stdlib.max 0.15 (1.0 -. r) in
      let sources = sublist rng keep hosts in
      Policy_term.make ~owner
        ~sources:(Policy_term.Only (Array.of_list sources))
        ~qos:(sublist rng (1.0 -. (r *. 0.5)) Qos.all)
        ~ucis:[ uci ] ())
    Uci.all

let transit_terms rng p g (ad : Ad.t) hosts =
  let owner = ad.Ad.id in
  let restricted = Rng.chance rng p.restrictiveness in
  let base =
    if not restricted then [ Policy_term.open_term owner ]
    else
      match p.granularity with
      | Coarse -> coarse_terms rng p.restrictiveness owner
      | Destination -> destination_terms rng p.restrictiveness owner hosts
      | Source_specific -> source_specific_terms rng p.restrictiveness owner hosts
      | Fine -> fine_terms rng p.restrictiveness owner hosts
  in
  (* A provider always carries traffic from and to its own customer
     cone, whatever other restrictions it imposes: without this, a
     restricted metro would cut its own campuses off the internet. *)
  let cone = Pr_topology.Graph.hierarchy_descendants g owner in
  let customer_terms =
    if List.length cone <= 1 then []
    else
      [
        Policy_term.make ~owner ~sources:(Policy_term.Only (Array.of_list cone)) ();
        Policy_term.make ~owner ~destinations:(Policy_term.Only (Array.of_list cone)) ();
      ]
  in
  match ad.Ad.klass with
  | Ad.Hybrid ->
    (* Hybrids only ever offer limited transit: scope every base term
       to a destination subset; their customers stay fully served. *)
    let scope = sublist rng 0.4 hosts in
    (* Sorted by hand: the record update below bypasses Policy_term.make. *)
    let dests = Policy_term.sort_pred (Policy_term.Only (Array.of_list scope)) in
    let scoped =
      List.map
        (fun (t : Policy_term.t) ->
          match t.Policy_term.destinations with
          | Policy_term.Any -> { t with Policy_term.destinations = dests }
          | _ -> t)
        base
    in
    customer_terms @ scoped
  | Ad.Transit -> if restricted then customer_terms @ base else base
  | Ad.Stub | Ad.Multihomed -> []

let generate rng g p =
  let hosts = Graph.host_ids g in
  let transit =
    Array.map
      (fun (ad : Ad.t) ->
        if Ad.is_transit_capable ad then
          Transit_policy.make ad.Ad.id (transit_terms rng p g ad hosts)
        else Transit_policy.no_transit ad.Ad.id)
      (Graph.ads g)
  in
  let transit_ids = Graph.transit_ids g in
  let source =
    Array.map
      (fun (ad : Ad.t) ->
        let hosts_here =
          match ad.Ad.klass with
          | Ad.Stub | Ad.Multihomed | Ad.Hybrid -> true
          | Ad.Transit -> false
        in
        if hosts_here && Rng.chance rng p.source_policy_prob && transit_ids <> [] then begin
          let avoid =
            List.filter
              (fun t -> t <> ad.Ad.id && Rng.chance rng (p.restrictiveness *. 0.4))
              transit_ids
          in
          match avoid with
          | [] -> None
          | _ -> Some (Source_policy.make ~owner:ad.Ad.id ~avoid ())
        end
        else None)
      (Graph.ads g)
  in
  Config.make ~transit ~source ()

module Reg = Pr_telemetry.Registry

(* Store-wide instrumentation: handles resolved once at module init so
   policy flips and lazy compilations on hot paths never hash names. *)
let m_flips = Reg.counter Reg.default "policy.set_transit"
let m_compiles = Reg.counter Reg.default "policy.compilations"
let m_version = Reg.gauge Reg.default "policy.store_version"

type t = {
  n : int;
  transit : Transit_policy.t array;
  compiled : Compiled.t option array;
  mutable version : int;
}

let create config =
  let n = Config.n config in
  {
    n;
    transit = Array.init n (Config.transit config);
    compiled = Array.make n None;
    version = 0;
  }

(* One-slot memo keyed by physical equality on the Config.t: every
   consumer handed the same configuration value (runner, validator,
   chaos baseline + faulted pair, campaign exec) shares one store and
   therefore one compilation of each AD's terms. Policies are
   immutable through this path — mutation goes through a private
   [create] store (see ORWG overrides). *)
let memo : (Config.t * t) option ref = ref None

let of_config config =
  match !memo with
  | Some (c, s) when c == config -> s
  | _ ->
    let s = create config in
    memo := Some (config, s);
    s

let n t = t.n

let version t = t.version

let transit t ad = t.transit.(ad)

let compiled t ad =
  match t.compiled.(ad) with
  | Some c -> c
  | None ->
    Reg.inc m_compiles;
    let c = Compiled.compile ~n:t.n (t.transit.(ad)).Transit_policy.terms in
    t.compiled.(ad) <- Some c;
    c

(* Eagerly compile every AD's terms. The sharded engine's worker
   domains evaluate policies on the receive path; compiling everything
   up front on the main domain keeps the lazy fill (and its
   compilation counter) off the parallel path, so per-shard runs stay
   deterministic and race-free. *)
let precompile t =
  for ad = 0 to t.n - 1 do
    ignore (compiled t ad)
  done

let set_transit t ad policy =
  t.transit.(ad) <- policy;
  t.compiled.(ad) <- None;
  t.version <- t.version + 1;
  Reg.inc m_flips;
  Reg.set m_version (float_of_int t.version)

let allows t ad ctx = Compiled.allows (compiled t ad) ctx

let admitting_term t ad ctx = Compiled.admitting_term (compiled t ad) ctx

(** Deterministic route-server workload generation.

    Models the query stream a route server would see (paper §5.4):

    - {e per-AD skewed demand} — a seed-shuffled hot set of host ADs
      receives most of the endpoint draws, with Zipf-like weights
      inside the hot set, so route- and handle-cache hit rates are
      meaningful rather than uniform-random;
    - {e time-of-day flow mix} — the flow's hour is derived from the
      simulated clock ([hour_scale] simulated time units per hour of
      day), so a run sweeps across hour-windowed Policy Terms and
      exercises diagram hour branches;
    - {e handle reuse} — a fraction of operations are data packets
      presenting a previously issued handle (drawn recency-skewed from
      a bounded ring the daemon maintains) instead of fresh queries.

    Everything is drawn from one {!Pr_util.Rng} stream, so a (seed,
    params) pair reproduces the operation sequence exactly. *)

type params = {
  hot_fraction : float;  (** fraction of host ADs forming the hot set *)
  hot_weight : float;  (** probability an endpoint comes from the hot set *)
  data_fraction : float;  (** fraction of ops that are data packets *)
  hour_scale : float;  (** simulated time units per hour of day *)
  auth_fraction : float;  (** fraction of flows that authenticate *)
}

val default : params
(** 10% hot set taking 80% of draws, 70% data packets, 2.0 time units
    per hour, 30% authenticated. *)

type op =
  | Query of Pr_policy.Flow.t
  | Data of int
      (** Present a previously issued handle: the int is a recency rank
          (0 = newest); the caller maps it into its ring of live
          handles. *)

type t

val create : ?params:params -> rng:Pr_util.Rng.t -> Pr_topology.Graph.t -> t
(** @raise Invalid_argument when the graph has no host ADs. *)

val next : t -> now:float -> op
(** Draw the next operation at simulated time [now]. *)

val hour_of : t -> now:float -> int
(** The hour of day the generator assigns to time [now]. *)

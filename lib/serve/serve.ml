(* Route-server query engine (see serve.mli). *)

module Graph = Pr_topology.Graph
module Link = Pr_topology.Link
module Path = Pr_topology.Path
module Flow = Pr_policy.Flow
module Qos = Pr_policy.Qos
module Uci = Pr_policy.Uci
module Policy_store = Pr_policy.Policy_store
module Lru = Pr_util.Lru
module Pqueue = Pr_util.Pqueue
module Trace = Pr_obs.Trace
module Reg = Pr_telemetry.Registry
module Hist = Pr_telemetry.Hist

type entry = { e_path : Path.t; e_version : int }

type t = {
  graph : Graph.t;
  store : Policy_store.t;
  pdd : Pdd.db;
  link_up : Link.id -> bool;
  node_up : Pr_topology.Ad.id -> bool;
  trace : Trace.t;
  routes : (int, entry) Lru.t;  (* key: (src,dst,qos,uci,hour,auth) packed *)
  handles : (int, Path.t) Lru.t;
  mutable next_handle : int;
  mutable queries : int;
  mutable data_packets : int;
  mutable route_hits : int;
  mutable route_misses : int;
  mutable handle_hits : int;
  mutable handle_misses : int;
  mutable no_routes : int;
  (* Registry handles resolved once at creation; the query path never
     hashes a metric name. These shadow the per-server counters above
     into the process-global registry so campaign shards and the
     daemon can snapshot/merge them. *)
  m_queries : Reg.counter;
  m_route_hits : Reg.counter;
  m_route_misses : Reg.counter;
  m_handle_hits : Reg.counter;
  m_handle_misses : Reg.counter;
  m_no_routes : Reg.counter;
  m_handles_issued : Reg.counter;
  m_handle_evictions : Reg.counter;
  m_rebuild_ns : Hist.t;
  m_pdd_nodes : Reg.gauge;
  m_pdd_preds : Reg.gauge;
}

let create ?(route_capacity = Some 4096) ?(handle_capacity = Some 1024)
    ?(trace = Trace.disabled) ?(link_up = fun _ -> true) ?(node_up = fun _ -> true)
    graph store =
  {
    graph;
    store;
    pdd = Pdd.db_create store;
    link_up;
    node_up;
    trace;
    routes = Lru.create ~capacity:route_capacity ();
    handles = Lru.create ~capacity:handle_capacity ();
    next_handle = 0;
    queries = 0;
    data_packets = 0;
    route_hits = 0;
    route_misses = 0;
    handle_hits = 0;
    handle_misses = 0;
    no_routes = 0;
    m_queries = Reg.counter Reg.default "serve.queries";
    m_route_hits = Reg.counter Reg.default "serve.route_hits";
    m_route_misses = Reg.counter Reg.default "serve.route_misses";
    m_handle_hits = Reg.counter Reg.default "serve.handle_hits";
    m_handle_misses = Reg.counter Reg.default "serve.handle_misses";
    m_no_routes = Reg.counter Reg.default "serve.no_routes";
    m_handles_issued = Reg.counter Reg.default "serve.handles_issued";
    m_handle_evictions = Reg.counter Reg.default "serve.handle_evictions";
    m_rebuild_ns = Reg.histogram Reg.default "pdd.rebuild_ns";
    m_pdd_nodes = Reg.gauge Reg.default "pdd.nodes";
    m_pdd_preds = Reg.gauge Reg.default "pdd.preds";
  }

let pdd t = t.pdd

let refresh t ~now =
  let t0 = Monotonic_clock.now () in
  let k = Pdd.refresh t.pdd in
  if k > 0 then begin
    let dt = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) in
    Hist.record t.m_rebuild_ns dt;
    let store = Pdd.db_store t.pdd in
    Reg.set t.m_pdd_nodes (float_of_int (Pdd.store_nodes store));
    Reg.set t.m_pdd_preds (float_of_int (Pdd.store_preds store));
    Trace.instant t.trace ~ts:now ~tid:0 "serve.rebuild";
    Trace.counter t.trace ~ts:now ~tid:0 ~value:(float_of_int k) "serve.rebuilt_ads"
  end;
  k

let snapshot t = Pdd.snapshot t.pdd

(* The route-cache key packs every flow attribute admission can see.
   n <= 10^5 and 63-bit ints leave ample headroom. *)
let route_key t (f : Flow.t) =
  let n = Graph.n t.graph in
  let k = (f.Flow.src * n) + f.Flow.dst in
  let k = (k * Qos.count) + Qos.index f.Flow.qos in
  let k = (k * Uci.count) + Uci.index f.Flow.uci in
  let k = (k * 24) + f.Flow.hour in
  (k * 2) + if f.Flow.authenticated then 1 else 0

(* Is the cached path still usable: every AD up, every consecutive
   pair joined by an up link? (Policy validity is covered by the
   version check — same database version, same admissions.) *)
let path_live t path =
  let rec go = function
    | [] -> true
    | [ last ] -> t.node_up last
    | a :: (b :: _ as rest) ->
        t.node_up a
        && Graph.fold_neighbors t.graph a ~init:false ~f:(fun acc v l ->
               acc || (v = b && t.link_up l))
        && go rest
  in
  go path

type answer =
  | Route of { path : Path.t; handle : int; version : int; cache_hit : bool }
  | No_route of { version : int }

(* Exact (node, arrived-from) policy search — the Policy_route.shortest
   kernel, re-targeted at the configured graph under dynamic link/node
   state, with admission resolved through the diagram snapshot: one
   [Pdd.flow_entry] per touched AD, then at most a few predicate
   probes per edge relaxation. *)
let synthesize t snap (f : Flow.t) =
  let g = t.graph in
  let n = Graph.n g in
  let src = f.Flow.src and dst = f.Flow.dst in
  if src = dst then Some [ src ]
  else begin
    let entries : Pdd.node option array = Array.make n None in
    let entry ad =
      match entries.(ad) with
      | Some e -> e
      | None ->
          let e = Pdd.flow_entry (Pdd.root snap ad) f in
          entries.(ad) <- Some e;
          e
    in
    (* Adjacency snapshot: per node, the cheapest up parallel link to
       each up neighbor under the flow's QOS metric. *)
    let adj = Array.make n [||] in
    let offset = Array.make (n + 1) 0 in
    for u = 0 to n - 1 do
      (if t.node_up u then begin
         let acc = ref [] in
         let cur_nbr = ref (-1) and cur_m = ref max_int in
         let flush () =
           if !cur_nbr >= 0 && !cur_m < max_int then acc := (!cur_nbr, !cur_m) :: !acc
         in
         Graph.iter_neighbors g u ~f:(fun v l ->
             if v <> !cur_nbr then begin
               flush ();
               cur_nbr := v;
               cur_m := max_int
             end;
             if t.node_up v && t.link_up l then begin
               let link = Graph.link g l in
               let m =
                 Pr_proto.Qos_metric.metric f.Flow.qos ~cost:link.Link.cost
                   ~delay:link.Link.delay
               in
               if m < !cur_m then cur_m := m
             end);
         flush ();
         adj.(u) <- Array.of_list (List.rev !acc)
       end);
      offset.(u + 1) <- offset.(u) + Array.length adj.(u)
    done;
    let start_slot = offset.(n) in
    let slot v p =
      let a = adj.(v) in
      let i = ref 0 in
      while fst (Array.unsafe_get a !i) <> p do
        incr i
      done;
      offset.(v) + !i
    in
    let size = start_slot + 1 in
    let dist = Array.make size infinity in
    let parent = Array.make size (-1) in
    let settled = Array.make size false in
    let q = Pqueue.create () in
    let encode v p = (v * n) + p in
    dist.(start_slot) <- 0.0;
    Pqueue.add q ~priority:0.0 (encode src src);
    let best_final = ref None in
    let continue_ = ref true in
    while !continue_ do
      match Pqueue.pop q with
      | None -> continue_ := false
      | Some (d, state) ->
          let v = state / n and p = state mod n in
          let state_slot = if v = src then start_slot else slot v p in
          if not settled.(state_slot) then begin
            settled.(state_slot) <- true;
            if v = dst then begin
              best_final := Some state_slot;
              continue_ := false
            end
            else begin
              let prev = if v = src then None else Some p in
              let e = if v = src then Pdd.leaf true else entry v in
              Array.iter
                (fun (w, cost) ->
                  let interior_ok =
                    v = src || Pdd.entry_admit e ~prev ~next:(Some w)
                  in
                  if interior_ok && w <> src then begin
                    let slot' = slot w v in
                    let d' = d +. float_of_int cost in
                    if d' < dist.(slot') then begin
                      dist.(slot') <- d';
                      parent.(slot') <- state_slot;
                      Pqueue.add q ~priority:d' (encode w v)
                    end
                  end)
                adj.(v)
            end
          end
    done;
    let node_of s =
      if s = start_slot then src
      else begin
        let lo = ref 0 and hi = ref n in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if offset.(mid) <= s then lo := mid else hi := mid
        done;
        !lo
      end
    in
    match !best_final with
    | None -> None
    | Some state ->
        let rec build acc state steps =
          if steps > size then None
          else begin
            let v = node_of state in
            if parent.(state) < 0 then Some (v :: acc)
            else build (v :: acc) parent.(state) (steps + 1)
          end
        in
        (match build [] state 0 with
        | Some p when Path.is_loop_free p -> Some p
        | _ -> None)
  end

let issue_handle t ~now path =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  Reg.inc t.m_handles_issued;
  (match Lru.put t.handles h path with
  | Some _evicted ->
      Reg.inc t.m_handle_evictions;
      Trace.instant t.trace ~ts:now ~tid:0 "serve.handle.evict"
  | None -> ());
  Trace.counter t.trace ~ts:now ~tid:0
    ~value:(float_of_int (Lru.length t.handles))
    "serve.handles";
  h

let cache_ready t ~snap (f : Flow.t) =
  match Lru.peek t.routes (route_key t f) with
  | Some e -> e.e_version = Pdd.snapshot_version snap && path_live t e.e_path
  | None -> false

let query ?snap t ~now (f : Flow.t) =
  t.queries <- t.queries + 1;
  Reg.inc t.m_queries;
  (* Pin one snapshot for every read this query makes: a concurrent
     set_transit + refresh publishes a new roots array but never
     mutates this one, so the answer is wholly from one version. *)
  let snap = match snap with Some s -> s | None -> Pdd.snapshot t.pdd in
  let version = Pdd.snapshot_version snap in
  let key = route_key t f in
  let cached =
    match Lru.find t.routes key with
    | Some e when e.e_version = version && path_live t e.e_path -> Some e.e_path
    | _ -> None
  in
  match cached with
  | Some path ->
      t.route_hits <- t.route_hits + 1;
      Reg.inc t.m_route_hits;
      Trace.instant t.trace ~ts:now ~tid:0 "serve.query.hit";
      Route { path; handle = issue_handle t ~now path; version; cache_hit = true }
  | None -> (
      t.route_misses <- t.route_misses + 1;
      Reg.inc t.m_route_misses;
      Trace.instant t.trace ~ts:now ~tid:0 "serve.query.miss";
      match synthesize t snap f with
      | Some path ->
          ignore (Lru.put t.routes key { e_path = path; e_version = version });
          Route { path; handle = issue_handle t ~now path; version; cache_hit = false }
      | None ->
          t.no_routes <- t.no_routes + 1;
          Reg.inc t.m_no_routes;
          No_route { version })

let data t ~now ~handle =
  t.data_packets <- t.data_packets + 1;
  match Lru.find t.handles handle with
  | Some path ->
      t.handle_hits <- t.handle_hits + 1;
      Reg.inc t.m_handle_hits;
      Some path
  | None ->
      t.handle_misses <- t.handle_misses + 1;
      Reg.inc t.m_handle_misses;
      Trace.instant t.trace ~ts:now ~tid:0 "serve.handle.stale";
      None

type stats = {
  queries : int;
  data_packets : int;
  route_hits : int;
  route_misses : int;
  route_evictions : int;
  handle_hits : int;
  handle_misses : int;
  handle_evictions : int;
  handles_issued : int;
  handles_live : int;
  no_routes : int;
  rebuilds : int;
  rebuilt_ads : int;
}

let stats (t : t) =
  {
    queries = t.queries;
    data_packets = t.data_packets;
    route_hits = t.route_hits;
    route_misses = t.route_misses;
    route_evictions = Lru.evictions t.routes;
    handle_hits = t.handle_hits;
    handle_misses = t.handle_misses;
    handle_evictions = Lru.evictions t.handles;
    handles_issued = t.next_handle;
    handles_live = Lru.length t.handles;
    no_routes = t.no_routes;
    rebuilds = Pdd.rebuilds t.pdd;
    rebuilt_ads = Pdd.rebuilt_ads t.pdd;
  }

let self_check t =
  let ( let* ) = Result.bind in
  let label l = Result.map_error (fun e -> l ^ ": " ^ e) in
  let* () = label "route cache" (Lru.self_check t.routes) in
  let* () = label "handle table" (Lru.self_check t.handles) in
  let live = Lru.length t.handles and evicted = Lru.evictions t.handles in
  if live + evicted <> t.next_handle then
    Error
      (Printf.sprintf "handle leak: issued %d but live %d + evicted %d" t.next_handle
         live evicted)
  else Ok ()

(* Deterministic workload generator (see workload.mli). *)

module Graph = Pr_topology.Graph
module Flow = Pr_policy.Flow
module Qos = Pr_policy.Qos
module Uci = Pr_policy.Uci
module Rng = Pr_util.Rng

type params = {
  hot_fraction : float;
  hot_weight : float;
  data_fraction : float;
  hour_scale : float;
  auth_fraction : float;
}

let default =
  {
    hot_fraction = 0.1;
    hot_weight = 0.8;
    data_fraction = 0.7;
    hour_scale = 2.0;
    auth_fraction = 0.3;
  }

type op = Query of Flow.t | Data of int

type t = {
  params : params;
  rng : Rng.t;
  hosts : int array;  (* seed-shuffled: index = popularity rank *)
  hot : int;  (* size of the hot prefix *)
  cum : float array;  (* cumulative Zipf weights over the hot prefix *)
}

let create ?(params = default) ~rng graph =
  let hosts = Array.of_list (Graph.host_ids graph) in
  if Array.length hosts = 0 then invalid_arg "Workload.create: no host ADs";
  Rng.shuffle rng hosts;
  let hot =
    max 1
      (min (Array.length hosts)
         (int_of_float (ceil (params.hot_fraction *. float_of_int (Array.length hosts)))))
  in
  let cum = Array.make hot 0.0 in
  let total = ref 0.0 in
  for i = 0 to hot - 1 do
    total := !total +. (1.0 /. float_of_int (i + 1));
    cum.(i) <- !total
  done;
  { params; rng; hosts; hot; cum }

let pick_hot t =
  let x = Rng.float t.rng t.cum.(t.hot - 1) in
  let lo = ref 0 and hi = ref (t.hot - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  t.hosts.(!lo)

let pick_endpoint t =
  if Rng.chance t.rng t.params.hot_weight then pick_hot t
  else t.hosts.(Rng.int t.rng (Array.length t.hosts))

let hour_of t ~now =
  let h = int_of_float (now /. t.params.hour_scale) in
  ((h mod 24) + 24) mod 24

let next t ~now =
  if Rng.chance t.rng t.params.data_fraction then
    (* Recency-skewed rank: newer handles are presented more often,
       like live conversations re-sending data packets. *)
    let r = Rng.float t.rng 1.0 in
    Data (int_of_float (r *. r *. 64.0))
  else begin
    let src = pick_endpoint t in
    let dst = ref (pick_endpoint t) in
    let guard = ref 0 in
    while !dst = src && !guard < 8 do
      dst := pick_endpoint t;
      incr guard
    done;
    let qos = Qos.of_index (Rng.int t.rng Qos.count) in
    let uci = Uci.of_index (Rng.int t.rng Uci.count) in
    let authenticated = Rng.chance t.rng t.params.auth_fraction in
    Query
      (Flow.make ~src ~dst:!dst ~qos ~uci ~hour:(hour_of t ~now) ~authenticated ())
  end

(** The route-server query engine (paper §5.4).

    A [Serve.t] answers per-flow route queries against one immutable
    {!Pdd.snapshot} per query: the decision-diagram database version
    pinned when the query starts. Policy churn
    ([Policy_store.set_transit]) bumps the store version; {!refresh}
    catches the diagrams up incrementally and publishes a {e new}
    roots array, so a query never observes a mix of two versions — it
    answers entirely from the version it pinned (callers that want the
    newest answers simply refresh first, the retry-on-new discipline).

    Two caches front the synthesis work, both LRU-bounded
    ({!Pr_util.Lru}):

    - the {e route cache}, keyed by (src, dst, QOS, UCI, hour, auth),
      whose entries remember the database version that produced them
      and are revalidated against the current link/node state on hit;
    - the {e handle table}, the ORWG-style setup state: a successful
      query installs the route under a fresh handle, and data packets
      present handles instead of repeating the query. A handle miss
      (evicted under LRU pressure) means the client must re-set-up.

    Cache hits, misses and evictions are exposed in {!stats} and as
    [lib/obs] trace instants/counters. *)

type t

val create :
  ?route_capacity:int option ->
  ?handle_capacity:int option ->
  ?trace:Pr_obs.Trace.t ->
  ?link_up:(Pr_topology.Link.id -> bool) ->
  ?node_up:(Pr_topology.Ad.id -> bool) ->
  Pr_topology.Graph.t ->
  Pr_policy.Policy_store.t ->
  t
(** Defaults: route capacity [Some 4096], handle capacity [Some 1024],
    disabled trace, and an always-up topology. [link_up]/[node_up]
    plug in the simulated network's dynamic state. Building the server
    compiles the whole policy database into decision diagrams. *)

val pdd : t -> Pdd.db

val refresh : t -> now:float -> int
(** Catch the diagrams up with the policy store; returns the number of
    AD diagrams recompiled (0 when nothing changed). Queries issued
    after a refresh answer from the new version; queries that pinned
    the old snapshot keep answering from it. *)

val snapshot : t -> Pdd.snapshot
(** The current database version (refresh first for the newest). *)

type answer =
  | Route of { path : Pr_topology.Path.t; handle : int; version : int; cache_hit : bool }
  | No_route of { version : int }

val cache_ready : t -> snap:Pdd.snapshot -> Pr_policy.Flow.t -> bool
(** Would {!query} at [snap] answer from the route cache right now — a
    cached entry at the snapshot's version whose path is still up?
    Reads without touching recency or any counter: the serve-stale
    shedding predicate (queries that would need a fresh synthesis on a
    stale database are shed; cached answers stay cheap to serve). *)

val query : ?snap:Pdd.snapshot -> t -> now:float -> Pr_policy.Flow.t -> answer
(** Answer one route query: from the route cache when the entry was
    computed at the same database version and its path is still up,
    otherwise by exact (node, arrived-from) policy search over the
    diagram snapshot. Every read — cache validity, admission, search —
    uses the single pinned snapshot ([snap] if given, else the current
    one). A successful query installs the route in the handle table
    and returns the fresh handle. *)

val data : t -> now:float -> handle:int -> Pr_topology.Path.t option
(** Present a handle for a data packet: [Some path] on a live handle
    (touching its recency), [None] when the handle was evicted or
    never existed — the client must re-query. *)

type stats = {
  queries : int;
  data_packets : int;
  route_hits : int;
  route_misses : int;
  route_evictions : int;
  handle_hits : int;
  handle_misses : int;
  handle_evictions : int;
  handles_issued : int;
  handles_live : int;
  no_routes : int;
  rebuilds : int;  (** diagram rebuild passes, initial build included *)
  rebuilt_ads : int;  (** per-AD diagram recompilations *)
}

val stats : t -> stats

val self_check : t -> (unit, string) result
(** Handle-leak and cache-integrity audit: both LRU structures pass
    {!Pr_util.Lru.self_check} and every issued handle is accounted for
    (live + evicted = issued). *)

(** The `prx serve` request loop: a route server under load and churn.

    Runs one deterministic simulated serving session: a
    {!Workload}-generated operation stream (query batches on a fixed
    cadence) against a {!Serve.t}, concurrent with

    - {e fault-plan churn} from [lib/faults] (link flaps, crashes,
      partitions take topology state up and down under the queries),
    - {e policy churn}: periodic [Policy_store.set_transit] flips on
      random transit ADs, bumping the store version and exercising the
      incremental diagram rebuild path.

    An update guard ({!Pr_guard.Guard}) watches the link-event stream:
    when its flap damping quarantines a chattering adjacency (e.g. the
    ["chatter"] Byzantine profile), the serving loop degrades
    gracefully into {e serve-stale} mode — it pins the last healthy
    diagram snapshot instead of refreshing into the churning database,
    publishes the pin's age as the [serve.stale_snapshot_age] gauge,
    and past a deadline of 4 x [interval] sheds the queries that would
    need a fresh synthesis ([serve.sheds]) while still answering
    cached ones. Readmission ends the mode and the next batch
    refreshes to the live version.

    The operation stream, fault schedule and flip schedule draw from
    independent [Rng.derive] streams of the run seed, so a (seed,
    config) pair replays the same session; only the measured wall-clock
    figures vary between hosts.

    Health checks run inside the session: every [check_every]-th
    answered query, each interior crossing of the returned path is
    re-admitted three ways (diagram walk vs {!Pr_policy.Compiled}
    bitsets vs the interpreted {!Pr_policy.Transit_policy.allows}
    oracle) and disagreements are counted; at the end the handle table
    is audited for leaks ({!Serve.self_check}) and the hash-cons store
    for duplicate nodes ({!Pdd.check}). {!healthy} folds these into
    one exit-code-ready boolean. *)

type config = {
  seed : int;
  target_ads : int;
  duration : float;  (** simulated time to run for *)
  batch : int;  (** operations per batch event *)
  interval : float;  (** simulated time between batches *)
  plan : Pr_faults.Plan.t;
  plan_name : string;  (** for the report only *)
  flip_every : float;  (** simulated time between policy flips; 0 = none *)
  route_capacity : int;
  handle_capacity : int;
  check_every : int;  (** cross-check every Nth answered query; 0 = never *)
  policy : Pr_policy.Gen.params;
  record_exact : bool;
      (** keep every raw query latency in [exact_latencies] (test /
          calibration sessions only; the serving loop itself accounts
          latency in a log2-bucket histogram) *)
}

val default_config : config
(** Seed 11, 56 ADs, the default fault plan, duration 40 at interval
    0.5 with 64-op batches, a policy flip every 4.0, restrictive
    fine-grained policies (the PADMIT/SYNTH benchmark setting), checks
    every 16th query. *)

type report = {
  config : config;
  ads : int;
  links : int;
  queries : int;
  data_packets : int;
  answered : int;
  no_routes : int;
  qps : float;  (** answered queries per wall-clock second of query work *)
  p50_ns : float;
  p99_ns : float;
  admit_ns : float;  (** one full diagram admit walk, min-of-batches *)
  spec_admit_ns : float;  (** Compiled.spec_allows on the same probes *)
  admit_probes : int;
  admit_alloc_w : float;
      (** words allocated per diagram admit ({!Pr_telemetry.Alloc});
          expected 0 *)
  handle_hit_rate : float;
  stats : Serve.stats;
  rebuild_p50_ns : float;  (** incremental refresh latency (0 if none) *)
  rebuild_max_ns : float;
  build_ns : float;  (** initial whole-database compile, wall ns *)
  diagram_nodes : int;
  diagram_preds : int;
  store_version : int;
  flips : int;
  faults : int;  (** nemesis incidents fired *)
  agreement_checks : int;
  agreement_failures : int;
  stale_batches : int;
      (** batches served in serve-stale mode — an update-guard
          quarantine was active, so the loop answered from the pinned
          last-healthy snapshot instead of refreshing *)
  queries_shed : int;
      (** queries shed past the degradation deadline (4 x interval of
          staleness): answering them would have taken a fresh synthesis
          on the stale database, so only cached answers were served *)
  max_stale_age : float;
      (** worst simulated-time age of the pinned snapshot ([0.0] when
          the session never went stale); also published as the
          [serve.stale_snapshot_age] registry gauge *)
  link_quarantines : int;
      (** adjacencies the guard's flap damping quarantined *)
  link_readmissions : int;  (** of which readmitted after backoff *)
  self_check_error : string option;  (** handle-leak / hash-cons audit *)
  latency : Pr_telemetry.Hist.t;  (** every query latency, log2 buckets *)
  rebuild : Pr_telemetry.Hist.t;  (** per-batch refresh latency when changed *)
  exact_latencies : float list;  (** raw latencies; [] unless [record_exact] *)
}

val run : config -> report

val healthy : report -> bool
(** No admission disagreements, no leak/audit error, and at least one
    answered query. *)

val row_json : report -> Pr_util.Json.t
(** One BENCH_serve.json results row. *)

val doc_json : reports:report list -> Pr_util.Json.t
(** The full BENCH_serve.json document ("route_server_serving"). *)

val pp_report : Format.formatter -> report -> unit

val config_of_row :
  seed:int -> plan:Pr_faults.Plan.t -> plan_name:string -> Pr_util.Json.t -> config
(** Rebuild the session config a BENCH_serve.json results row was
    generated with, falling back to the `prx serve` CLI defaults for
    fields older baselines did not record. A row-level ["plan"] field
    overrides [plan]/[plan_name], so one document can gate benign and
    attack rows together. The `prx bench diff` regression gate re-runs
    rows through this. *)

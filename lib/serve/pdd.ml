(* Policy decision diagrams (see pdd.mli).

   Variable order: per-AD roots array (the AD variable), then
     level 0  QOS class        — Branch, Qos.count children
     level 1  UCI              — Branch, Uci.count children
     level 2  authentication   — Branch, 2 children (0 = unauth)
     level 3  hour of day      — Branch, 24 children
     level 4  source AD        — Test chain (bitset probes)
     level 5  destination AD   — Test chain
     level 6  previous-hop AD  — Test chain
     level 7  next-hop AD      — Test chain

   A term list is an OR of conjunctions. The builder carries the set
   of terms still satisfiable along the current path ("live"); at a
   branch level it partitions live terms by attribute value, at a test
   level it emits a chain of binary predicate tests (one per distinct
   interned predicate among the live terms), accumulating which terms
   survived. Empty live set => false leaf; any live term with only
   trivial conditions left => true leaf (short-circuit). Nodes and
   predicates are hash-consed globally, so equal sub-diagrams are
   pointer-equal across every AD in the database. *)

module Compiled = Pr_policy.Compiled
module Policy_store = Pr_policy.Policy_store
module Flow = Pr_policy.Flow
module Qos = Pr_policy.Qos
module Uci = Pr_policy.Uci
module Bitset = Pr_util.Bitset

type node =
  | Leaf of bool
  | Branch of { id : int; sel : int; children : node array }
  | Test of { id : int; sel : int; pred : Compiled.pred; yes : node; no : node }

let leaf_false = Leaf false
let leaf_true = Leaf true
let leaf b = if b then leaf_true else leaf_false

let node_id = function
  | Leaf false -> 0
  | Leaf true -> 1
  | Branch { id; _ } | Test { id; _ } -> id

(* Interned predicate: canonical Compiled.pred plus its id and
   triviality class (empty Except = always true, empty Only = always
   false — both show up in generated and random policies). *)
type triv = T_true | T_false | T_test

type ipred = { pid : int; p : Compiled.pred; triv : triv }

type key = KBranch of int * int array | KTest of int * int * int * int

type store = {
  preds : (bool * int list, ipred) Hashtbl.t;
  nodes : (key, node) Hashtbl.t;
  mutable next_pid : int;
  mutable next_id : int;
}

let store_create () =
  { preds = Hashtbl.create 256; nodes = Hashtbl.create 1024; next_pid = 0; next_id = 2 }

let store_nodes s = Hashtbl.length s.nodes
let store_preds s = Hashtbl.length s.preds

let intern_pred s (p : Compiled.pred) =
  let els = Bitset.elements p.Compiled.bits in
  let k = (p.Compiled.compl, els) in
  match Hashtbl.find_opt s.preds k with
  | Some ip -> ip
  | None ->
      let triv =
        if els <> [] then T_test else if p.Compiled.compl then T_true else T_false
      in
      let ip = { pid = s.next_pid; p; triv } in
      s.next_pid <- s.next_pid + 1;
      Hashtbl.add s.preds k ip;
      ip

let mk_branch s sel children =
  let first = children.(0) in
  if Array.for_all (fun c -> c == first) children then first
  else
    let k = KBranch (sel, Array.map node_id children) in
    match Hashtbl.find_opt s.nodes k with
    | Some n -> n
    | None ->
        let n = Branch { id = s.next_id; sel; children } in
        s.next_id <- s.next_id + 1;
        Hashtbl.add s.nodes k n;
        n

let mk_test s sel ip yes no =
  if yes == no then yes
  else
    let k = KTest (sel, ip.pid, node_id yes, node_id no) in
    match Hashtbl.find_opt s.nodes k with
    | Some n -> n
    | None ->
        let n = Test { id = s.next_id; sel; pred = ip.p; yes; no } in
        s.next_id <- s.next_id + 1;
        Hashtbl.add s.nodes k n;
        n

let full_day = (1 lsl 24) - 1
let full_qos = (1 lsl Qos.count) - 1
let full_uci = (1 lsl Uci.count) - 1

(* Per-term compile-time info: masks, interned predicates, and
   free.(l) = "every condition at levels >= l is trivially true" (the
   short-circuit test). *)
type tinfo = {
  qm : int;
  um : int;
  hm : int;
  auth : bool;
  t_src : ipred;
  t_dst : ipred;
  t_prev : ipred;
  t_next : ipred;
  free : bool array; (* length 9 *)
}

let pred_at info l i =
  match l with
  | 4 -> info.(i).t_src
  | 5 -> info.(i).t_dst
  | 6 -> info.(i).t_prev
  | _ -> info.(i).t_next

let compile s (c : Compiled.t) =
  let views = Compiled.term_views c in
  let info =
    Array.map
      (fun (v : Compiled.term_view) ->
        let t_src = intern_pred s v.Compiled.v_src
        and t_dst = intern_pred s v.Compiled.v_dst
        and t_prev = intern_pred s v.Compiled.v_prev
        and t_next = intern_pred s v.Compiled.v_next in
        let free = Array.make 9 false in
        let trivial_at = function
          | 0 -> v.Compiled.v_qos_mask land full_qos = full_qos
          | 1 -> v.Compiled.v_uci_mask land full_uci = full_uci
          | 2 -> not v.Compiled.v_auth_required
          | 3 -> v.Compiled.v_hour_mask land full_day = full_day
          | 4 -> t_src.triv = T_true
          | 5 -> t_dst.triv = T_true
          | 6 -> t_prev.triv = T_true
          | _ -> t_next.triv = T_true
        in
        free.(8) <- true;
        for l = 7 downto 0 do
          free.(l) <- free.(l + 1) && trivial_at l
        done;
        {
          qm = v.Compiled.v_qos_mask;
          um = v.Compiled.v_uci_mask;
          hm = v.Compiled.v_hour_mask;
          auth = v.Compiled.v_auth_required;
          t_src;
          t_dst;
          t_prev;
          t_next;
          free;
        })
      views
  in
  (* Terms that can never admit anything vanish up front. Src and dst
     are always concrete, so an always-false predicate there kills the
     term; prev/next must NOT be pruned the same way — [None] (the flow
     enters or leaves the internet at this AD) passes any predicate,
     so even an all-false prev predicate admits border crossings. *)
  let dead i =
    info.(i).qm = 0 || info.(i).um = 0 || info.(i).hm = 0
    || info.(i).t_src.triv = T_false
    || info.(i).t_dst.triv = T_false
  in
  let all_live =
    List.filter
      (fun i -> not (dead i))
      (List.init (Array.length info) (fun i -> i))
  in
  let memo : (int * int list, node) Hashtbl.t = Hashtbl.create 64 in
  let rec build l live =
    if live = [] then leaf_false
    else if List.exists (fun i -> info.(i).free.(l)) live then leaf_true
    else
      match Hashtbl.find_opt memo (l, live) with
      | Some n -> n
      | None ->
          let n =
            if l >= 8 then leaf_true
            else if l <= 3 then branch_level l live
            else test_level l live
          in
          Hashtbl.add memo (l, live) n;
          n
  and branch_level l live =
    let arity = match l with 0 -> Qos.count | 1 -> Uci.count | 2 -> 2 | _ -> 24 in
    let passes v i =
      match l with
      | 0 -> info.(i).qm land (1 lsl v) <> 0
      | 1 -> info.(i).um land (1 lsl v) <> 0
      | 2 -> v = 1 || not info.(i).auth
      | _ -> info.(i).hm land (1 lsl v) <> 0
    in
    let children =
      Array.init arity (fun v -> build (l + 1) (List.filter (passes v) live))
    in
    mk_branch s l children
  and test_level l live =
    let pass_through, tested =
      List.partition (fun i -> (pred_at info l i).triv = T_true) live
    in
    (* Group tested terms by interned predicate, ordered by pred id so
       the chain shape is deterministic. *)
    let groups = Hashtbl.create 8 in
    List.iter
      (fun i ->
        let ip = pred_at info l i in
        let members = try Hashtbl.find groups ip.pid with Not_found -> (ip, []) in
        Hashtbl.replace groups ip.pid (fst members, i :: snd members))
      tested;
    let gs =
      Hashtbl.fold (fun pid g acc -> (pid, g) :: acc) groups []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map snd
    in
    let rec chain gs surviving =
      match gs with
      | [] -> build (l + 1) (List.sort_uniq compare (surviving @ pass_through))
      | (ip, members) :: rest ->
          let yes =
            if List.exists (fun i -> info.(i).free.(l + 1)) members then leaf_true
            else chain rest (members @ surviving)
          in
          let no = chain rest surviving in
          mk_test s l ip yes no
    in
    chain gs []
  in
  build 0 all_live

(* --- walks ------------------------------------------------------- *)

let rec admit_node n (f : Flow.t) ~prev ~next =
  match n with
  | Leaf b -> b
  | Branch { sel; children; _ } ->
      let v =
        match sel with
        | 0 -> Qos.index f.Flow.qos
        | 1 -> Uci.index f.Flow.uci
        | 2 -> if f.Flow.authenticated then 1 else 0
        | _ -> f.Flow.hour
      in
      admit_node (Array.unsafe_get children v) f ~prev ~next
  | Test { sel; pred; yes; no; _ } ->
      let pass =
        match sel with
        | 4 -> Compiled.probe pred f.Flow.src
        | 5 -> Compiled.probe pred f.Flow.dst
        | 6 -> ( match prev with None -> true | Some ad -> Compiled.probe pred ad)
        | _ -> ( match next with None -> true | Some ad -> Compiled.probe pred ad)
      in
      admit_node (if pass then yes else no) f ~prev ~next

let rec flow_entry n (f : Flow.t) =
  match n with
  | Leaf _ -> n
  | Branch { sel; children; _ } ->
      let v =
        match sel with
        | 0 -> Qos.index f.Flow.qos
        | 1 -> Uci.index f.Flow.uci
        | 2 -> if f.Flow.authenticated then 1 else 0
        | _ -> f.Flow.hour
      in
      flow_entry (Array.unsafe_get children v) f
  | Test { sel; pred; yes; no; _ } when sel <= 5 ->
      let ad = if sel = 4 then f.Flow.src else f.Flow.dst in
      flow_entry (if Compiled.probe pred ad then yes else no) f
  | Test _ -> n

let rec entry_admit n ~prev ~next =
  match n with
  | Leaf b -> b
  | Branch _ -> invalid_arg "Pdd.entry_admit: unresolved flow variable"
  | Test { sel; pred; yes; no; _ } ->
      let pass =
        match sel with
        | 6 -> ( match prev with None -> true | Some ad -> Compiled.probe pred ad)
        | 7 -> ( match next with None -> true | Some ad -> Compiled.probe pred ad)
        | _ -> invalid_arg "Pdd.entry_admit: unresolved flow variable"
      in
      entry_admit (if pass then yes else no) ~prev ~next

let rec depth = function
  | Leaf _ -> 0
  | Branch { children; _ } -> 1 + Array.fold_left (fun d c -> max d (depth c)) 0 children
  | Test { yes; no; _ } -> 1 + max (depth yes) (depth no)

(* --- whole-database diagrams ------------------------------------- *)

type snapshot = { s_version : int; s_roots : node array }

type db = {
  hc : store;
  pstore : Policy_store.t;
  n : int;
  seen : Pr_policy.Transit_policy.t array;
  mutable snap : snapshot;
  mutable rebuilds : int;
  mutable rebuilt_ads : int;
}

let db_create ?store pstore =
  let hc = match store with Some s -> s | None -> store_create () in
  let n = Policy_store.n pstore in
  let seen = Array.init n (Policy_store.transit pstore) in
  let roots = Array.init n (fun ad -> compile hc (Policy_store.compiled pstore ad)) in
  {
    hc;
    pstore;
    n;
    seen;
    snap = { s_version = Policy_store.version pstore; s_roots = roots };
    rebuilds = 1;
    rebuilt_ads = n;
  }

let db_store db = db.hc

let refresh db =
  let v = Policy_store.version db.pstore in
  if v = db.snap.s_version then 0
  else begin
    let changed = ref [] in
    for ad = db.n - 1 downto 0 do
      if not (Policy_store.transit db.pstore ad == db.seen.(ad)) then
        changed := ad :: !changed
    done;
    match !changed with
    | [] ->
        (* Version moved but every policy object is the one we compiled
           (e.g. set_transit re-installing the same value): nothing to
           rebuild, just track the version. *)
        db.snap <- { db.snap with s_version = v };
        0
    | ads ->
        (* Copy-on-write: outstanding snapshots keep the old array. *)
        let roots = Array.copy db.snap.s_roots in
        List.iter
          (fun ad ->
            db.seen.(ad) <- Policy_store.transit db.pstore ad;
            roots.(ad) <- compile db.hc (Policy_store.compiled db.pstore ad))
          ads;
        db.snap <- { s_version = v; s_roots = roots };
        db.rebuilds <- db.rebuilds + 1;
        let k = List.length ads in
        db.rebuilt_ads <- db.rebuilt_ads + k;
        k
  end

let rebuilds db = db.rebuilds
let rebuilt_ads db = db.rebuilt_ads

let snapshot db = db.snap
let snapshot_version s = s.s_version
let root s ad = s.s_roots.(ad)

let admit s ~ad f ~prev ~next = admit_node s.s_roots.(ad) f ~prev ~next

(* Hash-cons audit: walk everything reachable from the current roots
   and verify structural identity implies physical identity, for both
   nodes and predicates. *)
let check db =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let seen_ids = Hashtbl.create 1024 in
  let by_key = Hashtbl.create 1024 in
  let preds_by_key = Hashtbl.create 256 in
  let result = ref (Ok ()) in
  let fail_once e = if !result = Ok () then result := e in
  let check_pred (p : Compiled.pred) =
    let k = (p.Compiled.compl, Bitset.elements p.Compiled.bits) in
    match Hashtbl.find_opt preds_by_key k with
    | Some p' when not (p' == p) ->
        fail_once (err "two physically distinct equal predicates reachable")
    | Some _ -> ()
    | None -> Hashtbl.add preds_by_key k p
  in
  let rec visit n =
    match n with
    | Leaf _ -> ()
    | _ when Hashtbl.mem seen_ids (node_id n) -> ()
    | Branch { id; sel; children } ->
        Hashtbl.add seen_ids id ();
        let k = KBranch (sel, Array.map node_id children) in
        record k n;
        Array.iter visit children
    | Test { id; sel; pred; yes; no } ->
        Hashtbl.add seen_ids id ();
        check_pred pred;
        let k = KTest (sel, (intern_pred db.hc pred).pid, node_id yes, node_id no) in
        record k n;
        visit yes;
        visit no
  and record k n =
    (match Hashtbl.find_opt by_key k with
    | Some n' when not (n' == n) ->
        fail_once (err "two structurally equal live nodes (id %d / %d)" (node_id n') (node_id n))
    | Some _ -> ()
    | None -> Hashtbl.add by_key k n);
    match Hashtbl.find_opt db.hc.nodes k with
    | Some n' when n' == n -> ()
    | Some _ -> fail_once (err "reachable node %d shadowed in the store" (node_id n))
    | None -> fail_once (err "reachable node %d not interned" (node_id n))
  in
  Array.iter visit db.snap.s_roots;
  !result

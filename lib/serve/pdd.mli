(** Policy decision diagrams: whole-database compilation of transit
    policies into one hash-consed DAG.

    {!Pr_policy.Compiled} turns a term list into flat bitset checks —
    still a scan over terms per probe. This module compiles each AD's
    terms the rest of the way into a decision diagram in the FDD/BDD
    style: a DAG whose internal nodes either {e branch} on a small
    flow attribute (QOS class, UCI, authentication, hour of day — one
    array index each) or {e test} an AD predicate (source,
    destination, previous hop, next hop — one bitset probe each), with
    [true]/[false] leaves. Admission is a single root-to-leaf walk
    with zero allocation; terms that can no longer matter never get
    probed, and a term that is already fully satisfied short-circuits
    to the [true] leaf.

    Variable order is fixed: the AD itself (an array of per-AD roots),
    then QOS, UCI, auth, hour, then src, dst, prev, next predicates.

    All nodes — across every AD in the database — are deduplicated
    through one hash-cons store, so structurally equal sub-diagrams
    are physically shared and structural equality is pointer equality.
    [check] audits that invariant.

    {!db} tracks a {!Pr_policy.Policy_store}: [refresh] recompiles
    only the ADs whose policy object changed since the last refresh
    (detected by physical equality, the store's own sharing
    discipline) and installs the new roots in a fresh array, so an
    outstanding {!snapshot} keeps answering from the exact database
    version it captured even while [set_transit] churn continues. *)

type node
(** A diagram node. Physically shared; never mutated. *)

type store
(** The hash-cons store: interned predicates and nodes. *)

val store_create : unit -> store

val store_nodes : store -> int
(** Interned internal nodes (leaves excluded). *)

val store_preds : store -> int
(** Interned distinct AD predicates. *)

val compile : store -> Pr_policy.Compiled.t -> node
(** Compile one AD's terms to its diagram root. Every compilation
    sharing a [store] must come from the same AD universe size. *)

val leaf : bool -> node

val node_id : node -> int
(** Unique, stable id; equal ids iff physically equal nodes. *)

val admit_node :
  node ->
  Pr_policy.Flow.t ->
  prev:Pr_topology.Ad.id option ->
  next:Pr_topology.Ad.id option ->
  bool
(** One root-to-leaf walk; allocation-free. [None] prev/next means the
    flow enters/leaves the internet at this AD, which every predicate
    admits (matching [Policy_term] semantics). *)

val flow_entry : node -> Pr_policy.Flow.t -> node
(** Partial evaluation against the flow-only variables (QOS, UCI,
    auth, hour, src, dst): walks branches until the first prev/next
    test (or leaf) and returns that node. The result depends only on
    prev/next, so route synthesis resolves it once per (flow, AD) and
    then pays at most a few probes per path crossing. No nodes are
    built — the result is a shared sub-diagram. *)

val entry_admit :
  node -> prev:Pr_topology.Ad.id option -> next:Pr_topology.Ad.id option -> bool
(** Finish a {!flow_entry} walk for a concrete crossing. *)

val depth : node -> int
(** Longest root-to-leaf path — walk length upper bound. *)

(** {1 Whole-database diagrams over a policy store} *)

type db

val db_create : ?store:store -> Pr_policy.Policy_store.t -> db
(** Compile every AD of the store's current version. *)

val db_store : db -> store

val refresh : db -> int
(** Catch up with the policy store: recompile the diagrams of exactly
    the ADs whose [Transit_policy.t] object changed since the last
    refresh, publish a fresh roots array, and return the number of ADs
    recompiled (0 when the store version is unchanged). *)

val rebuilds : db -> int
(** Refresh passes that recompiled at least one AD (the initial full
    build counts). *)

val rebuilt_ads : db -> int
(** Total AD recompilations across all rebuilds (initial build counts
    [n]). *)

type snapshot = private { s_version : int; s_roots : node array }
(** An immutable view of one database version: the roots array
    published by the matching [refresh]. Reads against a snapshot are
    unaffected by later [set_transit]/[refresh] churn. *)

val snapshot : db -> snapshot
(** The current version's snapshot ({e without} refreshing — call
    {!refresh} first to catch up). *)

val snapshot_version : snapshot -> int

val root : snapshot -> Pr_topology.Ad.id -> node

val admit :
  snapshot ->
  ad:Pr_topology.Ad.id ->
  Pr_policy.Flow.t ->
  prev:Pr_topology.Ad.id option ->
  next:Pr_topology.Ad.id option ->
  bool
(** Does [ad]'s policy (at this snapshot's version) admit the crossing?
    Equivalent to [Compiled.allows] / interpreted [Transit_policy.allows]
    on the same terms — the qcheck suite pins this. *)

val check : db -> (unit, string) result
(** Hash-cons invariant audit: no two structurally equal but
    physically distinct nodes are reachable from the current roots,
    and every reachable node is interned in the store. *)

(* Route-server daemon (see daemon.mli). *)

module Graph = Pr_topology.Graph
module Flow = Pr_policy.Flow
module Policy_term = Pr_policy.Policy_term
module Transit_policy = Pr_policy.Transit_policy
module Compiled = Pr_policy.Compiled
module Policy_store = Pr_policy.Policy_store
module Gen = Pr_policy.Gen
module Rng = Pr_util.Rng
module Stats = Pr_util.Stats
module Json = Pr_util.Json
module Engine = Pr_sim.Engine
module Network = Pr_sim.Network
module Metrics = Pr_sim.Metrics
module Plan = Pr_faults.Plan
module Nemesis = Pr_faults.Nemesis
module Guard = Pr_guard.Guard
module Scenario = Pr_core.Scenario
module Hist = Pr_telemetry.Hist
module Reg = Pr_telemetry.Registry
module Flight = Pr_telemetry.Flight
module Alloc = Pr_telemetry.Alloc

type config = {
  seed : int;
  target_ads : int;
  duration : float;
  batch : int;
  interval : float;
  plan : Plan.t;
  plan_name : string;
  flip_every : float;
  route_capacity : int;
  handle_capacity : int;
  check_every : int;
  policy : Gen.params;
  record_exact : bool;
}

(* The restrictive fine-grained policy setting the PADMIT/SYNTH
   benchmarks use: admission work dominates, which is the regime a
   route server exists for. *)
let restrictive = { Gen.default with Gen.restrictiveness = 0.8; granularity = Gen.Fine }

let default_config =
  {
    seed = 11;
    target_ads = 56;
    duration = 40.0;
    batch = 64;
    interval = 0.5;
    plan = Plan.default;
    plan_name = "default";
    flip_every = 4.0;
    route_capacity = 4096;
    handle_capacity = 1024;
    check_every = 16;
    policy = restrictive;
    record_exact = false;
  }

type report = {
  config : config;
  ads : int;
  links : int;
  queries : int;
  data_packets : int;
  answered : int;
  no_routes : int;
  qps : float;
  p50_ns : float;
  p99_ns : float;
  admit_ns : float;
  spec_admit_ns : float;
  admit_probes : int;
  admit_alloc_w : float;
  handle_hit_rate : float;
  stats : Serve.stats;
  rebuild_p50_ns : float;
  rebuild_max_ns : float;
  build_ns : float;
  diagram_nodes : int;
  diagram_preds : int;
  store_version : int;
  flips : int;
  faults : int;
  agreement_checks : int;
  agreement_failures : int;
  stale_batches : int;
  queries_shed : int;
  max_stale_age : float;
  link_quarantines : int;
  link_readmissions : int;
  self_check_error : string option;
  latency : Hist.t;
  rebuild : Hist.t;
  exact_latencies : float list;
}

let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* Min-of-batches wall-clock timing (the bench/main.ml estimator, on
   the monotonic clock): preemption and GC only ever inflate a batch,
   so the minimum is the noise-robust per-op figure. *)
let time_ns_per ~ops f =
  f ();
  Gc.full_major ();
  let best = ref infinity in
  for _batch = 1 to 5 do
    let reps = ref 0 in
    let t0 = now_ns () in
    let elapsed = ref 0.0 in
    while !reps < 2 || (!elapsed < 2e7 && !reps < 100) do
      f ();
      incr reps;
      elapsed := now_ns () -. t0
    done;
    let per = !elapsed /. (float_of_int !reps *. float_of_int ops) in
    if per < !best then best := per
  done;
  !best

(* One admission probe: an interior crossing some answered route made. *)
type probe = { p_ad : int; p_flow : Flow.t; p_prev : int option; p_next : int option }

let run cfg =
  let scenario =
    Scenario.for_size ~policy:cfg.policy ~target_ads:cfg.target_ads ~seed:cfg.seed ()
  in
  let graph = scenario.Scenario.graph in
  let n = Graph.n graph in
  (* A private mutable store: policy flips must not leak into the
     shared of_config memo other subsystems read. *)
  let store = Policy_store.create scenario.Scenario.config in
  let engine = Engine.create () in
  let metrics = Metrics.create ~n in
  let net : unit Network.t = Network.create engine graph metrics in
  let nemesis = Nemesis.install net ~rng:(Rng.derive cfg.seed "serve-faults") cfg.plan in
  (* Update guard over the link-event stream: flap damping quarantines
     a chattering adjacency, and any active quarantine switches the
     serving loop to serve-stale mode — pin the last healthy database
     snapshot and, past the deadline, shed the queries that would need
     a fresh synthesis while still answering from the route cache. *)
  let guard = Guard.create ~engine ~n ~on_readmit:(fun ~at:_ ~nbr:_ -> ()) () in
  Network.set_link_handler net (fun ~at ~link ~up ->
      let l = Graph.link graph link in
      Guard.observe_link guard ~at ~nbr:(Pr_topology.Link.other_end l at) ~up);
  let t0_build = now_ns () in
  let serve =
    Serve.create ~route_capacity:(Some cfg.route_capacity)
      ~handle_capacity:(Some cfg.handle_capacity)
      ~link_up:(Network.link_is_up net) ~node_up:(Network.node_is_up net) graph store
  in
  let build_ns = now_ns () -. t0_build in
  let workload = Workload.create ~rng:(Rng.derive cfg.seed "serve-workload") graph in
  (* Ring of the most recently issued handles; data packets present a
     recency rank into it. *)
  let ring_cap = 64 in
  let ring = Array.make ring_cap (-1) in
  let ring_head = ref 0 and ring_count = ref 0 in
  let ring_push h =
    ring.(!ring_head mod ring_cap) <- h;
    incr ring_head;
    if !ring_count < ring_cap then incr ring_count
  in
  let ring_nth rank =
    let k = rank mod !ring_count in
    ring.((!ring_head - 1 - k + (2 * ring_cap)) mod ring_cap)
  in
  (* Policy flips: toggle a random transit AD between its configured
     policy and a flipped one (fully closed or fully open), restoring
     on the second visit. *)
  let flip_rng = Rng.derive cfg.seed "serve-flips" in
  let transit = Array.of_list (Graph.transit_ids graph) in
  let originals : (int, Transit_policy.t) Hashtbl.t = Hashtbl.create 16 in
  let flips = ref 0 in
  let flip () =
    if Array.length transit > 0 then begin
      let ad = transit.(Rng.int flip_rng (Array.length transit)) in
      incr flips;
      match Hashtbl.find_opt originals ad with
      | Some original ->
          Hashtbl.remove originals ad;
          Policy_store.set_transit store ad original
      | None ->
          Hashtbl.add originals ad (Policy_store.transit store ad);
          let flipped =
            if Rng.bool flip_rng then Transit_policy.no_transit ad
            else Transit_policy.open_transit ad
          in
          Policy_store.set_transit store ad flipped
    end
  in
  let stale_gauge = Reg.gauge Reg.default "serve.stale_snapshot_age" in
  Reg.set stale_gauge 0.0;
  let m_sheds = Reg.counter Reg.default "serve.sheds" in
  let stale_batches = ref 0 and queries_shed = ref 0 in
  let max_stale_age = ref 0.0 in
  (* (snapshot, pin time) of the last batch served from a healthy
     (quarantine-free) topology. *)
  let pinned = ref None in
  let shed_deadline = 4.0 *. cfg.interval in
  let lat_hist = Hist.create () in
  let exact_latencies = ref [] in
  let total_query_ns = ref 0.0 in
  let rebuild_hist = Hist.create () in
  let answered = ref 0 in
  let agreement_checks = ref 0 in
  let agreement_failures = ref 0 in
  let probes = Array.make 256 None in
  let probe_head = ref 0 in
  let record_probe p =
    probes.(!probe_head mod Array.length probes) <- Some p;
    incr probe_head
  in
  let check_path snap flow path =
    (* Valid only when the snapshot is the store's current version —
       guaranteed on the batch cadence (flips land between batches),
       guarded anyway. *)
    if Pdd.snapshot_version snap = Policy_store.version store then begin
      let rec scan = function
        | prev :: ad :: next :: rest ->
            let prev_o = Some prev and next_o = Some next in
            let ctx = { Policy_term.flow; prev = prev_o; next = next_o } in
            let d = Pdd.admit snap ~ad flow ~prev:prev_o ~next:next_o in
            let c = Compiled.allows (Policy_store.compiled store ad) ctx in
            let i = Transit_policy.allows (Policy_store.transit store ad) ctx in
            incr agreement_checks;
            if not (d = c && c = i && d) then begin
              incr agreement_failures;
              Flight.note Flight.global ~ts:(Engine.now engine) ~tid:ad
                ~detail:
                  (Printf.sprintf "flow %d->%d at AD %d: pdd=%b compiled=%b interpreted=%b"
                     flow.Flow.src flow.Flow.dst ad d c i)
                "serve.agreement_failure"
            end;
            record_probe { p_ad = ad; p_flow = flow; p_prev = prev_o; p_next = next_o };
            scan (ad :: next :: rest)
        | _ -> ()
      in
      scan path
    end
  in
  let batch () =
    let now = Engine.now engine in
    (* Serve-stale: while the guard holds any adjacency in quarantine,
       keep answering from the last healthy snapshot instead of
       refreshing into a database the attacker is churning. *)
    let stale_age =
      if Guard.active_quarantines guard > 0 then
        match !pinned with Some (_, since) -> Some (now -. since) | None -> None
      else None
    in
    let snap =
      match (stale_age, !pinned) with
      | Some age, Some (snap, _) ->
          incr stale_batches;
          if age > !max_stale_age then max_stale_age := age;
          Reg.set stale_gauge age;
          snap
      | _ ->
          let t0 = now_ns () in
          let changed = Serve.refresh serve ~now in
          if changed > 0 then Hist.record rebuild_hist (now_ns () -. t0);
          let snap = Serve.snapshot serve in
          pinned := Some (snap, now);
          snap
    in
    let shedding =
      match stale_age with Some age -> age > shed_deadline | None -> false
    in
    for _op = 1 to cfg.batch do
      match Workload.next workload ~now with
      | Workload.Data rank ->
          if !ring_count > 0 then ignore (Serve.data serve ~now ~handle:(ring_nth rank))
      | Workload.Query flow ->
          (* Past the degradation deadline only cached answers stay on
             the menu: a synthesis on the stale database is work the
             server sheds to keep the cheap queries fast. *)
          if shedding && not (Serve.cache_ready serve ~snap flow) then begin
            incr queries_shed;
            Reg.inc m_sheds
          end
          else begin
            let t0 = now_ns () in
            let answer = Serve.query ~snap serve ~now flow in
            let dt = now_ns () -. t0 in
            Hist.record lat_hist dt;
            if cfg.record_exact then exact_latencies := dt :: !exact_latencies;
            total_query_ns := !total_query_ns +. dt;
            match answer with
            | Serve.Route { path; handle; _ } ->
                incr answered;
                ring_push handle;
                let s = Serve.stats serve in
                if cfg.check_every > 0 && s.Serve.queries mod cfg.check_every = 0 then
                  check_path snap flow path
            | Serve.No_route _ -> ()
          end
    done
  in
  (* Batches before flips so that, at coinciding times, a batch always
     reads the version the previous flip published (FIFO tie-break). *)
  let t = ref 0.0 in
  while !t < cfg.duration do
    Engine.schedule_at engine ~time:!t batch;
    t := !t +. cfg.interval
  done;
  if cfg.flip_every > 0.0 then begin
    let t = ref cfg.flip_every in
    while !t < cfg.duration do
      Engine.schedule_at engine ~time:!t flip;
      t := !t +. cfg.flip_every
    done
  end;
  ignore (Engine.run engine);
  (* Final catch-up so the post-run audit and microbenchmark see the
     last flips. *)
  ignore (Serve.refresh serve ~now:cfg.duration);
  (* Admission microbenchmark over the crossings real answers made:
     one full diagram walk vs the specialized-bitset baseline. *)
  let probe_list = Array.to_list probes |> List.filter_map Fun.id in
  let probe_arr = Array.of_list probe_list in
  let admit_ns, spec_admit_ns, admit_alloc_w =
    if Array.length probe_arr = 0 then (0.0, 0.0, 0.0)
    else begin
      let snap = Serve.snapshot serve in
      let specs =
        Array.map
          (fun p -> Compiled.specialize (Policy_store.compiled store p.p_ad) p.p_flow)
          probe_arr
      in
      (* The two paths must agree probe by probe (same store version). *)
      Array.iteri
        (fun i p ->
          incr agreement_checks;
          if
            Pdd.admit snap ~ad:p.p_ad p.p_flow ~prev:p.p_prev ~next:p.p_next
            <> Compiled.spec_allows specs.(i) ~prev:p.p_prev ~next:p.p_next
          then begin
            incr agreement_failures;
            Flight.note Flight.global ~ts:cfg.duration ~tid:p.p_ad
              ~detail:"microbench probe: diagram vs specialized bitset disagree"
              "serve.agreement_failure"
          end)
        probe_arr;
      let sink = ref 0 in
      let ops = Array.length probe_arr in
      let diagram () =
        for i = 0 to ops - 1 do
          let p = Array.unsafe_get probe_arr i in
          if Pdd.admit snap ~ad:p.p_ad p.p_flow ~prev:p.p_prev ~next:p.p_next then
            incr sink
        done
      in
      let spec () =
        for i = 0 to ops - 1 do
          let p = Array.unsafe_get probe_arr i in
          if Compiled.spec_allows (Array.unsafe_get specs i) ~prev:p.p_prev ~next:p.p_next
          then incr sink
        done
      in
      let d = time_ns_per ~ops diagram in
      let s = time_ns_per ~ops spec in
      (* Steady-state allocation of the diagram walk (shared GC
         accounting with bench/main.ml's synth section): the admit hot
         path is expected to be allocation-free. *)
      let alloc_w = Alloc.words_per ~ops diagram in
      ignore !sink;
      (d, s, alloc_w)
    end
  in
  let stats = Serve.stats serve in
  let self_check_error =
    match Serve.self_check serve with
    | Error e -> Some e
    | Ok () -> (
        match Pdd.check (Serve.pdd serve) with Error e -> Some e | Ok () -> None)
  in
  (match self_check_error with
  | Some e ->
      Flight.note Flight.global ~ts:cfg.duration ~detail:e
        "serve.self_check_failed"
  | None -> ());
  (* Publish the session histograms into the process-global registry so
     `prx serve --metrics` / campaign snapshots see them. *)
  Hist.merge ~into:(Reg.histogram Reg.default "serve.query_latency_ns") lat_hist;
  Hist.merge ~into:(Reg.histogram Reg.default "serve.rebuild_batch_ns") rebuild_hist;
  Alloc.sample ();
  let hc = Pdd.db_store (Serve.pdd serve) in
  {
    config = cfg;
    ads = n;
    links = Graph.num_links graph;
    queries = stats.Serve.queries;
    data_packets = stats.Serve.data_packets;
    answered = !answered;
    no_routes = stats.Serve.no_routes;
    qps =
      (if !total_query_ns > 0.0 then
         float_of_int stats.Serve.queries /. (!total_query_ns /. 1e9)
       else 0.0);
    p50_ns = Hist.quantile lat_hist 50.0;
    p99_ns = Hist.quantile lat_hist 99.0;
    admit_ns;
    spec_admit_ns;
    admit_probes = Array.length probe_arr;
    admit_alloc_w;
    handle_hit_rate =
      (let total = stats.Serve.handle_hits + stats.Serve.handle_misses in
       if total = 0 then 0.0 else float_of_int stats.Serve.handle_hits /. float_of_int total);
    stats;
    rebuild_p50_ns = Hist.quantile rebuild_hist 50.0;
    rebuild_max_ns = Hist.max_value rebuild_hist;
    build_ns;
    diagram_nodes = Pdd.store_nodes hc;
    diagram_preds = Pdd.store_preds hc;
    store_version = Policy_store.version store;
    flips = !flips;
    faults = List.length (Nemesis.fault_log nemesis);
    agreement_checks = !agreement_checks;
    agreement_failures = !agreement_failures;
    stale_batches = !stale_batches;
    queries_shed = !queries_shed;
    max_stale_age = !max_stale_age;
    link_quarantines = Guard.quarantines_total guard;
    link_readmissions = Guard.readmissions guard;
    self_check_error;
    latency = lat_hist;
    rebuild = rebuild_hist;
    exact_latencies = List.rev !exact_latencies;
  }

let healthy r =
  r.agreement_failures = 0 && r.self_check_error = None && r.answered > 0

let row_json r =
  let s = r.stats in
  Json.Obj
    [
      ("target_ads", Json.Int r.config.target_ads);
      ("ads", Json.Int r.ads);
      ("links", Json.Int r.links);
      ("queries", Json.Int r.queries);
      ("data_packets", Json.Int r.data_packets);
      ("answered", Json.Int r.answered);
      ("no_routes", Json.Int r.no_routes);
      ("qps", Json.Float r.qps);
      ("p50_ns", Json.Float r.p50_ns);
      ("p99_ns", Json.Float r.p99_ns);
      ("admit_ns", Json.Float r.admit_ns);
      ("spec_admit_ns", Json.Float r.spec_admit_ns);
      ("admit_probes", Json.Int r.admit_probes);
      ("handle_hit_rate", Json.Float r.handle_hit_rate);
      ("route_hits", Json.Int s.Serve.route_hits);
      ("route_misses", Json.Int s.Serve.route_misses);
      ("route_evictions", Json.Int s.Serve.route_evictions);
      ("handle_hits", Json.Int s.Serve.handle_hits);
      ("handle_misses", Json.Int s.Serve.handle_misses);
      ("handle_evictions", Json.Int s.Serve.handle_evictions);
      ("handles_issued", Json.Int s.Serve.handles_issued);
      ("rebuilds", Json.Int s.Serve.rebuilds);
      ("rebuilt_ads", Json.Int s.Serve.rebuilt_ads);
      ("rebuild_p50_ns", Json.Float r.rebuild_p50_ns);
      ("rebuild_max_ns", Json.Float r.rebuild_max_ns);
      ("build_ns", Json.Float r.build_ns);
      ("diagram_nodes", Json.Int r.diagram_nodes);
      ("diagram_preds", Json.Int r.diagram_preds);
      ("store_version", Json.Int r.store_version);
      ("flips", Json.Int r.flips);
      ("faults", Json.Int r.faults);
      ("agreement_checks", Json.Int r.agreement_checks);
      ("agreement_failures", Json.Int r.agreement_failures);
      ("stale_batches", Json.Int r.stale_batches);
      ("queries_shed", Json.Int r.queries_shed);
      ("max_stale_age", Json.Float r.max_stale_age);
      ("link_quarantines", Json.Int r.link_quarantines);
      ("link_readmissions", Json.Int r.link_readmissions);
      (* Self-describing rows: the session config rides along so `prx
         bench diff` can re-run a baseline row exactly — including its
         own fault plan, so one document can mix benign and attack
         rows. *)
      ("plan", Json.String r.config.plan_name);
      ("duration", Json.Float r.config.duration);
      ("batch", Json.Int r.config.batch);
      ("interval", Json.Float r.config.interval);
      ("flip_every", Json.Float r.config.flip_every);
      ("route_capacity", Json.Int r.config.route_capacity);
      ("handle_capacity", Json.Int r.config.handle_capacity);
      ("check_every", Json.Int r.config.check_every);
      ("restrictiveness", Json.Float r.config.policy.Gen.restrictiveness);
      ( "granularity",
        Json.String (Gen.granularity_to_string r.config.policy.Gen.granularity) );
      ("source_policy_prob", Json.Float r.config.policy.Gen.source_policy_prob);
      ("admit_alloc_w", Json.Float r.admit_alloc_w);
      ("latency_hist", Hist.to_json r.latency);
    ]

(* Rebuild a session config from a baseline row. Fields absent from
   older rows fall back to the `prx serve` CLI defaults those baselines
   were generated with (Gen.default policy: restrictiveness 0.3,
   source-specific granularity). *)
let config_of_row ~seed ~plan ~plan_name row =
  (* A row-level "plan" overrides the document-level one (attack rows
     ride alongside benign rows); an unparseable row plan falls back
     to the document's. *)
  let plan, plan_name =
    match Json.member "plan" row with
    | Some (Json.String s) -> (
        match Plan.profile s with
        | Some p -> (p, s)
        | None -> (
            match Plan.of_string s with Ok p -> (p, s) | Error _ -> (plan, plan_name)))
    | _ -> (plan, plan_name)
  in
  let num name d =
    match Json.member name row with
    | Some (Json.Int v) -> float_of_int v
    | Some (Json.Float v) -> v
    | _ -> d
  in
  let int_f name d = int_of_float (num name (float_of_int d)) in
  let granularity =
    match Json.member "granularity" row with
    | Some (Json.String g) -> (
        match
          List.find_opt
            (fun k -> Gen.granularity_to_string k = g)
            Gen.all_granularities
        with
        | Some k -> k
        | None -> Gen.default.Gen.granularity)
    | _ -> Gen.default.Gen.granularity
  in
  {
    seed;
    target_ads = int_f "target_ads" 0;
    duration = num "duration" default_config.duration;
    batch = int_f "batch" default_config.batch;
    interval = num "interval" default_config.interval;
    plan;
    plan_name;
    flip_every = num "flip_every" default_config.flip_every;
    route_capacity = int_f "route_capacity" default_config.route_capacity;
    handle_capacity = int_f "handle_capacity" default_config.handle_capacity;
    check_every = int_f "check_every" default_config.check_every;
    policy =
      {
        Gen.restrictiveness = num "restrictiveness" Gen.default.Gen.restrictiveness;
        granularity;
        source_policy_prob =
          num "source_policy_prob" Gen.default.Gen.source_policy_prob;
      };
    record_exact = false;
  }

let doc_json ~reports =
  match reports with
  | [] -> invalid_arg "Daemon.doc_json: no reports"
  | first :: _ ->
      Json.Obj
        [
          ("benchmark", Json.String "route_server_serving");
          ( "kernel",
            Json.String
              "hash-consed policy decision diagrams + LRU handle table under \
               fault-plan and set_transit churn" );
          ("units", Json.String "ns (wall), queries/s");
          ("plan", Json.String first.config.plan_name);
          ("seed", Json.Int first.config.seed);
          ("results", Json.List (List.map row_json reports));
        ]

let pp_stale ppf r =
  if r.stale_batches > 0 then
    Format.fprintf ppf
      "@,serve-stale: %d batches (max snapshot age %.1f), %d queries shed, %d \
       quarantines (%d readmitted)"
      r.stale_batches r.max_stale_age r.queries_shed r.link_quarantines
      r.link_readmissions

let pp_self_check ppf r =
  match r.self_check_error with
  | None -> ()
  | Some e -> Format.fprintf ppf "@,SELF-CHECK FAILED: %s" e

let pp_report ppf r =
  let s = r.stats in
  Format.fprintf ppf
    "@[<v>serve: %d ADs (%d links), plan=%s, %d flips, %d faults@,\
     queries %d (answered %d, no-route %d), data %d@,\
     qps %.0f  p50 %.0f ns  p99 %.0f ns@,\
     admit %.1f ns/check (specialized bitsets: %.1f) over %d probes@,\
     route cache %d/%d hit/miss (%d evicted)  handles %.1f%% hit (%d evicted)@,\
     diagrams: %d nodes, %d preds; rebuilds %d (%d ADs), p50 %.0f ns, max %.0f ns@,\
     agreement %d/%d checks failed%a%a@]"
    r.ads r.links r.config.plan_name r.flips r.faults r.queries r.answered r.no_routes
    r.data_packets r.qps r.p50_ns r.p99_ns r.admit_ns r.spec_admit_ns r.admit_probes
    s.Serve.route_hits s.Serve.route_misses s.Serve.route_evictions
    (100.0 *. r.handle_hit_rate)
    s.Serve.handle_evictions r.diagram_nodes r.diagram_preds s.Serve.rebuilds
    s.Serve.rebuilt_ads r.rebuild_p50_ns r.rebuild_max_ns r.agreement_failures
    r.agreement_checks pp_stale r pp_self_check r

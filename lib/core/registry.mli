(** All routing protocols implemented in this repository, packaged as
    first-class modules so experiments can sweep them uniformly. *)

type packed =
  | Packed :
      (module Pr_proto.Protocol_intf.PROTOCOL with type t = 'a and type message = 'm)
      -> packed

val name : packed -> string

val design_point : packed -> Pr_proto.Design_point.t

val all : packed list
(** Every protocol: baselines and policy designs. *)

val baselines : packed list
(** dv-plain, dv-split-horizon, link-state, egp. *)

val policy_designs : packed list
(** The four design points of paper §5: ecma, idrp, ls-hbh-pt, orwg.
    The variants (idrp-per-source, orwg-no-handles, orwg-delegated)
    appear in {!all} only. *)

val find : string -> packed
(** @raise Not_found for unknown names. *)

val find_opt : string -> packed option
(** Non-raising {!find}, for tooling that must report unknown names
    readably instead of dying on an exception. *)

val names : packed list -> string list

module Rng = Pr_util.Rng
module Graph = Pr_topology.Graph
module Generator = Pr_topology.Generator
module Figure1 = Pr_topology.Figure1
module Gen = Pr_policy.Gen
module Config = Pr_policy.Config
module Flow = Pr_policy.Flow
module Qos = Pr_policy.Qos
module Uci = Pr_policy.Uci

type t = {
  label : string;
  graph : Graph.t;
  config : Config.t;
  seed : int;
}

let figure1 ?(policy = Gen.default) ~seed () =
  let graph = Figure1.graph () in
  let rng = Rng.create seed in
  { label = "figure1"; graph; config = Gen.generate rng graph policy; seed }

let hierarchical ?(policy = Gen.default) ?(topology = Generator.default) ~seed () =
  let rng = Rng.create seed in
  let graph = Generator.generate (Rng.split rng) topology in
  {
    label = Printf.sprintf "hierarchical-%d" (Graph.n graph);
    graph;
    config = Gen.generate rng graph policy;
    seed;
  }

let sized ?policy ~target_ads ~seed () =
  hierarchical ?policy ~topology:(Generator.scaled ~target_ads) ~seed ()

let for_size ?policy ~target_ads ~seed () =
  if target_ads <= 14 then figure1 ?policy ~seed ()
  else sized ?policy ~target_ads ~seed ()

let open_policies t =
  { t with label = t.label ^ "-open"; config = Config.defaults t.graph }

let flows t ~rng ~count ?(classes = true) () =
  let hosts = Array.of_list (Graph.host_ids t.graph) in
  if Array.length hosts < 2 then []
  else
    List.init count (fun _ ->
        let src = Rng.choose_array rng hosts in
        let rec pick_dst () =
          let dst = Rng.choose_array rng hosts in
          if dst = src then pick_dst () else dst
        in
        let dst = pick_dst () in
        if classes then
          Flow.make ~src ~dst
            ~qos:(Qos.of_index (Rng.int rng Qos.count))
            ~uci:(Uci.of_index (Rng.int rng Uci.count))
            ~hour:(Rng.int rng 24) ()
        else Flow.make ~src ~dst ())

let all_host_pairs t =
  let hosts = Graph.host_ids t.graph in
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst -> if src = dst then None else Some (Flow.make ~src ~dst ()))
        hosts)
    hosts

module Sexp = Pr_util.Sexp
module Ad = Pr_topology.Ad
module Link = Pr_topology.Link
module Graph = Pr_topology.Graph
module Qos = Pr_policy.Qos
module Uci = Pr_policy.Uci
module Policy_term = Pr_policy.Policy_term
module Transit_policy = Pr_policy.Transit_policy
module Source_policy = Pr_policy.Source_policy
module Config = Pr_policy.Config

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

(* --- graph ----------------------------------------------------------- *)

let klass_to_atom k = Sexp.atom (Ad.klass_to_string k)

let klass_of_atom = function
  | "stub" -> Ok Ad.Stub
  | "multihomed" -> Ok Ad.Multihomed
  | "transit" -> Ok Ad.Transit
  | "hybrid" -> Ok Ad.Hybrid
  | s -> Error ("unknown AD class " ^ s)

let level_to_atom l = Sexp.atom (Ad.level_to_string l)

let level_of_atom = function
  | "backbone" -> Ok Ad.Backbone
  | "regional" -> Ok Ad.Regional
  | "metro" -> Ok Ad.Metro
  | "campus" -> Ok Ad.Campus
  | s -> Error ("unknown AD level " ^ s)

let kind_to_atom k = Sexp.atom (Link.kind_to_string k)

let kind_of_atom = function
  | "hierarchical" -> Ok Link.Hierarchical
  | "lateral" -> Ok Link.Lateral
  | "bypass" -> Ok Link.Bypass
  | s -> Error ("unknown link kind " ^ s)

let ad_to_sexp (a : Ad.t) =
  Sexp.List
    [
      Sexp.atom "ad";
      Sexp.int a.Ad.id;
      Sexp.atom a.Ad.name;
      klass_to_atom a.Ad.klass;
      level_to_atom a.Ad.level;
    ]

let ad_of_sexp = function
  | Sexp.List [ Sexp.Atom "ad"; id; Sexp.Atom name; Sexp.Atom klass; Sexp.Atom level ] ->
    let* id = Sexp.to_int id in
    let* klass = klass_of_atom klass in
    let* level = level_of_atom level in
    Ok (Ad.make ~id ~name ~klass ~level)
  | s -> Error ("malformed ad: " ^ Sexp.to_string s)

let link_to_sexp (l : Link.t) =
  Sexp.List
    [
      Sexp.atom "link";
      Sexp.int l.Link.id;
      Sexp.int l.Link.a;
      Sexp.int l.Link.b;
      kind_to_atom l.Link.kind;
      Sexp.int l.Link.cost;
      Sexp.atom (Printf.sprintf "%g" l.Link.delay);
    ]

let link_of_sexp = function
  | Sexp.List [ Sexp.Atom "link"; id; a; b; Sexp.Atom kind; cost; Sexp.Atom delay ] ->
    let* id = Sexp.to_int id in
    let* a = Sexp.to_int a in
    let* b = Sexp.to_int b in
    let* kind = kind_of_atom kind in
    let* cost = Sexp.to_int cost in
    (match float_of_string_opt delay with
    | None -> Error ("bad delay " ^ delay)
    | Some delay -> Ok (Link.make ~id ~a ~b ~cost ~delay kind))
  | s -> Error ("malformed link: " ^ Sexp.to_string s)

let graph_to_sexp g =
  Sexp.List
    [
      Sexp.atom "graph";
      Sexp.field "ads" (Array.to_list (Array.map ad_to_sexp (Graph.ads g)));
      Sexp.field "links" (Array.to_list (Array.map link_to_sexp (Graph.links g)));
    ]

let graph_of_sexp sexp =
  let* ads = Sexp.assoc "ads" sexp in
  let* links = Sexp.assoc "links" sexp in
  let* ads = map_result ad_of_sexp ads in
  let* links = map_result link_of_sexp links in
  match Graph.create (Array.of_list ads) (Array.of_list links) with
  | g -> Ok g
  | exception Invalid_argument msg -> Error msg

(* --- policies --------------------------------------------------------- *)

let pred_to_sexp = function
  | Policy_term.Any -> Sexp.atom "any"
  | Policy_term.Only ids ->
    Sexp.field "only" (List.map Sexp.int (Array.to_list ids))
  | Policy_term.Except ids ->
    Sexp.field "except" (List.map Sexp.int (Array.to_list ids))

let pred_of_sexp = function
  | Sexp.Atom "any" -> Ok Policy_term.Any
  | Sexp.List (Sexp.Atom "only" :: ids) ->
    let* ids = map_result Sexp.to_int ids in
    Ok (Policy_term.Only (Array.of_list ids))
  | Sexp.List (Sexp.Atom "except" :: ids) ->
    let* ids = map_result Sexp.to_int ids in
    Ok (Policy_term.Except (Array.of_list ids))
  | s -> Error ("malformed predicate: " ^ Sexp.to_string s)

let term_to_sexp (t : Policy_term.t) =
  let base =
    [
      Sexp.atom "term";
      Sexp.field "sources" [ pred_to_sexp t.Policy_term.sources ];
      Sexp.field "destinations" [ pred_to_sexp t.Policy_term.destinations ];
      Sexp.field "prev" [ pred_to_sexp t.Policy_term.prev_hops ];
      Sexp.field "next" [ pred_to_sexp t.Policy_term.next_hops ];
      Sexp.field "qos" (List.map (fun q -> Sexp.int (Qos.index q)) t.Policy_term.qos);
      Sexp.field "ucis" (List.map (fun u -> Sexp.int (Uci.index u)) t.Policy_term.ucis);
    ]
  in
  let hours =
    match t.Policy_term.hours with
    | None -> []
    | Some (a, b) -> [ Sexp.field "hours" [ Sexp.int a; Sexp.int b ] ]
  in
  let auth = if t.Policy_term.auth_required then [ Sexp.field "auth" [] ] else [] in
  Sexp.List (base @ hours @ auth)

let term_of_sexp ~owner sexp =
  let pred name =
    let* values = Sexp.assoc name sexp in
    match values with
    | [ p ] -> pred_of_sexp p
    | _ -> Error ("malformed " ^ name)
  in
  let* sources = pred "sources" in
  let* destinations = pred "destinations" in
  let* prev_hops = pred "prev" in
  let* next_hops = pred "next" in
  let* qos_idx = Sexp.assoc "qos" sexp in
  let* qos_idx = map_result Sexp.to_int qos_idx in
  let* uci_idx = Sexp.assoc "ucis" sexp in
  let* uci_idx = map_result Sexp.to_int uci_idx in
  let* hours =
    match Sexp.assoc_opt "hours" sexp with
    | None -> Ok None
    | Some [ a; b ] ->
      let* a = Sexp.to_int a in
      let* b = Sexp.to_int b in
      Ok (Some (a, b))
    | Some _ -> Error "malformed hours"
  in
  let auth_required = Sexp.assoc_opt "auth" sexp <> None in
  match
    Policy_term.make ~owner ~sources ~destinations ~prev_hops ~next_hops
      ~qos:(List.map Qos.of_index qos_idx)
      ~ucis:(List.map Uci.of_index uci_idx)
      ?hours ~auth_required ()
  with
  | t -> Ok t
  | exception Invalid_argument msg -> Error msg

let transit_to_sexp (p : Transit_policy.t) =
  Sexp.List
    (Sexp.atom "policy" :: Sexp.int p.Transit_policy.owner
    :: List.map term_to_sexp p.Transit_policy.terms)

let transit_of_sexp = function
  | Sexp.List (Sexp.Atom "policy" :: owner :: terms) ->
    let* owner = Sexp.to_int owner in
    let* terms = map_result (term_of_sexp ~owner) terms in
    Ok (Transit_policy.make owner terms)
  | s -> Error ("malformed transit policy: " ^ Sexp.to_string s)

let source_to_sexp (p : Source_policy.t) =
  let base =
    [
      Sexp.atom "source-policy";
      Sexp.int p.Source_policy.owner;
      Sexp.field "avoid" (List.map Sexp.int p.Source_policy.avoid);
      Sexp.field "prefer" (List.map Sexp.int p.Source_policy.prefer);
    ]
  in
  let hops =
    match p.Source_policy.max_hops with
    | None -> []
    | Some h -> [ Sexp.field "max-hops" [ Sexp.int h ] ]
  in
  Sexp.List (base @ hops)

let source_of_sexp = function
  | Sexp.List (Sexp.Atom "source-policy" :: owner :: _) as sexp ->
    let* owner = Sexp.to_int owner in
    let* avoid = Sexp.assoc "avoid" sexp in
    let* avoid = map_result Sexp.to_int avoid in
    let* prefer = Sexp.assoc "prefer" sexp in
    let* prefer = map_result Sexp.to_int prefer in
    let* max_hops =
      match Sexp.assoc_opt "max-hops" sexp with
      | None -> Ok None
      | Some [ h ] ->
        let* h = Sexp.to_int h in
        Ok (Some h)
      | Some _ -> Error "malformed max-hops"
    in
    Ok (Source_policy.make ~owner ~avoid ~prefer ?max_hops ())
  | s -> Error ("malformed source policy: " ^ Sexp.to_string s)

let config_to_sexp config =
  let n = Config.n config in
  let transit =
    List.init n (fun ad -> transit_to_sexp (Config.transit config ad))
  in
  let source =
    List.init n (fun ad ->
        if Config.has_source_policy config ad then
          Some (source_to_sexp (Config.source config ad))
        else None)
    |> List.filter_map Fun.id
  in
  Sexp.List
    [ Sexp.atom "config"; Sexp.field "transit" transit; Sexp.field "source" source ]

let config_of_sexp sexp =
  let* transit = Sexp.assoc "transit" sexp in
  let* transit = map_result transit_of_sexp transit in
  let transit = Array.of_list transit in
  let* sources =
    match Sexp.assoc_opt "source" sexp with
    | None -> Ok []
    | Some items -> map_result source_of_sexp items
  in
  let source = Array.make (Array.length transit) None in
  List.iter
    (fun (p : Source_policy.t) -> source.(p.Source_policy.owner) <- Some p)
    sources;
  match Config.make ~transit ~source () with
  | c -> Ok c
  | exception Invalid_argument msg -> Error msg

(* --- scenario ---------------------------------------------------------- *)

let scenario_to_sexp (s : Scenario.t) =
  Sexp.List
    [
      Sexp.atom "scenario";
      Sexp.field "label" [ Sexp.atom s.Scenario.label ];
      Sexp.field "seed" [ Sexp.int s.Scenario.seed ];
      graph_to_sexp s.Scenario.graph;
      config_to_sexp s.Scenario.config;
    ]

let find_child name = function
  | Sexp.List items ->
    List.find_opt
      (function
        | Sexp.List (Sexp.Atom n :: _) -> n = name
        | _ -> false)
      items
    |> Option.to_result ~none:("missing " ^ name)
  | _ -> Error "expected a list"

let scenario_of_sexp sexp =
  let* label = Sexp.assoc "label" sexp in
  let* label =
    match label with
    | [ l ] -> Sexp.to_atom l
    | _ -> Error "malformed label"
  in
  let* seed = Sexp.assoc "seed" sexp in
  let* seed =
    match seed with
    | [ s ] -> Sexp.to_int s
    | _ -> Error "malformed seed"
  in
  let* graph_sexp = find_child "graph" sexp in
  let* graph = graph_of_sexp graph_sexp in
  let* config_sexp = find_child "config" sexp in
  let* config = config_of_sexp config_sexp in
  if Config.n config <> Graph.n graph then Error "config/graph size mismatch"
  else Ok { Scenario.label; graph; config; seed }

let save s = Sexp.to_string_pretty (scenario_to_sexp s)

let load text =
  let* sexp = Sexp.of_string text in
  scenario_of_sexp sexp

let save_file s ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (save s))

let load_file ~path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> load (really_input_string ic (in_channel_length ic)))
  | exception Sys_error msg -> Error msg

type packed =
  | Packed :
      (module Pr_proto.Protocol_intf.PROTOCOL with type t = 'a and type message = 'm)
      -> packed

let name (Packed (module P)) = P.name

let design_point (Packed (module P)) = P.design_point

let baselines =
  [
    Packed (module Pr_dv.Dv.Plain);
    Packed (module Pr_dv.Dv.Split_horizon);
    Packed (module Pr_ls.Ls);
    Packed (module Pr_egp.Egp);
  ]

let policy_designs =
  [
    Packed (module Pr_ecma.Ecma);
    Packed (module Pr_idrp.Idrp.Standard);
    Packed (module Pr_lshbh.Lshbh);
    Packed (module Pr_orwg.Orwg.Orwg);
  ]

let extras =
  [
    Packed (module Pr_idrp.Idrp.Per_source);
    Packed (module Pr_idrp.Idrp.Scoped);
    Packed (module Pr_orwg.Orwg.No_handles);
    Packed (module Pr_orwg.Orwg.Delegated);
    Packed (module Pr_orwg.Orwg.Pruned);
  ]

let all = baselines @ policy_designs @ extras

let find wanted = List.find (fun p -> name p = wanted) all

let find_opt wanted = List.find_opt (fun p -> name p = wanted) all

let names packs = List.map name packs

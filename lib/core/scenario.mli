(** Experiment scenarios: a topology, a policy configuration, and a
    deterministic workload of flows. *)

type t = {
  label : string;
  graph : Pr_topology.Graph.t;
  config : Pr_policy.Config.t;
  seed : int;
}

val figure1 : ?policy:Pr_policy.Gen.params -> seed:int -> unit -> t
(** The paper's Figure 1 internet; policies default to
    {!Pr_policy.Gen.default} drawn with the given seed. *)

val hierarchical :
  ?policy:Pr_policy.Gen.params ->
  ?topology:Pr_topology.Generator.params ->
  seed:int ->
  unit ->
  t
(** A generated hierarchical internet (defaults:
    {!Pr_topology.Generator.default}, ~56 ADs). *)

val sized : ?policy:Pr_policy.Gen.params -> target_ads:int -> seed:int -> unit -> t
(** A generated hierarchical internet of approximately the requested
    size. *)

val for_size : ?policy:Pr_policy.Gen.params -> target_ads:int -> seed:int -> unit -> t
(** The canonical scenario for a requested size: the Figure 1 internet
    when [target_ads <= 14], a generated hierarchy otherwise. The one
    constructor `prx` and campaign sweeps share, so a sweep point and
    an interactive run of the same parameters see the same internet. *)

val open_policies : t -> t
(** The same topology with the class-implied default policies
    (transit open, stubs closed) — the policy-free control. *)

val flows :
  t -> rng:Pr_util.Rng.t -> count:int -> ?classes:bool -> unit -> Pr_policy.Flow.t list
(** A workload of [count] flows between distinct host ADs. With
    [classes] (default true) QOS/UCI are drawn randomly; otherwise all
    flows are default-class. *)

val all_host_pairs : t -> Pr_policy.Flow.t list
(** One default-class flow per ordered pair of distinct host ADs —
    the exhaustive workload used on small scenarios. *)

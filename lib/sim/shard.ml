module Graph = Pr_topology.Graph
module Hierarchy = Pr_topology.Hierarchy
module Link = Pr_topology.Link

type spec = {
  count : int;
  owner : int array;
  delta : float;
}

let count t = t.count

let owner t ad = t.owner.(ad)

let delta t = t.delta

(* Minimum propagation delay over links whose endpoints live on
   different shards. This is the conservative lookahead of the CMB
   window synchronizer: an event executed at time u on one shard can
   influence another shard no earlier than u + delta, so all shards may
   safely execute the window [W, W + delta) in parallel. [infinity]
   when no link crosses a shard boundary (each window then drains
   everything up to the next control event). *)
let min_cross_delay graph owner =
  Graph.fold_links graph ~init:infinity ~f:(fun acc (l : Link.t) ->
      if owner.(l.a) <> owner.(l.b) then Float.min acc l.delay else acc)

let make ~owner ~count graph =
  if count < 1 then invalid_arg "Shard.make: count must be >= 1";
  if Array.length owner <> Graph.n graph then
    invalid_arg "Shard.make: owner array size mismatch";
  Array.iter
    (fun o ->
      if o < 0 || o >= count then invalid_arg "Shard.make: owner out of range")
    owner;
  { count; owner; delta = min_cross_delay graph owner }

(* Default partitioner: hierarchy clusters bin-packed onto shards.
   Clusters are indivisible — keeping a cluster on one shard keeps the
   dense intra-cluster traffic of the Figure-1 topologies shard-local,
   so only the sparse inter-cluster links pay the cross-shard path.
   Greedy longest-processing-time packing: clusters by (size desc,
   id asc) onto the currently lightest shard (ties to the lowest shard
   id) — deterministic for a given (graph, shards). *)
let plan graph ~shards =
  if shards < 1 then invalid_arg "Shard.plan: shards must be >= 1";
  let n = Graph.n graph in
  let shards = if n = 0 then 1 else min shards n in
  if shards = 1 then { count = 1; owner = Array.make n 0; delta = infinity }
  else begin
    let cl = Hierarchy.clusters_of_levels graph in
    let ncl = 1 + Array.fold_left max (-1) cl in
    let sizes = Array.make ncl 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) cl;
    let order = Array.init ncl (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = compare sizes.(b) sizes.(a) in
        if c <> 0 then c else compare a b)
      order;
    let load = Array.make shards 0 in
    let shard_of_cluster = Array.make ncl 0 in
    Array.iter
      (fun c ->
        let best = ref 0 in
        for s = 1 to shards - 1 do
          if load.(s) < load.(!best) then best := s
        done;
        shard_of_cluster.(c) <- !best;
        load.(!best) <- load.(!best) + sizes.(c))
      order;
    let owner = Array.map (fun c -> shard_of_cluster.(c)) cl in
    { count = shards; owner; delta = min_cross_delay graph owner }
  end

let pp fmt t =
  let sizes = Array.make t.count 0 in
  Array.iter (fun o -> sizes.(o) <- sizes.(o) + 1) t.owner;
  Format.fprintf fmt "shards=%d delta=%g sizes=[" t.count t.delta;
  Array.iteri
    (fun i s -> Format.fprintf fmt "%s%d" (if i > 0 then " " else "") s)
    sizes;
  Format.fprintf fmt "]"

(** AD-partition specification for the sharded engine.

    A [spec] assigns every AD to one shard and records the conservative
    lookahead [delta]: the minimum propagation delay over cross-shard
    links. The engine advances all shards in lockstep windows of that
    width (a CMB-style conservative synchronizer) — see
    {!Engine.create}. *)

type spec

val plan : Pr_topology.Graph.t -> shards:int -> spec
(** Default partitioner: {!Pr_topology.Hierarchy.clusters_of_levels}
    clusters bin-packed greedily (largest first) onto [shards] shards.
    Deterministic for a given (graph, shards); [shards] is clamped to
    the AD count. @raise Invalid_argument when [shards < 1]. *)

val make : owner:int array -> count:int -> Pr_topology.Graph.t -> spec
(** Explicit assignment, for tests: [owner.(ad)] is the shard of [ad].
    @raise Invalid_argument on size or range errors. *)

val count : spec -> int

val owner : spec -> int -> int

val delta : spec -> float
(** Minimum cross-shard link delay; [infinity] when no link crosses a
    shard boundary. *)

val pp : Format.formatter -> spec -> unit

module Graph = Pr_topology.Graph
module Link = Pr_topology.Link
module Rng = Pr_util.Rng
module Trace = Pr_obs.Trace

(* Debug tracing: enable with Logs.Src.set_level Network.log_src
   (Some Logs.Debug) and a reporter. Off by default and free when
   disabled (messages are built lazily). *)
let log_src = Logs.Src.create "pr.network" ~doc:"Inter-AD message passing"

module Log = (val Logs.src_log log_src : Logs.LOG)

type 'msg t = {
  engine : Engine.t;
  graph : Graph.t;
  metrics : Metrics.t;
  trace : Trace.t;
  link_up : bool array;
  mutable on_message : at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id -> 'msg -> unit;
  mutable on_link : at:Pr_topology.Ad.id -> link:Link.id -> up:bool -> unit;
}

let create ?(trace = Trace.disabled) engine graph metrics =
  {
    engine;
    graph;
    metrics;
    trace;
    link_up = Array.make (Graph.num_links graph) true;
    on_message = (fun ~at:_ ~from:_ _ -> ());
    on_link = (fun ~at:_ ~link:_ ~up:_ -> ());
  }

let graph t = t.graph

let engine t = t.engine

let metrics t = t.metrics

let trace t = t.trace

let set_message_handler t f = t.on_message <- f

let set_link_handler t f = t.on_link <- f

let link_is_up t lid = t.link_up.(lid)

let up_link_between t x y =
  let best = ref (-1) and best_cost = ref max_int in
  Graph.iter_links_between t.graph x y ~f:(fun lid ->
      if t.link_up.(lid) then begin
        let c = (Graph.link t.graph lid).Link.cost in
        if c < !best_cost then begin
          best := lid;
          best_cost := c
        end
      end);
  if !best < 0 then None else Some !best

let adjacent_and_up t x y = up_link_between t x y <> None

let iter_up_neighbors t x ~f =
  (* The CSR row is sorted by neighbor, so parallel links are adjacent:
     emit each neighbor once, on its first up link. *)
  let last = ref (-1) in
  Graph.iter_neighbors t.graph x ~f:(fun v lid ->
      if v <> !last && t.link_up.(lid) then begin
        last := v;
        f v
      end)

let up_neighbors t x =
  let acc = ref [] in
  iter_up_neighbors t x ~f:(fun v -> acc := v :: !acc);
  List.rev !acc

let send t ~src ~dst ~bytes msg =
  match up_link_between t src dst with
  | None -> ()
  | Some lid ->
    Metrics.record_send t.metrics src ~bytes;
    if Trace.enabled t.trace then
      Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid:src "net.send";
    Log.debug (fun m ->
        m "t=%.1f send %d -> %d (%d bytes)" (Engine.now t.engine) src dst bytes);
    let delay = (Graph.link t.graph lid).Link.delay in
    Engine.schedule t.engine ~delay (fun () ->
        (* The message is lost if the link failed while in flight. *)
        if t.link_up.(lid) then t.on_message ~at:dst ~from:src msg
        else begin
          if Trace.enabled t.trace then
            Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid:dst "net.lost";
          Log.debug (fun m ->
              m "t=%.1f message %d -> %d lost in flight" (Engine.now t.engine) src dst)
        end)

let broadcast t ~src ~bytes msg =
  let neighbors = up_neighbors t src in
  List.iter (fun nbr -> send t ~src ~dst:nbr ~bytes msg) neighbors;
  List.length neighbors

let set_link_state t lid ~up =
  if t.link_up.(lid) <> up then begin
    t.link_up.(lid) <- up;
    let l = Graph.link t.graph lid in
    if Trace.enabled t.trace then
      Trace.instant t.trace ~ts:(Engine.now t.engine) ~tid:l.Link.a
        (if up then "link.up" else "link.down");
    Log.info (fun m ->
        m "t=%.1f link %d--%d %s" (Engine.now t.engine) l.Link.a l.Link.b
          (if up then "restored" else "FAILED"));
    t.on_link ~at:l.Link.a ~link:lid ~up;
    t.on_link ~at:l.Link.b ~link:lid ~up
  end

let fail_random_link t rng ?kind () =
  let candidates =
    Graph.fold_links t.graph ~init:[] ~f:(fun acc l ->
        let kind_ok =
          match kind with
          | None -> true
          | Some k -> l.Link.kind = k
        in
        if kind_ok && t.link_up.(l.Link.id) then l.Link.id :: acc else acc)
  in
  match candidates with
  | [] -> None
  | _ ->
    let lid = Rng.choose rng candidates in
    set_link_state t lid ~up:false;
    Some lid

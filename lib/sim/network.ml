module Graph = Pr_topology.Graph
module Link = Pr_topology.Link
module Rng = Pr_util.Rng
module Trace = Pr_obs.Trace
module Reg = Pr_telemetry.Registry
module Flight = Pr_telemetry.Flight

(* Debug tracing: enable with Logs.Src.set_level Network.log_src
   (Some Logs.Debug) and a reporter. Off by default and free when
   disabled (messages are built lazily). *)
let log_src = Logs.Src.create "pr.network" ~doc:"Inter-AD message passing"

module Log = (val Logs.src_log log_src : Logs.LOG)

type 'msg t = {
  engine : Engine.t;
  graph : Graph.t;
  metrics : Metrics.t;
  trace : Trace.t;
  link_up : bool array;
  node_up : bool array;
  (* Fault-plan hook: maps each send to the extra delivery delays of
     its copies ([] = dropped in flight, one 0.0 entry = the normal
     delivery, several entries = duplicates). None (the default) costs
     one match per send. *)
  mutable interpose :
    (src:Pr_topology.Ad.id -> dst:Pr_topology.Ad.id -> link:Link.id -> float list) option;
  (* Byzantine hook: rewrite a message as it leaves [src] ([None] from
     the hook = pass unchanged). Used by the nemesis to model an
     attacker AD corrupting its own updates. *)
  mutable tamper :
    (src:Pr_topology.Ad.id -> dst:Pr_topology.Ad.id -> bytes:int -> 'msg -> 'msg option)
    option;
  mutable on_message : at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id -> 'msg -> unit;
  mutable on_link : at:Pr_topology.Ad.id -> link:Link.id -> up:bool -> unit;
  (* Registry handles resolved once at creation. *)
  m_sends : Reg.counter;
  m_losses : Reg.counter;
  (* Sharded-engine instrumentation: the hot send/lose paths run on
     worker domains, so each shard records into its own registry
     handles (absorbed into the default registry at end of run) and
     charges cross-shard losses to a per-shard shadow array flushed
     into Metrics — the single-writer Metrics arrays must not be
     written from a foreign domain. Empty on a sequential engine. *)
  sharded : bool;
  lane_sends : Reg.counter array;
  lane_losses : Reg.counter array;
  lost_shadow : int array array;
}

let create ?(trace = Trace.disabled) engine graph metrics =
  let shards = Engine.shard_count engine in
  let sharded = shards > 1 in
  let t =
    {
      engine;
      graph;
      metrics;
      trace;
      link_up = Array.make (Graph.num_links graph) true;
      node_up = Array.make (Graph.n graph) true;
      interpose = None;
      tamper = None;
      on_message = (fun ~at:_ ~from:_ _ -> ());
      on_link = (fun ~at:_ ~link:_ ~up:_ -> ());
      m_sends = Reg.counter Reg.default "net.sends";
      m_losses = Reg.counter Reg.default "net.losses";
      sharded;
      lane_sends =
        (if sharded then
           Array.init shards (fun i ->
               Reg.counter (Engine.shard_registry engine i) "net.sends")
         else [||]);
      lane_losses =
        (if sharded then
           Array.init shards (fun i ->
               Reg.counter (Engine.shard_registry engine i) "net.losses")
         else [||]);
      lost_shadow =
        (if sharded then
           Array.init shards (fun _ -> Array.make (Graph.n graph) 0)
         else [||]);
    }
  in
  if sharded then
    Engine.add_end_of_run_hook engine (fun () ->
        Array.iter
          (fun row ->
            Array.iteri
              (fun ad c ->
                if c <> 0 then begin
                  Metrics.add_losses metrics ad c;
                  row.(ad) <- 0
                end)
              row)
          t.lost_shadow);
  t

let graph t = t.graph

let engine t = t.engine

let metrics t = t.metrics

let trace t = if t.sharded then Engine.trace t.engine else t.trace

(* Context-resolved counter handles: the executing shard's on a worker
   domain, the default-registry ones otherwise. *)
let sends_ctr t =
  let i = Engine.current_shard t.engine in
  if i < 0 then t.m_sends else t.lane_sends.(i)

let losses_ctr t =
  let i = Engine.current_shard t.engine in
  if i < 0 then t.m_losses else t.lane_losses.(i)

let set_message_handler t f = t.on_message <- f

let set_link_handler t f = t.on_link <- f

let set_delivery_interposer t f = t.interpose <- f

let set_message_tamper t f = t.tamper <- f

let link_is_up t lid = t.link_up.(lid)

let node_is_up t ad = t.node_up.(ad)

let up_link_between t x y =
  let best = ref (-1) and best_cost = ref max_int in
  Graph.iter_links_between t.graph x y ~f:(fun lid ->
      if t.link_up.(lid) then begin
        let c = (Graph.link t.graph lid).Link.cost in
        if c < !best_cost then begin
          best := lid;
          best_cost := c
        end
      end);
  if !best < 0 then None else Some !best

let adjacent_and_up t x y = up_link_between t x y <> None

let iter_up_neighbors t x ~f =
  (* The CSR row is sorted by neighbor, so parallel links are adjacent:
     emit each neighbor once, on its first up link. *)
  let last = ref (-1) in
  Graph.iter_neighbors t.graph x ~f:(fun v lid ->
      if v <> !last && t.link_up.(lid) then begin
        last := v;
        f v
      end)

let up_neighbors t x =
  let acc = ref [] in
  iter_up_neighbors t x ~f:(fun v -> acc := v :: !acc);
  List.rev !acc

let lose t ~src ~dst =
  (* Loss is charged to the receiver. On a worker domain the Metrics
     row may belong to a foreign shard (an interposer drop runs in the
     sender's context), so the charge goes to this shard's shadow
     array, flushed at end of run. *)
  (let i = Engine.current_shard t.engine in
   if i < 0 then Metrics.record_loss t.metrics dst
   else t.lost_shadow.(i).(dst) <- t.lost_shadow.(i).(dst) + 1);
  Reg.inc (losses_ctr t);
  let tr = trace t in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now t.engine) ~tid:dst "net.lost";
  Log.debug (fun m ->
      m "t=%.1f message %d -> %d lost in flight" (Engine.now t.engine) src dst)

let send t ~src ~dst ~bytes msg =
  (* A crashed AD transmits nothing. *)
  if not t.node_up.(src) then ()
  else
    match up_link_between t src dst with
    | None -> ()
    | Some lid ->
      Metrics.record_send t.metrics src ~bytes;
      Reg.inc (sends_ctr t);
      let tr = trace t in
      if Trace.enabled tr then
        Trace.instant tr ~ts:(Engine.now t.engine) ~tid:src "net.send";
      Log.debug (fun m ->
          m "t=%.1f send %d -> %d (%d bytes)" (Engine.now t.engine) src dst bytes);
      let msg =
        match t.tamper with
        | None -> msg
        | Some f -> ( match f ~src ~dst ~bytes msg with None -> msg | Some m -> m)
      in
      let delay = (Graph.link t.graph lid).Link.delay in
      let deliver () =
        (* Lost if the link failed, or the receiver crashed, while the
           message was in flight. *)
        if t.link_up.(lid) && t.node_up.(dst) then t.on_message ~at:dst ~from:src msg
        else lose t ~src ~dst
      in
      (* Delivery executes on the shard owning the receiver; link
         delays are >= the cross-shard minimum by construction, so the
         window synchronizer never has to delay these further. *)
      (match t.interpose with
      | None -> Engine.schedule_for t.engine ~ad:dst ~delay deliver
      | Some f -> (
        match f ~src ~dst ~link:lid with
        | [] ->
          (* The fault plan ate it; the bits were still transmitted, so
             the send stays charged. *)
          lose t ~src ~dst
        | extras ->
          List.iter
            (fun extra ->
              Engine.schedule_for t.engine ~ad:dst ~delay:(delay +. extra) deliver)
            extras))

let broadcast t ~src ~bytes msg =
  let neighbors = up_neighbors t src in
  List.iter (fun nbr -> send t ~src ~dst:nbr ~bytes msg) neighbors;
  List.length neighbors

let set_link_state t lid ~up =
  if t.link_up.(lid) <> up then begin
    t.link_up.(lid) <- up;
    let l = Graph.link t.graph lid in
    let tr = trace t in
    if Trace.enabled tr then
      Trace.instant tr ~ts:(Engine.now t.engine) ~tid:l.Link.a
        (if up then "link.up" else "link.down");
    Flight.note Flight.global ~ts:(Engine.now t.engine) ~tid:l.Link.a
      ~detail:(Printf.sprintf "link %d--%d" l.Link.a l.Link.b)
      (if up then "link.up" else "link.down");
    Log.info (fun m ->
        m "t=%.1f link %d--%d %s" (Engine.now t.engine) l.Link.a l.Link.b
          (if up then "restored" else "FAILED"));
    t.on_link ~at:l.Link.a ~link:lid ~up;
    t.on_link ~at:l.Link.b ~link:lid ~up
  end

let set_node_state t ad ~up =
  if t.node_up.(ad) <> up then begin
    t.node_up.(ad) <- up;
    let tr = trace t in
    if Trace.enabled tr then
      Trace.instant tr ~ts:(Engine.now t.engine) ~tid:ad
        (if up then "node.up" else "node.down");
    Flight.note Flight.global ~ts:(Engine.now t.engine) ~tid:ad
      ~detail:(Printf.sprintf "AD %d" ad)
      (if up then "node.up" else "node.down");
    Log.info (fun m ->
        m "t=%.1f AD %d %s" (Engine.now t.engine) ad (if up then "restarted" else "CRASHED"))
  end

let fail_random_link t rng ?kind () =
  let candidates =
    Graph.fold_links t.graph ~init:[] ~f:(fun acc l ->
        let kind_ok =
          match kind with
          | None -> true
          | Some k -> l.Link.kind = k
        in
        if kind_ok && t.link_up.(l.Link.id) then l.Link.id :: acc else acc)
  in
  match candidates with
  | [] -> None
  | _ ->
    let lid = Rng.choose rng candidates in
    set_link_state t lid ~up:false;
    Some lid

(** Per-node accounting of protocol overhead.

    The paper's comparisons are in terms of information exchanged
    (messages, bytes), computation performed (route computations,
    especially at transit ADs — §5.3), and state held (routing table
    entries — §5.2.1). Every protocol records into one of these. *)

type t

val create : n:int -> t
(** [n] is the number of ADs. *)

val reset : t -> unit

val record_send : t -> Pr_topology.Ad.id -> bytes:int -> unit
(** One control message of the given size sent by the AD. *)

val record_loss : t -> Pr_topology.Ad.id -> unit
(** One control message lost in the network before reaching the AD —
    taken by a link that failed while it was in flight, addressed to a
    crashed AD, or eaten by a fault-plan drop. Charged to the intended
    {e receiver}: loss is the receiver's missing information. *)

val add_losses : t -> Pr_topology.Ad.id -> int -> unit
(** Charge [count] losses to an AD at once. The sharded {!Network}
    accumulates cross-shard interposer drops in per-shard shadow
    arrays and flushes them here at the end of a run. *)

val record_eviction : t -> Pr_topology.Ad.id -> ?count:int -> unit -> unit
(** One (or [count]) bounded-cache evictions at the AD — setup-handle
    or route-cache entries displaced under LRU pressure. State the AD
    chose to forget, the dual of the table-entry gauge. *)

val record_computation : t -> Pr_topology.Ad.id -> ?work:int -> unit -> unit
(** One route computation at the AD; [work] (default 1) scales it,
    e.g. by the number of nodes visited by a Dijkstra run. *)

val set_table_entries : t -> Pr_topology.Ad.id -> int -> unit
(** Gauge: current routing/forwarding table size at the AD. *)

val add_table_entries : t -> Pr_topology.Ad.id -> int -> unit

val messages : t -> int
(** Total control messages sent. *)

val bytes : t -> int

val computations : t -> int
(** Total computation work units. *)

val table_entries : t -> int
(** Sum of the table-size gauges. *)

val msgs_lost : t -> int
(** Total in-flight message losses (see {!record_loss}). *)

val evictions : t -> int
(** Total bounded-cache evictions (see {!record_eviction}). *)

val messages_of : t -> Pr_topology.Ad.id -> int

val bytes_of : t -> Pr_topology.Ad.id -> int

val computations_of : t -> Pr_topology.Ad.id -> int

val table_entries_of : t -> Pr_topology.Ad.id -> int

val msgs_lost_of : t -> Pr_topology.Ad.id -> int

val evictions_of : t -> Pr_topology.Ad.id -> int

val max_table_entries : t -> int
(** Largest per-AD table gauge — the state burden on the worst-loaded
    AD. *)

val snapshot : t -> t
(** An independent copy, for before/after deltas. *)

val diff : after:t -> before:t -> t
(** Counter-wise difference (gauges are taken from [after]). *)

val merge : t -> t -> unit
(** [merge into from] adds [from]'s per-AD counters and gauges into
    [into], so metrics recorded by independent workers combine to what
    one sequential recording would have produced.
    @raise Invalid_argument when the two differ in [n]. *)

val to_json : t -> Pr_util.Json.t
(** Full per-AD state, for shipping across a process boundary.
    Round-trips exactly through {!of_json}. *)

val of_json : Pr_util.Json.t -> (t, string) result
(** Accepts documents without a ["losses"] or ["evictions"] array
    (written before those counters existed) by reading zeros. *)

val load_series : t -> (string * float array) list
(** The per-AD counter vectors (["messages"], ["bytes"],
    ["computations"]) as floats, in the shape
    {!Pr_obs.Load_profile.of_series} and {!Pr_obs.Timeline} consume.
    Table gauges are not included: protocols expose table sizes
    directly via their [table_entries], not through this recorder. *)

val pp : Format.formatter -> t -> unit

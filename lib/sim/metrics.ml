type t = {
  n : int;
  msgs : int array;
  bytes_sent : int array;
  comps : int array;
  tables : int array;
  lost : int array;
  evicted : int array;
}

let create ~n =
  {
    n;
    msgs = Array.make n 0;
    bytes_sent = Array.make n 0;
    comps = Array.make n 0;
    tables = Array.make n 0;
    lost = Array.make n 0;
    evicted = Array.make n 0;
  }

let reset t =
  Array.fill t.msgs 0 t.n 0;
  Array.fill t.bytes_sent 0 t.n 0;
  Array.fill t.comps 0 t.n 0;
  Array.fill t.tables 0 t.n 0;
  Array.fill t.lost 0 t.n 0;
  Array.fill t.evicted 0 t.n 0

let record_send t ad ~bytes =
  t.msgs.(ad) <- t.msgs.(ad) + 1;
  t.bytes_sent.(ad) <- t.bytes_sent.(ad) + bytes

let record_loss t ad = t.lost.(ad) <- t.lost.(ad) + 1

let add_losses t ad count = t.lost.(ad) <- t.lost.(ad) + count

let record_eviction t ad ?(count = 1) () = t.evicted.(ad) <- t.evicted.(ad) + count

let record_computation t ad ?(work = 1) () = t.comps.(ad) <- t.comps.(ad) + work

let set_table_entries t ad entries = t.tables.(ad) <- entries

let add_table_entries t ad entries = t.tables.(ad) <- t.tables.(ad) + entries

let sum a = Array.fold_left ( + ) 0 a

let messages t = sum t.msgs

let bytes t = sum t.bytes_sent

let computations t = sum t.comps

let table_entries t = sum t.tables

let msgs_lost t = sum t.lost

let evictions t = sum t.evicted

let messages_of t ad = t.msgs.(ad)

let bytes_of t ad = t.bytes_sent.(ad)

let computations_of t ad = t.comps.(ad)

let table_entries_of t ad = t.tables.(ad)

let msgs_lost_of t ad = t.lost.(ad)

let evictions_of t ad = t.evicted.(ad)

let max_table_entries t = Array.fold_left Stdlib.max 0 t.tables

let snapshot t =
  {
    n = t.n;
    msgs = Array.copy t.msgs;
    bytes_sent = Array.copy t.bytes_sent;
    comps = Array.copy t.comps;
    tables = Array.copy t.tables;
    lost = Array.copy t.lost;
    evicted = Array.copy t.evicted;
  }

let merge into from =
  if into.n <> from.n then invalid_arg "Metrics.merge: size mismatch";
  for i = 0 to into.n - 1 do
    into.msgs.(i) <- into.msgs.(i) + from.msgs.(i);
    into.bytes_sent.(i) <- into.bytes_sent.(i) + from.bytes_sent.(i);
    into.comps.(i) <- into.comps.(i) + from.comps.(i);
    into.tables.(i) <- into.tables.(i) + from.tables.(i);
    into.lost.(i) <- into.lost.(i) + from.lost.(i);
    into.evicted.(i) <- into.evicted.(i) + from.evicted.(i)
  done

let diff ~after ~before =
  if after.n <> before.n then invalid_arg "Metrics.diff: size mismatch";
  {
    n = after.n;
    msgs = Array.init after.n (fun i -> after.msgs.(i) - before.msgs.(i));
    bytes_sent = Array.init after.n (fun i -> after.bytes_sent.(i) - before.bytes_sent.(i));
    comps = Array.init after.n (fun i -> after.comps.(i) - before.comps.(i));
    tables = Array.copy after.tables;
    lost = Array.init after.n (fun i -> after.lost.(i) - before.lost.(i));
    evicted = Array.init after.n (fun i -> after.evicted.(i) - before.evicted.(i));
  }

let to_json t =
  let ints a = Pr_util.Json.List (Array.to_list (Array.map (fun i -> Pr_util.Json.Int i) a)) in
  Pr_util.Json.Obj
    [
      ("n", Pr_util.Json.Int t.n);
      ("messages", ints t.msgs);
      ("bytes", ints t.bytes_sent);
      ("computations", ints t.comps);
      ("tables", ints t.tables);
      ("losses", ints t.lost);
      ("evictions", ints t.evicted);
    ]

let ( let* ) = Result.bind

let of_json j =
  let module J = Pr_util.Json in
  let int_array name =
    match J.member name j with
    | None -> Error (Printf.sprintf "missing field %S" name)
    | Some v ->
      let* items = J.to_list v in
      let* ints =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* i = J.to_int item in
            Ok (i :: acc))
          (Ok []) items
      in
      Ok (Array.of_list (List.rev ints))
  in
  let* n = J.int_member "n" j in
  let* msgs = int_array "messages" in
  let* bytes_sent = int_array "bytes" in
  let* comps = int_array "computations" in
  let* tables = int_array "tables" in
  (* Pre-fault-era documents carry no losses array; treat it as zeros. *)
  let* lost =
    match J.member "losses" j with
    | None -> Ok (Array.make n 0)
    | Some _ -> int_array "losses"
  in
  (* Likewise for pre-serving-layer documents without evictions. *)
  let* evicted =
    match J.member "evictions" j with
    | None -> Ok (Array.make n 0)
    | Some _ -> int_array "evictions"
  in
  if
    Array.length msgs <> n || Array.length bytes_sent <> n || Array.length comps <> n
    || Array.length tables <> n || Array.length lost <> n || Array.length evicted <> n
  then Error "per-AD array lengths disagree with n"
  else Ok { n; msgs; bytes_sent; comps; tables; lost; evicted }

let load_series t =
  let floats a = Array.map float_of_int a in
  [
    ("messages", floats t.msgs);
    ("bytes", floats t.bytes_sent);
    ("computations", floats t.comps);
  ]

let pp ppf t =
  Format.fprintf ppf "msgs=%d bytes=%d comp=%d tables=%d lost=%d" (messages t) (bytes t)
    (computations t) (table_entries t) (msgs_lost t)

module Pqueue = Pr_util.Pqueue
module Trace = Pr_obs.Trace
module Reg = Pr_telemetry.Registry
module Flight = Pr_telemetry.Flight

let log_src = Logs.Src.create "pr.engine" ~doc:"Discrete-event engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable executed : int;
  mutable trace : Trace.t;
  mutable observer : (time:float -> pending:int -> unit) option;
  (* Registry handles resolved once at creation; the event loop never
     hashes a metric name. *)
  m_events : Reg.counter;
  m_depth : Reg.gauge;
  m_rate : Reg.gauge;
}

let create () =
  {
    queue = Pqueue.create ();
    clock = 0.0;
    executed = 0;
    trace = Trace.disabled;
    observer = None;
    m_events = Reg.counter Reg.default "engine.events";
    m_depth = Reg.gauge Reg.default "engine.queue_depth";
    m_rate = Reg.gauge Reg.default "engine.events_per_sec";
  }

let now t = t.clock

let set_trace t trace = t.trace <- trace

let trace t = t.trace

let set_observer t obs = t.observer <- obs

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Pqueue.add t.queue ~priority:(t.clock +. delay) f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Pqueue.add t.queue ~priority:time f

let pending t = Pqueue.length t.queue

type stop_reason = Drained | Reached_limit

(* Queue-depth counter cadence: every 64 executed events keeps the
   trace a small fraction of the event count while still resolving the
   flooding bursts that dominate queue depth. The same cadence feeds
   the engine.queue_depth gauge. *)
let depth_sample_mask = 63

let run ?(max_events = 10_000_000) t =
  let budget = ref max_events in
  let executed_at_start = t.executed in
  let wall_start = Sys.time () in
  let rec loop () =
    if !budget <= 0 then begin
      Log.warn (fun m ->
          m "event limit reached: %d events executed, %d still pending at t=%g"
            t.executed (Pqueue.length t.queue) t.clock);
      Flight.note Flight.global ~ts:t.clock
        ~value:(float_of_int (Pqueue.length t.queue))
        ~detail:"event budget exhausted with work pending"
        "engine.reached_limit";
      Reached_limit
    end
    else
      match Pqueue.pop t.queue with
      | None -> Drained
      | Some (time, f) ->
        t.clock <- time;
        t.executed <- t.executed + 1;
        Reg.inc t.m_events;
        decr budget;
        f ();
        if t.executed land depth_sample_mask = 0 then begin
          let depth = Pqueue.length t.queue in
          Reg.set t.m_depth (float_of_int depth);
          if Trace.enabled t.trace then
            Trace.counter t.trace ~ts:t.clock ~tid:0
              ~value:(float_of_int depth) "engine.queue_depth"
        end;
        (match t.observer with
        | Some obs -> obs ~time:t.clock ~pending:(Pqueue.length t.queue)
        | None -> ());
        loop ()
  in
  let reason = loop () in
  let wall = Sys.time () -. wall_start in
  if wall > 0.0 then
    Reg.set t.m_rate (float_of_int (t.executed - executed_at_start) /. wall);
  reason

let events_executed t = t.executed

module Pqueue = Pr_util.Pqueue
module Trace = Pr_obs.Trace
module Reg = Pr_telemetry.Registry
module Flight = Pr_telemetry.Flight

let log_src = Logs.Src.create "pr.engine" ~doc:"Discrete-event engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ===== Sharded-mode event keys ======================================

   The sequential engine executes events in (time, insertion-seq)
   order — {!Pr_util.Pqueue} breaks time ties with a global FIFO
   counter. The sharded engine reproduces the SAME total order without
   a global counter: an event is keyed (time, parent, k), where
   [parent] identifies the event whose execution scheduled it and [k]
   numbers the schedule calls that parent made. Two time-tied events
   compare by (parent execution order, k), which is exactly their
   sequential insertion order, so the sharded engine executes events
   in the sequential engine's order event-for-event — that is the
   whole byte-identity guarantee.

   Parent order is materialized lazily. Every executed event owns a
   [pkey]; its global sequence number [g] is assigned when the window
   synchronizer merges the per-shard execution logs (immediately for
   events executed on the main domain). Until then [g] is -1 and the
   per-shard [lseq] stands in: two unfinalized parents can only meet
   in one shard's queue if both executed on that shard in the current
   window (cross-shard events are inserted at barriers, after
   finalization), and there [lseq] order = execution order = the
   eventual [g] order. Finalization therefore never reorders a live
   heap. *)

type pkey = { mutable g : int; lseq : int }

type ev = { etime : float; par : pkey; k : int; fn : unit -> unit }

let compare_ev a b =
  let c = Float.compare a.etime b.etime in
  if c <> 0 then c
  else if a.par == b.par then compare a.k b.k
  else
    let ga = a.par.g and gb = b.par.g in
    if ga >= 0 && gb >= 0 then compare ga gb
    else if ga >= 0 then -1 (* finalized parents ran before any unfinalized *)
    else if gb >= 0 then 1
    else compare a.par.lseq b.par.lseq

(* A plain binary heap over [ev]; compared with {!compare_ev} so ties
   resolve without any shared counter. *)
module Evheap = struct
  type t = { mutable a : ev array; mutable len : int }

  let dummy = { etime = 0.0; par = { g = 0; lseq = 0 }; k = 0; fn = ignore }

  let create () = { a = Array.make 64 dummy; len = 0 }

  let length h = h.len

  let add h e =
    if h.len = Array.length h.a then begin
      let b = Array.make (2 * Array.length h.a) dummy in
      Array.blit h.a 0 b 0 h.len;
      h.a <- b
    end;
    let a = h.a in
    let i = ref h.len in
    h.len <- h.len + 1;
    a.(!i) <- e;
    let up = ref true in
    while !up && !i > 0 do
      let p = (!i - 1) / 2 in
      if compare_ev a.(!i) a.(p) < 0 then begin
        let tmp = a.(p) in
        a.(p) <- a.(!i);
        a.(!i) <- tmp;
        i := p
      end
      else up := false
    done

  let peek h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      let last = h.a.(h.len) in
      h.a.(h.len) <- dummy;
      if h.len > 0 then begin
        h.a.(0) <- last;
        let a = h.a and n = h.len in
        let i = ref 0 in
        let down = ref true in
        while !down do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let m = ref !i in
          if l < n && compare_ev a.(l) a.(!m) < 0 then m := l;
          if r < n && compare_ev a.(r) a.(!m) < 0 then m := r;
          if !m <> !i then begin
            let tmp = a.(!m) in
            a.(!m) <- a.(!i);
            a.(!i) <- tmp;
            i := !m
          end
          else down := false
        done
      end;
      Some top
    end
end

type wentry = { wev : ev; own : pkey }

let dummy_wentry = { wev = Evheap.dummy; own = Evheap.dummy.par }

(* One shard's half of the engine. Only its worker domain touches the
   mutable fields during a window; the main domain touches them only
   between barriers, when the worker is parked. *)
type lane = {
  lid : int;
  heap : Evheap.t;
  mutable lclock : float;
  mutable cur : pkey; (* pkey of the event currently executing *)
  mutable next_k : int;
  mutable next_lseq : int; (* never reset: unique per lane forever *)
  mutable wlog : wentry array; (* events executed this window, in order *)
  mutable wlen : int;
  outbox : ev list array; (* per destination lane, newest first *)
  mutable out_nonempty : bool;
  lreg : Reg.t;
  lm_events : Reg.counter;
  mutable lexec : int;
  mutable ltrace : Trace.t;
  mutable lexn : exn option;
}

type shared = {
  spec : Shard.spec;
  lanes : lane array;
  control : Evheap.t;
  mutable next_g : int;
  mutable ctl_par : pkey option; (* set while a control event executes *)
  mutable ctl_k : int;
  (* Window coordination: a classic monitor. The main domain publishes
     (lim_time/lim_ev/quota), bumps [round] and broadcasts; each worker
     executes one window per round and the last one signals [done_]. *)
  lock : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable round : int;
  mutable active : int;
  mutable stop : bool;
  mutable lim_time : float;
  mutable lim_ev : ev option;
  mutable quota : int;
  mutable hooks : (unit -> unit) list;
}

type mode = Single | Sharded of shared

type t = {
  id : int;
  queue : (unit -> unit) Pqueue.t; (* single mode only *)
  mutable clock : float;
  mutable executed : int;
  mutable trace : Trace.t;
  mutable observer : (time:float -> pending:int -> unit) option;
  (* Registry handles resolved once at creation; the event loop never
     hashes a metric name. *)
  m_events : Reg.counter;
  m_depth : Reg.gauge;
  m_rate : Reg.gauge;
  mode : mode;
}

let next_id = Atomic.make 0

(* Which shard the calling domain is executing for, per engine:
   (engine id, lane id). The main domain keeps the default (-1, -1). *)
let ctx : (int * int) Domain.DLS.key = Domain.DLS.new_key (fun () -> (-1, -1))

let lane_of t =
  match t.mode with
  | Single -> None
  | Sharded s ->
    let eid, li = Domain.DLS.get ctx in
    if eid = t.id then Some s.lanes.(li) else None

let make_lane nlanes i =
  let lreg = Reg.create () in
  {
    lid = i;
    heap = Evheap.create ();
    lclock = 0.0;
    cur = { g = 0; lseq = 0 };
    next_k = 0;
    next_lseq = 0;
    wlog = Array.make 64 dummy_wentry;
    wlen = 0;
    outbox = Array.make nlanes [];
    out_nonempty = false;
    lreg;
    lm_events = Reg.counter lreg "engine.events";
    lexec = 0;
    ltrace = Trace.disabled;
    lexn = None;
  }

let create ?shards () =
  let mode =
    match shards with
    | None -> Single
    | Some spec when Shard.count spec <= 1 -> Single
    | Some spec ->
      let nlanes = Shard.count spec in
      Sharded
        {
          spec;
          lanes = Array.init nlanes (make_lane nlanes);
          control = Evheap.create ();
          next_g = 0;
          ctl_par = None;
          ctl_k = 0;
          lock = Mutex.create ();
          work = Condition.create ();
          done_ = Condition.create ();
          round = 0;
          active = 0;
          stop = false;
          lim_time = 0.0;
          lim_ev = None;
          quota = 0;
          hooks = [];
        }
  in
  {
    id = Atomic.fetch_and_add next_id 1;
    queue = Pqueue.create ();
    clock = 0.0;
    executed = 0;
    trace = Trace.disabled;
    observer = None;
    m_events = Reg.counter Reg.default "engine.events";
    m_depth = Reg.gauge Reg.default "engine.queue_depth";
    m_rate = Reg.gauge Reg.default "engine.events_per_sec";
    mode;
  }

let shard_count t =
  match t.mode with Single -> 1 | Sharded s -> Array.length s.lanes

let current_shard t = match lane_of t with Some ln -> ln.lid | None -> -1

let shard_registry t i =
  match t.mode with Single -> Reg.default | Sharded s -> s.lanes.(i).lreg

let current_registry t =
  match lane_of t with Some ln -> ln.lreg | None -> Reg.default

let shard_owner t ad =
  match t.mode with Single -> 0 | Sharded s -> Shard.owner s.spec ad

let add_end_of_run_hook t f =
  match t.mode with Single -> () | Sharded s -> s.hooks <- f :: s.hooks

let now t = match lane_of t with Some ln -> ln.lclock | None -> t.clock

let set_trace t trace =
  t.trace <- trace;
  match t.mode with
  | Single -> ()
  | Sharded s ->
    Array.iter
      (fun ln ->
        ln.ltrace <-
          (if Trace.capacity trace > 0 then
             Trace.create ~capacity:(Trace.capacity trace) ()
           else Trace.disabled))
      s.lanes

let trace t = match lane_of t with Some ln -> ln.ltrace | None -> t.trace

let set_observer t obs = t.observer <- obs

(* Key construction for the calling context. Main-context inserts that
   happen outside any control event (setup, between runs) synthesize a
   fresh root parent per insert, so root g order = insertion order =
   the sequential FIFO order for time ties. *)
let main_key s ~time fn =
  match s.ctl_par with
  | Some par ->
    let k = s.ctl_k in
    s.ctl_k <- k + 1;
    { etime = time; par; k; fn }
  | None ->
    let par = { g = s.next_g; lseq = 0 } in
    s.next_g <- s.next_g + 1;
    { etime = time; par; k = 0; fn }

let lane_key ln ~time fn =
  let k = ln.next_k in
  ln.next_k <- k + 1;
  { etime = time; par = ln.cur; k; fn }

let sched t ~time f =
  match t.mode with
  | Single -> Pqueue.add t.queue ~priority:time f
  | Sharded s -> (
    match lane_of t with
    | Some ln -> Evheap.add ln.heap (lane_key ln ~time f)
    | None -> Evheap.add s.control (main_key s ~time f))

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  sched t ~time:(now t +. delay) f

let schedule_at t ~time f =
  if time < now t then invalid_arg "Engine.schedule_at: time in the past";
  sched t ~time f

let schedule_for t ~ad ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule_for: negative delay";
  match t.mode with
  | Single -> Pqueue.add t.queue ~priority:(t.clock +. delay) f
  | Sharded s -> (
    let dst = Shard.owner s.spec ad in
    match lane_of t with
    | Some ln ->
      let e = lane_key ln ~time:(ln.lclock +. delay) f in
      if dst = ln.lid then Evheap.add ln.heap e
      else begin
        ln.outbox.(dst) <- e :: ln.outbox.(dst);
        ln.out_nonempty <- true
      end
    | None ->
      (* Workers are parked whenever the main domain runs, so pushing
         straight into the owner's heap is race-free. *)
      Evheap.add s.lanes.(dst).heap (main_key s ~time:(t.clock +. delay) f))

let pending t =
  match t.mode with
  | Single -> Pqueue.length t.queue
  | Sharded s ->
    Array.fold_left
      (fun acc ln -> acc + Evheap.length ln.heap)
      (Evheap.length s.control) s.lanes

let pending_by_shard t =
  match t.mode with
  | Single -> [| Pqueue.length t.queue |]
  | Sharded s -> Array.map (fun ln -> Evheap.length ln.heap) s.lanes

type stop_reason = Drained | Reached_limit

(* Queue-depth counter cadence: every 64 executed events keeps the
   trace a small fraction of the event count while still resolving the
   flooding bursts that dominate queue depth. The same cadence feeds
   the engine.queue_depth gauge. *)
let depth_sample_mask = 63

(* ===== single-shard run: the original engine, verbatim ============== *)

let run_single ~max_events t =
  let budget = ref max_events in
  let executed_at_start = t.executed in
  let wall_start = Sys.time () in
  let rec loop () =
    if !budget <= 0 then begin
      Log.warn (fun m ->
          m "event limit reached: %d events executed, %d still pending at t=%g"
            t.executed (Pqueue.length t.queue) t.clock);
      Flight.note Flight.global ~ts:t.clock
        ~value:(float_of_int (Pqueue.length t.queue))
        ~detail:"event budget exhausted with work pending"
        "engine.reached_limit";
      Reached_limit
    end
    else
      match Pqueue.pop t.queue with
      | None -> Drained
      | Some (time, f) ->
        t.clock <- time;
        t.executed <- t.executed + 1;
        Reg.inc t.m_events;
        decr budget;
        f ();
        if t.executed land depth_sample_mask = 0 then begin
          let depth = Pqueue.length t.queue in
          Reg.set t.m_depth (float_of_int depth);
          if Trace.enabled t.trace then
            Trace.counter t.trace ~ts:t.clock ~tid:0
              ~value:(float_of_int depth) "engine.queue_depth"
        end;
        (match t.observer with
        | Some obs -> obs ~time:t.clock ~pending:(Pqueue.length t.queue)
        | None -> ());
        loop ()
  in
  let reason = loop () in
  let wall = Sys.time () -. wall_start in
  if wall > 0.0 then
    Reg.set t.m_rate (float_of_int (t.executed - executed_at_start) /. wall);
  reason

(* ===== sharded run ================================================== *)

let before_limit s e =
  match s.lim_ev with
  | Some le -> compare_ev e le < 0
  | None -> e.etime < s.lim_time

let exec_lane_event ln e =
  ln.lclock <- e.etime;
  let own = { g = -1; lseq = ln.next_lseq } in
  ln.next_lseq <- ln.next_lseq + 1;
  ln.cur <- own;
  ln.next_k <- 0;
  if ln.wlen = Array.length ln.wlog then begin
    let b = Array.make (2 * ln.wlen) dummy_wentry in
    Array.blit ln.wlog 0 b 0 ln.wlen;
    ln.wlog <- b
  end;
  ln.wlog.(ln.wlen) <- { wev = e; own };
  ln.wlen <- ln.wlen + 1;
  ln.lexec <- ln.lexec + 1;
  Reg.inc ln.lm_events;
  e.fn ();
  if ln.lexec land depth_sample_mask = 0 && Trace.enabled ln.ltrace then
    Trace.counter ln.ltrace ~ts:ln.lclock ~tid:ln.lid
      ~value:(float_of_int (Evheap.length ln.heap))
      "engine.queue_depth"

let run_window s ln =
  let quota = ref s.quota in
  let go = ref true in
  while !go do
    if !quota <= 0 then go := false
    else
      match Evheap.peek ln.heap with
      | None -> go := false
      | Some e ->
        if before_limit s e then begin
          ignore (Evheap.pop ln.heap);
          exec_lane_event ln e;
          decr quota
        end
        else go := false
  done

let worker t s ln start_round =
  Domain.DLS.set ctx (t.id, ln.lid);
  Mutex.lock s.lock;
  let seen = ref start_round in
  let live = ref true in
  while !live do
    while s.round = !seen && not s.stop do
      Condition.wait s.work s.lock
    done;
    if s.stop then live := false
    else begin
      seen := s.round;
      Mutex.unlock s.lock;
      (try run_window s ln with e -> ln.lexn <- Some e);
      Mutex.lock s.lock;
      s.active <- s.active - 1;
      if s.active = 0 then Condition.signal s.done_
    end
  done;
  Mutex.unlock s.lock

(* Merge the per-shard window logs into the global execution order and
   assign [g]s. At every step each head entry's parent is already
   finalized (a same-window parent precedes its children in its own
   lane's log), so {!compare_ev} on heads is total and stable — the
   merge reproduces the order the sequential engine would have
   executed this window's events in. *)
let finalize_windows s =
  let lanes = s.lanes in
  let nl = Array.length lanes in
  let idx = Array.make nl 0 in
  let total = Array.fold_left (fun a ln -> a + ln.wlen) 0 lanes in
  for _ = 1 to total do
    let best = ref (-1) in
    for j = 0 to nl - 1 do
      if idx.(j) < lanes.(j).wlen then
        if
          !best < 0
          || compare_ev lanes.(j).wlog.(idx.(j)).wev
               lanes.(!best).wlog.(idx.(!best)).wev
             < 0
        then best := j
    done;
    let entry = lanes.(!best).wlog.(idx.(!best)) in
    entry.own.g <- s.next_g;
    s.next_g <- s.next_g + 1;
    idx.(!best) <- idx.(!best) + 1
  done;
  Array.iter
    (fun ln ->
      for i = 0 to ln.wlen - 1 do
        ln.wlog.(i) <- dummy_wentry
      done;
      ln.wlen <- 0)
    lanes;
  total

(* Deliver cross-shard events collected during the window. Times are
   clamped to the window limit: network sends never need it (a send at
   u crosses shards no earlier than u + delta >= limit), but delay-0
   deferrals from {!schedule_for} land at the next window boundary. *)
let drain_outboxes s =
  let nl = Array.length s.lanes in
  Array.iter
    (fun src ->
      if src.out_nonempty then begin
        for dst = 0 to nl - 1 do
          match src.outbox.(dst) with
          | [] -> ()
          | l ->
            src.outbox.(dst) <- [];
            List.iter
              (fun e ->
                let e =
                  if e.etime < s.lim_time then { e with etime = s.lim_time }
                  else e
                in
                Evheap.add s.lanes.(dst).heap e)
              (List.rev l)
        done;
        src.out_nonempty <- false
      end)
    s.lanes

let reached_limit_sharded t s =
  let per = Array.map (fun ln -> Evheap.length ln.heap) s.lanes in
  let pend = Array.fold_left ( + ) (Evheap.length s.control) per in
  let buf = Buffer.create 64 in
  Array.iteri
    (fun i d ->
      Buffer.add_string buf (Printf.sprintf "%s%d:%d" (if i > 0 then " " else "") i d))
    per;
  let depths = Buffer.contents buf in
  Log.warn (fun m ->
      m
        "event limit reached: %d events executed, %d still pending at t=%g \
         (per-shard pending [%s], control %d)"
        t.executed pend t.clock depths (Evheap.length s.control));
  Flight.note Flight.global ~ts:t.clock ~value:(float_of_int pend)
    ~detail:
      (Printf.sprintf
         "event budget exhausted with work pending; per-shard pending [%s], \
          control %d"
         depths (Evheap.length s.control))
    "engine.reached_limit";
  Reached_limit

let run_sharded ~max_events t s =
  let start = t.executed in
  let wall_start = Sys.time () in
  s.stop <- false;
  Array.iter (fun ln -> ln.lexn <- None) s.lanes;
  let start_round = s.round in
  let doms =
    Array.map (fun ln -> Domain.spawn (fun () -> worker t s ln start_round)) s.lanes
  in
  let park_and_join () =
    Mutex.lock s.lock;
    s.stop <- true;
    Condition.broadcast s.work;
    Mutex.unlock s.lock;
    Array.iter Domain.join doms
  in
  let lane_min () =
    Array.fold_left
      (fun acc ln ->
        match (Evheap.peek ln.heap, acc) with
        | None, _ -> acc
        | (Some _ as e), None -> e
        | Some e, Some b -> if compare_ev e b < 0 then Some e else Some b)
      None s.lanes
  in
  let observe () =
    match t.observer with
    | Some obs -> obs ~time:t.clock ~pending:(pending t)
    | None -> ()
  in
  let rec loop () =
    if t.executed - start >= max_events then reached_limit_sharded t s
    else
      match (Evheap.peek s.control, lane_min ()) with
      | None, None -> Drained
      | copt, lopt ->
        let control_first =
          match (copt, lopt) with
          | Some ce, Some le -> compare_ev ce le < 0
          | Some _, None -> true
          | None, _ -> false
        in
        if control_first then begin
          (* Control events — churn, fault actions, probes, anything
             scheduled from the main domain — execute one at a time on
             the main domain while every worker is parked, exactly when
             their key is globally minimal. They may therefore read and
             write state across shards, which is what keeps churn /
             nemesis / chaos closures working unmodified. *)
          let ce = Option.get copt in
          ignore (Evheap.pop s.control);
          t.clock <- ce.etime;
          let own = { g = s.next_g; lseq = 0 } in
          s.next_g <- s.next_g + 1;
          s.ctl_par <- Some own;
          s.ctl_k <- 0;
          t.executed <- t.executed + 1;
          Reg.inc t.m_events;
          ce.fn ();
          s.ctl_par <- None;
          observe ();
          loop ()
        end
        else begin
          (* Conservative window: all events with key below
             min(W + delta, next control key) are causally independent
             across shards, so the workers run them in parallel. *)
          let le = Option.get lopt in
          let w = le.etime in
          let e0 = w +. Shard.delta s.spec in
          (match copt with
          | Some ce when ce.etime <= e0 ->
            s.lim_time <- ce.etime;
            s.lim_ev <- copt
          | _ ->
            s.lim_time <- e0;
            s.lim_ev <- None);
          s.quota <- max_events - (t.executed - start);
          Mutex.lock s.lock;
          s.active <- Array.length s.lanes;
          s.round <- s.round + 1;
          Condition.broadcast s.work;
          while s.active > 0 do
            Condition.wait s.done_ s.lock
          done;
          Mutex.unlock s.lock;
          Array.iter
            (fun ln ->
              match ln.lexn with
              | Some e ->
                park_and_join ();
                raise e
              | None -> ())
            s.lanes;
          let n = finalize_windows s in
          t.executed <- t.executed + n;
          drain_outboxes s;
          Array.iter
            (fun ln -> if ln.lclock > t.clock then t.clock <- ln.lclock)
            s.lanes;
          Reg.set t.m_depth (float_of_int (pending t));
          observe ();
          loop ()
        end
  in
  let reason = loop () in
  park_and_join ();
  if Trace.capacity t.trace > 0 then
    Trace.merge_from t.trace (Array.map (fun ln -> ln.ltrace) s.lanes);
  List.iter (fun f -> f ()) (List.rev s.hooks);
  Array.iter
    (fun ln ->
      Reg.absorb Reg.default (Reg.snapshot ln.lreg);
      Reg.clear ln.lreg)
    s.lanes;
  Reg.set t.m_depth (float_of_int (pending t));
  let wall = Sys.time () -. wall_start in
  if wall > 0.0 then
    Reg.set t.m_rate (float_of_int (t.executed - start) /. wall);
  reason

let run ?(max_events = 10_000_000) t =
  match t.mode with
  | Single -> run_single ~max_events t
  | Sharded s -> run_sharded ~max_events t s

let events_executed t = t.executed

module Pqueue = Pr_util.Pqueue
module Trace = Pr_obs.Trace

let log_src = Logs.Src.create "pr.engine" ~doc:"Discrete-event engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable executed : int;
  mutable trace : Trace.t;
  mutable observer : (time:float -> pending:int -> unit) option;
}

let create () =
  {
    queue = Pqueue.create ();
    clock = 0.0;
    executed = 0;
    trace = Trace.disabled;
    observer = None;
  }

let now t = t.clock

let set_trace t trace = t.trace <- trace

let trace t = t.trace

let set_observer t obs = t.observer <- obs

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Pqueue.add t.queue ~priority:(t.clock +. delay) f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Pqueue.add t.queue ~priority:time f

let pending t = Pqueue.length t.queue

type stop_reason = Drained | Reached_limit

(* Queue-depth counter cadence: every 64 executed events keeps the
   trace a small fraction of the event count while still resolving the
   flooding bursts that dominate queue depth. *)
let depth_sample_mask = 63

let run ?(max_events = 10_000_000) t =
  let budget = ref max_events in
  let rec loop () =
    if !budget <= 0 then begin
      Log.warn (fun m ->
          m "event limit reached: %d events executed, %d still pending at t=%g"
            t.executed (Pqueue.length t.queue) t.clock);
      Reached_limit
    end
    else
      match Pqueue.pop t.queue with
      | None -> Drained
      | Some (time, f) ->
        t.clock <- time;
        t.executed <- t.executed + 1;
        decr budget;
        f ();
        if Trace.enabled t.trace && t.executed land depth_sample_mask = 0 then
          Trace.counter t.trace ~ts:t.clock ~tid:0
            ~value:(float_of_int (Pqueue.length t.queue))
            "engine.queue_depth";
        (match t.observer with
        | Some obs -> obs ~time:t.clock ~pending:(Pqueue.length t.queue)
        | None -> ());
        loop ()
  in
  loop ()

let events_executed t = t.executed

(** The message-passing substrate connecting AD routing agents.

    Wraps a {!Pr_topology.Graph} with dynamic link state and delivers
    protocol messages between neighboring ADs through the
    {!Engine}, charging each send to {!Metrics}. Messages in flight
    when their link fails are lost — protocols must tolerate this, as
    the paper's model requires adaptivity to inter-AD topology change
    (§2.2). *)

type 'msg t

val log_src : Logs.src
(** Debug log source ("pr.network"): set its level to [Debug] (and
    install a reporter) to trace sends, in-flight losses and link
    state changes. *)

val create :
  ?trace:Pr_obs.Trace.t -> Engine.t -> Pr_topology.Graph.t -> Metrics.t -> 'msg t
(** All links start up. Handlers must be installed before any
    traffic flows. When [trace] (default {!Pr_obs.Trace.disabled}) is
    enabled, the network records instant events for sends
    (["net.send"], track = sender), in-flight losses (["net.lost"],
    track = intended receiver), link flaps (["link.up"] /
    ["link.down"]) and AD crashes (["node.up"] / ["node.down"]). *)

val graph : 'msg t -> Pr_topology.Graph.t

val engine : 'msg t -> Engine.t

val metrics : 'msg t -> Metrics.t

val trace : 'msg t -> Pr_obs.Trace.t
(** The recorder passed at creation; {!Pr_obs.Trace.disabled} when
    none was. Protocol drivers record their route-computation spans on
    this. *)

val set_message_handler :
  'msg t -> (at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id -> 'msg -> unit) -> unit
(** Called on delivery of each message at the receiving AD. *)

val set_link_handler :
  'msg t -> (at:Pr_topology.Ad.id -> link:Pr_topology.Link.id -> up:bool -> unit) -> unit
(** Called at both endpoints when a link changes state. *)

val set_delivery_interposer :
  'msg t ->
  (src:Pr_topology.Ad.id -> dst:Pr_topology.Ad.id -> link:Pr_topology.Link.id -> float list)
  option ->
  unit
(** Install (or remove, with [None]) a fault-plan hook consulted on
    every send. It returns the extra delivery delays of the message's
    copies: [\[0.0\]] is the unperturbed delivery, [\[\]] drops the
    message in flight (counted in {!Pr_sim.Metrics.msgs_lost}, the
    send still charged), several entries duplicate it, and non-zero
    entries delay it. Without an interposer the only cost is one match
    per send. *)

val set_message_tamper :
  'msg t ->
  (src:Pr_topology.Ad.id -> dst:Pr_topology.Ad.id -> bytes:int -> 'msg -> 'msg option)
  option ->
  unit
(** Install (or remove) a Byzantine hook consulted on every send,
    before delivery scheduling: returning [Some m'] substitutes the
    in-flight message, [None] passes it unchanged. The nemesis uses
    this to model an attacker AD corrupting the updates it emits (and
    to capture them for later replay). Without a hook the only cost is
    one match per send. *)

val send :
  'msg t -> src:Pr_topology.Ad.id -> dst:Pr_topology.Ad.id -> bytes:int -> 'msg -> unit
(** Send over (the cheapest) link between neighbors [src] and [dst].
    Silently dropped when no such link is up — protocols discover
    failures via the link handler, not via send errors. The send is
    charged to metrics even if the message is later lost (the bits
    were transmitted). *)

val broadcast :
  'msg t -> src:Pr_topology.Ad.id -> bytes:int -> 'msg -> int
(** Send to every currently reachable neighbor; returns how many were
    sent. *)

val link_is_up : 'msg t -> Pr_topology.Link.id -> bool

val node_is_up : 'msg t -> Pr_topology.Ad.id -> bool

val set_node_state : 'msg t -> Pr_topology.Ad.id -> up:bool -> unit
(** Crash ([up:false]) or restart an AD. A crashed AD transmits
    nothing (its sends are silently suppressed, not charged) and
    receives nothing (deliveries addressed to it are lost and
    counted). Link state is independent: callers modeling a gateway
    crash take the AD's links down alongside, so neighbors observe the
    outage through their link handlers — see
    [Pr_proto.Runner.Make.crash_ad]. No-op when the state is
    unchanged. *)

val adjacent_and_up : 'msg t -> Pr_topology.Ad.id -> Pr_topology.Ad.id -> bool
(** Some up link joins the two ADs. *)

val up_neighbors : 'msg t -> Pr_topology.Ad.id -> Pr_topology.Ad.id list
(** Deduplicated neighbors reachable over at least one up link. *)

val iter_up_neighbors : 'msg t -> Pr_topology.Ad.id -> f:(Pr_topology.Ad.id -> unit) -> unit
(** Allocation-free {!up_neighbors}: each reachable neighbor once, in
    increasing id order. The form protocol inner loops should use. *)

val up_link_between :
  'msg t -> Pr_topology.Ad.id -> Pr_topology.Ad.id -> Pr_topology.Link.id option
(** The cheapest up link joining the two ADs, if any. *)

val set_link_state : 'msg t -> Pr_topology.Link.id -> up:bool -> unit
(** Change a link's state immediately and notify both endpoints
    through the link handler. No-op when the state is unchanged. *)

val fail_random_link :
  'msg t -> Pr_util.Rng.t -> ?kind:Pr_topology.Link.kind -> unit -> Pr_topology.Link.id option
(** Fail a uniformly chosen currently-up link (optionally of a given
    kind). Returns the failed link. *)

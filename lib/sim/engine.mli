(** Discrete-event simulation engine.

    A simple event-list simulator: closures scheduled at simulated
    times, executed in time order with deterministic FIFO tie-breaking
    (see {!Pr_util.Pqueue}). Routing protocols are message-driven, so a
    drained queue means the protocol has converged.

    {2 Sharded execution}

    [create ~shards:spec ()] partitions the event queue by the AD
    ownership in the {!Shard.spec} and executes one worker domain per
    shard. Shards advance in lockstep conservative windows of width
    [Shard.delta spec] (the minimum cross-shard link delay): events in
    the window are causally independent across shards and run in
    parallel; cross-shard messages are collected in per-shard outboxes
    and delivered at the window barrier. Events scheduled from the main
    domain ("control" events: churn, fault actions, probes) execute one
    at a time on the main domain with every worker parked, so they may
    touch state on any shard.

    Determinism: events are keyed (time, parent, k) — the parent's
    position in the global execution order plus the index of the
    schedule call within the parent — which reproduces exactly the
    sequential engine's (time, insertion-order) execution order. A
    sharded run therefore executes the same events in the same order
    with the same clock values as the sequential engine; shard count 1
    IS the sequential engine (same code path). The one deliberate
    exception: {!schedule_for} from a worker domain to a foreign shard
    defers to the next window boundary.

    Scheduling context rules: [schedule]/[schedule_at] from a worker
    domain go to that worker's own shard; from the main domain they
    become control events. Cross-shard scheduling must go through
    {!schedule_for}. Observers run on the main domain (after every
    control event and at window barriers) and must not schedule. *)

type t

val create : ?shards:Shard.spec -> unit -> t
(** [create ()] (or a one-shard spec) is the sequential engine. *)

val shard_count : t -> int
(** 1 for the sequential engine. *)

val current_shard : t -> int
(** The shard whose worker domain is executing the calling code, or -1
    on the main domain (setup, control events, between runs). *)

val shard_owner : t -> int -> int
(** The shard owning an AD; 0 for the sequential engine. *)

val shard_registry : t -> int -> Pr_telemetry.Registry.t
(** The per-shard telemetry registry. Counters and histograms recorded
    there during a run are absorbed into
    {!Pr_telemetry.Registry.default} (in shard order, then cleared)
    when [run] returns, so post-run totals match the sequential
    engine's. {!Pr_telemetry.Registry.default} for the sequential
    engine. *)

val current_registry : t -> Pr_telemetry.Registry.t
(** The registry hot-path instrumentation must record to in the
    calling context: the executing shard's registry on a worker
    domain, {!Pr_telemetry.Registry.default} on the main domain. *)

val add_end_of_run_hook : t -> (unit -> unit) -> unit
(** Register a hook called on the main domain when a sharded [run]
    returns, after workers are parked and before per-shard registries
    are absorbed — {!Network} flushes its cross-shard loss shadows
    here. Ignored by the sequential engine. *)

val now : t -> float
(** Current simulated time; 0 before any event runs. On a worker
    domain this is the executing shard's clock. *)

val set_trace : t -> Pr_obs.Trace.t -> unit
(** Attach a trace recorder. While enabled, [run] samples an
    ["engine.queue_depth"] counter every 64 executed events. Defaults
    to {!Pr_obs.Trace.disabled}: no recording, no overhead beyond one
    branch per event. A sharded engine gives each shard a private
    recorder of the same capacity (tid = shard id) and folds them back
    into the primary, in timestamp order, when [run] returns. *)

val trace : t -> Pr_obs.Trace.t
(** The recorder for the calling context: the executing shard's on a
    worker domain, the primary otherwise. *)

val set_observer : t -> (time:float -> pending:int -> unit) option -> unit
(** Install a hook called after every executed event with the engine
    clock and remaining queue depth. Unlike a self-rescheduling probe
    event, an observer never keeps the queue from draining, so
    convergence (and every Metrics total) is unchanged. Used by
    {!Pr_obs.Timeline}. Under sharding it is called on the main domain
    after each control event and at each window barrier, and must not
    schedule events. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Schedule an event [delay >= 0] time units from now, in the calling
    context's shard (a control event from the main domain). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Schedule at an absolute simulated time, which must not be in the
    past. *)

val schedule_for : t -> ad:int -> delay:float -> (unit -> unit) -> unit
(** Schedule onto the shard owning [ad] — the only way to target a
    foreign shard from a worker domain. Cross-shard deliveries are
    released at the next window barrier, clamped to the window limit;
    network sends (delay >= the cross-shard link delay) are never
    actually clamped. Equivalent to {!schedule} on the sequential
    engine. *)

val pending : t -> int

val pending_by_shard : t -> int array
(** Pending events per shard (control queue excluded); a one-element
    array for the sequential engine. *)

type stop_reason =
  | Drained  (** no events left: the system has quiesced *)
  | Reached_limit  (** stopped by [max_events] — usually a divergence *)

val run : ?max_events:int -> t -> stop_reason
(** Execute events until none remain or [max_events] (default 10^7)
    have run. Returns why it stopped; hitting the limit also logs a
    warning on the ["pr.engine"] source with the executed and pending
    counts — including per-shard pending depths under sharding, so a
    stuck shard is diagnosable — and leaves a flight-recorder note.
    A sharded engine spawns its worker domains on entry and joins them
    before returning; between runs no worker domains are alive. *)

val events_executed : t -> int
(** Total events executed so far over the engine's lifetime. *)

(** Discrete-event simulation engine.

    A simple event-list simulator: closures scheduled at simulated
    times, executed in time order with deterministic FIFO tie-breaking
    (see {!Pr_util.Pqueue}). Routing protocols are message-driven, so a
    drained queue means the protocol has converged. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time; 0 before any event runs. *)

val set_trace : t -> Pr_obs.Trace.t -> unit
(** Attach a trace recorder. While enabled, [run] samples an
    ["engine.queue_depth"] counter every 64 executed events. Defaults
    to {!Pr_obs.Trace.disabled}: no recording, no overhead beyond one
    branch per event. *)

val trace : t -> Pr_obs.Trace.t

val set_observer : t -> (time:float -> pending:int -> unit) option -> unit
(** Install a hook called after every executed event with the engine
    clock and remaining queue depth. Unlike a self-rescheduling probe
    event, an observer never keeps the queue from draining, so
    convergence (and every Metrics total) is unchanged. Used by
    {!Pr_obs.Timeline}. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Schedule an event [delay >= 0] time units from now. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Schedule at an absolute simulated time, which must not be in the
    past. *)

val pending : t -> int

type stop_reason =
  | Drained  (** no events left: the system has quiesced *)
  | Reached_limit  (** stopped by [max_events] — usually a divergence *)

val run : ?max_events:int -> t -> stop_reason
(** Execute events until none remain or [max_events] (default 10^7)
    have run. Returns why it stopped; hitting the limit also logs a
    warning on the ["pr.engine"] source with the executed and pending
    counts, so divergence is diagnosable even when the caller ignores
    the variant. *)

val events_executed : t -> int
(** Total events executed so far over the engine's lifetime. *)

module Graph = Pr_topology.Graph
module Network = Pr_sim.Network
module Metrics = Pr_sim.Metrics
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Transit_policy = Pr_policy.Transit_policy
module Packet = Pr_proto.Packet
module Lsdb = Pr_proto.Lsdb
module Ls_flood = Pr_proto.Ls_flood
module Policy_route = Pr_proto.Policy_route
module Design_point = Pr_proto.Design_point

let probe_synth = Pr_proto.Probe.make "lshbh.synth"

type message = Lsdb.lsa

type node = {
  (* (src, dst, class) -> (region version, computed policy route).
     Entries are tagged with the region version they were computed at
     and discarded lazily on lookup — an invalidating database change
     makes every tagged entry stale at once without an eager flush. *)
  route_cache : (int * int * int, int * Pr_topology.Path.t option) Hashtbl.t;
  (* Delta-scoped invalidation: [region_version] advances to the
     database version only when a drained delta can actually touch
     routes over this AD's reachable region; changes confined to
     disconnected parts of the internet leave the cache valid. [reach]
     memoizes the region between out-of-scope deltas. *)
  mutable region_version : int;
  mutable reach : Pr_util.Bitset.t option;
}

type t = {
  graph : Graph.t;
  net : message Network.t;
  flood : Ls_flood.t;
  nodes : node array;
}

let name = "ls-hbh-pt"

let design_point =
  Design_point.make Design_point.Link_state Design_point.Hop_by_hop
    Design_point.Policy_terms

let create graph config net =
  let n = Graph.n graph in
  let terms_for ad = (Config.transit config ad).Transit_policy.terms in
  let flood = Ls_flood.create net ~terms_for () in
  {
    graph;
    net;
    flood;
    nodes =
      Array.init n (fun _ ->
          { route_cache = Hashtbl.create 32; region_version = 0; reach = None });
  }

let start t = Ls_flood.start t.flood

let handle_message t ~at ~from lsa = Ls_flood.handle_message t.flood ~at ~from lsa

let handle_link t ~at ~link:_ ~up = Ls_flood.handle_link t.flood ~at ~up

let reset_node t ~at =
  let node = t.nodes.(at) in
  Hashtbl.reset node.route_cache;
  node.reach <- None;
  Ls_flood.reset_node t.flood at

(* Drain the AD's pending delta and advance its region version iff the
   delta is in scope: some changed origin lies inside (or newly
   attaches to) the region the AD's routes are computed over. *)
let sync_region t at =
  let node = t.nodes.(at) in
  match Ls_flood.take_delta t.flood at with
  | Ls_flood.Unchanged -> ()
  | Ls_flood.Full ->
    node.region_version <- Ls_flood.db_version t.flood at;
    node.reach <- None
  | Ls_flood.Origins os ->
    let reach =
      match node.reach with
      | Some r -> r
      | None ->
        let r = Ls_flood.reachable_set t.flood at in
        node.reach <- Some r;
        r
    in
    if Ls_flood.delta_in_scope t.flood at ~reach os then begin
      node.region_version <- Ls_flood.db_version t.flood at;
      node.reach <- None
    end

(* The uniform computation every AD replicates: the policy-constrained
   shortest route for the flow, from the flow's *source*, over this
   AD's own database. Source selection criteria are NOT applied — they
   are not advertised, so no transit AD could stay consistent with
   them. *)
let compute_route t at (flow : Flow.t) =
  let n = Graph.n t.graph in
  let key = (flow.Flow.src, flow.Flow.dst, Flow.class_key flow) in
  let node = t.nodes.(at) in
  sync_region t at;
  let version = node.region_version in
  match Hashtbl.find_opt node.route_cache key with
  | Some (v, cached) when v = version -> cached
  | _ ->
    let db = Ls_flood.db t.flood at in
    let engine = Policy_route.engine db ~n flow in
    let path, work = Policy_route.shortest engine () in
    Metrics.record_computation (Network.metrics t.net) at ~work ();
    Pr_proto.Probe.computation probe_synth t.net ~at ~work ();
    Hashtbl.replace node.route_cache key (version, path);
    path

(* Adversarial surface: delegated to the shared flood. The Policy
   Terms riding in each LSA are what make this design checkable — a
   forged or leaked term fails {!Ls_flood.check_lsa}'s ownership rule
   at the first honest hop. *)

let check_update t ~at ~from:_ lsa = Ls_flood.check_lsa t.flood ~at lsa

let corrupt_update t ~rng lsa = Ls_flood.corrupt_lsa t.flood ~rng lsa

let forge_update t ~origin = Ls_flood.forge_lsa t.flood origin

let audit_state t ~at = Ls_flood.audit_db t.flood ~at

let resync t ~at ~nbr = Ls_flood.resync t.flood ~at ~nbr

let prepare_flow _t _flow = Packet.no_prep

let originate _t _packet = ()

let rec successor_on path at =
  match path with
  | [] | [ _ ] -> None
  | x :: (y :: _ as rest) -> if x = at then Some y else successor_on rest at

let forward t ~at ~from:_ packet =
  let flow = packet.Packet.flow in
  if at = flow.Flow.dst then Packet.Deliver
  else
    match compute_route t at flow with
    | None -> Packet.Drop "no policy route"
    | Some path -> (
      match successor_on path at with
      | Some next -> Packet.Forward next
      | None -> Packet.Drop "not on my computed route (inconsistent databases)")

(* Only entries computed at the current region version count as
   routing state — stale tagged entries are garbage awaiting reuse of
   their key, exactly as the eager-flush scheme would have dropped. *)
let cache_entries t ad =
  sync_region t ad;
  let version = t.nodes.(ad).region_version in
  Hashtbl.fold
    (fun _ (v, _) acc -> if v = version then acc + 1 else acc)
    t.nodes.(ad).route_cache 0

let table_entries t ad = Ls_flood.db_entries t.flood ad + cache_entries t ad

let computed_route t ~at flow = compute_route t at flow

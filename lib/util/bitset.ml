type t = { capacity : int; words : Bytes.t }

(* One byte per 8 members; Bytes gives cheap copy and equality. *)

let words_for n = (n + 7) / 8

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity = n; words = Bytes.make (words_for n) '\000' }

let capacity t = t.capacity

let copy t = { capacity = t.capacity; words = Bytes.copy t.words }

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  let b = Char.code (Bytes.get t.words (i lsr 3)) in
  b land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let idx = i lsr 3 in
  let b = Char.code (Bytes.get t.words idx) in
  Bytes.set t.words idx (Char.chr (b lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let idx = i lsr 3 in
  let b = Char.code (Bytes.get t.words idx) in
  Bytes.set t.words idx (Char.chr (b land lnot (1 lsl (i land 7)) land 0xff))

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte c) t.words;
  !n

let is_empty t =
  let empty = ref true in
  Bytes.iter (fun c -> if c <> '\000' then empty := false) t.words;
  !empty

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'

let iter t f =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun i -> acc := f !acc i);
  !acc

let elements t = List.rev (fold t ~init:[] ~f:(fun acc i -> i :: acc))

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t

let same_capacity a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_capacity dst src;
  for i = 0 to Bytes.length dst.words - 1 do
    let b = Char.code (Bytes.get dst.words i) lor Char.code (Bytes.get src.words i) in
    Bytes.set dst.words i (Char.chr b)
  done

let union_compl_into dst src =
  same_capacity dst src;
  let bytes = Bytes.length dst.words in
  for i = 0 to bytes - 1 do
    let b = Char.code (Bytes.get dst.words i) lor (lnot (Char.code (Bytes.get src.words i)) land 0xff) in
    Bytes.set dst.words i (Char.chr b)
  done;
  (* Mask off the spare high bits of the final byte: members past
     [capacity] must never appear, or cardinal/equal would lie. *)
  if bytes > 0 && dst.capacity land 7 <> 0 then begin
    let mask = (1 lsl (dst.capacity land 7)) - 1 in
    let b = Char.code (Bytes.get dst.words (bytes - 1)) land mask in
    Bytes.set dst.words (bytes - 1) (Char.chr b)
  end

let inter_into dst src =
  same_capacity dst src;
  for i = 0 to Bytes.length dst.words - 1 do
    let b = Char.code (Bytes.get dst.words i) land Char.code (Bytes.get src.words i) in
    Bytes.set dst.words i (Char.chr b)
  done

let disjoint a b =
  same_capacity a b;
  let result = ref true in
  for i = 0 to Bytes.length a.words - 1 do
    if Char.code (Bytes.get a.words i) land Char.code (Bytes.get b.words i) <> 0 then
      result := false
  done;
  !result

let subset a b =
  same_capacity a b;
  let result = ref true in
  for i = 0 to Bytes.length a.words - 1 do
    let wa = Char.code (Bytes.get a.words i) and wb = Char.code (Bytes.get b.words i) in
    if wa land lnot wb <> 0 then result := false
  done;
  !result

let equal a b = a.capacity = b.capacity && Bytes.equal a.words b.words

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (elements t)

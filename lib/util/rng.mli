(** Deterministic, splittable pseudo-random number generator.

    The implementation is splitmix64. Every experiment in this repository
    takes an integer seed and derives all randomness from a single [t],
    so identical seeds reproduce identical topologies, policies and
    schedules on any platform. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Generators created from the
    same seed produce the same sequence. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val derive : int -> string -> t
(** [derive seed label] is a generator determined by the (seed, label)
    pair: the same pair always yields the same stream, and distinct
    labels yield independent streams of the same run seed. Subsystems
    that draw side by side (churn, fault plans, workloads) each derive
    their own label so enabling one cannot perturb the others. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each subsystem (topology, policies, failures) its own
    stream so that adding draws to one does not perturb the others. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)

val int_in_range : t -> min:int -> max:int -> int
(** [int_in_range t ~min ~max] draws uniformly from [\[min, max\]]
    inclusive. Requires [min <= max]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val choose : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. @raise Invalid_argument on []. *)

val choose_array : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Returns a shuffled copy of the list. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements of [xs],
    uniformly without replacement. *)

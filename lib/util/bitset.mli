(** Fixed-capacity bitsets over small integers.

    Used throughout the routing protocols to represent sets of AD
    identifiers compactly (policy-term membership tests, flooding
    "already seen" marks, reachability vectors). *)

type t

val create : int -> t
(** [create n] is the empty set over universe [\[0, n)]. *)

val capacity : t -> int

val copy : t -> t

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int

val is_empty : t -> bool

val clear : t -> unit

val iter : t -> (int -> unit) -> unit

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val elements : t -> int list

val of_list : int -> int list -> t
(** [of_list n xs] builds a set over universe [n] containing [xs]. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst]. The two
    sets must have equal capacity. *)

val union_compl_into : t -> t -> unit
(** [union_compl_into dst src] adds to [dst] every member of the
    universe that is {e not} in [src] (i.e. [dst := dst ∪ ¬src]). The
    two sets must have equal capacity. Used when folding complemented
    ([Except]-style) predicates into an accumulator set. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] removes from [dst] everything not in [src]. *)

val disjoint : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true when every member of [a] is in [b]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

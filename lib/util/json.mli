(** Minimal JSON: the interchange format for campaign results.

    Just enough of RFC 8259 to write and read back the documents this
    repository produces (JSONL run records, benchmark summaries) with
    no external dependency. Objects preserve field order; numbers
    parse to [Int] when they carry no fraction or exponent, [Float]
    otherwise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (the JSONL form). Strings are
    escaped per RFC 8259; non-finite floats render as [null]. *)

val to_string_pretty : t -> string
(** Two-space indented rendering for files meant to be read (and
    diffed) by humans. *)

val parse : string -> (t, string) result
(** Parse one JSON document; surrounding whitespace is allowed,
    trailing garbage is an error. Errors carry a character offset. *)

(** {2 Destruction helpers}

    All return [Error]/[None] rather than raising, so callers fold
    malformed records into per-record failures. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other constructors. *)

val to_int : t -> (int, string) result
(** Accepts [Int] and integral [Float]. *)

val to_float : t -> (float, string) result
(** Accepts [Float] and [Int]. *)

val to_str : t -> (string, string) result

val to_bool : t -> (bool, string) result

val to_list : t -> (t list, string) result

val int_member : string -> t -> (int, string) result
(** [int_member name obj] is [member] followed by {!to_int}, with the
    field name in the error. *)

val float_member : string -> t -> (float, string) result

val string_member : string -> t -> (string, string) result

(* Binary min-heap in a growable array. Each entry carries the insertion
   sequence number so that equal priorities pop in FIFO order. *)

type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* Shared placeholder for vacant slots. Slots at index >= size must not
   retain the last entry stored in them, or every popped value stays
   reachable until the slot is overwritten — a space leak proportional
   to the heap's high-water mark. [Obj.magic] is safe here: the dummy is
   only ever written into vacant slots and never read as an ['a]. *)
let dummy_entry : unit entry = { priority = nan; seq = -1; value = () }

let dummy () : 'a entry = Obj.magic dummy_entry

let create () = { data = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let length t = t.size

(* Drops the backing array entirely, releasing everything it retained. *)
let clear t =
  t.data <- [||];
  t.size <- 0

let less a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let ensure_capacity t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let new_cap = if cap = 0 then 16 else 2 * cap in
    let data = Array.make new_cap (dummy ()) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~priority value =
  let entry = { priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let min_priority t = if t.size = 0 then None else Some t.data.(0).priority

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    (* Clear the vacated slot so the popped entry (and, when the heap
       drains, the moved root) is not retained past its lifetime. *)
    t.data.(t.size) <- dummy ();
    Some (top.priority, top.value)
  end

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    acc := f !acc e.priority e.value
  done;
  !acc

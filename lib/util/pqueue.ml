(* Binary min-heap in a growable array. Each entry carries the insertion
   sequence number so that equal priorities pop in FIFO order. *)

type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* Shared placeholder for vacant slots. Slots at index >= size must not
   retain the last entry stored in them, or every popped value stays
   reachable until the slot is overwritten — a space leak proportional
   to the heap's high-water mark. [Obj.magic] is safe here: the dummy is
   only ever written into vacant slots and never read as an ['a]. *)
let dummy_entry : unit entry = { priority = nan; seq = -1; value = () }

let dummy () : 'a entry = Obj.magic dummy_entry

let create () = { data = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let length t = t.size

(* Drops the backing array entirely, releasing everything it retained. *)
let clear t =
  t.data <- [||];
  t.size <- 0

let less a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let ensure_capacity t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let new_cap = if cap = 0 then 16 else 2 * cap in
    let data = Array.make new_cap (dummy ()) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~priority value =
  let entry = { priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let min_priority t = if t.size = 0 then None else Some t.data.(0).priority

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    (* Clear the vacated slot so the popped entry (and, when the heap
       drains, the moved root) is not retained past its lifetime. *)
    t.data.(t.size) <- dummy ();
    Some (top.priority, top.value)
  end

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    acc := f !acc e.priority e.value
  done;
  !acc

(* Indexed heap with decrease-key over a dense integer key space. Keys
   double as identities: at most one live entry per key, its heap slot
   tracked in [pos] so a priority improvement is an O(log n) sift-up
   instead of a duplicate insertion. Ties break on the smaller key, so
   pop order is a pure function of the (key, priority) multiset — no
   insertion-order state to keep deterministic across repairs. *)
module Keyed = struct
  type t = {
    heap : int array;  (* heap slot -> key *)
    pos : int array;  (* key -> heap slot; -1 when absent *)
    prio : int array;  (* key -> priority, meaningful while pos.(key) >= 0 *)
    mutable size : int;
  }

  let create ~capacity =
    if capacity < 0 then invalid_arg "Pqueue.Keyed.create: negative capacity";
    let cap = Stdlib.max capacity 1 in
    { heap = Array.make cap 0; pos = Array.make cap (-1); prio = Array.make cap 0; size = 0 }

  let is_empty t = t.size = 0

  let length t = t.size

  let mem t key = t.pos.(key) >= 0

  let priority t key = if t.pos.(key) >= 0 then Some t.prio.(key) else None

  let less t a b = t.prio.(a) < t.prio.(b) || (t.prio.(a) = t.prio.(b) && a < b)

  let swap t i j =
    let a = t.heap.(i) and b = t.heap.(j) in
    t.heap.(i) <- b;
    t.heap.(j) <- a;
    t.pos.(b) <- i;
    t.pos.(a) <- j

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less t t.heap.(i) t.heap.(parent) then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && less t t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && less t t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let insert_or_decrease t key ~priority =
    let slot = t.pos.(key) in
    if slot < 0 then begin
      t.prio.(key) <- priority;
      t.heap.(t.size) <- key;
      t.pos.(key) <- t.size;
      t.size <- t.size + 1;
      sift_up t (t.size - 1);
      true
    end
    else if priority < t.prio.(key) then begin
      t.prio.(key) <- priority;
      sift_up t slot;
      true
    end
    else false

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      t.pos.(top) <- -1;
      if t.size > 0 then begin
        let last = t.heap.(t.size) in
        t.heap.(0) <- last;
        t.pos.(last) <- 0;
        sift_down t 0
      end;
      Some (t.prio.(top), top)
    end

  let clear t =
    for i = 0 to t.size - 1 do
      t.pos.(t.heap.(i)) <- -1
    done;
    t.size <- 0
end

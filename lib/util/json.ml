type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec write ~indent ~level buf v =
  let nl pad =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf (if indent then "," else ", ");
        nl (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, value) ->
        if i > 0 then Buffer.add_string buf (if indent then "," else ", ");
        nl (level + 1);
        escape_to buf name;
        Buffer.add_string buf ": ";
        write ~indent ~level:(level + 1) buf value)
      fields;
    nl level;
    Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v

let to_string_pretty v = render ~indent:true v

(* --- parsing ------------------------------------------------------- *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> error (Printf.sprintf "expected %c, got %c" c got)
    | None -> error (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then error "truncated \\u escape";
               let code =
                 try int_of_string ("0x" ^ String.sub s !pos 4)
                 with _ -> error "invalid \\u escape"
               in
               pos := !pos + 4;
               (* Non-ASCII code points re-encode as UTF-8. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
               end
             | c -> error (Printf.sprintf "invalid escape \\%c" c));
          loop ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error (Printf.sprintf "invalid number %s" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let parse_field () =
          skip_ws ();
          let name = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          (name, value)
        in
        let fields = ref [ parse_field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := parse_field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at %d: %s" at msg)

(* --- destruction --------------------------------------------------- *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_int = function
  | Int i -> Ok i
  | Float f when Float.is_integer f -> Ok (int_of_float f)
  | v -> Error (Printf.sprintf "expected int, got %s" (type_name v))

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | v -> Error (Printf.sprintf "expected number, got %s" (type_name v))

let to_str = function
  | String s -> Ok s
  | v -> Error (Printf.sprintf "expected string, got %s" (type_name v))

let to_bool = function
  | Bool b -> Ok b
  | v -> Error (Printf.sprintf "expected bool, got %s" (type_name v))

let to_list = function
  | List items -> Ok items
  | v -> Error (Printf.sprintf "expected list, got %s" (type_name v))

let with_field name convert v =
  match member name v with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some inner -> (
    match convert inner with
    | Ok _ as ok -> ok
    | Error e -> Error (Printf.sprintf "field %S: %s" name e))

let int_member name v = with_field name to_int v

let float_member name v = with_field name to_float v

let string_member name v = with_field name to_str v

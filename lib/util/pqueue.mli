(** Minimum priority queue on float priorities with deterministic FIFO
    tie-breaking.

    Entries with equal priority are returned in insertion order, which
    makes discrete-event schedules reproducible independent of heap
    internals. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val add : 'a t -> priority:float -> 'a -> unit
(** Insert an element with the given priority. *)

val min_priority : 'a t -> float option
(** Priority of the next element to be popped, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest priority (FIFO among
    equals). *)

val clear : 'a t -> unit
(** Empty the queue and drop the backing array, releasing every value it
    retained. Popped entries are likewise cleared from their slots
    eagerly, so neither operation leaves stale references behind. *)

val fold : 'a t -> init:'b -> f:('b -> float -> 'a -> 'b) -> 'b
(** Fold over the current contents in unspecified order. *)

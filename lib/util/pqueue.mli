(** Minimum priority queue on float priorities with deterministic FIFO
    tie-breaking.

    Entries with equal priority are returned in insertion order, which
    makes discrete-event schedules reproducible independent of heap
    internals. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val add : 'a t -> priority:float -> 'a -> unit
(** Insert an element with the given priority. *)

val min_priority : 'a t -> float option
(** Priority of the next element to be popped, if any. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest priority (FIFO among
    equals). *)

val clear : 'a t -> unit
(** Empty the queue and drop the backing array, releasing every value it
    retained. Popped entries are likewise cleared from their slots
    eagerly, so neither operation leaves stale references behind. *)

val fold : 'a t -> init:'b -> f:('b -> float -> 'a -> 'b) -> 'b
(** Fold over the current contents in unspecified order. *)

(** Indexed min-heap with decrease-key over a dense integer key space
    [0, capacity). At most one live entry per key; improving a key's
    priority sifts the existing entry instead of inserting a duplicate.
    Equal priorities pop in increasing key order, so pop order depends
    only on current contents — the determinism the incremental SPF
    repair relies on. *)
module Keyed : sig
  type t

  val create : capacity:int -> t
  (** A heap accepting keys in [0, capacity). *)

  val is_empty : t -> bool

  val length : t -> int

  val mem : t -> int -> bool
  (** Is the key currently enqueued? *)

  val priority : t -> int -> int option
  (** Current priority of an enqueued key. *)

  val insert_or_decrease : t -> int -> priority:int -> bool
  (** Insert the key, or lower its priority if already enqueued with a
      worse one. Returns [true] iff the heap changed (a caller that
      tracks per-key payloads — e.g. candidate parents — updates them
      exactly when this returns [true]). *)

  val pop : t -> (int * int) option
  (** Remove and return [(priority, key)] for the minimum entry, ties
      broken toward the smaller key. *)

  val clear : t -> unit
  (** Empty the heap in O(live entries). *)
end

(* Splitmix64: a small, fast, high-quality generator with trivially
   splittable state. Constants are the reference ones from Steele et al.,
   "Fast splittable pseudorandom number generators" (OOPSLA 2014). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

(* FNV-1a over the label, folded into the seed, then remixed: distinct
   labels give independent streams of the same seed, and adding draws
   to one stream cannot perturb another. *)
let derive seed label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    label;
  { state = mix (Int64.add (mix (Int64.of_int seed)) !h) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (bits64 t) }

let positive_bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  positive_bits t mod bound

let int_in_range t ~min ~max =
  if min > max then invalid_arg "Rng.int_in_range: min > max";
  min + int t (max - min + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, scaled to [0, 1). *)
  bound *. (x /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let choose_array t a =
  if Array.length a = 0 then invalid_arg "Rng.choose_array: empty array";
  a.(int t (Array.length a))

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t xs =
  let a = Array.of_list xs in
  shuffle t a;
  Array.to_list a

let sample t k xs =
  let a = Array.of_list xs in
  shuffle t a;
  let k = Stdlib.min k (Array.length a) in
  Array.to_list (Array.sub a 0 k)

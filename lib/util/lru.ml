(* LRU cache: Hashtbl + intrusive doubly-linked recency list.  The
   list head is most-recently-used, the tail least-recently-used; every
   operation is O(1).  Victim choice is deterministic (strict recency
   order), which the simulation relies on for replayable runs. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* towards head / MRU *)
  mutable next : ('k, 'v) node option; (* towards tail / LRU *)
}

type ('k, 'v) t = {
  capacity : int option;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable evictions : int;
}

let create ?(capacity = None) () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Lru.create: capacity < 1"
  | _ -> ());
  let size = match capacity with Some c -> min c 64 | None -> 16 in
  { capacity; tbl = Hashtbl.create size; head = None; tail = None; evictions = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl
let mem t k = Hashtbl.mem t.tbl k
let evictions t = t.evictions

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match node.prev with
  | None -> () (* already MRU *)
  | Some _ ->
      unlink t node;
      push_front t node

let peek t k =
  match Hashtbl.find_opt t.tbl k with Some n -> Some n.value | None -> None

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      touch t n;
      Some n.value
  | None -> None

let evict_lru t =
  match t.tail with
  | None -> None
  | Some victim ->
      unlink t victim;
      Hashtbl.remove t.tbl victim.key;
      t.evictions <- t.evictions + 1;
      Some victim.key

let put t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      touch t n;
      None
  | None ->
      let evicted =
        match t.capacity with
        | Some c when Hashtbl.length t.tbl >= c -> evict_lru t
        | _ -> None
      in
      let node = { key = k; value = v; prev = None; next = None } in
      push_front t node;
      Hashtbl.replace t.tbl k node;
      evicted

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl k
  | None -> ()

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let iter t ~f =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.key n.value;
        go n.next
  in
  go t.head

let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc n.key n.value) n.next
  in
  go init t.head

let self_check t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let n = Hashtbl.length t.tbl in
  let rec walk seen prev cur =
    match cur with
    | None ->
        if (match t.tail, prev with
            | None, None -> true
            | Some a, Some b -> a == b
            | _ -> false)
        then if seen = n then Ok () else err "list holds %d entries, table %d" seen n
        else err "tail pointer does not match last list node"
    | Some node ->
        if seen > n then err "recency list longer than table (cycle?)"
        else if not ((match node.prev, prev with
                      | None, None -> true
                      | Some a, Some b -> a == b
                      | _ -> false)) then err "broken back-link at entry %d" seen
        else if
          match Hashtbl.find_opt t.tbl node.key with
          | Some n' -> n' != node
          | None -> true
        then err "table disagrees with list at entry %d" seen
        else walk (seen + 1) cur node.next
  in
  match t.capacity with
  | Some c when n > c -> err "length %d exceeds capacity %d" n c
  | _ -> walk 0 None t.head

(** Bounded least-recently-used cache.

    A polymorphic key/value store with O(1) [find]/[put]/[remove] built
    from a hash table over an intrusive doubly-linked recency list.
    [find] and [put] move the touched entry to the most-recently-used
    end; when the table is full, [put] of a fresh key evicts the
    least-recently-used entry and counts it.  A [None] capacity makes
    the cache unbounded (a plain recency-ordered table), so callers can
    keep one code path whether or not a bound is configured.

    Used by the ORWG setup-handle and route caches and by the serving
    layer's handle table — both need deterministic victims (true LRU
    order) so that runs replay byte-identically. *)

type ('k, 'v) t

val create : ?capacity:int option -> unit -> ('k, 'v) t
(** [create ~capacity ()] makes an empty cache.  [capacity] of
    [Some c] bounds the cache to [c] entries ([c >= 1]); [None] (the
    default) means unbounded.  Raises [Invalid_argument] on
    [Some c] with [c < 1]. *)

val capacity : ('k, 'v) t -> int option

val length : ('k, 'v) t -> int

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without touching recency. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching recency. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit moves the entry to most-recently-used. *)

val put : ('k, 'v) t -> 'k -> 'v -> 'k option
(** [put t k v] inserts or updates [k] and marks it most-recently-used.
    If the insert would exceed a bounded capacity, the
    least-recently-used entry is evicted first and its key returned
    (so callers can clean up side tables and count the eviction).
    Updating an existing key never evicts. *)

val remove : ('k, 'v) t -> 'k -> unit

val evictions : ('k, 'v) t -> int
(** Total capacity evictions since [create].  [remove] and [clear] do
    not count; only overflow during [put] does. *)

val clear : ('k, 'v) t -> unit
(** Drop all entries.  Eviction counts survive (they are lifetime
    statistics, not contents). *)

val iter : ('k, 'v) t -> f:('k -> 'v -> unit) -> unit
(** Iterate entries from most- to least-recently-used.  [f] must not
    mutate the cache. *)

val fold : ('k, 'v) t -> init:'a -> f:('a -> 'k -> 'v -> 'a) -> 'a
(** Fold entries from most- to least-recently-used.  [f] must not
    mutate the cache. *)

val self_check : ('k, 'v) t -> (unit, string) result
(** Structural audit: the recency list and the hash table must hold
    exactly the same entries, the list must be well linked in both
    directions, and a bounded cache must not exceed its capacity.
    Used by the serve smoke as the handle-leak detector. *)

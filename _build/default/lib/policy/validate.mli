(** The ground-truth policy oracle.

    Protocol-independent legality checking and exhaustive (bounded)
    legal-route enumeration. Experiments compare what each protocol
    finds against this oracle to measure {e route availability loss}:
    "resulting in no available route when in fact a legal route exists"
    (paper §5.1) — the paper's key deficiency metric for designs that
    cannot express or honor all policies. *)

type verdict =
  | Legal
  | Transit_refused of {
      ad : Pr_topology.Ad.id;
      prev : Pr_topology.Ad.id option;
      next : Pr_topology.Ad.id option;
    }  (** some interior AD's policy refuses this crossing *)
  | Source_refused  (** the source's own selection criteria reject the path *)
  | Broken of string  (** not a valid path in the graph *)

val check :
  Pr_topology.Graph.t -> Config.t -> Flow.t -> Pr_topology.Path.t -> verdict
(** Full legality: valid simple path from [flow.src] to [flow.dst],
    every interior AD's transit policy admits the crossing, and the
    source policy permits the path. *)

val transit_legal :
  Pr_topology.Graph.t -> Config.t -> Flow.t -> Pr_topology.Path.t -> bool
(** Legality ignoring the source's own criteria — what "a legal route
    exists" means from the internet's point of view. *)

val legal : Pr_topology.Graph.t -> Config.t -> Flow.t -> Pr_topology.Path.t -> bool
(** [check] = [Legal]. *)

val legal_paths :
  Pr_topology.Graph.t ->
  Config.t ->
  Flow.t ->
  max_hops:int ->
  ?limit:int ->
  unit ->
  Pr_topology.Path.t list
(** All transit-legal simple paths for the flow, by pruned DFS (the
    source policy is not applied; filter with {!Source_policy.permits}
    for source-acceptable routes). At most [limit] (default 10_000). *)

val route_exists : Pr_topology.Graph.t -> Config.t -> Flow.t -> max_hops:int -> bool
(** A transit-legal route within the hop bound exists. Implemented by
    Dijkstra over (node, arrived-from) states, so it is fast enough to
    call per flow in large experiments; falls back to bounded DFS in
    the rare case the state search only finds self-intersecting
    routes. *)

val shortest_legal :
  Pr_topology.Graph.t ->
  Config.t ->
  Flow.t ->
  ?apply_source_policy:bool ->
  unit ->
  Pr_topology.Path.t option
(** Minimum-cost transit-legal simple path for the flow (with
    [apply_source_policy], also honoring the source's avoid list), by
    Dijkstra over (node, arrived-from) states with a DFS fallback. *)

val best_legal :
  Pr_topology.Graph.t -> Config.t -> Flow.t -> max_hops:int -> Pr_topology.Path.t option
(** The minimum-cost transit-legal path that the source policy also
    permits, or [None]. Ties break deterministically. *)

val pp_verdict : Format.formatter -> verdict -> unit

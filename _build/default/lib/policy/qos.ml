type t = Default | Low_delay | High_throughput | High_reliability

let all = [ Default; Low_delay; High_throughput; High_reliability ]

let count = 4

let index = function
  | Default -> 0
  | Low_delay -> 1
  | High_throughput -> 2
  | High_reliability -> 3

let of_index = function
  | 0 -> Default
  | 1 -> Low_delay
  | 2 -> High_throughput
  | 3 -> High_reliability
  | _ -> invalid_arg "Qos.of_index"

let to_string = function
  | Default -> "default"
  | Low_delay -> "low-delay"
  | High_throughput -> "high-throughput"
  | High_reliability -> "high-reliability"

let equal a b = a = b

let compare a b = Stdlib.compare (index a) (index b)

let pp ppf t = Format.pp_print_string ppf (to_string t)

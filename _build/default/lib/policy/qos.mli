(** Quality-of-Service classes (paper §2.3, §3).

    The new-generation IGPs the paper reviews (IGRP, OSPF, IS-IS)
    support a small, fixed set of service classes; we model the same
    four that OSPF's type-of-service routing used. *)

type t = Default | Low_delay | High_throughput | High_reliability

val all : t list

val count : int

val index : t -> int
(** Dense index in [\[0, count)], used for per-QOS FIB arrays. *)

val of_index : int -> t

val to_string : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

lib/policy/policy_term.mli: Flow Format Pr_topology Qos Uci

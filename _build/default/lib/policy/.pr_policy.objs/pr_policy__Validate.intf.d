lib/policy/validate.mli: Config Flow Format Pr_topology

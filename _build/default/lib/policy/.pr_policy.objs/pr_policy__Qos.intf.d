lib/policy/qos.mli: Format

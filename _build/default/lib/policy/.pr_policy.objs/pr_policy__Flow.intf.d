lib/policy/flow.mli: Format Pr_topology Qos Uci

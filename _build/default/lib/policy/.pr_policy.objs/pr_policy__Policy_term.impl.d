lib/policy/policy_term.ml: Flow Format List Pr_topology Printf Qos Uci

lib/policy/flow.ml: Format Pr_topology Qos Uci

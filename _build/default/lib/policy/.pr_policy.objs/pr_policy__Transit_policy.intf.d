lib/policy/transit_policy.mli: Format Policy_term Pr_topology

lib/policy/gen.ml: Array Config List Policy_term Pr_topology Pr_util Qos Source_policy Stdlib Transit_policy Uci

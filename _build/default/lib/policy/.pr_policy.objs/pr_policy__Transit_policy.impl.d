lib/policy/transit_policy.ml: Format List Policy_term Pr_topology

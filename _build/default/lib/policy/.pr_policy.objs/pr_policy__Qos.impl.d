lib/policy/qos.ml: Format Stdlib

lib/policy/source_policy.mli: Format Pr_topology

lib/policy/uci.mli: Format

lib/policy/gen.mli: Config Pr_topology Pr_util

lib/policy/validate.ml: Array Config Flow Format List Option Policy_term Pr_topology Pr_util Source_policy Transit_policy

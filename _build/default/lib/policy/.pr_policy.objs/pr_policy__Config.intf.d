lib/policy/config.mli: Format Pr_topology Source_policy Transit_policy

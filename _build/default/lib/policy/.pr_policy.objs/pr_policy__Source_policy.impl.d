lib/policy/source_policy.ml: Format List Pr_topology Printf

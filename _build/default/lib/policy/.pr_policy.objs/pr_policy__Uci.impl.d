lib/policy/uci.ml: Format Stdlib

lib/policy/config.ml: Array Format Pr_topology Source_policy Transit_policy

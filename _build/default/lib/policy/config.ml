module Graph = Pr_topology.Graph
module Ad = Pr_topology.Ad

type t = {
  transit : Transit_policy.t array;
  source : Source_policy.t option array;
}

let make ~transit ?source () =
  Array.iteri
    (fun i (p : Transit_policy.t) ->
      if p.Transit_policy.owner <> i then invalid_arg "Config.make: transit owner mismatch")
    transit;
  let source =
    match source with
    | None -> Array.make (Array.length transit) None
    | Some s ->
      if Array.length s <> Array.length transit then
        invalid_arg "Config.make: source array length mismatch";
      Array.iteri
        (fun i sp ->
          match sp with
          | Some (p : Source_policy.t) ->
            if p.Source_policy.owner <> i then
              invalid_arg "Config.make: source owner mismatch"
          | None -> ())
        s;
      s
  in
  { transit; source }

let n t = Array.length t.transit

let transit t i = t.transit.(i)

let source t i =
  match t.source.(i) with
  | Some p -> p
  | None -> Source_policy.unrestricted i

let has_source_policy t i = t.source.(i) <> None

let defaults g =
  let transit =
    Array.map
      (fun (a : Ad.t) ->
        if Ad.is_transit_capable a then Transit_policy.open_transit a.Ad.id
        else Transit_policy.no_transit a.Ad.id)
      (Graph.ads g)
  in
  make ~transit ()

let total_terms t =
  Array.fold_left (fun acc p -> acc + Transit_policy.term_count p) 0 t.transit

let total_advertisement_bytes t =
  Array.fold_left (fun acc p -> acc + Transit_policy.advertisement_bytes p) 0 t.transit

let pp_summary ppf t =
  let with_source =
    Array.fold_left (fun acc s -> if s = None then acc else acc + 1) 0 t.source
  in
  Format.fprintf ppf "%d ADs, %d policy terms, %d source policies" (n t) (total_terms t)
    with_source

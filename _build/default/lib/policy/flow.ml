type t = {
  src : Pr_topology.Ad.id;
  dst : Pr_topology.Ad.id;
  qos : Qos.t;
  uci : Uci.t;
  hour : int;
  authenticated : bool;
}

let make ~src ~dst ?(qos = Qos.Default) ?(uci = Uci.Research) ?(hour = 12)
    ?(authenticated = false) () =
  if hour < 0 || hour >= 24 then invalid_arg "Flow.make: hour out of range";
  { src; dst; qos; uci; hour; authenticated }

let reverse t = { t with src = t.dst; dst = t.src }

let class_count = Qos.count * Uci.count

let class_key t = (Qos.index t.qos * Uci.count) + Uci.index t.uci

let class_key_with_source ~n t = (class_key t * n) + t.src

let pp ppf t =
  Format.fprintf ppf "%d->%d qos=%a uci=%a h=%d auth=%b" t.src t.dst Qos.pp t.qos Uci.pp
    t.uci t.hour t.authenticated

let equal a b = a = b

(** The complete policy configuration of an internet: one transit
    policy per AD plus optional source policies.

    Protocols receive this configuration at startup (policies are
    assumed to change much more slowly than routes — paper §2.3) and
    each protocol uses as much of it as its design point can express. *)

type t

val make :
  transit:Transit_policy.t array -> ?source:Source_policy.t option array -> unit -> t
(** [transit.(i)] must be owned by AD [i]; [source], when given, must
    have the same length. *)

val n : t -> int

val transit : t -> Pr_topology.Ad.id -> Transit_policy.t

val source : t -> Pr_topology.Ad.id -> Source_policy.t
(** The AD's source policy, or {!Source_policy.unrestricted} when none
    was configured. *)

val has_source_policy : t -> Pr_topology.Ad.id -> bool

val defaults : Pr_topology.Graph.t -> t
(** The policy configuration implied by AD classes alone: transit ADs
    open, hybrids open, stubs and multihomed stubs carry no transit,
    no source policies. *)

val total_terms : t -> int

val total_advertisement_bytes : t -> int

val pp_summary : Format.formatter -> t -> unit

(** User Class Identifiers (paper §2.3).

    A UCI classifies the originator of traffic — e.g. research versus
    commercial use of a government-funded backbone, the canonical
    policy example of the era. *)

type t = Research | Commercial | Government

val all : t list

val count : int

val index : t -> int

val of_index : int -> t

val to_string : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

(** Random policy generation.

    The paper's scaling arguments are parameterised by how restrictive
    and how fine-grained AD policies are (§2.3: "ADs should adopt the
    least restrictive policies possible and should control access at
    the coarsest granularity possible"). This generator exposes both
    as knobs so experiments can sweep them. *)

type granularity =
  | Coarse  (** per-AD restrictions only: QOS classes, hour windows *)
  | Destination  (** transit offered only toward chosen destinations *)
  | Source_specific  (** transit refused to chosen source ADs *)
  | Fine
      (** per-(source set, UCI, QOS) terms — the granularity the paper
          warns blows up hop-by-hop designs (§5.2.1) *)

type params = {
  restrictiveness : float;
      (** in [\[0,1\]]: probability that a transit AD restricts at all,
          and the strength of each restriction *)
  granularity : granularity;
  source_policy_prob : float;
      (** probability that a host AD configures route selection
          criteria (avoid lists) *)
}

val default : params
(** Moderate: restrictiveness 0.3, [Source_specific], source policies
    on 30% of host ADs. *)

val generate : Pr_util.Rng.t -> Pr_topology.Graph.t -> params -> Config.t
(** Stub and multihomed ADs always get {!Transit_policy.no_transit};
    transit and hybrid ADs get PTs drawn per [params]; host ADs get
    source policies with probability [source_policy_prob]. The result
    always leaves every AD's own traffic unconstrained (policies govern
    transit, not access — paper §2.3). *)

val granularity_to_string : granularity -> string

val all_granularities : granularity list

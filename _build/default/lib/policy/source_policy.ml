module Path = Pr_topology.Path

type t = {
  owner : Pr_topology.Ad.id;
  avoid : Pr_topology.Ad.id list;
  prefer : Pr_topology.Ad.id list;
  max_hops : int option;
}

let make ~owner ?(avoid = []) ?(prefer = []) ?max_hops () =
  { owner; avoid; prefer; max_hops }

let unrestricted owner = { owner; avoid = []; prefer = []; max_hops = None }

let permits t path =
  let interior = Path.transit_ads path in
  List.for_all (fun ad -> not (List.mem ad interior)) t.avoid
  &&
  match t.max_hops with
  | None -> true
  | Some h -> Path.hops path <= h

let score t g path =
  if not (permits t path) then infinity
  else
    match Path.cost g path with
    | None -> infinity
    | Some c ->
      let bonus =
        List.fold_left
          (fun acc ad -> if List.mem ad path then acc +. 0.5 else acc)
          0.0 t.prefer
      in
      float_of_int c -. bonus

let best t g paths =
  let scored =
    List.filter_map
      (fun p ->
        let s = score t g p in
        if s = infinity then None else Some (s, p))
      paths
  in
  match List.sort compare scored with
  | [] -> None
  | (_, p) :: _ -> Some p

let pp ppf t =
  Format.fprintf ppf "src-policy(ad %d, avoid %d, prefer %d%s)" t.owner
    (List.length t.avoid) (List.length t.prefer)
    (match t.max_hops with
    | None -> ""
    | Some h -> Printf.sprintf ", max %d hops" h)

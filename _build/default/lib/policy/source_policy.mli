(** Route selection criteria of a source AD (paper §2.3).

    Where transit policies say who may cross an AD, the source's policy
    says which routes the source is willing to use: ADs it refuses to
    traverse, ADs it prefers, and a hop budget. Under source routing
    the source can both express and enforce these privately; under
    hop-by-hop routing it depends on other ADs' choices — the
    asymmetry quantified by experiments E6 and E9. *)

type t = {
  owner : Pr_topology.Ad.id;
  avoid : Pr_topology.Ad.id list;  (** never traverse these ADs *)
  prefer : Pr_topology.Ad.id list;  (** discount routes through these ADs *)
  max_hops : int option;
}

val make :
  owner:Pr_topology.Ad.id ->
  ?avoid:Pr_topology.Ad.id list ->
  ?prefer:Pr_topology.Ad.id list ->
  ?max_hops:int ->
  unit ->
  t

val unrestricted : Pr_topology.Ad.id -> t

val permits : t -> Pr_topology.Path.t -> bool
(** The path avoids every AD in [avoid] (endpoints are exempt: a source
    cannot avoid itself or its destination) and respects [max_hops]. *)

val score : t -> Pr_topology.Graph.t -> Pr_topology.Path.t -> float
(** Selection score, lower is better: path cost, minus a fixed bonus of
    0.5 per distinct preferred AD traversed. Returns [infinity] for
    paths the policy does not permit or that are invalid in the
    graph. *)

val best : t -> Pr_topology.Graph.t -> Pr_topology.Path.t list -> Pr_topology.Path.t option
(** Minimum-score permitted path; deterministic tie-break on the path
    itself. *)

val pp : Format.formatter -> t -> unit

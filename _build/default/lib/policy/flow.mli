(** Traffic flow descriptors.

    A flow is the unit against which policies are evaluated: who is
    talking to whom, with what service class, what user class, at what
    time of day, and whether the source authenticated itself. The paper
    (§2.3) lists exactly these attributes as the common bases for
    source and transit policies. *)

type t = {
  src : Pr_topology.Ad.id;
  dst : Pr_topology.Ad.id;
  qos : Qos.t;
  uci : Uci.t;
  hour : int;  (** hour of day in [\[0, 24)] *)
  authenticated : bool;
}

val make :
  src:Pr_topology.Ad.id ->
  dst:Pr_topology.Ad.id ->
  ?qos:Qos.t ->
  ?uci:Uci.t ->
  ?hour:int ->
  ?authenticated:bool ->
  unit ->
  t
(** Defaults: [Qos.Default], [Uci.Research], [hour = 12],
    [authenticated = false]. *)

val reverse : t -> t
(** Swap source and destination. *)

val class_key : t -> int
(** Dense key identifying the flow's policy class [(qos, uci)] — the
    granularity at which IDRP-style protocols must replicate routes and
    ORWG-style protocols key their route caches. Ranges over
    [\[0, class_count)]. *)

val class_count : int

val class_key_with_source : n:int -> t -> int
(** Key identifying [(qos, uci, src)]: the per-source policy class that
    drives the state blow-up arguments of §5.2.1 and §5.3. [n] is the
    number of ADs. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

type t = Research | Commercial | Government

let all = [ Research; Commercial; Government ]

let count = 3

let index = function
  | Research -> 0
  | Commercial -> 1
  | Government -> 2

let of_index = function
  | 0 -> Research
  | 1 -> Commercial
  | 2 -> Government
  | _ -> invalid_arg "Uci.of_index"

let to_string = function
  | Research -> "research"
  | Commercial -> "commercial"
  | Government -> "government"

let equal a b = a = b

let compare a b = Stdlib.compare (index a) (index b)

let pp ppf t = Format.pp_print_string ppf (to_string t)

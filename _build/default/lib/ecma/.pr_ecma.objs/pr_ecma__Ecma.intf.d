lib/ecma/ecma.mli: Pr_policy Pr_proto Pr_topology

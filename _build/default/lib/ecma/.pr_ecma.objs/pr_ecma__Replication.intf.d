lib/ecma/replication.mli: Pr_topology

lib/ecma/replication.ml: Array Hashtbl List Pr_topology Printf

module Ad = Pr_topology.Ad
module Link = Pr_topology.Link
module Graph = Pr_topology.Graph

type spec = { ad : Pr_topology.Ad.id; groups : Pr_topology.Ad.id list list }

type mapping = {
  expanded : Graph.t;
  physical_of : Pr_topology.Ad.id -> Pr_topology.Ad.id;
  logical_of : Pr_topology.Ad.id -> Pr_topology.Ad.id list;
}

let validate g spec =
  let neighbors = Graph.neighbor_ids g spec.ad in
  if spec.groups = [] then invalid_arg "Replication.expand: no groups";
  List.iter
    (fun group ->
      if group = [] then invalid_arg "Replication.expand: empty group";
      List.iter
        (fun nbr ->
          if not (List.mem nbr neighbors) then
            invalid_arg "Replication.expand: group member is not a neighbor")
        group)
    spec.groups;
  List.iter
    (fun nbr ->
      if not (List.exists (List.mem nbr) spec.groups) then
        invalid_arg "Replication.expand: neighbor covered by no group")
    neighbors

let expand g specs =
  List.iter (validate g) specs;
  let n = Graph.n g in
  let replicated = Hashtbl.create 4 in
  List.iter
    (fun spec ->
      if Hashtbl.mem replicated spec.ad then
        invalid_arg "Replication.expand: duplicate spec for an AD";
      Hashtbl.replace replicated spec.ad spec)
    specs;
  (* Assign ids: originals keep theirs; extra clusters append. *)
  let next_id = ref n in
  let physical = Hashtbl.create 16 in
  (* (physical ad, group index) -> logical id *)
  let logical_id = Hashtbl.create 16 in
  let extra_ads = ref [] in
  for ad = 0 to n - 1 do
    Hashtbl.replace physical ad ad
  done;
  List.iter
    (fun spec ->
      List.iteri
        (fun gi _ ->
          let id =
            if gi = 0 then spec.ad
            else begin
              let id = !next_id in
              incr next_id;
              let base = Graph.ad g spec.ad in
              extra_ads :=
                Ad.make ~id
                  ~name:(Printf.sprintf "%s/%d" base.Ad.name gi)
                  ~klass:base.Ad.klass ~level:base.Ad.level
                :: !extra_ads;
              Hashtbl.replace physical id spec.ad;
              id
            end
          in
          Hashtbl.replace logical_id (spec.ad, gi) id)
        spec.groups)
    specs;
  let ads =
    Array.append (Graph.ads g) (Array.of_list (List.rev !extra_ads))
    |> Array.map (fun (a : Ad.t) -> a)
  in
  (* Rebuild links. A link incident to a replicated AD is duplicated
     once per group containing its far endpoint; other links pass
     through unchanged. Links between two replicated ADs expand over
     both group sets. *)
  let next_link = ref 0 in
  let links = ref [] in
  let emit a b kind cost =
    if a <> b then begin
      let id = !next_link in
      incr next_link;
      links := Link.make ~id ~a ~b ~cost kind :: !links
    end
  in
  let clusters_facing ad other =
    (* Logical ids of [ad] whose group contains [other]; [ad] itself
       when unreplicated. *)
    match Hashtbl.find_opt replicated ad with
    | None -> [ ad ]
    | Some spec ->
      List.mapi (fun gi group -> (gi, group)) spec.groups
      |> List.filter_map (fun (gi, group) ->
             if List.mem other group then Some (Hashtbl.find logical_id (ad, gi))
             else None)
  in
  Graph.fold_links g ~init:() ~f:(fun () l ->
      let left = clusters_facing l.Link.a l.Link.b in
      let right = clusters_facing l.Link.b l.Link.a in
      List.iter
        (fun a -> List.iter (fun b -> emit a b l.Link.kind l.Link.cost) right)
        left);
  let links = Array.of_list (List.rev !links) in
  (* Re-derive campus classes: a replicated stub cluster with several
     logical adjacencies stays a stub of its physical AD — classes are
     copied, not recomputed. *)
  let expanded = Graph.create ads links in
  let physical_of id =
    match Hashtbl.find_opt physical id with
    | Some p -> p
    | None -> id
  in
  let logical_of ad =
    match Hashtbl.find_opt replicated ad with
    | None -> [ ad ]
    | Some spec -> List.mapi (fun gi _ -> Hashtbl.find logical_id (ad, gi)) spec.groups
  in
  { expanded; physical_of; logical_of }

let collapse_path mapping path =
  (* Adjacent logical ids of the same physical AD collapse to one. *)
  let rec dedup = function
    | a :: (b :: _ as rest) when a = b -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup (List.map mapping.physical_of path)

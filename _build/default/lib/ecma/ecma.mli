(** The ECMA/NIST inter-domain routing proposal (paper §5.1.1):
    distance vector, hop-by-hop forwarding, policy embedded in the
    topology through a globally coordinated partial ordering of ADs.

    {b Up/down rule.} Every link is directed by the ordering (ties are
    broken by AD id so the order is strict on every link). Once a
    route advertisement has traveled {e down} the ordering it may never
    be passed {e up} again; symmetrically a data packet that has gone
    down may not go up. This suppresses both routing loops and the
    count-to-infinity behaviour of plain DV in cyclic topologies —
    experiment E2's subject.

    {b Two routes per destination.} Each AD keeps, per (QOS,
    destination), its best {e all-down} route (usable by packets that
    have already descended, and the only kind it may advertise upward)
    and its best {e mixed} route (packet path climbs before
    descending).

    {b Policy projection.} ECMA can express destination filters and
    per-QOS support, and whatever source discrimination the single
    partial ordering happens to encode. Finer policies (source
    lists, UCI, prev/next-hop constraints) are {e inexpressible}; this
    module projects each AD's configured Policy Terms onto the
    mechanisms ECMA has, and experiments E3/E9 measure the resulting
    violations and availability loss. *)

type update_entry = {
  qos : Pr_policy.Qos.t;
  dest : Pr_topology.Ad.id;
  metric : int;  (** {!Pr_dv.Dv.infinity_metric}-style unreachability *)
  gone_down : bool;
      (** the advertisement has traversed a down link; equivalently the
          packet path it describes contains an up step *)
}

type message = update_entry list

include Pr_proto.Protocol_intf.PROTOCOL with type message := message

val infinity_metric : int
(** Unreachability sentinel; large, because per-QOS metrics accumulate
    ~10 per hop and ECMA (unlike plain DV) never counts toward it. *)

val supports_qos : Pr_policy.Config.t -> Pr_topology.Ad.id -> Pr_policy.Qos.t -> bool
(** The projection of an AD's PTs onto ECMA's QOS mechanism: does any
    term admit this service class. *)

val route_of :
  t ->
  at:Pr_topology.Ad.id ->
  dst:Pr_topology.Ad.id ->
  qos:Pr_policy.Qos.t ->
  gone_down:bool ->
  (int * Pr_topology.Ad.id) option
(** Current (metric, next hop), respecting the packet's gone-down
    state. *)

val is_down_step : t -> from_ad:Pr_topology.Ad.id -> to_ad:Pr_topology.Ad.id -> bool
(** The strict link direction ECMA derived from the topology. *)

(** Logical cluster replication (paper §5.1.1, footnote 4).

    "It has been proposed that the same physical group of AD resources
    may be replicated and represented as multiple logical clusters for
    the sake of reflecting policy in the topology, thus allowing a
    wider range of policies to coexist. However, logical replication
    requires that the replicated region be assigned multiple network
    addresses…"

    This module performs the replication as a topology transformation:
    a physical AD is split into one logical cluster per {e neighbor
    group}; each cluster keeps links only to its group's neighbors, and
    the clusters are not interconnected. Transit across the physical AD
    is thereby possible only between neighbors sharing a group — which
    expresses prev/next-hop policies ("carry A–C and B–C transit but
    never A–B") that no single partial ordering could. The price,
    exactly as the footnote warns, is extra logical nodes, addresses
    and routing-table state, measured in experiment E14. *)

type spec = {
  ad : Pr_topology.Ad.id;  (** the physical AD to replicate *)
  groups : Pr_topology.Ad.id list list;
      (** neighbor groups, one logical cluster each; every neighbor of
          [ad] must appear in at least one group (neighbors may appear
          in several — they then hold one logical adjacency, i.e. "one
          address", per cluster) *)
}

type mapping = {
  expanded : Pr_topology.Graph.t;
  physical_of : Pr_topology.Ad.id -> Pr_topology.Ad.id;
      (** collapse a logical AD id back to its physical AD *)
  logical_of : Pr_topology.Ad.id -> Pr_topology.Ad.id list;
      (** all logical ids of a physical AD (itself when unreplicated) *)
}

val expand : Pr_topology.Graph.t -> spec list -> mapping
(** Build the expanded internet. The first group of each spec reuses
    the physical id; later groups get fresh ids with derived names
    ("X/1", "X/2", …), the same class and level.
    @raise Invalid_argument if a group is empty, names a non-neighbor,
    or some neighbor of the AD is covered by no group. *)

val collapse_path : mapping -> Pr_topology.Path.t -> Pr_topology.Path.t
(** Rewrite a path in the expanded internet back to physical AD ids
    (for comparison against policies on the original internet). *)

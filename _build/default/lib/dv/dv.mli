(** Classic Bellman–Ford distance-vector routing.

    The traditional baseline of paper §4.3: nodes exchange
    (destination, metric) vectors with neighbors, keep the best next
    hop per destination, and send triggered updates on change. It
    supports no policy whatsoever and, without split horizon, exhibits
    the count-to-infinity behaviour on link failure that experiment E2
    measures against ECMA's partial-ordering fix.

    Updates are event-driven (no periodic timers): a drained event
    queue is convergence. *)

val infinity_metric : int
(** Metrics at or above this are unreachable (64: comfortably above
    any legitimate path cost in generated topologies, low enough that
    counting to infinity terminates). *)

type message = (Pr_topology.Ad.id * int) list
(** A vector of (destination, metric) entries. *)

(** Instantiate the protocol with or without split horizon. *)
module type VARIANT = sig
  val name : string

  val split_horizon : bool
  (** With split horizon, routes are advertised back to the neighbor
      they were learned from with an infinite metric (poisoned
      reverse). *)
end

module Make (V : VARIANT) :
  Pr_proto.Protocol_intf.PROTOCOL with type message = message

module Plain : Pr_proto.Protocol_intf.PROTOCOL with type message = message
(** No split horizon: the count-to-infinity baseline. *)

module Split_horizon : Pr_proto.Protocol_intf.PROTOCOL with type message = message

(** Introspection used by tests and experiments. *)

val route_of :
  Plain.t -> at:Pr_topology.Ad.id -> dst:Pr_topology.Ad.id -> (int * Pr_topology.Ad.id) option
(** Current (metric, next hop) at an AD, if reachable. Works on
    [Plain] instances. *)

val route_of_sh :
  Split_horizon.t ->
  at:Pr_topology.Ad.id ->
  dst:Pr_topology.Ad.id ->
  (int * Pr_topology.Ad.id) option

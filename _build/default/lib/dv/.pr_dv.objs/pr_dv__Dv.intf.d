lib/dv/dv.mli: Pr_proto Pr_topology

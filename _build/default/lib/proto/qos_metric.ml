module Qos = Pr_policy.Qos

let metric qos ~cost ~delay =
  match qos with
  | Qos.Default | Qos.High_throughput -> Stdlib.max 1 cost
  | Qos.Low_delay -> Stdlib.max 1 (int_of_float (Float.round (delay *. 10.0)))
  | Qos.High_reliability -> 1

let path_delay g path =
  let rec sum acc = function
    | [] | [ _ ] -> Some acc
    | a :: (b :: _ as rest) -> (
      match Pr_topology.Graph.find_link g a b with
      | None -> None
      | Some lid -> sum (acc +. (Pr_topology.Graph.link g lid).Pr_topology.Link.delay) rest)
  in
  sum 0.0 path

(** The data-plane driver: walks a packet across the internet by
    consulting each AD's forwarding decision, and classifies the
    outcome.

    This is where routing loops become observable (experiment E10):
    hop-by-hop designs can loop transiently when databases are
    inconsistent, while source-routed packets cannot revisit an AD
    unless the source route itself is broken. *)

type outcome =
  | Delivered of {
      path : Pr_topology.Path.t;  (** ADs actually traversed, source first *)
      header_bytes : int;  (** header size carried by the packet *)
      prep : Packet.prep;
    }
  | Dropped of {
      at : Pr_topology.Ad.id;
      reason : string;
      path_so_far : Pr_topology.Path.t;
      prep : Packet.prep;
    }
  | Looped of { path_so_far : Pr_topology.Path.t; prep : Packet.prep }
      (** the packet revisited an (AD, came-from) state or exceeded the
          hop budget *)
  | Prep_failed of { reason : string; prep : Packet.prep }
      (** route setup failed before any packet was sent *)

val delivered : outcome -> bool

val delivered_path : outcome -> Pr_topology.Path.t option

val pp_outcome : Format.formatter -> outcome -> unit

val send :
  n:int ->
  prepare:(Pr_policy.Flow.t -> Packet.prep) ->
  originate:(Packet.t -> unit) ->
  forward:
    (at:Pr_topology.Ad.id -> from:Pr_topology.Ad.id option -> Packet.t -> Packet.decision) ->
  adjacent:(Pr_topology.Ad.id -> Pr_topology.Ad.id -> bool) ->
  Pr_policy.Flow.t ->
  outcome
(** Drive one packet of the flow from source to destination. A
    [Forward] decision to a non-adjacent or unreachable neighbor is a
    drop (the link is down); revisiting the same (AD, from) pair, or
    taking more than [4 * n] hops, is a loop. *)

module Flow = Pr_policy.Flow

type outcome =
  | Delivered of {
      path : Pr_topology.Path.t;
      header_bytes : int;
      prep : Packet.prep;
    }
  | Dropped of {
      at : Pr_topology.Ad.id;
      reason : string;
      path_so_far : Pr_topology.Path.t;
      prep : Packet.prep;
    }
  | Looped of { path_so_far : Pr_topology.Path.t; prep : Packet.prep }
  | Prep_failed of { reason : string; prep : Packet.prep }

let delivered = function
  | Delivered _ -> true
  | Dropped _ | Looped _ | Prep_failed _ -> false

let delivered_path = function
  | Delivered { path; _ } -> Some path
  | Dropped _ | Looped _ | Prep_failed _ -> None

let pp_outcome ppf = function
  | Delivered { path; header_bytes; _ } ->
    Format.fprintf ppf "delivered via %a (%d header bytes)" Pr_topology.Path.pp path
      header_bytes
  | Dropped { at; reason; _ } -> Format.fprintf ppf "dropped at AD %d: %s" at reason
  | Looped { path_so_far; _ } ->
    Format.fprintf ppf "looped: %a" Pr_topology.Path.pp path_so_far
  | Prep_failed { reason; _ } -> Format.fprintf ppf "setup failed: %s" reason

let send ~n ~prepare ~originate ~forward ~adjacent flow =
  let prep = prepare flow in
  match prep.Packet.failure with
  | Some reason -> Prep_failed { reason; prep }
  | None ->
    let packet = Packet.create flow in
    originate packet;
    let seen = Hashtbl.create 16 in
    let max_hops = 4 * n in
    let rec step at from trail_rev hops =
      let path_so_far () = List.rev (at :: trail_rev) in
      let state = (at, from) in
      if hops > max_hops || Hashtbl.mem seen state then
        Looped { path_so_far = path_so_far (); prep }
      else begin
        Hashtbl.add seen state ();
        match forward ~at ~from packet with
        | Packet.Deliver ->
          if at = flow.Flow.dst then
            Delivered
              { path = path_so_far (); header_bytes = packet.Packet.header_bytes; prep }
          else
            Dropped
              {
                at;
                reason = "delivered at wrong AD";
                path_so_far = path_so_far ();
                prep;
              }
        | Packet.Drop reason -> Dropped { at; reason; path_so_far = path_so_far (); prep }
        | Packet.Forward next ->
          if not (adjacent at next) then
            Dropped
              {
                at;
                reason = Printf.sprintf "no up link to AD %d" next;
                path_so_far = path_so_far ();
                prep;
              }
          else step next (Some at) (at :: trail_rev) (hops + 1)
      end
    in
    step flow.Flow.src None [] 0

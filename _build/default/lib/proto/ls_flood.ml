module Graph = Pr_topology.Graph
module Network = Pr_sim.Network

type t = {
  net : Lsdb.lsa Network.t;
  dbs : Lsdb.t array;
  seqs : int array;
  terms_for : Pr_topology.Ad.id -> Pr_policy.Policy_term.t list;
  flood_to : Pr_topology.Ad.id -> bool;
  mutable on_change : Pr_topology.Ad.id -> unit;
}

let create net ~terms_for ?(flood_to = fun _ -> true) () =
  let n = Graph.n (Network.graph net) in
  {
    net;
    dbs = Array.init n (fun _ -> Lsdb.create ~n);
    seqs = Array.make n 0;
    terms_for;
    flood_to;
    on_change = (fun _ -> ());
  }

let set_on_change t f = t.on_change <- f

let db t ad = t.dbs.(ad)

let db_entries t ad = Lsdb.entry_count t.dbs.(ad)

(* Current up adjacencies of [ad]: the cheapest up link per neighbor,
   with its cost and delay. *)
let current_adjacencies t ad =
  let g = Network.graph t.net in
  List.filter_map
    (fun nbr ->
      let cheapest =
        List.fold_left
          (fun best (v, lid) ->
            if v = nbr && Network.link_is_up t.net lid then
              let l = Graph.link g lid in
              match best with
              | None -> Some l
              | Some (b : Pr_topology.Link.t) ->
                if l.Pr_topology.Link.cost < b.Pr_topology.Link.cost then Some l else best
            else best)
          None (Graph.neighbors g ad)
      in
      Option.map
        (fun (l : Pr_topology.Link.t) ->
          {
            Lsdb.nbr;
            cost = l.Pr_topology.Link.cost;
            delay = l.Pr_topology.Link.delay;
          })
        cheapest)
    (Network.up_neighbors t.net ad)

let flood_from t ad ?except lsa =
  let bytes = Lsdb.lsa_bytes lsa in
  List.iter
    (fun nbr ->
      if Some nbr <> except && t.flood_to nbr then
        Network.send t.net ~src:ad ~dst:nbr ~bytes lsa)
    (Network.up_neighbors t.net ad)

let originate t ad =
  t.seqs.(ad) <- t.seqs.(ad) + 1;
  let lsa =
    {
      Lsdb.origin = ad;
      seq = t.seqs.(ad);
      adjacencies = current_adjacencies t ad;
      terms = t.terms_for ad;
    }
  in
  if Lsdb.insert t.dbs.(ad) lsa then t.on_change ad;
  flood_from t ad lsa

let start t =
  let n = Graph.n (Network.graph t.net) in
  for ad = 0 to n - 1 do
    originate t ad
  done

let handle_message t ~at ~from lsa =
  if Lsdb.insert t.dbs.(at) lsa then begin
    t.on_change at;
    flood_from t at ~except:from lsa
  end

let handle_link t ~at ~up:_ = originate t at

(** The three design axes of the paper's Table 1.

    Every protocol in this repository declares its position in the
    eight-point design space; {!Pr_core.Design_space} assembles the
    table from these declarations. *)

type algorithm = Distance_vector | Link_state

type location = Hop_by_hop | Source_routing

type policy_expression = In_topology | Policy_terms

type t = {
  algorithm : algorithm;
  location : location;
  policy_expression : policy_expression;
}

val all : t list
(** The eight points, in the order the paper steps through them. *)

val make : algorithm -> location -> policy_expression -> t

val algorithm_to_string : algorithm -> string

val location_to_string : location -> string

val policy_expression_to_string : policy_expression -> string

val to_string : t -> string

val equal : t -> t -> bool

type algorithm = Distance_vector | Link_state

type location = Hop_by_hop | Source_routing

type policy_expression = In_topology | Policy_terms

type t = {
  algorithm : algorithm;
  location : location;
  policy_expression : policy_expression;
}

let make algorithm location policy_expression = { algorithm; location; policy_expression }

let all =
  [
    make Distance_vector Hop_by_hop In_topology;
    make Distance_vector Hop_by_hop Policy_terms;
    make Link_state Hop_by_hop Policy_terms;
    make Link_state Source_routing Policy_terms;
    make Link_state Hop_by_hop In_topology;
    make Link_state Source_routing In_topology;
    make Distance_vector Source_routing In_topology;
    make Distance_vector Source_routing Policy_terms;
  ]

let algorithm_to_string = function
  | Distance_vector -> "distance vector"
  | Link_state -> "link state"

let location_to_string = function
  | Hop_by_hop -> "hop-by-hop"
  | Source_routing -> "source routing"

let policy_expression_to_string = function
  | In_topology -> "policy in topology"
  | Policy_terms -> "explicit policy terms"

let to_string t =
  Printf.sprintf "%s / %s / %s"
    (algorithm_to_string t.algorithm)
    (location_to_string t.location)
    (policy_expression_to_string t.policy_expression)

let equal a b = a = b

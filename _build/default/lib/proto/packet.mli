(** Data packets and per-hop forwarding decisions.

    The forwarding engine ({!Forwarding}) drives a packet from its
    source AD by asking each AD's protocol agent for a decision. The
    packet's mutable header fields let source-routing protocols stamp
    a route or handle at origination. *)

type t = {
  flow : Pr_policy.Flow.t;
  mutable source_route : Pr_topology.Path.t option;
      (** full AD route carried in the header (source routing only) *)
  mutable handle : int option;
      (** ORWG policy-route handle replacing the source route on
          packets after setup *)
  mutable header_bytes : int;
      (** current header size under {!Cost_model} *)
  mutable gone_down : bool;
      (** ECMA marking: the packet has traversed a down (or level)
          link and may no longer go up (paper §5.1.1) *)
}

val create : Pr_policy.Flow.t -> t
(** A fresh packet with the base header and no route/handle. *)

type decision =
  | Deliver  (** the packet has reached its destination AD *)
  | Forward of Pr_topology.Ad.id  (** hand to this neighbor AD *)
  | Drop of string  (** discard, with a diagnostic reason *)

val pp_decision : Format.formatter -> decision -> unit

(** Result of preparing a flow before its first packet (route setup in
    ORWG; a no-op elsewhere). *)
type prep = {
  setup_hops : int;  (** control hops spent on route setup *)
  setup_bytes : int;  (** control bytes spent on route setup *)
  cache_hit : bool;  (** an existing policy route/handle was reused *)
  failure : string option;  (** no route could be prepared *)
}

val no_prep : prep
(** The trivial preparation: zero cost, no failure. *)

module Flow = Pr_policy.Flow
module Policy_term = Pr_policy.Policy_term
module Pqueue = Pr_util.Pqueue

let admits db ad flow ~prev ~next =
  let terms = Lsdb.terms_of db ad in
  let ctx = { Policy_term.flow; prev; next } in
  List.exists (fun term -> Policy_term.admits term ctx) terms

(* Neighbors of u according to the database, bidirectionally
   confirmed, weighted by the flow's QOS metric: the per-QOS route
   computation of paper section 3's IGP discussion, lifted to the
   inter-AD databases. *)
let db_neighbors db ~n qos u =
  match Lsdb.get db u with
  | None -> []
  | Some lsa ->
    List.filter_map
      (fun (a : Lsdb.adjacency) ->
        let v = a.Lsdb.nbr in
        if v < 0 || v >= n then None
        else Option.map (fun m -> (v, m)) (Lsdb.bidirectional_metric db qos u v))
      lsa.Lsdb.adjacencies

let shortest db ~n flow ?(avoid = []) () =
  let src = flow.Flow.src and dst = flow.Flow.dst in
  if src = dst then (Some [ src ], 0)
  else begin
    (* State (v, p): we are at v having arrived from p. Encoded as
       v * n + p; the initial state uses p = src (harmless: src is on
       the path anyway and never re-enterable as interior). *)
    let size = n * n in
    let dist = Array.make size infinity in
    let parent = Array.make size (-1) in
    let settled = Array.make size false in
    let work = ref 0 in
    let q = Pqueue.create () in
    let encode v p = (v * n) + p in
    let avoid_arr = Array.make n false in
    List.iter (fun a -> if a >= 0 && a < n then avoid_arr.(a) <- true) avoid;
    let start = encode src src in
    dist.(start) <- 0.0;
    Pqueue.add q ~priority:0.0 start;
    let best_final = ref None in
    let continue_ = ref true in
    while !continue_ do
      match Pqueue.pop q with
      | None -> continue_ := false
      | Some (d, state) ->
        if not settled.(state) then begin
          settled.(state) <- true;
          incr work;
          let v = state / n and p = state mod n in
          if v = dst then begin
            best_final := Some state;
            continue_ := false
          end
          else begin
            let prev = if v = src then None else Some p in
            List.iter
              (fun (w, cost) ->
                let interior_ok =
                  v = src
                  || admits db v flow ~prev ~next:(Some w)
                in
                let avoid_ok = w = dst || not avoid_arr.(w) in
                if interior_ok && avoid_ok && w <> src then begin
                  let state' = encode w v in
                  let d' = d +. float_of_int cost in
                  if d' < dist.(state') then begin
                    dist.(state') <- d';
                    parent.(state') <- state;
                    Pqueue.add q ~priority:d' state'
                  end
                end)
              (db_neighbors db ~n flow.Flow.qos v)
          end
        end
    done;
    match !best_final with
    | None -> (None, !work)
    | Some state ->
      (* Reconstruct by walking parents; guard against cycles in the
         state graph (there are none, but be defensive). *)
      let rec build acc state steps =
        if steps > size then None
        else begin
          let v = state / n in
          if parent.(state) < 0 then Some (v :: acc)
          else build (v :: acc) parent.(state) (steps + 1)
        end
      in
      let path = build [] state 0 in
      (* A path can revisit an AD through different (v, p) states;
         such routes are rejected (sources require loop-free routes,
         paper §4.4). *)
      (match path with
      | Some p when Pr_topology.Path.is_loop_free p -> (Some p, !work)
      | _ -> (None, !work))
  end

(* Optimistic node-level Dijkstra: admission is checked per node,
   ignoring prev/next-hop predicates (a None hop satisfies any
   predicate, so this over-approximates legality). The state space is
   n nodes instead of n^2 (node, arrived-from) states. The caller
   validates the result and falls back to the exact search when some
   hop-constrained term rejects it. *)
let shortest_optimistic db ~n flow ~avoid =
  let src = flow.Flow.src and dst = flow.Flow.dst in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let work = ref 0 in
  let q = Pqueue.create () in
  let avoid_arr = Array.make n false in
  List.iter (fun a -> if a >= 0 && a < n then avoid_arr.(a) <- true) avoid;
  dist.(src) <- 0.0;
  Pqueue.add q ~priority:0.0 src;
  let continue_ = ref true in
  let found = ref false in
  while !continue_ do
    match Pqueue.pop q with
    | None -> continue_ := false
    | Some (d, v) ->
      if not settled.(v) then begin
        settled.(v) <- true;
        incr work;
        if v = dst then begin
          found := true;
          continue_ := false
        end
        else begin
          let v_ok = v = src || admits db v flow ~prev:None ~next:None in
          if v_ok then
            List.iter
              (fun (w, cost) ->
                let avoid_ok = w = dst || not avoid_arr.(w) in
                if avoid_ok && w <> src then begin
                  let d' = d +. float_of_int cost in
                  if d' < dist.(w) then begin
                    dist.(w) <- d';
                    parent.(w) <- v;
                    Pqueue.add q ~priority:d' w
                  end
                end)
              (db_neighbors db ~n flow.Flow.qos v)
        end
      end
  done;
  if not !found then (None, !work)
  else begin
    let rec build acc v = if v = src then src :: acc else build (v :: acc) parent.(v) in
    (Some (build [] dst), !work)
  end

(* Is the path exactly legal per the database, including prev/next-hop
   constrained terms? *)
let path_admitted db flow path =
  let rec scan = function
    | prev :: ad :: next :: rest ->
      admits db ad flow ~prev:(Some prev) ~next:(Some next)
      && scan (ad :: next :: rest)
    | _ -> true
  in
  scan path

let shortest_pruned db ~n ~ranks flow ?(avoid = []) () =
  ignore ranks;
  match shortest_optimistic db ~n flow ~avoid with
  | Some path, work when path_admitted db flow path ->
    (* The optimistic route survives exact validation: done, at node
       (not node-pair) search cost. *)
    (Some path, work)
  | _, work ->
    (* Either nothing was found or a hop-constrained term rejected the
       optimistic route: run the exact search. *)
    let path, full_work = shortest db ~n flow ~avoid () in
    (path, work + full_work)

let enumerate db ~n flow ~max_hops ?(limit = 2000) () =
  let src = flow.Flow.src and dst = flow.Flow.dst in
  let results = ref [] in
  let count = ref 0 in
  let on_path = Array.make n false in
  let rec go u prev prefix_rev depth =
    if !count < limit then
      if u = dst then begin
        incr count;
        results := List.rev (dst :: prefix_rev) :: !results
      end
      else if depth < max_hops then
        List.iter
          (fun (v, _) ->
            if (not on_path.(v)) && v <> src then begin
              let u_ok = u = src || admits db u flow ~prev ~next:(Some v) in
              if u_ok then begin
                on_path.(v) <- true;
                go v (Some u) (u :: prefix_rev) (depth + 1);
                on_path.(v) <- false
              end
            end)
          (db_neighbors db ~n flow.Flow.qos u)
  in
  if src = dst then [ [ src ] ]
  else begin
    on_path.(src) <- true;
    go src None [] 0;
    List.rev !results
  end

let spanning_work ~n = n * n

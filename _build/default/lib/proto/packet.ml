type t = {
  flow : Pr_policy.Flow.t;
  mutable source_route : Pr_topology.Path.t option;
  mutable handle : int option;
  mutable header_bytes : int;
  mutable gone_down : bool;
}

let create flow =
  {
    flow;
    source_route = None;
    handle = None;
    header_bytes = Cost_model.base_header_bytes;
    gone_down = false;
  }

type decision = Deliver | Forward of Pr_topology.Ad.id | Drop of string

let pp_decision ppf = function
  | Deliver -> Format.pp_print_string ppf "deliver"
  | Forward ad -> Format.fprintf ppf "forward->%d" ad
  | Drop reason -> Format.fprintf ppf "drop(%s)" reason

type prep = {
  setup_hops : int;
  setup_bytes : int;
  cache_hit : bool;
  failure : string option;
}

let no_prep = { setup_hops = 0; setup_bytes = 0; cache_hit = false; failure = None }

(** The shared byte-accounting model.

    All protocols charge message and header sizes through these
    constants so that overhead comparisons across design points reflect
    structural differences (full AD paths vs single metrics, source
    routes vs handles) rather than arbitrary encodings. Sizes are
    loosely modelled on the era's protocols (2-byte AD numbers as in
    BGP/EGP autonomous system numbers). *)

val ad_id_bytes : int
(** 2, like an autonomous system number. *)

val base_header_bytes : int
(** Fixed network-layer header carried by every data packet (20). *)

val source_route_bytes : int -> int
(** Extra header bytes to carry a source route of the given AD-path
    length (one AD id per hop plus a 2-byte pointer). *)

val handle_bytes : int
(** Extra header bytes for an ORWG policy-route handle (4). *)

val update_fixed_bytes : int
(** Fixed cost of any routing protocol message (8). *)

val dv_entry_bytes : int
(** One traditional distance-vector entry: destination + metric +
    flags (6). *)

val path_vector_entry_bytes : path_len:int -> pt_bytes:int -> int
(** One IDRP-style route: destination + metric + full AD path + policy
    attributes. *)

val lsa_bytes : link_count:int -> pt_bytes:int -> int
(** One link-state advertisement: fixed part + per-adjacency part +
    attached policy terms. *)

val setup_packet_bytes : route_len:int -> pt_count:int -> int
(** An ORWG policy-route setup packet: base header, the full source
    route, and one cited policy-term reference per AD on the route. *)

(** Per-QOS link metrics (paper §3, §5.1.1).

    The era's IGPs (IGRP, OSPF ToS, IS-IS) supported a small set of
    service classes by keeping one metric per class; ECMA carries this
    into inter-AD routing with one FIB per QOS, and the LS designs can
    compute per-QOS routes from the same advertisements. We model the
    four classes over the two physical link attributes we have:

    - [Default] and [High_throughput]: the administrative cost (a
      capacity/price proxy);
    - [Low_delay]: propagation delay, in deci-units so it stays an
      integer metric;
    - [High_reliability]: hop count — fewer links, fewer failures. *)

val metric : Pr_policy.Qos.t -> cost:int -> delay:float -> int
(** The additive per-link metric for a service class; always >= 1. *)

val path_delay : Pr_topology.Graph.t -> Pr_topology.Path.t -> float option
(** Sum of link delays along a path in the physical topology. *)

lib/proto/packet.ml: Cost_model Format Pr_policy Pr_topology

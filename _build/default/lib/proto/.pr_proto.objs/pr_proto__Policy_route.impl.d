lib/proto/policy_route.ml: Array List Lsdb Option Pr_policy Pr_topology Pr_util

lib/proto/forwarding.ml: Format Hashtbl List Packet Pr_policy Pr_topology Printf

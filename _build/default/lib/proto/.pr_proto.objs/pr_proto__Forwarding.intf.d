lib/proto/forwarding.mli: Format Packet Pr_policy Pr_topology

lib/proto/packet.mli: Format Pr_policy Pr_topology

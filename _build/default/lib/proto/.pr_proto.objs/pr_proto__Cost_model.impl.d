lib/proto/cost_model.ml:

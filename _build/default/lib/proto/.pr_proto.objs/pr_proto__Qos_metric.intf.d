lib/proto/qos_metric.mli: Pr_policy Pr_topology

lib/proto/design_point.ml: Printf

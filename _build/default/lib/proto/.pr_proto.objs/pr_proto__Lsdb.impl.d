lib/proto/lsdb.ml: Array Cost_model List Option Pr_policy Pr_topology Qos_metric Stdlib

lib/proto/ls_flood.mli: Lsdb Pr_policy Pr_sim Pr_topology

lib/proto/ls_flood.ml: Array List Lsdb Option Pr_policy Pr_sim Pr_topology

lib/proto/lsdb.mli: Pr_policy Pr_topology

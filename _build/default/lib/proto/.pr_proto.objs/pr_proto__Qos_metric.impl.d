lib/proto/qos_metric.ml: Float Pr_policy Pr_topology Stdlib

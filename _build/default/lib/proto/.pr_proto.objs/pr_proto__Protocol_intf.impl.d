lib/proto/protocol_intf.ml: Design_point Packet Pr_policy Pr_sim Pr_topology

lib/proto/policy_route.mli: Lsdb Pr_policy Pr_topology

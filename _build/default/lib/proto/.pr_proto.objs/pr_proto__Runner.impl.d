lib/proto/runner.ml: Format Forwarding Pr_policy Pr_sim Pr_topology Protocol_intf Stdlib

lib/proto/design_point.mli:

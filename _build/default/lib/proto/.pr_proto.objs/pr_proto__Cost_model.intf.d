lib/proto/cost_model.mli:

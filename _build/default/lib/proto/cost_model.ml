let ad_id_bytes = 2

let base_header_bytes = 20

let source_route_bytes len = 2 + (ad_id_bytes * len)

let handle_bytes = 4

let update_fixed_bytes = 8

let dv_entry_bytes = 6

let path_vector_entry_bytes ~path_len ~pt_bytes =
  dv_entry_bytes + (ad_id_bytes * path_len) + pt_bytes

let lsa_bytes ~link_count ~pt_bytes = 12 + (4 * link_count) + pt_bytes

let setup_packet_bytes ~route_len ~pt_count =
  base_header_bytes + source_route_bytes route_len + (4 * pt_count)

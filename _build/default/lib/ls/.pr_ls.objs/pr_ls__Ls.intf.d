lib/ls/ls.mli: Pr_proto Pr_topology

lib/ls/ls.ml: Array List Pr_policy Pr_proto Pr_sim Pr_topology Pr_util

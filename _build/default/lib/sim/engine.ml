module Pqueue = Pr_util.Pqueue

type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable executed : int;
}

let create () = { queue = Pqueue.create (); clock = 0.0; executed = 0 }

let now t = t.clock

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Pqueue.add t.queue ~priority:(t.clock +. delay) f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Pqueue.add t.queue ~priority:time f

let pending t = Pqueue.length t.queue

type stop_reason = Drained | Reached_limit

let run ?(max_events = 10_000_000) t =
  let budget = ref max_events in
  let rec loop () =
    if !budget <= 0 then Reached_limit
    else
      match Pqueue.pop t.queue with
      | None -> Drained
      | Some (time, f) ->
        t.clock <- time;
        t.executed <- t.executed + 1;
        decr budget;
        f ();
        loop ()
  in
  loop ()

let events_executed t = t.executed

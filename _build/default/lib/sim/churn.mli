(** Scheduled topology churn.

    Injects a deterministic fail/restore process into the event queue
    so that link changes interleave with the protocol's own control
    traffic — the environment of paper §2.2, where inter-AD links
    cannot be assumed redundant and protocols "must be somewhat
    adaptive". Because the process schedules a bounded number of
    events, a converge run still terminates: it drains the churn and
    every reaction to it. *)

val schedule :
  'msg Network.t ->
  Pr_util.Rng.t ->
  events:int ->
  spacing:float ->
  ?kind:Pr_topology.Link.kind ->
  unit ->
  unit
(** [schedule net rng ~events ~spacing ()] enqueues [events] link
    flips, [spacing] time units apart, starting one [spacing] from
    now: even events fail a uniformly chosen up link (optionally of a
    given [kind]), odd events restore the most recently churn-failed
    link. Links failed by the churn are tracked so a restore never
    touches links failed by other means. *)

type t = {
  n : int;
  msgs : int array;
  bytes_sent : int array;
  comps : int array;
  tables : int array;
}

let create ~n =
  {
    n;
    msgs = Array.make n 0;
    bytes_sent = Array.make n 0;
    comps = Array.make n 0;
    tables = Array.make n 0;
  }

let reset t =
  Array.fill t.msgs 0 t.n 0;
  Array.fill t.bytes_sent 0 t.n 0;
  Array.fill t.comps 0 t.n 0;
  Array.fill t.tables 0 t.n 0

let record_send t ad ~bytes =
  t.msgs.(ad) <- t.msgs.(ad) + 1;
  t.bytes_sent.(ad) <- t.bytes_sent.(ad) + bytes

let record_computation t ad ?(work = 1) () = t.comps.(ad) <- t.comps.(ad) + work

let set_table_entries t ad entries = t.tables.(ad) <- entries

let add_table_entries t ad entries = t.tables.(ad) <- t.tables.(ad) + entries

let sum a = Array.fold_left ( + ) 0 a

let messages t = sum t.msgs

let bytes t = sum t.bytes_sent

let computations t = sum t.comps

let table_entries t = sum t.tables

let messages_of t ad = t.msgs.(ad)

let bytes_of t ad = t.bytes_sent.(ad)

let computations_of t ad = t.comps.(ad)

let table_entries_of t ad = t.tables.(ad)

let max_table_entries t = Array.fold_left Stdlib.max 0 t.tables

let snapshot t =
  {
    n = t.n;
    msgs = Array.copy t.msgs;
    bytes_sent = Array.copy t.bytes_sent;
    comps = Array.copy t.comps;
    tables = Array.copy t.tables;
  }

let diff ~after ~before =
  if after.n <> before.n then invalid_arg "Metrics.diff: size mismatch";
  {
    n = after.n;
    msgs = Array.init after.n (fun i -> after.msgs.(i) - before.msgs.(i));
    bytes_sent = Array.init after.n (fun i -> after.bytes_sent.(i) - before.bytes_sent.(i));
    comps = Array.init after.n (fun i -> after.comps.(i) - before.comps.(i));
    tables = Array.copy after.tables;
  }

let pp ppf t =
  Format.fprintf ppf "msgs=%d bytes=%d comp=%d tables=%d" (messages t) (bytes t)
    (computations t) (table_entries t)

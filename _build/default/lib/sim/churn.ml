let schedule net rng ~events ~spacing ?kind () =
  if spacing <= 0.0 then invalid_arg "Churn.schedule: spacing <= 0";
  let engine = Network.engine net in
  let failed = ref [] in
  for i = 1 to events do
    let time = float_of_int i *. spacing in
    Engine.schedule engine ~delay:time (fun () ->
        if i mod 2 = 1 then begin
          match Network.fail_random_link net rng ?kind () with
          | Some lid -> failed := lid :: !failed
          | None -> ()
        end
        else begin
          match !failed with
          | lid :: rest ->
            failed := rest;
            Network.set_link_state net lid ~up:true
          | [] -> ()
        end)
  done

lib/sim/churn.mli: Network Pr_topology Pr_util

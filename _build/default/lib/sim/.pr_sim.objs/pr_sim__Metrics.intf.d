lib/sim/metrics.mli: Format Pr_topology

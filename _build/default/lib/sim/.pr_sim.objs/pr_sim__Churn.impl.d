lib/sim/churn.ml: Engine Network

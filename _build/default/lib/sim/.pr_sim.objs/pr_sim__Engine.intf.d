lib/sim/engine.mli:

lib/sim/network.mli: Engine Logs Metrics Pr_topology Pr_util

lib/sim/engine.ml: Pr_util

lib/sim/network.ml: Array Engine List Logs Metrics Pr_topology Pr_util

lib/idrp/idrp.mli: Pr_policy Pr_proto Pr_topology Pr_util

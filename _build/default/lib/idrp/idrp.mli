(** The Inter-Domain Routing Protocol / BGP-2 design point (paper
    §5.2.1): distance vector (path vector), hop-by-hop forwarding,
    explicit policy attributes in routing updates.

    Each update carries the {e full AD path} (suppressing loops and
    count-to-infinity) and an {e allowed-sources} attribute: the set of
    source ADs permitted to use the advertised route, computed by
    intersecting, at every hop, the advertising AD's Policy Terms with
    the attribute received. A single best route is kept and advertised
    per (policy class, destination).

    The design's structural weakness, which experiment E4 measures: a
    route class is (QOS, UCI) — or, in the [Per_source] variant,
    (QOS, UCI, source AD). Coarse classes mean packets from sources
    outside a route's allowed set are dropped even when a legal route
    exists; per-source classes recover availability at the cost of
    replicating the routing table per source, "effectively replicating
    the routing table per forwarding entity for each QOS, UCI, source
    combination" (§5.2.1). *)

type route = {
  dest : Pr_topology.Ad.id;
  class_idx : int;
  path : Pr_topology.Ad.id list;  (** advertiser first, destination last *)
  allowed : Pr_util.Bitset.t;  (** source ADs permitted to use the route *)
}

type update = { route : route; withdraw : bool }

type message = update list

module type VARIANT = sig
  val name : string

  val per_source : bool

  val distribution_scope : bool
  (** Enforce the allowed-sources attribute by {e distribution} as well
      as by forwarding: a host-only (stub) neighbor whose sources a
      route does not admit never receives the route at all — "updates
      can specify what other ADs are allowed to receive the
      information" (§5.2.1). Transit neighbors always receive routes,
      since they may carry admitted third-party traffic. *)
end

module Make (V : VARIANT) : sig
  include Pr_proto.Protocol_intf.PROTOCOL with type message = message

  val selected_route :
    t ->
    at:Pr_topology.Ad.id ->
    dst:Pr_topology.Ad.id ->
    flow:Pr_policy.Flow.t ->
    route option
  (** The route the AD would apply to this flow (regardless of whether
      the flow's source is allowed to use it). *)
end

module Standard : sig
  include Pr_proto.Protocol_intf.PROTOCOL with type message = message

  val selected_route :
    t ->
    at:Pr_topology.Ad.id ->
    dst:Pr_topology.Ad.id ->
    flow:Pr_policy.Flow.t ->
    route option
end
(** Routes per (QOS, UCI) class. *)

module Per_source : sig
  include Pr_proto.Protocol_intf.PROTOCOL with type message = message

  val selected_route :
    t ->
    at:Pr_topology.Ad.id ->
    dst:Pr_topology.Ad.id ->
    flow:Pr_policy.Flow.t ->
    route option
end
(** Routes per (QOS, UCI, source) class — the state blow-up variant. *)

module Scoped : sig
  include Pr_proto.Protocol_intf.PROTOCOL with type message = message

  val selected_route :
    t ->
    at:Pr_topology.Ad.id ->
    dst:Pr_topology.Ad.id ->
    flow:Pr_policy.Flow.t ->
    route option
end
(** (QOS, UCI) classes with distribution-scope enforcement: excluded
    stubs never learn the routes they may not use. *)

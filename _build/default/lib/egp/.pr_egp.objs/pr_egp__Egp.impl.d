lib/egp/egp.ml: Array Hashtbl List Pr_policy Pr_proto Pr_sim Pr_topology

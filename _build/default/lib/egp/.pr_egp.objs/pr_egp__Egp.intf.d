lib/egp/egp.mli: Pr_proto Pr_topology

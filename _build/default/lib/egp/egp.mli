(** An EGP-like reachability protocol (paper §3).

    EGP exchanges {e reachability} information between autonomous
    regions; its distance fields are not comparable across neighbors,
    so a receiver cannot meaningfully pick "the shortest" route. We
    model route choice as sticky first-heard (kept until the advertiser
    withdraws, then the lowest-id remaining advertiser), and — faithful
    to EGP's NR messages — gateways advertise {e everything} they
    reach, with no split horizon.

    On a tree — the only topology EGP legally supports: "there can be
    no cycles in the EGP graph" — first-heard choices follow the unique
    paths and routing is correct. On cyclic topologies the binary
    reachability model admits {e stable, silent} forwarding loops after
    a failure: the re-chosen advertiser may route through the chooser,
    both keep "reaching" the destination, and no metric ever grows to
    reveal the loop. Experiment E1 quantifies this failure as cycles
    are added. *)

type message = (Pr_topology.Ad.id * bool) list
(** Announce ([true]) or withdraw ([false]) reachability of each
    destination. *)

include Pr_proto.Protocol_intf.PROTOCOL with type message := message

val next_hop_of :
  t -> at:Pr_topology.Ad.id -> dst:Pr_topology.Ad.id -> Pr_topology.Ad.id option

lib/orwg/orwg.ml: Array Hashtbl List Option Pr_policy Pr_proto Pr_sim Pr_topology Printf Stdlib

lib/orwg/orwg.mli: Pr_policy Pr_proto Pr_topology

(** Link state, hop-by-hop forwarding, explicit Policy Terms — the
    design point of paper §5.3.

    Policy Terms are flooded in link-state advertisements, so every AD
    can compute a route satisfying any policy combination: this design
    never misses an existing legal route (unlike ECMA/IDRP). Its costs,
    which experiment E5 measures:

    - {b replicated computation}: to stay loop-free, every AD on a
      path must {e repeat the source's computation} — each forwarding
      AD computes the policy route for the packet's (source,
      destination, class) from its own database and forwards along its
      own position in that path. Transit ADs therefore hold per-source
      route state ("potentially … a separate spanning tree for each
      potential source of traffic").
    - {b no source control}: the source's private selection criteria
      are not advertised, so the uniform computation cannot honor
      them (measured in E6/E9 as source-policy satisfaction).

    Transient database inconsistency shows up as drops ("not on my
    computed route") or loops — experiment E10. *)

type message = Pr_proto.Lsdb.lsa

include Pr_proto.Protocol_intf.PROTOCOL with type message := message

val computed_route :
  t -> at:Pr_topology.Ad.id -> Pr_policy.Flow.t -> Pr_topology.Path.t option
(** The policy route for the flow as computed (and cached) by this
    AD from its own database. *)

val cache_entries : t -> Pr_topology.Ad.id -> int
(** Cached per-(source, destination, class) routes held by the AD —
    the per-source state burden. *)

lib/lshbh/lshbh.ml: Array Hashtbl Pr_policy Pr_proto Pr_sim Pr_topology

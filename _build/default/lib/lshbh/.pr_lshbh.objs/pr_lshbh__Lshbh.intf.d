lib/lshbh/lshbh.mli: Pr_policy Pr_proto Pr_topology

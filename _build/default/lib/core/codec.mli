(** Scenario serialization.

    Saves and loads complete scenarios (topology + policy configuration
    + label/seed) as s-expressions, so that an experiment setup can be
    shared, versioned and re-run byte-identically. Round-tripping is
    exact: [load (save s)] yields a scenario whose graph and policies
    behave identically to [s]. *)

val scenario_to_sexp : Scenario.t -> Pr_util.Sexp.t

val scenario_of_sexp : Pr_util.Sexp.t -> (Scenario.t, string) result

val save : Scenario.t -> string
(** Pretty-printed document suitable for a file. *)

val load : string -> (Scenario.t, string) result

val save_file : Scenario.t -> path:string -> unit

val load_file : path:string -> (Scenario.t, string) result

(** Exposed for tests and other tooling: *)

val graph_to_sexp : Pr_topology.Graph.t -> Pr_util.Sexp.t

val graph_of_sexp : Pr_util.Sexp.t -> (Pr_topology.Graph.t, string) result

val config_to_sexp : Pr_policy.Config.t -> Pr_util.Sexp.t

val config_of_sexp : Pr_util.Sexp.t -> (Pr_policy.Config.t, string) result

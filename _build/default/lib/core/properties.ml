module Graph = Pr_topology.Graph
module Path = Pr_topology.Path
module Flow = Pr_policy.Flow
module Forwarding = Pr_proto.Forwarding
module Runner = Pr_proto.Runner

type check = Registry.packed -> Scenario.t -> (unit, string) result

let probe_flows (scenario : Scenario.t) =
  let rng = Pr_util.Rng.create (scenario.Scenario.seed + 7919) in
  Scenario.flows scenario ~rng ~count:30 ()

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let converges (Registry.Packed (module P)) (scenario : Scenario.t) =
  let module R = Runner.Make (P) in
  let r = R.setup scenario.Scenario.graph scenario.Scenario.config in
  let c = R.converge ~max_events:20_000_000 r in
  if c.Runner.converged then Ok () else fail "did not converge from cold start"

let converge_idempotent (Registry.Packed (module P)) (scenario : Scenario.t) =
  let module R = Runner.Make (P) in
  let r = R.setup scenario.Scenario.graph scenario.Scenario.config in
  ignore (R.converge ~max_events:20_000_000 r);
  let again = R.converge r in
  if again.Runner.messages = 0 && again.Runner.events = 0 then Ok ()
  else fail "steady state chatter: %d messages on re-converge" again.Runner.messages

let run_outcomes (type a m)
    (module P : Pr_proto.Protocol_intf.PROTOCOL with type t = a and type message = m)
    (scenario : Scenario.t) flows =
  let module R = Runner.Make (P) in
  let r = R.setup scenario.Scenario.graph scenario.Scenario.config in
  let c = R.converge ~max_events:20_000_000 r in
  (c, List.map (fun f -> R.send_flow r f) flows)

let deterministic (Registry.Packed (module P)) (scenario : Scenario.t) =
  let flows = probe_flows scenario in
  let c1, o1 = run_outcomes (module P) scenario flows in
  let c2, o2 = run_outcomes (module P) scenario flows in
  if c1.Runner.messages <> c2.Runner.messages then
    fail "nondeterministic convergence: %d vs %d messages" c1.Runner.messages
      c2.Runner.messages
  else if
    not
      (List.for_all2
         (fun a b -> Forwarding.delivered_path a = Forwarding.delivered_path b)
         o1 o2)
  then fail "nondeterministic forwarding outcomes"
  else Ok ()

let outcomes_partition (Registry.Packed (module P)) (scenario : Scenario.t) =
  let flows = probe_flows scenario in
  let _, outcomes = run_outcomes (module P) scenario flows in
  let delivered = ref 0 and dropped = ref 0 and looped = ref 0 and prep = ref 0 in
  List.iter
    (function
      | Forwarding.Delivered _ -> incr delivered
      | Forwarding.Dropped _ -> incr dropped
      | Forwarding.Looped _ -> incr looped
      | Forwarding.Prep_failed _ -> incr prep)
    outcomes;
  if !delivered + !dropped + !looped + !prep = List.length flows then Ok ()
  else fail "outcomes do not partition the workload"

let delivered_paths_valid (Registry.Packed (module P)) (scenario : Scenario.t) =
  let g = scenario.Scenario.graph in
  let flows = probe_flows scenario in
  let _, outcomes = run_outcomes (module P) scenario flows in
  let rec scan flows outcomes =
    match (flows, outcomes) with
    | [], [] -> Ok ()
    | flow :: fs, outcome :: os -> (
      match outcome with
      | Forwarding.Delivered { path; _ } ->
        if not (Path.is_valid g path) then
          fail "delivered an invalid path %s" (Path.to_string path)
        else if Path.source path <> flow.Flow.src then
          fail "path starts at %d, not the source %d" (Path.source path) flow.Flow.src
        else if Path.destination path <> flow.Flow.dst then
          fail "path ends at %d, not the destination %d" (Path.destination path)
            flow.Flow.dst
        else scan fs os
      | _ -> scan fs os)
    | _ -> fail "internal: workload/outcome length mismatch"
  in
  scan flows outcomes

let state_gauges_sane (Registry.Packed (module P)) (scenario : Scenario.t) =
  let module R = Runner.Make (P) in
  let g = scenario.Scenario.graph in
  let r = R.setup g scenario.Scenario.config in
  ignore (R.converge ~max_events:20_000_000 r);
  let negative = ref None in
  for ad = 0 to Graph.n g - 1 do
    if P.table_entries (R.protocol r) ad < 0 then negative := Some ad
  done;
  match !negative with
  | Some ad -> fail "negative table gauge at AD %d" ad
  | None ->
    if R.max_table_entries r <= R.table_entries r then Ok ()
    else fail "per-AD maximum exceeds the total"

let survives_fail_restore (Registry.Packed (module P)) (scenario : Scenario.t) =
  let module R = Runner.Make (P) in
  let g = scenario.Scenario.graph in
  let flows = probe_flows scenario in
  let r = R.setup g scenario.Scenario.config in
  ignore (R.converge ~max_events:20_000_000 r);
  let baseline = List.map (fun f -> Forwarding.delivered (R.send_flow r f)) flows in
  let lid = Graph.num_links g / 2 in
  R.fail_link r lid;
  let c1 = R.converge ~max_events:20_000_000 r in
  R.restore_link r lid;
  let c2 = R.converge ~max_events:20_000_000 r in
  if not (c1.Runner.converged && c2.Runner.converged) then
    fail "did not reconverge around the churn"
  else begin
    let after = List.map (fun f -> Forwarding.delivered (R.send_flow r f)) flows in
    if List.for_all2 Bool.equal baseline after then Ok ()
    else fail "delivery set changed across fail/restore"
  end

let all =
  [
    ("converges", converges);
    ("converge idempotent", converge_idempotent);
    ("deterministic", deterministic);
    ("outcomes partition", outcomes_partition);
    ("delivered paths valid", delivered_paths_valid);
    ("state gauges sane", state_gauges_sane);
    ("survives fail/restore", survives_fail_restore);
  ]

(** The paper's Table 1: the eight-point design space for inter-AD
    routing, populated from the protocols implemented in this
    repository. *)

type status =
  | Implemented of string list
      (** protocol names in this repository occupying the point *)
  | Impractical of string  (** why the paper rules the point out (§5.5) *)

type cell = { point : Pr_proto.Design_point.t; status : status; paper_section : string }

val cells : cell list
(** All eight points in the paper's order of discussion. *)

val find : Pr_proto.Design_point.t -> cell

val render : unit -> string
(** Text rendition of Table 1 with our protocol names in the cells. *)

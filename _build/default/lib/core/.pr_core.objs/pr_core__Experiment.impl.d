lib/core/experiment.ml: List Option Pr_policy Pr_proto Pr_sim Pr_topology Pr_util Printf Registry Scenario

lib/core/design_space.ml: List Pr_proto Pr_util String

lib/core/scenario.ml: Array List Pr_policy Pr_topology Pr_util Printf

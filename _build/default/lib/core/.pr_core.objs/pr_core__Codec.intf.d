lib/core/codec.mli: Pr_policy Pr_topology Pr_util Scenario

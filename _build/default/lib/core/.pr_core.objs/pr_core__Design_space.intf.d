lib/core/design_space.mli: Pr_proto

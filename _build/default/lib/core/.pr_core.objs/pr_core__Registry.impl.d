lib/core/registry.ml: List Pr_dv Pr_ecma Pr_egp Pr_idrp Pr_ls Pr_lshbh Pr_orwg Pr_proto

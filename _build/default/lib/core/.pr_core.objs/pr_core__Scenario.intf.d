lib/core/scenario.mli: Pr_policy Pr_topology Pr_util

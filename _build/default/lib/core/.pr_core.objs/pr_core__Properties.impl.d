lib/core/properties.ml: Bool List Pr_policy Pr_proto Pr_topology Pr_util Printf Registry Scenario

lib/core/properties.mli: Registry Scenario

lib/core/codec.ml: Array Fun List Option Pr_policy Pr_topology Pr_util Printf Result Scenario

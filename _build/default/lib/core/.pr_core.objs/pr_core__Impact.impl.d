lib/core/impact.ml: Array Buffer Experiment List Pr_policy Pr_topology Pr_util Printf Scenario

lib/core/registry.mli: Pr_proto

lib/core/impact.mli: Pr_policy Pr_topology Scenario

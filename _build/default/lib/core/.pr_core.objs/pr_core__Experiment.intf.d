lib/core/experiment.mli: Pr_policy Pr_topology Pr_util Registry Scenario

module Graph = Pr_topology.Graph
module Path = Pr_topology.Path
module Flow = Pr_policy.Flow
module Config = Pr_policy.Config
module Transit_policy = Pr_policy.Transit_policy
module Validate = Pr_policy.Validate
module Stats = Pr_util.Stats

type pair_change = {
  src : Pr_topology.Ad.id;
  dst : Pr_topology.Ad.id;
  before : Path.t option;
  after : Path.t option;
}

type report = {
  owner : Pr_topology.Ad.id;
  pairs_total : int;
  lost : pair_change list;
  gained : pair_change list;
  degraded : pair_change list;
  improved : pair_change list;
  transit_load_before : int;
  transit_load_after : int;
  mean_cost_before : float;
  mean_cost_after : float;
}

(* A configuration equal to [config] except for [owner]'s transit
   policy. *)
let with_policy (config : Config.t) (proposed : Transit_policy.t) =
  let n = Config.n config in
  let transit =
    Array.init n (fun ad ->
        if ad = proposed.Transit_policy.owner then proposed else Config.transit config ad)
  in
  let source = Array.init n (fun ad ->
      if Config.has_source_policy config ad then Some (Config.source config ad) else None)
  in
  Config.make ~transit ~source ()

let assess (scenario : Scenario.t) ~proposed ?(qos = Pr_policy.Qos.Default)
    ?(uci = Pr_policy.Uci.Research) ?(max_hops = Experiment.oracle_max_hops) () =
  let g = scenario.Scenario.graph in
  let owner = proposed.Transit_policy.owner in
  let config_before = scenario.Scenario.config in
  let config_after = with_policy config_before proposed in
  let hosts = Graph.host_ids g in
  let lost = ref [] and gained = ref [] in
  let degraded = ref [] and improved = ref [] in
  let load_before = ref 0 and load_after = ref 0 in
  let costs_before = ref [] and costs_after = ref [] in
  let pairs = ref 0 in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if src <> dst then begin
            incr pairs;
            let flow = Flow.make ~src ~dst ~qos ~uci () in
            let before = Validate.best_legal g config_before flow ~max_hops in
            let after = Validate.best_legal g config_after flow ~max_hops in
            let change = { src; dst; before; after } in
            let transits path =
              match path with
              | Some p -> List.mem owner (Path.transit_ads p)
              | None -> false
            in
            if transits before then incr load_before;
            if transits after then incr load_after;
            match (before, after) with
            | Some _, None -> lost := change :: !lost
            | None, Some _ -> gained := change :: !gained
            | Some pb, Some pa -> (
              match (Path.cost g pb, Path.cost g pa) with
              | Some cb, Some ca ->
                costs_before := float_of_int cb :: !costs_before;
                costs_after := float_of_int ca :: !costs_after;
                if ca > cb then degraded := change :: !degraded
                else if ca < cb then improved := change :: !improved
              | _ -> ())
            | None, None -> ()
          end)
        hosts)
    hosts;
  {
    owner;
    pairs_total = !pairs;
    lost = List.rev !lost;
    gained = List.rev !gained;
    degraded = List.rev !degraded;
    improved = List.rev !improved;
    transit_load_before = !load_before;
    transit_load_after = !load_after;
    mean_cost_before = Stats.mean !costs_before;
    mean_cost_after = Stats.mean !costs_after;
  }

let summary r =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "Impact of replacing AD %d's transit policy (over %d host pairs):" r.owner
    r.pairs_total;
  line "  connectivity:  %d pairs lose their only legal route, %d gain one"
    (List.length r.lost) (List.length r.gained);
  line "  route quality: %d pairs degrade, %d improve (mean legal cost %.2f -> %.2f)"
    (List.length r.degraded) (List.length r.improved) r.mean_cost_before r.mean_cost_after;
  line "  transit load:  best routes through AD %d: %d -> %d pairs" r.owner
    r.transit_load_before r.transit_load_after;
  (match r.lost with
  | [] -> ()
  | l ->
    line "  lost pairs:";
    List.iteri
      (fun i c -> if i < 10 then line "    %d -> %d" c.src c.dst)
      l;
    if List.length l > 10 then line "    ... and %d more" (List.length l - 10));
  Buffer.contents buf
